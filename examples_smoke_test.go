package browserflow

// Smoke tests: every runnable example must build and exit cleanly. Each
// `go run` compiles a binary, so the suite is skipped under -short.

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test (go run) skipped in -short mode")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/interview",
		"./examples/revisions",
		"./examples/liveproxy",
		"./examples/nativeapp",
		"./examples/enterprise",
	}
	for _, path := range examples {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", path)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", path, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", path)
			}
		})
	}
}
