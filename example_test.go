package browserflow_test

import (
	"fmt"

	"github.com/lsds/browserflow"
)

// The canonical setup: an internal wiki whose text carries the "tw" tag
// and an untrusted external docs service.
func newExampleMiddleware() *browserflow.Middleware {
	mw, err := browserflow.New(browserflow.DefaultConfig(),
		browserflow.Service{
			Name:            "wiki",
			Privilege:       []browserflow.Tag{"tw"},
			Confidentiality: []browserflow.Tag{"tw"},
		},
		browserflow.Service{Name: "docs"},
	)
	if err != nil {
		panic(err)
	}
	return mw
}

const exampleSecret = "The migration plan moves every internal workload to the Dublin " +
	"region by March, decommissioning both on-premise data centres."

func ExampleMiddleware_CheckText() {
	mw := newExampleMiddleware()
	if _, err := mw.ObserveParagraph("wiki", "wiki/plan#p0", exampleSecret); err != nil {
		panic(err)
	}
	verdict, err := mw.CheckText(exampleSecret, "docs")
	if err != nil {
		panic(err)
	}
	fmt.Println(verdict.Decision, verdict.Violating)
	// Output: warn [tw]
}

func ExampleMiddleware_Similarity() {
	mw := newExampleMiddleware()
	edited := exampleSecret[:60] + " (redacted) " + exampleSecret[80:]
	d, err := mw.Similarity(exampleSecret, edited)
	if err != nil {
		panic(err)
	}
	fmt.Println(d > 0.3, d < 1.0)
	// Output: true true
}

func ExampleMiddleware_Suppress() {
	mw := newExampleMiddleware()
	if _, err := mw.ObserveParagraph("wiki", "wiki/plan#p0", exampleSecret); err != nil {
		panic(err)
	}
	// Copy lands in docs and inherits the wiki tag implicitly.
	if _, err := mw.ObserveParagraph("docs", "docs/copy#p0", exampleSecret); err != nil {
		panic(err)
	}
	before, _ := mw.CheckUpload("docs/copy#p0", "docs")
	// The user declassifies, with a justification that lands in the audit
	// trail.
	if err := mw.Suppress("alice", "docs/copy#p0", "tw", "public launch announced"); err != nil {
		panic(err)
	}
	after, _ := mw.CheckUpload("docs/copy#p0", "docs")
	fmt.Println(before.Decision, "->", after.Decision)
	fmt.Println(mw.AuditEntries()[0].Action)
	// Output:
	// warn -> allow
	// suppress
}

func ExampleMiddleware_Sources() {
	mw := newExampleMiddleware()
	if _, err := mw.ObserveParagraph("wiki", "wiki/plan#p0", exampleSecret); err != nil {
		panic(err)
	}
	sources, err := mw.Sources("Prefix text, then a paste: " + exampleSecret)
	if err != nil {
		panic(err)
	}
	for _, src := range sources {
		fmt.Printf("%s %.0f%%\n", src.Seg, src.Disclosure*100)
	}
	// Output: wiki/plan#p0 100%
}
