// Package browserflow is a Go implementation of BrowserFlow (Papagiannis
// et al., ACM Middleware 2016): imprecise data flow tracking to prevent
// accidental data disclosure across cloud services.
//
// Instead of attaching taint labels to bytes, BrowserFlow infers data flow
// from text similarity: every text segment is fingerprinted with the
// winnowing algorithm, and a segment "discloses" a source when enough of
// the source's fingerprint appears in it. A decentralised label model (the
// Text Disclosure Model, TDM) turns those flows into policy: services carry
// privilege and confidentiality labels, segments carry tags, and a segment
// may be released to a service only when its tags are covered by the
// service's privilege label. Users may suppress tags (audited
// declassification) or allocate custom tags to restrict flows further.
//
// The Middleware type bundles the disclosure tracker, the TDM registry and
// the policy engine behind one façade:
//
//	mw, err := browserflow.New(browserflow.DefaultConfig(),
//	    browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}},
//	    browserflow.Service{Name: "docs"},
//	)
//	verdict, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", text)
//	verdict, err = mw.CheckText(pastedText, "docs") // Warn/Block/Encrypt on violation
//
// Sub-systems are available for advanced use through the returned
// Middleware's Tracker, Registry and Engine accessors.
package browserflow

import (
	"fmt"
	"sort"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/exactmatch"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/policyfile"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
)

// Re-exported core types. The aliases keep one canonical definition in the
// internal packages while giving users a single import.
type (
	// Tag is a unique human-readable policy tag (§3.1).
	Tag = tdm.Tag

	// SegmentID identifies a tracked text segment (paragraph or document).
	SegmentID = segment.ID

	// Verdict is a policy decision with its violating tags and disclosure
	// sources.
	Verdict = policy.Verdict

	// Decision is the enforcement outcome: Allow, Warn, Block or Encrypt.
	Decision = policy.Decision

	// Mode selects what a violation produces.
	Mode = policy.Mode

	// Source is one origin segment a text was found to disclose.
	Source = disclosure.Source

	// Label is a segment's TDM label (explicit, implicit and suppressed
	// tags).
	Label = tdm.Label

	// AuditEntry is one audit-trail record.
	AuditEntry = audit.Entry

	// Span is a half-open byte range of an observed text, used for passage
	// attribution.
	Span = disclosure.Span

	// SecretMatch is one exact-match secret detection.
	SecretMatch = exactmatch.Match
)

// Re-exported decision and mode constants.
const (
	DecisionAllow   = policy.DecisionAllow
	DecisionWarn    = policy.DecisionWarn
	DecisionBlock   = policy.DecisionBlock
	DecisionEncrypt = policy.DecisionEncrypt

	ModeAdvisory   = policy.ModeAdvisory
	ModeEnforcing  = policy.ModeEnforcing
	ModeEncrypting = policy.ModeEncrypting
)

// Config holds the middleware parameters. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	// NGram is the fingerprint n-gram length in normalised characters
	// (paper: 15).
	NGram int

	// Window is the winnowing window in hashes (paper: 30).
	Window int

	// Tpar is the default paragraph disclosure threshold (paper: 0.5).
	Tpar float64

	// Tdoc is the default document disclosure threshold.
	Tdoc float64

	// Mode is the enforcement mode on violations (default advisory, the
	// paper's posture).
	Mode Mode
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		NGram:  15,
		Window: 30,
		Tpar:   0.5,
		Tdoc:   0.5,
		Mode:   ModeAdvisory,
	}
}

// Service declares one cloud service and its TDM labels.
type Service struct {
	// Name identifies the service in policy decisions.
	Name string

	// Privilege is Lp: the tags the service is trusted to receive.
	Privilege []Tag

	// Confidentiality is Lc: the default tags of text created in the
	// service.
	Confidentiality []Tag
}

// Middleware is a complete BrowserFlow instance: disclosure tracker, TDM
// registry and policy engine. It is safe for concurrent use.
type Middleware struct {
	cfg      Config
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	engine   *policy.Engine
	secrets  *exactmatch.Store

	// compiled is the policy artefact this instance was built from, when
	// constructed via NewFromPolicyFile: the source of the policy hash and
	// the declared sanitizer transforms. nil for programmatic construction.
	compiled *policyfile.Compiled
}

// New builds a Middleware with the given services registered.
func New(cfg Config, services ...Service) (*Middleware, error) {
	params := disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: cfg.NGram, Window: cfg.Window},
		Tpar:        cfg.Tpar,
		Tdoc:        cfg.Tdoc,
	}
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return nil, fmt.Errorf("browserflow: %w", err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range services {
		if err := registry.RegisterService(svc.Name, tdm.NewTagSet(svc.Privilege...), tdm.NewTagSet(svc.Confidentiality...)); err != nil {
			return nil, fmt.Errorf("browserflow: %w", err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("browserflow: %w", err)
	}
	secrets, err := exactmatch.NewStore()
	if err != nil {
		return nil, fmt.Errorf("browserflow: %w", err)
	}
	return &Middleware{
		cfg:      cfg,
		tracker:  tracker,
		registry: registry,
		engine:   engine,
		secrets:  secrets,
	}, nil
}

// NewFromPolicyFile builds a Middleware from an administrator-authored
// policy document (see internal/policyfile for the JSON schema): service
// classes, propagation rules, transforms, enforcement mode, thresholds and
// exact-match secrets. The policy is compiled — class inheritance and
// propagation flattened into per-service labels — and the resulting bitset
// check table is installed on the registry, so release checks run on the
// compiled fast path.
func NewFromPolicyFile(path string) (*Middleware, error) {
	pf, err := policyfile.Load(path)
	if err != nil {
		return nil, err
	}
	compiled, err := policyfile.Compile(pf)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.Mode = pf.PolicyMode()
	cfg.Tpar = pf.Tpar
	cfg.Tdoc = pf.Tdoc
	services := make([]Service, 0, len(compiled.Services))
	for _, svc := range compiled.Services {
		services = append(services, Service{
			Name:            svc.Name,
			Privilege:       svc.Privilege,
			Confidentiality: svc.Confidentiality,
		})
	}
	mw, err := New(cfg, services...)
	if err != nil {
		return nil, err
	}
	if err := mw.registry.InstallCheckTable(compiled.Table); err != nil {
		return nil, fmt.Errorf("browserflow: %w", err)
	}
	mw.compiled = compiled
	for _, s := range pf.Secrets {
		if err := mw.RegisterSecret(s.Name, s.Value); err != nil {
			return nil, err
		}
	}
	return mw, nil
}

// Config returns the middleware configuration.
func (m *Middleware) Config() Config { return m.cfg }

// Tracker exposes the disclosure tracker for advanced use.
func (m *Middleware) Tracker() *disclosure.Tracker { return m.tracker }

// Registry exposes the TDM registry for advanced use.
func (m *Middleware) Registry() *tdm.Registry { return m.registry }

// Engine exposes the policy engine for advanced use.
func (m *Middleware) Engine() *policy.Engine { return m.engine }

// RegisterService adds a service after construction.
func (m *Middleware) RegisterService(svc Service) error {
	return m.registry.RegisterService(svc.Name, tdm.NewTagSet(svc.Privilege...), tdm.NewTagSet(svc.Confidentiality...))
}

// ObserveParagraph records the current text of a paragraph inside a
// service (the per-keystroke lookup path) and returns the verdict of the
// text living in that service — DecisionWarn (or Block/Encrypt by mode)
// while it discloses data the service may not hold.
func (m *Middleware) ObserveParagraph(service string, seg SegmentID, text string) (Verdict, error) {
	return m.engine.ObserveEdit(seg, service, text)
}

// ObserveDocument records a whole document (the second tracking
// granularity of §4.1).
func (m *Middleware) ObserveDocument(service string, doc SegmentID, text string) (Verdict, error) {
	return m.engine.ObserveDocumentEdit(doc, service, text)
}

// CheckUpload evaluates releasing a tracked segment to a destination
// service — the enforcement path for intercepted requests.
func (m *Middleware) CheckUpload(seg SegmentID, destService string) (Verdict, error) {
	return m.engine.CheckUpload(seg, destService)
}

// CheckText evaluates ad-hoc text (a form field, a request body) against a
// destination service without recording it.
func (m *Middleware) CheckText(text, destService string) (Verdict, error) {
	return m.engine.CheckText(text, destService)
}

// Suppress declassifies a tag on a segment on the user's behalf, recording
// the justification in the audit trail (§3.1).
func (m *Middleware) Suppress(user string, seg SegmentID, tag Tag, justification string) error {
	return m.registry.SuppressTag(user, seg, tag, justification)
}

// PolicyHash returns the compiled policy fingerprint when the middleware
// was built from a policy file, "" otherwise. Devices expose it (e.g. on
// /healthz) so policy drift across a fleet is visible.
func (m *Middleware) PolicyHash() string {
	if m.compiled == nil {
		return ""
	}
	return m.compiled.Hash()
}

// Transforms lists the sanitizer transforms the loaded policy declares.
func (m *Middleware) Transforms() []string {
	if m.compiled == nil {
		return nil
	}
	out := make([]string, 0, len(m.compiled.Transforms))
	for name := range m.compiled.Transforms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ApplyTransform records that the named policy-declared sanitizer was
// applied to a segment: every tag the transform suppresses that is present
// on the label is suppressed (audited declassification), with the
// transform recorded as the justification — "redaction counts as
// suppression". Tags the transform lists but the label does not carry are
// skipped. It returns the tags actually suppressed.
func (m *Middleware) ApplyTransform(user string, seg SegmentID, transform string) ([]Tag, error) {
	if m.compiled == nil {
		return nil, fmt.Errorf("browserflow: no policy file loaded; transforms require NewFromPolicyFile")
	}
	tags, ok := m.compiled.Transforms[transform]
	if !ok {
		return nil, fmt.Errorf("browserflow: unknown transform %q", transform)
	}
	label := m.registry.Label(seg)
	if label == nil {
		return nil, nil
	}
	present := label.Explicit().Union(label.Implicit())
	var applied []Tag
	for _, tag := range tags {
		if !present.Has(tag) {
			continue
		}
		if err := m.engine.Suppress(user, seg, tag, "transform:"+transform); err != nil {
			return applied, err
		}
		applied = append(applied, tag)
	}
	return applied, nil
}

// Override records a user explicitly permitting a flagged upload.
func (m *Middleware) Override(user string, seg SegmentID, destService, justification string) Verdict {
	return m.engine.Override(user, seg, destService, justification)
}

// AllocateTag reserves a custom tag owned by user.
func (m *Middleware) AllocateTag(user string, tag Tag) error {
	return m.registry.AllocateTag(user, tag)
}

// AddTagToSegment attaches an allocated custom tag to a segment; services
// already storing the segment automatically gain the tag in Lp (§3.1).
func (m *Middleware) AddTagToSegment(user string, seg SegmentID, tag Tag) error {
	return m.registry.AddTagToSegment(user, seg, tag)
}

// GrantTag lets a tag's owner add it to a service's privilege label.
func (m *Middleware) GrantTag(user, service string, tag Tag) error {
	return m.registry.GrantTag(user, service, tag)
}

// RevokeTag lets a tag's owner remove it from a service's privilege label.
func (m *Middleware) RevokeTag(user, service string, tag Tag) error {
	return m.registry.RevokeTag(user, service, tag)
}

// Label returns a copy of a segment's label, or nil if untracked.
func (m *Middleware) Label(seg SegmentID) *Label {
	return m.registry.Label(seg)
}

// AuditEntries returns the audit trail.
func (m *Middleware) AuditEntries() []AuditEntry {
	return m.registry.Audit().Entries()
}

// Similarity returns the pairwise disclosure D(a, b) in [0, 1]: the
// fraction of a's fingerprint found in b.
func (m *Middleware) Similarity(a, b string) (float64, error) {
	return m.tracker.Pairwise(a, b)
}

// Sources answers the information disclosure problem (§4) for text against
// everything observed so far, without recording the text.
func (m *Middleware) Sources(text string) ([]Source, error) {
	return m.tracker.QueryParagraph(text, "")
}

// RegisterSecret protects a short string (password, API key) by exact
// matching (§4.4's companion mechanism for sub-paragraph secrets).
func (m *Middleware) RegisterSecret(name, value string) error {
	return m.secrets.Register(name, value)
}

// ScanSecrets returns the registered secrets occurring verbatim in text.
func (m *Middleware) ScanSecrets(text string) []SecretMatch {
	return m.secrets.Scan(text)
}

// SecretStore exposes the underlying exact-match store, e.g. to wire it
// into the browser plug-in's Config.Secrets.
func (m *Middleware) SecretStore() *exactmatch.Store { return m.secrets }

// SetParagraphThreshold overrides the disclosure threshold of one
// paragraph segment (§4.2: thresholds are set "e.g. by the author of a
// document and paragraph" — 0 flags any leaked hash, 0.8 requires 80 % of
// the fingerprint).
func (m *Middleware) SetParagraphThreshold(seg SegmentID, threshold float64) {
	m.tracker.Paragraphs().SetThreshold(seg, threshold)
}

// SetDocumentThreshold overrides the disclosure threshold of one document
// segment.
func (m *Middleware) SetDocumentThreshold(seg SegmentID, threshold float64) {
	m.tracker.Documents().SetThreshold(seg, threshold)
}

// Attribute returns the passages of text that disclose src — the exact
// byte ranges whose fingerprint hashes belong to src's authoritative
// fingerprint (§4.1). Use it to highlight the offending text to the user.
func (m *Middleware) Attribute(text string, src SegmentID) ([]Span, error) {
	return m.tracker.AttributeParagraph(text, src)
}

// Forget removes a paragraph segment from tracking.
func (m *Middleware) Forget(seg SegmentID) {
	m.tracker.Forget(seg, segment.GranularityParagraph)
}

// Stats summarises the fingerprint databases.
type Stats struct {
	// ParagraphSegments and DocumentSegments count tracked segments.
	ParagraphSegments int
	DocumentSegments  int

	// DistinctHashes counts distinct fingerprint hashes across both
	// granularities.
	DistinctHashes int

	// AuditEntries counts audit-trail records.
	AuditEntries int
}

// Stats returns current sizes.
func (m *Middleware) Stats() Stats {
	p := m.tracker.Paragraphs().Stats()
	d := m.tracker.Documents().Stats()
	return Stats{
		ParagraphSegments: p.Segments,
		DocumentSegments:  d.Segments,
		DistinctHashes:    p.DistinctHashes + d.DistinctHashes,
		AuditEntries:      m.registry.Audit().Len(),
	}
}

// Save persists the middleware state to path. A non-empty passphrase
// encrypts the snapshot at rest with AES-256-GCM (§4.4).
func (m *Middleware) Save(path, passphrase string) error {
	var key []byte
	if passphrase != "" {
		key = store.DeriveKey(passphrase)
	}
	return store.Save(path, store.Capture(m.tracker, m.registry), key)
}

// Load restores middleware state saved by Save.
func (m *Middleware) Load(path, passphrase string) error {
	var key []byte
	if passphrase != "" {
		key = store.DeriveKey(passphrase)
	}
	snapshot, err := store.Load(path, key)
	if err != nil {
		return err
	}
	return snapshot.Restore(m.tracker, m.registry)
}
