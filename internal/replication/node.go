// Package replication turns a single bftagd into a primary/replica
// cluster by shipping its write-ahead log.
//
// # Design
//
// PR 3 made every policy mutation a byte-deterministic, idempotent WAL
// record; replication simply ships those bytes. A primary serves two
// endpoints: /v1/repl/snapshot hands a bootstrapping replica a
// consistent checkpoint behind a WAL epoch barrier, and
// /v1/repl/stream?from=<seg,off> long-polls raw CRC-framed record bytes
// from any position in the log. Replicas *byte-mirror* the stream —
// identical segment file names, identical headers, identical frame bytes
// at identical offsets — so "replica state is a prefix of the primary's
// log" is a literal file comparison, restarts resume from the local
// mirror's end position, and every applied record goes through the same
// idempotent store.Applier machinery crash recovery uses.
//
// # Fencing
//
// Every node persists a monotone term. Promotion (bfctl promote) bumps
// the chosen replica's term; any node that observes a higher term than
// its own — via an explicit /v1/repl/fence call or an X-BF-Term request
// header — steps down to the fenced role and refuses writes with 421 +
// the new primary's address. A deposed primary that comes back from a
// crash therefore cannot accept writes from any client that has learned
// the new term, and the promotion flow fences it explicitly.
//
// # Consistency
//
// Replication is asynchronous: replicas are eventually consistent and
// may serve slightly stale reads (they report lag_records on /healthz so
// callers can bound staleness). Writes always linearise through the
// primary. Zero acked-write loss holds when the promoted replica had
// fully caught up (lag 0) — the operator flow checks this before
// promoting, and fsync=always on the primary guarantees acked writes
// survive its crash for the repaired node to rejoin with.
package replication

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"github.com/lsds/browserflow/internal/wal"
)

// Role is a node's position in the cluster.
type Role int

const (
	// RolePrimary accepts writes and serves the replication stream.
	RolePrimary Role = iota + 1

	// RoleReplica mirrors the primary's WAL and serves read-only traffic.
	RoleReplica

	// RoleFenced is a deposed primary: it refuses writes (421) until an
	// operator re-seeds it as a replica of the new primary.
	RoleFenced
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	case RoleFenced:
		return "fenced"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// NodeOptions configures a Node.
type NodeOptions struct {
	// Role is the starting role.
	Role Role

	// Self is this node's advertised base URL (what peers should dial).
	Self string

	// Primary is the current primary's advertised base URL; empty when
	// this node is the primary.
	Primary string

	// TermFile persists the node's term across restarts; empty keeps the
	// term in memory only (tests).
	TermFile string

	// FS is the filesystem for TermFile; nil means the real one.
	FS wal.FS

	// Logf receives role/term transition notes; nil discards.
	Logf func(format string, args ...interface{})
}

// Node tracks one process's role, fencing term and current primary. It
// is safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	role    Role
	term    uint64
	primary string
	self    string

	termFile string
	fs       wal.FS
	logf     func(string, ...interface{})
}

// NewNode builds a Node, loading the persisted term when TermFile exists.
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.Role == 0 {
		opts.Role = RolePrimary
	}
	if opts.FS == nil {
		opts.FS = wal.OSFS{}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	n := &Node{
		role:     opts.Role,
		primary:  opts.Primary,
		self:     opts.Self,
		termFile: opts.TermFile,
		fs:       opts.FS,
		logf:     opts.Logf,
	}
	if opts.TermFile != "" {
		data, err := opts.FS.ReadFile(opts.TermFile)
		switch {
		case err == nil:
			term, perr := strconv.ParseUint(string(bytes.TrimSpace(data)), 10, 64)
			if perr != nil {
				return nil, fmt.Errorf("replication: term file %s: %v", opts.TermFile, perr)
			}
			n.term = term
		case os.IsNotExist(err):
			// First boot: term 0 until persisted.
		default:
			return nil, fmt.Errorf("replication: read term file: %w", err)
		}
	}
	return n, nil
}

// persistTermLocked durably writes the current term (temp + rename +
// dir sync, the same discipline as snapshots). Caller holds n.mu.
func (n *Node) persistTermLocked() error {
	if n.termFile == "" {
		return nil
	}
	dir := filepath.Dir(n.termFile)
	if err := n.fs.MkdirAll(dir, 0o700); err != nil {
		return fmt.Errorf("replication: mkdir for term file: %w", err)
	}
	tmp := n.termFile + ".tmp"
	f, err := n.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("replication: write term file: %w", err)
	}
	if _, err := f.Write([]byte(strconv.FormatUint(n.term, 10) + "\n")); err != nil {
		f.Close()
		return fmt.Errorf("replication: write term file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("replication: sync term file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replication: close term file: %w", err)
	}
	if err := n.fs.Rename(tmp, n.termFile); err != nil {
		return fmt.Errorf("replication: install term file: %w", err)
	}
	return n.fs.SyncDir(dir)
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Self returns this node's advertised address.
func (n *Node) Self() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// Primary returns the advertised address of the primary this node
// believes in (its own Self when it is the primary).
func (n *Node) Primary() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		return n.self
	}
	return n.primary
}

// SetPrimary repoints a replica (or fenced node) at a new primary
// address without changing role or term.
func (n *Node) SetPrimary(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RolePrimary && addr != "" && addr != n.primary {
		n.logf("replication: repointing at primary %s", addr)
		n.primary = addr
	}
}

// Promote makes this node the primary under a strictly higher term,
// persisting the term before the new role takes effect. It is the only
// way a node gains the primary role after construction.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		return n.term, nil
	}
	n.term++
	if err := n.persistTermLocked(); err != nil {
		n.term--
		return 0, err
	}
	n.role = RolePrimary
	n.primary = ""
	n.logf("replication: promoted to primary at term %d", n.term)
	return n.term, nil
}

// ObserveTerm feeds a term (and optionally the address of the primary
// that owns it) observed on the wire into the node's fencing logic. A
// higher term always wins: the node adopts it, and a primary observing
// one steps down to RoleFenced — it can no longer prove its writes are
// on the authoritative timeline. It reports whether this call fenced a
// primary.
func (n *Node) ObserveTerm(term uint64, primary string) (fenced bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if term <= n.term {
		return false, nil
	}
	prev := n.term
	n.term = term
	if err := n.persistTermLocked(); err != nil {
		n.term = prev
		return false, err
	}
	if primary != "" && primary != n.self {
		n.primary = primary
	}
	if n.role == RolePrimary {
		n.role = RoleFenced
		n.logf("replication: fenced by term %d (primary %s)", term, primary)
		return true, nil
	}
	return false, nil
}

// Snapshot returns a consistent (role, term, primary) triple.
func (n *Node) Snapshot() (Role, uint64, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	primary := n.primary
	if n.role == RolePrimary {
		primary = n.self
	}
	return n.role, n.term, primary
}
