package replication

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/wal"
)

// mirror byte-mirrors the primary's WAL into a local directory. Segment
// file names, headers and frame bytes are identical to the primary's, so
// a replica's on-disk log is a literal byte prefix of the primary's and
// a restart can resume streaming from the local end position.
type mirror struct {
	fs   wal.FS
	dir  string
	sync bool // fsync after every appended batch

	seg  uint64 // segment currently open for append (0 = none)
	off  int64  // next write offset within seg
	file wal.File
}

// errDiverged reports a mirror/stream position mismatch. It is not
// recoverable in place: the replica must discard its mirror and
// re-bootstrap from a snapshot.
type errDiverged struct {
	seg        uint64
	want, have int64
}

func (e *errDiverged) Error() string {
	return fmt.Sprintf("replication: mirror diverged on segment %d: stream offset %d, local size %d",
		e.seg, e.want, e.have)
}

// newMirror returns a mirror writing segments under dir. When syncEach is
// true every appended batch is fsynced before apply, matching the
// acked-write durability of a primary running fsync=always.
func newMirror(fs wal.FS, dir string, syncEach bool) *mirror {
	return &mirror{fs: fs, dir: dir, sync: syncEach}
}

// segPath returns the path of segment idx.
func (m *mirror) segPath(idx uint64) string {
	return filepath.Join(m.dir, wal.SegmentName(idx))
}

// closeFile closes any open segment handle.
func (m *mirror) closeFile() error {
	if m.file == nil {
		return nil
	}
	err := m.file.Close()
	m.file = nil
	m.seg = 0
	m.off = 0
	return err
}

// openFor positions the mirror for an append at start. It opens (or
// creates) the segment file and verifies the local size matches the
// stream offset exactly — any mismatch means the mirror has diverged
// from the primary's log and the caller must re-bootstrap.
func (m *mirror) openFor(start wal.Pos) error {
	if m.file != nil && m.seg == start.Segment {
		if m.off != start.Offset {
			// The stream skipped or repeated bytes relative to what we
			// hold open; re-verify against the file below.
			if err := m.closeFile(); err != nil {
				return err
			}
		} else {
			return nil
		}
	}
	if m.file != nil {
		if err := m.closeFile(); err != nil {
			return err
		}
	}

	path := m.segPath(start.Segment)
	data, err := m.fs.ReadFile(path)
	switch {
	case err == nil:
		if int64(len(data)) != start.Offset {
			return &errDiverged{seg: start.Segment, want: start.Offset, have: int64(len(data))}
		}
		// Reopen for append. O_APPEND matters for the real filesystem;
		// MemFS appends from the end regardless.
		f, err := m.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return fmt.Errorf("replication: open mirror segment: %w", err)
		}
		m.file, m.seg, m.off = f, start.Segment, start.Offset
		return nil

	case os.IsNotExist(err):
		// A fresh segment must begin at its header boundary.
		if start.Offset != wal.HeaderSize {
			return &errDiverged{seg: start.Segment, want: start.Offset, have: 0}
		}
		if err := m.fs.MkdirAll(m.dir, 0o700); err != nil {
			return fmt.Errorf("replication: mkdir mirror dir: %w", err)
		}
		f, err := m.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
		if err != nil {
			return fmt.Errorf("replication: create mirror segment: %w", err)
		}
		if _, err := f.Write(wal.SegmentHeader(start.Segment)); err != nil {
			f.Close()
			return fmt.Errorf("replication: write mirror segment header: %w", err)
		}
		if m.sync {
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("replication: sync mirror segment header: %w", err)
			}
			if err := m.fs.SyncDir(m.dir); err != nil {
				f.Close()
				return fmt.Errorf("replication: sync mirror dir: %w", err)
			}
		}
		m.file, m.seg, m.off = f, start.Segment, wal.HeaderSize
		return nil

	default:
		return fmt.Errorf("replication: stat mirror segment: %w", err)
	}
}

// appendAt writes frames at position start, verifying the local segment
// ends exactly there first. Returns the position just past the written
// bytes.
func (m *mirror) appendAt(start wal.Pos, frames []byte) (wal.Pos, error) {
	if len(frames) == 0 {
		return start, nil
	}
	if err := m.openFor(start); err != nil {
		return wal.Pos{}, err
	}
	if _, err := m.file.Write(frames); err != nil {
		m.closeFile() //nolint:errcheck
		return wal.Pos{}, fmt.Errorf("replication: append mirror segment: %w", err)
	}
	if m.sync {
		if err := m.file.Sync(); err != nil {
			m.closeFile() //nolint:errcheck
			return wal.Pos{}, fmt.Errorf("replication: sync mirror segment: %w", err)
		}
	}
	m.off += int64(len(frames))
	return wal.Pos{Segment: m.seg, Offset: m.off}, nil
}

// wipe closes the open segment and removes every WAL segment and
// checkpoint file under dir, preparing a clean re-bootstrap.
func (m *mirror) wipe() error {
	if err := m.closeFile(); err != nil {
		return err
	}
	names, err := m.fs.ReadDirNames(m.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("replication: list mirror dir: %w", err)
	}
	for _, name := range names {
		_, isSeg := wal.ParseSegmentName(name)
		_, isCkpt := store.ParseCheckpointName(name)
		if !isSeg && !isCkpt {
			continue
		}
		if err := m.fs.Remove(filepath.Join(m.dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("replication: wipe %s: %w", name, err)
		}
	}
	return m.fs.SyncDir(m.dir)
}
