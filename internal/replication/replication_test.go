package replication

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

var testEpoch = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func fixedClock() time.Time { return testEpoch }

// world is one complete engine stack with a deterministic audit clock.
type world struct {
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	engine   *policy.Engine
}

func newWorld(t testing.TB) *world {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 3},
		Tpar:        0.3,
		Tdoc:        0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLogWithClock(fixedClock))
	if err := registry.RegisterService("alpha", tdm.NewTagSet("ta"), tdm.NewTagSet("ta")); err != nil {
		t.Fatal(err)
	}
	if err := registry.RegisterService("bravo", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		t.Fatal(err)
	}
	return &world{tracker: tracker, registry: registry, engine: engine}
}

// export captures comparable state bytes: the full snapshot minus the
// wall-clock SavedAt stamp and the WAL epoch.
func export(t testing.TB, tracker *disclosure.Tracker, registry *tdm.Registry) []byte {
	t.Helper()
	snap := store.Capture(tracker, registry)
	snap.SavedAt = time.Time{}
	snap.WALSeg = 0
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

var testTexts = []string{
	"the quarterly revenue forecast was revised downwards on friday",
	"launch codes and rollout schedule for the atlas project",
	"meeting notes from the security review of the billing system",
	"customer escalation about data residency in the eu region",
	"draft press release for the upcoming browserflow launch",
	"performance numbers from the winnowing benchmark last night",
}

var testSegs = []segment.ID{"alpha/doc#p0", "alpha/doc#p1", "alpha/doc#p2", "alpha/notes#p0"}

// mutate applies one deterministic mutation to the engine.
func mutate(t testing.TB, e *policy.Engine, rng *rand.Rand) {
	t.Helper()
	switch k := rng.Intn(10); {
	case k < 5:
		seg := testSegs[rng.Intn(len(testSegs))]
		text := testTexts[rng.Intn(len(testTexts))]
		if _, err := e.ObserveEdit(seg, "alpha", text); err != nil {
			t.Fatalf("observe: %v", err)
		}
	case k < 6:
		text := testTexts[rng.Intn(len(testTexts))] + " " + testTexts[rng.Intn(len(testTexts))]
		if _, err := e.ObserveDocumentEdit("alpha/doc", "alpha", text); err != nil {
			t.Fatalf("observe document: %v", err)
		}
	case k < 7:
		seg := testSegs[rng.Intn(len(testSegs))]
		if err := e.Suppress("auditor", seg, "ta", "reviewed and cleared"); err != nil &&
			!strings.Contains(err.Error(), "not") {
			t.Fatalf("suppress: %v", err)
		}
	case k < 8:
		tag := tdm.Tag(fmt.Sprintf("user:proj%d", rng.Intn(3)))
		_ = e.AllocateTag("user", tag) // duplicate allocations error by design
	case k < 9:
		tag := tdm.Tag(fmt.Sprintf("user:proj%d", rng.Intn(3)))
		_ = e.GrantTag("user", "bravo", tag)
	default:
		seg := testSegs[rng.Intn(len(testSegs))]
		e.Override("boss", seg, "bravo", "business need")
	}
}

// primaryFixture is a running primary: engine + durable store + node +
// replication service behind an httptest server.
type primaryFixture struct {
	w       *world
	durable *store.Durable
	node    *Node
	svc     *Service
	server  *httptest.Server
	dir     string
}

func newPrimaryFixture(t *testing.T, fsync wal.SyncPolicy) *primaryFixture {
	t.Helper()
	dir := t.TempDir()
	w := newWorld(t)
	durable, err := store.OpenDurable(store.DurableOptions{
		Dir:   dir,
		Fsync: fsync,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	w.engine.SetJournal(durable)
	node, err := NewNode(NodeOptions{Role: RolePrimary, TermFile: filepath.Join(dir, "TERM")})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(node, PrimaryOptions{MaxWait: 2 * time.Second}, t.Logf)
	svc.SetPrimary(NewPrimary(node, durable, PrimaryOptions{MaxWait: 2 * time.Second, Logf: t.Logf}))
	server := httptest.NewServer(svc.Handler())
	t.Cleanup(server.Close)
	t.Cleanup(func() { durable.Close() })
	return &primaryFixture{w: w, durable: durable, node: node, svc: svc, server: server, dir: dir}
}

// replicaFixture is a running replica with its own engine stack.
type replicaFixture struct {
	w       *world
	node    *Node
	replica *Replica
	dir     string
	client  *http.Client
}

func newReplicaFixture(t *testing.T, primaryURL, dir string, client *http.Client) *replicaFixture {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	w := newWorld(t)
	node, err := NewNode(NodeOptions{
		Role:     RoleReplica,
		Primary:  primaryURL,
		TermFile: filepath.Join(dir, "TERM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OpenReplica(node, w.engine, ReplicaOptions{
		Dir:          dir,
		HTTPClient:   client,
		PollWait:     250 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	return &replicaFixture{w: w, node: node, replica: rep, dir: dir, client: client}
}

// startBootstrapped starts the replica and waits for its initial
// snapshot bootstrap so subsequent mutations arrive via the stream.
func startBootstrapped(t *testing.T, r *replicaFixture) {
	t.Helper()
	r.replica.Start()
	waitFor(t, 10*time.Second, "initial bootstrap", func() bool {
		return r.replica.Status().Bootstraps >= 1
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports whether the replica has applied everything the
// primary's WAL holds.
func caughtUp(p *primaryFixture, r *replicaFixture) bool {
	st := r.replica.Status()
	return st.Connected && st.LagRecords == 0 && st.Position == p.durable.WAL().End().String()
}

// assertStateMatch compares full engine state between primary and replica.
func assertStateMatch(t *testing.T, p *primaryFixture, r *replicaFixture) {
	t.Helper()
	want := export(t, p.w.tracker, p.w.registry)
	got := export(t, r.w.tracker, r.w.registry)
	if !bytes.Equal(want, got) {
		t.Fatalf("replica state diverged from primary\nprimary: %s\nreplica: %s", want, got)
	}
}

// assertBytePrefix verifies every mirrored segment is byte-identical to
// a prefix of the primary's same-named segment file.
func assertBytePrefix(t *testing.T, primaryDir, replicaDir string) {
	t.Helper()
	names, err := os.ReadDir(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, de := range names {
		if _, ok := wal.ParseSegmentName(de.Name()); !ok {
			continue
		}
		rep, err := os.ReadFile(filepath.Join(replicaDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prim, err := os.ReadFile(filepath.Join(primaryDir, de.Name()))
		if err != nil {
			t.Fatalf("segment %s exists on replica but not primary: %v", de.Name(), err)
		}
		if len(rep) > len(prim) || !bytes.Equal(rep, prim[:len(rep)]) {
			t.Fatalf("segment %s: replica bytes are not a prefix of the primary's (%d vs %d bytes)",
				de.Name(), len(rep), len(prim))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no mirrored segments to compare")
	}
}

func TestReplicaFollowsPrimary(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "replica catch-up", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)
	assertBytePrefix(t, p.dir, r.dir)

	st := r.replica.Status()
	if st.Role != "replica" {
		t.Fatalf("role = %s, want replica", st.Role)
	}
	if st.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want 1", st.Bootstraps)
	}
	if st.AppliedRecords == 0 {
		t.Fatal("replica applied no records")
	}
}

func TestReplicaRestartResumesFromLocalMirror(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "first catch-up", func() bool { return caughtUp(p, r) })
	r.replica.Stop()

	// More traffic while the replica is down.
	for i := 0; i < 100; i++ {
		mutate(t, p.w.engine, rng)
	}

	// Restart from the same directory: local recovery must resume the
	// stream without re-bootstrapping.
	r2 := newReplicaFixture(t, p.server.URL, r.dir, nil)
	r2.replica.Start()
	waitFor(t, 10*time.Second, "resume catch-up", func() bool { return caughtUp(p, r2) })
	assertStateMatch(t, p, r2)
	assertBytePrefix(t, p.dir, r2.dir)
	if b := r2.replica.Status().Bootstraps; b != 0 {
		t.Fatalf("bootstraps after restart = %d, want 0 (must resume from mirror)", b)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	inj := faultinject.New(nil, 1)
	client := &http.Client{Transport: inj}
	r := newReplicaFixture(t, p.server.URL, "", client)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "pre-partition catch-up", func() bool { return caughtUp(p, r) })

	inj.Partition()
	for i := 0; i < 80; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "disconnect noticed", func() bool {
		return !r.replica.Status().Connected
	})

	inj.Heal()
	waitFor(t, 10*time.Second, "post-heal catch-up", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)
	assertBytePrefix(t, p.dir, r.dir)
	if b := r.replica.Status().Bootstraps; b != 1 {
		t.Fatalf("bootstraps = %d, want 1 (partition must not force re-bootstrap)", b)
	}
}

func TestChaosTransportNeverDiverges(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	inj := faultinject.New(nil, 42)
	// A middlebox that randomly truncates stream bodies and injects 503s.
	inj.AddRule(faultinject.Rule{PathPrefix: "/v1/repl/stream", Kind: faultinject.KindTruncateBody, P: 0.3})
	inj.AddRule(faultinject.Rule{PathPrefix: "/v1/repl/stream", Kind: faultinject.KindStatus, P: 0.2})
	inj.AddRule(faultinject.Rule{PathPrefix: "/v1/repl/stream", Kind: faultinject.KindResetAfterSend, P: 0.2})
	client := &http.Client{Transport: inj}
	r := newReplicaFixture(t, p.server.URL, "", client)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 30*time.Second, "chaos catch-up", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)
	assertBytePrefix(t, p.dir, r.dir)
}

func TestStreamPositionGoneTriggersRebootstrap(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 60; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "catch-up", func() bool { return caughtUp(p, r) })
	r.replica.Stop()

	// Advance the primary past two checkpoints so the replica's position
	// is truncated out of the log.
	for round := 0; round < 2; round++ {
		for i := 0; i < 60; i++ {
			mutate(t, p.w.engine, rng)
		}
		if err := p.durable.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	r2 := newReplicaFixture(t, p.server.URL, r.dir, nil)
	r2.replica.Start()
	waitFor(t, 10*time.Second, "re-bootstrap catch-up", func() bool { return caughtUp(p, r2) })
	assertStateMatch(t, p, r2)
	if b := r2.replica.Status().Bootstraps; b != 1 {
		t.Fatalf("bootstraps = %d, want exactly 1 re-bootstrap", b)
	}
}

func TestPromotionFencesOldPrimary(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 120; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "catch-up before promotion", func() bool { return caughtUp(p, r) })

	// Promote the replica.
	durable, term, err := r.replica.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	if term != 1 {
		t.Fatalf("promoted term = %d, want 1", term)
	}
	if r.node.Role() != RolePrimary {
		t.Fatalf("promoted role = %s", r.node.Role())
	}

	// The new primary accepts writes through its own durable journal.
	if err := r.w.engine.AllocateTag("user", "user:postpromo"); err != nil {
		t.Fatalf("write on new primary: %v", err)
	}

	// State right after promotion still matches what the old primary had.
	// (The new write exists only on the new primary, so compare exports
	// captured before it... instead verify via a fresh recovery below.)

	// Fence the old primary explicitly (what bfctl promote does).
	resp, err := http.Post(p.server.URL+"/v1/repl/fence", "application/json",
		strings.NewReader(fmt.Sprintf(`{"term": %d, "primary": "http://new-primary"}`, term)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p.node.Role() != RoleFenced {
		t.Fatalf("old primary role = %s, want fenced", p.node.Role())
	}
	if p.node.Term() != term {
		t.Fatalf("old primary term = %d, want %d", p.node.Term(), term)
	}

	// A guarded old primary now refuses writes with 421 + the new
	// primary's address.
	guarded := httptest.NewServer(Guard(p.node, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), t.Logf))
	defer guarded.Close()
	wresp, err := http.Post(guarded.URL+"/v1/observe", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on fenced primary: status %d, want 421", wresp.StatusCode)
	}
	if got := wresp.Header.Get(HeaderPrimary); got != "http://new-primary" {
		t.Fatalf("421 primary header = %q", got)
	}
	// Reads still pass the guard.
	rresp, err := http.Get(guarded.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("read on fenced primary: status %d, want 200", rresp.StatusCode)
	}
	// Scatter contributions are primary-only even though they are
	// read-only: a fenced ex-primary serving them could hide a
	// just-observed source and flip a block into an allow, so the guard
	// 421s the query and the router rediscovers the real primary.
	qresp, err := http.Post(guarded.URL+"/v1/part/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("part query on fenced primary: status %d, want 421", qresp.StatusCode)
	}

	// The new primary's durable state survives a reopen: recover a fresh
	// world from its directory and compare.
	durable.Close()
	w2 := newWorld(t)
	d2, err := store.OpenDurable(store.DurableOptions{Dir: r.dir, Fsync: wal.SyncNone}, w2.tracker, w2.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	want := export(t, r.w.tracker, r.w.registry)
	got := export(t, w2.tracker, w2.registry)
	if !bytes.Equal(want, got) {
		t.Fatal("new primary state does not survive recovery from its mirror+journal")
	}
}

func TestInPlacePromotionViaServiceEndpoint(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)

	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 50; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "catch-up", func() bool { return caughtUp(p, r) })

	// Mount the replica's replication service and promote via HTTP.
	var promoted *store.Durable
	rsvc := NewService(r.node, PrimaryOptions{MaxWait: time.Second, Logf: t.Logf}, t.Logf)
	rsvc.SetReplica(r.replica)
	rsvc.OnPromote(func(d *store.Durable) { promoted = d })
	rserver := httptest.NewServer(rsvc.Handler())
	defer rserver.Close()

	resp, err := http.Post(rserver.URL+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %v", resp.StatusCode, body)
	}
	if body["role"] != "primary" || body["promoted"] != true {
		t.Fatalf("promote response: %v", body)
	}
	if promoted == nil {
		t.Fatal("OnPromote callback not invoked")
	}
	defer promoted.Close()

	// The promoted node now serves the replication stream itself: a new
	// replica can chain off it.
	r2 := newReplicaFixture(t, rserver.URL, "", nil)
	startBootstrapped(t, r2)
	if err := r.w.engine.AllocateTag("user", "user:chained"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "chained replica catch-up", func() bool {
		st := r2.replica.Status()
		return st.Connected && st.LagRecords == 0 && st.Position == promoted.WAL().End().String()
	})
	want := export(t, r.w.tracker, r.w.registry)
	got := export(t, r2.w.tracker, r2.w.registry)
	if !bytes.Equal(want, got) {
		t.Fatal("chained replica state diverged from promoted primary")
	}
}
