package replication

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/wal"
)

// TestDigestEndpointServesPrimaryState checks /v1/repl/digest serves the
// tracker digest breakdown with the combined fold mirrored in the header.
func TestDigestEndpointServesPrimaryState(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		mutate(t, p.w.engine, rng)
	}

	resp, err := http.Get(p.server.URL + "/v1/repl/digest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest endpoint: status %d", resp.StatusCode)
	}
	var body struct {
		Position string                   `json:"position"`
		Digest   disclosure.TrackerDigest `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := p.w.tracker.Digest()
	if body.Digest.Combined != want.Combined {
		t.Fatalf("served digest %016x, tracker reports %016x", body.Digest.Combined, want.Combined)
	}
	if body.Digest.Paragraphs != want.Paragraphs || body.Digest.Documents != want.Documents {
		t.Fatalf("per-DB digest breakdown mismatch: %+v vs %+v", body.Digest, want)
	}
	if got := resp.Header.Get(HeaderDigest); got != fmt.Sprintf("%016x", want.Combined) {
		t.Fatalf("%s header = %q, want %016x", HeaderDigest, got, want.Combined)
	}
	if body.Position != p.durable.WAL().End().String() {
		t.Fatalf("digest position %s, WAL end %s", body.Position, p.durable.WAL().End())
	}
}

// TestDivergedReplicaAutoRebootstraps is the anti-entropy E2E: a replica
// whose in-memory state silently diverges while standing at the same WAL
// position as the primary is detected via the stream digest exchange,
// ordered to re-bootstrap with a 410 + X-BF-Diverged, and comes back
// byte-identical — all without operator involvement.
func TestDivergedReplicaAutoRebootstraps(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		mutate(t, p.w.engine, rng)
	}

	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)
	waitFor(t, 10*time.Second, "replica catch-up", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)

	// Silently corrupt the replica's in-memory state behind the journal's
	// back: a direct tracker mutation moves its digest without moving its
	// WAL position — exactly the failure replication cannot see without
	// digests (a stuck apply, a lost update, memory corruption).
	if _, err := r.w.tracker.ObserveParagraph("alpha/phantom#p0", testTexts[0]); err != nil {
		t.Fatal(err)
	}
	if r.w.tracker.Digest().Combined == p.w.tracker.Digest().Combined {
		t.Fatal("divergence setup failed: digests still match")
	}

	// The replica keeps long-polling while caught up; after
	// divergenceStrikes consecutive mismatched rounds at the same
	// position the primary answers 410 + X-BF-Diverged and the replica
	// re-bootstraps on its own.
	waitFor(t, 15*time.Second, "divergence-triggered re-bootstrap", func() bool {
		return r.replica.Status().Bootstraps >= 2
	})
	waitFor(t, 10*time.Second, "post-repair catch-up", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)

	if got := r.replica.Status().Divergences; got < 1 {
		t.Fatalf("replica divergence counter = %d, want >= 1", got)
	}
	p.svc.mu.Lock()
	prim := p.svc.primary
	p.svc.mu.Unlock()
	if got := prim.Divergences(); got < 1 {
		t.Fatalf("primary divergence counter = %d, want >= 1", got)
	}

	// The repaired replica must keep following normally.
	for i := 0; i < 20; i++ {
		mutate(t, p.w.engine, rng)
	}
	waitFor(t, 10*time.Second, "post-repair streaming", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)
	assertBytePrefix(t, p.dir, r.dir)
	if got := r.replica.Status().Bootstraps; got > 2 {
		t.Fatalf("replica kept re-bootstrapping after repair: %d bootstraps", got)
	}
}

// TestMatchingDigestsNeverTriggerRebootstrap pins the no-false-positive
// property: a healthy replica exchanging digests on every round while
// traffic starts and stops never earns a confirmed divergence.
func TestMatchingDigestsNeverTriggerRebootstrap(t *testing.T) {
	p := newPrimaryFixture(t, wal.SyncNone)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		mutate(t, p.w.engine, rng)
	}
	r := newReplicaFixture(t, p.server.URL, "", nil)
	startBootstrapped(t, r)

	// Bursts separated by caught-up idle windows (several digest
	// adjudication rounds each).
	for burst := 0; burst < 3; burst++ {
		waitFor(t, 10*time.Second, "burst catch-up", func() bool { return caughtUp(p, r) })
		time.Sleep(600 * time.Millisecond)
		for i := 0; i < 15; i++ {
			mutate(t, p.w.engine, rng)
		}
	}
	waitFor(t, 10*time.Second, "final catch-up", func() bool { return caughtUp(p, r) })
	assertStateMatch(t, p, r)

	if got := r.replica.Status().Bootstraps; got != 1 {
		t.Fatalf("healthy replica re-bootstrapped: %d bootstraps", got)
	}
	if got := r.replica.Status().Divergences; got != 0 {
		t.Fatalf("healthy replica charged with %d divergences", got)
	}
}
