package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// ReplicaOptions configures OpenReplica.
type ReplicaOptions struct {
	// Dir holds the mirrored WAL segments and local checkpoints.
	Dir string

	// FS is the filesystem; nil means the real one.
	FS wal.FS

	// Key encrypts local checkpoints at rest (mirrors the primary's -key).
	Key []byte

	// MaxRecordBytes bounds one WAL record (default
	// wal.DefaultMaxRecordBytes).
	MaxRecordBytes int

	// HTTPClient dials the primary; nil uses a default client. Its
	// transport may be wrapped (resilience middleware, fault injection).
	// Long-poll requests get per-request contexts, so Timeout should be 0.
	HTTPClient *http.Client

	// PollWait is the server-side long-poll budget per stream call
	// (default 10s).
	PollWait time.Duration

	// RetryBackoff is the pause after a failed round to the primary
	// (default 200ms).
	RetryBackoff time.Duration

	// SyncEach fsyncs the mirror after every applied batch; it is the
	// replica-side equivalent of fsync=always (default true; set
	// NoSync to disable for benchmarks).
	NoSync bool

	// PromoteFsync is the WAL fsync policy the node adopts when promoted
	// (zero = wal.SyncAlways).
	PromoteFsync wal.SyncPolicy

	// PromoteFsyncInterval is the group-commit cadence for
	// wal.SyncInterval after promotion.
	PromoteFsyncInterval time.Duration

	// PromoteSegmentBytes is the WAL rotation threshold after promotion.
	PromoteSegmentBytes int64

	// PromoteCheckpointEvery is the background checkpoint cadence after
	// promotion (0 disables).
	PromoteCheckpointEvery time.Duration

	// KeepCheckpoints bounds local checkpoint files (default
	// store.DefaultKeepCheckpoints).
	KeepCheckpoints int

	// Logf receives replication notes; nil discards.
	Logf func(format string, args ...interface{})

	// Obs, when set, receives replication metrics (lag records/bytes,
	// applied records, bootstraps, connected flag, stream round + apply
	// latency histograms) and "replica.apply" spans attributed to the
	// trace IDs journalled inside streamed observe records.
	Obs *obs.Obs

	// Split makes this a filtered replica for a partition split: the
	// bootstrap snapshot is restricted to the inclusive key range, the
	// mirror still copies the primary's WAL bytes verbatim but streamed
	// records materialise tracker state only for in-range segments
	// (registry effects stay global), and digest-based anti-entropy is
	// disabled — a filtered replica's state digest is intentionally not
	// the primary's. Nil replicates everything.
	Split *SplitRange
}

// SplitRange is the inclusive partition-key range a filtered replica
// materialises (see segment.Key).
type SplitRange struct {
	Lo, Hi uint32
}

// Contains reports whether partition key k falls in the range.
func (sr SplitRange) Contains(k uint32) bool { return k >= sr.Lo && k <= sr.Hi }

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.FS == nil {
		o.FS = wal.OSFS{}
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = wal.DefaultMaxRecordBytes
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Millisecond
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = store.DefaultKeepCheckpoints
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// ReplicaStatus is a point-in-time replica summary (exported on /healthz
// and /v1/repl/status).
type ReplicaStatus struct {
	Role           string `json:"role"`
	Term           uint64 `json:"term"`
	Primary        string `json:"primary,omitempty"`
	Position       string `json:"position"`
	LagRecords     int64  `json:"lag_records"`
	LagBytes       int64  `json:"lag_bytes"`
	AppliedRecords int64  `json:"appliedRecords"`
	Bootstraps     int64  `json:"bootstraps"`
	Divergences    int64  `json:"divergences"`
	Connected      bool   `json:"connected"`
	LastError      string `json:"lastError,omitempty"`
}

// Replica byte-mirrors a primary's WAL and applies every streamed record
// through the same idempotent machinery crash recovery uses. Reads are
// served from the live engine; writes are fenced off by the Guard.
type Replica struct {
	node     *Node
	engine   *policy.Engine
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	opts     ReplicaOptions
	mirror   *mirror

	mu          sync.Mutex
	applier     *store.Applier
	pos         wal.Pos
	lag         int64
	lagBytes    int64
	applied     int64
	bootstraps  int64
	divergences int64
	connected   bool
	lastErr     string
	lastCkptSeg uint64

	runMu   sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	stopped bool
}

// OpenReplica recovers local replica state (newest checkpoint + mirrored
// WAL replay, the store.Durable recovery discipline) into the engine's
// tracker and registry, and returns a Replica positioned at the end of
// its local mirror. Call Start to begin streaming.
func OpenReplica(node *Node, engine *policy.Engine, opts ReplicaOptions) (*Replica, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("replication: replica Dir is required")
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o700); err != nil {
		return nil, fmt.Errorf("replication: mkdir replica dir: %w", err)
	}
	r := &Replica{
		node:     node,
		engine:   engine,
		tracker:  engine.Tracker(),
		registry: engine.Registry(),
		opts:     opts,
		mirror:   newMirror(opts.FS, opts.Dir, !opts.NoSync),
	}
	if err := r.recoverLocal(); err != nil {
		return nil, err
	}
	r.exposeMetrics()
	return r, nil
}

// newApplier builds a record applier wired to the observability span
// ring (when configured), so streamed observe records that carry a
// journalled trace ID emit "replica.apply" spans.
func (r *Replica) newApplier() (*store.Applier, error) {
	applier, err := store.NewApplier(r.tracker, r.registry)
	if err != nil {
		return nil, err
	}
	applier.SetTraceLog(r.opts.Obs.Traces())
	if sr := r.opts.Split; sr != nil {
		split := *sr
		applier.SetSegmentFilter(func(seg segment.ID) bool {
			return split.Contains(segment.Key(seg))
		})
	}
	return applier, nil
}

// exposeMetrics registers the replica's replication gauges on the
// configured registry (no-op without one). Values are read from Status
// at scrape time.
func (r *Replica) exposeMetrics() {
	reg := r.opts.Obs.Registry()
	if reg == nil {
		return
	}
	reg.GaugeFunc("bf_repl_lag_records", "Records the primary holds that this replica has not applied.",
		func() float64 { return float64(r.Status().LagRecords) })
	reg.GaugeFunc("bf_repl_lag_bytes", "Framed WAL bytes the primary holds that this replica has not applied.",
		func() float64 { return float64(r.Status().LagBytes) })
	reg.GaugeFunc("bf_repl_applied_records", "Records applied since the last bootstrap.",
		func() float64 { return float64(r.Status().AppliedRecords) })
	reg.GaugeFunc("bf_repl_bootstraps", "Snapshot bootstraps performed.",
		func() float64 { return float64(r.Status().Bootstraps) })
	reg.GaugeFunc("bf_repl_divergences", "State divergences the primary confirmed against this replica.",
		func() float64 { return float64(r.Status().Divergences) })
	reg.GaugeFunc("bf_repl_connected", "1 when the replica's last primary round succeeded.",
		func() float64 {
			if r.Status().Connected {
				return 1
			}
			return 0
		})
}

// recoverLocal validates the mirror (truncating a torn tail), restores
// the newest local checkpoint and replays the mirrored records on top.
// On any inconsistency it resets to the bootstrap state (zero position).
func (r *Replica) recoverLocal() error {
	info, err := wal.OpenTail(r.opts.FS, r.opts.Dir, r.opts.MaxRecordBytes, r.opts.Logf)
	if err != nil {
		r.opts.Logf("replication: local mirror invalid (%v); will re-bootstrap", err)
		if werr := r.mirror.wipe(); werr != nil {
			return werr
		}
		return nil
	}

	barrier, name, corrupt, err := store.RecoverNewestCheckpoint(r.opts.FS, r.opts.Dir, r.opts.Key, r.tracker, r.registry, r.opts.Logf)
	if err != nil {
		return fmt.Errorf("replication: load local checkpoint: %w", err)
	}
	if corrupt > 0 {
		r.opts.Logf("replication: skipped %d corrupt local checkpoints", corrupt)
	}
	if name == "" {
		// Without a checkpoint the mirrored segments are not provably a
		// full history; start over from a fresh snapshot.
		if len(info.Segments) > 0 {
			r.opts.Logf("replication: mirror has segments but no checkpoint; re-bootstrapping")
			if err := r.mirror.wipe(); err != nil {
				return err
			}
		}
		return nil
	}

	applier, err := r.newApplier()
	if err != nil {
		return fmt.Errorf("replication: build applier: %w", err)
	}
	reader, err := wal.NewReader(r.opts.FS, r.opts.Dir, wal.Pos{Segment: barrier, Offset: wal.HeaderSize}, r.opts.MaxRecordBytes)
	if err != nil {
		return fmt.Errorf("replication: open mirror reader: %w", err)
	}
	replayed := int64(0)
	for {
		rec, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.opts.Logf("replication: mirror replay failed (%v); re-bootstrapping", err)
			if werr := r.mirror.wipe(); werr != nil {
				return werr
			}
			return nil
		}
		if aerr := applier.Apply(rec); aerr != nil {
			return fmt.Errorf("replication: replay mirrored record: %w", aerr)
		}
		replayed++
	}
	applier.RestoreAuditTimestamps()

	// Resume at the mirror's end, floored at the checkpoint barrier (a
	// checkpoint with no mirrored segments yet resumes at the barrier).
	pos := info.End
	if floor := (wal.Pos{Segment: barrier, Offset: wal.HeaderSize}); pos.Less(floor) {
		pos = floor
	}

	r.applier = applier
	r.pos = pos
	r.applied = replayed
	r.lastCkptSeg = barrier
	r.opts.Logf("replication: recovered from %s + %d mirrored records; resuming at %s",
		name, replayed, pos)
	return nil
}

// Start launches the streaming loop. It is a no-op when already running.
func (r *Replica) Start() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.cancel != nil || r.stopped {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go r.run(ctx)
}

// Stop halts the streaming loop (idempotent).
func (r *Replica) Stop() {
	r.runMu.Lock()
	cancel, done := r.cancel, r.done
	r.cancel = nil
	r.stopped = true
	r.runMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// run is the replication loop: bootstrap when the position is zero,
// otherwise stream, mirror and apply until cancelled.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	for ctx.Err() == nil {
		r.mu.Lock()
		pos := r.pos
		r.mu.Unlock()

		var err error
		if pos.IsZero() {
			err = r.bootstrap(ctx)
		} else {
			err = r.streamOnce(ctx, pos)
		}
		if err == nil || ctx.Err() != nil {
			continue
		}

		r.mu.Lock()
		r.connected = false
		r.lastErr = err.Error()
		r.mu.Unlock()
		if _, ok := err.(*errDiverged); ok {
			r.opts.Logf("replication: %v; re-bootstrapping", err)
			r.resetForBootstrap()
			continue
		}
		r.opts.Logf("replication: %v (retrying in %s)", err, r.opts.RetryBackoff)
		select {
		case <-ctx.Done():
		case <-time.After(r.opts.RetryBackoff):
		}
	}
}

// resetForBootstrap wipes the local mirror and zeroes the position so the
// next loop iteration bootstraps from a fresh snapshot.
func (r *Replica) resetForBootstrap() {
	if err := r.mirror.wipe(); err != nil {
		r.opts.Logf("replication: wiping mirror: %v", err)
	}
	r.mu.Lock()
	r.pos = wal.Pos{}
	r.applier = nil
	r.lastCkptSeg = 0
	r.mu.Unlock()
}

// newRequest builds a replication request against the current primary,
// stamped with the highest term this node has observed.
func (r *Replica) newRequest(ctx context.Context, method, path, query string) (*http.Request, error) {
	primary := r.node.Primary()
	if primary == "" {
		return nil, fmt.Errorf("replication: no known primary")
	}
	url := primary + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, method, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderTerm, strconv.FormatUint(r.node.Term(), 10))
	return req, nil
}

// observeResponseTerm folds a response's term and primary headers into
// the node's fencing state.
func (r *Replica) observeResponseTerm(resp *http.Response) {
	termHdr := resp.Header.Get(HeaderTerm)
	if termHdr == "" {
		return
	}
	term, err := strconv.ParseUint(termHdr, 10, 64)
	if err != nil {
		return
	}
	primary := resp.Header.Get(HeaderPrimary)
	if _, err := r.node.ObserveTerm(term, primary); err != nil {
		r.opts.Logf("replication: persisting observed term: %v", err)
	}
	if primary != "" {
		r.node.SetPrimary(primary)
	}
}

// bootstrap wipes the local mirror and rebuilds it from the primary's
// snapshot endpoint: restore state wholesale, persist the snapshot as a
// local checkpoint, and position the cursor at the snapshot's WAL epoch
// barrier. The replica asks for the binary snapshot format (bulk restore,
// raw bytes persisted verbatim) and falls back to decoding the legacy
// JSON body when talking to an older primary.
func (r *Replica) bootstrap(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	query := ""
	if sr := r.opts.Split; sr != nil {
		query = fmt.Sprintf("lo=%d&hi=%d", sr.Lo, sr.Hi)
	}
	req, err := r.newRequest(rctx, http.MethodGet, "/v1/repl/snapshot", query)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", SnapshotContentType+", application/json")
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("replication: fetch snapshot: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
		resp.Body.Close()
	}()
	r.observeResponseTerm(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: snapshot endpoint: status %d", resp.StatusCode)
	}

	var barrier uint64
	if strings.HasPrefix(resp.Header.Get("Content-Type"), SnapshotContentType) {
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("replication: read snapshot body: %w", err)
		}
		if err := r.mirror.wipe(); err != nil {
			return err
		}
		meta, err := store.RestoreBytes("primary snapshot", blob, r.tracker, r.registry)
		if err != nil {
			return fmt.Errorf("replication: restore snapshot: %w", err)
		}
		if meta.WALSeg == 0 {
			return fmt.Errorf("replication: snapshot carries no WAL barrier")
		}
		barrier = meta.WALSeg
		// Persist the received image verbatim — same bytes, no re-encode.
		ckpt := filepath.Join(r.opts.Dir, store.CheckpointName(barrier))
		if err := store.SaveCheckpointBytes(r.opts.FS, ckpt, blob, r.opts.Key); err != nil {
			return fmt.Errorf("replication: save local checkpoint: %w", err)
		}
	} else {
		if r.opts.Split != nil {
			// The filter runs in the primary's binary snapshot path; a
			// legacy JSON body would silently carry the whole keyspace.
			return fmt.Errorf("replication: filtered bootstrap requires a binary snapshot; primary answered JSON")
		}
		var snap store.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return fmt.Errorf("replication: decode snapshot: %w", err)
		}
		if snap.WALSeg == 0 {
			return fmt.Errorf("replication: snapshot carries no WAL barrier")
		}
		if err := r.mirror.wipe(); err != nil {
			return err
		}
		if err := snap.Restore(r.tracker, r.registry); err != nil {
			return fmt.Errorf("replication: restore snapshot: %w", err)
		}
		barrier = snap.WALSeg
		ckpt := filepath.Join(r.opts.Dir, store.CheckpointName(barrier))
		if err := store.SaveFS(r.opts.FS, ckpt, snap, r.opts.Key); err != nil {
			return fmt.Errorf("replication: save local checkpoint: %w", err)
		}
	}
	applier, err := r.newApplier()
	if err != nil {
		return err
	}

	r.mu.Lock()
	r.applier = applier
	r.pos = wal.Pos{Segment: barrier, Offset: wal.HeaderSize}
	r.applied = 0
	r.bootstraps++
	r.lastCkptSeg = barrier
	r.connected = true
	r.lastErr = ""
	r.mu.Unlock()
	r.opts.Logf("replication: bootstrapped from snapshot at barrier %d", barrier)
	return nil
}

// streamOnce performs one stream round: long-poll the primary from pos,
// verify and mirror the returned frame bytes, then apply them.
func (r *Replica) streamOnce(ctx context.Context, pos wal.Pos) error {
	waitMS := strconv.FormatInt(r.opts.PollWait.Milliseconds(), 10)
	rctx, cancel := context.WithTimeout(ctx, r.opts.PollWait+30*time.Second)
	defer cancel()
	req, err := r.newRequest(rctx, http.MethodGet, "/v1/repl/stream", "from="+pos.String()+"&wait="+waitMS)
	if err != nil {
		return err
	}
	// Attach the local state digest: when this round finds us caught up,
	// the primary compares it against its own and orders a re-bootstrap
	// if our in-memory state has silently diverged. A filtered replica
	// never claims a digest — holding a slice of the keyspace is not
	// divergence.
	if r.opts.Split == nil {
		req.Header.Set(HeaderDigest, fmt.Sprintf("%016x", r.tracker.Digest().Combined))
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("replication: stream: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10)) //nolint:errcheck
		resp.Body.Close()
	}()
	r.observeResponseTerm(resp)

	switch resp.StatusCode {
	case http.StatusOK:
		return r.applyBatch(pos, resp)

	case http.StatusNoContent:
		// Caught up. The server may have normalised our position (e.g.
		// rolled it over a sealed segment boundary).
		r.mu.Lock()
		r.connected = true
		r.lastErr = ""
		r.lag = 0
		r.lagBytes = 0
		if next := resp.Header.Get(HeaderNextPos); next != "" {
			if p, perr := wal.ParsePos(next); perr == nil && !p.IsZero() {
				r.pos = p
			}
		}
		r.mu.Unlock()
		return nil

	case http.StatusGone:
		// Our position fell off the primary's log (checkpoint-truncated
		// below, or we are ahead of a newly recovered primary) — or the
		// primary confirmed our state digest diverged from its own.
		if resp.Header.Get(HeaderDiverged) != "" {
			r.mu.Lock()
			r.divergences++
			r.mu.Unlock()
			r.opts.Logf("replication: primary confirmed state divergence at %s; re-bootstrapping", pos)
		} else {
			r.opts.Logf("replication: position %s gone on primary; re-bootstrapping", pos)
		}
		r.resetForBootstrap()
		return nil

	case http.StatusMisdirectedRequest:
		// Talking to a non-primary; headers already repointed us.
		return fmt.Errorf("replication: peer is not primary (term %s)", resp.Header.Get(HeaderTerm))

	default:
		return fmt.Errorf("replication: stream: status %d", resp.StatusCode)
	}
}

// applyBatch mirrors and applies one 200 stream response. The byte-count
// header guards against truncated bodies: only the valid frame prefix is
// mirrored and applied, and the cursor advances exactly past it.
func (r *Replica) applyBatch(pos wal.Pos, resp *http.Response) error {
	reg := r.opts.Obs.Registry()
	applyStart := reg.Now()
	startHdr := resp.Header.Get(HeaderPos)
	start := pos
	if startHdr != "" {
		p, err := wal.ParsePos(startHdr)
		if err != nil {
			return fmt.Errorf("replication: bad %s header: %v", HeaderPos, err)
		}
		start = p
	}
	want := -1
	if v := resp.Header.Get(HeaderBatchBytes); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("replication: bad %s header", HeaderBatchBytes)
		}
		want = n
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(r.opts.MaxRecordBytes)+int64(DefaultMaxBatchBytes)))
	if err != nil {
		// Partial read: fall through with what we have; DecodeFrames
		// keeps only the valid prefix.
		r.opts.Logf("replication: stream body: %v (keeping valid prefix)", err)
	}
	if want >= 0 && len(body) > want {
		body = body[:want]
	}

	// Decode the valid frame prefix. A truncated or garbled tail (chaos
	// transport) is simply not applied; the next round re-fetches it.
	recs, used := wal.DecodeFrames(body, r.opts.MaxRecordBytes)
	if used == 0 {
		if want > 0 {
			return fmt.Errorf("replication: stream batch carried no valid frames (%d/%d bytes)", len(body), want)
		}
		return nil
	}

	// Mirror bytes BEFORE applying: on a crash between the two, recovery
	// replays the mirrored record through the same idempotent path.
	next, err := r.mirror.appendAt(start, body[:used])
	if err != nil {
		return err
	}

	r.mu.Lock()
	applier := r.applier
	r.mu.Unlock()
	if applier == nil {
		return fmt.Errorf("replication: no applier (not bootstrapped)")
	}
	for _, rec := range recs {
		if err := applier.Apply(rec); err != nil {
			return fmt.Errorf("replication: apply streamed record: %w", err)
		}
	}
	applier.RestoreAuditTimestamps()

	lag := int64(0)
	if v := resp.Header.Get(HeaderLag); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			lag = n
		}
	}
	lagBytes := int64(0)
	if v := resp.Header.Get(HeaderLagBytes); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			lagBytes = n
		}
	}
	if used < len(body) || (want >= 0 && used < want) {
		// We dropped a torn tail; the primary still has those records.
		lag++
		if want >= 0 && used < want {
			lagBytes += int64(want - used)
		}
	}

	r.mu.Lock()
	r.pos = next
	r.applied += int64(len(recs))
	r.lag = lag
	r.lagBytes = lagBytes
	r.connected = true
	r.lastErr = ""
	ckptDue := next.Segment > r.lastCkptSeg
	r.mu.Unlock()

	if reg != nil {
		reg.Counter("bf_repl_batches_total", "Stream batches applied.").Inc()
		reg.Counter("bf_repl_records_total", "Streamed records applied.").Add(uint64(len(recs)))
		reg.Counter("bf_repl_bytes_total", "Streamed WAL bytes mirrored.").Add(uint64(used))
		reg.Histogram("bf_repl_apply_seconds", "Mirror+apply latency per stream batch.", nil).
			Observe(reg.Now().Sub(applyStart))
	}

	if ckptDue {
		if err := r.checkpointLocal(next.Segment); err != nil {
			r.opts.Logf("replication: local checkpoint: %v", err)
		}
	}
	return nil
}

// checkpointLocal captures the replica's state as a local checkpoint at
// barrier seg (every mirrored segment below seg is fully applied), then
// prunes old checkpoints. Mirrored segments are never pruned: the mirror
// stays a literal byte prefix of the primary's log.
func (r *Replica) checkpointLocal(seg uint64) error {
	blob, err := store.CaptureBytes(r.tracker, r.registry, seg)
	if err != nil {
		return err
	}
	path := filepath.Join(r.opts.Dir, store.CheckpointName(seg))
	if err := store.SaveCheckpointBytes(r.opts.FS, path, blob, r.opts.Key); err != nil {
		return err
	}
	r.mu.Lock()
	r.lastCkptSeg = seg
	r.mu.Unlock()
	r.pruneCheckpoints(seg)
	return nil
}

// pruneCheckpoints removes local checkpoints older than the keep budget.
func (r *Replica) pruneCheckpoints(newest uint64) {
	names, err := r.opts.FS.ReadDirNames(r.opts.Dir)
	if err != nil {
		return
	}
	var segs []uint64
	for _, name := range names {
		if seg, ok := store.ParseCheckpointName(name); ok {
			segs = append(segs, seg)
		}
	}
	if len(segs) <= r.opts.KeepCheckpoints {
		return
	}
	// Sort ascending (small n; insertion sort avoids an import).
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j] < segs[j-1]; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	for _, seg := range segs[:len(segs)-r.opts.KeepCheckpoints] {
		if seg >= newest {
			continue
		}
		r.opts.FS.Remove(filepath.Join(r.opts.Dir, store.CheckpointName(seg))) //nolint:errcheck
	}
}

// Status snapshots the replica's replication state.
func (r *Replica) Status() ReplicaStatus {
	role, term, primary := r.node.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		Role:           role.String(),
		Term:           term,
		Primary:        primary,
		Position:       r.pos.String(),
		LagRecords:     r.lag,
		LagBytes:       r.lagBytes,
		AppliedRecords: r.applied,
		Bootstraps:     r.bootstraps,
		Divergences:    r.divergences,
		Connected:      r.connected,
		LastError:      r.lastErr,
	}
}

// Promote stops streaming, bumps the node's term to take the primary
// role, and opens the durability subsystem over the local mirror. The
// recovery pass rebuilds state from the newest local checkpoint plus the
// mirrored WAL — exactly what this replica had applied — and new writes
// land in a fresh segment above the mirrored prefix, so the old
// primary's log remains a byte prefix of the new primary's. The returned
// Durable is installed as the engine's journal before Promote returns.
func (r *Replica) Promote() (*store.Durable, uint64, error) {
	r.Stop()
	term, err := r.node.Promote()
	if err != nil {
		return nil, 0, err
	}
	if err := r.mirror.closeFile(); err != nil {
		return nil, 0, fmt.Errorf("replication: close mirror: %w", err)
	}
	opts := store.DurableOptions{
		Dir:             r.opts.Dir,
		FS:              r.opts.FS,
		Key:             r.opts.Key,
		Fsync:           r.opts.PromoteFsync,
		FsyncInterval:   r.opts.PromoteFsyncInterval,
		SegmentBytes:    r.opts.PromoteSegmentBytes,
		CheckpointEvery: r.opts.PromoteCheckpointEvery,
		KeepCheckpoints: r.opts.KeepCheckpoints,
		Logf:            r.opts.Logf,
	}
	if sr := r.opts.Split; sr != nil {
		// The mirror holds the source's WAL bytes verbatim; recovery (and
		// any later restart over this directory) must keep filtering index
		// updates to the moved range.
		opts.SegmentFilter = func(seg segment.ID) bool {
			return sr.Contains(segment.Key(seg))
		}
	}
	durable, err := store.OpenDurable(opts, r.tracker, r.registry)
	if err != nil {
		return nil, 0, fmt.Errorf("replication: open durable store after promotion: %w", err)
	}
	r.engine.SetJournal(durable)
	r.opts.Logf("replication: promoted at term %d; durable store open over mirror", term)
	return durable, term, nil
}
