package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/wal"
)

// Wire protocol headers. Every replication response carries the serving
// node's term so clients and replicas learn about promotions passively.
const (
	// HeaderTerm is the fencing term of whoever sent the message. Clients
	// and replicas send the highest term they have observed; nodes reply
	// with their own.
	HeaderTerm = "X-BF-Term"

	// HeaderPrimary is the advertised address of the primary the sender
	// believes in (present on 421 responses and fence notifications).
	HeaderPrimary = "X-BF-Primary"

	// HeaderPos is the normalised start position of a stream batch.
	HeaderPos = "X-BF-Pos"

	// HeaderNextPos is the position just past a stream batch — the `from`
	// of the next stream call.
	HeaderNextPos = "X-BF-Next-Pos"

	// HeaderBatchBytes is the exact byte length of a stream batch body.
	// Replicas verify it before applying anything: a chaos transport that
	// truncates the body mid-frame must not advance the cursor past the
	// valid prefix.
	HeaderBatchBytes = "X-BF-Batch-Bytes"

	// HeaderLag is the number of records remaining after the batch (the
	// replica's lag once it applies the batch).
	HeaderLag = "X-BF-Lag"

	// HeaderLagBytes is the number of framed WAL bytes remaining after
	// the batch — the byte-granularity companion of HeaderLag, exported
	// as the replica's lag-bytes gauge.
	HeaderLagBytes = "X-BF-Lag-Bytes"

	// HeaderDigest carries the sender's tracker state digest (16 hex
	// chars: the order-salted fold of both index databases, see
	// index.Fold). Replicas attach it to stream requests; the primary
	// adjudicates it whenever the replica is caught up.
	HeaderDigest = "X-BF-Digest"

	// HeaderDiverged marks a 410 caused by a confirmed digest divergence
	// rather than a truncated log. The replica re-bootstraps either way;
	// the cause is made explicit for logs and the divergence counters.
	HeaderDiverged = "X-BF-Diverged"
)

// SnapshotContentType is the media type of a binary bootstrap snapshot:
// the body is a plaintext BFLOWSNB image (see store/binsnap.go), served
// verbatim so the replica can both bulk-restore it and persist it as a
// local checkpoint without re-encoding. Replicas opt in via the Accept
// header; the primary answers legacy JSON otherwise, so mixed-version
// pairs keep working during a rolling upgrade.
const SnapshotContentType = "application/x-bflow-snapshot"

const (
	// DefaultMaxBatchBytes bounds one stream batch body.
	DefaultMaxBatchBytes = 1 << 20

	// DefaultMaxWait bounds a stream long-poll.
	DefaultMaxWait = 25 * time.Second
)

// errorBody is the JSON error payload for replication endpoints.
type errorBody struct {
	Error   string `json:"error"`
	Primary string `json:"primary,omitempty"`
	Term    uint64 `json:"term,omitempty"`
}

// Primary serves the replication API over a node's durable store:
// /v1/repl/snapshot hands a bootstrapping replica a consistent
// checkpoint, /v1/repl/stream long-polls raw WAL frames, and
// /v1/repl/fence delivers term bumps.
type Primary struct {
	node     *Node
	durable  *store.Durable
	maxBatch int
	maxWait  time.Duration
	filter   func(blob []byte, lo, hi uint32) ([]byte, error)
	logf     func(string, ...interface{})

	// Anti-entropy adjudication: a replica claiming digest D while caught
	// up at position P earns one strike per stream round; divergence is
	// confirmed — and the replica told to re-bootstrap — only after the
	// same (P, D) claim mismatches divergenceStrikes rounds in a row.
	// Transient mismatches (the primary appended between serving the
	// batch and computing its own digest) never repeat at the same pair,
	// because applying the new records moves the replica's P and D both.
	strikeMu    sync.Mutex
	strikes     map[strikeKey]int
	divergences int64
}

// strikeKey identifies one replica claim under adjudication.
type strikeKey struct {
	pos    string
	digest string
}

const (
	// divergenceStrikes is how many consecutive caught-up mismatches of
	// the same (position, digest) claim confirm a divergence.
	divergenceStrikes = 3

	// maxStrikeEntries bounds the adjudication map; a full map is reset
	// rather than grown (strikes are cheap to re-earn).
	maxStrikeEntries = 64
)

// PrimaryOptions configures NewPrimary.
type PrimaryOptions struct {
	// MaxBatchBytes bounds one stream batch (default DefaultMaxBatchBytes).
	MaxBatchBytes int

	// MaxWait caps a stream long-poll (default DefaultMaxWait).
	MaxWait time.Duration

	// FilterSnapshot, when set, re-encodes a checkpoint image restricted
	// to the inclusive partition-key range [lo, hi] (see
	// store.FilterSnapshotRange); it serves /v1/repl/snapshot?lo=&hi=
	// requests from a split target's filtered replica. Nil rejects
	// filtered snapshot requests.
	FilterSnapshot func(blob []byte, lo, hi uint32) ([]byte, error)

	// Logf receives serving notes; nil discards.
	Logf func(format string, args ...interface{})
}

// NewPrimary builds the replication serving side over node and its
// durable store.
func NewPrimary(node *Node, durable *store.Durable, opts PrimaryOptions) *Primary {
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = DefaultMaxWait
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	return &Primary{
		node:     node,
		durable:  durable,
		maxBatch: opts.MaxBatchBytes,
		maxWait:  opts.MaxWait,
		filter:   opts.FilterSnapshot,
		logf:     opts.Logf,
		strikes:  make(map[strikeKey]int),
	}
}

// setTermHeaders stamps the node's current term (and primary, when known)
// on a response.
func setTermHeaders(w http.ResponseWriter, n *Node) {
	role, term, primary := n.Snapshot()
	w.Header().Set(HeaderTerm, strconv.FormatUint(term, 10))
	if primary != "" && role != RolePrimary {
		w.Header().Set(HeaderPrimary, primary)
	}
}

// writeError emits a JSON error with the node's term headers.
func writeError(w http.ResponseWriter, n *Node, status int, msg string) {
	setTermHeaders(w, n)
	_, term, primary := n.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg, Primary: primary, Term: term}) //nolint:errcheck
}

// observeRequestTerm feeds a request's X-BF-Term header into the node's
// fencing logic. It reports whether the node is (still) the primary.
func (p *Primary) observeRequestTerm(r *http.Request) bool {
	if v := r.Header.Get(HeaderTerm); v != "" {
		if term, err := strconv.ParseUint(v, 10, 64); err == nil {
			if fenced, err := p.node.ObserveTerm(term, ""); err != nil {
				p.logf("replication: persisting observed term: %v", err)
			} else if fenced {
				p.logf("replication: fenced by request term %d", term)
			}
		}
	}
	return p.node.Role() == RolePrimary
}

// handleSnapshot serves a consistent checkpoint for replica bootstrap.
// The snapshot is captured behind the WAL epoch barrier, so its WALSeg
// field is the exact stream position that follows it.
func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, p.node, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if !p.observeRequestTerm(r) {
		p.writeNotPrimary(w)
		return
	}
	// ?lo=&hi= asks for a snapshot restricted to a partition-key range
	// (a split target bootstrapping a filtered replica). Only the binary
	// format supports it.
	var filtered bool
	var lo, hi uint32
	if q := r.URL.Query(); q.Get("lo") != "" || q.Get("hi") != "" {
		loVal, loErr := strconv.ParseUint(q.Get("lo"), 10, 32)
		hiVal, hiErr := strconv.ParseUint(q.Get("hi"), 10, 32)
		if loErr != nil || hiErr != nil || loVal > hiVal {
			writeError(w, p.node, http.StatusBadRequest, "bad lo/hi key range")
			return
		}
		if p.filter == nil {
			writeError(w, p.node, http.StatusNotImplemented, "filtered snapshots not supported by this primary")
			return
		}
		filtered, lo, hi = true, uint32(loVal), uint32(hiVal)
	}
	if strings.Contains(r.Header.Get("Accept"), SnapshotContentType) {
		blob, barrier, err := p.durable.CaptureCheckpointBytes()
		if err != nil {
			writeError(w, p.node, http.StatusInternalServerError, "capture checkpoint: "+err.Error())
			return
		}
		if filtered {
			blob, err = p.filter(blob, lo, hi)
			if err != nil {
				writeError(w, p.node, http.StatusInternalServerError, "filter checkpoint: "+err.Error())
				return
			}
		}
		setTermHeaders(w, p.node)
		w.Header().Set("Content-Type", SnapshotContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(blob); err != nil {
			p.logf("replication: stream snapshot (barrier %d): %v", barrier, err)
		}
		return
	}
	if filtered {
		writeError(w, p.node, http.StatusBadRequest, "filtered snapshots require Accept: "+SnapshotContentType)
		return
	}
	// Legacy replica: JSON Snapshot struct.
	snap, err := p.durable.CaptureCheckpoint()
	if err != nil {
		writeError(w, p.node, http.StatusInternalServerError, "capture checkpoint: "+err.Error())
		return
	}
	setTermHeaders(w, p.node)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		p.logf("replication: stream snapshot: %v", err)
	}
}

// handleStream serves raw CRC-framed WAL record bytes from ?from=seg,off.
// Responses:
//
//	200 — body is a batch of frame bytes; headers carry the normalised
//	      start, the next position, the exact body length and the lag.
//	204 — caught up (after waiting up to ?wait=); Next-Pos repeats from.
//	410 — the position is gone (truncated below the checkpoint floor, or
//	      ahead of the primary's log after a failover); re-bootstrap.
//	421 — this node is not the primary; follow X-BF-Primary.
func (p *Primary) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, p.node, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if !p.observeRequestTerm(r) {
		p.writeNotPrimary(w)
		return
	}
	q := r.URL.Query()
	from := wal.Pos{}
	if v := q.Get("from"); v != "" {
		parsed, err := wal.ParsePos(v)
		if err != nil {
			writeError(w, p.node, http.StatusBadRequest, "bad from: "+err.Error())
			return
		}
		from = parsed
	}
	wait := time.Duration(0)
	if v := q.Get("wait"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, p.node, http.StatusBadRequest, "bad wait")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > p.maxWait {
			wait = p.maxWait
		}
	}

	log := p.durable.WAL()
	frames, n, start, next, err := log.ReadFrom(from, p.maxBatch)
	if err == nil && n == 0 && wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		werr := log.WaitFrom(ctx, from)
		cancel()
		if werr == nil {
			frames, n, start, next, err = log.ReadFrom(from, p.maxBatch)
		} else if !errors.Is(werr, context.DeadlineExceeded) && !errors.Is(werr, context.Canceled) {
			err = werr
		}
	}
	if err != nil {
		p.writeStreamError(w, err)
		return
	}
	// Re-check the role: a fence may have landed while we long-polled.
	if p.node.Role() != RolePrimary {
		p.writeNotPrimary(w)
		return
	}

	lag, lagErr := log.CountFrom(next)
	if lagErr != nil {
		lag = 0
	}
	lagBytes, lagErr := log.BytesFrom(next)
	if lagErr != nil {
		lagBytes = 0
	}
	setTermHeaders(w, p.node)
	w.Header().Set(HeaderPos, start.String())
	w.Header().Set(HeaderNextPos, next.String())
	w.Header().Set(HeaderBatchBytes, strconv.Itoa(len(frames)))
	w.Header().Set(HeaderLag, strconv.FormatInt(lag, 10))
	w.Header().Set(HeaderLagBytes, strconv.FormatInt(lagBytes, 10))
	if n == 0 {
		// The replica is caught up: this is the only moment its digest is
		// directly comparable to ours, so adjudicate the claim it sent.
		if remote := r.Header.Get(HeaderDigest); remote != "" {
			if p.adjudicateDigest(next, remote) {
				w.Header().Set(HeaderDiverged, "digest-mismatch")
				writeError(w, p.node, http.StatusGone,
					"replica state diverged at "+next.String()+"; re-bootstrap")
				return
			}
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frames)))
	w.WriteHeader(http.StatusOK)
	w.Write(frames) //nolint:errcheck
}

// adjudicateDigest scores a caught-up replica's digest claim against the
// primary's own state digest. A match clears the claim's strikes; a
// mismatch earns one, and divergenceStrikes consecutive mismatches at the
// same (position, digest) pair confirm the divergence. It reports whether
// the replica should be ordered to re-bootstrap.
func (p *Primary) adjudicateDigest(pos wal.Pos, remote string) bool {
	local := fmt.Sprintf("%016x", p.durable.StateDigest().Combined)
	key := strikeKey{pos: pos.String(), digest: remote}
	p.strikeMu.Lock()
	defer p.strikeMu.Unlock()
	if remote == local {
		delete(p.strikes, key)
		return false
	}
	if _, ok := p.strikes[key]; !ok && len(p.strikes) >= maxStrikeEntries {
		p.strikes = make(map[strikeKey]int)
	}
	p.strikes[key]++
	if p.strikes[key] < divergenceStrikes {
		return false
	}
	delete(p.strikes, key)
	p.divergences++
	p.logf("replication: replica diverged at %s (digest %s, want %s); ordering re-bootstrap", pos, remote, local)
	return true
}

// Divergences reports how many replica divergences this primary has
// confirmed since it started serving.
func (p *Primary) Divergences() int64 {
	p.strikeMu.Lock()
	defer p.strikeMu.Unlock()
	return p.divergences
}

// handleDigest serves the primary's current state digest — the per-DB
// breakdown plus the combined fold — with the WAL end position it was
// computed at, so operators (bfctl) and tests can compare nodes directly.
func (p *Primary) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, p.node, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if !p.observeRequestTerm(r) {
		p.writeNotPrimary(w)
		return
	}
	digest := p.durable.StateDigest()
	setTermHeaders(w, p.node)
	w.Header().Set(HeaderDigest, fmt.Sprintf("%016x", digest.Combined))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck
		Position    string                   `json:"position"`
		Digest      disclosure.TrackerDigest `json:"digest"`
		Divergences int64                    `json:"divergences"`
	}{
		Position:    p.durable.WAL().End().String(),
		Digest:      digest,
		Divergences: p.Divergences(),
	})
}

// writeStreamError maps ReadFrom errors onto the wire.
func (p *Primary) writeStreamError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, wal.ErrPositionGone):
		writeError(w, p.node, http.StatusGone, err.Error())
	case errors.Is(err, wal.ErrClosed):
		writeError(w, p.node, http.StatusServiceUnavailable, "log closed")
	default:
		writeError(w, p.node, http.StatusInternalServerError, err.Error())
	}
}

// writeNotPrimary answers 421 with the primary's address, steering the
// caller at whoever owns the highest term this node has seen.
func (p *Primary) writeNotPrimary(w http.ResponseWriter) {
	role, term, _ := p.node.Snapshot()
	msg := fmt.Sprintf("node is %s at term %d, not primary", role, term)
	writeError(w, p.node, http.StatusMisdirectedRequest, msg)
}

// handleFence applies an explicit term bump: POST {"term": T, "primary":
// addr}. A deposed primary fenced this way refuses writes immediately.
func handleFence(node *Node, logf func(string, ...interface{})) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, node, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var body struct {
			Term    uint64 `json:"term"`
			Primary string `json:"primary"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<10)).Decode(&body); err != nil {
			writeError(w, node, http.StatusBadRequest, "bad fence body: "+err.Error())
			return
		}
		fenced, err := node.ObserveTerm(body.Term, body.Primary)
		if err != nil {
			writeError(w, node, http.StatusInternalServerError, "persist term: "+err.Error())
			return
		}
		if fenced {
			logf("replication: fenced to term %d by %s", body.Term, body.Primary)
		}
		role, term, primary := node.Snapshot()
		setTermHeaders(w, node)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{ //nolint:errcheck
			"role":    role.String(),
			"term":    term,
			"primary": primary,
			"fenced":  fenced,
		})
	}
}
