package replication

import (
	"net/http"
	"strconv"
)

// mutatingPaths are the tag-service endpoints only the primary may
// serve. Reads (/v1/check, /v1/upload, /v1/label, /v1/stats, metrics,
// health) are served by every role; mutations linearise through the
// primary. /v1/part/query is read-only but still primary-only: a
// scatter contribution must reflect every acked observe, and a replica
// or fenced ex-primary can lag — a stale contribution missing a
// just-observed source would flip a block into an allow, so queries
// 421 off-role and the routing tier rediscovers the real primary
// through the usual redirect chain.
var mutatingPaths = map[string]bool{
	"/v1/observe":       true,
	"/v1/observe/batch": true,
	"/v1/suppress":      true,
	"/v1/part/observe":  true,
	"/v1/part/query":    true,
	"/v1/part/prune":    true,
}

// Guard fences the tag-service API by role: a replica (or fenced
// ex-primary) answers every mutating request with 421 Misdirected
// Request plus the primary's advertised address, and any request
// carrying a higher X-BF-Term fences a stale primary before it can
// accept the write. Wrap the tag server's handler with it.
func Guard(node *Node, next http.Handler, logf func(string, ...interface{})) http.Handler {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !mutatingPaths[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		// A client that has learned a newer term fences us on contact:
		// we can no longer prove our writes are on the authoritative
		// timeline.
		if v := r.Header.Get(HeaderTerm); v != "" {
			if term, err := strconv.ParseUint(v, 10, 64); err == nil {
				if fenced, ferr := node.ObserveTerm(term, ""); ferr != nil {
					logf("replication: persisting observed term: %v", ferr)
				} else if fenced {
					logf("replication: write fenced this primary at term %d", term)
				}
			}
		}
		if node.Role() != RolePrimary {
			writeError(w, node, http.StatusMisdirectedRequest,
				"node is "+node.Role().String()+": writes must go to the primary")
			return
		}
		next.ServeHTTP(w, r)
	})
}
