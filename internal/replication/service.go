package replication

import (
	"encoding/json"
	"net/http"
	"sync"

	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/store"
)

// Service multiplexes the /v1/repl/* endpoints over swappable role
// components: a node can boot as a replica and become a primary in
// place when /v1/repl/promote (bfctl promote) fires.
type Service struct {
	node        *Node
	primaryOpts PrimaryOptions
	logf        func(string, ...interface{})

	mu      sync.Mutex
	primary *Primary
	replica *Replica
	obs     *obs.Obs

	// onPromote observes a successful in-place promotion; bftagd uses it
	// to repoint health/metrics at the freshly opened durable store.
	onPromote func(*store.Durable)
}

// NewService builds the replication service for node. primaryOpts is
// used both for an initially installed Primary and for the one built on
// in-place promotion.
func NewService(node *Node, primaryOpts PrimaryOptions, logf func(format string, args ...interface{})) *Service {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return &Service{node: node, primaryOpts: primaryOpts, logf: logf}
}

// SetObs installs the observability bundle; call before Handler so the
// /v1/repl/* endpoints are wrapped with RED metrics and trace lifting.
func (s *Service) SetObs(o *obs.Obs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = o
}

// SetPrimary installs the serving side (the node is a primary).
func (s *Service) SetPrimary(p *Primary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.primary = p
}

// SetReplica installs the consuming side (the node is a replica).
func (s *Service) SetReplica(r *Replica) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replica = r
}

// Replica returns the installed replica component (nil on a primary).
func (s *Service) Replica() *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

// OnPromote registers a callback invoked with the new durable store
// after a successful in-place promotion.
func (s *Service) OnPromote(fn func(*store.Durable)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPromote = fn
}

// Status reports the node's replication state regardless of role.
func (s *Service) Status() ReplicaStatus {
	s.mu.Lock()
	primary, replica := s.primary, s.replica
	s.mu.Unlock()
	role, term, primaryAddr := s.node.Snapshot()
	if role != RolePrimary && replica != nil {
		return replica.Status()
	}
	st := ReplicaStatus{
		Role:      role.String(),
		Term:      term,
		Primary:   primaryAddr,
		Connected: true,
	}
	if primary != nil {
		st.Position = primary.durable.WAL().End().String()
		st.AppliedRecords = primary.durable.WAL().Stats().RecordsAppended
	}
	return st
}

// Handler returns the /v1/repl/* mux. When an observability bundle is
// installed (SetObs), every endpoint is wrapped with RED metrics and
// inbound trace lifting; Instrument is nil-safe, so uninstrumented
// deployments serve the raw handlers unchanged.
func (s *Service) Handler() http.Handler {
	s.mu.Lock()
	o := s.obs
	s.mu.Unlock()
	mux := http.NewServeMux()
	handle := func(path, endpoint string, h http.HandlerFunc) {
		mux.Handle(path, o.Instrument(endpoint, h))
	}
	handle("/v1/repl/snapshot", "repl.snapshot", s.withPrimary(func(p *Primary, w http.ResponseWriter, r *http.Request) {
		p.handleSnapshot(w, r)
	}))
	handle("/v1/repl/stream", "repl.stream", s.withPrimary(func(p *Primary, w http.ResponseWriter, r *http.Request) {
		p.handleStream(w, r)
	}))
	handle("/v1/repl/digest", "repl.digest", s.withPrimary(func(p *Primary, w http.ResponseWriter, r *http.Request) {
		p.handleDigest(w, r)
	}))
	handle("/v1/repl/fence", "repl.fence", handleFence(s.node, s.logf))
	handle("/v1/repl/status", "repl.status", s.handleStatus)
	handle("/v1/repl/promote", "repl.promote", s.handlePromote)
	return mux
}

// withPrimary dispatches to the installed Primary component, answering
// 421 when this node cannot serve the replication log.
func (s *Service) withPrimary(fn func(*Primary, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		p := s.primary
		s.mu.Unlock()
		if p == nil || s.node.Role() != RolePrimary {
			role, _, _ := s.node.Snapshot()
			writeError(w, s.node, http.StatusMisdirectedRequest,
				"node is "+role.String()+": replication log is served by the primary")
			return
		}
		fn(p, w, r)
	}
}

// handleStatus serves the node's replication state.
func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, s.node, http.StatusMethodNotAllowed, "GET only")
		return
	}
	setTermHeaders(w, s.node)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Status()) //nolint:errcheck
}

// handlePromote promotes this node to primary in place: the replica
// stops streaming, the term is bumped and persisted, the durable store
// opens over the local mirror, and the serving side of the replication
// API is installed so further replicas can chain off the new primary.
func (s *Service) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, s.node, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mu.Lock()
	replica := s.replica
	alreadyPrimary := s.node.Role() == RolePrimary
	s.mu.Unlock()

	if alreadyPrimary {
		s.writePromoteResult(w, false)
		return
	}
	if replica == nil {
		writeError(w, s.node, http.StatusConflict, "node has no replica component to promote")
		return
	}

	durable, term, err := replica.Promote()
	if err != nil {
		writeError(w, s.node, http.StatusInternalServerError, "promote: "+err.Error())
		return
	}
	s.mu.Lock()
	s.primary = NewPrimary(s.node, durable, s.primaryOpts)
	onPromote := s.onPromote
	s.mu.Unlock()
	if onPromote != nil {
		onPromote(durable)
	}
	s.logf("replication: promoted to primary at term %d", term)
	s.writePromoteResult(w, true)
}

// writePromoteResult answers a promote request with the node's state.
func (s *Service) writePromoteResult(w http.ResponseWriter, promoted bool) {
	role, term, primary := s.node.Snapshot()
	setTermHeaders(w, s.node)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{ //nolint:errcheck
		"promoted": promoted,
		"role":     role.String(),
		"term":     term,
		"primary":  primary,
	})
}
