package webapp

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/browser"
)

func TestNotesPayloadRoundTrip(t *testing.T) {
	p := NotesPayload{Paragraphs: []string{"one", "two"}}
	enc, err := EncodeNotesPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(enc, "one") {
		t.Error("payload not obfuscated")
	}
	dec, err := DecodeNotesPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Paragraphs) != 2 || dec.Paragraphs[0] != "one" {
		t.Errorf("decoded=%+v", dec)
	}
}

func TestDecodeNotesPayloadErrors(t *testing.T) {
	if _, err := DecodeNotesPayload("!!!"); err == nil {
		t.Error("bad base64 accepted")
	}
	if _, err := DecodeNotesPayload("bm90anNvbg=="); err == nil { // "notjson"
		t.Error("bad JSON accepted")
	}
}

func TestNotesServiceSync(t *testing.T) {
	s := NewServer()
	s.SeedNote("todo", "First item.")
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Render carries the custom paragraph divs.
	resp, err := http.Get(srv.URL + "/notes/todo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), `class="note-par"`) {
		t.Errorf("note page: %s", sb.String())
	}

	// Sync replaces the whole note.
	payload, err := EncodeNotesPayload(NotesPayload{Paragraphs: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.PostForm(srv.URL+"/notes/todo/sync", url.Values{"payload": {payload}})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := s.Note("todo"); len(got) != 2 || got[1] != "b" {
		t.Errorf("note=%v", got)
	}

	// Bad payload rejected.
	resp3, err := http.PostForm(srv.URL+"/notes/todo/sync", url.Values{"payload": {"!!!"}})
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad payload status=%d", resp3.StatusCode)
	}
}

func TestNotesEditor(t *testing.T) {
	s := NewServer()
	s.SeedNote("todo", "Existing paragraph in the note.")
	srv := httptest.NewServer(s)
	defer srv.Close()
	b := browser.New()
	tab, err := b.OpenTab(srv.URL + "/notes/todo")
	if err != nil {
		t.Fatal(err)
	}
	ed, err := AttachNotesEditor(tab)
	if err != nil {
		t.Fatal(err)
	}
	if ed.NoteID() != "todo" {
		t.Errorf("NoteID=%q", ed.NoteID())
	}
	if err := ed.Append("Second paragraph of the note."); err != nil {
		t.Fatal(err)
	}
	if got := s.Note("todo"); len(got) != 2 || got[1] != "Second paragraph of the note." {
		t.Errorf("note=%v", got)
	}
	b.SetClipboard("Pasted from somewhere else.")
	if err := ed.PasteAppend(); err != nil {
		t.Fatal(err)
	}
	if got := s.Note("todo"); len(got) != 3 {
		t.Errorf("note=%v", got)
	}
}

func TestAttachNotesEditorWrongPage(t *testing.T) {
	s := NewServer()
	s.SeedWikiPage("w", "x")
	srv := httptest.NewServer(s)
	defer srv.Close()
	b := browser.New()
	tab, err := b.OpenTab(srv.URL + "/wiki/w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachNotesEditor(tab); err == nil {
		t.Error("attached to non-notes page")
	}
}

func TestServiceForPathNotes(t *testing.T) {
	got, ok := ServiceForPath("/notes/todo")
	if !ok || got != ServiceNotes {
		t.Errorf("ServiceForPath=/notes/todo -> %q,%v", got, ok)
	}
}
