package webapp

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/browser"
)

func setupDocs(t *testing.T) (*Server, *browser.Browser, *DocsEditor) {
	t.Helper()
	s := NewServer()
	s.SeedDoc("report", "Initial paragraph content here.")
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	b := browser.New()
	tab, err := b.OpenTab(srv.URL + "/docs/report")
	if err != nil {
		t.Fatal(err)
	}
	ed, err := AttachDocsEditor(tab)
	if err != nil {
		t.Fatal(err)
	}
	return s, b, ed
}

func TestAttachDocsEditor(t *testing.T) {
	_, _, ed := setupDocs(t)
	if ed.DocID() != "report" {
		t.Errorf("DocID=%q", ed.DocID())
	}
	if got := len(ed.Paragraphs()); got != 1 {
		t.Errorf("paragraphs=%d, want 1", got)
	}
	if text, err := ed.ParagraphText(0); err != nil || text != "Initial paragraph content here." {
		t.Errorf("ParagraphText=(%q,%v)", text, err)
	}
	if _, err := ed.ParagraphText(5); err == nil {
		t.Error("out-of-range paragraph accepted")
	}
}

func TestAttachDocsEditorWrongPage(t *testing.T) {
	s := NewServer()
	s.SeedWikiPage("w", "x")
	srv := httptest.NewServer(s)
	defer srv.Close()
	b := browser.New()
	tab, err := b.OpenTab(srv.URL + "/wiki/w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachDocsEditor(tab); err == nil {
		t.Error("attached to a non-docs page")
	}
}

func TestReplaceParagraphSyncs(t *testing.T) {
	s, _, ed := setupDocs(t)
	if err := ed.ReplaceParagraph(0, "Edited content."); err != nil {
		t.Fatal(err)
	}
	if got := s.Doc("report"); got[0] != "Edited content." {
		t.Errorf("backend=%v", got)
	}
	if text, _ := ed.ParagraphText(0); text != "Edited content." {
		t.Errorf("DOM=%q", text)
	}
	if err := ed.ReplaceParagraph(7, "x"); err == nil {
		t.Error("out-of-range replace accepted")
	}
}

func TestAppendParagraphSyncs(t *testing.T) {
	s, _, ed := setupDocs(t)
	if err := ed.AppendParagraph("Second paragraph."); err != nil {
		t.Fatal(err)
	}
	if got := s.Doc("report"); len(got) != 2 || got[1] != "Second paragraph." {
		t.Errorf("backend=%v", got)
	}
	if got := len(ed.Paragraphs()); got != 2 {
		t.Errorf("DOM paragraphs=%d", got)
	}
}

func TestInsertAndDeleteParagraph(t *testing.T) {
	s, _, ed := setupDocs(t)
	if err := ed.AppendParagraph("Tail paragraph."); err != nil {
		t.Fatal(err)
	}
	// Insert between the two.
	if err := ed.InsertParagraph(1, "Middle paragraph."); err != nil {
		t.Fatal(err)
	}
	want := []string{"Initial paragraph content here.", "Middle paragraph.", "Tail paragraph."}
	got := s.Doc("report")
	if len(got) != 3 {
		t.Fatalf("backend=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backend[%d]=%q, want %q", i, got[i], want[i])
		}
	}
	// Delete the middle one.
	if err := ed.DeleteParagraph(1); err != nil {
		t.Fatal(err)
	}
	got = s.Doc("report")
	if len(got) != 2 || got[1] != "Tail paragraph." {
		t.Errorf("after delete: %v", got)
	}
	if len(ed.Paragraphs()) != 2 {
		t.Errorf("DOM paragraphs=%d", len(ed.Paragraphs()))
	}
	// Out-of-range errors.
	if err := ed.InsertParagraph(9, "x"); err == nil {
		t.Error("bad insert accepted")
	}
	if err := ed.DeleteParagraph(9); err == nil {
		t.Error("bad delete accepted")
	}
}

func TestDeleteLocalOnlyParagraph(t *testing.T) {
	s, b, ed := setupDocs(t)
	for _, tab := range b.Tabs() {
		tab.RegisterXHRHook(func(_ *browser.Tab, req *browser.XHRRequest) error {
			if strings.Contains(string(req.Body), "SECRET") {
				return errors.New("blocked")
			}
			return nil
		})
	}
	if err := ed.AppendParagraph("SECRET stuff"); !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v", err)
	}
	// Deleting the blocked paragraph is a purely local operation.
	if err := ed.DeleteParagraph(1); err != nil {
		t.Fatalf("delete local-only: %v", err)
	}
	if got := s.Doc("report"); len(got) != 1 {
		t.Errorf("backend=%v", got)
	}
	if len(ed.Paragraphs()) != 1 {
		t.Errorf("DOM=%d paragraphs", len(ed.Paragraphs()))
	}
}

func TestTypeParagraphChunks(t *testing.T) {
	s, _, ed := setupDocs(t)
	text := "typed character by character"
	if err := ed.TypeParagraph(0, text, 5); err != nil {
		t.Fatal(err)
	}
	if got := s.Doc("report"); got[0] != text {
		t.Errorf("backend=%q", got[0])
	}
	// Chunk <= 0 coerced to 1.
	if err := ed.TypeParagraph(0, "ab", 0); err != nil {
		t.Fatal(err)
	}
}

func TestBackendFailureSurfacesToClient(t *testing.T) {
	s, _, ed := setupDocs(t)
	s.SetFailEvery(2) // every 2nd mutation fails
	if err := ed.ReplaceParagraph(0, "first edit goes through"); err != nil {
		t.Fatalf("first edit: %v", err)
	}
	err := ed.ReplaceParagraph(0, "second edit hits the injected failure")
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("err=%v, want injected 500", err)
	}
	// Recovery: the next mutation succeeds again.
	if err := ed.ReplaceParagraph(0, "third edit recovers"); err != nil {
		t.Fatalf("third edit: %v", err)
	}
	if got := s.Doc("report"); got[0] != "third edit recovers" {
		t.Errorf("backend=%v", got)
	}
	s.SetFailEvery(0)
	if err := ed.ReplaceParagraph(0, "injection disabled"); err != nil {
		t.Fatal(err)
	}
}

func TestPasteAppend(t *testing.T) {
	s, b, ed := setupDocs(t)
	b.SetClipboard("Copied sensitive text from the wiki.")
	if err := ed.PasteAppend(); err != nil {
		t.Fatal(err)
	}
	if got := s.Doc("report"); len(got) != 2 || !strings.Contains(got[1], "sensitive") {
		t.Errorf("backend=%v", got)
	}
}

func TestBlockedAppendDoesNotCorruptIndices(t *testing.T) {
	s, b, ed := setupDocs(t)
	// Block only payloads containing "SECRET".
	for _, tab := range b.Tabs() {
		tab.RegisterXHRHook(func(_ *browser.Tab, req *browser.XHRRequest) error {
			if strings.Contains(string(req.Body), "SECRET") {
				return errors.New("blocked by policy")
			}
			return nil
		})
	}
	if err := ed.AppendParagraph("SECRET paragraph"); !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	// A subsequent clean append must land at the correct backend index.
	if err := ed.AppendParagraph("clean paragraph"); err != nil {
		t.Fatalf("clean append after block: %v", err)
	}
	got := s.Doc("report")
	if len(got) != 2 || got[1] != "clean paragraph" {
		t.Errorf("backend=%v", got)
	}
	// DOM holds all three paragraphs.
	if len(ed.Paragraphs()) != 3 {
		t.Errorf("DOM paragraphs=%d, want 3", len(ed.Paragraphs()))
	}
	// Rewriting the blocked paragraph into compliance resynchronises it
	// as an insert at its DOM position.
	if err := ed.ReplaceParagraph(1, "now harmless"); err != nil {
		t.Fatalf("resync rewrite: %v", err)
	}
	got = s.Doc("report")
	if len(got) != 3 || got[1] != "now harmless" {
		t.Errorf("backend after resync=%v", got)
	}
}

func TestBlockedSyncKeepsLocalEdit(t *testing.T) {
	s, b, ed := setupDocs(t)
	for _, tab := range b.Tabs() {
		tab.RegisterXHRHook(func(*browser.Tab, *browser.XHRRequest) error {
			return errors.New("blocked by policy")
		})
	}
	err := ed.ReplaceParagraph(0, "Secret addition.")
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	// Local DOM has the edit; the backend does not.
	if text, _ := ed.ParagraphText(0); text != "Secret addition." {
		t.Errorf("DOM=%q", text)
	}
	if got := s.Doc("report"); got[0] == "Secret addition." {
		t.Error("blocked mutation reached the backend")
	}
}
