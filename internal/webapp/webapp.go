// Package webapp implements the simulated cloud services that BrowserFlow
// is evaluated against, mirroring the paper's deployment (§2, §5):
//
//   - Wiki — an internally hosted, form-based CMS (static HTML pages with a
//     POST edit form), exercising the §5.1 interception path;
//   - Interview Tool — a second form-based internal service;
//   - Docs — an external, AJAX-based collaborative editor in the style of
//     Google Docs: the page carries user text in custom-formatted DOM
//     elements and ships each edit to the backend as an asynchronous JSON
//     request, exercising the §5.2 interception path.
//
// All three run on net/http and hold their state in memory.
package webapp

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Service names used in TDM policies.
const (
	ServiceWiki  = "wiki"
	ServiceITool = "itool"
	ServiceDocs  = "docs"
)

// ServiceForPath maps a request path to the owning service name.
func ServiceForPath(path string) (string, bool) {
	switch {
	case strings.HasPrefix(path, "/wiki/"):
		return ServiceWiki, true
	case strings.HasPrefix(path, "/itool/"):
		return ServiceITool, true
	case strings.HasPrefix(path, "/docs/"):
		return ServiceDocs, true
	case strings.HasPrefix(path, "/notes/"):
		return ServiceNotes, true
	default:
		return "", false
	}
}

// Server hosts the simulated services under one mux: /wiki/, /itool/,
// /docs/, /notes/.
type Server struct {
	mu sync.RWMutex

	// failEvery, when > 0, makes every nth docs mutation fail with a 500 —
	// failure injection for client resilience tests.
	failEvery int
	mutations int

	wikiPages   map[string][]string // page -> paragraphs
	evaluations map[string][]string // candidate -> evaluation notes
	docs        map[string][]string // doc -> paragraphs
	notes       map[string][]string // note -> paragraphs

	mux *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer returns a Server with empty stores.
func NewServer() *Server {
	s := &Server{
		wikiPages:   make(map[string][]string),
		evaluations: make(map[string][]string),
		docs:        make(map[string][]string),
		notes:       make(map[string][]string),
		mux:         http.NewServeMux(),
	}
	s.mux.HandleFunc("/wiki/", s.handleWiki)
	s.mux.HandleFunc("/itool/", s.handleITool)
	s.mux.HandleFunc("/docs/", s.handleDocs)
	s.mux.HandleFunc("/notes/", s.handleNotes)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- Wiki (form-based, §5.1) -------------------------------------------

// SeedWikiPage preloads a wiki page with paragraphs.
func (s *Server) SeedWikiPage(page string, paragraphs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wikiPages[page] = append([]string(nil), paragraphs...)
}

// WikiPage returns the stored paragraphs of a page.
func (s *Server) WikiPage(page string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.wikiPages[page]...)
}

func (s *Server) handleWiki(w http.ResponseWriter, r *http.Request) {
	page := strings.TrimPrefix(r.URL.Path, "/wiki/")
	if page == "" {
		s.renderWikiIndex(w)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.renderWikiPage(w, page)
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		content := r.PostFormValue("content")
		s.mu.Lock()
		s.wikiPages[page] = append(s.wikiPages[page], content)
		s.mu.Unlock()
		http.Redirect(w, r, "/wiki/"+page, http.StatusSeeOther)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) renderWikiIndex(w http.ResponseWriter) {
	s.mu.RLock()
	pages := make([]string, 0, len(s.wikiPages))
	for p := range s.wikiPages {
		pages = append(pages, p)
	}
	s.mu.RUnlock()
	sort.Strings(pages)
	var sb strings.Builder
	sb.WriteString(`<html><body><div id="content" class="content"><h1>Internal Wiki</h1><ul>`)
	for _, p := range pages {
		fmt.Fprintf(&sb, `<li><a href="/wiki/%s">%s</a></li>`, html.EscapeString(p), html.EscapeString(p))
	}
	sb.WriteString(`</ul></div></body></html>`)
	writeHTML(w, sb.String())
}

func (s *Server) renderWikiPage(w http.ResponseWriter, page string) {
	s.mu.RLock()
	paragraphs := append([]string(nil), s.wikiPages[page]...)
	s.mu.RUnlock()
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	sb.WriteString(`<div class="header"><a href="/wiki/">Wiki Home</a></div>`)
	fmt.Fprintf(&sb, `<div id="article" class="content"><h1>%s</h1>`, html.EscapeString(page))
	for i, p := range paragraphs {
		fmt.Fprintf(&sb, `<p id="par-%d">%s</p>`, i, html.EscapeString(p))
	}
	sb.WriteString(`</div>`)
	fmt.Fprintf(&sb, `<form id="edit" action="/wiki/%s" method="post">`, html.EscapeString(page))
	sb.WriteString(`<textarea name="content"></textarea>`)
	sb.WriteString(`<input type="hidden" name="csrf" value="token123"/>`)
	sb.WriteString(`<input type="submit" value="Add paragraph"/>`)
	sb.WriteString(`</form>`)
	sb.WriteString(`<div class="footer"><a href="/about">About</a></div>`)
	sb.WriteString(`</body></html>`)
	writeHTML(w, sb.String())
}

// --- Interview Tool (form-based) ----------------------------------------

// SeedEvaluation preloads an interview evaluation.
func (s *Server) SeedEvaluation(candidate string, notes ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evaluations[candidate] = append([]string(nil), notes...)
}

// Evaluations returns the stored notes for a candidate.
func (s *Server) Evaluations(candidate string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.evaluations[candidate]...)
}

func (s *Server) handleITool(w http.ResponseWriter, r *http.Request) {
	candidate := strings.TrimPrefix(r.URL.Path, "/itool/")
	if candidate == "" {
		http.Error(w, "candidate required", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.renderCandidate(w, candidate)
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		note := r.PostFormValue("evaluation")
		s.mu.Lock()
		s.evaluations[candidate] = append(s.evaluations[candidate], note)
		s.mu.Unlock()
		http.Redirect(w, r, "/itool/"+candidate, http.StatusSeeOther)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) renderCandidate(w http.ResponseWriter, candidate string) {
	s.mu.RLock()
	notes := append([]string(nil), s.evaluations[candidate]...)
	s.mu.RUnlock()
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	fmt.Fprintf(&sb, `<div id="main" class="content"><h1>Candidate: %s</h1>`, html.EscapeString(candidate))
	for i, n := range notes {
		fmt.Fprintf(&sb, `<p id="note-%d">%s</p>`, i, html.EscapeString(n))
	}
	sb.WriteString(`</div>`)
	fmt.Fprintf(&sb, `<form id="addnote" action="/itool/%s" method="post">`, html.EscapeString(candidate))
	sb.WriteString(`<input type="text" name="evaluation" value=""/>`)
	sb.WriteString(`<input type="submit" value="Add note"/>`)
	sb.WriteString(`</form></body></html>`)
	writeHTML(w, sb.String())
}

// --- Docs (AJAX-based, §5.2) --------------------------------------------

// MutateRequest is the JSON body the docs editor sends on every edit, in
// the spirit of Google Docs shipping document mutations per keystroke.
type MutateRequest struct {
	// Op is "replace", "insert" or "delete".
	Op string `json:"op"`

	// Par is the zero-based paragraph index the operation targets.
	Par int `json:"par"`

	// Text is the paragraph's new full text (replace/insert).
	Text string `json:"text"`
}

// SeedDoc preloads a document with paragraphs.
func (s *Server) SeedDoc(doc string, paragraphs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[doc] = append([]string(nil), paragraphs...)
}

// Doc returns the stored paragraphs of a document.
func (s *Server) Doc(doc string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.docs[doc]...)
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/docs/")
	if rest == "" {
		http.Error(w, "document required", http.StatusNotFound)
		return
	}
	if strings.HasSuffix(rest, "/mutate") {
		s.handleDocMutate(w, r, strings.TrimSuffix(rest, "/mutate"))
		return
	}
	if strings.HasSuffix(rest, "/content") {
		s.handleDocContent(w, rest[:len(rest)-len("/content")])
		return
	}
	if strings.HasSuffix(rest, "/search") {
		s.handleDocSearch(w, r, strings.TrimSuffix(rest, "/search"))
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.renderDoc(w, rest)
}

// SetFailEvery makes every nth docs mutation return a 500 (0 disables).
func (s *Server) SetFailEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failEvery = n
	s.mutations = 0
}

func (s *Server) handleDocMutate(w http.ResponseWriter, r *http.Request, doc string) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	s.mutations++
	inject := s.failEvery > 0 && s.mutations%s.failEvery == 0
	s.mu.Unlock()
	if inject {
		http.Error(w, "injected backend failure", http.StatusInternalServerError)
		return
	}
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pars := s.docs[doc]
	switch req.Op {
	case "replace":
		if req.Par < 0 || req.Par >= len(pars) {
			http.Error(w, "paragraph out of range", http.StatusBadRequest)
			return
		}
		pars[req.Par] = req.Text
	case "insert":
		if req.Par < 0 || req.Par > len(pars) {
			http.Error(w, "paragraph out of range", http.StatusBadRequest)
			return
		}
		pars = append(pars, "")
		copy(pars[req.Par+1:], pars[req.Par:])
		pars[req.Par] = req.Text
	case "delete":
		if req.Par < 0 || req.Par >= len(pars) {
			http.Error(w, "paragraph out of range", http.StatusBadRequest)
			return
		}
		pars = append(pars[:req.Par], pars[req.Par+1:]...)
	default:
		http.Error(w, "unknown op", http.StatusBadRequest)
		return
	}
	s.docs[doc] = pars
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, `{"ok":true}`)
}

// handleDocSearch is the server-side feature that §2.2 says data
// encryption breaks: "services may need to index, search, and inspect the
// original data". It returns the indices of paragraphs containing q.
func (s *Server) handleDocSearch(w http.ResponseWriter, r *http.Request, doc string) {
	q := strings.ToLower(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, "q required", http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	pars := append([]string(nil), s.docs[doc]...)
	s.mu.RUnlock()
	hits := []int{}
	for i, p := range pars {
		if strings.Contains(strings.ToLower(p), q) {
			hits = append(hits, i)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(hits); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleDocContent(w http.ResponseWriter, doc string) {
	s.mu.RLock()
	pars := append([]string(nil), s.docs[doc]...)
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(pars); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// renderDoc emits the Google-Docs-style editor shell: user text lives in
// custom-formatted <div class="kix-paragraph"> elements rather than
// standard <p>/<textarea> elements, so interception must go through
// mutation observers, not form fields.
func (s *Server) renderDoc(w http.ResponseWriter, doc string) {
	s.mu.RLock()
	pars := append([]string(nil), s.docs[doc]...)
	s.mu.RUnlock()
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	fmt.Fprintf(&sb, `<div id="editor" class="kix-editor" data-doc="%s">`, html.EscapeString(doc))
	for i, p := range pars {
		fmt.Fprintf(&sb, `<div class="kix-paragraph" id="kix-%d">%s</div>`, i, html.EscapeString(p))
	}
	sb.WriteString(`</div>`)
	sb.WriteString(`<script>/* editor bootstrap */</script>`)
	sb.WriteString(`</body></html>`)
	writeHTML(w, sb.String())
}

func writeHTML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, body)
}
