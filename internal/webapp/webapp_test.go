package webapp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func TestServiceForPath(t *testing.T) {
	tests := []struct {
		path   string
		want   string
		wantOK bool
	}{
		{path: "/wiki/guidelines", want: ServiceWiki, wantOK: true},
		{path: "/itool/alice", want: ServiceITool, wantOK: true},
		{path: "/docs/report", want: ServiceDocs, wantOK: true},
		{path: "/other/x", want: "", wantOK: false},
	}
	for _, tt := range tests {
		got, ok := ServiceForPath(tt.path)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("ServiceForPath(%q)=(%q,%v), want (%q,%v)", tt.path, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestWikiRenderAndPost(t *testing.T) {
	s := NewServer()
	s.SeedWikiPage("guidelines", "First paragraph.", "Second paragraph.")
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/wiki/guidelines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{"First paragraph.", "Second paragraph.", `<form id="edit"`, `name="content"`} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}

	// POST a new paragraph through the form endpoint.
	resp2, err := http.PostForm(srv.URL+"/wiki/guidelines", url.Values{"content": {"Third paragraph."}})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	got := s.WikiPage("guidelines")
	if len(got) != 3 || got[2] != "Third paragraph." {
		t.Errorf("WikiPage=%v", got)
	}
}

func TestWikiIndex(t *testing.T) {
	s := NewServer()
	s.SeedWikiPage("alpha", "a")
	s.SeedWikiPage("beta", "b")
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/wiki/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "alpha") || !strings.Contains(buf.String(), "beta") {
		t.Errorf("index missing pages: %s", buf.String())
	}
}

func TestWikiEscapesHTML(t *testing.T) {
	s := NewServer()
	s.SeedWikiPage("xss", `<script>alert("boom")</script>`)
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/wiki/xss")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("user content not escaped")
	}
}

func TestIToolFlow(t *testing.T) {
	s := NewServer()
	s.SeedEvaluation("alice", "Strong systems knowledge.")
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/itool/alice")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "Strong systems knowledge.") {
		t.Error("evaluation missing from page")
	}

	resp2, err := http.PostForm(srv.URL+"/itool/alice", url.Values{"evaluation": {"Great communicator."}})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if notes := s.Evaluations("alice"); len(notes) != 2 || notes[1] != "Great communicator." {
		t.Errorf("Evaluations=%v", notes)
	}
}

func TestDocsRenderMutateContent(t *testing.T) {
	s := NewServer()
	s.SeedDoc("report", "Intro paragraph.", "Body paragraph.")
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Shell page carries paragraphs in custom divs, not <p>.
	resp, err := http.Get(srv.URL + "/docs/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), `class="kix-paragraph"`) || strings.Contains(buf.String(), "<p>") {
		t.Errorf("docs shell format wrong: %s", buf.String())
	}

	// Mutations.
	post := func(m MutateRequest) *http.Response {
		t.Helper()
		body, _ := json.Marshal(m)
		resp, err := http.Post(srv.URL+"/docs/report/mutate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(MutateRequest{Op: "replace", Par: 0, Text: "Edited intro."}); resp.StatusCode != 200 {
		t.Fatalf("replace status=%d", resp.StatusCode)
	}
	if resp := post(MutateRequest{Op: "insert", Par: 2, Text: "Appendix."}); resp.StatusCode != 200 {
		t.Fatalf("insert status=%d", resp.StatusCode)
	}
	if resp := post(MutateRequest{Op: "delete", Par: 1}); resp.StatusCode != 200 {
		t.Fatalf("delete status=%d", resp.StatusCode)
	}
	if got := s.Doc("report"); len(got) != 2 || got[0] != "Edited intro." || got[1] != "Appendix." {
		t.Errorf("Doc=%v", got)
	}

	// Content endpoint.
	resp3, err := http.Get(srv.URL + "/docs/report/content")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var pars []string
	if err := json.NewDecoder(resp3.Body).Decode(&pars); err != nil {
		t.Fatal(err)
	}
	if len(pars) != 2 || pars[0] != "Edited intro." {
		t.Errorf("content=%v", pars)
	}
}

func TestDocsMutateErrors(t *testing.T) {
	s := NewServer()
	s.SeedDoc("d", "one")
	srv := httptest.NewServer(s)
	defer srv.Close()

	tests := []struct {
		name string
		body string
		want int
	}{
		{name: "bad json", body: "{", want: 400},
		{name: "unknown op", body: `{"op":"zap","par":0}`, want: 400},
		{name: "replace out of range", body: `{"op":"replace","par":9,"text":"x"}`, want: 400},
		{name: "insert out of range", body: `{"op":"insert","par":-1,"text":"x"}`, want: 400},
		{name: "delete out of range", body: `{"op":"delete","par":5}`, want: 400},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/docs/d/mutate", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.want {
				t.Errorf("status=%d, want %d", resp.StatusCode, tt.want)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := NewServer()
	s.SeedDoc("d", "one")
	s.SeedWikiPage("w", "x")
	srv := httptest.NewServer(s)
	defer srv.Close()
	for _, path := range []string{"/wiki/w", "/itool/alice", "/docs/d"} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: status=%d, want 405", path, resp.StatusCode)
		}
	}
}
