package webapp

import (
	"fmt"
	"net/url"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/dom"
)

// NotesEditor emulates the client-side JavaScript of the Notes service:
// edits mutate the DOM (visible to BrowserFlow's mutation observers) and
// the whole note is synchronised as a base64-encoded JSON envelope —
// opaque to network-level inspection.
type NotesEditor struct {
	tab    *browser.Tab
	editor *dom.Node
	noteID string
}

// AttachNotesEditor binds to the editor element of a loaded /notes/ page.
func AttachNotesEditor(tab *browser.Tab) (*NotesEditor, error) {
	editor := tab.Document().Root().ByID("note")
	if editor == nil {
		return nil, fmt.Errorf("webapp: page has no #note element")
	}
	noteID := editor.Attr("data-note")
	if noteID == "" {
		return nil, fmt.Errorf("webapp: editor missing data-note")
	}
	return &NotesEditor{tab: tab, editor: editor, noteID: noteID}, nil
}

// NoteID returns the backing note's ID.
func (e *NotesEditor) NoteID() string { return e.noteID }

// Paragraphs returns the note's paragraph elements.
func (e *NotesEditor) Paragraphs() []*dom.Node {
	return e.editor.FindAll(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == "div" && n.Class() == "note-par"
	})
}

// Texts returns the current paragraph texts.
func (e *NotesEditor) Texts() []string {
	pars := e.Paragraphs()
	out := make([]string, len(pars))
	for i, p := range pars {
		out[i] = p.InnerText()
	}
	return out
}

// Append adds a paragraph locally and synchronises the whole note.
func (e *NotesEditor) Append(text string) error {
	par := dom.NewElement("div", map[string]string{
		"class": "note-par",
		"id":    fmt.Sprintf("note-par-%d", len(e.Paragraphs())),
	})
	if err := e.tab.Document().AppendChild(e.editor, par); err != nil {
		return err
	}
	if err := e.tab.Document().SetElementText(par, text); err != nil {
		return err
	}
	return e.sync()
}

// PasteAppend appends the clipboard contents.
func (e *NotesEditor) PasteAppend() error {
	return e.Append(e.tab.Browser().Clipboard())
}

// sync ships the full note in the service's obfuscated wire format.
func (e *NotesEditor) sync() error {
	payload, err := EncodeNotesPayload(NotesPayload{Paragraphs: e.Texts()})
	if err != nil {
		return err
	}
	body := url.Values{"payload": {payload}}.Encode()
	resp, err := e.tab.XHRWithType("POST", "/notes/"+e.noteID+"/sync",
		"application/x-www-form-urlencoded", []byte(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("webapp: note sync status %d", resp.StatusCode)
	}
	return nil
}
