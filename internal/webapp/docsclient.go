package webapp

import (
	"encoding/json"
	"fmt"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/dom"
)

// DocsEditor emulates the client-side JavaScript of the Docs service: it
// mutates the page's custom paragraph elements (which fires the mutation
// observers BrowserFlow relies on) and ships every edit to the backend as
// an asynchronous JSON request through the tab's XHR path (which the
// plug-in's XMLHttpRequest hook intercepts).
type DocsEditor struct {
	tab    *browser.Tab
	editor *dom.Node
	docID  string

	// localOnly marks paragraphs whose insert was blocked by the plug-in:
	// they exist in the DOM but not on the backend, so later operations
	// must skip them when computing backend indices.
	localOnly map[*dom.Node]bool
}

// AttachDocsEditor binds to the editor element of a loaded /docs/ page.
func AttachDocsEditor(tab *browser.Tab) (*DocsEditor, error) {
	editor := tab.Document().Root().ByID("editor")
	if editor == nil {
		return nil, fmt.Errorf("webapp: page has no #editor element")
	}
	docID := editor.Attr("data-doc")
	if docID == "" {
		return nil, fmt.Errorf("webapp: editor missing data-doc")
	}
	return &DocsEditor{
		tab:       tab,
		editor:    editor,
		docID:     docID,
		localOnly: make(map[*dom.Node]bool),
	}, nil
}

// DocID returns the backing document's ID.
func (e *DocsEditor) DocID() string { return e.docID }

// Editor returns the editor root element.
func (e *DocsEditor) Editor() *dom.Node { return e.editor }

// Paragraphs returns the paragraph elements in document order.
func (e *DocsEditor) Paragraphs() []*dom.Node {
	return e.editor.FindAll(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == "div" && n.Class() == "kix-paragraph"
	})
}

// ParagraphText returns the current text of paragraph i.
func (e *DocsEditor) ParagraphText(i int) (string, error) {
	pars := e.Paragraphs()
	if i < 0 || i >= len(pars) {
		return "", fmt.Errorf("webapp: paragraph %d out of range (%d)", i, len(pars))
	}
	return pars[i].InnerText(), nil
}

// backendIndex maps a DOM paragraph position to its index on the backend,
// skipping paragraphs that only exist locally because their upload was
// blocked.
func (e *DocsEditor) backendIndex(pars []*dom.Node, i int) int {
	idx := 0
	for _, p := range pars[:i] {
		if !e.localOnly[p] {
			idx++
		}
	}
	return idx
}

// ReplaceParagraph sets paragraph i's text locally (firing DOM observers)
// and synchronises the edit to the backend. If the plug-in blocks the
// upload the DOM keeps the local edit but the request does not leave the
// browser — exactly the paper's enforcement point. A previously blocked
// paragraph is retried as an insert, so editing it into compliance
// resynchronises it.
func (e *DocsEditor) ReplaceParagraph(i int, text string) error {
	pars := e.Paragraphs()
	if i < 0 || i >= len(pars) {
		return fmt.Errorf("webapp: paragraph %d out of range (%d)", i, len(pars))
	}
	par := pars[i]
	if err := e.tab.Document().SetElementText(par, text); err != nil {
		return err
	}
	if e.localOnly[par] {
		if err := e.sync(MutateRequest{Op: "insert", Par: e.backendIndex(pars, i), Text: text}); err != nil {
			return err
		}
		delete(e.localOnly, par)
		return nil
	}
	return e.sync(MutateRequest{Op: "replace", Par: e.backendIndex(pars, i), Text: text})
}

// AppendParagraph adds a paragraph at the end and synchronises it. On a
// blocked upload the paragraph stays in the DOM but is marked local-only.
func (e *DocsEditor) AppendParagraph(text string) error {
	pars := e.Paragraphs()
	par := dom.NewElement("div", map[string]string{
		"class": "kix-paragraph",
		"id":    fmt.Sprintf("kix-%d", len(pars)),
	})
	if err := e.tab.Document().AppendChild(e.editor, par); err != nil {
		return err
	}
	if err := e.tab.Document().SetElementText(par, text); err != nil {
		return err
	}
	if err := e.sync(MutateRequest{Op: "insert", Par: e.backendIndex(pars, len(pars)), Text: text}); err != nil {
		e.localOnly[par] = true
		return err
	}
	return nil
}

// InsertParagraph inserts a paragraph at DOM position i and synchronises
// it.
func (e *DocsEditor) InsertParagraph(i int, text string) error {
	pars := e.Paragraphs()
	if i < 0 || i > len(pars) {
		return fmt.Errorf("webapp: insert position %d out of range (%d)", i, len(pars))
	}
	par := dom.NewElement("div", map[string]string{
		"class": "kix-paragraph",
		"id":    fmt.Sprintf("kix-ins-%d-%d", i, len(pars)),
	})
	if err := e.tab.Document().InsertChild(e.editor, par, i); err != nil {
		return err
	}
	if err := e.tab.Document().SetElementText(par, text); err != nil {
		return err
	}
	if err := e.sync(MutateRequest{Op: "insert", Par: e.backendIndex(e.Paragraphs(), i), Text: text}); err != nil {
		e.localOnly[par] = true
		return err
	}
	return nil
}

// DeleteParagraph removes paragraph i locally and on the backend. Deleting
// a local-only (blocked) paragraph touches just the DOM.
func (e *DocsEditor) DeleteParagraph(i int) error {
	pars := e.Paragraphs()
	if i < 0 || i >= len(pars) {
		return fmt.Errorf("webapp: paragraph %d out of range (%d)", i, len(pars))
	}
	par := pars[i]
	backendIdx := e.backendIndex(pars, i)
	wasLocal := e.localOnly[par]
	if err := e.tab.Document().RemoveChild(par.Parent(), par); err != nil {
		return err
	}
	delete(e.localOnly, par)
	if wasLocal {
		return nil
	}
	return e.sync(MutateRequest{Op: "delete", Par: backendIdx})
}

// TypeParagraph simulates a user typing text into paragraph i in chunks of
// chunk runes: each chunk updates the DOM and ships one mutation request,
// approximating Google Docs' per-keystroke synchronisation.
func (e *DocsEditor) TypeParagraph(i int, text string, chunk int) error {
	if chunk <= 0 {
		chunk = 1
	}
	runes := []rune(text)
	for pos := 0; pos < len(runes); pos += chunk {
		end := pos + chunk
		if end > len(runes) {
			end = len(runes)
		}
		if err := e.ReplaceParagraph(i, string(runes[:end])); err != nil {
			return err
		}
	}
	return nil
}

// PasteAppend appends the browser clipboard contents as a new paragraph —
// the canonical accidental-disclosure action of §2.
func (e *DocsEditor) PasteAppend() error {
	return e.AppendParagraph(e.tab.Browser().Clipboard())
}

func (e *DocsEditor) sync(req MutateRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("webapp: marshal mutation: %w", err)
	}
	resp, err := e.tab.XHR("POST", "/docs/"+e.docID+"/mutate", body)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("webapp: mutate status %d", resp.StatusCode)
	}
	return nil
}
