package webapp

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// The Notes service is an Evernote-like fourth cloud service whose wire
// format is *obfuscated*: the client ships the whole note as
// base64-encoded JSON inside a form field. Network-level DLP systems that
// scan outgoing bodies for sensitive text cannot see through it without
// reverse-engineering the protocol (§2.2), whereas BrowserFlow observes
// the plaintext in the DOM before it is encoded (§5).

// ServiceNotes is the TDM name of the notes service.
const ServiceNotes = "notes"

// NotesPayload is the JSON document inside the base64 envelope.
type NotesPayload struct {
	// Paragraphs is the full note content.
	Paragraphs []string `json:"paragraphs"`
}

// EncodeNotesPayload seals a payload in the service's wire format.
func EncodeNotesPayload(p NotesPayload) (string, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// DecodeNotesPayload opens the wire format. It is the "service-specific
// transformation of the service's data to text segments" of §4.4 — the
// adapter BrowserFlow needs to inspect this service's uploads.
func DecodeNotesPayload(s string) (NotesPayload, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return NotesPayload{}, fmt.Errorf("webapp: notes payload: %w", err)
	}
	var p NotesPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return NotesPayload{}, fmt.Errorf("webapp: notes payload: %w", err)
	}
	return p, nil
}

// SeedNote preloads a note.
func (s *Server) SeedNote(note string, paragraphs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.notes == nil {
		s.notes = make(map[string][]string)
	}
	s.notes[note] = append([]string(nil), paragraphs...)
}

// Note returns a note's paragraphs.
func (s *Server) Note(note string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.notes[note]...)
}

func (s *Server) handleNotes(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/notes/")
	if rest == "" {
		http.Error(w, "note required", http.StatusNotFound)
		return
	}
	if strings.HasSuffix(rest, "/sync") {
		s.handleNoteSync(w, r, strings.TrimSuffix(rest, "/sync"))
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.renderNote(w, rest)
}

func (s *Server) handleNoteSync(w http.ResponseWriter, r *http.Request, note string) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	payload, err := DecodeNotesPayload(r.PostFormValue("payload"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.notes == nil {
		s.notes = make(map[string][]string)
	}
	s.notes[note] = payload.Paragraphs
	s.mu.Unlock()
	fmt.Fprint(w, `{"ok":true}`)
}

func (s *Server) renderNote(w http.ResponseWriter, note string) {
	s.mu.RLock()
	pars := append([]string(nil), s.notes[note]...)
	s.mu.RUnlock()
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	fmt.Fprintf(&sb, `<div id="note" class="note-editor" data-note="%s">`, html.EscapeString(note))
	for i, p := range pars {
		fmt.Fprintf(&sb, `<div class="note-par" id="note-par-%d">%s</div>`, i, html.EscapeString(p))
	}
	sb.WriteString(`</div></body></html>`)
	writeHTML(w, sb.String())
}
