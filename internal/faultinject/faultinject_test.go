package faultinject

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/resilience"
)

func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			io.Copy(io.Discard, r.Body) //nolint:errcheck
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"decision": "allow"}) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, inj *Injector, method, url string) (*http.Response, error) {
	t.Helper()
	var body io.Reader
	if method == http.MethodPost {
		body = strings.NewReader(`{"x":1}`)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return inj.RoundTrip(req)
}

func TestPassThrough(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status=%d", resp.StatusCode)
	}
	if inj.Attempts("/v1/stats") != 1 || inj.Delivered("GET", "/v1/stats") != 1 || inj.Injected("/v1/stats") != 0 {
		t.Errorf("attempts=%d delivered=%d injected=%d",
			inj.Attempts("/v1/stats"), inj.Delivered("GET", "/v1/stats"), inj.Injected("/v1/stats"))
	}
}

func TestConnErrorIsNotDelivered(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	inj.AddRule(Rule{PathPrefix: "/v1/observe", Kind: KindConnError})
	_, err := do(t, inj, http.MethodPost, srv.URL+"/v1/observe")
	if err == nil {
		t.Fatal("expected error")
	}
	var ns *NotSentError
	if !errors.As(err, &ns) {
		t.Fatalf("err=%T, want *NotSentError", err)
	}
	if !resilience.NotDelivered(err) {
		t.Error("resilience.NotDelivered rejected the marker")
	}
	if inj.Delivered("POST", "/v1/observe") != 0 {
		t.Error("conn-error counted as delivered")
	}
	if inj.Injected("/v1/observe") != 1 {
		t.Error("fault not counted")
	}
}

func TestResetAfterSendCountsDelivery(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	inj.AddRule(Rule{PathPrefix: "/v1/observe", Kind: KindResetAfterSend})
	_, err := do(t, inj, http.MethodPost, srv.URL+"/v1/observe")
	if err == nil {
		t.Fatal("expected error")
	}
	if resilience.NotDelivered(err) {
		t.Error("reset-after-send must NOT claim the request was unsent")
	}
	if inj.Delivered("POST", "/v1/observe") != 1 {
		t.Error("delivery not counted")
	}
}

func TestInjectedStatus(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	inj.AddRule(Rule{PathPrefix: "/v1/", Kind: KindStatus, Status: 503})
	resp, err := do(t, inj, http.MethodPost, srv.URL+"/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("status=%d", resp.StatusCode)
	}
	if inj.Delivered("POST", "/v1/check") != 1 {
		t.Error("status fault should count as delivered (server consumed the body)")
	}
}

func TestTruncatedAndMalformedJSON(t *testing.T) {
	srv := upstream(t)
	for _, kind := range []Kind{KindTruncateBody, KindMalformedJSON} {
		inj := New(srv.Client().Transport, 1)
		inj.AddRule(Rule{Kind: kind})
		resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var out map[string]string
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if decErr == nil {
			t.Errorf("%s: body decoded cleanly, want corruption", kind)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	var slept time.Duration
	inj.SetSleep(func(d time.Duration) { slept += d })
	inj.AddRule(Rule{Kind: KindLatency, Latency: 250 * time.Millisecond})
	resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept != 250*time.Millisecond {
		t.Errorf("slept=%v", slept)
	}
}

func TestRuleTimesBudget(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	inj.AddRule(Rule{Kind: KindConnError, Times: 2})
	for i := 0; i < 2; i++ {
		if _, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats"); err == nil {
			t.Fatalf("call %d: expected injected error", i)
		}
	}
	resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats")
	if err != nil {
		t.Fatalf("rule exceeded Times budget: %v", err)
	}
	resp.Body.Close()
}

func TestMethodAndPrefixMatching(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	inj.AddRule(Rule{PathPrefix: "/v1/observe", Method: http.MethodPost, Kind: KindConnError})

	// Different path and different method both pass through.
	resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = do(t, inj, http.MethodPost, srv.URL+"/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := do(t, inj, http.MethodPost, srv.URL+"/v1/observe"); err == nil {
		t.Fatal("matching request not faulted")
	}
}

// Same seed, same probabilistic fault sequence: chaos runs reproduce.
func TestSeededDeterminism(t *testing.T) {
	srv := upstream(t)
	sequence := func(seed int64) []bool {
		inj := New(srv.Client().Transport, seed)
		inj.AddRule(Rule{Kind: KindConnError, P: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats")
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := sequence(99), sequence(99)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			diverged = true
		}
	}
	if diverged {
		t.Error("same seed produced different fault sequences")
	}
	c := sequence(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestClearRulesAndReset(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	inj.AddRule(Rule{Kind: KindConnError})
	if _, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats"); err == nil {
		t.Fatal("rule inactive")
	}
	inj.ClearRules()
	resp, err := do(t, inj, http.MethodGet, srv.URL+"/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	inj.Reset()
	if inj.Attempts("/v1/stats") != 0 {
		t.Error("Reset did not clear counters")
	}
}

// A stalled response delivers status and headers, then delays the first
// body read — slow consumer, not an error.
func TestStallDelaysBodyNotDelivery(t *testing.T) {
	srv := upstream(t)
	inj := New(srv.Client().Transport, 1)
	var slept time.Duration
	inj.SetSleep(func(d time.Duration) { slept += d })
	inj.AddRule(Rule{Kind: KindStall, Latency: 400 * time.Millisecond})

	resp, err := do(t, inj, http.MethodPost, srv.URL+"/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Headers are here, no sleep yet: the stall hits the body, not the
	// round-trip.
	if resp.StatusCode != 200 {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if slept != 0 {
		t.Fatalf("slept %v before the body was read", slept)
	}
	if inj.Delivered("POST", "/v1/observe") != 1 {
		t.Error("stalled request should count as delivered")
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if slept != 400*time.Millisecond {
		t.Errorf("slept=%v, want 400ms on first body read", slept)
	}
	if out["decision"] != "allow" {
		t.Errorf("body=%v, want intact payload after the stall", out)
	}
}
