package faultinject

import (
	"errors"
	"os"
	"syscall"
	"testing"
)

func writeN(t *testing.T, f interface{ Write([]byte) (int, error) }, n int) {
	t.Helper()
	if _, err := f.Write(make([]byte, n)); err != nil {
		t.Fatalf("write %d bytes: %v", n, err)
	}
}

func TestFailWritesAfterEIO(t *testing.T) {
	m := NewMemFS(1)
	f, err := m.OpenFile("/d/a", os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	m.FailWritesAfter(10)
	writeN(t, f, 6) // 6 of 10 spent

	n, err := f.Write(make([]byte, 8)) // 4 left: partial write then EIO
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	if n != 4 {
		t.Fatalf("partial write landed %d bytes, want 4", n)
	}
	if sz, _ := m.Size("/d/a"); sz != 10 {
		t.Fatalf("file size %d, want 10", sz)
	}
	if !m.WriteErrorActive() {
		t.Fatal("EIO injection did not latch")
	}

	// Sticky: later writes and syncs keep failing.
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("post-fault write err = %v, want EIO", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("post-fault sync err = %v, want EIO", err)
	}

	m.ClearWriteError()
	writeN(t, f, 3)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
}

func TestCapacityENOSPCAndPruneRecovery(t *testing.T) {
	m := NewMemFS(1)
	m.SetCapacity(100)
	a, err := m.OpenFile("/d/a", os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, a, 80)

	b, err := m.OpenFile("/d/b", os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(make([]byte, 30)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-capacity write err = %v, want ENOSPC", err)
	}
	if got := m.Used(); got != 80 {
		t.Fatalf("Used = %d after failed write, want 80", got)
	}

	// Freeing space (pruning an obsolete file) genuinely recovers.
	if err := m.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	writeN(t, b, 30)
	if got := m.Used(); got != 30 {
		t.Fatalf("Used = %d, want 30", got)
	}

	// Truncate frees too.
	if err := m.Truncate("/d/b", 5); err != nil {
		t.Fatal(err)
	}
	if got := m.Used(); got != 5 {
		t.Fatalf("Used after truncate = %d, want 5", got)
	}
	writeN(t, b, 90)
}

func TestReadOnlyEROFS(t *testing.T) {
	m := NewMemFS(1)
	f, err := m.OpenFile("/d/a", os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, f, 4)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.SetReadOnly(true)

	if _, err := m.OpenFile("/d/b", os.O_CREATE, 0o644); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("open err = %v, want EROFS", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("write err = %v, want EROFS", err)
	}
	if err := m.Rename("/d/a", "/d/c"); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("rename err = %v, want EROFS", err)
	}
	if err := m.Remove("/d/a"); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("remove err = %v, want EROFS", err)
	}
	if err := m.Truncate("/d/a", 0); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("truncate err = %v, want EROFS", err)
	}
	if err := m.MkdirAll("/d/sub", 0o755); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("mkdir err = %v, want EROFS", err)
	}

	// Reads keep working on a read-only filesystem.
	if data, err := m.ReadFile("/d/a"); err != nil || len(data) != 4 {
		t.Fatalf("read on ro fs: %v (len %d)", err, len(data))
	}

	m.SetReadOnly(false)
	writeN(t, f, 1)
}
