// Package faultinject provides a deterministic, seedable fault-injecting
// http.RoundTripper for chaos testing the remote tag-service path. Rules
// match requests by path prefix and method and inject connection errors,
// latency, stalled response bodies, synthetic 5xx statuses, truncated
// bodies, or malformed JSON —
// everything a flaky shared service or a middlebox can do to a client.
//
// The injector also keeps per-path delivery counters, which lets tests
// assert the cardinal retry-safety property: a non-idempotent request whose
// body was delivered upstream is never retried.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind selects a fault behaviour.
type Kind string

const (
	// KindConnError fails the request before anything is sent (like a
	// refused connection). The error implements RequestNotSent, so
	// retrying it is safe for any method.
	KindConnError Kind = "conn-error"

	// KindResetAfterSend delivers the request upstream, then fails the
	// round-trip (like a connection reset while reading the response).
	// The error does NOT mark the request as unsent: retrying a POST
	// after it would be a duplicate delivery.
	KindResetAfterSend Kind = "reset-after-send"

	// KindLatency delays the request by Rule.Latency, then delivers it.
	KindLatency Kind = "latency"

	// KindStall delivers the request normally but stalls the response: the
	// status and headers come back immediately, then the first body read
	// blocks for Rule.Latency before any byte arrives. This is a slow
	// consumer or congested middlebox, not an error — nothing fails, the
	// caller just waits. Overload tests use it to pin down slow-consumer
	// behaviour deterministically.
	KindStall Kind = "stall"

	// KindStatus consumes the request and answers with Rule.Status
	// (default 503) without contacting the upstream.
	KindStatus Kind = "status"

	// KindTruncateBody delivers the request and truncates the response
	// body to half its length (a cut connection mid-body).
	KindTruncateBody Kind = "truncate-body"

	// KindMalformedJSON delivers the request and replaces the response
	// body with syntactically invalid JSON.
	KindMalformedJSON Kind = "malformed-json"
)

// Rule matches requests and injects one fault kind.
type Rule struct {
	// PathPrefix matches req.URL.Path; empty matches every path.
	PathPrefix string

	// Method matches the request method; empty matches every method.
	Method string

	// Kind is the fault to inject.
	Kind Kind

	// Status is the synthetic response code for KindStatus (default 503).
	Status int

	// Latency is the injected delay for KindLatency.
	Latency time.Duration

	// P is the injection probability in (0, 1]; 0 means always. Draws
	// come from the injector's seeded source, so runs are reproducible.
	P float64

	// Times bounds how often the rule fires (0 = unlimited).
	Times int

	applied   int
	partition bool // installed by Partition, removed by Heal
}

// NotSentError is the connection-level failure injected by KindConnError.
// It satisfies resilience.NotDelivered via RequestNotSent.
type NotSentError struct {
	Method string
	Path   string
}

// Error implements error.
func (e *NotSentError) Error() string {
	return fmt.Sprintf("faultinject: %s %s: connection refused (request not sent)", e.Method, e.Path)
}

// RequestNotSent reports that the request body never left the client.
func (e *NotSentError) RequestNotSent() bool { return true }

// Injector is a fault-injecting RoundTripper. It is safe for concurrent
// use; rules may be added and cleared between (or during) requests.
type Injector struct {
	next  http.RoundTripper
	sleep func(time.Duration)

	mu        sync.Mutex
	rng       *rand.Rand
	rules     []*Rule
	attempts  map[string]int // per path: round-trips attempted through the injector
	delivered map[string]int // per "METHOD path": bodies delivered upstream
	injected  map[string]int // per path: faults injected
}

// New returns an Injector forwarding to next (http.DefaultTransport when
// nil) with a deterministic random source derived from seed.
func New(next http.RoundTripper, seed int64) *Injector {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Injector{
		next:      next,
		sleep:     time.Sleep,
		rng:       rand.New(rand.NewSource(seed)),
		attempts:  make(map[string]int),
		delivered: make(map[string]int),
		injected:  make(map[string]int),
	}
}

// SetSleep replaces the latency-injection sleeper (tests use a recorder).
func (i *Injector) SetSleep(fn func(time.Duration)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if fn != nil {
		i.sleep = fn
	}
}

// AddRule appends a rule. Later rules are consulted only when earlier ones
// do not match.
func (i *Injector) AddRule(r Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	rule := r
	i.rules = append(i.rules, &rule)
}

// ClearRules removes every rule (the injector becomes a transparent
// pass-through).
func (i *Injector) ClearRules() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = nil
}

// Partition simulates a network partition: every request fails before
// anything reaches the wire, until Heal is called. Partition rules stack
// in front of existing rules and survive ClearRules-free operation;
// replication tests use Partition/Heal pairs to cut a replica off from
// its primary and watch it catch up afterwards.
func (i *Injector) Partition() {
	i.mu.Lock()
	defer i.mu.Unlock()
	rule := Rule{Kind: KindConnError, partition: true}
	i.rules = append([]*Rule{&rule}, i.rules...)
}

// Heal removes every rule installed by Partition, reconnecting the
// injector's upstream. Other rules are untouched.
func (i *Injector) Heal() {
	i.mu.Lock()
	defer i.mu.Unlock()
	kept := i.rules[:0]
	for _, r := range i.rules {
		if !r.partition {
			kept = append(kept, r)
		}
	}
	i.rules = kept
}

// Attempts returns how many round-trips were attempted for path.
func (i *Injector) Attempts(path string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.attempts[path]
}

// Delivered returns how many request bodies for method+path were delivered
// upstream (including synthetic-status responses, where the server is
// assumed to have consumed the request).
func (i *Injector) Delivered(method, path string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.delivered[method+" "+path]
}

// Injected returns how many faults were injected for path.
func (i *Injector) Injected(path string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected[path]
}

// Reset zeroes every counter (rules are kept).
func (i *Injector) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.attempts = make(map[string]int)
	i.delivered = make(map[string]int)
	i.injected = make(map[string]int)
}

// match returns the first applicable rule, consuming its probability draw
// and Times budget. Caller holds i.mu.
func (i *Injector) matchLocked(req *http.Request) *Rule {
	for _, r := range i.rules {
		if r.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, r.PathPrefix) {
			continue
		}
		if r.Method != "" && r.Method != req.Method {
			continue
		}
		if r.Times > 0 && r.applied >= r.Times {
			continue
		}
		if r.P > 0 && r.P < 1 && i.rng.Float64() >= r.P {
			continue
		}
		r.applied++
		return r
	}
	return nil
}

// RoundTrip implements http.RoundTripper.
func (i *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	i.mu.Lock()
	i.attempts[path]++
	rule := i.matchLocked(req)
	var ruleCopy Rule
	if rule != nil {
		i.injected[path]++
		ruleCopy = *rule
	}
	sleep := i.sleep
	i.mu.Unlock()

	if rule == nil {
		return i.deliver(req)
	}

	switch ruleCopy.Kind {
	case KindConnError:
		// Nothing reached the wire.
		return nil, &NotSentError{Method: req.Method, Path: path}

	case KindLatency:
		sleep(ruleCopy.Latency)
		return i.deliver(req)

	case KindStall:
		resp, err := i.deliver(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &stalledBody{ReadCloser: resp.Body, delay: ruleCopy.Latency, sleep: sleep}
		return resp, nil

	case KindStatus:
		// The server consumed the request, then answered with an error
		// status: the body counts as delivered.
		i.consume(req)
		i.countDelivered(req)
		status := ruleCopy.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return syntheticResponse(req, status, "faultinject: injected status"), nil

	case KindResetAfterSend:
		resp, err := i.deliver(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: %s %s: connection reset after delivery", req.Method, path)

	case KindTruncateBody:
		resp, err := i.deliver(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		return resp, nil

	case KindMalformedJSON:
		resp, err := i.deliver(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		garbled := []byte(`{"decision": <<not json>>`)
		resp.Body = io.NopCloser(bytes.NewReader(garbled))
		resp.ContentLength = int64(len(garbled))
		resp.Header.Set("Content-Type", "application/json")
		return resp, nil

	default:
		return nil, fmt.Errorf("faultinject: unknown kind %q", ruleCopy.Kind)
	}
}

// deliver forwards the request upstream and counts the delivery.
func (i *Injector) deliver(req *http.Request) (*http.Response, error) {
	i.countDelivered(req)
	return i.next.RoundTrip(req)
}

func (i *Injector) countDelivered(req *http.Request) {
	i.mu.Lock()
	i.delivered[req.Method+" "+req.URL.Path]++
	i.mu.Unlock()
}

// consume reads and closes the request body (what a server would do before
// answering with an error status).
func (i *Injector) consume(req *http.Request) {
	if req.Body == nil {
		return
	}
	io.Copy(io.Discard, req.Body) //nolint:errcheck
	req.Body.Close()
}

// stalledBody delays the first Read by delay, then reads through. The
// delay applies once per response, not per read.
type stalledBody struct {
	io.ReadCloser
	delay time.Duration
	sleep func(time.Duration)
	once  sync.Once
}

func (s *stalledBody) Read(p []byte) (int, error) {
	s.once.Do(func() { s.sleep(s.delay) })
	return s.ReadCloser.Read(p)
}

func syntheticResponse(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
