package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"github.com/lsds/browserflow/internal/wal"
)

// ErrCrashed is returned by every filesystem operation after a simulated
// crash fires, until Crash() "reboots" the filesystem.
var ErrCrashed = errors.New("faultinject: simulated crash")

// MemFS is a deterministic in-memory filesystem with page-cache crash
// semantics, implementing wal.FS. It is the storage counterpart of the
// chaos RoundTripper:
//
//   - file contents are durable only up to the last Sync on the file;
//   - directory entries (creations, renames, removals) are durable only
//     after SyncDir on the parent directory;
//   - a crash can be scheduled at the Nth write or Nth fsync, optionally
//     applying a torn (partial) final write;
//   - Crash() simulates power loss + reboot: every file reverts to its
//     synced prefix plus a random prefix of the unsynced tail (the page
//     cache may have flushed some of it), optionally with a flipped bit in
//     the surviving unsynced region — exactly the corruption space a WAL
//     reader must tolerate.
//
// All randomness comes from the seed passed to NewMemFS, so failures are
// reproducible.
type MemFS struct {
	mu  sync.Mutex
	rng *rand.Rand

	files   map[string]*memFile // current (in-cache) directory view
	durable map[string]*memFile // directory view as of the last SyncDir
	dirs    map[string]bool

	writeOps     int
	syncOps      int
	crashAtWrite int // fire when writeOps reaches this value; 0 = disabled
	crashAtSync  int
	crashed      bool
	tornWrites   bool
	flipBitProb  float64

	// Disk-fault injection (distinct from crashes: the process survives,
	// the medium misbehaves). All injected errors wrap real syscall
	// errnos so errors.Is-based classification sees exactly what it
	// would on a real disk.
	eioBudget int64 // bytes still writable before EIO; -1 = disabled
	eioActive bool  // sticky: Write/Sync fail until ClearWriteError
	capacity  int64 // total byte budget across files; 0 = unlimited
	used      int64 // bytes currently held by files
	readOnly  bool  // mutating ops fail with EROFS
}

type memFile struct {
	data   []byte
	synced int // durable prefix length
}

// NewMemFS returns an empty MemFS with a deterministic random source.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{
		rng:       rand.New(rand.NewSource(seed)),
		files:     make(map[string]*memFile),
		durable:   make(map[string]*memFile),
		dirs:      make(map[string]bool),
		eioBudget: -1,
	}
}

// FailWritesAfter arms an I/O-error injection: the next n bytes write
// normally, then every Write and Sync fails with an error wrapping
// syscall.EIO until ClearWriteError. n = 0 kills the very next write —
// a disk that died mid-flight. Negative disarms.
func (m *MemFS) FailWritesAfter(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		m.eioBudget = -1
		m.eioActive = false
		return
	}
	m.eioBudget = n
	m.eioActive = false
}

// ClearWriteError heals a fired (or armed) EIO injection — the medium
// works again, as after a controller reset or cable reseat.
func (m *MemFS) ClearWriteError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.eioBudget = -1
	m.eioActive = false
}

// WriteErrorActive reports whether the EIO injection has fired and is
// still failing writes.
func (m *MemFS) WriteErrorActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eioActive
}

// SetCapacity bounds the total bytes held across all files; writes that
// would exceed it fail with an error wrapping syscall.ENOSPC. Remove and
// Truncate free space, so pruning old checkpoints/segments genuinely
// recovers the disk. Zero removes the bound.
func (m *MemFS) SetCapacity(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.capacity = n
}

// Used returns the bytes currently held across all files.
func (m *MemFS) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// SetReadOnly makes every mutating operation (writes, creates, renames,
// removals, truncations) fail with an error wrapping syscall.EROFS —
// the kernel having remounted the filesystem read-only after an error.
func (m *MemFS) SetReadOnly(v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readOnly = v
}

// injectErr builds the PathError for an injected fault; the wrapped
// errno survives errors.Is through the WAL's append/fsync wrapping.
func injectErr(op, path string, errno error) error {
	return &os.PathError{Op: op, Path: path, Err: errno}
}

// CrashAfterWrites schedules a crash to fire on the n-th Write from now
// (n >= 1). Zero cancels the schedule.
func (m *MemFS) CrashAfterWrites(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		m.crashAtWrite = 0
		return
	}
	m.crashAtWrite = m.writeOps + n
}

// CrashAfterSyncs schedules a crash to fire on the n-th Sync from now.
func (m *MemFS) CrashAfterSyncs(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		m.crashAtSync = 0
		return
	}
	m.crashAtSync = m.syncOps + n
}

// SetTornWrites makes the crashing write apply a random partial prefix
// instead of nothing (a torn sector write).
func (m *MemFS) SetTornWrites(v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tornWrites = v
}

// SetBitFlipProb sets the probability that Crash flips one bit in the
// surviving unsynced region of each file (media scribbling garbage during
// power loss).
func (m *MemFS) SetBitFlipProb(p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flipBitProb = p
}

// Crashed reports whether a scheduled crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// WriteOps returns the number of Write calls seen so far.
func (m *MemFS) WriteOps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeOps
}

// Crash simulates power loss followed by reboot:
//
//   - the directory reverts to the last SyncDir view (unsynced creations
//     disappear, unsynced renames roll back, unsynced removals reappear);
//   - each surviving file keeps its synced prefix plus a random prefix of
//     the unsynced tail, possibly with one flipped bit in that tail;
//   - pending crash schedules are cleared and operations work again.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	files := make(map[string]*memFile, len(m.durable))
	for name, f := range m.durable {
		keep := f.synced
		if extra := len(f.data) - f.synced; extra > 0 {
			keep += m.rng.Intn(extra + 1)
		}
		data := append([]byte(nil), f.data[:keep]...)
		if keep > f.synced && m.flipBitProb > 0 && m.rng.Float64() < m.flipBitProb {
			i := f.synced + m.rng.Intn(keep-f.synced)
			data[i] ^= 1 << uint(m.rng.Intn(8))
		}
		nf := &memFile{data: data, synced: min(f.synced, len(data))}
		files[name] = nf
	}
	m.files = files
	// The post-reboot durable view is exactly what survived.
	m.durable = make(map[string]*memFile, len(files))
	m.used = 0
	for name, f := range files {
		m.durable[name] = f
		m.used += int64(len(f.data))
	}
	m.crashed = false
	m.crashAtWrite = 0
	m.crashAtSync = 0
}

// FlipByte XORs mask into the byte at offset of name — deliberate at-rest
// corruption for mid-log corruption tests. It bypasses crash scheduling.
func (m *MemFS) FlipByte(name string, offset int64, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return &os.PathError{Op: "flip", Path: name, Err: os.ErrNotExist}
	}
	if offset < 0 || offset >= int64(len(f.data)) {
		return fmt.Errorf("faultinject: flip offset %d out of range [0,%d)", offset, len(f.data))
	}
	f.data[offset] ^= mask
	return nil
}

// Size returns the current length of name.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return 0, &os.PathError{Op: "size", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// --- wal.FS implementation -------------------------------------------------

type memHandle struct {
	fs     *MemFS
	name   string
	file   *memFile
	closed bool
}

var _ wal.FS = (*MemFS)(nil)

// OpenFile implements wal.FS. Handles write sequentially from the current
// end of file (the only access pattern the durability layer uses);
// O_TRUNC resets the file.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (wal.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	name = filepath.Clean(name)
	if m.readOnly {
		return nil, injectErr("open", name, syscall.EROFS)
	}
	f, ok := m.files[name]
	switch {
	case ok && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case !ok && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !ok:
		f = &memFile{}
		m.files[name] = f
	case flag&os.O_TRUNC != 0:
		m.used -= int64(len(f.data))
		f.data = nil
		f.synced = 0
	}
	return &memHandle{fs: m, name: name, file: f}, nil
}

// Write appends p, honouring the crash schedule: the crashing write
// applies nothing (or a torn prefix) and fails with ErrCrashed.
func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	m.writeOps++
	if m.crashAtWrite > 0 && m.writeOps >= m.crashAtWrite {
		m.crashed = true
		n := 0
		if m.tornWrites && len(p) > 0 {
			n = m.rng.Intn(len(p)) // strictly partial
			h.file.data = append(h.file.data, p[:n]...)
			m.used += int64(n)
		}
		return n, ErrCrashed
	}
	if m.readOnly {
		return 0, injectErr("write", h.name, syscall.EROFS)
	}
	if m.eioActive {
		return 0, injectErr("write", h.name, syscall.EIO)
	}
	if m.eioBudget >= 0 {
		if int64(len(p)) > m.eioBudget {
			// The disk dies mid-write: a strictly partial prefix lands.
			n := int(m.eioBudget)
			h.file.data = append(h.file.data, p[:n]...)
			m.used += int64(n)
			m.eioBudget = 0
			m.eioActive = true
			return n, injectErr("write", h.name, syscall.EIO)
		}
		m.eioBudget -= int64(len(p))
	}
	if m.capacity > 0 && m.used+int64(len(p)) > m.capacity {
		return 0, injectErr("write", h.name, syscall.ENOSPC)
	}
	h.file.data = append(h.file.data, p...)
	m.used += int64(len(p))
	return len(p), nil
}

// Sync marks the file's current length durable.
func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if h.closed {
		return os.ErrClosed
	}
	m.syncOps++
	if m.crashAtSync > 0 && m.syncOps >= m.crashAtSync {
		m.crashed = true
		return ErrCrashed
	}
	if m.eioActive {
		return injectErr("fsync", h.name, syscall.EIO)
	}
	h.file.synced = len(h.file.data)
	return nil
}

// Close implements io.Closer (closing flushes nothing — that is Sync's
// job, exactly as with real files).
func (h *memHandle) Close() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

// ReadFile implements wal.FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements wal.FS. The new directory entry is durable only after
// SyncDir — until then a crash rolls the rename back.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	if m.readOnly {
		return injectErr("rename", oldname, syscall.EROFS)
	}
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements wal.FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	name = filepath.Clean(name)
	if m.readOnly {
		return injectErr("remove", name, syscall.EROFS)
	}
	f, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	m.used -= int64(len(f.data))
	delete(m.files, name)
	return nil
}

// Truncate implements wal.FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.readOnly {
		return injectErr("truncate", name, syscall.EROFS)
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("faultinject: truncate size %d out of range [0,%d]", size, len(f.data))
	}
	m.used -= int64(len(f.data)) - size
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// ReadDirNames implements wal.FS: names of entries directly under dir.
func (m *MemFS) ReadDirNames(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir = filepath.Clean(dir)
	seen := map[string]bool{}
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			base := filepath.Base(name)
			if !seen[base] {
				seen[base] = true
				names = append(names, base)
			}
		}
	}
	for d := range m.dirs {
		if filepath.Dir(d) == dir && d != dir {
			base := filepath.Base(d)
			if !seen[base] {
				seen[base] = true
				names = append(names, base)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements wal.FS. Directories themselves are always durable
// (the interesting crash surface is files and entries).
func (m *MemFS) MkdirAll(dir string, _ os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	dir = filepath.Clean(dir)
	if m.readOnly {
		return injectErr("mkdir", dir, syscall.EROFS)
	}
	for dir != "/" && dir != "." && dir != "" {
		m.dirs[dir] = true
		dir = filepath.Dir(dir)
	}
	return nil
}

// SyncDir implements wal.FS: directory entries under dir (creations,
// renames, removals) become durable.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	dir = filepath.Clean(dir)
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			if _, ok := m.files[name]; !ok {
				delete(m.durable, name) // removal became durable
			}
		}
	}
	for name, f := range m.files {
		if filepath.Dir(name) == dir {
			m.durable[name] = f
		}
	}
	return nil
}
