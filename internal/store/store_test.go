package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

const secretText = "The confidential migration plan moves every internal workload to the new data centre by March."

func buildState(t testing.TB) (*disclosure.Tracker, *tdm.Registry) {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		t.Fatal(err)
	}
	if err := registry.RegisterService("docs", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.ObserveSegment("wiki/plan#p0", "wiki"); err != nil {
		t.Fatal(err)
	}
	if _, err := tracker.ObserveParagraph("wiki/plan#p0", secretText); err != nil {
		t.Fatal(err)
	}
	if _, err := tracker.ObserveDocument("wiki/plan", secretText); err != nil {
		t.Fatal(err)
	}
	if err := registry.SuppressTag("alice", "wiki/plan#p0", "tw", "board approval"); err != nil {
		t.Fatal(err)
	}
	return tracker, registry
}

func freshState(t *testing.T) (*disclosure.Tracker, *tdm.Registry) {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tracker, tdm.NewRegistry(audit.NewLog())
}

// verifyRestored checks the restored state behaves like the original:
// disclosure detection works and labels/audit survive.
func verifyRestored(t *testing.T, tracker *disclosure.Tracker, registry *tdm.Registry) {
	t.Helper()
	report, err := tracker.ObserveParagraph("docs/new#p0", secretText)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() || report.Sources[0].Seg != "wiki/plan#p0" {
		t.Errorf("restored tracker missed disclosure: %+v", report)
	}
	label := registry.Label("wiki/plan#p0")
	if label == nil || !label.Explicit().Has("tw") || !label.Suppressed().Has("tw") {
		t.Errorf("restored label wrong: %v", label)
	}
	if got := registry.Audit().Len(); got != 1 {
		t.Errorf("restored audit entries=%d, want 1", got)
	}
}

func TestSnapshotRoundTripPlaintext(t *testing.T) {
	tracker, registry := buildState(t)
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Save(path, Capture(tracker, registry), nil); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracker2, registry2 := freshState(t)
	if err := s.Restore(tracker2, registry2); err != nil {
		t.Fatal(err)
	}
	verifyRestored(t, tracker2, registry2)
}

func TestSnapshotRoundTripEncrypted(t *testing.T) {
	tracker, registry := buildState(t)
	key := DeriveKey("hunter2")
	path := filepath.Join(t.TempDir(), "state.enc")
	if err := Save(path, Capture(tracker, registry), key); err != nil {
		t.Fatal(err)
	}
	// Fingerprint data must not be readable on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:8]) != "BFLOWENC" {
		t.Error("encrypted file missing magic prefix")
	}
	if containsSub(raw, []byte("wiki/plan")) {
		t.Error("plaintext segment ID visible in encrypted file")
	}
	s, err := Load(path, key)
	if err != nil {
		t.Fatal(err)
	}
	tracker2, registry2 := freshState(t)
	if err := s.Restore(tracker2, registry2); err != nil {
		t.Fatal(err)
	}
	verifyRestored(t, tracker2, registry2)
}

func TestLoadWrongKey(t *testing.T) {
	tracker, registry := buildState(t)
	path := filepath.Join(t.TempDir(), "state.enc")
	if err := Save(path, Capture(tracker, registry), DeriveKey("right")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, DeriveKey("wrong")); !errors.Is(err, ErrBadKey) {
		t.Errorf("wrong key: err=%v, want ErrBadKey", err)
	}
	if _, err := Load(path, nil); !errors.Is(err, ErrBadKey) {
		t.Errorf("nil key on encrypted file: err=%v, want ErrBadKey", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope"), nil); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt")
	if err := os.WriteFile(path, []byte("{truncated"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, nil); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestRestoreVersionCheck(t *testing.T) {
	tracker, registry := freshState(t)
	s := Snapshot{Version: 99}
	if err := s.Restore(tracker, registry); err == nil {
		t.Error("unsupported version accepted")
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	a, b := DeriveKey("pass"), DeriveKey("pass")
	if string(a) != string(b) {
		t.Error("DeriveKey not deterministic")
	}
	if string(a) == string(DeriveKey("other")) {
		t.Error("different passphrases produced same key")
	}
	if len(a) != 32 {
		t.Errorf("key length=%d, want 32", len(a))
	}
}

func TestSaveErrors(t *testing.T) {
	tracker, registry := freshState(t)
	snapshot := Capture(tracker, registry)
	// Unwritable directory.
	if err := Save("/nonexistent-dir/state.bf", snapshot, nil); err == nil {
		t.Error("unwritable path accepted")
	}
	// Bad key length fails at seal time.
	if err := Save(filepath.Join(t.TempDir(), "s.bf"), snapshot, []byte("short")); err == nil {
		t.Error("bad key length accepted")
	}
}

func TestLoadTruncatedEncrypted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc")
	if err := os.WriteFile(path, []byte("BFLOWENC"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, DeriveKey("k")); !errors.Is(err, ErrBadKey) {
		t.Errorf("truncated ciphertext: err=%v, want ErrBadKey", err)
	}
}

func TestJanitorSweep(t *testing.T) {
	tracker, _ := buildState(t)
	// Add more observations so the earliest fall out of retention.
	for i := 0; i < 10; i++ {
		text := secretText + string(rune('a'+i))
		if _, err := tracker.ObserveParagraph(segment.ID(fmt.Sprintf("wiki/gen#p%d", i)), text); err != nil {
			t.Fatal(err)
		}
	}
	j := NewJanitor(tracker, time.Hour, 2)
	defer j.Shutdown()
	removed := j.Sweep()
	if removed == 0 {
		t.Error("sweep removed nothing despite retention window of 2")
	}
	if got, runs := j.Stats(); got != removed || runs != 1 {
		t.Errorf("Stats=(%d,%d), want (%d,1)", got, runs, removed)
	}
	// Segments updated within retention survive.
	if _, ok := tracker.Paragraphs().Fingerprint("wiki/gen#p9"); !ok {
		t.Error("recent segment expired")
	}
}

func TestJanitorBackgroundRuns(t *testing.T) {
	tracker, _ := buildState(t)
	for i := 0; i < 5; i++ {
		if _, err := tracker.ObserveParagraph(segment.ID(fmt.Sprintf("wiki/bg#p%d", i)), secretText+string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	j := NewJanitor(tracker, 5*time.Millisecond, 1)
	defer j.Shutdown()
	deadline := time.After(2 * time.Second)
	for {
		if _, runs := j.Stats(); runs > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("janitor never ran")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestJanitorShutdownIdempotent(t *testing.T) {
	tracker, _ := freshState(t)
	j := NewJanitor(tracker, time.Hour, 1)
	j.Shutdown()
	j.Shutdown()
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
