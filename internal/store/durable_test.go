package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

var testEpoch = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func fixedClock() time.Time { return testEpoch }

// world is one complete engine stack with a deterministic audit clock.
type world struct {
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	engine   *policy.Engine
}

func newWorld(t testing.TB, clock func() time.Time) *world {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 3},
		Tpar:        0.3,
		Tdoc:        0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLogWithClock(clock))
	if err := registry.RegisterService("alpha", tdm.NewTagSet("ta"), tdm.NewTagSet("ta")); err != nil {
		t.Fatal(err)
	}
	if err := registry.RegisterService("bravo", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		t.Fatal(err)
	}
	return &world{tracker: tracker, registry: registry, engine: engine}
}

// export captures comparable state bytes: the full snapshot minus the
// wall-clock SavedAt stamp and the WAL epoch.
func export(t testing.TB, w *world) []byte {
	t.Helper()
	snap := Capture(w.tracker, w.registry)
	snap.SavedAt = time.Time{}
	snap.WALSeg = 0
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// testOp is one deterministic mutation applicable to any engine.
type testOp struct {
	name string
	run  func(e *policy.Engine) error
}

var opTexts = []string{
	"the quarterly revenue forecast was revised downwards on friday",
	"launch codes and rollout schedule for the atlas project",
	"meeting notes from the security review of the billing system",
	"customer escalation about data residency in the eu region",
	"draft press release for the upcoming browserflow launch",
	"performance numbers from the winnowing benchmark last night",
}

var opSegs = []segment.ID{"alpha/doc#p0", "alpha/doc#p1", "alpha/doc#p2", "alpha/notes#p0"}

// genOps derives a deterministic mutation stream from rng covering every
// journalled record type: singular/document/batched observations, tag
// suppression, custom tag allocation and labelling, privilege changes and
// decision overrides.
func genOps(rng *rand.Rand, n int) []testOp {
	svcFor := func(i int) string {
		if i%3 == 0 {
			return "bravo"
		}
		return "alpha"
	}
	ops := make([]testOp, 0, n)
	for len(ops) < n {
		switch k := rng.Intn(20); {
		case k < 8: // singular paragraph observation
			seg := opSegs[rng.Intn(len(opSegs))]
			svc := svcFor(rng.Intn(9))
			text := opTexts[rng.Intn(len(opTexts))]
			ops = append(ops, testOp{
				name: fmt.Sprintf("observe %s in %s", seg, svc),
				run: func(e *policy.Engine) error {
					_, err := e.ObserveEdit(seg, svc, text)
					return err
				},
			})
		case k < 10: // whole-document observation
			text := opTexts[rng.Intn(len(opTexts))] + " " + opTexts[rng.Intn(len(opTexts))]
			ops = append(ops, testOp{
				name: "observe document",
				run: func(e *policy.Engine) error {
					_, err := e.ObserveDocumentEdit("alpha/doc", "alpha", text)
					return err
				},
			})
		case k < 14: // batched flush
			count := 2 + rng.Intn(2)
			var segs []segment.ID
			var texts []string
			for i := 0; i < count; i++ {
				segs = append(segs, opSegs[rng.Intn(len(opSegs))])
				texts = append(texts, opTexts[rng.Intn(len(opTexts))])
			}
			ops = append(ops, testOp{
				name: "observe batch",
				run: func(e *policy.Engine) error {
					items := make([]disclosure.BatchObservation, len(segs))
					for i := range segs {
						fp, err := e.Tracker().Fingerprint(texts[i])
						if err != nil {
							return err
						}
						items[i] = disclosure.BatchObservation{
							Seg:         segs[i],
							FP:          fp,
							Granularity: segment.GranularityParagraph,
						}
					}
					_, err := e.ObserveBatchFP("alpha", items)
					return err
				},
			})
		case k < 15: // suppression (valid once the segment carries "ta")
			seg := opSegs[rng.Intn(len(opSegs))]
			ops = append(ops, testOp{
				name: fmt.Sprintf("suppress ta on %s", seg),
				run: func(e *policy.Engine) error {
					return e.Suppress("auditor", seg, "ta", "reviewed and cleared")
				},
			})
		case k < 16: // custom tag allocation (duplicate allocations error)
			tag := tdm.Tag(fmt.Sprintf("user:proj%d", rng.Intn(3)))
			ops = append(ops, testOp{
				name: "allocate " + string(tag),
				run:  func(e *policy.Engine) error { return e.AllocateTag("user", tag) },
			})
		case k < 17: // attach a custom tag
			tag := tdm.Tag(fmt.Sprintf("user:proj%d", rng.Intn(3)))
			seg := opSegs[rng.Intn(len(opSegs))]
			ops = append(ops, testOp{
				name: "tag segment",
				run:  func(e *policy.Engine) error { return e.AddTagToSegment("user", seg, tag) },
			})
		case k < 18: // privilege grant
			tag := tdm.Tag(fmt.Sprintf("user:proj%d", rng.Intn(3)))
			ops = append(ops, testOp{
				name: "grant",
				run:  func(e *policy.Engine) error { return e.GrantTag("user", "bravo", tag) },
			})
		case k < 19: // privilege revoke
			tag := tdm.Tag(fmt.Sprintf("user:proj%d", rng.Intn(3)))
			ops = append(ops, testOp{
				name: "revoke",
				run:  func(e *policy.Engine) error { return e.RevokeTag("user", "bravo", tag) },
			})
		default: // decision override (audit-only record)
			seg := opSegs[rng.Intn(len(opSegs))]
			ops = append(ops, testOp{
				name: "override",
				run: func(e *policy.Engine) error {
					e.Override("boss", seg, "bravo", "business need")
					return nil
				},
			})
		}
	}
	return ops
}

func openDurableForTest(t testing.TB, fs wal.FS, pol wal.SyncPolicy, w *world) *Durable {
	t.Helper()
	d, err := OpenDurable(DurableOptions{
		Dir:   "/data",
		FS:    fs,
		Fsync: pol,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d
}

// Clean shutdown: recovery must reproduce the exact state, loading the
// final checkpoint with nothing to replay.
func TestDurableCleanShutdownRoundTrip(t *testing.T) {
	fs := faultinject.NewMemFS(1)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)

	rng := rand.New(rand.NewSource(7))
	for _, op := range genOps(rng, 30) {
		_ = op.run(w.engine) // validation errors are part of the stream
	}
	want := export(t, w)
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("state after clean shutdown + recovery differs from original")
	}
	rec := d2.Stats().Recovery
	if rec.CheckpointLoaded == "" {
		t.Error("clean shutdown left no checkpoint")
	}
	if rec.RecordsReplayed != 0 {
		t.Errorf("replayed %d records after clean shutdown, want 0", rec.RecordsReplayed)
	}
}

// Crash without any checkpoint: everything comes back from the WAL alone.
func TestDurableWALOnlyRecovery(t *testing.T) {
	fs := faultinject.NewMemFS(2)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)

	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.engine.Suppress("auditor", "alpha/doc#p0", "ta", "ok"); err != nil {
		t.Fatal(err)
	}
	want := export(t, w)
	fs.Crash() // no Close: kill -9

	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("WAL-only recovery lost state")
	}
	rec := d2.Stats().Recovery
	if rec.CheckpointLoaded != "" {
		t.Errorf("unexpected checkpoint %q", rec.CheckpointLoaded)
	}
	if rec.RecordsReplayed == 0 {
		t.Error("no records replayed")
	}
}

// Checkpoints truncate the WAL behind them and recovery replays only the
// suffix.
func TestCheckpointTruncatesAndReplaysSuffix(t *testing.T) {
	fs := faultinject.NewMemFS(3)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)

	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	barrier := d.Stats().LastCheckpointSeg
	segs, err := wal.ListSegments(fs, "/data")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s < barrier {
			t.Errorf("segment %d survived checkpoint truncation (barrier %d)", s, barrier)
		}
	}

	if _, err := w.engine.ObserveEdit("alpha/doc#p1", "alpha", opTexts[1]); err != nil {
		t.Fatal(err)
	}
	want := export(t, w)
	fs.Crash()

	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("checkpoint + suffix recovery lost state")
	}
	rec := d2.Stats().Recovery
	if rec.CheckpointLoaded == "" {
		t.Error("checkpoint not loaded")
	}
	// Exactly the post-checkpoint records (1 observe) replay.
	if rec.RecordsReplayed != 1 {
		t.Errorf("replayed %d records, want 1", rec.RecordsReplayed)
	}
}

// A corrupt newest checkpoint falls back to the previous one.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	fs := faultinject.NewMemFS(4)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)

	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint over the identical state, then corrupt it.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := export(t, w)
	newest := checkpointName(d.Stats().LastCheckpointSeg)
	if err := fs.FlipByte(filepath.Join("/data", newest), 40, 0x01); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	rec := d2.Stats().Recovery
	if rec.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", rec.CorruptCheckpoints)
	}
	if rec.CheckpointLoaded == "" || rec.CheckpointLoaded == newest {
		t.Errorf("loaded %q, want the older checkpoint", rec.CheckpointLoaded)
	}
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("fallback recovery lost state")
	}
}

// Encrypted checkpoints round-trip with the right key.
func TestEncryptedCheckpointRoundTrip(t *testing.T) {
	fs := faultinject.NewMemFS(5)
	key := DeriveKey("hunter2")
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{Dir: "/data", FS: fs, Key: key}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	w.engine.SetJournal(d)
	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	want := export(t, w)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := newWorld(t, fixedClock)
	d2, err := OpenDurable(DurableOptions{Dir: "/data", FS: fs, Key: key}, w2.tracker, w2.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Stats().Recovery.CheckpointLoaded == "" {
		t.Fatal("no checkpoint loaded")
	}
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("encrypted checkpoint recovery lost state")
	}
}

// Audit timestamps survive replay: regenerated entries are amended back to
// their journalled originals even though the recovering process has a
// different clock.
func TestAuditTimestampsRestoredFromWAL(t *testing.T) {
	var tick int64
	tickingClock := func() time.Time {
		tick++
		return testEpoch.Add(time.Duration(tick) * time.Second)
	}
	fs := faultinject.NewMemFS(6)
	w := newWorld(t, tickingClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)

	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.engine.Suppress("auditor", "alpha/doc#p0", "ta", "cleared"); err != nil {
		t.Fatal(err)
	}
	if err := w.engine.AllocateTag("user", "user:projx"); err != nil {
		t.Fatal(err)
	}
	w.engine.Override("boss", "alpha/doc#p0", "bravo", "deadline")
	want := w.registry.Audit().Entries()
	if len(want) < 3 {
		t.Fatalf("expected >=3 audit entries, have %d", len(want))
	}
	fs.Crash()

	// The recovering process starts its clock much later: without the
	// amend pass every entry would be restamped.
	lateClock := func() time.Time {
		tick++
		return testEpoch.Add(24*time.Hour + time.Duration(tick)*time.Second)
	}
	w2 := newWorld(t, lateClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	got := w2.registry.Audit().Entries()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("audit trail after recovery:\n got %+v\nwant %+v", got, want)
	}
	if d2.Stats().Recovery.AuditRestored == 0 {
		t.Error("no audit timestamps restored")
	}
}

// A journal append failure surfaces as policy.ErrJournal so handlers can
// refuse to acknowledge the request.
func TestJournalFailureSurfaces(t *testing.T) {
	fs := faultinject.NewMemFS(7)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)

	fs.CrashAfterWrites(1)
	_, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0])
	if !errors.Is(err, policy.ErrJournal) {
		t.Errorf("observe during journal failure = %v, want ErrJournal", err)
	}
}

// runCrashScenario drives a random mutation stream into a durable engine,
// crashes at a random write, recovers, and checks the recovered state is
// byte-identical to a reference prefix of the acknowledged operations —
// with fsync=always demanding that NO acknowledged operation is lost.
func runCrashScenario(t *testing.T, seed int64, pol wal.SyncPolicy, withCheckpoints bool) {
	fs := faultinject.NewMemFS(seed)
	fs.SetTornWrites(true)
	fs.SetBitFlipProb(0.3)
	rng := rand.New(rand.NewSource(seed))
	ops := genOps(rng, 35)

	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir:          "/data",
		FS:           fs,
		Fsync:        pol,
		SegmentBytes: 2048, // small segments so streams span several
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatalf("seed %d: OpenDurable: %v", seed, err)
	}
	w.engine.SetJournal(d)

	fs.CrashAfterWrites(1 + rng.Intn(150))

	var acked []testOp
	var crashOp *testOp
	for i := range ops {
		op := ops[i]
		err := op.run(w.engine)
		if fs.Crashed() {
			crashOp = &op
			break
		}
		if err == nil {
			acked = append(acked, op)
		}
		if withCheckpoints && rng.Intn(6) == 0 {
			_ = d.Checkpoint()
			if fs.Crashed() {
				break
			}
		}
	}
	fs.Crash() // power loss + reboot (no-op on schedules if already fired)

	w2 := newWorld(t, fixedClock)
	d2, err := OpenDurable(DurableOptions{Dir: "/data", FS: fs, Fsync: pol}, w2.tracker, w2.registry)
	if err != nil {
		t.Fatalf("seed %d (%v, ckpt=%v): recovery failed: %v", seed, pol, withCheckpoints, err)
	}
	defer d2.Close()
	got := export(t, w2)

	// Reference: acknowledged prefix states, plus (optionally) the
	// operation that was in flight when the crash hit — its record may
	// have reached disk even though it was never acknowledged.
	ref := newWorld(t, fixedClock)
	candidates := [][]byte{export(t, ref)}
	for i, op := range acked {
		if err := op.run(ref.engine); err != nil {
			t.Fatalf("seed %d: acked op %d (%s) fails on reference: %v", seed, i, op.name, err)
		}
		candidates = append(candidates, export(t, ref))
	}
	if crashOp != nil {
		if err := crashOp.run(ref.engine); err == nil {
			candidates = append(candidates, export(t, ref))
		}
	}

	match := -1
	for i := len(candidates) - 1; i >= 0; i-- {
		if bytes.Equal(got, candidates[i]) {
			match = i
			break
		}
	}
	if match < 0 {
		t.Fatalf("seed %d (%v, ckpt=%v): recovered state matches no prefix of %d acked ops",
			seed, pol, withCheckpoints, len(acked))
	}
	if pol == wal.SyncAlways && match < len(acked) {
		t.Errorf("seed %d (ckpt=%v): fsync=always lost acked ops: recovered prefix %d < acked %d",
			seed, withCheckpoints, match, len(acked))
	}
}

// TestCrashRecoveryProperty is the crash/corruption-injection suite: torn
// writes, partial page-cache survival and bit flips across many seeds,
// with and without concurrent checkpoints.
func TestCrashRecoveryProperty(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncNone} {
		for _, withCkpt := range []bool{false, true} {
			name := fmt.Sprintf("fsync=%v/checkpoints=%v", pol, withCkpt)
			t.Run(name, func(t *testing.T) {
				for seed := int64(1); seed <= int64(seeds); seed++ {
					runCrashScenario(t, seed, pol, withCkpt)
				}
			})
		}
	}
}

// Replaying the same WAL twice cannot corrupt disclosure state: posted
// unions only grow, and re-observing identical content is a no-op for
// policy decisions (belt-and-braces on top of the epoch barrier).
func TestReplaySemanticIdempotence(t *testing.T) {
	fs := faultinject.NewMemFS(8)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)
	rng := rand.New(rand.NewSource(9))
	for _, op := range genOps(rng, 20) {
		_ = op.run(w.engine)
	}
	fs.Crash()

	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	statsBefore := w2.tracker.Paragraphs().Stats()
	labelBefore := w2.registry.Label("alpha/doc#p0")

	// Force a second replay of everything still in the log.
	if err := d2.replay(0); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	statsAfter := w2.tracker.Paragraphs().Stats()
	if statsAfter.Segments != statsBefore.Segments || statsAfter.DistinctHashes != statsBefore.DistinctHashes {
		t.Errorf("double replay changed index shape: %+v -> %+v", statsBefore, statsAfter)
	}
	labelAfter := w2.registry.Label("alpha/doc#p0")
	if (labelBefore == nil) != (labelAfter == nil) {
		t.Fatalf("double replay changed label existence")
	}
	if labelBefore != nil && !reflect.DeepEqual(labelBefore.Explicit().Sorted(), labelAfter.Explicit().Sorted()) {
		t.Errorf("double replay changed explicit label: %v -> %v",
			labelBefore.Explicit().Sorted(), labelAfter.Explicit().Sorted())
	}
}

func TestOpenDurableValidation(t *testing.T) {
	if _, err := OpenDurable(DurableOptions{}, nil, nil); err == nil {
		t.Error("empty Dir accepted")
	}
}

func TestCheckpointNameRoundTrip(t *testing.T) {
	for _, seg := range []uint64{0, 1, 42, 1 << 40} {
		name := checkpointName(seg)
		got, ok := parseCheckpointName(name)
		if !ok || got != seg {
			t.Errorf("parse(%q) = (%d, %v), want (%d, true)", name, got, ok, seg)
		}
	}
	for _, bad := range []string{"checkpoint-.bf", "wal-0000000000000001.log", "checkpoint-xyz.bf", "checkpoint-1.bf"} {
		if _, ok := parseCheckpointName(bad); ok {
			t.Errorf("parse(%q) accepted", bad)
		}
	}
}
