package store

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/wal"
)

// seedSealedSegments journals ops and rotates so sealed segments with
// real records exist for the scrubber to walk.
func seedSealedSegments(t *testing.T, d *Durable, w *world, rounds, opsPerRound int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for r := 0; r < rounds; r++ {
		for _, op := range genOps(rng, opsPerRound) {
			_ = op.run(w.engine)
		}
		if _, err := d.WAL().Rotate(); err != nil {
			t.Fatal(err)
		}
	}
}

// The acceptance chaos path: a sealed segment decays at rest, the
// scrubber quarantines it and force-checkpoints the live state, and a
// kill -9 right after loses nothing that was acked.
func TestScrubQuarantinesDecayedSegmentNoAckedLoss(t *testing.T) {
	fs := faultinject.NewMemFS(21)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)
	seedSealedSegments(t, d, w, 3, 8)
	want := export(t, w)

	sealed := d.WAL().SealedSegments()
	if len(sealed) < 2 {
		t.Fatalf("only %d sealed segments", len(sealed))
	}
	victim := sealed[0]
	if err := fs.FlipByte(filepath.Join("/data", wal.SegmentName(victim)), wal.HeaderSize+5, 0x20); err != nil {
		t.Fatal(err)
	}

	found, err := d.ScrubPass()
	if err != nil {
		t.Fatalf("scrub pass: %v", err)
	}
	if found != 1 {
		t.Fatalf("scrub found %d corruptions, want 1", found)
	}
	st := d.Stats()
	if st.Scrub.CorruptionsFound != 1 || st.Scrub.Quarantines != 1 {
		t.Fatalf("scrub stats = %+v, want 1 corruption + 1 quarantine", st.Scrub)
	}
	if st.Scrub.QuarantinedFiles != 1 {
		t.Fatalf("QuarantinedFiles = %d, want 1", st.Scrub.QuarantinedFiles)
	}
	if st.WAL.QuarantinedSegments != 1 {
		t.Fatalf("WAL.QuarantinedSegments = %d, want 1", st.WAL.QuarantinedSegments)
	}
	if !strings.Contains(st.Scrub.LastCorruption, wal.SegmentName(victim)) {
		t.Fatalf("LastCorruption %q does not name segment", st.Scrub.LastCorruption)
	}
	// A clean follow-up pass finds nothing and counts clean work.
	if found, err := d.ScrubPass(); err != nil || found != 0 {
		t.Fatalf("second pass found %d, err %v", found, err)
	}
	if st := d.Stats(); st.Scrub.Passes != 2 || st.Scrub.FramesVerified == 0 {
		t.Fatalf("after clean pass: %+v", st.Scrub)
	}

	// kill -9 right after the scrub: the forced checkpoint already holds
	// everything acked, quarantine included.
	fs.Crash()
	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("acked state lost across scrub-quarantine + crash")
	}
}

// A checkpoint image that decays at rest is quarantined and replaced.
func TestScrubQuarantinesDecayedCheckpoint(t *testing.T) {
	fs := faultinject.NewMemFS(22)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	defer d.Close()
	w.engine.SetJournal(d)

	rng := rand.New(rand.NewSource(12))
	for _, op := range genOps(rng, 10) {
		_ = op.run(w.engine)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	older := checkpointName(d.Stats().LastCheckpointSeg)
	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("/data", older)
	if _, err := VerifyCheckpointFile(fs, path, nil); err != nil {
		t.Fatalf("intact checkpoint failed verification: %v", err)
	}
	if err := fs.FlipByte(path, 64, 0x08); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCheckpointFile(fs, path, nil); err == nil {
		t.Fatal("decayed checkpoint verified clean")
	}

	found, err := d.ScrubPass()
	if err != nil {
		t.Fatalf("scrub pass: %v", err)
	}
	if found != 1 {
		t.Fatalf("found %d corruptions, want 1", found)
	}
	if got := wal.CountQuarantined(fs, "/data"); got != 1 {
		t.Fatalf("CountQuarantined = %d, want 1", got)
	}
	// The forced checkpoint replaced the lost spare: recovery still has
	// a clean image to load.
	if st := d.Stats(); st.Checkpoints < 3 {
		t.Fatalf("no replacement checkpoint taken (checkpoints=%d)", st.Checkpoints)
	}
}

// kill -9 in the window between quarantine and the healing checkpoint:
// the node must still restart (gap reported, not fatal) — the records in
// the decayed segment are the only loss, which DESIGN.md documents.
func TestKillDuringQuarantineWindowRestarts(t *testing.T) {
	fs := faultinject.NewMemFS(23)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)
	seedSealedSegments(t, d, w, 3, 6)

	sealed := d.WAL().SealedSegments()
	if err := d.WAL().Quarantine(sealed[1]); err != nil {
		t.Fatal(err)
	}
	fs.Crash() // power loss before the healing checkpoint ran

	w2 := newWorld(t, fixedClock)
	d2, err := OpenDurable(DurableOptions{Dir: "/data", FS: fs, Fsync: wal.SyncAlways}, w2.tracker, w2.registry)
	if err != nil {
		t.Fatalf("restart over quarantine gap refused: %v", err)
	}
	defer d2.Close()
	if gaps := d2.Stats().WAL.RecoveryGaps; gaps == 0 {
		t.Error("restart did not report the quarantine gap")
	}
}

// At-rest decay found at startup (not by the scrubber): recovery
// quarantines the segment itself and starts, instead of refusing.
func TestRecoveryQuarantinesMidLogDecay(t *testing.T) {
	fs := faultinject.NewMemFS(24)
	w := newWorld(t, fixedClock)
	d := openDurableForTest(t, fs, wal.SyncAlways, w)
	w.engine.SetJournal(d)
	seedSealedSegments(t, d, w, 3, 6)
	sealed := d.WAL().SealedSegments()
	fs.Crash() // stop the node first, then decay a sealed segment at rest

	if err := fs.FlipByte(filepath.Join("/data", wal.SegmentName(sealed[0])), wal.HeaderSize+7, 0x10); err != nil {
		t.Fatal(err)
	}
	w2 := newWorld(t, fixedClock)
	d2, err := OpenDurable(DurableOptions{Dir: "/data", FS: fs, Fsync: wal.SyncAlways}, w2.tracker, w2.registry)
	if err != nil {
		t.Fatalf("recovery refused to start over mid-log decay: %v", err)
	}
	defer d2.Close()
	st := d2.Stats()
	if st.WAL.QuarantinedSegments != 1 {
		t.Errorf("QuarantinedSegments = %d, want 1", st.WAL.QuarantinedSegments)
	}
	if st.WAL.RecoveryGaps == 0 {
		t.Error("recovery gap not reported")
	}
}

// Fail-closed: a dying disk turns appends into typed DegradedErrors; no
// record is acked that the journal cannot hold; healing the medium and
// probing resumes service with nothing acked lost.
func TestDiskFaultFailClosed(t *testing.T) {
	fs := faultinject.NewMemFS(25)
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir: "/data", FS: fs, Fsync: wal.SyncAlways,
		ProbeEvery: time.Hour, // manual ProbeRecover in this test
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Suppress("auditor", "alpha/doc#p0", "ta", "ok"); err != nil {
		t.Fatal(err)
	}
	fs.FailWritesAfter(0)

	err = d.Suppress("auditor", "alpha/doc#p1", "ta", "ok")
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("append on dead disk returned %v, want *DegradedError", err)
	}
	if de.Cause != "eio" || de.RetryAfter != time.Hour {
		t.Fatalf("DegradedError = %+v", de)
	}
	// Sustained EIO: every further append drains to the same error, no
	// retry storm against the medium.
	for i := 0; i < 5; i++ {
		if err := d.Suppress("auditor", "alpha/doc#p1", "ta", "ok"); !errors.As(err, &de) {
			t.Fatalf("sustained-EIO append %d returned %v", i, err)
		}
	}
	st := d.Stats()
	if !st.Disk.Degraded || st.Disk.Cause != "eio" || st.Disk.FailOpen {
		t.Fatalf("Disk = %+v", st.Disk)
	}
	if st.Disk.DroppedRecords != 0 {
		t.Fatalf("fail-closed dropped %d records", st.Disk.DroppedRecords)
	}

	// While the disk is down the probe fails and the node stays degraded.
	if ok, _ := d.ProbeRecover(); ok {
		t.Fatal("probe succeeded on a dead disk")
	}

	fs.ClearWriteError()
	ok, err := d.ProbeRecover()
	if !ok || err != nil {
		t.Fatalf("probe after heal: ok=%v err=%v", ok, err)
	}
	st = d.Stats()
	if st.Disk.Degraded || st.Disk.Recoveries != 1 {
		t.Fatalf("post-recovery Disk = %+v", st.Disk)
	}
	if err := d.Suppress("auditor", "alpha/doc#p2", "ta", "ok"); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// Fail-open: verdicts keep flowing while the disk is down — appends ack
// without journalling and are counted; recovery's forced checkpoint
// folds the dropped mutations back into durable state, so even a crash
// right after loses nothing.
func TestDiskFaultFailOpen(t *testing.T) {
	fs := faultinject.NewMemFS(26)
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir: "/data", FS: fs, Fsync: wal.SyncAlways,
		FailOpen:   true,
		ProbeEvery: time.Hour,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	w.engine.SetJournal(d)

	if _, err := w.engine.ObserveEdit("alpha/doc#p0", "alpha", opTexts[0]); err != nil {
		t.Fatal(err)
	}
	fs.FailWritesAfter(0)

	// The disk is dead but the node keeps serving and acking.
	if _, err := w.engine.ObserveEdit("alpha/doc#p1", "alpha", opTexts[1]); err != nil {
		t.Fatalf("fail-open observe errored: %v", err)
	}
	if err := w.engine.Suppress("auditor", "alpha/doc#p0", "ta", "ok"); err != nil {
		t.Fatalf("fail-open suppress errored: %v", err)
	}
	st := d.Stats()
	if !st.Disk.Degraded || !st.Disk.FailOpen {
		t.Fatalf("Disk = %+v", st.Disk)
	}
	if st.Disk.DroppedRecords == 0 {
		t.Fatal("no dropped records counted")
	}
	want := export(t, w)

	fs.ClearWriteError()
	if ok, err := d.ProbeRecover(); !ok || err != nil {
		t.Fatalf("probe after heal: ok=%v err=%v", ok, err)
	}
	// The journal gap is healed: crash now and everything — including the
	// never-journalled fail-open mutations — comes back.
	fs.Crash()
	w2 := newWorld(t, fixedClock)
	d2 := openDurableForTest(t, fs, wal.SyncAlways, w2)
	defer d2.Close()
	if got := export(t, w2); !bytes.Equal(got, want) {
		t.Error("fail-open window lost across recovery checkpoint + crash")
	}
}

// ENOSPC with the default prune policy: spare checkpoints and obsolete
// segments are freed and the append retried before the node degrades.
func TestENOSPCPruneSelfRecovery(t *testing.T) {
	fs := faultinject.NewMemFS(27)
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir: "/data", FS: fs, Fsync: wal.SyncAlways,
		ProbeEvery: time.Hour,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w.engine.SetJournal(d)

	rng := rand.New(rand.NewSource(13))
	for _, op := range genOps(rng, 10) {
		_ = op.run(w.engine)
	}
	// Two checkpoints leave a prunable spare.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Leave less headroom than one record frame: the next append hits
	// ENOSPC, frees the spare checkpoint (much larger than a frame) and
	// succeeds on retry.
	fs.SetCapacity(fs.Used() + 10)
	if err := d.Suppress("auditor", "alpha/doc#p0", "ta", "ok"); err != nil {
		t.Fatalf("append did not self-recover from ENOSPC: %v", err)
	}
	if st := d.Stats(); st.Disk.Degraded {
		t.Fatalf("node degraded despite successful prune: %+v", st.Disk)
	}
}

// ENOSPC with -on-disk-full=fail: no pruning, immediate degradation.
func TestENOSPCFailPolicy(t *testing.T) {
	fs := faultinject.NewMemFS(28)
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir: "/data", FS: fs, Fsync: wal.SyncAlways,
		OnDiskFull: OnDiskFullFail,
		ProbeEvery: time.Hour,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w.engine.SetJournal(d)

	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.SetCapacity(fs.Used() + 10)

	err = d.Suppress("auditor", "alpha/doc#p0", "ta", "ok")
	var de *DegradedError
	if !errors.As(err, &de) || de.Cause != "enospc" {
		t.Fatalf("append = %v, want DegradedError(enospc)", err)
	}
	// Freeing space heals it through the normal probe path.
	fs.SetCapacity(0)
	if ok, err := d.ProbeRecover(); !ok || err != nil {
		t.Fatalf("probe after space freed: ok=%v err=%v", ok, err)
	}
}

// A read-only remount degrades with cause erofs.
func TestReadOnlyRemountDegrades(t *testing.T) {
	fs := faultinject.NewMemFS(29)
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir: "/data", FS: fs, Fsync: wal.SyncAlways,
		ProbeEvery: time.Hour,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	fs.SetReadOnly(true)
	err = d.Suppress("auditor", "alpha/doc#p0", "ta", "ok")
	var de *DegradedError
	if !errors.As(err, &de) || de.Cause != "erofs" {
		t.Fatalf("append = %v, want DegradedError(erofs)", err)
	}
	fs.SetReadOnly(false)
	if ok, err := d.ProbeRecover(); !ok || err != nil {
		t.Fatalf("probe after remount rw: ok=%v err=%v", ok, err)
	}
}

// The background scrub loop runs on its cadence without manual passes.
func TestBackgroundScrubLoop(t *testing.T) {
	fs := faultinject.NewMemFS(30)
	w := newWorld(t, fixedClock)
	d, err := OpenDurable(DurableOptions{
		Dir: "/data", FS: fs, Fsync: wal.SyncAlways,
		ScrubEvery: 5 * time.Millisecond,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w.engine.SetJournal(d)
	seedSealedSegments(t, d, w, 2, 4)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.Stats().Scrub.Passes > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background scrubber never completed a pass")
}
