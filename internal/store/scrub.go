// scrub.go is the at-rest scrubber: a background loop that continuously
// re-verifies the CRC framing of everything durable — sealed WAL
// segments and checkpoint images — at a bounded I/O rate, so silent
// decay (bit rot, firmware lies, misdirected writes) is found while the
// node still holds a good copy of the state in memory, not at the next
// restart when that copy is gone.
//
// A decayed file is quarantined (renamed aside, never deleted) and a
// checkpoint is forced immediately: the live in-memory state — which
// still includes every record the quarantined file held — is captured
// behind a fresh WAL barrier, so the quarantine gap is durably healed
// within one checkpoint write. Only a crash inside that small window can
// cost acked writes, and only those in the decayed file itself.
package store

import (
	"fmt"
	"path/filepath"
	"time"

	"github.com/lsds/browserflow/internal/wal"
)

// ScrubStats is the scrubber summary exported in DurabilityStats.
type ScrubStats struct {
	// Passes counts completed scrub passes over the whole directory.
	Passes int64 `json:"passes"`
	// LastPassAt is when the most recent pass finished.
	LastPassAt time.Time `json:"last_pass_at"`
	// LastPassDuration is how long that pass took (rate-limit sleeps
	// included).
	LastPassDuration time.Duration `json:"last_pass_duration"`
	// SegmentsVerified / FramesVerified / BytesVerified count clean
	// verification work across all passes.
	SegmentsVerified int64 `json:"segments_verified"`
	FramesVerified   int64 `json:"frames_verified"`
	BytesVerified    int64 `json:"bytes_verified"`
	// CheckpointsVerified counts checkpoint images verified clean.
	CheckpointsVerified int64 `json:"checkpoints_verified"`
	// CorruptionsFound counts files that failed re-verification.
	CorruptionsFound int64 `json:"corruptions_found"`
	// Quarantines counts files renamed aside (segments + checkpoints).
	Quarantines int64 `json:"quarantines"`
	// LastCorruption describes the most recent finding (path + offset).
	LastCorruption string `json:"last_corruption,omitempty"`
	// QuarantinedFiles is the point-in-time count of *.quarantine files
	// in the durable directory (filled in by Stats).
	QuarantinedFiles int `json:"quarantined_files"`
}

// VerifyCheckpointFile re-validates a checkpoint image at rest: unseal
// (when keyed), then full container framing — section table CRC and
// every per-section CRC for BFLOWSNB images, a complete decode for
// legacy formats. Errors carry the byte offset of the first bad byte
// where the format records one. bytes is the file size read.
func VerifyCheckpointFile(fs wal.FS, path string, key []byte) (bytes int64, err error) {
	if fs == nil {
		fs = wal.OSFS{}
	}
	data, release, _, err := wal.MapFile(fs, path)
	if err != nil {
		return 0, fmt.Errorf("store: verify read %s: %w", path, err)
	}
	defer release() //nolint:errcheck
	bytes = int64(len(data))
	plain, err := unsealSnapshot(data, key)
	if err != nil {
		return bytes, &CorruptSnapshotError{Path: path, Offset: 0, Reason: err.Error()}
	}
	if IsBinarySnapshot(plain) {
		_, err := parseBinary(path, plain)
		return bytes, err
	}
	_, err = decodeSnapshot(path, data, key)
	return bytes, err
}

// scrubLimiter paces scrub reads to a byte budget per second. Debt is
// accumulated and paid in one sleep once it is long enough to matter, so
// small segments do not turn into thousands of micro-sleeps.
type scrubLimiter struct {
	bytesPerSec float64
	debt        float64 // seconds owed
}

func newScrubLimiter(rateMB int) *scrubLimiter {
	if rateMB <= 0 {
		return &scrubLimiter{}
	}
	return &scrubLimiter{bytesPerSec: float64(rateMB) * (1 << 20)}
}

func (l *scrubLimiter) pay(n int64) {
	if l.bytesPerSec <= 0 || n <= 0 {
		return
	}
	l.debt += float64(n) / l.bytesPerSec
	if l.debt >= 0.001 {
		time.Sleep(time.Duration(l.debt * float64(time.Second)))
		l.debt = 0
	}
}

// scrubLoop runs ScrubPass every ScrubEvery until Close.
func (d *Durable) scrubLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.opts.ScrubEvery)
	defer ticker.Stop()
	for {
		select {
		case <-d.quiesce:
			return
		case <-ticker.C:
			if _, err := d.ScrubPass(); err != nil {
				d.opts.Logf("store: scrub pass: %v", err)
			}
		}
	}
}

// ScrubPass walks every sealed WAL segment and every checkpoint image
// once, verifying all CRC framing at the configured rate bound. Decayed
// files are quarantined and the state re-checkpointed immediately. It
// returns the number of corruptions found this pass. The background
// scrubber calls it on its cadence; tests and tools may call it
// directly.
func (d *Durable) ScrubPass() (corruptions int, err error) {
	start := time.Now()
	limiter := newScrubLimiter(d.opts.ScrubRateMB)
	var firstErr error
	needCheckpoint := false

	// Sealed segments. The list is re-fetched from the live log, so
	// segments truncated or rotated mid-pass are simply not visited.
	for _, idx := range d.log.SealedSegments() {
		recs, bytes, verr := wal.VerifySegmentFile(d.fs, d.opts.Dir, idx, d.log.MaxRecordBytes())
		limiter.pay(bytes)
		if verr == nil {
			d.mu.Lock()
			d.scrub.SegmentsVerified++
			d.scrub.FramesVerified += int64(recs)
			d.scrub.BytesVerified += bytes
			d.mu.Unlock()
			continue
		}
		corruptions++
		d.noteCorruption(verr)
		if qerr := d.log.Quarantine(idx); qerr != nil {
			d.opts.Logf("store: quarantine segment %d: %v", idx, qerr)
			if firstErr == nil {
				firstErr = qerr
			}
			continue
		}
		d.mu.Lock()
		d.scrub.Quarantines++
		d.mu.Unlock()
		d.opts.Logf("store: scrub quarantined segment %d: %v", idx, verr)
		needCheckpoint = true
	}

	// Checkpoint images.
	names, derr := d.fs.ReadDirNames(d.opts.Dir)
	if derr != nil {
		return corruptions, derr
	}
	for _, name := range names {
		if _, ok := parseCheckpointName(name); !ok {
			continue
		}
		path := filepath.Join(d.opts.Dir, name)
		sz, verr := VerifyCheckpointFile(d.fs, path, d.opts.Key)
		limiter.pay(sz)
		if verr == nil {
			d.mu.Lock()
			d.scrub.CheckpointsVerified++
			d.mu.Unlock()
			continue
		}
		corruptions++
		d.noteCorruption(verr)
		if qerr := wal.QuarantineFile(d.fs, d.opts.Dir, name); qerr != nil {
			d.opts.Logf("store: quarantine checkpoint %s: %v", name, qerr)
			if firstErr == nil {
				firstErr = qerr
			}
			continue
		}
		d.mu.Lock()
		d.scrub.Quarantines++
		d.mu.Unlock()
		d.opts.Logf("store: scrub quarantined checkpoint %s: %v", name, verr)
		needCheckpoint = true
	}

	// Re-capture the live state the moment anything was pulled out of
	// the recovery path, closing the durability gap the quarantine
	// opened.
	if needCheckpoint {
		if cerr := d.Checkpoint(); cerr != nil {
			d.opts.Logf("store: checkpoint after quarantine: %v", cerr)
			if firstErr == nil {
				firstErr = cerr
			}
		}
	}

	d.mu.Lock()
	d.scrub.Passes++
	d.scrub.LastPassAt = time.Now()
	d.scrub.LastPassDuration = time.Since(start)
	d.mu.Unlock()
	return corruptions, firstErr
}

// noteCorruption records a scrub finding in the stats.
func (d *Durable) noteCorruption(err error) {
	d.mu.Lock()
	d.scrub.CorruptionsFound++
	d.scrub.LastCorruption = err.Error()
	d.mu.Unlock()
}
