package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/wal"
)

// TestCaptureRestoreBytes pins the checkpointer fast path: live state →
// binary image → bulk restore, without a Snapshot struct in between.
func TestCaptureRestoreBytes(t *testing.T) {
	tracker, registry := buildState(t)
	blob, err := CaptureBytes(tracker, registry, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinarySnapshot(blob) {
		t.Fatal("CaptureBytes did not produce a BFLOWSNB image")
	}
	tracker2, registry2 := freshState(t)
	meta, err := RestoreBytes("mem.bf", blob, tracker2, registry2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.WALSeg != 9 {
		t.Fatalf("WALSeg = %d, want 9", meta.WALSeg)
	}
	if meta.SavedAt.IsZero() {
		t.Fatal("SavedAt not restored")
	}
	verifyRestored(t, tracker2, registry2)
}

// TestSaveWritesBinaryFormat pins that the struct-level Save path now
// emits the sectioned binary container, and that the resulting file still
// loads through the generic Load.
func TestSaveWritesBinaryFormat(t *testing.T) {
	tracker, registry := buildState(t)
	path := filepath.Join(t.TempDir(), "state.bf")
	if err := Save(path, Capture(tracker, registry), nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinarySnapshot(raw) {
		t.Fatalf("saved file starts with %q, want BFLOWSNB", raw[:8])
	}
	s, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracker2, registry2 := freshState(t)
	if err := s.Restore(tracker2, registry2); err != nil {
		t.Fatal(err)
	}
	verifyRestored(t, tracker2, registry2)
}

// TestRecoverLegacyJSONCheckpoint pins backward compatibility: a
// checkpoint written in the old BFLOWSNP framed-JSON format (and an even
// older bare-JSON one) still restores through the recovery scan.
func TestRecoverLegacyJSONCheckpoint(t *testing.T) {
	for _, framed := range []bool{true, false} {
		tracker, registry := buildState(t)
		snap := Capture(tracker, registry)
		snap.WALSeg = 3
		payload, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		if framed {
			payload = framePlain(payload)
		}
		fs := faultinject.NewMemFS(1)
		dir := "durable"
		if err := fs.MkdirAll(dir, 0o700); err != nil {
			t.Fatal(err)
		}
		if err := saveBlobFS(fs, filepath.Join(dir, CheckpointName(3)), payload); err != nil {
			t.Fatal(err)
		}
		tracker2, registry2 := freshState(t)
		barrier, name, corrupt, err := RecoverNewestCheckpoint(fs, dir, nil, tracker2, registry2, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		if barrier != 3 || name != CheckpointName(3) || corrupt != 0 {
			t.Fatalf("framed=%v: recovered (%d, %s, %d), want (3, %s, 0)", framed, barrier, name, corrupt, CheckpointName(3))
		}
		verifyRestored(t, tracker2, registry2)
	}
}

// TestRecoverSkipsCorruptBinaryCheckpoint: the newest checkpoint is
// damaged, so recovery must fall back to the older spare and count the
// corruption.
func TestRecoverSkipsCorruptBinaryCheckpoint(t *testing.T) {
	tracker, registry := buildState(t)
	fs := faultinject.NewMemFS(2)
	dir := "durable"
	if err := fs.MkdirAll(dir, 0o700); err != nil {
		t.Fatal(err)
	}
	for _, seg := range []uint64{1, 2} {
		blob, err := CaptureBytes(tracker, registry, seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := saveBlobFS(fs, filepath.Join(dir, CheckpointName(seg)), blob); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, CheckpointName(2))
	size, err := fs.Size(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipByte(newest, size/2, 0x40); err != nil {
		t.Fatal(err)
	}
	tracker2, registry2 := freshState(t)
	barrier, name, corrupt, err := RecoverNewestCheckpoint(fs, dir, nil, tracker2, registry2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if barrier != 1 || name != CheckpointName(1) || corrupt != 1 {
		t.Fatalf("recovered (%d, %s, %d), want (1, %s, 1)", barrier, name, corrupt, CheckpointName(1))
	}
	verifyRestored(t, tracker2, registry2)
}

// TestBinarySnapshotCorruptionSweep damages a valid image at every layer
// — truncations across the whole length, bit flips in header, table and
// payloads, garbage tails — and requires a typed *CorruptSnapshotError
// with a sane offset, no panic, and an untouched tracker.
func TestBinarySnapshotCorruptionSweep(t *testing.T) {
	tracker, registry := buildState(t)
	blob, err := CaptureBytes(tracker, registry, 5)
	if err != nil {
		t.Fatal(err)
	}
	check := func(mut []byte, what string) {
		t.Helper()
		tracker2, registry2 := freshState(t)
		before := tracker2.Paragraphs().Stats()
		_, err := RestoreBytes("mut.bf", mut, tracker2, registry2)
		if err == nil {
			t.Fatalf("%s: corrupted image accepted", what)
		}
		var ce *CorruptSnapshotError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error is not a CorruptSnapshotError: %v", what, err)
		}
		if ce.Offset < 0 || ce.Offset > int64(len(mut))+1 {
			t.Fatalf("%s: implausible offset %d (len %d)", what, ce.Offset, len(mut))
		}
		if after := tracker2.Paragraphs().Stats(); after != before {
			t.Fatalf("%s: rejected restore mutated index: %+v -> %+v", what, before, after)
		}
	}
	// Truncate at every length below the full image.
	for cut := 0; cut < len(blob); cut += 7 {
		check(blob[:cut], "truncate")
	}
	// Flip one bit at every offset.
	for off := 0; off < len(blob); off += 3 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x10
		check(mut, "bitflip")
	}
	// Garbage tail.
	check(append(append([]byte(nil), blob...), 0x00), "tail")
}

// TestMapFileFallbacks pins the FS capability check: MemFS has no mmap,
// so MapFile must silently fall back to ReadFile; OSFS maps on unix.
func TestMapFileFallbacks(t *testing.T) {
	fs := faultinject.NewMemFS(3)
	if err := fs.MkdirAll("d", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := saveBlobFS(fs, "d/x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, release, mapped, err := wal.MapFile(fs, "d/x")
	if err != nil || mapped || string(data) != "hello" {
		t.Fatalf("MemFS MapFile = (%q, mapped=%v, %v), want heap fallback", data, mapped, err)
	}
	if err := release(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "y")
	if err := os.WriteFile(path, []byte("world"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, release, mapped, err = wal.MapFile(wal.OSFS{}, path)
	if err != nil || string(data) != "world" {
		t.Fatalf("OSFS MapFile = (%q, %v)", data, err)
	}
	t.Logf("OSFS MapFile mapped=%v", mapped)
	if err := release(); err != nil {
		t.Fatal(err)
	}
}
