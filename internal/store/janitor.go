package store

import (
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
)

// Janitor periodically removes old fingerprints from a tracker's databases,
// the §4.4 mitigation against long-term fingerprint accumulation. Age is
// measured in logical observations: postings older than Retain observations
// behind the database clock are dropped.
type Janitor struct {
	tracker  *disclosure.Tracker
	interval time.Duration
	retain   uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	removed int
	runs    int
}

// NewJanitor starts a janitor sweeping the tracker every interval, keeping
// the most recent retain observations per database.
func NewJanitor(tracker *disclosure.Tracker, interval time.Duration, retain uint64) *Janitor {
	j := &Janitor{
		tracker:  tracker,
		interval: interval,
		retain:   retain,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go j.run()
	return j
}

func (j *Janitor) run() {
	defer close(j.done)
	ticker := time.NewTicker(j.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			j.Sweep()
		case <-j.stop:
			return
		}
	}
}

// Sweep runs one expiry pass immediately and returns the number of postings
// removed.
func (j *Janitor) Sweep() int {
	removed := 0
	for _, db := range []interface {
		Now() uint64
		ExpireBefore(uint64) int
	}{j.tracker.Paragraphs(), j.tracker.Documents()} {
		now := db.Now()
		if now <= j.retain {
			continue
		}
		removed += db.ExpireBefore(now - j.retain)
	}
	j.mu.Lock()
	j.removed += removed
	j.runs++
	j.mu.Unlock()
	return removed
}

// Stats returns the total postings removed and sweeps performed.
func (j *Janitor) Stats() (removed, runs int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.removed, j.runs
}

// Shutdown stops the background goroutine and waits for it to exit. It is
// safe to call multiple times.
func (j *Janitor) Shutdown() {
	j.stopOnce.Do(func() { close(j.stop) })
	<-j.done
}
