// faults.go is the disk-fault degradation layer: it classifies write
// errors surfacing from the WAL append path (EIO, ENOSPC, read-only
// remount), moves the node into an explicit degraded state instead of
// failing every request differently, and probes the medium in the
// background so the node rejoins on its own when the disk heals.
//
// Two policies, chosen by the deployment's engine mode:
//
//   - fail-closed (enforcing): appends return a *DegradedError — the
//     caller answers 503 + Retry-After and nothing is acked that the
//     journal cannot hold;
//   - fail-open (advisory): appends succeed without journalling — the
//     in-memory index keeps serving verdicts while dropped records are
//     counted. Recovery heals the journal gap with a forced checkpoint,
//     which captures the full in-memory state (dropped mutations
//     included) behind a fresh WAL barrier.
//
// ENOSPC gets one self-recovery attempt before degrading: everything
// below the last durable checkpoint is redundant, so spare checkpoints
// and obsolete segments are pruned and the append retried.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"github.com/lsds/browserflow/internal/wal"
)

// OnDiskFull policies.
const (
	// OnDiskFullPrune frees spare checkpoints and obsolete WAL segments
	// and retries the append before degrading (the default).
	OnDiskFullPrune = "prune"
	// OnDiskFullFail degrades immediately on ENOSPC.
	OnDiskFullFail = "fail"
)

// probeFileName is the throwaway file the recovery probe writes. The name
// parses as neither a WAL segment nor a checkpoint, so scans ignore it.
const probeFileName = "probe.tmp"

// DegradedError is returned by journal appends while the node is
// fail-closed degraded. The HTTP layer maps it to 503 with a Retry-After
// of the probe cadence.
type DegradedError struct {
	// Cause is the error class that degraded the node ("eio", "enospc",
	// "erofs").
	Cause string
	// Since is when the node entered the degraded state.
	Since time.Time
	// RetryAfter is the probe cadence — the soonest recovery could be
	// detected.
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("store: journal degraded (%s) since %s", e.Cause, e.Since.Format(time.RFC3339))
}

// DiskState is the degradation summary exported in DurabilityStats.
type DiskState struct {
	Degraded       bool      `json:"degraded"`
	FailOpen       bool      `json:"fail_open"`
	Cause          string    `json:"cause,omitempty"`
	Since          time.Time `json:"since"`
	DroppedRecords int64     `json:"dropped_records"`
	Recoveries     int64     `json:"recoveries"`
	// ProbeEvery is the recovery-probe cadence — the Retry-After hint the
	// HTTP layer hands fail-closed callers.
	ProbeEvery time.Duration `json:"probe_every"`
}

// classifyDiskError maps a WAL append/fsync error to a degradation cause.
// The WAL wraps the underlying errno with %w, so errors.Is sees through.
func classifyDiskError(err error) (cause string, ok bool) {
	switch {
	case errors.Is(err, syscall.ENOSPC):
		return "enospc", true
	case errors.Is(err, syscall.EIO):
		return "eio", true
	case errors.Is(err, syscall.EROFS):
		return "erofs", true
	}
	return "", false
}

// journalAppend is the single funnel every journalled record goes
// through: healthy → plain WAL append; disk fault → classify, maybe
// self-recover (ENOSPC prune), else degrade per policy.
func (d *Durable) journalAppend(rec wal.Record) error {
	d.mu.Lock()
	if d.degraded {
		err := d.degradedAppendLocked()
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()

	err := d.log.Append(rec)
	if err == nil {
		return nil
	}
	cause, disk := classifyDiskError(err)
	if !disk {
		return err // not a medium fault: surface it unchanged
	}
	if cause == "enospc" && d.opts.OnDiskFull == OnDiskFullPrune {
		d.emergencyPrune()
		if retryErr := d.log.Append(rec); retryErr == nil {
			d.opts.Logf("store: ENOSPC healed by pruning; append retried")
			return nil
		}
	}
	return d.enterDegraded(cause, err)
}

// degradedAppendLocked resolves an append while degraded: fail-open
// counts the dropped record and acks, fail-closed returns a typed
// DegradedError. Callers hold d.mu.
func (d *Durable) degradedAppendLocked() error {
	if d.opts.FailOpen {
		d.droppedRecords++
		return nil
	}
	return &DegradedError{Cause: d.degradedCause, Since: d.degradedSince, RetryAfter: d.opts.ProbeEvery}
}

// enterDegraded flips the node into the degraded state (idempotent) and
// starts the background probe loop, then resolves the triggering append
// per policy.
func (d *Durable) enterDegraded(cause string, err error) error {
	d.mu.Lock()
	if !d.degraded {
		d.degraded = true
		d.degradedSince = time.Now()
		d.degradedCause = cause
		d.opts.Logf("store: journal degraded (%s, fail-open=%v): %v", cause, d.opts.FailOpen, err)
		if !d.probing && !d.closed {
			d.probing = true
			d.wg.Add(1)
			go d.probeLoop()
		}
	}
	ret := d.degradedAppendLocked()
	d.mu.Unlock()
	return ret
}

// emergencyPrune frees disk space under ENOSPC: checkpoint spares beyond
// the newest and WAL segments below the last durable barrier are all
// redundant. Quarantined files are never touched — they are evidence.
func (d *Durable) emergencyPrune() {
	d.mu.Lock()
	barrier := d.lastCheckpointSeg
	d.mu.Unlock()
	if barrier == 0 {
		return // nothing is redundant yet
	}
	if err := d.log.TruncateBefore(barrier); err != nil {
		d.opts.Logf("store: emergency prune segments: %v", err)
	}
	if err := d.pruneCheckpoints(barrier, 1); err != nil {
		d.opts.Logf("store: emergency prune checkpoints: %v", err)
	}
}

// probeLoop retries ProbeRecover at the probe cadence until the node
// recovers or shuts down.
func (d *Durable) probeLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.opts.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-d.quiesce:
			d.mu.Lock()
			d.probing = false
			d.mu.Unlock()
			return
		case <-ticker.C:
			if recovered, _ := d.ProbeRecover(); recovered {
				d.mu.Lock()
				d.probing = false
				d.mu.Unlock()
				return
			}
		}
	}
}

// ProbeRecover checks whether the medium accepts writes again and, if it
// does, heals the node: a forced checkpoint captures the complete
// in-memory state behind a fresh WAL barrier — rotating away from any
// torn frame the failing write left in the active segment, and folding
// in every mutation a fail-open window did not journal — and only then
// is the degraded flag cleared. It reports whether the node is healthy
// (trivially true when it never degraded).
func (d *Durable) ProbeRecover() (bool, error) {
	d.mu.Lock()
	if !d.degraded {
		d.mu.Unlock()
		return true, nil
	}
	d.mu.Unlock()

	if err := d.probeDisk(); err != nil {
		return false, err
	}
	if err := d.Checkpoint(); err != nil {
		return false, err
	}
	d.mu.Lock()
	d.degraded = false
	d.degradedCause = ""
	d.diskRecoveries++
	dropped := d.droppedRecords
	d.mu.Unlock()
	if dropped > 0 {
		d.opts.Logf("store: disk recovered; journaling resumed (%d records dropped while fail-open, now covered by checkpoint)", dropped)
	} else {
		d.opts.Logf("store: disk recovered; journaling resumed")
	}
	return true, nil
}

// probeDisk performs one cheap write+fsync+remove round trip against the
// durable directory.
func (d *Durable) probeDisk() error {
	path := filepath.Join(d.opts.Dir, probeFileName)
	f, err := d.fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("bfprobe"))
	serr := f.Sync()
	f.Close()
	rerr := d.fs.Remove(path)
	for _, e := range []error{werr, serr, rerr} {
		if e != nil {
			return e
		}
	}
	return nil
}

// Degraded reports whether the journal is currently degraded and, if so,
// the policy in force.
func (d *Durable) Degraded() (degraded, failOpen bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded, d.opts.FailOpen
}
