// binsnap.go implements the BFLOWSNB binary checkpoint format, the
// corpus-scale replacement for JSON snapshot payloads. The image is a
// versioned, immutable, sectioned container:
//
//	BFLOWSNB(8) | version(1) | sectionCount(1)
//	sectionCount × { kind u32 | off u64 | len u64 | crc32c u32 }  (LE)
//	headerCRC32C(4)
//	section payloads, contiguous, in table order
//
// Every section carries its own CRC32C (Castagnoli, shared with the WAL
// framing) and the section table itself is CRC-framed, so truncation, bit
// flips and garbage tails are all detected before any payload is parsed.
// The two fingerprint databases are stored in the index package's binary
// posting codec (delta-encoded, deterministic); the registry and audit
// sections stay JSON — they are small and schema-flexible.
//
// The format exists for two fast paths that the JSON payload could not
// support:
//
//   - capture: Durable.Checkpoint encodes straight from the live DBs
//     (index.AppendSnapshot) without materialising []PostingRecord;
//   - recovery: the newest checkpoint is opened via mmap when the
//     filesystem supports it (wal.MapFS) and bulk-loaded with
//     index.LoadSnapshot, which builds the compacted runs directly.
//
// Legacy BFLOWSNP (framed JSON) and bare-JSON snapshots still load.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// binMagic prefixes sectioned binary snapshots.
var binMagic = []byte("BFLOWSNB")

// binVersion is the container format version. Version 1 was the BFLOWSNP
// framed-JSON payload; the sectioned binary container is version 2.
const binVersion = 2

// Section kinds. Unknown kinds are rejected: the format is immutable per
// version, not extensible in place.
const (
	secMeta       = 1 // fixed 24 bytes: schema version, savedAt, walSeg
	secParagraphs = 2 // index binary snapshot of the paragraph DB
	secDocuments  = 3 // index binary snapshot of the document DB
	secRegistry   = 4 // tdm.ExportData, JSON
	secAudit      = 5 // []audit.Entry, JSON
)

// binSectionEntry is one row of the section table.
const binSectionEntrySize = 4 + 8 + 8 + 4

// binMetaSize is the fixed size of the meta section payload.
const binMetaSize = 8 + 8 + 8

// IsBinarySnapshot reports whether data begins with the BFLOWSNB magic.
func IsBinarySnapshot(data []byte) bool {
	return len(data) >= len(binMagic) && string(data[:len(binMagic)]) == string(binMagic)
}

// binSection is one section to be framed.
type binSection struct {
	kind    uint32
	payload []byte
}

// frameBinary assembles the sectioned container around payloads.
func frameBinary(sections []binSection) []byte {
	headerLen := len(binMagic) + 2 + len(sections)*binSectionEntrySize
	total := headerLen + 4
	for _, s := range sections {
		total += len(s.payload)
	}
	out := make([]byte, 0, total)
	out = append(out, binMagic...)
	out = append(out, binVersion, byte(len(sections)))
	off := uint64(headerLen + 4)
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, s.kind)
		out = binary.LittleEndian.AppendUint64(out, off)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(s.payload, crcTable))
		off += uint64(len(s.payload))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	return out
}

// parseBinary validates the container framing and returns the payload of
// each section, keyed by kind. All errors are *CorruptSnapshotError with
// the offset of the first offending byte.
func parseBinary(path string, data []byte) (map[uint32][]byte, error) {
	fail := func(off int64, reason string) (map[uint32][]byte, error) {
		return nil, &CorruptSnapshotError{Path: path, Offset: off, Reason: reason}
	}
	if len(data) < len(binMagic)+2 {
		return fail(int64(len(data)), "truncated binary snapshot header")
	}
	if v := data[8]; v != binVersion {
		return fail(8, fmt.Sprintf("unsupported binary snapshot version %d", v))
	}
	count := int(data[9])
	headerLen := len(binMagic) + 2 + count*binSectionEntrySize
	if len(data) < headerLen+4 {
		return fail(int64(len(data)), "truncated section table")
	}
	wantCRC := binary.LittleEndian.Uint32(data[headerLen:])
	if got := crc32.Checksum(data[:headerLen], crcTable); got != wantCRC {
		return fail(int64(headerLen),
			fmt.Sprintf("section table checksum mismatch (got %08x, want %08x)", got, wantCRC))
	}
	sections := make(map[uint32][]byte, count)
	end := uint64(headerLen + 4)
	for i := 0; i < count; i++ {
		rowOff := len(binMagic) + 2 + i*binSectionEntrySize
		kind := binary.LittleEndian.Uint32(data[rowOff:])
		off := binary.LittleEndian.Uint64(data[rowOff+4:])
		length := binary.LittleEndian.Uint64(data[rowOff+12:])
		crc := binary.LittleEndian.Uint32(data[rowOff+20:])
		if _, dup := sections[kind]; dup {
			return fail(int64(rowOff), fmt.Sprintf("duplicate section kind %d", kind))
		}
		// Payloads must be contiguous and in table order: the image is
		// immutable, so any slack space is corruption, not flexibility.
		if off != end {
			return fail(int64(rowOff+4), fmt.Sprintf("section %d not contiguous: offset %d, want %d", kind, off, end))
		}
		if length > uint64(len(data))-off {
			return fail(int64(len(data)),
				fmt.Sprintf("truncated section %d: have %d of %d bytes", kind, uint64(len(data))-off, length))
		}
		payload := data[off : off+length]
		if got := crc32.Checksum(payload, crcTable); got != crc {
			return fail(int64(off),
				fmt.Sprintf("section %d checksum mismatch (got %08x, want %08x)", kind, got, crc))
		}
		sections[kind] = payload
		end = off + length
	}
	if end != uint64(len(data)) {
		return fail(int64(end), fmt.Sprintf("%d trailing bytes after last section", uint64(len(data))-end))
	}
	return sections, nil
}

// binRequire fetches a mandatory section.
func binRequire(path string, sections map[uint32][]byte, kind uint32) ([]byte, error) {
	payload, ok := sections[kind]
	if !ok {
		return nil, &CorruptSnapshotError{Path: path, Offset: 9, Reason: fmt.Sprintf("missing section kind %d", kind)}
	}
	return payload, nil
}

// encodeBinaryMeta packs the meta section: logical schema version,
// capture time and WAL epoch barrier. The version is recorded verbatim —
// like the JSON encoder before it, encode is permissive and version
// validation happens at restore time (Snapshot.Restore / RestoreBytes).
func encodeBinaryMeta(version int, savedAt time.Time, walSeg uint64) []byte {
	meta := make([]byte, 0, binMetaSize)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(version))
	var nano int64
	if !savedAt.IsZero() {
		nano = savedAt.UnixNano()
	}
	meta = binary.LittleEndian.AppendUint64(meta, uint64(nano))
	return binary.LittleEndian.AppendUint64(meta, walSeg)
}

// decodeBinaryMeta inverts encodeBinaryMeta.
func decodeBinaryMeta(path string, payload []byte) (version uint64, savedAt time.Time, walSeg uint64, err error) {
	if len(payload) != binMetaSize {
		return 0, time.Time{}, 0, &CorruptSnapshotError{Path: path, Offset: 0,
			Reason: fmt.Sprintf("meta section is %d bytes, want %d", len(payload), binMetaSize)}
	}
	version = binary.LittleEndian.Uint64(payload)
	if nano := int64(binary.LittleEndian.Uint64(payload[8:])); nano != 0 {
		savedAt = time.Unix(0, nano).UTC()
	}
	walSeg = binary.LittleEndian.Uint64(payload[16:])
	return version, savedAt, walSeg, nil
}

// wrapIndexErr converts an index codec error into a CorruptSnapshotError
// whose offset points into the snapshot file (section start + payload
// offset), so operators can locate the damage with one number.
func wrapIndexErr(path string, data, payload []byte, err error) error {
	if err == nil {
		return nil
	}
	var ce *index.CodecError
	if errors.As(err, &ce) {
		off := int64(ce.Offset)
		// payload is a sub-slice of data; recover its file offset.
		if len(payload) > 0 && len(data) > 0 {
			if base := sliceOffset(data, payload); base >= 0 {
				off += base
			}
		}
		return &CorruptSnapshotError{Path: path, Offset: off, Reason: ce.Reason}
	}
	return err
}

// sliceOffset returns sub's byte offset within data, or -1 when sub is
// not a sub-slice of data. Both slices share a backing array, so the
// offset falls out of the capacity difference; the pointer comparison
// verifies the candidate rather than trusting it.
func sliceOffset(data, sub []byte) int64 {
	if len(sub) == 0 || cap(sub) > cap(data) {
		return -1
	}
	off := cap(data) - cap(sub)
	if off < 0 || off+len(sub) > len(data) || &data[off] != &sub[0] {
		return -1
	}
	return int64(off)
}

// encodeBinarySnapshot turns a Snapshot struct into a BFLOWSNB image.
// This is the compatibility path used by Save; the checkpointer's hot
// path (CaptureBytes) encodes from the live DBs instead.
func encodeBinarySnapshot(s Snapshot) ([]byte, error) {
	pars, err := index.EncodeExportBinary(s.Paragraphs)
	if err != nil {
		return nil, fmt.Errorf("store: encode paragraphs: %w", err)
	}
	docs, err := index.EncodeExportBinary(s.Documents)
	if err != nil {
		return nil, fmt.Errorf("store: encode documents: %w", err)
	}
	reg, err := json.Marshal(s.Registry)
	if err != nil {
		return nil, fmt.Errorf("store: encode registry: %w", err)
	}
	aud, err := json.Marshal(s.Audit)
	if err != nil {
		return nil, fmt.Errorf("store: encode audit: %w", err)
	}
	return frameBinary([]binSection{
		{secMeta, encodeBinaryMeta(s.Version, s.SavedAt, s.WALSeg)},
		{secParagraphs, pars},
		{secDocuments, docs},
		{secRegistry, reg},
		{secAudit, aud},
	}), nil
}

// decodeBinarySnapshot inverts encodeBinarySnapshot into a Snapshot
// struct (materialising ExportData — use RestoreBytes on the recovery
// path, which skips that).
func decodeBinarySnapshot(path string, data []byte) (Snapshot, error) {
	sections, err := parseBinary(path, data)
	if err != nil {
		return Snapshot{}, err
	}
	meta, err := binRequire(path, sections, secMeta)
	if err != nil {
		return Snapshot{}, err
	}
	version, savedAt, walSeg, err := decodeBinaryMeta(path, meta)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{Version: int(version), SavedAt: savedAt, WALSeg: walSeg}
	pars, err := binRequire(path, sections, secParagraphs)
	if err != nil {
		return Snapshot{}, err
	}
	if s.Paragraphs, err = index.DecodeExportBinary(pars); err != nil {
		return Snapshot{}, wrapIndexErr(path, data, pars, err)
	}
	docs, err := binRequire(path, sections, secDocuments)
	if err != nil {
		return Snapshot{}, err
	}
	if s.Documents, err = index.DecodeExportBinary(docs); err != nil {
		return Snapshot{}, wrapIndexErr(path, data, docs, err)
	}
	reg, err := binRequire(path, sections, secRegistry)
	if err != nil {
		return Snapshot{}, err
	}
	if err := json.Unmarshal(reg, &s.Registry); err != nil {
		return Snapshot{}, fmt.Errorf("store: decode registry: %w", err)
	}
	aud, err := binRequire(path, sections, secAudit)
	if err != nil {
		return Snapshot{}, err
	}
	if err := json.Unmarshal(aud, &s.Audit); err != nil {
		return Snapshot{}, fmt.Errorf("store: decode audit: %w", err)
	}
	return s, nil
}

// CaptureBytes encodes the live tracker and registry straight into a
// BFLOWSNB image — the checkpointer's fast path. Unlike Capture+encode it
// never materialises []PostingRecord: the index DBs append their binary
// snapshots directly, so the cost is one walk over the postings plus the
// (small) registry/audit JSON.
func CaptureBytes(tracker *disclosure.Tracker, registry *tdm.Registry, walSeg uint64) ([]byte, error) {
	pars, err := tracker.Paragraphs().AppendSnapshot(nil)
	if err != nil {
		return nil, fmt.Errorf("store: capture paragraphs: %w", err)
	}
	docs, err := tracker.Documents().AppendSnapshot(nil)
	if err != nil {
		return nil, fmt.Errorf("store: capture documents: %w", err)
	}
	reg, err := json.Marshal(registry.Export())
	if err != nil {
		return nil, fmt.Errorf("store: capture registry: %w", err)
	}
	aud, err := json.Marshal(registry.Audit().Entries())
	if err != nil {
		return nil, fmt.Errorf("store: capture audit: %w", err)
	}
	return frameBinary([]binSection{
		{secMeta, encodeBinaryMeta(SnapshotVersion, time.Now().UTC(), walSeg)},
		{secParagraphs, pars},
		{secDocuments, docs},
		{secRegistry, reg},
		{secAudit, aud},
	}), nil
}

// BinaryMeta is what RestoreBytes reports about a restored image.
type BinaryMeta struct {
	SavedAt time.Time
	WALSeg  uint64
}

// RestoreBytes bulk-loads a BFLOWSNB image into tracker and registry —
// the recovery fast path. The fingerprint databases are rebuilt with
// index.LoadSnapshot (compacted runs built in place, no ExportData); data
// may be a memory mapping, nothing in the restored state aliases it.
func RestoreBytes(path string, data []byte, tracker *disclosure.Tracker, registry *tdm.Registry) (BinaryMeta, error) {
	sections, err := parseBinary(path, data)
	if err != nil {
		return BinaryMeta{}, err
	}
	meta, err := binRequire(path, sections, secMeta)
	if err != nil {
		return BinaryMeta{}, err
	}
	version, savedAt, walSeg, err := decodeBinaryMeta(path, meta)
	if err != nil {
		return BinaryMeta{}, err
	}
	if version != SnapshotVersion {
		return BinaryMeta{}, fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	// Parse the small JSON sections before touching tracker state, so the
	// most common corruption (which the CRCs already screen) cannot leave
	// a half-restored registry.
	reg, err := binRequire(path, sections, secRegistry)
	if err != nil {
		return BinaryMeta{}, err
	}
	var regData tdm.ExportData
	if err := json.Unmarshal(reg, &regData); err != nil {
		return BinaryMeta{}, fmt.Errorf("store: decode registry: %w", err)
	}
	aud, err := binRequire(path, sections, secAudit)
	if err != nil {
		return BinaryMeta{}, err
	}
	var entries []audit.Entry
	if err := json.Unmarshal(aud, &entries); err != nil {
		return BinaryMeta{}, fmt.Errorf("store: decode audit: %w", err)
	}
	pars, err := binRequire(path, sections, secParagraphs)
	if err != nil {
		return BinaryMeta{}, err
	}
	docs, err := binRequire(path, sections, secDocuments)
	if err != nil {
		return BinaryMeta{}, err
	}
	// Two-phase restore: both index payloads are decoded and validated
	// before either DB is replaced, so a corrupt documents section cannot
	// leave the paragraph DB already swapped (no partial load).
	parsPrep, err := tracker.Paragraphs().PrepareSnapshot(pars)
	if err != nil {
		return BinaryMeta{}, wrapIndexErr(path, data, pars, err)
	}
	docsPrep, err := tracker.Documents().PrepareSnapshot(docs)
	if err != nil {
		return BinaryMeta{}, wrapIndexErr(path, data, docs, err)
	}
	if err := registry.Import(regData); err != nil {
		return BinaryMeta{}, fmt.Errorf("store: restore registry: %w", err)
	}
	tracker.Paragraphs().CommitSnapshot(parsPrep)
	tracker.Documents().CommitSnapshot(docsPrep)
	registry.Audit().Replace(entries)
	return BinaryMeta{SavedAt: savedAt, WALSeg: walSeg}, nil
}

// SaveCheckpointBytes seals (when keyed) a pre-encoded checkpoint image
// and installs it at path atomically and durably. It is how checkpoint
// bytes produced by CaptureBytes — or received verbatim from a
// replication primary — reach disk without a Snapshot struct in between.
func SaveCheckpointBytes(fs wal.FS, path string, blob, key []byte) error {
	if key != nil {
		var err error
		if blob, err = seal(blob, key); err != nil {
			return err
		}
	}
	return saveBlobFS(fs, path, blob)
}

// RecoverNewestCheckpoint scans dir newest-first and restores the first
// checkpoint that loads cleanly directly into tracker and registry,
// skipping (and counting) corrupt files in favour of older spares. Binary
// images take the bulk-load path — through a memory mapping when fs
// supports wal.MapFS — while legacy BFLOWSNP/bare-JSON checkpoints fall
// back to the Snapshot struct route. It returns the restored checkpoint's
// WAL epoch barrier and file name; name is empty when the directory holds
// no loadable checkpoint. logf may be nil.
func RecoverNewestCheckpoint(fs wal.FS, dir string, key []byte, tracker *disclosure.Tracker, registry *tdm.Registry, logf func(string, ...interface{})) (barrier uint64, name string, corrupt int, err error) {
	if fs == nil {
		fs = wal.OSFS{}
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		return 0, "", 0, fmt.Errorf("store: read durable dir: %w", err)
	}
	var ckpts []uint64
	for _, n := range names {
		if seg, ok := ParseCheckpointName(n); ok {
			ckpts = append(ckpts, seg)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] }) // newest first
	for _, seg := range ckpts {
		n := CheckpointName(seg)
		path := filepath.Join(dir, n)
		walSeg, mapped, rerr := restoreCheckpointFile(fs, path, key, tracker, registry)
		if rerr != nil {
			corrupt++
			logf("store: skipping checkpoint %s: %v", n, rerr)
			continue
		}
		if walSeg == 0 {
			walSeg = seg
		}
		if mapped {
			logf("store: restored checkpoint %s via mmap", n)
		}
		return walSeg, n, corrupt, nil
	}
	return 0, "", corrupt, nil
}

// restoreCheckpointFile loads one checkpoint file of any supported
// format into tracker and registry, reporting its WAL barrier and
// whether the bytes came from a memory mapping.
func restoreCheckpointFile(fs wal.FS, path string, key []byte, tracker *disclosure.Tracker, registry *tdm.Registry) (walSeg uint64, mapped bool, err error) {
	data, release, mapped, err := wal.MapFile(fs, path)
	if err != nil {
		return 0, false, err
	}
	defer release()
	plain, err := unsealSnapshot(data, key)
	if err != nil {
		return 0, mapped, err
	}
	if IsBinarySnapshot(plain) {
		meta, err := RestoreBytes(path, plain, tracker, registry)
		if err != nil {
			return 0, mapped, err
		}
		return meta.WALSeg, mapped, nil
	}
	s, err := decodeSnapshot(path, data, key)
	if err != nil {
		return 0, mapped, err
	}
	if err := s.Restore(tracker, registry); err != nil {
		return 0, mapped, err
	}
	return s.WALSeg, mapped, nil
}
