package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// WAL record types. Observe records are the hot path and use a compact
// binary encoding; control-plane records (suppressions, tag operations,
// audit entries) are rare and use JSON for inspectability.
const (
	recObserve      byte = 1
	recObserveBatch byte = 2
	recSuppress     byte = 3
	recAllocateTag  byte = 4
	recAddSegTag    byte = 5
	recGrantTag     byte = 6
	recRevokeTag    byte = 7
	recAudit        byte = 8

	// recObserveResolved is a partition-mode observation whose disclosure
	// sources were resolved by the routing tier (or came from the decision
	// cache). It carries the resolved result and the router's Lamport
	// stamp, so replay installs the result instead of re-running
	// Algorithm 1 — one partition's database holds only a slice of the
	// cluster state the original evaluation saw.
	recObserveResolved byte = 9

	// recPruneRange records the post-split removal of a partition key
	// range from the tracker.
	recPruneRange byte = 10
)

// Binary granularity codes for observe records.
const (
	granParagraph byte = 1
	granDocument  byte = 2
)

func granCode(g segment.Granularity) (byte, error) {
	switch g {
	case segment.GranularityParagraph:
		return granParagraph, nil
	case segment.GranularityDocument:
		return granDocument, nil
	default:
		return 0, fmt.Errorf("store: unknown granularity %v", g)
	}
}

func granFromCode(c byte) (segment.Granularity, error) {
	switch c {
	case granParagraph:
		return segment.GranularityParagraph, nil
	case granDocument:
		return segment.GranularityDocument, nil
	default:
		return 0, fmt.Errorf("store: unknown granularity code %d", c)
	}
}

// appendString appends uvarint(len) | bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendHashes appends uvarint(n) | n big-endian uint32s.
func appendHashes(buf []byte, hs []uint32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(hs)))
	for _, h := range hs {
		buf = binary.BigEndian.AppendUint32(buf, h)
	}
	return buf
}

// reader consumes the binary observe encodings with bounds checking.
type reader struct {
	data []byte
	off  int
}

func (r *reader) err(what string) error {
	return fmt.Errorf("store: truncated WAL record (%s at byte %d)", what, r.off)
}

func (r *reader) byte(what string) (byte, error) {
	if r.off >= len(r.data) {
		return 0, r.err(what)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, r.err(what)
	}
	r.off += n
	return v, nil
}

func (r *reader) string(what string) (string, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.off) {
		return "", r.err(what)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) hashes(what string) ([]uint32, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return nil, err
	}
	if n*4 > uint64(len(r.data)-r.off) {
		return nil, r.err(what)
	}
	hs := make([]uint32, n)
	for i := range hs {
		hs[i] = binary.BigEndian.Uint32(r.data[r.off:])
		r.off += 4
	}
	return hs, nil
}

func (r *reader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("store: %d trailing bytes in WAL record", len(r.data)-r.off)
	}
	return nil
}

// observeOp is one decoded singular observation.
type observeOp struct {
	Seg     segment.ID
	Service string
	G       segment.Granularity
	Hashes  []uint32

	// Trace is the optional request trace ID journalled with the
	// observation (an opaque identifier, never text), so replica
	// appliers can attribute their apply spans to the originating
	// request.
	Trace string
}

// encodeObserve frames a singular observation:
//
//	gran(1) | seg | service | hashes [| trace]
//
// with strings as uvarint-length-prefixed bytes and hashes as
// uvarint-count-prefixed big-endian uint32s. The trailing trace ID is
// optional: records written before tracing existed (or for untraced
// requests) simply end after the hashes, and the decoder accepts both
// forms.
func encodeObserve(seg segment.ID, service string, g segment.Granularity, hashes []uint32, trace string) (wal.Record, error) {
	gc, err := granCode(g)
	if err != nil {
		return wal.Record{}, err
	}
	buf := make([]byte, 0, 1+10+len(seg)+len(service)+4*len(hashes)+10+len(trace))
	buf = append(buf, gc)
	buf = appendString(buf, string(seg))
	buf = appendString(buf, service)
	buf = appendHashes(buf, hashes)
	if trace != "" {
		buf = appendString(buf, trace)
	}
	return wal.Record{Type: recObserve, Data: buf}, nil
}

func decodeObserve(data []byte) (observeOp, error) {
	r := &reader{data: data}
	gc, err := r.byte("granularity")
	if err != nil {
		return observeOp{}, err
	}
	g, err := granFromCode(gc)
	if err != nil {
		return observeOp{}, err
	}
	seg, err := r.string("segment")
	if err != nil {
		return observeOp{}, err
	}
	svc, err := r.string("service")
	if err != nil {
		return observeOp{}, err
	}
	hs, err := r.hashes("hashes")
	if err != nil {
		return observeOp{}, err
	}
	var trace string
	if r.off < len(r.data) { // optional trailing trace ID
		trace, err = r.string("trace")
		if err != nil {
			return observeOp{}, err
		}
	}
	if err := r.done(); err != nil {
		return observeOp{}, err
	}
	return observeOp{Seg: segment.ID(seg), Service: svc, G: g, Hashes: hs, Trace: trace}, nil
}

// encodeObserveBatch frames a batched flush:
//
//	service | uvarint(nItems) | nItems × (gran(1) | seg | hashes) [| trace]
//
// The trailing trace ID is optional, exactly as in encodeObserve.
func encodeObserveBatch(service string, items []disclosure.BatchObservation, trace string) (wal.Record, error) {
	buf := make([]byte, 0, 16+len(service)+len(items)*64+len(trace))
	buf = appendString(buf, service)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for i, item := range items {
		if item.FP == nil {
			return wal.Record{}, fmt.Errorf("store: batch item %d has no fingerprint", i)
		}
		g := item.Granularity
		if g == 0 {
			g = segment.GranularityParagraph
		}
		gc, err := granCode(g)
		if err != nil {
			return wal.Record{}, err
		}
		buf = append(buf, gc)
		buf = appendString(buf, string(item.Seg))
		buf = appendHashes(buf, item.FP.Hashes())
	}
	if trace != "" {
		buf = appendString(buf, trace)
	}
	return wal.Record{Type: recObserveBatch, Data: buf}, nil
}

func decodeObserveBatch(data []byte) (string, []disclosure.BatchObservation, string, error) {
	r := &reader{data: data}
	svc, err := r.string("service")
	if err != nil {
		return "", nil, "", err
	}
	n, err := r.uvarint("item count")
	if err != nil {
		return "", nil, "", err
	}
	if n > uint64(len(data)) { // each item takes at least one byte
		return "", nil, "", fmt.Errorf("store: WAL batch record claims %d items in %d bytes", n, len(data))
	}
	items := make([]disclosure.BatchObservation, 0, n)
	for i := uint64(0); i < n; i++ {
		gc, err := r.byte("granularity")
		if err != nil {
			return "", nil, "", err
		}
		g, err := granFromCode(gc)
		if err != nil {
			return "", nil, "", err
		}
		seg, err := r.string("segment")
		if err != nil {
			return "", nil, "", err
		}
		hs, err := r.hashes("hashes")
		if err != nil {
			return "", nil, "", err
		}
		items = append(items, disclosure.BatchObservation{
			Seg:         segment.ID(seg),
			FP:          fingerprint.FromHashes(hs),
			Granularity: g,
		})
	}
	var trace string
	if r.off < len(r.data) { // optional trailing trace ID
		trace, err = r.string("trace")
		if err != nil {
			return "", nil, "", err
		}
	}
	if err := r.done(); err != nil {
		return "", nil, "", err
	}
	return svc, items, trace, nil
}

// appendFloat64 appends the IEEE 754 bits big-endian.
func appendFloat64(buf []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
}

func (r *reader) float64(what string) (float64, error) {
	if len(r.data)-r.off < 8 {
		return 0, r.err(what)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

// observeResolvedOp is one decoded partition-mode resolved observation.
type observeResolvedOp struct {
	Seg     segment.ID
	Service string
	G       segment.Granularity
	Clock   uint64
	Hashes  []uint32
	Sources []disclosure.Source
	Tags    map[segment.ID][]string
	Trace   string
}

// encodeObserveResolved frames a resolved observation:
//
//	gran(1) | seg | service | uvarint(clock) | hashes
//	| uvarint(nSources) × (seg | f64(disclosure) | f64(threshold))
//	| uvarint(nTagSets) × (seg | uvarint(nTags) × tag) [| trace]
//
// Disclosure values are stored as exact IEEE 754 bits: replay must
// reproduce the cached sources byte-for-byte, and the values are ratios
// of partition-spanning quantities this node cannot recompute.
func encodeObserveResolved(op observeResolvedOp) (wal.Record, error) {
	gc, err := granCode(op.G)
	if err != nil {
		return wal.Record{}, err
	}
	buf := make([]byte, 0, 1+10+len(op.Seg)+len(op.Service)+4*len(op.Hashes)+32*len(op.Sources)+10+len(op.Trace))
	buf = append(buf, gc)
	buf = appendString(buf, string(op.Seg))
	buf = appendString(buf, op.Service)
	buf = binary.AppendUvarint(buf, op.Clock)
	buf = appendHashes(buf, op.Hashes)
	buf = binary.AppendUvarint(buf, uint64(len(op.Sources)))
	for _, src := range op.Sources {
		buf = appendString(buf, string(src.Seg))
		buf = appendFloat64(buf, src.Disclosure)
		buf = appendFloat64(buf, src.Threshold)
	}
	// Tag sets in sorted segment order, so identical logical records
	// encode to identical bytes (replicas mirror WAL bytes verbatim).
	segs := make([]string, 0, len(op.Tags))
	for seg := range op.Tags {
		segs = append(segs, string(seg))
	}
	sort.Strings(segs)
	buf = binary.AppendUvarint(buf, uint64(len(segs)))
	for _, seg := range segs {
		buf = appendString(buf, seg)
		names := op.Tags[segment.ID(seg)]
		buf = binary.AppendUvarint(buf, uint64(len(names)))
		for _, n := range names {
			buf = appendString(buf, n)
		}
	}
	if op.Trace != "" {
		buf = appendString(buf, op.Trace)
	}
	return wal.Record{Type: recObserveResolved, Data: buf}, nil
}

func decodeObserveResolved(data []byte) (observeResolvedOp, error) {
	r := &reader{data: data}
	var op observeResolvedOp
	gc, err := r.byte("granularity")
	if err != nil {
		return op, err
	}
	if op.G, err = granFromCode(gc); err != nil {
		return op, err
	}
	seg, err := r.string("segment")
	if err != nil {
		return op, err
	}
	op.Seg = segment.ID(seg)
	if op.Service, err = r.string("service"); err != nil {
		return op, err
	}
	if op.Clock, err = r.uvarint("clock"); err != nil {
		return op, err
	}
	if op.Hashes, err = r.hashes("hashes"); err != nil {
		return op, err
	}
	nSrc, err := r.uvarint("source count")
	if err != nil {
		return op, err
	}
	if nSrc > uint64(len(data)) { // each source takes at least one byte
		return op, fmt.Errorf("store: WAL resolved record claims %d sources in %d bytes", nSrc, len(data))
	}
	for i := uint64(0); i < nSrc; i++ {
		s, err := r.string("source segment")
		if err != nil {
			return op, err
		}
		d, err := r.float64("source disclosure")
		if err != nil {
			return op, err
		}
		thr, err := r.float64("source threshold")
		if err != nil {
			return op, err
		}
		op.Sources = append(op.Sources, disclosure.Source{Seg: segment.ID(s), Disclosure: d, Threshold: thr})
	}
	nTags, err := r.uvarint("tag set count")
	if err != nil {
		return op, err
	}
	if nTags > uint64(len(data)) {
		return op, fmt.Errorf("store: WAL resolved record claims %d tag sets in %d bytes", nTags, len(data))
	}
	for i := uint64(0); i < nTags; i++ {
		s, err := r.string("tagged segment")
		if err != nil {
			return op, err
		}
		n, err := r.uvarint("tag count")
		if err != nil {
			return op, err
		}
		if n > uint64(len(data)) {
			return op, fmt.Errorf("store: WAL resolved record claims %d tags in %d bytes", n, len(data))
		}
		names := make([]string, 0, n)
		for j := uint64(0); j < n; j++ {
			name, err := r.string("tag")
			if err != nil {
				return op, err
			}
			names = append(names, name)
		}
		if op.Tags == nil {
			op.Tags = make(map[segment.ID][]string)
		}
		op.Tags[segment.ID(s)] = names
	}
	if r.off < len(r.data) { // optional trailing trace ID
		if op.Trace, err = r.string("trace"); err != nil {
			return op, err
		}
	}
	if err := r.done(); err != nil {
		return op, err
	}
	return op, nil
}

// pruneOp is the JSON form of a key-range prune (rare, inspectable).
type pruneOp struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

func encodePruneRange(lo, hi uint32) (wal.Record, error) {
	data, err := json.Marshal(pruneOp{Lo: lo, Hi: hi})
	if err != nil {
		return wal.Record{}, fmt.Errorf("store: encode prune record: %w", err)
	}
	return wal.Record{Type: recPruneRange, Data: data}, nil
}

func decodePruneRange(data []byte) (pruneOp, error) {
	var op pruneOp
	if err := json.Unmarshal(data, &op); err != nil {
		return pruneOp{}, fmt.Errorf("store: decode prune record: %w", err)
	}
	return op, nil
}

// controlOp is the JSON form of the rare control-plane mutations.
type controlOp struct {
	User          string     `json:"user,omitempty"`
	Seg           segment.ID `json:"seg,omitempty"`
	Tag           tdm.Tag    `json:"tag,omitempty"`
	Service       string     `json:"service,omitempty"`
	Justification string     `json:"justification,omitempty"`
}

func encodeControl(typ byte, op controlOp) (wal.Record, error) {
	data, err := json.Marshal(op)
	if err != nil {
		return wal.Record{}, fmt.Errorf("store: encode control record: %w", err)
	}
	return wal.Record{Type: typ, Data: data}, nil
}

func decodeControl(data []byte) (controlOp, error) {
	var op controlOp
	if err := json.Unmarshal(data, &op); err != nil {
		return controlOp{}, fmt.Errorf("store: decode control record: %w", err)
	}
	return op, nil
}

// encodeAudit frames audit entries verbatim (original Seq and Time).
func encodeAudit(entries []audit.Entry) (wal.Record, error) {
	data, err := json.Marshal(entries)
	if err != nil {
		return wal.Record{}, fmt.Errorf("store: encode audit record: %w", err)
	}
	return wal.Record{Type: recAudit, Data: data}, nil
}

func decodeAudit(data []byte) ([]audit.Entry, error) {
	var entries []audit.Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("store: decode audit record: %w", err)
	}
	return entries, nil
}
