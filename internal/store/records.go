package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// WAL record types. Observe records are the hot path and use a compact
// binary encoding; control-plane records (suppressions, tag operations,
// audit entries) are rare and use JSON for inspectability.
const (
	recObserve      byte = 1
	recObserveBatch byte = 2
	recSuppress     byte = 3
	recAllocateTag  byte = 4
	recAddSegTag    byte = 5
	recGrantTag     byte = 6
	recRevokeTag    byte = 7
	recAudit        byte = 8
)

// Binary granularity codes for observe records.
const (
	granParagraph byte = 1
	granDocument  byte = 2
)

func granCode(g segment.Granularity) (byte, error) {
	switch g {
	case segment.GranularityParagraph:
		return granParagraph, nil
	case segment.GranularityDocument:
		return granDocument, nil
	default:
		return 0, fmt.Errorf("store: unknown granularity %v", g)
	}
}

func granFromCode(c byte) (segment.Granularity, error) {
	switch c {
	case granParagraph:
		return segment.GranularityParagraph, nil
	case granDocument:
		return segment.GranularityDocument, nil
	default:
		return 0, fmt.Errorf("store: unknown granularity code %d", c)
	}
}

// appendString appends uvarint(len) | bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendHashes appends uvarint(n) | n big-endian uint32s.
func appendHashes(buf []byte, hs []uint32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(hs)))
	for _, h := range hs {
		buf = binary.BigEndian.AppendUint32(buf, h)
	}
	return buf
}

// reader consumes the binary observe encodings with bounds checking.
type reader struct {
	data []byte
	off  int
}

func (r *reader) err(what string) error {
	return fmt.Errorf("store: truncated WAL record (%s at byte %d)", what, r.off)
}

func (r *reader) byte(what string) (byte, error) {
	if r.off >= len(r.data) {
		return 0, r.err(what)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, r.err(what)
	}
	r.off += n
	return v, nil
}

func (r *reader) string(what string) (string, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.off) {
		return "", r.err(what)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) hashes(what string) ([]uint32, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return nil, err
	}
	if n*4 > uint64(len(r.data)-r.off) {
		return nil, r.err(what)
	}
	hs := make([]uint32, n)
	for i := range hs {
		hs[i] = binary.BigEndian.Uint32(r.data[r.off:])
		r.off += 4
	}
	return hs, nil
}

func (r *reader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("store: %d trailing bytes in WAL record", len(r.data)-r.off)
	}
	return nil
}

// observeOp is one decoded singular observation.
type observeOp struct {
	Seg     segment.ID
	Service string
	G       segment.Granularity
	Hashes  []uint32

	// Trace is the optional request trace ID journalled with the
	// observation (an opaque identifier, never text), so replica
	// appliers can attribute their apply spans to the originating
	// request.
	Trace string
}

// encodeObserve frames a singular observation:
//
//	gran(1) | seg | service | hashes [| trace]
//
// with strings as uvarint-length-prefixed bytes and hashes as
// uvarint-count-prefixed big-endian uint32s. The trailing trace ID is
// optional: records written before tracing existed (or for untraced
// requests) simply end after the hashes, and the decoder accepts both
// forms.
func encodeObserve(seg segment.ID, service string, g segment.Granularity, hashes []uint32, trace string) (wal.Record, error) {
	gc, err := granCode(g)
	if err != nil {
		return wal.Record{}, err
	}
	buf := make([]byte, 0, 1+10+len(seg)+len(service)+4*len(hashes)+10+len(trace))
	buf = append(buf, gc)
	buf = appendString(buf, string(seg))
	buf = appendString(buf, service)
	buf = appendHashes(buf, hashes)
	if trace != "" {
		buf = appendString(buf, trace)
	}
	return wal.Record{Type: recObserve, Data: buf}, nil
}

func decodeObserve(data []byte) (observeOp, error) {
	r := &reader{data: data}
	gc, err := r.byte("granularity")
	if err != nil {
		return observeOp{}, err
	}
	g, err := granFromCode(gc)
	if err != nil {
		return observeOp{}, err
	}
	seg, err := r.string("segment")
	if err != nil {
		return observeOp{}, err
	}
	svc, err := r.string("service")
	if err != nil {
		return observeOp{}, err
	}
	hs, err := r.hashes("hashes")
	if err != nil {
		return observeOp{}, err
	}
	var trace string
	if r.off < len(r.data) { // optional trailing trace ID
		trace, err = r.string("trace")
		if err != nil {
			return observeOp{}, err
		}
	}
	if err := r.done(); err != nil {
		return observeOp{}, err
	}
	return observeOp{Seg: segment.ID(seg), Service: svc, G: g, Hashes: hs, Trace: trace}, nil
}

// encodeObserveBatch frames a batched flush:
//
//	service | uvarint(nItems) | nItems × (gran(1) | seg | hashes) [| trace]
//
// The trailing trace ID is optional, exactly as in encodeObserve.
func encodeObserveBatch(service string, items []disclosure.BatchObservation, trace string) (wal.Record, error) {
	buf := make([]byte, 0, 16+len(service)+len(items)*64+len(trace))
	buf = appendString(buf, service)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for i, item := range items {
		if item.FP == nil {
			return wal.Record{}, fmt.Errorf("store: batch item %d has no fingerprint", i)
		}
		g := item.Granularity
		if g == 0 {
			g = segment.GranularityParagraph
		}
		gc, err := granCode(g)
		if err != nil {
			return wal.Record{}, err
		}
		buf = append(buf, gc)
		buf = appendString(buf, string(item.Seg))
		buf = appendHashes(buf, item.FP.Hashes())
	}
	if trace != "" {
		buf = appendString(buf, trace)
	}
	return wal.Record{Type: recObserveBatch, Data: buf}, nil
}

func decodeObserveBatch(data []byte) (string, []disclosure.BatchObservation, string, error) {
	r := &reader{data: data}
	svc, err := r.string("service")
	if err != nil {
		return "", nil, "", err
	}
	n, err := r.uvarint("item count")
	if err != nil {
		return "", nil, "", err
	}
	if n > uint64(len(data)) { // each item takes at least one byte
		return "", nil, "", fmt.Errorf("store: WAL batch record claims %d items in %d bytes", n, len(data))
	}
	items := make([]disclosure.BatchObservation, 0, n)
	for i := uint64(0); i < n; i++ {
		gc, err := r.byte("granularity")
		if err != nil {
			return "", nil, "", err
		}
		g, err := granFromCode(gc)
		if err != nil {
			return "", nil, "", err
		}
		seg, err := r.string("segment")
		if err != nil {
			return "", nil, "", err
		}
		hs, err := r.hashes("hashes")
		if err != nil {
			return "", nil, "", err
		}
		items = append(items, disclosure.BatchObservation{
			Seg:         segment.ID(seg),
			FP:          fingerprint.FromHashes(hs),
			Granularity: g,
		})
	}
	var trace string
	if r.off < len(r.data) { // optional trailing trace ID
		trace, err = r.string("trace")
		if err != nil {
			return "", nil, "", err
		}
	}
	if err := r.done(); err != nil {
		return "", nil, "", err
	}
	return svc, items, trace, nil
}

// controlOp is the JSON form of the rare control-plane mutations.
type controlOp struct {
	User          string     `json:"user,omitempty"`
	Seg           segment.ID `json:"seg,omitempty"`
	Tag           tdm.Tag    `json:"tag,omitempty"`
	Service       string     `json:"service,omitempty"`
	Justification string     `json:"justification,omitempty"`
}

func encodeControl(typ byte, op controlOp) (wal.Record, error) {
	data, err := json.Marshal(op)
	if err != nil {
		return wal.Record{}, fmt.Errorf("store: encode control record: %w", err)
	}
	return wal.Record{Type: typ, Data: data}, nil
}

func decodeControl(data []byte) (controlOp, error) {
	var op controlOp
	if err := json.Unmarshal(data, &op); err != nil {
		return controlOp{}, fmt.Errorf("store: decode control record: %w", err)
	}
	return op, nil
}

// encodeAudit frames audit entries verbatim (original Seq and Time).
func encodeAudit(entries []audit.Entry) (wal.Record, error) {
	data, err := json.Marshal(entries)
	if err != nil {
		return wal.Record{}, fmt.Errorf("store: encode audit record: %w", err)
	}
	return wal.Record{Type: recAudit, Data: data}, nil
}

func decodeAudit(data []byte) ([]audit.Entry, error) {
	var entries []audit.Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("store: decode audit record: %w", err)
	}
	return entries, nil
}
