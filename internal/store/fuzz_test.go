package store

import (
	"testing"
	"time"
)

// FuzzLoadSnapshot throws arbitrary bytes at the snapshot decoder — the
// code path a recovering process runs over whatever it finds on disk
// after a crash. Whatever the input, decodeSnapshot must never panic, and
// a successful decode followed by a re-encode/decode round trip must be
// stable (no silently half-parsed state).
func FuzzLoadSnapshot(f *testing.F) {
	key := DeriveKey("fuzz-passphrase")

	// Seed corpus: every accepted format plus near-miss corruptions.
	valid, err := encodeSnapshot(Snapshot{SavedAt: time.Unix(42, 0).UTC()}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)                                // framed plaintext
	f.Add([]byte(`{"savedAt":1}`))              // legacy bare JSON
	f.Add([]byte(`{`))                          // truncated JSON
	f.Add([]byte{})                             // empty file
	f.Add(valid[:len(valid)-2])                 // truncated payload
	short := append([]byte(nil), valid[:12]...) // truncated header
	f.Add(short)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01 // checksum mismatch
	f.Add(flipped)
	badVer := append([]byte(nil), valid...)
	badVer[8] = 0xFF // unsupported version
	f.Add(badVer)
	sealed, err := encodeSnapshot(Snapshot{SavedAt: time.Unix(42, 0).UTC()}, key)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)                 // encrypted
	f.Add(sealed[:len(sealed)-1]) // damaged GCM tag
	f.Add([]byte("BFLOWENC"))     // encrypted magic, no body
	f.Add([]byte("BFLOWSNP"))     // plain magic, no header

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, k := range [][]byte{nil, key} {
			s, err := decodeSnapshot("fuzz.bf", data, k)
			if err != nil {
				continue // rejecting corrupt input is the expected outcome
			}
			// Accepted snapshots must survive a round trip bit-for-bit at
			// the semantic level: encode and decode again.
			enc, err := encodeSnapshot(s, k)
			if err != nil {
				t.Fatalf("re-encode of accepted snapshot failed: %v", err)
			}
			if _, err := decodeSnapshot("fuzz.bf", enc, k); err != nil {
				t.Fatalf("re-decode of accepted snapshot failed: %v", err)
			}
		}
	})
}
