package store

import (
	"errors"
	"testing"
	"time"
)

// FuzzLoadSnapshot throws arbitrary bytes at the snapshot decoder — the
// code path a recovering process runs over whatever it finds on disk
// after a crash. Whatever the input, decodeSnapshot must never panic, and
// a successful decode followed by a re-encode/decode round trip must be
// stable (no silently half-parsed state).
func FuzzLoadSnapshot(f *testing.F) {
	key := DeriveKey("fuzz-passphrase")

	// Seed corpus: every accepted format plus near-miss corruptions.
	valid, err := encodeSnapshot(Snapshot{Version: SnapshotVersion, SavedAt: time.Unix(42, 0).UTC()}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid) // sectioned binary (current format)
	legacyJSON := framePlain([]byte(`{"version":1,"savedAt":"2024-01-02T03:04:05Z"}`))
	f.Add(legacyJSON)                           // framed JSON (legacy)
	f.Add([]byte(`{"savedAt":1}`))              // bare JSON (oldest legacy)
	f.Add([]byte(`{`))                          // truncated JSON
	f.Add([]byte{})                             // empty file
	f.Add(valid[:len(valid)-2])                 // truncated payload
	short := append([]byte(nil), valid[:12]...) // truncated section table
	f.Add(short)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01 // section checksum mismatch
	f.Add(flipped)
	badVer := append([]byte(nil), valid...)
	badVer[8] = 0xFF // unsupported container version
	f.Add(badVer)
	sealed, err := encodeSnapshot(Snapshot{Version: SnapshotVersion, SavedAt: time.Unix(42, 0).UTC()}, key)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)                 // encrypted
	f.Add(sealed[:len(sealed)-1]) // damaged GCM tag
	f.Add([]byte("BFLOWENC"))     // encrypted magic, no body
	f.Add([]byte("BFLOWSNP"))     // legacy plain magic, no header
	f.Add([]byte("BFLOWSNB"))     // binary magic, no header

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, k := range [][]byte{nil, key} {
			s, err := decodeSnapshot("fuzz.bf", data, k)
			if err != nil {
				continue // rejecting corrupt input is the expected outcome
			}
			// Accepted snapshots must survive a round trip at the semantic
			// level. Legacy JSON can carry index states the stricter binary
			// encoder rejects (e.g. postings beyond the clock) — refusing
			// to re-encode those is fine, silently corrupting them is not.
			enc, err := encodeSnapshot(s, k)
			if err != nil {
				continue
			}
			if _, err := decodeSnapshot("fuzz.bf", enc, k); err != nil {
				t.Fatalf("re-decode of accepted snapshot failed: %v", err)
			}
		}
	})
}

// FuzzRestoreBinarySnapshot drives the recovery fast path (RestoreBytes)
// with corrupted BFLOWSNB images. The contract under test: never panic,
// reject with a typed *CorruptSnapshotError (or a decode error) carrying
// a file offset, and never commit a partial load — after a rejected
// restore the tracker still answers exactly like the pre-restore state.
func FuzzRestoreBinarySnapshot(f *testing.F) {
	tracker, registry := buildState(f)
	valid, err := CaptureBytes(tracker, registry, 7)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated last section
	f.Add(valid[:9])            // truncated section table
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x80 // payload bit flip
	f.Add(flip)
	tail := append(append([]byte(nil), valid...), 0xAA) // garbage tail
	f.Add(tail)

	f.Fuzz(func(t *testing.T, data []byte) {
		tracker, registry := freshState(t)
		before := tracker.Paragraphs().Stats()
		meta, err := RestoreBytes("fuzz.bf", data, tracker, registry)
		if err != nil {
			var ce *CorruptSnapshotError
			if errors.As(err, &ce) && ce.Offset < 0 {
				t.Fatalf("negative corruption offset: %+v", ce)
			}
			// A rejected restore must leave the index untouched.
			if after := tracker.Paragraphs().Stats(); after != before {
				t.Fatalf("rejected restore mutated index: %+v -> %+v", before, after)
			}
			return
		}
		// An accepted restore must be re-capturable.
		if _, err := CaptureBytes(tracker, registry, meta.WALSeg); err != nil {
			t.Fatalf("re-capture of accepted restore failed: %v", err)
		}
	})
}
