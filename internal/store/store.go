// Package store persists BrowserFlow state — the fingerprint databases, the
// TDM registry and the audit log — and implements the §4.4 mitigations for
// long-term fingerprint storage: encryption of all fingerprint data at rest
// (AES-256-GCM) and periodic removal of old fingerprints.
package store

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// SnapshotVersion is the current on-disk format version.
const SnapshotVersion = 1

// magic prefixes encrypted snapshot files so Load can detect mismatched
// keys vs plaintext files.
var magic = []byte("BFLOWENC")

// plainMagic prefixes the *legacy* integrity-framed plaintext JSON
// snapshots (format version 1):
//
//	BFLOWSNP(8) | version(1) | payloadLen(8 BE) | crc32c(4) | JSON payload
//
// New snapshots are written in the sectioned BFLOWSNB binary format (see
// binsnap.go); BFLOWSNP files are still read. Files with no known magic
// are treated as oldest-legacy bare-JSON snapshots.
var plainMagic = []byte("BFLOWSNP")

// plainHeaderSize is the fixed-size prefix before the JSON payload.
const plainHeaderSize = 8 + 1 + 8 + 4

// crcTable is the Castagnoli table shared with the WAL framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadKey reports that decryption failed (wrong key or corrupted file).
var ErrBadKey = errors.New("store: cannot decrypt snapshot (wrong key or corrupt file)")

// CorruptSnapshotError reports an integrity failure in a plaintext
// snapshot, pointing at the first offending byte.
type CorruptSnapshotError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("store: snapshot %s corrupt/truncated at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Snapshot is the complete serialisable state of a BrowserFlow deployment.
type Snapshot struct {
	Version    int              `json:"version"`
	SavedAt    time.Time        `json:"savedAt"`
	Paragraphs index.ExportData `json:"paragraphs"`
	Documents  index.ExportData `json:"documents"`
	Registry   tdm.ExportData   `json:"registry"`
	Audit      []audit.Entry    `json:"audit"`

	// WALSeg is the write-ahead-log epoch barrier this snapshot covers:
	// every mutation journalled in WAL segments < WALSeg is included,
	// everything >= WALSeg must be replayed on top. Zero for snapshots
	// written outside the durability subsystem.
	WALSeg uint64 `json:"walSeg,omitempty"`
}

// Capture snapshots a tracker and registry.
func Capture(tracker *disclosure.Tracker, registry *tdm.Registry) Snapshot {
	return Snapshot{
		Version:    SnapshotVersion,
		SavedAt:    time.Now().UTC(),
		Paragraphs: tracker.Paragraphs().Export(),
		Documents:  tracker.Documents().Export(),
		Registry:   registry.Export(),
		Audit:      registry.Audit().Entries(),
	}
}

// Restore loads the snapshot into the given tracker and registry, replacing
// their state.
func (s Snapshot) Restore(tracker *disclosure.Tracker, registry *tdm.Registry) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", s.Version)
	}
	if err := tracker.Paragraphs().Import(s.Paragraphs); err != nil {
		return fmt.Errorf("restore paragraphs: %w", err)
	}
	if err := tracker.Documents().Import(s.Documents); err != nil {
		return fmt.Errorf("restore documents: %w", err)
	}
	if err := registry.Import(s.Registry); err != nil {
		return fmt.Errorf("restore registry: %w", err)
	}
	registry.Audit().Replace(s.Audit)
	return nil
}

// DeriveKey turns a passphrase into a 32-byte AES-256 key.
func DeriveKey(passphrase string) []byte {
	sum := sha256.Sum256([]byte("browserflow-store-v1:" + passphrase))
	return sum[:]
}

// Save writes the snapshot to path atomically and durably: the temp file
// is fsynced before the rename, and the parent directory afterwards, so a
// crash leaves either the old snapshot or the complete new one — never a
// renamed-but-unwritten file. A nil key writes plaintext JSON behind a
// BFLOWSNP integrity header; otherwise the payload is sealed with
// AES-256-GCM.
func Save(path string, s Snapshot, key []byte) error {
	return SaveFS(wal.OSFS{}, path, s, key)
}

// SaveFS is Save over an explicit filesystem (for crash-injection tests).
func SaveFS(fs wal.FS, path string, s Snapshot, key []byte) error {
	data, err := encodeSnapshot(s, key)
	if err != nil {
		return err
	}
	return saveBlobFS(fs, path, data)
}

// saveBlobFS atomically and durably installs pre-encoded snapshot bytes
// at path: temp file fsynced before the rename, parent directory after.
func saveBlobFS(fs wal.FS, path string, data []byte) error {
	tmpName, err := writeTemp(fs, path, data)
	if err != nil {
		return err
	}
	if err := fs.Rename(tmpName, path); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("rename snapshot: %w", err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("sync snapshot dir: %w", err)
	}
	return nil
}

// encodeSnapshot encodes (and seals, when keyed) a snapshot in the
// sectioned BFLOWSNB binary format. The image carries its own per-section
// CRC framing, so plaintext output needs no extra envelope; an encrypted
// file is the sealed binary image and gets integrity from the GCM tag.
func encodeSnapshot(s Snapshot, key []byte) ([]byte, error) {
	plain, err := encodeBinarySnapshot(s)
	if err != nil {
		return nil, err
	}
	if key != nil {
		return seal(plain, key)
	}
	return plain, nil
}

// framePlain wraps a JSON payload in the BFLOWSNP integrity header.
func framePlain(payload []byte) []byte {
	out := make([]byte, 0, plainHeaderSize+len(payload))
	out = append(out, plainMagic...)
	out = append(out, SnapshotVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// unframePlain validates a BFLOWSNP header and returns the JSON payload.
func unframePlain(path string, data []byte) ([]byte, error) {
	if len(data) < plainHeaderSize {
		return nil, &CorruptSnapshotError{Path: path, Offset: int64(len(data)), Reason: "truncated header"}
	}
	if v := data[8]; v != SnapshotVersion {
		return nil, &CorruptSnapshotError{Path: path, Offset: 8, Reason: fmt.Sprintf("unsupported snapshot format version %d", v)}
	}
	plen := binary.BigEndian.Uint64(data[9:17])
	want := binary.BigEndian.Uint32(data[17:21])
	body := data[plainHeaderSize:]
	if plen != uint64(len(body)) {
		off := int64(plainHeaderSize) + int64(len(body))
		reason := fmt.Sprintf("payload length %d, header claims %d", len(body), plen)
		if plen > uint64(len(body)) {
			reason = fmt.Sprintf("truncated payload: %d of %d bytes", len(body), plen)
		}
		return nil, &CorruptSnapshotError{Path: path, Offset: off, Reason: reason}
	}
	if got := crc32.Checksum(body, crcTable); got != want {
		// Point at the first differing region we can name: the checksum
		// covers the whole payload, so report its start.
		return nil, &CorruptSnapshotError{Path: path, Offset: plainHeaderSize,
			Reason: fmt.Sprintf("payload checksum mismatch (got %08x, want %08x)", got, want)}
	}
	return body, nil
}

// writeTemp writes data to a unique temp file next to path, fsyncing it
// before returning its name.
func writeTemp(fs wal.FS, path string, data []byte) (string, error) {
	dir := filepath.Dir(path)
	for attempt := 0; ; attempt++ {
		var suffix [6]byte
		if _, err := rand.Read(suffix[:]); err != nil {
			return "", fmt.Errorf("temp name: %w", err)
		}
		tmpName := filepath.Join(dir, fmt.Sprintf(".bfstore-%x.tmp", suffix))
		f, err := fs.OpenFile(tmpName, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
		if err != nil {
			if os.IsExist(err) && attempt < 5 {
				continue
			}
			return "", fmt.Errorf("create temp: %w", err)
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			fs.Remove(tmpName)
			return "", fmt.Errorf("write snapshot: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			fs.Remove(tmpName)
			return "", fmt.Errorf("fsync snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			fs.Remove(tmpName)
			return "", fmt.Errorf("close snapshot: %w", err)
		}
		return tmpName, nil
	}
}

// Load reads a snapshot from path. The key must match the one used by Save
// (nil for plaintext files). Plaintext files without the BFLOWSNP header
// are accepted as legacy bare-JSON snapshots.
func Load(path string, key []byte) (Snapshot, error) {
	return LoadFS(wal.OSFS{}, path, key)
}

// LoadFS is Load over an explicit filesystem.
func LoadFS(fs wal.FS, path string, key []byte) (Snapshot, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("read snapshot: %w", err)
	}
	return decodeSnapshot(path, data, key)
}

// unsealSnapshot strips the BFLOWENC envelope when present, returning
// the inner (binary or JSON) snapshot bytes unchanged otherwise.
func unsealSnapshot(data, key []byte) ([]byte, error) {
	if len(data) >= len(magic) && string(data[:len(magic)]) == string(magic) {
		if key == nil {
			return nil, ErrBadKey
		}
		return open(data, key)
	}
	return data, nil
}

// decodeSnapshot reverses encodeSnapshot. The inner payload format is
// sniffed by magic after unsealing: BFLOWSNB sectioned binary (current),
// BFLOWSNP framed JSON (legacy) or bare JSON (oldest legacy).
func decodeSnapshot(path string, data []byte, key []byte) (Snapshot, error) {
	data, err := unsealSnapshot(data, key)
	if err != nil {
		return Snapshot{}, err
	}
	switch {
	case IsBinarySnapshot(data):
		return decodeBinarySnapshot(path, data)
	case len(data) >= len(plainMagic) && string(data[:len(plainMagic)]) == string(plainMagic):
		if data, err = unframePlain(path, data); err != nil {
			return Snapshot{}, err
		}
	default:
		// Legacy plaintext snapshot: bare JSON, no integrity header.
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("unmarshal snapshot: %w", err)
	}
	return s, nil
}

// seal encrypts plain with AES-256-GCM under key: magic || nonce || ciphertext.
func seal(plain, key []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	out := make([]byte, 0, len(magic)+len(nonce)+len(plain)+gcm.Overhead())
	out = append(out, magic...)
	out = append(out, nonce...)
	return gcm.Seal(out, nonce, plain, nil), nil
}

// open decrypts a sealed payload.
func open(data, key []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	body := data[len(magic):]
	if len(body) < gcm.NonceSize() {
		return nil, ErrBadKey
	}
	nonce, ciphertext := body[:gcm.NonceSize()], body[gcm.NonceSize():]
	plain, err := gcm.Open(nil, nonce, ciphertext, nil)
	if err != nil {
		return nil, ErrBadKey
	}
	return plain, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("gcm: %w", err)
	}
	return gcm, nil
}
