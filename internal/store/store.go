// Package store persists BrowserFlow state — the fingerprint databases, the
// TDM registry and the audit log — and implements the §4.4 mitigations for
// long-term fingerprint storage: encryption of all fingerprint data at rest
// (AES-256-GCM) and periodic removal of old fingerprints.
package store

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/tdm"
)

// SnapshotVersion is the current on-disk format version.
const SnapshotVersion = 1

// magic prefixes encrypted snapshot files so Load can detect mismatched
// keys vs plaintext files.
var magic = []byte("BFLOWENC")

// ErrBadKey reports that decryption failed (wrong key or corrupted file).
var ErrBadKey = errors.New("store: cannot decrypt snapshot (wrong key or corrupt file)")

// Snapshot is the complete serialisable state of a BrowserFlow deployment.
type Snapshot struct {
	Version    int              `json:"version"`
	SavedAt    time.Time        `json:"savedAt"`
	Paragraphs index.ExportData `json:"paragraphs"`
	Documents  index.ExportData `json:"documents"`
	Registry   tdm.ExportData   `json:"registry"`
	Audit      []audit.Entry    `json:"audit"`
}

// Capture snapshots a tracker and registry.
func Capture(tracker *disclosure.Tracker, registry *tdm.Registry) Snapshot {
	return Snapshot{
		Version:    SnapshotVersion,
		SavedAt:    time.Now().UTC(),
		Paragraphs: tracker.Paragraphs().Export(),
		Documents:  tracker.Documents().Export(),
		Registry:   registry.Export(),
		Audit:      registry.Audit().Entries(),
	}
}

// Restore loads the snapshot into the given tracker and registry, replacing
// their state.
func (s Snapshot) Restore(tracker *disclosure.Tracker, registry *tdm.Registry) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", s.Version)
	}
	if err := tracker.Paragraphs().Import(s.Paragraphs); err != nil {
		return fmt.Errorf("restore paragraphs: %w", err)
	}
	if err := tracker.Documents().Import(s.Documents); err != nil {
		return fmt.Errorf("restore documents: %w", err)
	}
	if err := registry.Import(s.Registry); err != nil {
		return fmt.Errorf("restore registry: %w", err)
	}
	registry.Audit().Replace(s.Audit)
	return nil
}

// DeriveKey turns a passphrase into a 32-byte AES-256 key.
func DeriveKey(passphrase string) []byte {
	sum := sha256.Sum256([]byte("browserflow-store-v1:" + passphrase))
	return sum[:]
}

// Save writes the snapshot to path atomically (write-to-temp + rename). A
// nil key writes plaintext JSON; otherwise the payload is sealed with
// AES-256-GCM.
func Save(path string, s Snapshot, key []byte) error {
	plain, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("marshal snapshot: %w", err)
	}
	data := plain
	if key != nil {
		if data, err = seal(plain, key); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bfstore-*")
	if err != nil {
		return fmt.Errorf("create temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("rename snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot from path. The key must match the one used by Save
// (nil for plaintext files).
func Load(path string, key []byte) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("read snapshot: %w", err)
	}
	if len(data) >= len(magic) && string(data[:len(magic)]) == string(magic) {
		if key == nil {
			return Snapshot{}, ErrBadKey
		}
		if data, err = open(data, key); err != nil {
			return Snapshot{}, err
		}
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("unmarshal snapshot: %w", err)
	}
	return s, nil
}

// seal encrypts plain with AES-256-GCM under key: magic || nonce || ciphertext.
func seal(plain, key []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	out := make([]byte, 0, len(magic)+len(nonce)+len(plain)+gcm.Overhead())
	out = append(out, magic...)
	out = append(out, nonce...)
	return gcm.Seal(out, nonce, plain, nil), nil
}

// open decrypts a sealed payload.
func open(data, key []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	body := data[len(magic):]
	if len(body) < gcm.NonceSize() {
		return nil, ErrBadKey
	}
	nonce, ciphertext := body[:gcm.NonceSize()], body[gcm.NonceSize():]
	plain, err := gcm.Open(nil, nonce, ciphertext, nil)
	if err != nil {
		return nil, ErrBadKey
	}
	return plain, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("gcm: %w", err)
	}
	return gcm, nil
}
