// durable.go wires the write-ahead log (internal/wal), the checkpointer
// and crash recovery into one durability subsystem for the shared tag
// service. The policy engine journals every state mutation through the
// policy.Journal interface implemented here; a background checkpointer
// periodically captures a Snapshot off the request path and truncates the
// WAL behind it; recovery loads the newest valid checkpoint and replays
// the remaining records.
//
// # Checkpoint protocol
//
// Every journalled mutation runs inside Begin's read lock, covering both
// the in-memory mutation and its WAL append. A checkpoint takes the write
// lock, rotates the WAL to a fresh segment S (the epoch barrier) and
// captures the snapshot while holding it, so:
//
//   - every mutation journalled in segments < S is in the snapshot, and
//   - every mutation journalled in segments >= S is NOT in the snapshot.
//
// The snapshot is then written durably (fsync file + parent directory) as
// checkpoint-S outside the lock, and only afterwards are segments < S and
// older checkpoints deleted. Recovery therefore replays exactly the
// mutations the newest durable checkpoint is missing; observe replay is
// additionally idempotent (first-seen postings are never refreshed), so
// even a re-replayed record cannot corrupt disclosure state.
package store

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// DefaultKeepCheckpoints is how many durable checkpoints Checkpoint
// retains (the newest plus spares for corruption fallback).
const DefaultKeepCheckpoints = 2

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir holds WAL segments and checkpoint files (created if missing).
	Dir string

	// FS is the filesystem to write through; nil means the real one.
	FS wal.FS

	// Key encrypts checkpoint snapshots at rest (nil = plaintext with an
	// integrity header).
	Key []byte

	// Fsync is the WAL fsync policy (zero = wal.SyncAlways).
	Fsync wal.SyncPolicy

	// FsyncInterval is the group-commit cadence for wal.SyncInterval.
	FsyncInterval time.Duration

	// SegmentBytes is the WAL rotation threshold.
	SegmentBytes int64

	// CheckpointEvery is the background checkpoint cadence; 0 disables
	// the background checkpointer (Checkpoint may still be called
	// explicitly, e.g. at shutdown).
	CheckpointEvery time.Duration

	// KeepCheckpoints is how many checkpoint files to retain (default
	// DefaultKeepCheckpoints).
	KeepCheckpoints int

	// ScrubEvery is the at-rest scrub cadence: every interval the
	// scrubber re-verifies the CRCs of all sealed WAL segments and
	// checkpoint files and quarantines decayed ones. 0 disables the
	// background scrubber (ScrubPass may still be called explicitly).
	ScrubEvery time.Duration

	// ScrubRateMB caps the scrubber's read bandwidth in MiB/s so a large
	// directory cannot starve foreground I/O. 0 means unthrottled.
	ScrubRateMB int

	// FailOpen selects the disk-fault degradation policy: true keeps
	// serving and silently drops journal records while the disk is down
	// (advisory deployments — verdicts matter more than the journal);
	// false refuses writes with a DegradedError so no mutation is acked
	// that the journal cannot hold (enforcing deployments).
	FailOpen bool

	// OnDiskFull chooses the ENOSPC response: OnDiskFullPrune (default)
	// frees obsolete segments and spare checkpoints and retries the
	// append; OnDiskFullFail degrades immediately.
	OnDiskFull string

	// ProbeEvery is how often a degraded node probes the medium for
	// recovery (default 1s).
	ProbeEvery time.Duration

	// Logf receives recovery and checkpoint notes; nil discards them.
	Logf func(format string, args ...interface{})

	// SegmentFilter, when set, restricts tracker-state replay to segments
	// it accepts — how a promoted split target recovers from a WAL whose
	// bytes were mirrored from the source partition verbatim: registry
	// effects (labels are global shadow state) apply unconditionally,
	// index updates for out-of-range segments are skipped.
	SegmentFilter func(segment.ID) bool
}

// RecoveryStats describes what recovery found and did.
type RecoveryStats struct {
	// CheckpointLoaded is the file name of the checkpoint restored (empty
	// when starting from an empty directory).
	CheckpointLoaded string

	// CheckpointSeg is the restored checkpoint's WAL epoch barrier.
	CheckpointSeg uint64

	// CorruptCheckpoints counts checkpoint files that failed to load and
	// were skipped in favour of an older one.
	CorruptCheckpoints int

	// ObsoleteSegments counts WAL segments below the barrier removed
	// before replay.
	ObsoleteSegments int

	// RecordsReplayed counts WAL records applied on top of the
	// checkpoint.
	RecordsReplayed int64

	// AuditRestored counts audit entries whose original timestamps were
	// restored from journalled audit records.
	AuditRestored int

	// TornBytesTruncated is how many trailing bytes the WAL torn-tail
	// scan discarded.
	TornBytesTruncated int64

	// ReplaySkipped counts records that failed to apply during a
	// gap-degraded replay (a quarantined segment removed state they
	// depended on). Zero unless the log had recovery gaps.
	ReplaySkipped int64

	// Duration is the wall-clock time recovery took.
	Duration time.Duration
}

// DurabilityStats is the point-in-time durability summary exported on the
// tag service's metrics and health endpoints.
type DurabilityStats struct {
	WAL               wal.Stats
	Checkpoints       int64
	CheckpointErrors  int64
	LastCheckpointSeg uint64
	LastCheckpointAt  time.Time
	Recovery          RecoveryStats
	Disk              DiskState
	Scrub             ScrubStats
}

// Durable is the durability subsystem: WAL journal + checkpointer +
// recovery. It implements policy.Journal.
type Durable struct {
	opts     DurableOptions
	fs       wal.FS
	log      *wal.Log
	tracker  *disclosure.Tracker
	registry *tdm.Registry

	// barrier serialises checkpoints against journalled mutations: Begin
	// takes the read side around (mutate + append); Checkpoint takes the
	// write side around (rotate + capture).
	barrier sync.RWMutex

	recovery RecoveryStats

	mu                sync.Mutex
	checkpoints       int64
	checkpointErrs    int64
	lastCheckpointSeg uint64
	lastCheckpointAt  time.Time
	recordsAtLastCkpt int64

	// Disk-fault degradation state (see faults.go).
	degraded       bool
	degradedSince  time.Time
	degradedCause  string
	droppedRecords int64
	diskRecoveries int64
	probing        bool

	// At-rest scrub state (see scrub.go).
	scrub ScrubStats

	stop    chan struct{}
	done    chan struct{}
	quiesce chan struct{} // closed by Close; stops scrub + probe loops
	wg      sync.WaitGroup
	closed  bool
}

var _ policy.Journal = (*Durable)(nil)

// checkpointName and parseCheckpointName are internal aliases of the
// exported helpers in applier.go (the hex field is the WAL epoch barrier
// segment).
func checkpointName(seg uint64) string            { return CheckpointName(seg) }
func parseCheckpointName(name string) (uint64, bool) { return ParseCheckpointName(name) }

// OpenDurable recovers the state in opts.Dir into tracker and registry
// (newest valid checkpoint + WAL replay), then opens the WAL for
// journalling and starts the background checkpointer. The returned
// Durable should be installed with engine.SetJournal and Closed at
// shutdown.
func OpenDurable(opts DurableOptions, tracker *disclosure.Tracker, registry *tdm.Registry) (*Durable, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: durable Dir is required")
	}
	if opts.FS == nil {
		opts.FS = wal.OSFS{}
	}
	if opts.KeepCheckpoints <= 0 {
		opts.KeepCheckpoints = DefaultKeepCheckpoints
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	if opts.OnDiskFull == "" {
		opts.OnDiskFull = OnDiskFullPrune
	}
	if opts.OnDiskFull != OnDiskFullPrune && opts.OnDiskFull != OnDiskFullFail {
		return nil, fmt.Errorf("store: unknown OnDiskFull policy %q", opts.OnDiskFull)
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = time.Second
	}
	d := &Durable{
		opts:     opts,
		fs:       opts.FS,
		tracker:  tracker,
		registry: registry,
		quiesce:  make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	if opts.CheckpointEvery > 0 {
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.checkpointLoop()
	}
	if opts.ScrubEvery > 0 {
		d.wg.Add(1)
		go d.scrubLoop()
	}
	return d, nil
}

// recover performs checkpoint load + WAL replay and opens the log.
func (d *Durable) recover() error {
	start := time.Now()
	if err := d.fs.MkdirAll(d.opts.Dir, 0o700); err != nil {
		return fmt.Errorf("store: mkdir %s: %w", d.opts.Dir, err)
	}

	// 1. Newest checkpoint that loads and restores cleanly wins. Binary
	// checkpoints bulk-load straight into the index DBs (via mmap when
	// the filesystem supports it); legacy JSON checkpoints still work.
	barrier, name, corrupt, err := RecoverNewestCheckpoint(d.fs, d.opts.Dir, d.opts.Key, d.tracker, d.registry, d.opts.Logf)
	if err != nil {
		return err
	}
	d.recovery.CorruptCheckpoints = corrupt
	d.recovery.CheckpointLoaded = name
	d.recovery.CheckpointSeg = barrier

	// 2. Segments entirely covered by the checkpoint are obsolete; clear
	// them before the WAL's strict mid-log validation runs so stale
	// corruption cannot brick recovery.
	if barrier > 0 {
		removed, err := wal.RemoveSegmentsBelow(d.fs, d.opts.Dir, barrier)
		if err != nil {
			return err
		}
		d.recovery.ObsoleteSegments = removed
	}

	// 3. Open the WAL: torn tail truncated; a mid-log CRC mismatch in a
	// sealed segment (at-rest decay, not a torn write) quarantines that
	// segment and recovery resumes at the next valid segment boundary
	// rather than refusing to start — the gap is counted and logged. The
	// MinSegment floor keeps new appends above the checkpoint's epoch even
	// when every segment file was lost with the crash.
	log, err := wal.Open(wal.Options{
		Dir:               d.opts.Dir,
		FS:                d.fs,
		Policy:            d.opts.Fsync,
		Interval:          d.opts.FsyncInterval,
		SegmentBytes:      d.opts.SegmentBytes,
		MinSegment:        barrier + 1,
		QuarantineCorrupt: true,
		Logf:              d.opts.Logf,
	})
	if err != nil {
		return err
	}
	d.log = log
	d.recovery.TornBytesTruncated = log.Stats().TornBytesTruncated

	// 4. Replay the surviving suffix through a journal-less engine so
	// every side effect (labels, implicit tags, stored-by marks, audit)
	// is regenerated by the same code that produced it.
	if err := d.replay(barrier); err != nil {
		log.Close()
		return err
	}
	d.recovery.Duration = time.Since(start)
	d.lastCheckpointSeg = barrier
	d.lastCheckpointAt = start
	d.recordsAtLastCkpt = 0
	if d.recovery.RecordsReplayed > 0 || d.recovery.CheckpointLoaded != "" {
		d.opts.Logf("store: recovered %s + %d WAL records in %v",
			orEmpty(d.recovery.CheckpointLoaded, "no checkpoint"),
			d.recovery.RecordsReplayed, d.recovery.Duration.Round(time.Millisecond))
	}
	return nil
}

func orEmpty(s, alt string) string {
	if s == "" {
		return alt
	}
	return s
}

// replay applies every WAL record in segments >= barrier through the
// shared Applier (the same idempotent path streaming replicas use).
// When the log came up with recovery gaps (quarantined segments), a
// record that fails to apply is skipped and counted instead of fatal:
// the state it depended on died with the quarantined segment, and
// refusing to start would turn one decayed file into a dead node.
func (d *Durable) replay(barrier uint64) error {
	applier, err := NewApplier(d.tracker, d.registry)
	if err != nil {
		return err
	}
	if d.opts.SegmentFilter != nil {
		applier.SetSegmentFilter(d.opts.SegmentFilter)
	}
	walStats := d.log.Stats()
	tolerate := walStats.RecoveryGaps > 0 || walStats.QuarantinedSegments > 0
	replayErr := d.log.Replay(barrier, func(seg uint64, rec wal.Record) error {
		if err := applier.Apply(rec); err != nil {
			if tolerate {
				d.recovery.ReplaySkipped++
				if d.recovery.ReplaySkipped <= 3 {
					d.opts.Logf("store: replay over gap: skipping record in segment %d: %v", seg, err)
				}
				return nil
			}
			return fmt.Errorf("store: replay segment %d: %w", seg, err)
		}
		d.recovery.RecordsReplayed++
		return nil
	})
	if replayErr != nil {
		return replayErr
	}
	// Restore original timestamps on regenerated audit entries.
	d.recovery.AuditRestored = applier.RestoreAuditTimestamps()
	return nil
}

// --- policy.Journal --------------------------------------------------------

// Begin implements policy.Journal: it takes the read side of the
// checkpoint barrier around one mutation + its journal appends.
func (d *Durable) Begin() (end func()) {
	d.barrier.RLock()
	return d.barrier.RUnlock
}

func (d *Durable) append(rec wal.Record, err error) error {
	if err != nil {
		return err
	}
	return d.journalAppend(rec)
}

// appendTraced appends a record and, when ctx carries a trace, records
// a "wal.append" span timing the append (frame + fsync per policy).
func (d *Durable) appendTraced(ctx context.Context, rec wal.Record, err error) error {
	if err != nil {
		return err
	}
	sp := obs.StartSpan(ctx, "wal.append")
	err = d.journalAppend(rec)
	sp.End(err)
	return err
}

// Observe implements policy.Journal. The request's trace ID (if any)
// is journalled with the record, so streaming replicas can attribute
// their apply work to the originating request.
func (d *Durable) Observe(ctx context.Context, seg segment.ID, service string, g segment.Granularity, hashes []uint32) error {
	rec, err := encodeObserve(seg, service, g, hashes, obs.TraceID(ctx))
	return d.appendTraced(ctx, rec, err)
}

// ObserveBatch implements policy.Journal.
func (d *Durable) ObserveBatch(ctx context.Context, service string, items []disclosure.BatchObservation) error {
	rec, err := encodeObserveBatch(service, items, obs.TraceID(ctx))
	return d.appendTraced(ctx, rec, err)
}

// Suppress implements policy.Journal.
func (d *Durable) Suppress(user string, seg segment.ID, tag tdm.Tag, justification string) error {
	return d.append(encodeControl(recSuppress, controlOp{User: user, Seg: seg, Tag: tag, Justification: justification}))
}

// AllocateTag implements policy.Journal.
func (d *Durable) AllocateTag(user string, tag tdm.Tag) error {
	return d.append(encodeControl(recAllocateTag, controlOp{User: user, Tag: tag}))
}

// AddSegmentTag implements policy.Journal.
func (d *Durable) AddSegmentTag(user string, seg segment.ID, tag tdm.Tag) error {
	return d.append(encodeControl(recAddSegTag, controlOp{User: user, Seg: seg, Tag: tag}))
}

// GrantTag implements policy.Journal.
func (d *Durable) GrantTag(user, service string, tag tdm.Tag) error {
	return d.append(encodeControl(recGrantTag, controlOp{User: user, Service: service, Tag: tag}))
}

// RevokeTag implements policy.Journal.
func (d *Durable) RevokeTag(user, service string, tag tdm.Tag) error {
	return d.append(encodeControl(recRevokeTag, controlOp{User: user, Service: service, Tag: tag}))
}

// AuditAppend implements policy.Journal.
func (d *Durable) AuditAppend(entries []audit.Entry) error {
	return d.append(encodeAudit(entries))
}

// ObserveResolved implements policy.Journal for partition-mode
// observations applied with router-resolved sources.
func (d *Durable) ObserveResolved(ctx context.Context, seg segment.ID, service string, g segment.Granularity, hashes []uint32, clock uint64, sources []disclosure.Source, tags map[segment.ID][]string) error {
	rec, err := encodeObserveResolved(observeResolvedOp{
		Seg: seg, Service: service, G: g, Clock: clock,
		Hashes: hashes, Sources: sources, Tags: tags,
		Trace: obs.TraceID(ctx),
	})
	return d.appendTraced(ctx, rec, err)
}

// PruneRange implements policy.Journal for post-split key-range removal.
func (d *Durable) PruneRange(ctx context.Context, lo, hi uint32) error {
	rec, err := encodePruneRange(lo, hi)
	return d.appendTraced(ctx, rec, err)
}

// --- checkpointer ----------------------------------------------------------

// Checkpoint captures a snapshot behind a WAL epoch barrier, installs it
// durably and truncates the WAL and older checkpoints behind it. It is
// safe to call concurrently with traffic; mutations block only for the
// rotate + in-memory capture, never for the file write.
func (d *Durable) Checkpoint() error {
	blob, barrier, err := d.CaptureCheckpointBytes()
	if err != nil {
		return err
	}
	path := filepath.Join(d.opts.Dir, checkpointName(barrier))
	if err := SaveCheckpointBytes(d.fs, path, blob, d.opts.Key); err != nil {
		d.mu.Lock()
		d.checkpointErrs++
		d.mu.Unlock()
		return fmt.Errorf("store: write checkpoint: %w", err)
	}

	// The checkpoint is durable: everything it covers is now obsolete.
	if err := d.log.TruncateBefore(barrier); err != nil {
		d.opts.Logf("store: wal truncate after checkpoint: %v", err)
	}
	if err := d.pruneCheckpoints(barrier, d.opts.KeepCheckpoints); err != nil {
		d.opts.Logf("store: prune checkpoints: %v", err)
	}

	d.mu.Lock()
	d.checkpoints++
	d.lastCheckpointSeg = barrier
	d.lastCheckpointAt = time.Now()
	d.recordsAtLastCkpt = d.log.Stats().RecordsAppended
	d.mu.Unlock()
	return nil
}

// pruneCheckpoints removes old checkpoint files, keeping the newest keep
// of them (the one at barrier included). The emergency ENOSPC path calls
// it with keep=1 to free every spare.
func (d *Durable) pruneCheckpoints(barrier uint64, keep int) error {
	names, err := d.fs.ReadDirNames(d.opts.Dir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, name := range names {
		if seg, ok := parseCheckpointName(name); ok && seg <= barrier {
			segs = append(segs, seg)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] > segs[j] })
	for _, seg := range segs[minInt(len(segs), keep):] {
		if err := d.fs.Remove(filepath.Join(d.opts.Dir, checkpointName(seg))); err != nil {
			return err
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// checkpointLoop is the background checkpointer.
func (d *Durable) checkpointLoop() {
	defer close(d.done)
	ticker := time.NewTicker(d.opts.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.mu.Lock()
			hasCheckpoint := d.checkpoints > 0 || d.recovery.CheckpointLoaded != ""
			idle := hasCheckpoint && d.log.Stats().RecordsAppended == d.recordsAtLastCkpt
			d.mu.Unlock()
			if idle {
				continue // nothing new to cover
			}
			if err := d.Checkpoint(); err != nil {
				d.opts.Logf("store: background checkpoint: %v", err)
			}
		}
	}
}

// Sync forces the WAL to stable storage regardless of fsync policy.
func (d *Durable) Sync() error { return d.log.Sync() }

// WAL exposes the underlying log for read-side consumers (the
// replication stream endpoint reads raw frames and waits for appends
// through it). Appends must still go through the Journal interface.
func (d *Durable) WAL() *wal.Log { return d.log }

// StateDigest returns the tracker's anti-entropy digest. The primary
// serves it on /v1/repl/digest and compares it against the digest each
// caught-up replica reports on its stream rounds.
func (d *Durable) StateDigest() disclosure.TrackerDigest {
	return d.tracker.Digest()
}

// CaptureCheckpoint captures a consistent snapshot behind a fresh WAL
// epoch barrier without installing it on disk: the replication snapshot
// endpoint serves it to bootstrapping replicas, which then stream from
// segment snap.WALSeg onwards. The extra segment rotation it costs is
// harmless — the next durable Checkpoint simply rotates again.
func (d *Durable) CaptureCheckpoint() (*Snapshot, error) {
	d.barrier.Lock()
	barrier, err := d.log.Rotate()
	if err != nil {
		d.barrier.Unlock()
		return nil, err
	}
	snap := Capture(d.tracker, d.registry)
	d.barrier.Unlock()
	snap.WALSeg = barrier
	return &snap, nil
}

// CaptureCheckpointBytes is CaptureCheckpoint in wire form: it rotates to
// a fresh WAL epoch barrier and encodes the state behind it straight into
// a plaintext BFLOWSNB image, without materialising the intermediate
// Snapshot struct. The checkpointer seals and installs the bytes; the
// replication snapshot endpoint serves them to bootstrapping replicas
// verbatim.
func (d *Durable) CaptureCheckpointBytes() (blob []byte, barrier uint64, err error) {
	d.barrier.Lock()
	barrier, err = d.log.Rotate()
	if err != nil {
		d.barrier.Unlock()
		return nil, 0, err
	}
	blob, err = CaptureBytes(d.tracker, d.registry, barrier)
	d.barrier.Unlock()
	if err != nil {
		d.mu.Lock()
		d.checkpointErrs++
		d.mu.Unlock()
		return nil, 0, fmt.Errorf("store: capture checkpoint: %w", err)
	}
	return blob, barrier, nil
}

// Stats returns the current durability summary.
func (d *Durable) Stats() DurabilityStats {
	quarantined := wal.CountQuarantined(d.fs, d.opts.Dir)
	d.mu.Lock()
	defer d.mu.Unlock()
	scrub := d.scrub
	scrub.QuarantinedFiles = quarantined
	return DurabilityStats{
		WAL:               d.log.Stats(),
		Checkpoints:       d.checkpoints,
		CheckpointErrors:  d.checkpointErrs,
		LastCheckpointSeg: d.lastCheckpointSeg,
		LastCheckpointAt:  d.lastCheckpointAt,
		Recovery:          d.recovery,
		Disk: DiskState{
			Degraded:       d.degraded,
			FailOpen:       d.opts.FailOpen,
			Cause:          d.degradedCause,
			Since:          d.degradedSince,
			DroppedRecords: d.droppedRecords,
			Recoveries:     d.diskRecoveries,
			ProbeEvery:     d.opts.ProbeEvery,
		},
		Scrub: scrub,
	}
}

// Close stops the background checkpointer, takes a final checkpoint and
// closes the WAL. Even when the final checkpoint fails, the synced WAL
// still carries every journalled mutation for the next recovery. Close is
// idempotent; calls after the first are no-ops.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.quiesce) // stop the scrubber and any recovery probe loop
	d.wg.Wait()
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	ckptErr := d.Checkpoint()
	if err := d.log.Sync(); err != nil && ckptErr == nil {
		ckptErr = err
	}
	if err := d.log.Close(); err != nil && ckptErr == nil {
		ckptErr = err
	}
	return ckptErr
}
