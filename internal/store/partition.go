// partition.go — checkpoint filtering for partition splits. A split
// bootstraps the target from a checkpoint of the source restricted to
// the moving key range; the WAL tail is then mirrored verbatim with the
// target's applier filtering per record (see Applier.SetSegmentFilter).
package store

import (
	"fmt"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// FilterSnapshotRange re-encodes a BFLOWSNB checkpoint image with the
// fingerprint-index state restricted to segments whose partition key
// (segment.Key) falls in the inclusive range [lo, hi]. Registry and
// audit state are kept whole — labels are global shadow state in a
// partitioned cluster, so the target needs every segment's tags even
// when it indexes only a slice of the fingerprints.
//
// The filter round-trips through a scratch tracker built with params
// (which must match the source engine's), removing out-of-range
// segments before re-capturing. Index clocks and posting sequence
// numbers survive the round trip verbatim, so oldest-holder order on
// the target is identical to the source's for every retained posting.
func FilterSnapshotRange(blob []byte, params disclosure.Params, lo, hi uint32) ([]byte, error) {
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return nil, fmt.Errorf("store: filter snapshot: %w", err)
	}
	registry := tdm.NewRegistry(nil)
	meta, err := RestoreBytes("filter-snapshot", blob, tracker, registry)
	if err != nil {
		return nil, err
	}
	for _, db := range []interface {
		Segments() []segment.ID
		RemoveSegment(segment.ID)
	}{tracker.Paragraphs(), tracker.Documents()} {
		for _, seg := range db.Segments() {
			if k := segment.Key(seg); k < lo || k > hi {
				db.RemoveSegment(seg)
			}
		}
	}
	return CaptureBytes(tracker, registry, meta.WALSeg)
}
