package policy

import (
	"context"
	"strconv"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// Partitioned-cluster entry points. In a partitioned deployment each
// engine instance holds the vertical state (index, labels, cache) for the
// segments homed on its partition. A routed observation runs in two
// phases: phase 1 probes the home partition's decision cache (ObservePart)
// and, on a miss, hands back this partition's scatter contribution; the
// router merges contributions from every partition and phase 2
// (ObserveResolvedFPCtx) applies the merged result. The byte-equivalence
// contract with a single node is carried by three facts: candidate
// evaluation uses the identical arithmetic on identical inputs (the merge
// reconstructs the single-database oldest-holder assignment), SortSources
// imposes a total order erasing discovery order, and the verdict is
// evaluated at the segment's home against shadow labels mirroring every
// source's explicit tags.

// PartCand is one candidate's contribution to a scatter-gather reply:
// the disclosure.RemoteCand facts plus the candidate's explicit tags, so
// the winner's labels can be mirrored (shadowed) wherever the verdict is
// evaluated without a second round trip.
type PartCand struct {
	Seg       segment.ID
	Len       int
	Threshold float64
	Overlap   []int
	Tags      []string
}

// PartResolve is one partition's full contribution to a scatter-gather
// disclosure query.
type PartResolve struct {
	// Clock is the partition's logical time for the queried granularity;
	// routers fold it into their Lamport stamp so a restarted router
	// catches up with the cluster instead of stamping in the past.
	Clock uint64

	// Oldest names the partition-local oldest holder of each query hash
	// (by hash index) with its first-observation sequence number.
	Oldest []index.OldestRef

	// Cands carries the evaluation facts for each distinct local oldest
	// holder.
	Cands []PartCand
}

// PartQuery computes this engine's contribution to a scatter-gather
// disclosure query: local oldest holders, candidate facts, and each
// candidate's explicit tags.
func (e *Engine) PartQuery(hashes []uint32, g segment.Granularity) PartResolve {
	refs, rcands := e.tracker.ResolveQuery(hashes, g)
	cands := make([]PartCand, len(rcands))
	for i, c := range rcands {
		cands[i] = PartCand{
			Seg:       c.Seg,
			Len:       c.Len,
			Threshold: c.Threshold,
			Overlap:   c.Overlap,
			Tags:      e.explicitTags(c.Seg),
		}
	}
	return PartResolve{Clock: e.tracker.Clock(g), Oldest: refs, Cands: cands}
}

// explicitTags returns seg's explicit tags as sorted strings (nil when the
// segment has no label).
func (e *Engine) explicitTags(seg segment.ID) []string {
	label := e.registry.Label(seg)
	if label == nil {
		return nil
	}
	explicit := label.Explicit()
	if explicit.Len() == 0 {
		return nil
	}
	out := make([]string, 0, explicit.Len())
	for _, t := range explicit.Sorted() {
		out = append(out, string(t))
	}
	return out
}

// ObservePart is phase 1 of a routed observation at the segment's home
// partition. On a decision-cache hit it applies the observation exactly
// like a single-node cache hit would (label refresh from the cached
// sources, journalled as a resolved observation so replay needs no
// evaluation) and returns the verdict with done=true. On a miss it
// mutates nothing and returns this partition's scatter contribution with
// done=false; the router completes the observation through
// ObserveResolvedFPCtx.
func (e *Engine) ObservePart(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint, g segment.Granularity, clock uint64) (verdict Verdict, resolve PartResolve, done bool, err error) {
	sp := obs.StartSpan(ctx, "engine.observe_part")
	if sp.Active() {
		sp.SetAttr("seg", string(seg))
		sp.SetAttr("hashes", strconv.Itoa(len(fp.Hashes())))
		defer func() { sp.End(err) }()
	}
	report, hit := e.tracker.ProbeFP(seg, fp, g)
	if !hit {
		return Verdict{}, e.PartQuery(fp.Hashes(), g), false, nil
	}
	if end := e.begin(); end != nil {
		defer end()
	}
	clock = e.stampClock(g, clock)
	e.tracker.SetClockFloor(g, clock)
	if _, err := e.registry.ObserveSegment(seg, service); err != nil {
		return Verdict{}, PartResolve{}, false, err
	}
	e.registry.RefreshImplicit(seg, report.SourceSegs())
	// A cache hit in partition mode is still journalled as a *resolved*
	// observation (cached sources + the sources' current local tags):
	// replaying it must not re-run Algorithm 1, whose inputs on this
	// partition are only a slice of the cluster's state.
	if err := e.journalObserveResolved(ctx, seg, service, g, fp.Hashes(), clock, report.Sources, e.sourceTags(report.Sources)); err != nil {
		return Verdict{}, PartResolve{}, false, err
	}
	v, err := e.verdictFor(seg, service, report.Sources, report.CacheHit)
	if err != nil {
		return Verdict{}, PartResolve{}, false, err
	}
	return v, PartResolve{}, true, nil
}

// stampClock returns the Lamport stamp a partition-mode mutation
// journals and floors into the index clock. A router-provided stamp is
// used as-is; an unstamped mutation (sole mode, or a direct client)
// self-stamps with the next tick, so every resolved record in the WAL
// carries an explicit stamp and a *filtered* replay — which skips
// out-of-range index updates and would otherwise drift its local clock
// below the source's — still assigns the same first-observation order.
func (e *Engine) stampClock(g segment.Granularity, clock uint64) uint64 {
	if clock > 0 {
		return clock
	}
	return e.tracker.Clock(g) + 1
}

// sourceTags collects the current explicit tags of each source segment.
func (e *Engine) sourceTags(sources []disclosure.Source) map[segment.ID][]string {
	if len(sources) == 0 {
		return nil
	}
	tags := make(map[segment.ID][]string, len(sources))
	for _, src := range sources {
		tags[src.Seg] = e.explicitTags(src.Seg)
	}
	return tags
}

// MergeResolves folds partition scatter replies into the disclosure
// sources a single shared database would have produced for a fpLen-hash
// fingerprint observed by exclude. The global oldest holder of each
// hash index is the minimum over the partition-local oldests (by
// sequence number, ties broken by ascending segment ID — the same total
// order one shared index imposes); every distinct global oldest other
// than the observer is then evaluated with the exact single-node
// candidate arithmetic using the facts its home partition shipped.
// It also returns the winning sources' explicit tags (for shadowing at
// the observer's home) and the maximum partition clock seen (for the
// router's Lamport stamp).
func MergeResolves(fpLen int, exclude segment.ID, replies []PartResolve) (sources []disclosure.Source, tags map[segment.ID][]string, maxClock uint64) {
	type ref struct {
		seg segment.ID
		seq uint64
	}
	oldest := make(map[int]ref)
	cands := make(map[segment.ID]PartCand)
	for _, r := range replies {
		if r.Clock > maxClock {
			maxClock = r.Clock
		}
		for _, o := range r.Oldest {
			cur, ok := oldest[o.Idx]
			if !ok || o.Seq < cur.seq || (o.Seq == cur.seq && o.Seg < cur.seg) {
				oldest[o.Idx] = ref{seg: o.Seg, seq: o.Seq}
			}
		}
		for _, c := range r.Cands {
			// First reply wins: a segment lives on exactly one partition,
			// so duplicates (possible only in a split window, when source
			// and target briefly both answer for the moving range) carry
			// identical facts.
			if _, ok := cands[c.Seg]; !ok {
				cands[c.Seg] = c
			}
		}
	}
	// A candidate's authoritative overlap is the number of hash indices
	// whose *global* oldest holder it is: it necessarily holds each such
	// hash, and no other candidate is authoritative for it.
	counts := make(map[segment.ID]int, len(cands))
	for _, r := range oldest {
		counts[r.seg]++
	}
	for cand, overlap := range counts {
		if cand == exclude {
			continue
		}
		entry, ok := cands[cand]
		if !ok {
			continue
		}
		// Identical arithmetic to evaluateCandidate, fed by the shipped
		// facts instead of local index lookups.
		if entry.Len == 0 || float64(entry.Len)*entry.Threshold > float64(fpLen) {
			continue
		}
		d := float64(overlap) / float64(entry.Len)
		if d < entry.Threshold {
			continue
		}
		sources = append(sources, disclosure.Source{Seg: cand, Disclosure: d, Threshold: entry.Threshold})
	}
	disclosure.SortSources(sources)
	if len(sources) > 0 {
		tags = make(map[segment.ID][]string, len(sources))
		for _, src := range sources {
			if t := cands[src.Seg].Tags; len(t) > 0 {
				tags[src.Seg] = t
			}
		}
		if len(tags) == 0 {
			tags = nil
		}
	}
	return sources, tags, maxClock
}

// ObserveSoleFPCtx is the partition-mode observation path for a
// single-partition ring: the same probe / query / resolved-apply cycle
// as a routed observation, collapsed in-process so it stays one round
// trip. Journalling still goes through resolved records, so a later
// split can replay this partition's WAL with deterministic sequence
// numbers (every record carries its Lamport stamp).
func (e *Engine) ObserveSoleFPCtx(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint, g segment.Granularity, clock uint64) (Verdict, error) {
	v, resolve, done, err := e.ObservePart(ctx, seg, service, fp, g, clock)
	if err != nil || done {
		return v, err
	}
	sources, tags, _ := MergeResolves(fp.Len(), seg, []PartResolve{resolve})
	return e.ObserveResolvedFPCtx(ctx, seg, service, fp, g, clock, sources, tags)
}

// ObserveResolvedFPCtx is phase 2 of a routed observation: it applies a
// router-merged disclosure result at the segment's home partition. The
// shadow upserts run before RefreshImplicit, so the implicit-label
// computation sees every source's explicit tags exactly as a shared
// registry would; clock is the router's Lamport stamp, floored into the
// index clock before the update so first-observation order across
// partitions matches a single shared clock.
func (e *Engine) ObserveResolvedFPCtx(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint, g segment.Granularity, clock uint64, sources []disclosure.Source, tags map[segment.ID][]string) (verdict Verdict, err error) {
	sp := obs.StartSpan(ctx, "engine.observe_resolved")
	if sp.Active() {
		sp.SetAttr("seg", string(seg))
		sp.SetAttr("hashes", strconv.Itoa(len(fp.Hashes())))
		defer func() { sp.End(err) }()
	}
	if end := e.begin(); end != nil {
		defer end()
	}
	clock = e.stampClock(g, clock)
	e.tracker.SetClockFloor(g, clock)
	if _, err := e.registry.ObserveSegment(seg, service); err != nil {
		return Verdict{}, err
	}
	e.applyShadowTags(tags)
	report := e.tracker.ObserveResolvedFP(seg, fp, g, sources)
	e.registry.RefreshImplicit(seg, report.SourceSegs())
	if err := e.journalObserveResolved(ctx, seg, service, g, fp.Hashes(), clock, sources, tags); err != nil {
		return Verdict{}, err
	}
	return e.verdictFor(seg, service, report.Sources, report.CacheHit)
}

// applyShadowTags mirrors foreign sources' explicit tags into the local
// registry (no audit entries — the mutations being mirrored were audited
// at their home partition).
func (e *Engine) applyShadowTags(tags map[segment.ID][]string) {
	for seg, names := range tags {
		ts := make([]tdm.Tag, len(names))
		for i, n := range names {
			ts[i] = tdm.Tag(n)
		}
		e.registry.UpsertExplicit(seg, ts)
	}
}

// CheckResolved evaluates an ad-hoc release check whose disclosure
// sources and implicit tag set were resolved by the routing tier — the
// checkSources enforcement body with the registry lookups replaced by the
// scatter-gathered tags.
func (e *Engine) CheckResolved(destService string, sources []disclosure.Source, implicit []string) (Verdict, error) {
	svc, err := e.registry.Service(destService)
	if err != nil {
		return Verdict{}, err
	}
	label := tdm.NewLabel()
	set := tdm.NewTagSet()
	for _, n := range implicit {
		set.Add(tdm.Tag(n))
	}
	label.SetImplicit(set)
	ok, violating := label.ReleasableTo(svc.Privilege)
	v := Verdict{Service: destService, Sources: sources}
	if ok {
		v.Decision = DecisionAllow
		return v, nil
	}
	v.Violating = violating
	v.Decision = e.violationDecision()
	return v, nil
}

// PruneRange removes every segment homed in the inclusive key range
// [lo, hi] from the tracker (labels stay: they are global shadow state),
// journalling the prune so recovery converges to the post-split image.
// This is the source partition's cleanup after a split moves the range to
// a new partition.
func (e *Engine) PruneRange(ctx context.Context, lo, hi uint32) (removed int, err error) {
	sp := obs.StartSpan(ctx, "engine.prune_range")
	if sp.Active() {
		defer func() { sp.End(err) }()
	}
	if end := e.begin(); end != nil {
		defer end()
	}
	removed = e.tracker.ForgetRange(lo, hi)
	if j := e.journalRef(); j != nil {
		if jerr := j.PruneRange(ctx, lo, hi); jerr != nil {
			return removed, journalErr(jerr)
		}
	}
	return removed, nil
}
