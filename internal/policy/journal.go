package policy

import (
	"context"
	"errors"
	"fmt"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// ErrJournal wraps failures to journal a state mutation to the write-ahead
// log. The in-memory mutation has already been applied when this is
// returned; callers running with a strict fsync policy should surface the
// error (503) rather than acknowledge a request whose durability is not
// guaranteed.
var ErrJournal = errors.New("policy: journal append failed")

// Journal records every state mutation the engine applies, so that a
// durability layer (internal/store's write-ahead log) can replay them
// after a crash. The engine stays storage-agnostic: it calls these typed
// hooks and never sees frames, segments or fsync policies.
//
// Ordering contract: the engine invokes the journal *after* the in-memory
// mutation succeeds and inside the bracket returned by Begin, so a
// checkpoint barrier taken by the implementation observes either
// (mutation + journal record) or neither.
type Journal interface {
	// Begin brackets one mutation + its journal appends; the engine calls
	// the returned function when the bracket ends. Implementations use it
	// as the read side of a checkpoint barrier. It must never be nil.
	Begin() (end func())

	// Observe records a singular fingerprint observation. ctx carries
	// the request's trace (internal/obs), which the implementation
	// journals alongside the record and times its WAL append against;
	// context.Background() is valid and disables both.
	Observe(ctx context.Context, seg segment.ID, service string, g segment.Granularity, hashes []uint32) error

	// ObserveBatch records a batched flush. Every item carries a
	// caller-computed fingerprint (the engine normalises text items).
	// ctx carries the request trace exactly as in Observe.
	ObserveBatch(ctx context.Context, service string, items []disclosure.BatchObservation) error

	// Suppress records an accepted tag suppression.
	Suppress(user string, seg segment.ID, tag tdm.Tag, justification string) error

	// AllocateTag records a custom tag allocation.
	AllocateTag(user string, tag tdm.Tag) error

	// AddSegmentTag records a custom tag being attached to a segment.
	AddSegmentTag(user string, seg segment.ID, tag tdm.Tag) error

	// GrantTag and RevokeTag record privilege-label changes.
	GrantTag(user, service string, tag tdm.Tag) error
	RevokeTag(user, service string, tag tdm.Tag) error

	// AuditAppend records audit entries exactly as stored (with their
	// original Seq and Time), so recovery can restore timestamps that
	// replaying the operation would otherwise regenerate.
	AuditAppend(entries []audit.Entry) error

	// ObserveResolved records a routed (partition-mode) observation whose
	// disclosure sources were resolved by the routing tier, together with
	// the router's Lamport stamp and the sources' explicit tags. Replaying
	// it applies the recorded result instead of re-running Algorithm 1,
	// whose inputs on one partition are only a slice of cluster state.
	ObserveResolved(ctx context.Context, seg segment.ID, service string, g segment.Granularity, hashes []uint32, clock uint64, sources []disclosure.Source, tags map[segment.ID][]string) error

	// PruneRange records the removal of a partition key range after a
	// split hands it to a new partition.
	PruneRange(ctx context.Context, lo, hi uint32) error
}

// SetJournal installs (or, with nil, disables) the durability journal.
// The swap itself is atomic, so replica promotion may install a journal
// on an engine already serving reads; callers that swap while *mutations*
// are in flight must externally quiesce writes first (the replication
// guard rejects them on non-primary roles), because a mutation reads the
// journal reference once per journalling step.
func (e *Engine) SetJournal(j Journal) { e.journal.Store(&journalBox{j: j}) }

// Journal returns the installed journal (nil when disabled).
func (e *Engine) Journal() Journal { return e.journalRef() }

// journalRef loads the current journal reference (nil when disabled).
func (e *Engine) journalRef() Journal {
	if b := e.journal.Load(); b != nil {
		return b.j
	}
	return nil
}

// begin opens the journal bracket; it returns nil when journalling is
// disabled.
func (e *Engine) begin() func() {
	if j := e.journalRef(); j != nil {
		return j.Begin()
	}
	return nil
}

// journalObserve records a singular observation.
func (e *Engine) journalObserve(ctx context.Context, seg segment.ID, service string, g segment.Granularity, hashes []uint32) error {
	j := e.journalRef()
	if j == nil {
		return nil
	}
	if err := j.Observe(ctx, seg, service, g, hashes); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// journalObserveResolved records a routed observation with pre-resolved
// sources.
func (e *Engine) journalObserveResolved(ctx context.Context, seg segment.ID, service string, g segment.Granularity, hashes []uint32, clock uint64, sources []disclosure.Source, tags map[segment.ID][]string) error {
	j := e.journalRef()
	if j == nil {
		return nil
	}
	if err := j.ObserveResolved(ctx, seg, service, g, hashes, clock, sources, tags); err != nil {
		return journalErr(err)
	}
	return nil
}

// journalErr wraps a journal failure in ErrJournal.
func journalErr(err error) error {
	return fmt.Errorf("%w: %v", ErrJournal, err)
}

// journalOp records a control operation plus whatever audit entries it
// appended (everything past auditFrom).
func (e *Engine) journalOp(auditFrom int, fn func(Journal) error) error {
	j := e.journalRef()
	if j == nil {
		return nil
	}
	if err := fn(j); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	if entries := e.registry.Audit().Since(auditFrom); len(entries) > 0 {
		if err := j.AuditAppend(entries); err != nil {
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	return nil
}

// Suppress declassifies a tag on a segment on the user's behalf (§3.1),
// journalling the suppression and its audit record. Handlers should route
// suppressions through this method rather than Registry().SuppressTag so
// that accepted declassifications survive a crash.
func (e *Engine) Suppress(user string, seg segment.ID, tag tdm.Tag, justification string) error {
	if end := e.begin(); end != nil {
		defer end()
	}
	before := e.registry.Audit().Len()
	if err := e.registry.SuppressTag(user, seg, tag, justification); err != nil {
		return err
	}
	return e.journalOp(before, func(j Journal) error {
		return j.Suppress(user, seg, tag, justification)
	})
}

// AllocateTag reserves a custom tag owned by user, journalled.
func (e *Engine) AllocateTag(user string, tag tdm.Tag) error {
	if end := e.begin(); end != nil {
		defer end()
	}
	before := e.registry.Audit().Len()
	if err := e.registry.AllocateTag(user, tag); err != nil {
		return err
	}
	return e.journalOp(before, func(j Journal) error {
		return j.AllocateTag(user, tag)
	})
}

// AddTagToSegment attaches an allocated custom tag to a segment,
// journalled.
func (e *Engine) AddTagToSegment(user string, seg segment.ID, tag tdm.Tag) error {
	if end := e.begin(); end != nil {
		defer end()
	}
	before := e.registry.Audit().Len()
	if err := e.registry.AddTagToSegment(user, seg, tag); err != nil {
		return err
	}
	return e.journalOp(before, func(j Journal) error {
		return j.AddSegmentTag(user, seg, tag)
	})
}

// GrantTag adds a custom tag to a service's privilege label, journalled.
func (e *Engine) GrantTag(user, service string, tag tdm.Tag) error {
	if end := e.begin(); end != nil {
		defer end()
	}
	before := e.registry.Audit().Len()
	if err := e.registry.GrantTag(user, service, tag); err != nil {
		return err
	}
	return e.journalOp(before, func(j Journal) error {
		return j.GrantTag(user, service, tag)
	})
}

// RevokeTag removes a custom tag from a service's privilege label,
// journalled.
func (e *Engine) RevokeTag(user, service string, tag tdm.Tag) error {
	if end := e.begin(); end != nil {
		defer end()
	}
	before := e.registry.Audit().Len()
	if err := e.registry.RevokeTag(user, service, tag); err != nil {
		return err
	}
	return e.journalOp(before, func(j Journal) error {
		return j.RevokeTag(user, service, tag)
	})
}
