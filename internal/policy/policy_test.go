package policy

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/tdm"
)

const guideline = "Interview guidelines: always have two interviewers present and record the candidate evaluation in the internal tool immediately."

// newEngine builds the paper's three-service world with small winnowing
// parameters suitable for short test texts.
func newEngine(t *testing.T, mode Mode) *Engine {
	t.Helper()
	params := disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	}
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: "itool", lp: tdm.NewTagSet("ti"), lc: tdm.NewTagSet("ti")},
		{name: "wiki", lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: "docs", lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := NewEngine(tracker, registry, mode)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestNewEngineValidation(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	if _, err := NewEngine(nil, e.Registry(), ModeAdvisory); err == nil {
		t.Error("nil tracker accepted")
	}
	if _, err := NewEngine(e.Tracker(), nil, ModeAdvisory); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := NewEngine(e.Tracker(), e.Registry(), Mode(0)); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestObserveEditAssignsLabelAndAllows(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	v, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("editing inside own service: decision=%v, want allow", v.Decision)
	}
	label := e.Registry().Label("wiki/doc#p0")
	if label == nil || !label.Explicit().Has("tw") {
		t.Errorf("label=%v, want explicit tw", label)
	}
}

// The paper's end-to-end flow: text created in the wiki is pasted into a
// Google Docs paragraph; while the paragraph discloses wiki text it gets a
// warning (red background), because its implicit tw is not in docs' Lp={}.
func TestPasteIntoUntrustedServiceWarns(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	if _, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline); err != nil {
		t.Fatal(err)
	}
	v, err := e.ObserveEdit("docs/new#p0", "docs", guideline)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionWarn {
		t.Fatalf("decision=%v, want warn", v.Decision)
	}
	if !v.Violation() || v.Violating[0] != "tw" {
		t.Errorf("violating=%v, want [tw]", v.Violating)
	}
	if len(v.Sources) == 0 || v.Sources[0].Seg != "wiki/doc#p0" {
		t.Errorf("sources=%v", v.Sources)
	}
}

func TestModeDecisions(t *testing.T) {
	tests := []struct {
		mode Mode
		want Decision
	}{
		{mode: ModeAdvisory, want: DecisionWarn},
		{mode: ModeEnforcing, want: DecisionBlock},
		{mode: ModeEncrypting, want: DecisionEncrypt},
	}
	for _, tt := range tests {
		t.Run(tt.mode.String(), func(t *testing.T) {
			e := newEngine(t, tt.mode)
			if _, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline); err != nil {
				t.Fatal(err)
			}
			v, err := e.ObserveEdit("docs/new#p0", "docs", guideline)
			if err != nil {
				t.Fatal(err)
			}
			if v.Decision != tt.want {
				t.Errorf("decision=%v, want %v", v.Decision, tt.want)
			}
		})
	}
}

func TestEditedAwayTextClearsWarning(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	if _, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ObserveEdit("docs/new#p0", "docs", guideline); err != nil {
		t.Fatal(err)
	}
	// The user rewrites the paragraph completely.
	rewritten := "A fully original shopping list: apples, pears, oranges, grapes, pineapples and a very large watermelon."
	v, err := e.ObserveEdit("docs/new#p0", "docs", rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("rewritten paragraph still flagged: %+v", v)
	}
	if label := e.Registry().Label("docs/new#p0"); label.Implicit().Len() != 0 {
		t.Errorf("implicit tags survived rewrite: %v", label)
	}
}

func TestCheckUploadTrackedSegment(t *testing.T) {
	e := newEngine(t, ModeEnforcing)
	if _, err := e.ObserveEdit("itool/eval#p0", "itool", guideline); err != nil {
		t.Fatal(err)
	}
	v, err := e.CheckUpload("itool/eval#p0", "wiki")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionBlock {
		t.Errorf("decision=%v, want block", v.Decision)
	}
	v, err = e.CheckUpload("itool/eval#p0", "itool")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("upload to own service: decision=%v, want allow", v.Decision)
	}
}

func TestCheckUploadUnknownService(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	if _, err := e.CheckUpload("x#p0", "ghost"); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestCheckTextFormPath(t *testing.T) {
	e := newEngine(t, ModeEnforcing)
	if _, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline); err != nil {
		t.Fatal(err)
	}
	// Submitting the wiki text through a docs form is blocked.
	v, err := e.CheckText(guideline, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionBlock {
		t.Errorf("decision=%v, want block", v.Decision)
	}
	if len(v.Sources) == 0 {
		t.Error("no sources attributed")
	}
	// Unrelated text passes.
	v, err = e.CheckText("Totally unrelated public announcement about the weather today.", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("decision=%v, want allow", v.Decision)
	}
	// CheckText must not have recorded anything.
	if got := e.Tracker().Paragraphs().Stats().Segments; got != 1 {
		t.Errorf("CheckText mutated tracker: %d segments", got)
	}
}

func TestCheckTextUnknownService(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	if _, err := e.CheckText("hello", "ghost"); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestSuppressionUnblocksUpload(t *testing.T) {
	e := newEngine(t, ModeEnforcing)
	if _, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ObserveEdit("docs/new#p0", "docs", guideline); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.CheckUpload("docs/new#p0", "docs"); v.Decision != DecisionBlock {
		t.Fatalf("precondition: upload should be blocked, got %v", v.Decision)
	}
	if err := e.Registry().SuppressTag("alice", "docs/new#p0", "tw", "approved by data owner"); err != nil {
		t.Fatal(err)
	}
	v, err := e.CheckUpload("docs/new#p0", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("decision after suppression=%v, want allow", v.Decision)
	}
}

// §3.1: "tag suppression is done on a case-by-case basis" — declassifying
// one destination copy does not declassify other copies of the same
// source.
func TestSuppressionIsPerDestination(t *testing.T) {
	e := newEngine(t, ModeEnforcing)
	if _, err := e.ObserveEdit("wiki/doc#p0", "wiki", guideline); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ObserveEdit("docs/a#p0", "docs", guideline); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().SuppressTag("alice", "docs/a#p0", "tw", "first copy approved"); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.CheckUpload("docs/a#p0", "docs"); v.Decision != DecisionAllow {
		t.Fatalf("suppressed copy still blocked: %v", v.Decision)
	}
	// A second copy of the same source is a fresh segment and is blocked
	// until its own suppression.
	if _, err := e.ObserveEdit("docs/b#p0", "docs", guideline); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.CheckUpload("docs/b#p0", "docs"); v.Decision != DecisionBlock {
		t.Errorf("second copy inherited the first copy's suppression: %v", v.Decision)
	}
}

func TestOverrideAudited(t *testing.T) {
	e := newEngine(t, ModeEnforcing)
	v := e.Override("alice", "docs/new#p0", "docs", "management sign-off")
	if v.Decision != DecisionAllow {
		t.Errorf("override decision=%v, want allow", v.Decision)
	}
	entries := e.Registry().Audit().ByUser("alice")
	if len(entries) != 1 || entries[0].Action != audit.ActionOverride {
		t.Errorf("audit=%+v", entries)
	}
}

func TestVerdictCacheHitPropagated(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	if _, err := e.ObserveEdit("docs/new#p0", "docs", guideline); err != nil {
		t.Fatal(err)
	}
	v, err := e.ObserveEdit("docs/new#p0", "docs", guideline)
	if err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit {
		t.Error("identical re-edit should be a cache hit")
	}
}

func TestDocumentGranularityEdit(t *testing.T) {
	e := newEngine(t, ModeAdvisory)
	doc := guideline + "\n\n" + strings.Repeat("Second paragraph with more operational details for interviews. ", 3)
	if _, err := e.ObserveDocumentEdit("wiki/doc", "wiki", doc); err != nil {
		t.Fatal(err)
	}
	v, err := e.ObserveDocumentEdit("docs/copy", "docs", doc)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionWarn {
		t.Errorf("document-level copy: decision=%v, want warn", v.Decision)
	}
	if v.Seg != "docs/copy" {
		t.Errorf("seg=%v", v.Seg)
	}
}

func TestStringers(t *testing.T) {
	if DecisionAllow.String() != "allow" || DecisionWarn.String() != "warn" ||
		DecisionBlock.String() != "block" || DecisionEncrypt.String() != "encrypt" {
		t.Error("Decision.String wrong")
	}
	if Decision(42).String() != "decision(42)" {
		t.Error("unknown decision string")
	}
	if ModeAdvisory.String() != "advisory" || ModeEnforcing.String() != "enforcing" ||
		ModeEncrypting.String() != "encrypting" {
		t.Error("Mode.String wrong")
	}
	if Mode(42).String() != "mode(42)" {
		t.Error("unknown mode string")
	}
}
