// Package policy combines the disclosure tracker (§4) with the Text
// Disclosure Model (§3) into the two modules of Figure 1:
//
//   - the policy *lookup* module extracts the security label associated with
//     a text segment that is about to be uploaded, using imprecise data flow
//     tracking to discover which origins the text discloses; and
//   - the policy *enforcement* module compares that label with the
//     destination service's privilege label and decides whether the upload
//     may proceed.
//
// BrowserFlow is advisory by design — most data disclosure happens by
// accident, so users keep the final decision — but the engine also supports
// enforcing and encrypting modes for stricter deployments.
package policy

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// Decision is the outcome of an enforcement check.
type Decision int

const (
	// DecisionAllow permits the upload unchanged.
	DecisionAllow Decision = iota + 1

	// DecisionWarn permits the upload but flags the violation to the user
	// (advisory mode: red paragraph background in the paper's plug-in).
	DecisionWarn

	// DecisionBlock prevents the upload.
	DecisionBlock

	// DecisionEncrypt permits the upload after encrypting the payload so
	// the untrusted service never sees plaintext.
	DecisionEncrypt
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionAllow:
		return "allow"
	case DecisionWarn:
		return "warn"
	case DecisionBlock:
		return "block"
	case DecisionEncrypt:
		return "encrypt"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// ParseDecision converts a decision's string form back to a Decision; it
// is used by remote clients deserialising verdicts.
func ParseDecision(s string) (Decision, error) {
	switch s {
	case "allow":
		return DecisionAllow, nil
	case "warn":
		return DecisionWarn, nil
	case "block":
		return DecisionBlock, nil
	case "encrypt":
		return DecisionEncrypt, nil
	default:
		return 0, fmt.Errorf("policy: unknown decision %q", s)
	}
}

// Mode selects what the enforcement module does on a violation.
type Mode int

const (
	// ModeAdvisory warns but never blocks (the paper's default posture).
	ModeAdvisory Mode = iota + 1

	// ModeEnforcing blocks violating uploads.
	ModeEnforcing

	// ModeEncrypting encrypts violating uploads before transmission.
	ModeEncrypting
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeAdvisory:
		return "advisory"
	case ModeEnforcing:
		return "enforcing"
	case ModeEncrypting:
		return "encrypting"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Verdict is the result of one policy evaluation.
type Verdict struct {
	// Decision is what the enforcement module chose.
	Decision Decision

	// Seg is the evaluated segment (empty for ad-hoc text checks).
	Seg segment.ID

	// Service is the destination service.
	Service string

	// Violating lists the tags that are not covered by the destination's
	// privilege label (empty when Decision is Allow).
	Violating []tdm.Tag

	// Sources are the origin segments the text was found to disclose.
	Sources []disclosure.Source

	// CacheHit reports whether the disclosure result came from the
	// decision cache.
	CacheHit bool

	// Degraded reports that the verdict was NOT computed by an engine:
	// the shared tag service was unreachable and a failover layer
	// substituted its mode's fail-open (allow) or fail-closed (block)
	// default. Degraded verdicts carry no disclosure evidence.
	Degraded bool
}

// Violation reports whether the evaluation found a policy violation
// (regardless of the mode's chosen decision).
func (v Verdict) Violation() bool { return len(v.Violating) > 0 }

// Engine wires the tracker and the registry together. It is safe for
// concurrent use.
type Engine struct {
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	mode     Mode

	// journal, when set, receives every state mutation for crash-safe
	// durability (see Journal and SetJournal in journal.go). It lives in
	// an atomic box so replica promotion can install a journal on an
	// engine that is already serving reads without a data race.
	journal atomic.Pointer[journalBox]
}

// journalBox wraps the interface so a nil journal is representable
// inside atomic.Pointer.
type journalBox struct{ j Journal }

// NewEngine returns an Engine in the given mode.
func NewEngine(tracker *disclosure.Tracker, registry *tdm.Registry, mode Mode) (*Engine, error) {
	if tracker == nil || registry == nil {
		return nil, fmt.Errorf("policy: tracker and registry are required")
	}
	switch mode {
	case ModeAdvisory, ModeEnforcing, ModeEncrypting:
	default:
		return nil, fmt.Errorf("policy: invalid mode %d", int(mode))
	}
	return &Engine{tracker: tracker, registry: registry, mode: mode}, nil
}

// Tracker returns the underlying disclosure tracker.
func (e *Engine) Tracker() *disclosure.Tracker { return e.tracker }

// Registry returns the underlying TDM registry.
func (e *Engine) Registry() *tdm.Registry { return e.registry }

// Mode returns the engine's enforcement mode.
func (e *Engine) Mode() Mode { return e.mode }

// ObserveEdit is the policy lookup path for a paragraph edit inside a
// service (a DOM mutation in the browser): it records the text, refreshes
// the segment's label from its current disclosure sources, and returns the
// verdict of uploading the text back to its *own* service — which flags the
// "red background" state while the user is still editing.
func (e *Engine) ObserveEdit(seg segment.ID, service, text string) (Verdict, error) {
	fp, err := e.tracker.Fingerprint(text)
	if err != nil {
		return Verdict{}, err
	}
	return e.ObserveEditFP(seg, service, fp)
}

// ObserveDocumentEdit records a whole-document observation (the second
// tracking granularity of §4.1).
func (e *Engine) ObserveDocumentEdit(doc segment.ID, service, text string) (Verdict, error) {
	fp, err := e.tracker.Fingerprint(text)
	if err != nil {
		return Verdict{}, err
	}
	return e.ObserveDocumentEditFP(doc, service, fp)
}

// ObserveEditFP is ObserveEdit for a fingerprint computed by the caller —
// remote (tag-server) clients keep text on-device and ship hashes only.
func (e *Engine) ObserveEditFP(seg segment.ID, service string, fp *fingerprint.Fingerprint) (Verdict, error) {
	return e.ObserveEditFPCtx(context.Background(), seg, service, fp)
}

// ObserveEditFPCtx is ObserveEditFP with a request context: when ctx
// carries a trace (internal/obs) the engine records an "engine.observe"
// span and the journal attributes the WAL append to the same trace.
func (e *Engine) ObserveEditFPCtx(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint) (verdict Verdict, err error) {
	sp := obs.StartSpan(ctx, "engine.observe")
	if sp.Active() {
		sp.SetAttr("seg", string(seg))
		sp.SetAttr("hashes", strconv.Itoa(len(fp.Hashes())))
		defer func() { sp.End(err) }()
	}
	if end := e.begin(); end != nil {
		defer end()
	}
	if _, err := e.registry.ObserveSegment(seg, service); err != nil {
		return Verdict{}, err
	}
	report, err := e.tracker.ObserveParagraphFP(seg, fp)
	if err != nil {
		return Verdict{}, err
	}
	e.registry.RefreshImplicit(seg, report.SourceSegs())
	if err := e.journalObserve(ctx, seg, service, segment.GranularityParagraph, fp.Hashes()); err != nil {
		return Verdict{}, err
	}
	return e.verdictFor(seg, service, report.Sources, report.CacheHit)
}

// ObserveDocumentEditFP is ObserveDocumentEdit for a caller-computed
// fingerprint.
func (e *Engine) ObserveDocumentEditFP(doc segment.ID, service string, fp *fingerprint.Fingerprint) (Verdict, error) {
	return e.ObserveDocumentEditFPCtx(context.Background(), doc, service, fp)
}

// ObserveDocumentEditFPCtx is ObserveDocumentEditFP with a request
// context carrying the trace, as in ObserveEditFPCtx.
func (e *Engine) ObserveDocumentEditFPCtx(ctx context.Context, doc segment.ID, service string, fp *fingerprint.Fingerprint) (verdict Verdict, err error) {
	sp := obs.StartSpan(ctx, "engine.observe_document")
	if sp.Active() {
		sp.SetAttr("seg", string(doc))
		sp.SetAttr("hashes", strconv.Itoa(len(fp.Hashes())))
		defer func() { sp.End(err) }()
	}
	if end := e.begin(); end != nil {
		defer end()
	}
	if _, err := e.registry.ObserveSegment(doc, service); err != nil {
		return Verdict{}, err
	}
	report, err := e.tracker.ObserveDocumentFP(doc, fp)
	if err != nil {
		return Verdict{}, err
	}
	e.registry.RefreshImplicit(doc, report.SourceSegs())
	if err := e.journalObserve(ctx, doc, service, segment.GranularityDocument, fp.Hashes()); err != nil {
		return Verdict{}, err
	}
	return e.verdictFor(doc, service, report.Sources, report.CacheHit)
}

// ObserveBatchFP is ObserveEditFP for a flush of coalesced edits: one
// registry/tracker pass per item with the tracker's batch fast path, one
// verdict per item (verdicts[i] corresponds to items[i]). Items are
// applied in order, exactly as the equivalent sequence of singular
// Observe*EditFP calls would be.
func (e *Engine) ObserveBatchFP(service string, items []disclosure.BatchObservation) ([]Verdict, error) {
	return e.ObserveBatchFPCtx(context.Background(), service, items)
}

// ObserveBatchFPCtx is ObserveBatchFP with a request context: when ctx
// carries a trace the engine records an "engine.observe_batch" span and
// the journal attributes the batched WAL append to the same trace.
func (e *Engine) ObserveBatchFPCtx(ctx context.Context, service string, items []disclosure.BatchObservation) (verdicts []Verdict, err error) {
	if len(items) == 0 {
		return nil, nil
	}
	sp := obs.StartSpan(ctx, "engine.observe_batch")
	if sp.Active() {
		sp.SetAttr("items", strconv.Itoa(len(items)))
		defer func() { sp.End(err) }()
	}
	if end := e.begin(); end != nil {
		defer end()
	}
	journal := e.journalRef()
	if journal != nil {
		// Normalise text items to caller-computed fingerprints so the
		// journal records hashes (never text — the same privacy posture
		// as the wire protocol, §4.4).
		for i := range items {
			if items[i].FP == nil {
				fp, err := e.tracker.Fingerprint(items[i].Text)
				if err != nil {
					return nil, err
				}
				items[i].FP = fp
				items[i].Text = ""
			}
		}
	}
	for _, item := range items {
		if _, err := e.registry.ObserveSegment(item.Seg, service); err != nil {
			return nil, err
		}
	}
	reports, err := e.tracker.ObserveBatch(items)
	if err != nil {
		return nil, err
	}
	if journal != nil {
		if err := journal.ObserveBatch(ctx, service, items); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	verdicts = make([]Verdict, len(reports))
	for i, report := range reports {
		e.registry.RefreshImplicit(report.Seg, report.SourceSegs())
		v, err := e.verdictFor(report.Seg, service, report.Sources, report.CacheHit)
		if err != nil {
			return nil, err
		}
		verdicts[i] = v
	}
	return verdicts, nil
}

// CheckFP is CheckText for a caller-computed fingerprint.
func (e *Engine) CheckFP(fp *fingerprint.Fingerprint, destService string) (Verdict, error) {
	sources := e.tracker.QueryParagraphFP(fp, "")
	return e.checkSources(sources, destService)
}

// checkSources evaluates ad-hoc content given its disclosure sources.
func (e *Engine) checkSources(sources []disclosure.Source, destService string) (Verdict, error) {
	svc, err := e.registry.Service(destService)
	if err != nil {
		return Verdict{}, err
	}
	label := tdm.NewLabel()
	implicit := tdm.NewTagSet()
	for _, src := range sources {
		if srcLabel := e.registry.Label(src.Seg); srcLabel != nil {
			implicit = implicit.Union(srcLabel.Explicit())
		}
	}
	label.SetImplicit(implicit)
	ok, violating := label.ReleasableTo(svc.Privilege)
	v := Verdict{Service: destService, Sources: sources}
	if ok {
		v.Decision = DecisionAllow
		return v, nil
	}
	v.Violating = violating
	v.Decision = e.violationDecision()
	return v, nil
}

// CheckUpload evaluates releasing an already tracked segment to a
// destination service — the enforcement path for intercepted requests.
func (e *Engine) CheckUpload(seg segment.ID, destService string) (Verdict, error) {
	return e.verdictFor(seg, destService, nil, false)
}

// CheckText evaluates ad-hoc text (e.g. a form field value) against a
// destination service without recording it as an observation. The text's
// label is the union of the explicit tags of the origins it discloses —
// exactly the implicit label a new destination segment would receive.
func (e *Engine) CheckText(text, destService string) (Verdict, error) {
	sources, err := e.tracker.QueryParagraph(text, "")
	if err != nil {
		return Verdict{}, err
	}
	return e.checkSources(sources, destService)
}

// Override records a user explicitly permitting a flagged upload
// (accountable declassification at the decision point). It returns the
// allow verdict.
func (e *Engine) Override(user string, seg segment.ID, destService, justification string) Verdict {
	if end := e.begin(); end != nil {
		defer end()
	}
	entry := e.registry.Audit().Append(audit.Entry{
		User:          user,
		Action:        audit.ActionOverride,
		Segment:       string(seg),
		Service:       destService,
		Justification: justification,
	})
	if j := e.journalRef(); j != nil {
		// Best effort: Override's signature carries no error. A failed
		// append leaves the entry in memory, and the next checkpoint
		// (which captures the audit log wholesale) persists it.
		_ = j.AuditAppend([]audit.Entry{entry})
	}
	return Verdict{Decision: DecisionAllow, Seg: seg, Service: destService}
}

func (e *Engine) verdictFor(seg segment.ID, service string, sources []disclosure.Source, cacheHit bool) (Verdict, error) {
	ok, violating, err := e.registry.CheckRelease(seg, service)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{
		Seg:      seg,
		Service:  service,
		Sources:  sources,
		CacheHit: cacheHit,
	}
	if ok {
		v.Decision = DecisionAllow
		return v, nil
	}
	v.Violating = violating
	v.Decision = e.violationDecision()
	return v, nil
}

func (e *Engine) violationDecision() Decision {
	switch e.mode {
	case ModeEnforcing:
		return DecisionBlock
	case ModeEncrypting:
		return DecisionEncrypt
	default:
		return DecisionWarn
	}
}
