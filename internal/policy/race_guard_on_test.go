//go:build race

package policy_test

const raceEnabled = true
