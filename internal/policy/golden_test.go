package policy_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/expt"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/policyfile"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// The policy golden suite holds the compiled bitset check path to its core
// contract: for the same seed web-app scenario scripts, an engine whose
// registry runs on a policyfile-compiled check table answers with bytes
// identical to the seed semilattice path. Sources are cross-checked
// against expt.SeedTracker, the reference Algorithm 1 engine, so a
// divergence in either layer is caught where it happens.

const (
	goldenWikiPlan   = "The 2027 acquisition plan targets Initech for three hundred million dollars pending diligence on their flux capacitor patents and the retention of their core engineering group."
	goldenWikiBudget = "Quarterly budget review: the platform group is over plan by twelve percent, driven by the new datacenter lease and unbudgeted compliance tooling for the audit."
	goldenIToolPerf  = "Performance review draft for the infrastructure team lead: exceeds expectations on incident response, needs development on cross-team communication and delegation."
	goldenDocsIntro  = "This public engineering blog post describes our migration to an incremental winnowing pipeline and the throughput lessons we learned along the way."
)

// goldenOp is one scripted engine call.
type goldenOp struct {
	kind    string // observe, check, upload, suppress, label
	service string
	seg     string
	text    string
	dest    string
	user    string
	tag     string
	why     string
	doc     bool
}

func goldenScripts() map[string][]goldenOp {
	return map[string][]goldenOp{
		// A user pastes confidential wiki content into a public docs page.
		"wiki-paste": {
			{kind: "observe", service: "wiki", seg: "wiki/acquisitions#p0", text: goldenWikiPlan},
			{kind: "observe", service: "wiki", seg: "wiki/budget#p0", text: goldenWikiBudget},
			{kind: "observe", service: "docs", seg: "docs/blog-draft#p0", text: goldenDocsIntro},
			{kind: "observe", service: "docs", seg: "docs/blog-draft#p1", text: goldenWikiPlan},
			{kind: "check", dest: "docs", text: goldenWikiPlan},
			{kind: "check", dest: "docs", text: goldenDocsIntro},
			{kind: "label", seg: "docs/blog-draft#p1"},
			{kind: "upload", seg: "docs/blog-draft#p1", dest: "docs"},
			{kind: "observe", service: "docs", seg: "docs/blog-draft#p1", text: goldenWikiPlan}, // decision cache hit
		},
		// An itool performance review copied into notes, then declassified.
		"itool-notes": {
			{kind: "observe", service: "itool", seg: "itool/reviews#p0", text: goldenIToolPerf},
			{kind: "observe", service: "notes", seg: "notes/todo#p0", text: goldenIToolPerf},
			{kind: "label", seg: "notes/todo#p0"},
			{kind: "upload", seg: "notes/todo#p0", dest: "notes"},
			{kind: "suppress", user: "alice", seg: "itool/reviews#p0", tag: "ti", why: "review published"},
			{kind: "label", seg: "itool/reviews#p0"},
			{kind: "upload", seg: "itool/reviews#p0", dest: "notes"},
		},
		// Document-granularity tracking across edits.
		"docs-edits": {
			{kind: "observe", service: "wiki", seg: "wiki/roadmap", text: goldenWikiPlan + " " + goldenWikiBudget, doc: true},
			{kind: "observe", service: "docs", seg: "docs/batch#p0", text: goldenDocsIntro, doc: true},
			{kind: "observe", service: "docs", seg: "docs/batch#p1", text: goldenWikiBudget, doc: true},
			{kind: "observe", service: "docs", seg: "docs/summary", text: goldenWikiPlan + " " + goldenDocsIntro, doc: true},
			{kind: "check", dest: "docs", text: goldenWikiBudget},
			{kind: "label", seg: "docs/summary"},
		},
	}
}

// loadSeedPolicy compiles the shipping seed-webapps fixture.
func loadSeedPolicy(t testing.TB) *policyfile.Compiled {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "policyfile", "testdata", "seed-webapps.json"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := policyfile.ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := policyfile.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newCompiledEngine builds an engine from the compiled policy. With
// bitset true the registry runs on the compiled check table; with false it
// walks the semilattice, the seed reference path.
func newCompiledEngine(t testing.TB, c *policyfile.Compiled, bitset bool) *policy.Engine {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.DefaultConfig(),
		Tpar:        c.Source.Tpar,
		Tdoc:        c.Source.Tdoc,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, rs := range c.Services {
		if err := registry.RegisterService(rs.Name, tdm.NewTagSet(rs.Privilege...), tdm.NewTagSet(rs.Confidentiality...)); err != nil {
			t.Fatal(err)
		}
	}
	if bitset {
		if err := registry.InstallCheckTable(c.Table); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, c.Source.PolicyMode())
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// playGolden executes one op and renders the outcome as bytes: the
// JSON-marshalled verdict (or error string), so any divergence — decision,
// violating tags, sources, cache bit — shows up in the comparison.
func playGolden(t *testing.T, e *policy.Engine, o goldenOp) string {
	t.Helper()
	render := func(v policy.Verdict, err error) string {
		if err != nil {
			return "err: " + err.Error()
		}
		b, merr := json.Marshal(v)
		if merr != nil {
			t.Fatal(merr)
		}
		return string(b)
	}
	switch o.kind {
	case "observe":
		if o.doc {
			return render(e.ObserveDocumentEdit(segment.ID(o.seg), o.service, o.text))
		}
		return render(e.ObserveEdit(segment.ID(o.seg), o.service, o.text))
	case "check":
		return render(e.CheckText(o.text, o.dest))
	case "upload":
		return render(e.CheckUpload(segment.ID(o.seg), o.dest))
	case "suppress":
		if err := e.Suppress(o.user, segment.ID(o.seg), tdm.Tag(o.tag), o.why); err != nil {
			return "err: " + err.Error()
		}
		return "suppressed"
	case "label":
		label := e.Registry().Label(segment.ID(o.seg))
		if label == nil {
			return "label: <none>"
		}
		return "label: " + label.String()
	default:
		t.Fatalf("unknown op kind %q", o.kind)
		return ""
	}
}

// TestGoldenBitsetVerdicts replays each scenario against the semilattice
// engine and the bitset engine, requiring byte-identical renderings at
// every step, and cross-checks observe attributions against the
// expt.SeedTracker reference.
func TestGoldenBitsetVerdicts(t *testing.T) {
	c := loadSeedPolicy(t)
	for name, script := range goldenScripts() {
		t.Run(name, func(t *testing.T) {
			slow := newCompiledEngine(t, c, false)
			fast := newCompiledEngine(t, c, true)
			if !fast.Registry().FastCheckEnabled() || slow.Registry().FastCheckEnabled() {
				t.Fatal("fixture engines mis-wired")
			}
			seed := expt.NewSeedTracker(disclosure.Params{
				Fingerprint: fingerprint.DefaultConfig(),
				Tpar:        c.Source.Tpar,
				Tdoc:        c.Source.Tdoc,
			})
			for i, o := range script {
				want := playGolden(t, slow, o)
				got := playGolden(t, fast, o)
				if got != want {
					t.Errorf("step %d (%s %s%s): bitset verdict diverged\nsemilattice: %q\nbitset:      %q",
						i, o.kind, o.seg, o.dest, want, got)
				}
				if o.kind != "observe" {
					continue
				}
				// Independent oracle: the seed reference tracker must
				// attribute the same sources the engines reported.
				g := segment.GranularityParagraph
				if o.doc {
					g = segment.GranularityDocument
				}
				report, err := seed.Observe(segment.ID(o.seg), o.text, g)
				if err != nil {
					t.Fatal(err)
				}
				var v policy.Verdict
				if err := json.Unmarshal([]byte(got), &v); err != nil {
					t.Fatalf("step %d: verdict rendering not JSON: %v", i, err)
				}
				if len(report.Sources) != len(v.Sources) {
					t.Fatalf("step %d: seed reference found %d sources, engines found %d (%v vs %v)",
						i, len(report.Sources), len(v.Sources), report.Sources, v.Sources)
				}
				for j := range report.Sources {
					if report.Sources[j].Seg != v.Sources[j].Seg {
						t.Errorf("step %d source %d: seed=%s engine=%s", i, j, report.Sources[j].Seg, v.Sources[j].Seg)
					}
				}
			}
		})
	}
}

// observeCacheHitAllocs measures the steady-state cache-hit ObserveEdit
// allocation count for one engine configuration.
func observeCacheHitAllocs(t *testing.T, bitset bool) float64 {
	t.Helper()
	c := loadSeedPolicy(t)
	e := newCompiledEngine(t, c, bitset)
	seg := segment.ID("wiki/steady#p0")
	// Warm up: label the segment, create the decision-cache entry, grow
	// the pooled scratch.
	for i := 0; i < 2; i++ {
		if _, err := e.ObserveEdit(seg, "wiki", goldenWikiPlan); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		v, err := e.ObserveEdit(seg, "wiki", goldenWikiPlan)
		if err != nil {
			t.Fatal(err)
		}
		if !v.CacheHit || v.Decision != policy.DecisionAllow {
			t.Fatalf("steady state broken: %+v", v)
		}
	})
}

// TestGoldenObserveCacheHitAllocs pins the tentpole's perf claim at the
// engine level: switching the release check from the semilattice walk to
// the compiled bitset table adds zero allocations to the cache-hit
// ObserveEdit path (it removes the Effective() set-algebra allocations, so
// the count must not go up, and in practice goes down).
func TestGoldenObserveCacheHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	slow := observeCacheHitAllocs(t, false)
	fast := observeCacheHitAllocs(t, true)
	t.Logf("cache-hit ObserveEdit allocs/op: semilattice=%.1f bitset=%.1f", slow, fast)
	if fast > slow {
		t.Errorf("bitset check added allocations to cache-hit ObserveEdit: %.1f -> %.1f", slow, fast)
	}
}

// TestGoldenCheckUploadAllocFree pins the pure release check — the
// interception path that carries no observe bookkeeping — at zero
// allocations on the allow outcome once the check table is installed.
func TestGoldenCheckUploadAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c := loadSeedPolicy(t)
	e := newCompiledEngine(t, c, true)
	seg := segment.ID("wiki/steady#p0")
	if _, err := e.ObserveEdit(seg, "wiki", goldenWikiPlan); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		v, err := e.CheckUpload(seg, "wiki")
		if err != nil || v.Decision != policy.DecisionAllow {
			t.Fatalf("v=%+v err=%v", v, err)
		}
	})
	if allocs != 0 {
		t.Errorf("bitset CheckUpload allocates %.1f objects/op, want 0", allocs)
	}
}
