package tdm

import "fmt"

// fastCheck is the registry's installed compiled-policy state: the tag
// interner fixing bit positions and one privilege bitset row per service.
// All fields are guarded by the registry lock. When fast is nil the
// registry answers CheckRelease from the TagSet semilattice exactly as it
// always did; when installed, the allow path of CheckRelease becomes a
// word-wise subset test with zero allocations.
type fastCheck struct {
	interner *Interner
	priv     map[string]Bits
}

// ErrTableMismatch reports a compiled check table whose rows disagree with
// the registry's live service labels — the policy artefact and the running
// state have diverged, and installing the table would change verdicts.
var ErrTableMismatch = fmt.Errorf("tdm: check table disagrees with registered services")

// InstallCheckTable switches the registry onto the compiled bitset fast
// path. The table's tag order seeds the interner (so policy hashes and bit
// positions are deterministic); privilege rows are then rebuilt from the
// *registered* services — the registry state stays authoritative — and
// every known label's effective bitset is computed eagerly. If the table
// carries a row for a registered service that disagrees with its live
// privilege label, installation fails with ErrTableMismatch: the caller is
// holding a stale compile.
//
// Tags first seen after installation (custom tag allocation, shadow
// labels) are interned on demand under the registry write lock, so the
// fast path keeps covering the whole tag universe.
func (r *Registry) InstallCheckTable(table *CheckTable) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	in := NewInterner()
	if table != nil {
		for _, t := range table.Tags {
			in.Intern(t)
		}
		for _, row := range table.Rows {
			svc, ok := r.services[row.Name]
			if !ok {
				continue
			}
			if !rowMatches(in, row.Priv, svc.Privilege) {
				return fmt.Errorf("%w: service %s", ErrTableMismatch, row.Name)
			}
		}
	}
	r.fast = &fastCheck{interner: in, priv: make(map[string]Bits, len(r.services))}
	for _, svc := range r.services {
		r.fastService(svc)
	}
	for _, label := range r.labels {
		r.fastRefresh(label)
	}
	return nil
}

// EnableFastCheck installs the bitset fast path without a compiled table,
// interning the tags of the currently registered services. Tests use it to
// compare the two check paths on registries built programmatically.
func (r *Registry) EnableFastCheck() {
	_ = r.InstallCheckTable(nil)
}

// FastCheckEnabled reports whether the compiled bitset path is installed.
func (r *Registry) FastCheckEnabled() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fast != nil
}

// rowMatches reports whether a compiled privilege row names exactly the
// tags of the live set.
func rowMatches(in *Interner, row Bits, live TagSet) bool {
	n := 0
	for t := range live {
		id, ok := in.ID(t)
		if !ok || !row.has(id) {
			return false
		}
		n++
	}
	// Every live tag is in the row; equal cardinality rules out extras.
	count := 0
	for _, w := range row {
		for ; w != 0; w &= w - 1 {
			count++
		}
	}
	return count == n
}

// fastService (re)builds one service's privilege bitset row. Caller holds
// the registry write lock.
func (r *Registry) fastService(svc *Service) {
	f := r.fast
	if f == nil {
		return
	}
	row := f.priv[svc.Name]
	row = row.reset()
	for t := range svc.Privilege {
		row = row.set(f.interner.Intern(t))
	}
	f.priv[svc.Name] = row
}

// fastRefresh recomputes one label's effective bitset in place, reusing
// its backing array. Caller holds the registry write lock. It is a no-op
// without an installed fast path — labels then stay effValid=false and
// CheckRelease uses the semilattice.
func (r *Registry) fastRefresh(label *Label) {
	f := r.fast
	if f == nil {
		return
	}
	label.eff = label.eff.reset()
	for t := range label.explicit {
		if !label.suppressed.Has(t) {
			label.eff = label.eff.set(f.interner.Intern(t))
		}
	}
	for t := range label.implicit {
		if !label.suppressed.Has(t) {
			label.eff = label.eff.set(f.interner.Intern(t))
		}
	}
	label.effValid = true
}
