package tdm

import (
	"strings"
	"testing"
)

func TestLabelEffective(t *testing.T) {
	l := NewLabel("ti")
	l.SetImplicit(NewTagSet("tw"))
	eff := l.Effective()
	if !eff.Has("ti") || !eff.Has("tw") || eff.Len() != 2 {
		t.Errorf("Effective=%v", eff)
	}
}

func TestLabelSuppression(t *testing.T) {
	l := NewLabel("ti")
	if !l.Suppress("ti") {
		t.Fatal("Suppress(ti) should succeed for attached tag")
	}
	if l.Effective().Has("ti") {
		t.Error("suppressed tag still effective")
	}
	// The suppressed tag remains attached for audit (§3.1).
	if !l.All().Has("ti") {
		t.Error("suppressed tag lost from All()")
	}
	l.Unsuppress("ti")
	if !l.Effective().Has("ti") {
		t.Error("Unsuppress did not restore the tag")
	}
}

func TestLabelSuppressAbsentTag(t *testing.T) {
	l := NewLabel("ti")
	if l.Suppress("tw") {
		t.Error("Suppress of absent tag should return false")
	}
	if l.Suppressed().Len() != 0 {
		t.Error("absent tag recorded as suppressed")
	}
}

func TestLabelSuppressImplicit(t *testing.T) {
	l := NewLabel()
	l.SetImplicit(NewTagSet("ti"))
	if !l.Suppress("ti") {
		t.Error("implicit tags must be suppressible")
	}
	if l.Effective().Has("ti") {
		t.Error("suppressed implicit tag still effective")
	}
}

func TestLabelReleasableTo(t *testing.T) {
	l := NewLabel("ti")
	ok, violating := l.ReleasableTo(NewTagSet("ti", "tw"))
	if !ok || violating != nil {
		t.Errorf("ReleasableTo superset: ok=%v violating=%v", ok, violating)
	}
	ok, violating = l.ReleasableTo(NewTagSet("tw"))
	if ok {
		t.Error("release should be denied")
	}
	if len(violating) != 1 || violating[0] != "ti" {
		t.Errorf("violating=%v, want [ti]", violating)
	}
}

func TestLabelReleasableToEmptyPrivilege(t *testing.T) {
	// Google Docs in the paper: Lp = {} — only unlabelled data may flow.
	googleDocs := NewTagSet()
	if ok, _ := NewLabel().ReleasableTo(googleDocs); !ok {
		t.Error("empty label should be releasable to empty Lp")
	}
	if ok, _ := NewLabel("ti").ReleasableTo(googleDocs); ok {
		t.Error("tagged label released to empty Lp")
	}
}

func TestLabelSetImplicitReplaces(t *testing.T) {
	l := NewLabel()
	l.SetImplicit(NewTagSet("old"))
	l.SetImplicit(NewTagSet("new"))
	if l.Implicit().Has("old") {
		t.Error("SetImplicit did not replace previous implicit tags")
	}
	if !l.Implicit().Has("new") {
		t.Error("SetImplicit lost the new tag")
	}
}

func TestLabelCloneIndependence(t *testing.T) {
	l := NewLabel("ti")
	c := l.Clone()
	c.AddExplicit("tw")
	c.Suppress("ti")
	if l.Explicit().Has("tw") {
		t.Error("clone shares explicit set")
	}
	if l.Suppressed().Has("ti") {
		t.Error("clone shares suppressed set")
	}
}

func TestLabelAccessorsCopy(t *testing.T) {
	l := NewLabel("ti")
	l.Explicit().Add("evil")
	if l.Explicit().Has("evil") {
		t.Error("Explicit() exposed internal set")
	}
}

func TestLabelRemoveExplicit(t *testing.T) {
	l := NewLabel("ti", "tw")
	l.RemoveExplicit("ti")
	if l.Explicit().Has("ti") {
		t.Error("RemoveExplicit failed")
	}
}

func TestLabelString(t *testing.T) {
	l := NewLabel("ti")
	l.SetImplicit(NewTagSet("tw"))
	l.Suppress("tw")
	got := l.String()
	if got == "" {
		t.Error("empty String")
	}
	// Sanity: mentions all three classes.
	for _, sub := range []string{"ti", "tw", "suppressed"} {
		if !strings.Contains(got, sub) {
			t.Errorf("String()=%q missing %q", got, sub)
		}
	}
}
