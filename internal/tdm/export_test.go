package tdm

import (
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

func TestRegistryExportImportRoundTrip(t *testing.T) {
	r := paperRegistry(t)
	seg := segment.ID("itool/eval#p0")
	if _, err := r.ObserveSegment(seg, "itool"); err != nil {
		t.Fatal(err)
	}
	r.RefreshImplicit(seg, nil)
	if err := r.AllocateTag("alice", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddTagToSegment("alice", seg, "tn"); err != nil {
		t.Fatal(err)
	}
	if err := r.SuppressTag("alice", seg, "tn", "test"); err != nil {
		t.Fatal(err)
	}

	data := r.Export()
	r2 := NewRegistry(nil)
	if err := r2.Import(data); err != nil {
		t.Fatal(err)
	}

	// Services restored.
	svc, err := r2.Service("itool")
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Privilege.Has("ti") || !svc.Privilege.Has("tn") {
		t.Errorf("itool privilege=%v", svc.Privilege)
	}
	// Label restored with suppression.
	label := r2.Label(seg)
	if label == nil || !label.Explicit().Has("tn") || !label.Suppressed().Has("tn") {
		t.Errorf("label=%v", label)
	}
	// Tag ownership restored.
	if owner, ok := r2.TagOwner("tn"); !ok || owner != "alice" {
		t.Errorf("owner=%q,%v", owner, ok)
	}
	// Storage restored.
	stored := r2.StoredBy(seg)
	if len(stored) != 1 || stored[0] != "itool" {
		t.Errorf("StoredBy=%v", stored)
	}
}

func TestRegistryExportDeterministic(t *testing.T) {
	r := paperRegistry(t)
	if _, err := r.ObserveSegment("wiki/a#p0", "wiki"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ObserveSegment("itool/b#p0", "itool"); err != nil {
		t.Fatal(err)
	}
	x, y := r.Export(), r.Export()
	if len(x.Labels) != len(y.Labels) || len(x.Services) != len(y.Services) {
		t.Fatal("size mismatch")
	}
	for i := range x.Labels {
		if x.Labels[i].Seg != y.Labels[i].Seg {
			t.Fatal("non-deterministic label order")
		}
	}
	for i := range x.Services {
		if x.Services[i].Name != y.Services[i].Name {
			t.Fatal("non-deterministic service order")
		}
	}
}
