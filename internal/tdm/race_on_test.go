//go:build race

package tdm

const raceEnabled = true
