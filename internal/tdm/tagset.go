// Package tdm implements BrowserFlow's Text Disclosure Model (§3): a
// decentralised label model in which cloud services carry a privilege label
// Lp and a confidentiality label Lc, text segments carry labels of tags
// (explicit and implicit), users may suppress tags (audited
// declassification) and allocate custom tags, and a segment with label Li
// may be released to a service iff Li ⊆ Lp once suppressed tags are ignored.
package tdm

import (
	"sort"
	"strings"
)

// Tag is a unique, human-readable string expressing a separate concern
// about data disclosure (e.g. "interview-data" or
// "product-announcement-x").
type Tag string

// TagSet is an immutable-by-convention set of tags; methods that modify
// return the receiver for chaining but callers exchanging sets across API
// boundaries use Clone.
type TagSet map[Tag]struct{}

// NewTagSet returns a TagSet holding the given tags.
func NewTagSet(tags ...Tag) TagSet {
	s := make(TagSet, len(tags))
	for _, t := range tags {
		s[t] = struct{}{}
	}
	return s
}

// Add inserts t.
func (s TagSet) Add(t Tag) TagSet {
	s[t] = struct{}{}
	return s
}

// Remove deletes t.
func (s TagSet) Remove(t Tag) TagSet {
	delete(s, t)
	return s
}

// Has reports membership.
func (s TagSet) Has(t Tag) bool {
	_, ok := s[t]
	return ok
}

// Len returns the cardinality.
func (s TagSet) Len() int { return len(s) }

// Clone returns an independent copy.
func (s TagSet) Clone() TagSet {
	out := make(TagSet, len(s))
	for t := range s {
		out[t] = struct{}{}
	}
	return out
}

// Union returns a new set with all tags from s and o.
func (s TagSet) Union(o TagSet) TagSet {
	out := s.Clone()
	for t := range o {
		out[t] = struct{}{}
	}
	return out
}

// Minus returns a new set with the tags of s not in o.
func (s TagSet) Minus(o TagSet) TagSet {
	out := make(TagSet)
	for t := range s {
		if !o.Has(t) {
			out[t] = struct{}{}
		}
	}
	return out
}

// SubsetOf reports whether every tag of s is in o — the Li ⊆ Lp check of
// §3.1.
func (s TagSet) SubsetOf(o TagSet) bool {
	for t := range s {
		if !o.Has(t) {
			return false
		}
	}
	return true
}

// Sorted returns the tags in lexical order.
func (s TagSet) Sorted() []Tag {
	out := make([]Tag, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as "{a, b, c}".
func (s TagSet) String() string {
	tags := s.Sorted()
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = string(t)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
