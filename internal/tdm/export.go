package tdm

import (
	"sort"

	"github.com/lsds/browserflow/internal/segment"
)

// ServiceRecord is the serialisable form of a service.
type ServiceRecord struct {
	Name            string `json:"name"`
	Privilege       []Tag  `json:"privilege"`
	Confidentiality []Tag  `json:"confidentiality"`
}

// LabelRecord is the serialisable form of a segment label.
type LabelRecord struct {
	Seg        segment.ID `json:"seg"`
	Explicit   []Tag      `json:"explicit"`
	Implicit   []Tag      `json:"implicit"`
	Suppressed []Tag      `json:"suppressed"`
	StoredBy   []string   `json:"storedBy"`
}

// TagRecord is the serialisable form of a custom tag allocation.
type TagRecord struct {
	Tag   Tag    `json:"tag"`
	Owner string `json:"owner"`
}

// ExportData is a complete serialisable snapshot of a Registry (the audit
// log is persisted separately).
type ExportData struct {
	Services []ServiceRecord `json:"services"`
	Labels   []LabelRecord   `json:"labels"`
	Tags     []TagRecord     `json:"tags"`
}

// Export snapshots the registry deterministically.
func (r *Registry) Export() ExportData {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var data ExportData
	for _, svc := range r.services {
		data.Services = append(data.Services, ServiceRecord{
			Name:            svc.Name,
			Privilege:       svc.Privilege.Sorted(),
			Confidentiality: svc.Confidentiality.Sorted(),
		})
	}
	sort.Slice(data.Services, func(i, j int) bool { return data.Services[i].Name < data.Services[j].Name })

	for seg, label := range r.labels {
		rec := LabelRecord{
			Seg:        seg,
			Explicit:   label.explicit.Sorted(),
			Implicit:   label.implicit.Sorted(),
			Suppressed: label.suppressed.Sorted(),
		}
		for svc := range r.stored[seg] {
			rec.StoredBy = append(rec.StoredBy, svc)
		}
		sort.Strings(rec.StoredBy)
		data.Labels = append(data.Labels, rec)
	}
	sort.Slice(data.Labels, func(i, j int) bool { return data.Labels[i].Seg < data.Labels[j].Seg })

	for tag, owner := range r.tagOwners {
		data.Tags = append(data.Tags, TagRecord{Tag: tag, Owner: owner})
	}
	sort.Slice(data.Tags, func(i, j int) bool { return data.Tags[i].Tag < data.Tags[j].Tag })
	return data
}

// Import replaces the registry's contents with a previously exported
// snapshot. The audit log is untouched.
func (r *Registry) Import(data ExportData) error {
	services := make(map[string]*Service, len(data.Services))
	for _, rec := range data.Services {
		services[rec.Name] = &Service{
			Name:            rec.Name,
			Privilege:       NewTagSet(rec.Privilege...),
			Confidentiality: NewTagSet(rec.Confidentiality...),
		}
	}
	labels := make(map[segment.ID]*Label, len(data.Labels))
	stored := make(map[segment.ID]map[string]bool, len(data.Labels))
	for _, rec := range data.Labels {
		label := NewLabel(rec.Explicit...)
		label.SetImplicit(NewTagSet(rec.Implicit...))
		for _, t := range rec.Suppressed {
			label.suppressed.Add(t)
		}
		labels[rec.Seg] = label
		if len(rec.StoredBy) > 0 {
			stored[rec.Seg] = make(map[string]bool, len(rec.StoredBy))
			for _, svc := range rec.StoredBy {
				stored[rec.Seg][svc] = true
			}
		}
	}
	tagOwners := make(map[Tag]string, len(data.Tags))
	for _, rec := range data.Tags {
		tagOwners[rec.Tag] = rec.Owner
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.services = services
	r.labels = labels
	r.stored = stored
	r.tagOwners = tagOwners
	// The compiled fast path, if installed, is derived state: rebuild the
	// privilege rows and effective bitsets for the imported world. The row
	// map is replaced wholesale so services absent from the snapshot do
	// not leave stale rows behind.
	if f := r.fast; f != nil {
		f.priv = make(map[string]Bits, len(r.services))
		for _, svc := range r.services {
			r.fastService(svc)
		}
		for _, label := range r.labels {
			r.fastRefresh(label)
		}
	}
	return nil
}
