package tdm

import (
	"errors"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/segment"
)

// paperRegistry builds the service configuration of Figure 3: Interview
// Tool with {ti}/{ti}, Wiki with {tw}/{tw}, Google Docs with {}/{}.
func paperRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(nil)
	mustRegister(t, r, "itool", NewTagSet("ti"), NewTagSet("ti"))
	mustRegister(t, r, "wiki", NewTagSet("tw"), NewTagSet("tw"))
	mustRegister(t, r, "docs", NewTagSet(), NewTagSet())
	return r
}

func mustRegister(t *testing.T, r *Registry, name string, lp, lc TagSet) {
	t.Helper()
	if err := r.RegisterService(name, lp, lc); err != nil {
		t.Fatalf("RegisterService(%s): %v", name, err)
	}
}

func TestRegisterServiceDuplicate(t *testing.T) {
	r := paperRegistry(t)
	err := r.RegisterService("wiki", NewTagSet(), NewTagSet())
	if !errors.Is(err, ErrServiceExists) {
		t.Errorf("err=%v, want ErrServiceExists", err)
	}
}

func TestServiceLookup(t *testing.T) {
	r := paperRegistry(t)
	svc, err := r.Service("itool")
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Privilege.Has("ti") || !svc.Confidentiality.Has("ti") {
		t.Errorf("itool labels wrong: %+v", svc)
	}
	if _, err := r.Service("ghost"); !errors.Is(err, ErrServiceUnknown) {
		t.Errorf("err=%v, want ErrServiceUnknown", err)
	}
	// Returned copies do not alias registry state.
	svc.Privilege.Add("evil")
	svc2, _ := r.Service("itool")
	if svc2.Privilege.Has("evil") {
		t.Error("Service() exposed internal state")
	}
}

func TestServicesSorted(t *testing.T) {
	r := paperRegistry(t)
	svcs := r.Services()
	if len(svcs) != 3 {
		t.Fatalf("len=%d, want 3", len(svcs))
	}
	want := []string{"docs", "itool", "wiki"}
	for i, w := range want {
		if svcs[i].Name != w {
			t.Errorf("svcs[%d]=%q, want %q", i, svcs[i].Name, w)
		}
	}
}

// Figure 3 step 1–2: text created in the Interview Tool gets {ti}; it may
// not flow to the Wiki because {ti} ⊄ {tw}.
func TestFigure3DefaultAssignmentAndBlock(t *testing.T) {
	r := paperRegistry(t)
	seg := segment.ID("itool/eval#p0")
	label, err := r.ObserveSegment(seg, "itool")
	if err != nil {
		t.Fatal(err)
	}
	if !label.Explicit().Has("ti") {
		t.Errorf("default assignment failed: %v", label)
	}
	ok, violating, err := r.CheckRelease(seg, "wiki")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("interview data released to wiki")
	}
	if len(violating) != 1 || violating[0] != "ti" {
		t.Errorf("violating=%v, want [ti]", violating)
	}
}

// Figure 3 step 3: Google Docs text is public (Lc={}) and flows to the Wiki.
func TestFigure3PublicDataFlows(t *testing.T) {
	r := paperRegistry(t)
	seg := segment.ID("docs/shared#p0")
	if _, err := r.ObserveSegment(seg, "docs"); err != nil {
		t.Fatal(err)
	}
	ok, violating, err := r.CheckRelease(seg, "wiki")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("public data blocked: violating=%v", violating)
	}
}

// Figure 4: suppressing ti permits the upload and leaves an audit trail.
func TestFigure4Suppression(t *testing.T) {
	log := audit.NewLog()
	r := NewRegistry(log)
	mustRegister(t, r, "itool", NewTagSet("ti"), NewTagSet("ti"))
	mustRegister(t, r, "wiki", NewTagSet("tw"), NewTagSet("tw"))

	seg := segment.ID("itool/eval#p0")
	if _, err := r.ObserveSegment(seg, "itool"); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := r.CheckRelease(seg, "wiki"); ok {
		t.Fatal("release should be blocked before suppression")
	}
	if err := r.SuppressTag("alice", seg, "ti", "sharing summary with team"); err != nil {
		t.Fatal(err)
	}
	if ok, violating, _ := r.CheckRelease(seg, "wiki"); !ok {
		t.Errorf("release still blocked after suppression: %v", violating)
	}
	// The suppressed tag remains attached.
	if !r.Label(seg).All().Has("ti") {
		t.Error("suppressed tag lost from label")
	}
	entries := log.ByUser("alice")
	if len(entries) != 1 || entries[0].Action != audit.ActionSuppress ||
		entries[0].Tag != "ti" || entries[0].Justification == "" {
		t.Errorf("audit entries=%+v", entries)
	}
}

func TestSuppressErrors(t *testing.T) {
	r := paperRegistry(t)
	if err := r.SuppressTag("alice", "unknown#p0", "ti", "x"); !errors.Is(err, ErrTagNotOnSegment) {
		t.Errorf("unknown segment: err=%v", err)
	}
	seg := segment.ID("wiki/a#p0")
	if _, err := r.ObserveSegment(seg, "wiki"); err != nil {
		t.Fatal(err)
	}
	if err := r.SuppressTag("alice", seg, "ti", "x"); !errors.Is(err, ErrTagNotOnSegment) {
		t.Errorf("absent tag: err=%v", err)
	}
}

// Figure 5: custom tag tn restricts propagation even when the service
// privilege labels would otherwise allow it.
func TestFigure5CustomTags(t *testing.T) {
	r := NewRegistry(nil)
	// Administrator permits wiki data in the Interview Tool.
	mustRegister(t, r, "itool", NewTagSet("ti", "tw"), NewTagSet("ti"))
	mustRegister(t, r, "wiki", NewTagSet("tw"), NewTagSet("tw"))

	seg := segment.ID("wiki/secret#p0")
	if _, err := r.ObserveSegment(seg, "wiki"); err != nil {
		t.Fatal(err)
	}
	// Without tn, wiki text may flow to itool.
	if ok, _, _ := r.CheckRelease(seg, "itool"); !ok {
		t.Fatal("precondition: wiki -> itool should be allowed")
	}
	// Step 1: user allocates tn and adds it to the segment.
	if err := r.AllocateTag("alice", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddTagToSegment("alice", seg, "tn"); err != nil {
		t.Fatal(err)
	}
	// Step 2: the Wiki already stores the segment, so its Lp gains tn
	// automatically and the segment can still live there.
	wiki, _ := r.Service("wiki")
	if !wiki.Privilege.Has("tn") {
		t.Error("wiki Lp not auto-updated with tn")
	}
	if ok, _, _ := r.CheckRelease(seg, "wiki"); !ok {
		t.Error("segment blocked from its own storing service")
	}
	// Step 3: itool does not have tn, so the flow is now blocked.
	if ok, violating, _ := r.CheckRelease(seg, "itool"); ok {
		t.Error("custom tag failed to block itool")
	} else if len(violating) != 1 || violating[0] != "tn" {
		t.Errorf("violating=%v, want [tn]", violating)
	}
	// Owner can grant itool the tag explicitly.
	if err := r.GrantTag("alice", "itool", "tn"); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := r.CheckRelease(seg, "itool"); !ok {
		t.Error("grant did not unblock itool")
	}
	// And revoke it again.
	if err := r.RevokeTag("alice", "itool", "tn"); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := r.CheckRelease(seg, "itool"); ok {
		t.Error("revoke did not re-block itool")
	}
}

func TestCustomTagOwnership(t *testing.T) {
	r := paperRegistry(t)
	if err := r.AllocateTag("alice", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := r.AllocateTag("bob", "tn"); !errors.Is(err, ErrTagExists) {
		t.Errorf("duplicate allocate: err=%v", err)
	}
	if owner, ok := r.TagOwner("tn"); !ok || owner != "alice" {
		t.Errorf("TagOwner=%q,%v", owner, ok)
	}
	if err := r.GrantTag("bob", "wiki", "tn"); !errors.Is(err, ErrNotTagOwner) {
		t.Errorf("non-owner grant: err=%v", err)
	}
	if err := r.GrantTag("alice", "ghost", "tn"); !errors.Is(err, ErrServiceUnknown) {
		t.Errorf("unknown service: err=%v", err)
	}
	if err := r.GrantTag("alice", "wiki", "unallocated"); !errors.Is(err, ErrTagUnknown) {
		t.Errorf("unknown tag: err=%v", err)
	}
	seg := segment.ID("wiki/x#p0")
	if _, err := r.ObserveSegment(seg, "wiki"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddTagToSegment("bob", seg, "tn"); !errors.Is(err, ErrNotTagOwner) {
		t.Errorf("non-owner AddTagToSegment: err=%v", err)
	}
}

// Figure 6: implicit tags prevent propagation of outdated tags. B disclosed
// from A and carries ti implicitly; text copied from B to C only inherits
// B's *explicit* tw.
func TestFigure6ImplicitTagsDoNotPropagate(t *testing.T) {
	r := NewRegistry(nil)
	mustRegister(t, r, "itool", NewTagSet("ti", "tw"), NewTagSet("ti"))
	mustRegister(t, r, "wiki", NewTagSet("tw", "ti"), NewTagSet("tw"))
	mustRegister(t, r, "docs", NewTagSet("tw"), NewTagSet())

	segA := segment.ID("itool/A#p0")
	segB := segment.ID("wiki/B#p0")
	segC := segment.ID("docs/C#p0")
	if _, err := r.ObserveSegment(segA, "itool"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ObserveSegment(segB, "wiki"); err != nil {
		t.Fatal(err)
	}

	// Step 1: B is found to disclose from A -> B gains implicit ti.
	r.RefreshImplicit(segB, []segment.ID{segA})
	labelB := r.Label(segB)
	if !labelB.Implicit().Has("ti") || !labelB.Explicit().Has("tw") {
		t.Fatalf("labelB=%v, want explicit {tw} implicit {ti}", labelB)
	}
	// While B discloses A's text it may not flow to docs (Lp={tw}).
	if ok, _, _ := r.CheckRelease(segB, "docs"); ok {
		t.Error("B with implicit ti released to docs")
	}

	// Step 3: C discloses from B only. Implicit tags of B must not
	// propagate: C gets implicit {tw}, not {ti, tw}.
	if _, err := r.ObserveSegment(segC, "docs"); err != nil {
		t.Fatal(err)
	}
	r.RefreshImplicit(segC, []segment.ID{segB})
	labelC := r.Label(segC)
	if labelC.Implicit().Has("ti") {
		t.Error("outdated ti propagated to C — Figure 6 false positive")
	}
	if !labelC.Implicit().Has("tw") {
		t.Error("C should carry implicit tw from B")
	}
	// C is therefore releasable to docs (Lp={tw}).
	if ok, violating, _ := r.CheckRelease(segC, "docs"); !ok {
		t.Errorf("C blocked from docs: %v", violating)
	}
}

func TestRefreshImplicitReplacesOldSources(t *testing.T) {
	r := paperRegistry(t)
	segA := segment.ID("itool/A#p0")
	segB := segment.ID("wiki/B#p0")
	if _, err := r.ObserveSegment(segA, "itool"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ObserveSegment(segB, "wiki"); err != nil {
		t.Fatal(err)
	}
	r.RefreshImplicit(segB, []segment.ID{segA})
	if !r.Label(segB).Implicit().Has("ti") {
		t.Fatal("implicit ti missing")
	}
	// B edited away from A: disclosure sources now empty.
	r.RefreshImplicit(segB, nil)
	if r.Label(segB).Implicit().Has("ti") {
		t.Error("stale implicit tag survived refresh with no sources")
	}
}

func TestRefreshImplicitExcludesOwnExplicit(t *testing.T) {
	r := paperRegistry(t)
	segA := segment.ID("wiki/A#p0")
	segB := segment.ID("wiki/B#p0")
	if _, err := r.ObserveSegment(segA, "wiki"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ObserveSegment(segB, "wiki"); err != nil {
		t.Fatal(err)
	}
	r.RefreshImplicit(segB, []segment.ID{segA})
	// tw is already explicit on B; it must not be duplicated as implicit.
	if r.Label(segB).Implicit().Has("tw") {
		t.Error("own explicit tag duplicated as implicit")
	}
}

func TestCheckReleaseUnknownSegment(t *testing.T) {
	r := paperRegistry(t)
	ok, violating, err := r.CheckRelease("never-seen#p0", "docs")
	if err != nil || !ok || violating != nil {
		t.Errorf("unknown segment: ok=%v violating=%v err=%v", ok, violating, err)
	}
	if _, _, err := r.CheckRelease("x", "ghost"); !errors.Is(err, ErrServiceUnknown) {
		t.Errorf("unknown service: err=%v", err)
	}
}

func TestObserveSegmentKeepsExistingLabel(t *testing.T) {
	r := paperRegistry(t)
	seg := segment.ID("itool/eval#p0")
	if _, err := r.ObserveSegment(seg, "itool"); err != nil {
		t.Fatal(err)
	}
	// Re-observing in another service records storage but keeps the label.
	label, err := r.ObserveSegment(seg, "wiki")
	if err != nil {
		t.Fatal(err)
	}
	if !label.Explicit().Has("ti") || label.Explicit().Has("tw") {
		t.Errorf("label changed on re-observe: %v", label)
	}
	stored := r.StoredBy(seg)
	if len(stored) != 2 || stored[0] != "itool" || stored[1] != "wiki" {
		t.Errorf("StoredBy=%v", stored)
	}
}

func TestObserveSegmentUnknownService(t *testing.T) {
	r := paperRegistry(t)
	if _, err := r.ObserveSegment("x#p0", "ghost"); !errors.Is(err, ErrServiceUnknown) {
		t.Errorf("err=%v, want ErrServiceUnknown", err)
	}
}

func TestAuditTrailForTagLifecycle(t *testing.T) {
	log := audit.NewLog()
	r := NewRegistry(log)
	mustRegister(t, r, "wiki", NewTagSet("tw"), NewTagSet("tw"))
	if err := r.AllocateTag("alice", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := r.GrantTag("alice", "wiki", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := r.RevokeTag("alice", "wiki", "tn"); err != nil {
		t.Fatal(err)
	}
	actions := []audit.Action{}
	for _, e := range log.Entries() {
		actions = append(actions, e.Action)
	}
	want := []audit.Action{audit.ActionAllocate, audit.ActionGrant, audit.ActionRevoke}
	if len(actions) != len(want) {
		t.Fatalf("actions=%v, want %v", actions, want)
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Errorf("actions[%d]=%v, want %v", i, actions[i], want[i])
		}
	}
}
