//go:build !race

package tdm

// raceEnabled reports whether the race detector is active. Allocation
// regression tests skip under -race: instrumentation changes allocation
// behaviour in ways that are not regressions.
const raceEnabled = false
