package tdm

// Compiled label-check tables: the policy compiler interns every tag that
// appears in a policy document to a small dense integer and flattens each
// service's privilege label into a row of uint64 words. The §3.1 release
// condition effective(label) ⊆ Lp then becomes a handful of word-wise
// AND-NOT comparisons instead of a walk over the TagSet semilattice — and,
// unlike the map-backed path, it allocates nothing on the (overwhelmingly
// common) allow outcome. Tags first seen at runtime (custom tag
// allocation, shadow labels from other partitions) are interned on demand
// under the registry write lock, so the table keeps covering the whole
// universe as it grows.

// Bits is a dense bitset over interned tag IDs. The zero value is an empty
// set. Word lengths may differ between two Bits values; missing high words
// are treated as zero.
type Bits []uint64

// set grows b as needed and sets bit id. It returns the (possibly
// reallocated) bitset.
func (b Bits) set(id int) Bits {
	word := id >> 6
	for word >= len(b) {
		b = append(b, 0)
	}
	b[word] |= 1 << (uint(id) & 63)
	return b
}

// clear clears bit id if present.
func (b Bits) clear(id int) {
	word := id >> 6
	if word < len(b) {
		b[word] &^= 1 << (uint(id) & 63)
	}
}

// has reports whether bit id is set.
func (b Bits) has(id int) bool {
	word := id >> 6
	return word < len(b) && b[word]&(1<<(uint(id)&63)) != 0
}

// reset zeroes every word in place, keeping capacity (the hot-path
// recompute reuses the backing array).
func (b Bits) reset() Bits {
	for i := range b {
		b[i] = 0
	}
	return b
}

// SubsetOf reports whether every bit of b is set in o, tolerating
// different word lengths on either side. It performs no allocation.
func (b Bits) SubsetOf(o Bits) bool {
	for i, w := range b {
		if w == 0 {
			continue
		}
		if i >= len(o) || w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (b Bits) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	if len(b) == 0 {
		return nil
	}
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Interner assigns dense integer IDs to tags. It is not safe for
// concurrent use on its own; the Registry guards its interner with the
// registry lock.
type Interner struct {
	ids   map[Tag]int
	names []Tag
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Tag]int)}
}

// Intern returns t's ID, assigning the next free one on first sight.
func (in *Interner) Intern(t Tag) int {
	if id, ok := in.ids[t]; ok {
		return id
	}
	id := len(in.names)
	in.ids[t] = id
	in.names = append(in.names, t)
	return id
}

// ID returns t's ID without interning.
func (in *Interner) ID(t Tag) (int, bool) {
	id, ok := in.ids[t]
	return id, ok
}

// Len returns the number of interned tags.
func (in *Interner) Len() int { return len(in.names) }

// Name returns the tag with the given ID.
func (in *Interner) Name(id int) Tag { return in.names[id] }

// CheckRow is one service's compiled label pair.
type CheckRow struct {
	// Name identifies the service.
	Name string

	// Priv is the service's privilege label Lp as a bitset row.
	Priv Bits

	// Conf is the service's confidentiality label Lc as a bitset row.
	Conf Bits
}

// CheckTable is the compiled form of a policy document: an interner fixing
// tag IDs plus one dense privilege/confidentiality row per service. Build
// one with policyfile.Compile and install it with
// (*Registry).InstallCheckTable.
type CheckTable struct {
	// Tags is the interned tag universe; Tags[i] has ID i.
	Tags []Tag

	// Rows holds one compiled row per service, sorted by name.
	Rows []CheckRow
}

// NewCheckTable builds a table over the given tag order. Rows are added
// with AddRow.
func NewCheckTable(tags []Tag) *CheckTable {
	return &CheckTable{Tags: append([]Tag(nil), tags...)}
}

// AddRow appends a compiled service row built from tag sets.
func (ct *CheckTable) AddRow(name string, priv, conf []Tag) error {
	ids := make(map[Tag]int, len(ct.Tags))
	for i, t := range ct.Tags {
		ids[t] = i
	}
	row := CheckRow{Name: name}
	for _, t := range priv {
		id, ok := ids[t]
		if !ok {
			return errUnknownTableTag(t)
		}
		row.Priv = row.Priv.set(id)
	}
	for _, t := range conf {
		id, ok := ids[t]
		if !ok {
			return errUnknownTableTag(t)
		}
		row.Conf = row.Conf.set(id)
	}
	ct.Rows = append(ct.Rows, row)
	return nil
}

type errUnknownTableTag Tag

func (e errUnknownTableTag) Error() string {
	return "tdm: check table row references un-interned tag " + string(e)
}
