package tdm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/segment"
)

// Common registry errors, exported so callers can match with errors.Is.
var (
	ErrServiceExists   = errors.New("tdm: service already registered")
	ErrServiceUnknown  = errors.New("tdm: unknown service")
	ErrTagExists       = errors.New("tdm: tag already allocated")
	ErrTagUnknown      = errors.New("tdm: tag not allocated")
	ErrNotTagOwner     = errors.New("tdm: user does not own tag")
	ErrTagNotOnSegment = errors.New("tdm: tag not attached to segment")
)

// Service is a cloud service with its TDM label pair (§3.1): the privilege
// label Lp marks the highest level of confidential data the service is
// trusted to receive; the confidentiality label Lc is the default
// confidentiality of data created within it.
type Service struct {
	// Name identifies the service ("wiki", "itool", "docs").
	Name string

	// Privilege is Lp.
	Privilege TagSet

	// Confidentiality is Lc.
	Confidentiality TagSet
}

// Registry holds the enterprise-wide TDM state: services, segment labels,
// custom tag ownership, and which services store which segments. It is safe
// for concurrent use.
type Registry struct {
	mu sync.RWMutex

	services  map[string]*Service
	labels    map[segment.ID]*Label
	tagOwners map[Tag]string
	stored    map[segment.ID]map[string]bool

	// fast, when installed, is the compiled bitset check state (see
	// fastcheck.go). nil keeps the original semilattice-only behaviour.
	fast *fastCheck

	auditLog *audit.Log
}

// NewRegistry returns an empty Registry writing to auditLog. A nil auditLog
// creates a private one.
func NewRegistry(auditLog *audit.Log) *Registry {
	if auditLog == nil {
		auditLog = audit.NewLog()
	}
	return &Registry{
		services:  make(map[string]*Service),
		labels:    make(map[segment.ID]*Label),
		tagOwners: make(map[Tag]string),
		stored:    make(map[segment.ID]map[string]bool),
		auditLog:  auditLog,
	}
}

// Audit returns the registry's audit log.
func (r *Registry) Audit() *audit.Log { return r.auditLog }

// RegisterService adds a service with its label pair. The administrator
// performs this once per service.
func (r *Registry) RegisterService(name string, lp, lc TagSet) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[name]; ok {
		return fmt.Errorf("%w: %s", ErrServiceExists, name)
	}
	svc := &Service{
		Name:            name,
		Privilege:       lp.Clone(),
		Confidentiality: lc.Clone(),
	}
	r.services[name] = svc
	r.fastService(svc)
	return nil
}

// Service returns a copy of the named service.
func (r *Registry) Service(name string) (Service, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svc, ok := r.services[name]
	if !ok {
		return Service{}, fmt.Errorf("%w: %s", ErrServiceUnknown, name)
	}
	return Service{
		Name:            svc.Name,
		Privilege:       svc.Privilege.Clone(),
		Confidentiality: svc.Confidentiality.Clone(),
	}, nil
}

// Services returns copies of all registered services, sorted by name.
func (r *Registry) Services() []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Service, 0, len(r.services))
	for _, svc := range r.services {
		out = append(out, Service{
			Name:            svc.Name,
			Privilege:       svc.Privilege.Clone(),
			Confidentiality: svc.Confidentiality.Clone(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ObserveSegment records that seg is stored by service and, if the segment
// has no label yet, assigns it the service's confidentiality label Lc as
// explicit tags (default tag assignment, §3.1). It returns a copy of the
// segment's label.
func (r *Registry) ObserveSegment(seg segment.ID, service string) (*Label, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	svc, ok := r.services[service]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrServiceUnknown, service)
	}
	if r.stored[seg] == nil {
		r.stored[seg] = make(map[string]bool)
	}
	r.stored[seg][service] = true

	label, ok := r.labels[seg]
	if !ok {
		label = NewLabel()
		for t := range svc.Confidentiality {
			label.AddExplicit(t)
		}
		r.labels[seg] = label
		r.fastRefresh(label)
	}
	return label.Clone(), nil
}

// UpsertExplicit replaces seg's explicit tag set, creating the label if
// absent and preserving implicit and suppressed tags. This is the shadow
// label mechanism of the partitioned cluster: when a routed observation
// resolves disclosure sources homed on other partitions, their explicit
// tags ride along in the reply and are mirrored here so the subsequent
// RefreshImplicit sees the same source labels a single shared registry
// would. Deliberately not audited — every mutation being mirrored was
// already audited at the source segment's home partition.
func (r *Registry) UpsertExplicit(seg segment.ID, tags []Tag) {
	r.mu.Lock()
	defer r.mu.Unlock()
	label, ok := r.labels[seg]
	if !ok {
		label = NewLabel()
		r.labels[seg] = label
	}
	label.explicit = NewTagSet(tags...)
	label.effValid = false
	r.fastRefresh(label)
}

// Label returns a copy of seg's label, or nil if the segment is unknown.
func (r *Registry) Label(seg segment.ID) *Label {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if label, ok := r.labels[seg]; ok {
		return label.Clone()
	}
	return nil
}

// RefreshImplicit replaces seg's implicit tags with the union of the
// *explicit* tags of its current disclosure sources (§3.2). Implicit tags of
// the sources are deliberately not copied — a segment that merely disclosed
// information in the past is not the authoritative origin, which is what
// stops outdated tags from propagating (Figure 6).
func (r *Registry) RefreshImplicit(seg segment.ID, sources []segment.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	label, ok := r.labels[seg]
	if !ok {
		label = NewLabel()
		r.labels[seg] = label
	}
	implicit := NewTagSet()
	for _, src := range sources {
		if srcLabel, ok := r.labels[src]; ok {
			implicit = implicit.Union(srcLabel.Explicit())
		}
	}
	// The segment's own explicit tags need not be duplicated as implicit.
	label.SetImplicit(implicit.Minus(label.Explicit()))
	r.fastRefresh(label)
}

// CheckRelease evaluates the §3.1 release condition for seg towards
// service: effective(label) ⊆ Lp. Unknown segments (never observed) carry
// the empty label and are releasable anywhere.
func (r *Registry) CheckRelease(seg segment.ID, service string) (ok bool, violating []Tag, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svc, found := r.services[service]
	if !found {
		return false, nil, fmt.Errorf("%w: %s", ErrServiceUnknown, service)
	}
	label, found := r.labels[seg]
	if !found {
		return true, nil, nil
	}
	// Compiled fast path: a word-wise subset test over the interned-tag
	// bitsets, allocation-free on the allow outcome. A violation falls
	// through to the semilattice, which names the violating tags in the
	// exact bytes the slow path always produced.
	if f := r.fast; f != nil && label.effValid {
		if priv, rowOK := f.priv[service]; rowOK && label.eff.SubsetOf(priv) {
			return true, nil, nil
		}
	}
	ok, violating = label.ReleasableTo(svc.Privilege)
	return ok, violating, nil
}

// SuppressTag declassifies tag on seg for this propagation (§3.1 "User tag
// suppression"). The suppression is recorded in the audit trail with the
// user and justification. Suppression is case-by-case: it applies to this
// destination segment only, and copying the same source again to a new
// destination requires a fresh suppression.
func (r *Registry) SuppressTag(user string, seg segment.ID, tag Tag, justification string) error {
	r.mu.Lock()
	label, ok := r.labels[seg]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrTagNotOnSegment, tag, seg)
	}
	if !label.Suppress(tag) {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrTagNotOnSegment, tag, seg)
	}
	r.fastRefresh(label)
	r.mu.Unlock()

	r.auditLog.Append(audit.Entry{
		User:          user,
		Action:        audit.ActionSuppress,
		Tag:           string(tag),
		Segment:       string(seg),
		Justification: justification,
	})
	return nil
}

// AllocateTag reserves a new custom tag owned by user (§3.1 "Custom tag
// allocation").
func (r *Registry) AllocateTag(user string, tag Tag) error {
	r.mu.Lock()
	if _, ok := r.tagOwners[tag]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTagExists, tag)
	}
	r.tagOwners[tag] = user
	r.mu.Unlock()

	r.auditLog.Append(audit.Entry{
		User:   user,
		Action: audit.ActionAllocate,
		Tag:    string(tag),
	})
	return nil
}

// TagOwner returns the user that allocated tag.
func (r *Registry) TagOwner(tag Tag) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner, ok := r.tagOwners[tag]
	return owner, ok
}

// AddTagToSegment attaches a previously allocated custom tag to seg's
// explicit label. Per §3.1, every service that *already stores* the segment
// automatically receives the tag in its privilege label, so that the TDM
// does not restrict propagation of text those services already hold
// (Figure 5, step 4).
func (r *Registry) AddTagToSegment(user string, seg segment.ID, tag Tag) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.tagOwners[tag]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTagUnknown, tag)
	}
	if owner != user {
		return fmt.Errorf("%w: %s owned by %s", ErrNotTagOwner, tag, owner)
	}
	label, ok := r.labels[seg]
	if !ok {
		label = NewLabel()
		r.labels[seg] = label
	}
	label.AddExplicit(tag)
	r.fastRefresh(label)
	for svcName := range r.stored[seg] {
		if svc, ok := r.services[svcName]; ok {
			svc.Privilege.Add(tag)
			r.fastService(svc)
		}
	}
	return nil
}

// GrantTag adds a custom tag to a service's privilege label. Only the tag's
// owner controls which services may process data protected with it.
func (r *Registry) GrantTag(user string, service string, tag Tag) error {
	if err := r.mutatePrivilege(user, service, tag, true); err != nil {
		return err
	}
	r.auditLog.Append(audit.Entry{
		User:    user,
		Action:  audit.ActionGrant,
		Tag:     string(tag),
		Service: service,
	})
	return nil
}

// RevokeTag removes a custom tag from a service's privilege label.
func (r *Registry) RevokeTag(user string, service string, tag Tag) error {
	if err := r.mutatePrivilege(user, service, tag, false); err != nil {
		return err
	}
	r.auditLog.Append(audit.Entry{
		User:    user,
		Action:  audit.ActionRevoke,
		Tag:     string(tag),
		Service: service,
	})
	return nil
}

func (r *Registry) mutatePrivilege(user, service string, tag Tag, add bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.tagOwners[tag]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTagUnknown, tag)
	}
	if owner != user {
		return fmt.Errorf("%w: %s owned by %s", ErrNotTagOwner, tag, owner)
	}
	svc, ok := r.services[service]
	if !ok {
		return fmt.Errorf("%w: %s", ErrServiceUnknown, service)
	}
	if add {
		svc.Privilege.Add(tag)
	} else {
		svc.Privilege.Remove(tag)
	}
	r.fastService(svc)
	return nil
}

// StoredBy returns the names of the services currently storing seg, sorted.
func (r *Registry) StoredBy(seg segment.ID) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.stored[seg]))
	for svc := range r.stored[seg] {
		out = append(out, svc)
	}
	sort.Strings(out)
	return out
}
