package tdm

import (
	"testing"
	"testing/quick"
)

func TestTagSetBasics(t *testing.T) {
	s := NewTagSet("ti", "tw")
	if !s.Has("ti") || !s.Has("tw") || s.Has("tn") {
		t.Error("membership wrong after NewTagSet")
	}
	if s.Len() != 2 {
		t.Errorf("Len=%d, want 2", s.Len())
	}
	s.Add("tn")
	if !s.Has("tn") {
		t.Error("Add failed")
	}
	s.Remove("ti")
	if s.Has("ti") {
		t.Error("Remove failed")
	}
}

func TestTagSetSubset(t *testing.T) {
	tests := []struct {
		name string
		a, b TagSet
		want bool
	}{
		{name: "empty subset of empty", a: NewTagSet(), b: NewTagSet(), want: true},
		{name: "empty subset of any", a: NewTagSet(), b: NewTagSet("x"), want: true},
		{name: "equal sets", a: NewTagSet("x", "y"), b: NewTagSet("y", "x"), want: true},
		{name: "proper subset", a: NewTagSet("x"), b: NewTagSet("x", "y"), want: true},
		{name: "paper example ti not in tw", a: NewTagSet("ti"), b: NewTagSet("tw"), want: false},
		{name: "superset not subset", a: NewTagSet("x", "y"), b: NewTagSet("x"), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.SubsetOf(tt.b); got != tt.want {
				t.Errorf("SubsetOf=%v, want %v", got, tt.want)
			}
		})
	}
}

func TestTagSetUnionMinus(t *testing.T) {
	a := NewTagSet("x", "y")
	b := NewTagSet("y", "z")
	u := a.Union(b)
	if u.Len() != 3 || !u.Has("x") || !u.Has("y") || !u.Has("z") {
		t.Errorf("Union=%v", u)
	}
	m := a.Minus(b)
	if m.Len() != 1 || !m.Has("x") {
		t.Errorf("Minus=%v", m)
	}
	// Union/Minus must not alias the receivers.
	u.Add("w")
	if a.Has("w") || b.Has("w") {
		t.Error("Union aliased its inputs")
	}
}

func TestTagSetCloneIndependent(t *testing.T) {
	a := NewTagSet("x")
	c := a.Clone()
	c.Add("y")
	if a.Has("y") {
		t.Error("Clone aliases original")
	}
}

func TestTagSetSortedAndString(t *testing.T) {
	s := NewTagSet("zeta", "alpha", "mid")
	sorted := s.Sorted()
	want := []Tag{"alpha", "mid", "zeta"}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("Sorted=%v, want %v", sorted, want)
		}
	}
	if got := s.String(); got != "{alpha, mid, zeta}" {
		t.Errorf("String=%q", got)
	}
	if got := NewTagSet().String(); got != "{}" {
		t.Errorf("empty String=%q", got)
	}
}

// Property: subset relation is reflexive and transitive over random sets.
func TestQuickSubsetLaws(t *testing.T) {
	mk := func(xs []uint8) TagSet {
		s := NewTagSet()
		for _, x := range xs {
			s.Add(Tag(string(rune('a' + x%8))))
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		if !a.SubsetOf(a) {
			return false
		}
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u) && a.Minus(b).SubsetOf(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
