package tdm

import (
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

func TestBitsSetHasClear(t *testing.T) {
	var b Bits
	for _, id := range []int{0, 1, 63, 64, 65, 200} {
		b = b.set(id)
		if !b.has(id) {
			t.Errorf("bit %d not set", id)
		}
	}
	if b.has(2) || b.has(199) {
		t.Error("unset bit reads set")
	}
	b.clear(64)
	if b.has(64) {
		t.Error("cleared bit still set")
	}
	b.clear(100000) // out of range: no-op, no panic
	if b.Empty() {
		t.Error("non-empty bitset reads empty")
	}
	if !b.reset().Empty() {
		t.Error("reset bitset not empty")
	}
}

func TestBitsSubsetOf(t *testing.T) {
	mk := func(ids ...int) Bits {
		var b Bits
		for _, id := range ids {
			b = b.set(id)
		}
		return b
	}
	tests := []struct {
		a, b Bits
		want bool
	}{
		{nil, nil, true},
		{nil, mk(1), true},
		{mk(1), nil, false},
		{mk(1, 64), mk(1, 64, 200), true},
		{mk(1, 200), mk(1, 64), false},
		// Longer-but-zero high words on the left are still a subset.
		{mk(200).reset().set(1), mk(1), true},
	}
	for i, tt := range tests {
		if got := tt.a.SubsetOf(tt.b); got != tt.want {
			t.Errorf("case %d: SubsetOf=%v want %v", i, got, tt.want)
		}
	}
}

func TestBitsClone(t *testing.T) {
	b := Bits{}.set(3)
	c := b.Clone()
	c.clear(3)
	if !b.has(3) {
		t.Error("clone aliases original")
	}
	if Bits(nil).Clone() != nil {
		t.Error("nil clone not nil")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("ta")
	if got := in.Intern("ta"); got != a {
		t.Errorf("re-intern moved id: %d vs %d", got, a)
	}
	b := in.Intern("tb")
	if a == b {
		t.Error("distinct tags share an id")
	}
	if in.Len() != 2 || in.Name(a) != "ta" || in.Name(b) != "tb" {
		t.Errorf("interner state: len=%d", in.Len())
	}
	if _, ok := in.ID("tc"); ok {
		t.Error("ID invented an id")
	}
}

func TestCheckTableAddRow(t *testing.T) {
	ct := NewCheckTable([]Tag{"ta", "tb"})
	if err := ct.AddRow("svc", []Tag{"ta"}, []Tag{"tb"}); err != nil {
		t.Fatal(err)
	}
	if err := ct.AddRow("bad", []Tag{"tz"}, nil); err == nil {
		t.Error("un-interned tag accepted")
	}
}

// newFastRegistry builds the wiki/itool/docs registry used across the
// fast-path tests, with the bitset path installed.
func newFastRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(nil)
	for _, svc := range []struct {
		name   string
		lp, lc []Tag
	}{
		{"wiki", []Tag{"tw"}, []Tag{"tw"}},
		{"itool", []Tag{"ti"}, []Tag{"ti"}},
		{"docs", nil, nil},
	} {
		if err := r.RegisterService(svc.name, NewTagSet(svc.lp...), NewTagSet(svc.lc...)); err != nil {
			t.Fatal(err)
		}
	}
	r.EnableFastCheck()
	return r
}

// TestFastCheckMatchesSemilattice drives both check paths through every
// label mutation the registry exposes and requires identical verdicts.
func TestFastCheckMatchesSemilattice(t *testing.T) {
	fast := newFastRegistry(t)
	slow := NewRegistry(nil)
	for _, svc := range fast.Services() {
		if err := slow.RegisterService(svc.Name, svc.Privilege, svc.Confidentiality); err != nil {
			t.Fatal(err)
		}
	}

	type regOp func(r *Registry) error
	ops := []regOp{
		func(r *Registry) error { _, err := r.ObserveSegment("s1", "wiki"); return err },
		func(r *Registry) error { _, err := r.ObserveSegment("s2", "itool"); return err },
		func(r *Registry) error { _, err := r.ObserveSegment("s3", "docs"); return err },
		func(r *Registry) error { r.RefreshImplicit("s3", []segment.ID{"s1", "s2"}); return nil },
		func(r *Registry) error { return r.AllocateTag("alice", "custom.alice.x") },
		func(r *Registry) error { return r.AddTagToSegment("alice", "s1", "custom.alice.x") },
		func(r *Registry) error { return r.GrantTag("alice", "docs", "custom.alice.x") },
		func(r *Registry) error {
			return r.SuppressTag("alice", "s3", "tw", "reviewed: public figures only")
		},
		func(r *Registry) error { return r.RevokeTag("alice", "docs", "custom.alice.x") },
		func(r *Registry) error { r.UpsertExplicit("s4", []Tag{"tw", "ti"}); return nil },
	}
	check := func(step int) {
		t.Helper()
		for _, seg := range []segment.ID{"s1", "s2", "s3", "s4"} {
			for _, svc := range []string{"wiki", "itool", "docs"} {
				fok, fviol, ferr := fast.CheckRelease(seg, svc)
				sok, sviol, serr := slow.CheckRelease(seg, svc)
				if fok != sok || (ferr == nil) != (serr == nil) || len(fviol) != len(sviol) {
					t.Fatalf("step %d %s->%s: fast=(%v,%v,%v) slow=(%v,%v,%v)",
						step, seg, svc, fok, fviol, ferr, sok, sviol, serr)
				}
				for i := range fviol {
					if fviol[i] != sviol[i] {
						t.Fatalf("step %d %s->%s: violating %v vs %v", step, seg, svc, fviol, sviol)
					}
				}
			}
		}
	}
	for i, op := range ops {
		if err := op(fast); err != nil {
			t.Fatal(err)
		}
		if err := op(slow); err != nil {
			t.Fatal(err)
		}
		check(i)
	}
}

// TestFastCheckSurvivesImport rebuilds the fast state on snapshot import.
func TestFastCheckSurvivesImport(t *testing.T) {
	r := newFastRegistry(t)
	if _, err := r.ObserveSegment("s1", "wiki"); err != nil {
		t.Fatal(err)
	}
	snap := r.Export()

	r2 := newFastRegistry(t)
	if _, err := r2.ObserveSegment("junk", "itool"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Import(snap); err != nil {
		t.Fatal(err)
	}
	if !r2.FastCheckEnabled() {
		t.Fatal("import dropped the fast path")
	}
	ok, _, err := r2.CheckRelease("s1", "wiki")
	if err != nil || !ok {
		t.Fatalf("wiki->wiki after import: ok=%v err=%v", ok, err)
	}
	ok, violating, err := r2.CheckRelease("s1", "itool")
	if err != nil || ok || len(violating) != 1 || violating[0] != "tw" {
		t.Fatalf("wiki->itool after import: ok=%v violating=%v err=%v", ok, violating, err)
	}
}

// TestLabelMutationOutsideRegistryFallsBack: a label touched through its
// own methods (not the registry's) must invalidate the cached bitset so
// the next CheckRelease answers from the semilattice, never a stale row.
func TestLabelMutationOutsideRegistryFallsBack(t *testing.T) {
	r := newFastRegistry(t)
	if _, err := r.ObserveSegment("s1", "wiki"); err != nil {
		t.Fatal(err)
	}
	// Reach past the registry API, as in-package callers holding the live
	// label could. The cached bitset says "releasable to wiki"; the
	// mutation must invalidate it so the verdict comes from the semilattice.
	r.mu.Lock()
	live := r.labels["s1"]
	r.mu.Unlock()
	live.AddExplicit("ti")
	if live.effValid {
		t.Fatal("direct mutation left the cached bitset valid")
	}
	ok, violating, err := r.CheckRelease("s1", "wiki")
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(violating) != 1 || violating[0] != "ti" {
		t.Fatalf("stale verdict served: ok=%v violating=%v", ok, violating)
	}
	// Clones never carry a valid cache: they escape the registry lock.
	if r.Label("s1").effValid {
		t.Error("cloned label carries a valid cache")
	}
}

// TestCheckReleaseAllocFree pins the fast-path allow verdict at zero
// allocations: the whole point of the compiled table is that the hot
// cache-hit path stops paying for map iteration.
func TestCheckReleaseAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation behaviour differs under -race")
	}
	r := newFastRegistry(t)
	if _, err := r.ObserveSegment("s1", "wiki"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ok, _, err := r.CheckRelease("s1", "wiki")
		if !ok || err != nil {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Errorf("fast-path CheckRelease allocs=%v, want 0", allocs)
	}
}
