package tdm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lsds/browserflow/internal/segment"
)

// Property-based invariants of the Text Disclosure Model, in the spirit of
// the DIFC lattice properties the paper's label model inherits (§3.1).

// randomTags draws a small tag universe so collisions are frequent.
func randomTags(rng *rand.Rand, max int) []Tag {
	n := rng.Intn(max + 1)
	out := make([]Tag, n)
	for i := range out {
		out[i] = Tag(string(rune('a' + rng.Intn(6))))
	}
	return out
}

// Invariant: growing a privilege label never revokes releasability.
func TestQuickReleaseMonotoneInPrivilege(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		label := NewLabel(randomTags(rng, 4)...)
		label.SetImplicit(NewTagSet(randomTags(rng, 3)...))
		lp := NewTagSet(randomTags(rng, 4)...)
		okBefore, _ := label.ReleasableTo(lp)
		// Grow Lp by one tag.
		grown := lp.Clone().Add(Tag(string(rune('a' + rng.Intn(6)))))
		okAfter, _ := label.ReleasableTo(grown)
		return !okBefore || okAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Invariant: suppression only ever widens releasability.
func TestQuickSuppressionWidens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		label := NewLabel(randomTags(rng, 4)...)
		label.SetImplicit(NewTagSet(randomTags(rng, 3)...))
		lp := NewTagSet(randomTags(rng, 3)...)
		okBefore, _ := label.ReleasableTo(lp)
		for _, tag := range label.All().Sorted() {
			label.Suppress(tag)
			okAfter, _ := label.ReleasableTo(lp)
			if okBefore && !okAfter {
				return false
			}
			okBefore = okAfter
		}
		// Fully suppressed labels are releasable anywhere.
		okFinal, _ := label.ReleasableTo(NewTagSet())
		return okFinal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Invariant: adding an explicit (custom) tag only ever narrows
// releasability.
func TestQuickCustomTagNarrows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		label := NewLabel(randomTags(rng, 3)...)
		lp := NewTagSet(randomTags(rng, 4)...)
		okBefore, _ := label.ReleasableTo(lp)
		label.AddExplicit("zz-custom")
		okAfter, _ := label.ReleasableTo(lp)
		// Narrowing: anything blocked stays blocked; newly added tag can
		// only block further.
		return okBefore || !okAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Invariant: Effective is always a subset of All, and suppression removes
// from Effective without removing from All.
func TestQuickEffectiveSubsetOfAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		label := NewLabel(randomTags(rng, 4)...)
		label.SetImplicit(NewTagSet(randomTags(rng, 4)...))
		for _, tag := range randomTags(rng, 3) {
			label.Suppress(tag)
		}
		if !label.Effective().SubsetOf(label.All()) {
			return false
		}
		for _, s := range label.Suppressed().Sorted() {
			if label.Effective().Has(s) {
				return false
			}
			if !label.All().Has(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Invariant: RefreshImplicit is idempotent for a fixed source set.
func TestQuickRefreshImplicitIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRegistry(nil)
		if err := r.RegisterService("s", NewTagSet(randomTags(rng, 3)...), NewTagSet(randomTags(rng, 3)...)); err != nil {
			return false
		}
		if _, err := r.ObserveSegment("s/a#p0", "s"); err != nil {
			return false
		}
		if _, err := r.ObserveSegment("s/b#p0", "s"); err != nil {
			return false
		}
		sources := []segment.ID{"s/a#p0"}
		r.RefreshImplicit("s/b#p0", sources)
		first := r.Label("s/b#p0").Implicit().String()
		r.RefreshImplicit("s/b#p0", sources)
		second := r.Label("s/b#p0").Implicit().String()
		return first == second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
