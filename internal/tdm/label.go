package tdm

// Label is a text segment label (§3.1–3.2). It splits into:
//
//   - explicit tags: assigned by default from the confidentiality label Lc
//     of the service where the segment was first observed, plus custom tags
//     added by users;
//   - implicit tags: tags copied from source segments when the segment was
//     found to disclose their information. Implicit tags mark the segment
//     as *not* the authoritative source and do not propagate further;
//   - suppressed tags: tags a user has declassified for this segment. They
//     are ignored in subset comparisons but remain attached for audit.
type Label struct {
	explicit   TagSet
	implicit   TagSet
	suppressed TagSet

	// eff caches Effective() as a bitset over the owning registry's
	// interner (the compiled check-table fast path). Registry mutators
	// recompute it eagerly under the registry write lock; every Label
	// mutator invalidates it so a label touched outside the registry can
	// never serve a stale verdict — CheckRelease falls back to the
	// semilattice when effValid is false.
	eff      Bits
	effValid bool
}

// NewLabel returns a Label with the given explicit tags.
func NewLabel(explicit ...Tag) *Label {
	return &Label{
		explicit:   NewTagSet(explicit...),
		implicit:   NewTagSet(),
		suppressed: NewTagSet(),
	}
}

// Explicit returns a copy of the explicit tags.
func (l *Label) Explicit() TagSet { return l.explicit.Clone() }

// Implicit returns a copy of the implicit tags.
func (l *Label) Implicit() TagSet { return l.implicit.Clone() }

// Suppressed returns a copy of the suppressed tags.
func (l *Label) Suppressed() TagSet { return l.suppressed.Clone() }

// AddExplicit adds a tag as explicit (default assignment or user custom
// tag).
func (l *Label) AddExplicit(t Tag) { l.explicit.Add(t); l.effValid = false }

// RemoveExplicit removes an explicit tag.
func (l *Label) RemoveExplicit(t Tag) { l.explicit.Remove(t); l.effValid = false }

// SetImplicit replaces the implicit tag set. BrowserFlow recomputes the
// implicit tags of the segment being edited from its *current* disclosure
// sources (§3.2), which is how outdated tags stop propagating (Figure 6).
func (l *Label) SetImplicit(tags TagSet) { l.implicit = tags.Clone(); l.effValid = false }

// Suppress marks t as suppressed. It reports whether t was present in the
// label (explicit or implicit); suppressing an absent tag is a no-op
// returning false.
func (l *Label) Suppress(t Tag) bool {
	if !l.explicit.Has(t) && !l.implicit.Has(t) {
		return false
	}
	l.suppressed.Add(t)
	l.effValid = false
	return true
}

// Unsuppress clears a suppression, restoring the tag's effect.
func (l *Label) Unsuppress(t Tag) { l.suppressed.Remove(t); l.effValid = false }

// Effective returns the tags that participate in subset comparisons:
// (explicit ∪ implicit) minus suppressed.
func (l *Label) Effective() TagSet {
	return l.explicit.Union(l.implicit).Minus(l.suppressed)
}

// All returns every tag attached to the label, including suppressed ones —
// what an auditor sees.
func (l *Label) All() TagSet {
	return l.explicit.Union(l.implicit).Union(l.suppressed)
}

// Clone returns an independent deep copy.
func (l *Label) Clone() *Label {
	return &Label{
		explicit:   l.explicit.Clone(),
		implicit:   l.implicit.Clone(),
		suppressed: l.suppressed.Clone(),
	}
}

// ReleasableTo reports whether the label permits release to a service with
// privilege label lp, and if not, which tags violate.
func (l *Label) ReleasableTo(lp TagSet) (ok bool, violating []Tag) {
	eff := l.Effective()
	if eff.SubsetOf(lp) {
		return true, nil
	}
	for _, t := range eff.Minus(lp).Sorted() {
		violating = append(violating, t)
	}
	return false, violating
}

// String renders the label as "explicit ∪ implicit (suppressed: ...)".
func (l *Label) String() string {
	s := l.explicit.String()
	if l.implicit.Len() > 0 {
		s += "+" + l.implicit.String()
	}
	if l.suppressed.Len() > 0 {
		s += " (suppressed " + l.suppressed.String() + ")"
	}
	return s
}
