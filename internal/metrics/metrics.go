// Package metrics provides the latency instrumentation used by the
// performance experiments (§6.2): a concurrent sample recorder with
// percentile and CDF queries matching the series the paper plots in
// Figures 12 and 13.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder collects duration samples. It is safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration

	// sorted caches the sorted snapshot served to Percentile /
	// FractionBelow / CDF / Summarize. It is invalidated (set to nil)
	// by Add and Reset, so a burst of percentile queries between
	// recordings sorts the samples exactly once instead of per call.
	sorted []time.Duration
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.sorted = nil
	r.mu.Unlock()
}

// Time runs fn and records its duration.
func (r *Recorder) Time(fn func()) {
	start := time.Now()
	fn()
	r.Add(time.Since(start))
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = nil
	r.sorted = nil
	r.mu.Unlock()
}

// snapshotSorted returns a sorted view of the samples. The slice is
// cached across calls until the next Add/Reset, so repeated percentile
// queries (the common pattern in the experiment harness: P50, P95, P99
// back to back) pay for one copy+sort instead of one per query. Callers
// must treat the returned slice as read-only; all callers in this
// package do.
func (r *Recorder) snapshotSorted() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sorted != nil {
		return r.sorted
	}
	out := make([]time.Duration, len(r.samples))
	copy(out, r.samples)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	r.sorted = out
	return out
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank. It returns 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	s := r.snapshotSorted()
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// FractionBelow returns the fraction of samples strictly at or below d.
func (r *Recorder) FractionBelow(d time.Duration) float64 {
	s := r.snapshotSorted()
	if len(s) == 0 {
		return 0
	}
	idx := sort.Search(len(s), func(i int) bool { return s[i] > d })
	return float64(idx) / float64(len(s))
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	// Value is the sample value.
	Value time.Duration

	// Fraction is the cumulative fraction of samples <= Value.
	Fraction float64
}

// CDF returns up to points evenly spaced points of the sample CDF.
func (r *Recorder) CDF(points int) []CDFPoint {
	s := r.snapshotSorted()
	if len(s) == 0 || points <= 0 {
		return nil
	}
	if points > len(s) {
		points = len(s)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*len(s)/points - 1
		out = append(out, CDFPoint{
			Value:    s[idx],
			Fraction: float64(idx+1) / float64(len(s)),
		})
	}
	return out
}

// Summary holds the headline statistics of a sample set.
type Summary struct {
	Count int
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Summarize computes a Summary.
func (r *Recorder) Summarize() Summary {
	s := r.snapshotSorted()
	if len(s) == 0 {
		return Summary{}
	}
	var total time.Duration
	for _, d := range s {
		total += d
	}
	pct := func(p float64) time.Duration {
		rank := int(math.Ceil(p / 100 * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		return s[rank-1]
	}
	return Summary{
		Count: len(s),
		Min:   s[0],
		Max:   s[len(s)-1],
		Mean:  total / time.Duration(len(s)),
		P50:   pct(50),
		P95:   pct(95),
		P99:   pct(99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v mean=%v p95=%v p99=%v max=%v",
		s.Count, s.Min, s.P50, s.Mean, s.P95, s.P99, s.Max)
}

// FormatCDF renders a CDF as aligned "value fraction" rows for harness
// output.
func FormatCDF(points []CDFPoint) string {
	var sb strings.Builder
	for _, p := range points {
		fmt.Fprintf(&sb, "%12v  %6.4f\n", p.Value, p.Fraction)
	}
	return sb.String()
}
