package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fill(r *Recorder, n int) {
	for i := 1; i <= n; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRecorder()
	fill(r, 100) // 1ms..100ms
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{p: 50, want: 50 * time.Millisecond},
		{p: 95, want: 95 * time.Millisecond},
		{p: 99, want: 99 * time.Millisecond},
		{p: 100, want: 100 * time.Millisecond},
		{p: 1, want: 1 * time.Millisecond},
		{p: 0, want: 1 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := r.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v=%v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := NewRecorder().Percentile(50); got != 0 {
		t.Errorf("empty P50=%v, want 0", got)
	}
}

func TestFractionBelow(t *testing.T) {
	r := NewRecorder()
	fill(r, 100)
	if got := r.FractionBelow(30 * time.Millisecond); got != 0.3 {
		t.Errorf("FractionBelow(30ms)=%v, want 0.3", got)
	}
	if got := r.FractionBelow(200 * time.Millisecond); got != 1.0 {
		t.Errorf("FractionBelow(200ms)=%v, want 1.0", got)
	}
	if got := r.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0)=%v, want 0", got)
	}
	if got := NewRecorder().FractionBelow(time.Second); got != 0 {
		t.Errorf("empty FractionBelow=%v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	r := NewRecorder()
	fill(r, 100)
	points := r.CDF(10)
	if len(points) != 10 {
		t.Fatalf("points=%d, want 10", len(points))
	}
	if points[len(points)-1].Fraction != 1.0 {
		t.Errorf("last fraction=%v, want 1.0", points[len(points)-1].Fraction)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Value < points[i-1].Value || points[i].Fraction <= points[i-1].Fraction {
			t.Errorf("CDF not monotone at %d: %+v %+v", i, points[i-1], points[i])
		}
	}
	// More points than samples collapses to sample count.
	small := NewRecorder()
	fill(small, 3)
	if got := len(small.CDF(50)); got != 3 {
		t.Errorf("capped points=%d, want 3", got)
	}
	if NewRecorder().CDF(5) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	fill(r, 10)
	s := r.Summarize()
	if s.Count != 10 || s.Min != time.Millisecond || s.Max != 10*time.Millisecond {
		t.Errorf("summary=%+v", s)
	}
	wantMean := time.Duration(55) * time.Millisecond / 10
	if s.Mean != wantMean {
		t.Errorf("mean=%v, want %v", s.Mean, wantMean)
	}
	if s.P50 != 5*time.Millisecond {
		t.Errorf("p50=%v", s.P50)
	}
	if !strings.Contains(s.String(), "n=10") {
		t.Errorf("String()=%q", s.String())
	}
	if (Summary{}).String() != "no samples" {
		t.Error("empty summary string")
	}
}

func TestTimeHelper(t *testing.T) {
	r := NewRecorder()
	r.Time(func() { time.Sleep(time.Millisecond) })
	if r.Count() != 1 {
		t.Fatalf("count=%d", r.Count())
	}
	if r.Percentile(50) < time.Millisecond {
		t.Errorf("recorded %v, want >= 1ms", r.Percentile(50))
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	fill(r, 5)
	r.Reset()
	if r.Count() != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Errorf("count=%d, want 800", r.Count())
	}
}

func TestFormatCDF(t *testing.T) {
	r := NewRecorder()
	fill(r, 4)
	out := FormatCDF(r.CDF(2))
	if !strings.Contains(out, "1.0000") {
		t.Errorf("FormatCDF=%q", out)
	}
}
