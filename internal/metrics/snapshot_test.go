package metrics

import (
	"testing"
	"time"
)

// TestSnapshotCacheReuse asserts the sorted-snapshot cache: repeated
// percentile queries between recordings must not re-copy or re-sort
// the sample slice (zero allocations after the first query), and an
// Add or Reset must invalidate the cache.
func TestSnapshotCacheReuse(t *testing.T) {
	r := NewRecorder()
	fill(r, 10_000)

	// Prime the cache.
	if got := r.Percentile(50); got != 5000*time.Millisecond {
		t.Fatalf("P50=%v, want 5s", got)
	}
	// Subsequent queries reuse the cached snapshot: zero allocations.
	allocs := testing.AllocsPerRun(100, func() {
		_ = r.Percentile(99)
		_ = r.FractionBelow(time.Second)
		_ = r.Summarize()
	})
	if allocs > 0 {
		t.Fatalf("cached percentile queries allocated %.1f times per run, want 0 (snapshot re-sorted per call?)", allocs)
	}

	// Add invalidates: the next query sees the new sample.
	r.Add(20_000 * time.Millisecond)
	if got := r.Percentile(100); got != 20_000*time.Millisecond {
		t.Fatalf("P100 after Add = %v, want 20s (stale cache?)", got)
	}

	// Reset invalidates too.
	r.Reset()
	if got := r.Percentile(50); got != 0 {
		t.Fatalf("P50 after Reset = %v, want 0 (stale cache?)", got)
	}
	// And the recorder still works after a reset.
	fill(r, 100)
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("P50 after refill = %v, want 50ms", got)
	}
}

// BenchmarkPercentileRepeated is the regression benchmark guarding the
// snapshot cache: it issues the harness's typical P50/P95/P99 triple
// against a large static sample set. Before the cache, every call
// copied and sorted all samples (O(n log n) per query); with the cache
// the steady state is O(1) lookups.
func BenchmarkPercentileRepeated(b *testing.B) {
	r := NewRecorder()
	fill(r, 100_000)
	r.Percentile(50) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Percentile(50)
		_ = r.Percentile(95)
		_ = r.Percentile(99)
	}
}

// BenchmarkSummarizeLarge guards Summarize on a large sample set with
// the cache warm.
func BenchmarkSummarizeLarge(b *testing.B) {
	r := NewRecorder()
	fill(r, 100_000)
	r.Summarize() // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Summarize()
	}
}
