package dashboard

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/tdm"
)

func setup(t *testing.T) *httptest.Server {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.ObserveSegment("wiki/guide#p0", "wiki"); err != nil {
		t.Fatal(err)
	}
	if _, err := tracker.ObserveParagraph("wiki/guide#p0", "A paragraph with enough text to fingerprint meaningfully."); err != nil {
		t.Fatal(err)
	}
	if err := registry.SuppressTag("alice", "wiki/guide#p0", "tw", "approved <script>"); err != nil {
		t.Fatal(err)
	}
	h, err := New(tracker, registry)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestOverviewPage(t *testing.T) {
	srv := setup(t)
	body := get(t, srv.URL+"/")
	for _, want := range []string{"paragraph segments", "audit entries", "<nav>"} {
		if !strings.Contains(body, want) {
			t.Errorf("overview missing %q", want)
		}
	}
}

func TestServicesPage(t *testing.T) {
	srv := setup(t)
	body := get(t, srv.URL+"/services")
	if !strings.Contains(body, "wiki") || !strings.Contains(body, "{tw}") {
		t.Errorf("services page: %s", body)
	}
}

func TestSegmentsPage(t *testing.T) {
	srv := setup(t)
	body := get(t, srv.URL+"/segments")
	if !strings.Contains(body, "wiki/guide#p0") || !strings.Contains(body, "hashes") {
		t.Errorf("segments page: %s", body)
	}
	if !strings.Contains(body, "0.50") {
		t.Errorf("threshold missing: %s", body)
	}
}

func TestAuditPageEscapesHTML(t *testing.T) {
	srv := setup(t)
	body := get(t, srv.URL+"/audit")
	if !strings.Contains(body, "suppress") || !strings.Contains(body, "alice") {
		t.Errorf("audit page: %s", body)
	}
	if strings.Contains(body, "<script>") {
		t.Error("justification not escaped")
	}
}

func TestNotFound(t *testing.T) {
	srv := setup(t)
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status=%d, want 404", resp.StatusCode)
	}
}
