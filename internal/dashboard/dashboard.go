// Package dashboard serves a read-only operations view of a BrowserFlow
// deployment over HTTP: database sizes, registered services with their
// label pairs, tracked segments with labels, and the audit trail. IT
// departments deploy it next to the policy engine to monitor the
// enterprise-wide state the paper's §2 scenario assumes.
package dashboard

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/tdm"
)

// Handler is the dashboard HTTP handler.
type Handler struct {
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	mux      *http.ServeMux
}

var _ http.Handler = (*Handler)(nil)

// New returns a Handler over the given deployment state.
func New(tracker *disclosure.Tracker, registry *tdm.Registry) (*Handler, error) {
	if tracker == nil || registry == nil {
		return nil, fmt.Errorf("dashboard: tracker and registry are required")
	}
	h := &Handler{tracker: tracker, registry: registry, mux: http.NewServeMux()}
	h.mux.HandleFunc("/", h.overview)
	h.mux.HandleFunc("/services", h.services)
	h.mux.HandleFunc("/segments", h.segments)
	h.mux.HandleFunc("/audit", h.audit)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) overview(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	p := h.tracker.Paragraphs().Stats()
	d := h.tracker.Documents().Stats()
	var sb strings.Builder
	writeHeader(&sb, "Overview")
	sb.WriteString("<table>")
	row := func(k string, v interface{}) {
		fmt.Fprintf(&sb, "<tr><td>%s</td><td>%v</td></tr>", html.EscapeString(k), v)
	}
	row("paragraph segments", p.Segments)
	row("paragraph hashes", p.DistinctHashes)
	row("paragraph postings", p.Postings)
	row("approx memory", fmt.Sprintf("%.1f MB", float64(p.ApproxBytes+d.ApproxBytes)/(1<<20)))
	row("document segments", d.Segments)
	row("document hashes", d.DistinctHashes)
	row("services", len(h.registry.Services()))
	row("audit entries", h.registry.Audit().Len())
	sb.WriteString("</table>")
	writeFooter(&sb)
	writePage(w, sb.String())
}

func (h *Handler) services(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder
	writeHeader(&sb, "Services")
	sb.WriteString("<table><tr><th>name</th><th>privilege (Lp)</th><th>confidentiality (Lc)</th></tr>")
	for _, svc := range h.registry.Services() {
		fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>",
			html.EscapeString(svc.Name),
			html.EscapeString(svc.Privilege.String()),
			html.EscapeString(svc.Confidentiality.String()))
	}
	sb.WriteString("</table>")
	writeFooter(&sb)
	writePage(w, sb.String())
}

func (h *Handler) segments(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder
	writeHeader(&sb, "Segments")
	sb.WriteString("<table><tr><th>segment</th><th>label</th><th>fingerprint</th><th>threshold</th></tr>")
	db := h.tracker.Paragraphs()
	for _, seg := range db.Segments() {
		labelStr := "(none)"
		if label := h.registry.Label(seg); label != nil {
			labelStr = label.String()
		}
		size := 0
		if fp, ok := db.Fingerprint(seg); ok {
			size = fp.Len()
		}
		fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td><td>%d hashes</td><td>%.2f</td></tr>",
			html.EscapeString(string(seg)), html.EscapeString(labelStr), size, db.Threshold(seg))
	}
	sb.WriteString("</table>")
	writeFooter(&sb)
	writePage(w, sb.String())
}

func (h *Handler) audit(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder
	writeHeader(&sb, "Audit trail")
	sb.WriteString("<table><tr><th>#</th><th>time</th><th>action</th><th>user</th><th>tag</th><th>segment</th><th>service</th><th>justification</th></tr>")
	for _, e := range h.registry.Audit().Entries() {
		fmt.Fprintf(&sb, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			e.Seq, e.Time.Format("2006-01-02 15:04:05"),
			html.EscapeString(string(e.Action)), html.EscapeString(e.User),
			html.EscapeString(e.Tag), html.EscapeString(e.Segment),
			html.EscapeString(e.Service), html.EscapeString(e.Justification))
	}
	sb.WriteString("</table>")
	writeFooter(&sb)
	writePage(w, sb.String())
}

func writeHeader(sb *strings.Builder, title string) {
	sb.WriteString("<html><head><title>BrowserFlow — ")
	sb.WriteString(html.EscapeString(title))
	sb.WriteString(`</title><style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
nav a { margin-right: 1em; }
</style></head><body>`)
	sb.WriteString(`<nav><a href="/">overview</a><a href="/services">services</a><a href="/segments">segments</a><a href="/audit">audit</a></nav>`)
	sb.WriteString("<h1>" + html.EscapeString(title) + "</h1>")
}

func writeFooter(sb *strings.Builder) {
	sb.WriteString("</body></html>")
}

func writePage(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, body)
}
