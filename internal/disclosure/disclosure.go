// Package disclosure implements BrowserFlow's imprecise data flow tracking
// (§4): the document/paragraph disclosure metrics, their authoritative
// adjustment for overlapping documents (§4.3), and Algorithm 1, which
// answers the information disclosure problem — "what is the set of original
// sources in the database that this text discloses significant information
// from currently?".
package disclosure

import (
	"fmt"
	"sync"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/segment"
)

// Params configures a Tracker. The zero value is not usable; use
// DefaultParams.
type Params struct {
	// Fingerprint holds the winnowing parameters (paper: 15-char n-grams,
	// window 30, 32-bit hashes).
	Fingerprint fingerprint.Config

	// Tpar is the default paragraph disclosure threshold (paper: 0.5).
	Tpar float64

	// Tdoc is the default document disclosure threshold (paper: 0.5).
	Tdoc float64

	// DisableAuthoritative turns off the authoritative-fingerprint
	// adjustment of §4.3 and uses raw pairwise containment. Only used by
	// the ablation experiments; leave false in production.
	DisableAuthoritative bool

	// DisableCache turns off the fingerprint-keyed decision cache. Only
	// used by the ablation experiments.
	DisableCache bool

	// Incremental enables the §4.3 incremental evaluation of Algorithm 1:
	// re-observations only inspect hashes added since the previous
	// observation plus the previous sources. Per-edit cost becomes
	// proportional to the edit, at the cost of refreshing a *source's*
	// changed disclosure value lazily (the paper's behaviour).
	Incremental bool
}

// DefaultParams returns the configuration used in the paper's evaluation.
func DefaultParams() Params {
	return Params{
		Fingerprint: fingerprint.DefaultConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	}
}

// Source is one origin segment from which significant information is being
// disclosed.
type Source struct {
	// Seg is the origin segment (paragraph or document).
	Seg segment.ID

	// Disclosure is D(src, target) in [0, 1] using the authoritative
	// fingerprint of the source.
	Disclosure float64

	// Threshold is the origin's disclosure threshold that was met.
	Threshold float64
}

// Report is the outcome of observing one text segment.
type Report struct {
	// Seg is the observed segment.
	Seg segment.ID

	// Granularity records whether this was a paragraph or document
	// observation.
	Granularity segment.Granularity

	// FingerprintLen is the number of distinct hashes of the observed text.
	FingerprintLen int

	// Sources lists the origin segments whose disclosure requirement the
	// observed text meets, sorted by descending disclosure.
	Sources []Source

	// CacheHit reports whether the result was served from the decision
	// cache (the fingerprint had not changed since the last observation).
	CacheHit bool
}

// Disclosing reports whether the observation met any origin's disclosure
// requirement.
func (r Report) Disclosing() bool { return len(r.Sources) > 0 }

// SourceSegs returns just the origin segment IDs.
func (r Report) SourceSegs() []segment.ID {
	out := make([]segment.ID, len(r.Sources))
	for i, s := range r.Sources {
		out[i] = s.Seg
	}
	return out
}

// Tracker maintains the paragraph- and document-granularity fingerprint
// databases and serves disclosure queries. It is safe for concurrent use.
type Tracker struct {
	params Params

	pars *index.DB
	docs *index.DB

	mu    sync.Mutex
	cache map[segment.ID]cacheEntry
	prev  map[segment.ID]prevState
}

type cacheEntry struct {
	digest uint64
	report Report
}

// NewTracker returns a Tracker with the given parameters.
func NewTracker(params Params) (*Tracker, error) {
	if err := params.Fingerprint.Validate(); err != nil {
		return nil, err
	}
	if params.Tpar < 0 || params.Tpar > 1 {
		return nil, fmt.Errorf("disclosure: Tpar %v out of [0,1]", params.Tpar)
	}
	if params.Tdoc < 0 || params.Tdoc > 1 {
		return nil, fmt.Errorf("disclosure: Tdoc %v out of [0,1]", params.Tdoc)
	}
	return &Tracker{
		params: params,
		pars:   index.New(params.Tpar),
		docs:   index.New(params.Tdoc),
		cache:  make(map[segment.ID]cacheEntry),
		prev:   make(map[segment.ID]prevState),
	}, nil
}

// Params returns the tracker's configuration.
func (t *Tracker) Params() Params { return t.params }

// Paragraphs exposes the paragraph-granularity database (read-mostly use:
// stats, thresholds, persistence).
func (t *Tracker) Paragraphs() *index.DB { return t.pars }

// Documents exposes the document-granularity database.
func (t *Tracker) Documents() *index.DB { return t.docs }

// Fingerprint computes the fingerprint of text under the tracker's
// parameters without updating any state.
func (t *Tracker) Fingerprint(text string) (*fingerprint.Fingerprint, error) {
	return fingerprint.Compute(text, t.params.Fingerprint)
}

// ObserveParagraph records the current text of a paragraph segment and
// returns the set of origin paragraphs it now discloses. This is the per-
// keystroke entry point of the middleware: the decision cache means that
// edits that do not change the winnowed fingerprint are answered without
// recomputing Algorithm 1.
func (t *Tracker) ObserveParagraph(seg segment.ID, text string) (Report, error) {
	return t.observe(seg, text, segment.GranularityParagraph, t.pars)
}

// ObserveDocument records the current text of a whole document and returns
// the origin documents it discloses.
func (t *Tracker) ObserveDocument(seg segment.ID, text string) (Report, error) {
	return t.observe(seg, text, segment.GranularityDocument, t.docs)
}

// ObserveParagraphFP is ObserveParagraph for a fingerprint computed by the
// caller — the entry point for remote clients that keep text on-device and
// ship hashes only (tag-server deployments).
func (t *Tracker) ObserveParagraphFP(seg segment.ID, fp *fingerprint.Fingerprint) (Report, error) {
	return t.observeFP(seg, fp, segment.GranularityParagraph, t.pars)
}

// ObserveDocumentFP is ObserveDocument for a caller-computed fingerprint.
func (t *Tracker) ObserveDocumentFP(seg segment.ID, fp *fingerprint.Fingerprint) (Report, error) {
	return t.observeFP(seg, fp, segment.GranularityDocument, t.docs)
}

// QueryParagraphFP runs Algorithm 1 for a caller-computed fingerprint
// without recording it.
func (t *Tracker) QueryParagraphFP(fp *fingerprint.Fingerprint, exclude segment.ID) []Source {
	return t.sources(fp, exclude, t.pars)
}

func (t *Tracker) observe(seg segment.ID, text string, g segment.Granularity, db *index.DB) (Report, error) {
	fp, err := fingerprint.Compute(text, t.params.Fingerprint)
	if err != nil {
		return Report{}, err
	}
	return t.observeFP(seg, fp, g, db)
}

func (t *Tracker) observeFP(seg segment.ID, fp *fingerprint.Fingerprint, g segment.Granularity, db *index.DB) (Report, error) {
	digest := fp.Digest()
	if !t.params.DisableCache {
		t.mu.Lock()
		if entry, ok := t.cache[seg]; ok && entry.digest == digest {
			report := entry.report
			report.CacheHit = true
			t.mu.Unlock()
			return report, nil
		}
		t.mu.Unlock()
	}

	var sources []Source
	if t.params.Incremental {
		t.mu.Lock()
		prev, hasPrev := t.prev[seg]
		t.mu.Unlock()
		if hasPrev {
			sources = t.incrementalSources(fp, seg, db, prev)
		} else {
			sources = t.sources(fp, seg, db)
		}
	} else {
		sources = t.sources(fp, seg, db)
	}
	db.Update(seg, fp)

	report := Report{
		Seg:            seg,
		Granularity:    g,
		FingerprintLen: fp.Len(),
		Sources:        sources,
	}
	t.mu.Lock()
	if !t.params.DisableCache {
		t.cache[seg] = cacheEntry{digest: digest, report: report}
	}
	if t.params.Incremental {
		t.prev[seg] = prevState{fp: fp, sources: sources}
	}
	t.mu.Unlock()
	return report, nil
}

// QueryParagraph runs Algorithm 1 for text against the paragraph database
// without recording the text as a new observation.
func (t *Tracker) QueryParagraph(text string, exclude segment.ID) ([]Source, error) {
	fp, err := fingerprint.Compute(text, t.params.Fingerprint)
	if err != nil {
		return nil, err
	}
	return t.sources(fp, exclude, t.pars), nil
}

// QueryDocument is QueryParagraph at document granularity.
func (t *Tracker) QueryDocument(text string, exclude segment.ID) ([]Source, error) {
	fp, err := fingerprint.Compute(text, t.params.Fingerprint)
	if err != nil {
		return nil, err
	}
	return t.sources(fp, exclude, t.docs), nil
}

// sources implements Algorithm 1 of the paper: it returns the origin
// segments whose (authoritative) disclosure towards fp meets their
// threshold. Candidates are discovered through the oldest holder of each of
// fp's hashes, so the complexity is linear in the number of segments that
// share at least one hash with fp.
func (t *Tracker) sources(fp *fingerprint.Fingerprint, self segment.ID, db *index.DB) []Source {
	if fp.Empty() {
		return nil
	}
	checked := make(map[segment.ID]bool)
	var out []Source
	for _, h := range fp.Hashes() {
		for _, p := range t.candidatesFor(h, db) {
			if p == self || checked[p] {
				continue
			}
			checked[p] = true
			if src, ok := t.evaluateCandidate(fp, p, db); ok {
				out = append(out, src)
			}
		}
	}
	sortSources(out)
	return out
}

// candidatesFor returns the candidate origin segments for hash h. With the
// authoritative adjustment enabled this is just the oldest holder (younger
// holders cannot contribute authoritative hashes); with it disabled, every
// holder is a candidate.
func (t *Tracker) candidatesFor(h uint32, db *index.DB) []segment.ID {
	if t.params.DisableAuthoritative {
		return db.Holders(h)
	}
	if holder, ok := db.OldestHolder(h); ok {
		return []segment.ID{holder}
	}
	return nil
}

// Pairwise returns the unadjusted pairwise disclosure D(a, b) = |F(a) ∩
// F(b)| / |F(a)| between two texts, the §4.2 definition before the
// overlapping-documents fix. It is independent of tracker state.
func (t *Tracker) Pairwise(a, b string) (float64, error) {
	fa, err := fingerprint.Compute(a, t.params.Fingerprint)
	if err != nil {
		return 0, err
	}
	fb, err := fingerprint.Compute(b, t.params.Fingerprint)
	if err != nil {
		return 0, err
	}
	return fa.Containment(fb), nil
}

// Forget removes a segment from the given granularity's database and from
// the decision cache.
func (t *Tracker) Forget(seg segment.ID, g segment.Granularity) {
	db := t.pars
	if g == segment.GranularityDocument {
		db = t.docs
	}
	db.RemoveSegment(seg)
	t.mu.Lock()
	delete(t.cache, seg)
	delete(t.prev, seg)
	t.mu.Unlock()
}

// CacheLen returns the number of cached decisions (for tests and metrics).
func (t *Tracker) CacheLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cache)
}
