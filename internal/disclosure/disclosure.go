// Package disclosure implements BrowserFlow's imprecise data flow tracking
// (§4): the document/paragraph disclosure metrics, their authoritative
// adjustment for overlapping documents (§4.3), and Algorithm 1, which
// answers the information disclosure problem — "what is the set of original
// sources in the database that this text discloses significant information
// from currently?".
package disclosure

import (
	"fmt"
	"sync"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/segment"
)

// Params configures a Tracker. The zero value is not usable; use
// DefaultParams.
type Params struct {
	// Fingerprint holds the winnowing parameters (paper: 15-char n-grams,
	// window 30, 32-bit hashes).
	Fingerprint fingerprint.Config

	// Tpar is the default paragraph disclosure threshold (paper: 0.5).
	Tpar float64

	// Tdoc is the default document disclosure threshold (paper: 0.5).
	Tdoc float64

	// DisableAuthoritative turns off the authoritative-fingerprint
	// adjustment of §4.3 and uses raw pairwise containment. Only used by
	// the ablation experiments; leave false in production.
	DisableAuthoritative bool

	// DisableCache turns off the fingerprint-keyed decision cache. Only
	// used by the ablation experiments.
	DisableCache bool

	// DisableSharding replaces the lock-striped fingerprint index and
	// decision cache with single-lock equivalents (one index shard, one
	// cache stripe). Only used by the ablation benchmarks as the
	// single-lock baseline; leave false in production.
	DisableSharding bool

	// IndexShards overrides the index lock-stripe count (0 uses
	// index.DefaultShards). Ignored when DisableSharding is set.
	IndexShards int

	// Incremental enables the §4.3 incremental evaluation of Algorithm 1:
	// re-observations only inspect hashes added since the previous
	// observation plus the previous sources. Per-edit cost becomes
	// proportional to the edit, at the cost of refreshing a *source's*
	// changed disclosure value lazily (the paper's behaviour).
	Incremental bool
}

// DefaultParams returns the configuration used in the paper's evaluation.
func DefaultParams() Params {
	return Params{
		Fingerprint: fingerprint.DefaultConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	}
}

// Source is one origin segment from which significant information is being
// disclosed.
type Source struct {
	// Seg is the origin segment (paragraph or document).
	Seg segment.ID

	// Disclosure is D(src, target) in [0, 1] using the authoritative
	// fingerprint of the source.
	Disclosure float64

	// Threshold is the origin's disclosure threshold that was met.
	Threshold float64
}

// Report is the outcome of observing one text segment.
type Report struct {
	// Seg is the observed segment.
	Seg segment.ID

	// Granularity records whether this was a paragraph or document
	// observation.
	Granularity segment.Granularity

	// FingerprintLen is the number of distinct hashes of the observed text.
	FingerprintLen int

	// Sources lists the origin segments whose disclosure requirement the
	// observed text meets, sorted by descending disclosure.
	Sources []Source

	// CacheHit reports whether the result was served from the decision
	// cache (the fingerprint had not changed since the last observation).
	CacheHit bool
}

// Disclosing reports whether the observation met any origin's disclosure
// requirement.
func (r Report) Disclosing() bool { return len(r.Sources) > 0 }

// SourceSegs returns just the origin segment IDs.
func (r Report) SourceSegs() []segment.ID {
	out := make([]segment.ID, len(r.Sources))
	for i, s := range r.Sources {
		out[i] = s.Seg
	}
	return out
}

// Tracker maintains the paragraph- and document-granularity fingerprint
// databases and serves disclosure queries. It is safe for concurrent use.
//
// The decision/prev caches are lock-striped by segment ID so concurrent
// observers of different segments never contend on a cache mutex; the
// fingerprint databases are lock-striped internally (see package index).
type Tracker struct {
	params Params

	pars *index.DB
	docs *index.DB

	stripes    []cacheStripe
	stripeMask uint32

	// scratchPool recycles the per-observation working set (candidate
	// buffer, dedup map, sources buffer) across singular observes, so the
	// steady-state hot path performs no per-call scratch allocations.
	scratchPool sync.Pool
}

// cacheStripe is one lock stripe of the decision cache and the
// incremental-evaluation previous-state map.
type cacheStripe struct {
	mu    sync.Mutex
	cache map[segment.ID]cacheEntry
	prev  map[segment.ID]prevState
}

type cacheEntry struct {
	digest uint64
	report Report
}

// NewTracker returns a Tracker with the given parameters.
func NewTracker(params Params) (*Tracker, error) {
	if err := params.Fingerprint.Validate(); err != nil {
		return nil, err
	}
	if params.Tpar < 0 || params.Tpar > 1 {
		return nil, fmt.Errorf("disclosure: Tpar %v out of [0,1]", params.Tpar)
	}
	if params.Tdoc < 0 || params.Tdoc > 1 {
		return nil, fmt.Errorf("disclosure: Tdoc %v out of [0,1]", params.Tdoc)
	}
	shards := params.IndexShards
	if shards <= 0 {
		shards = index.DefaultShards
	}
	if params.DisableSharding {
		shards = 1
	}
	t := &Tracker{
		params: params,
		pars:   index.NewWithShards(params.Tpar, shards),
		docs:   index.NewWithShards(params.Tdoc, shards),
	}
	t.scratchPool.New = func() any { return newObserveScratch() }
	// Stripe count mirrors the index shard count (power of two).
	n := t.pars.NumShards()
	t.stripes = make([]cacheStripe, n)
	t.stripeMask = uint32(n - 1)
	for i := range t.stripes {
		t.stripes[i].cache = make(map[segment.ID]cacheEntry)
		t.stripes[i].prev = make(map[segment.ID]prevState)
	}
	// Keep the decision cache coherent with the databases: segments
	// dropped by ExpireBefore/RemoveSegment (including direct calls on
	// Paragraphs()/Documents()) must not keep serving stale cached
	// reports.
	t.pars.SetEvictHook(t.evictCached)
	t.docs.SetEvictHook(t.evictCached)
	return t, nil
}

// stripeFor returns the cache stripe of seg (FNV-1a over the ID bytes).
func (t *Tracker) stripeFor(seg segment.ID) *cacheStripe {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(seg); i++ {
		h ^= uint32(seg[i])
		h *= prime32
	}
	return &t.stripes[h&t.stripeMask]
}

// evictCached is the index eviction hook: it drops decision-cache and
// incremental-state entries for segments removed from a database.
func (t *Tracker) evictCached(segs []segment.ID) {
	for _, seg := range segs {
		st := t.stripeFor(seg)
		st.mu.Lock()
		delete(st.cache, seg)
		delete(st.prev, seg)
		st.mu.Unlock()
	}
}

// cloneSources returns an owned copy of sources, preserving nil-ness so
// serialised reports stay byte-identical. Cached reports and the reports
// handed to callers must not share a Sources slice: a caller mutating its
// result would otherwise corrupt every future cache hit.
func cloneSources(sources []Source) []Source {
	if sources == nil {
		return nil
	}
	out := make([]Source, len(sources))
	copy(out, sources)
	return out
}

// Params returns the tracker's configuration.
func (t *Tracker) Params() Params { return t.params }

// Paragraphs exposes the paragraph-granularity database (read-mostly use:
// stats, thresholds, persistence).
func (t *Tracker) Paragraphs() *index.DB { return t.pars }

// Documents exposes the document-granularity database.
func (t *Tracker) Documents() *index.DB { return t.docs }

// Fingerprint computes the fingerprint of text under the tracker's
// parameters without updating any state.
func (t *Tracker) Fingerprint(text string) (*fingerprint.Fingerprint, error) {
	return fingerprint.Compute(text, t.params.Fingerprint)
}

// ObserveParagraph records the current text of a paragraph segment and
// returns the set of origin paragraphs it now discloses. This is the per-
// keystroke entry point of the middleware: the decision cache means that
// edits that do not change the winnowed fingerprint are answered without
// recomputing Algorithm 1.
func (t *Tracker) ObserveParagraph(seg segment.ID, text string) (Report, error) {
	return t.observe(seg, text, segment.GranularityParagraph, t.pars)
}

// ObserveDocument records the current text of a whole document and returns
// the origin documents it discloses.
func (t *Tracker) ObserveDocument(seg segment.ID, text string) (Report, error) {
	return t.observe(seg, text, segment.GranularityDocument, t.docs)
}

// ObserveParagraphFP is ObserveParagraph for a fingerprint computed by the
// caller — the entry point for remote clients that keep text on-device and
// ship hashes only (tag-server deployments).
func (t *Tracker) ObserveParagraphFP(seg segment.ID, fp *fingerprint.Fingerprint) (Report, error) {
	return t.observeFP(seg, fp, segment.GranularityParagraph, t.pars)
}

// ObserveDocumentFP is ObserveDocument for a caller-computed fingerprint.
func (t *Tracker) ObserveDocumentFP(seg segment.ID, fp *fingerprint.Fingerprint) (Report, error) {
	return t.observeFP(seg, fp, segment.GranularityDocument, t.docs)
}

// QueryParagraphFP runs Algorithm 1 for a caller-computed fingerprint
// without recording it.
func (t *Tracker) QueryParagraphFP(fp *fingerprint.Fingerprint, exclude segment.ID) []Source {
	return t.sources(fp, exclude, t.pars)
}

func (t *Tracker) observe(seg segment.ID, text string, g segment.Granularity, db *index.DB) (Report, error) {
	sc := t.scratchPool.Get().(*observeScratch)
	fp, err := sc.fps.ComputeShared(text, t.params.Fingerprint)
	if err != nil {
		t.scratchPool.Put(sc)
		return Report{}, err
	}
	report, err := t.observeFPScratch(seg, fp, true, g, db, sc)
	t.scratchPool.Put(sc)
	return report, err
}

func (t *Tracker) observeFP(seg segment.ID, fp *fingerprint.Fingerprint, g segment.Granularity, db *index.DB) (Report, error) {
	sc := t.scratchPool.Get().(*observeScratch)
	report, err := t.observeFPScratch(seg, fp, false, g, db, sc)
	t.scratchPool.Put(sc)
	return report, err
}

// observeFPScratch is observeFP with an optional reusable scratch space
// (see ObserveBatch): a batch flush amortises the per-observation map and
// candidate-buffer allocations across all its items.
//
// borrowed marks fp as scratch-shared (it aliases sc.fps and is valid only
// for this call): the decision-cache fast path never retains it, so a
// cache hit stays allocation-free, and a miss detaches it with one Clone
// just before the retention points (index update, incremental prev state).
func (t *Tracker) observeFPScratch(seg segment.ID, fp *fingerprint.Fingerprint, borrowed bool, g segment.Granularity, db *index.DB, sc *observeScratch) (Report, error) {
	digest := fp.Digest()
	st := t.stripeFor(seg)
	if !t.params.DisableCache {
		st.mu.Lock()
		if entry, ok := st.cache[seg]; ok && entry.digest == digest {
			report := entry.report
			// The cached Sources slice stays private to the cache; hand
			// the caller an owned copy (see cloneSources).
			report.Sources = cloneSources(entry.report.Sources)
			report.CacheHit = true
			st.mu.Unlock()
			return report, nil
		}
		st.mu.Unlock()
	}
	if borrowed {
		// Past the cache check the fingerprint is retained (db.Update
		// stores it as the segment's latest fingerprint; the incremental
		// path keeps it as prev state) — detach it from the scratch first.
		fp = fp.Clone()
	}

	// raw is backed by the (possibly pooled) scratch buffer — it must be
	// copied out before this call returns.
	var raw []Source
	if t.params.Incremental {
		st.mu.Lock()
		prev, hasPrev := st.prev[seg]
		st.mu.Unlock()
		if hasPrev {
			raw = t.incrementalSources(fp, seg, db, prev)
		} else {
			raw = t.sourcesScratch(fp, seg, db, sc)
		}
	} else {
		raw = t.sourcesScratch(fp, seg, db, sc)
	}
	db.Update(seg, fp)

	// The caller's report and the cache entry need independent Sources
	// slices (a caller mutating its result must not corrupt future cache
	// hits); both copies come out of one allocation, with full-slice-
	// expression caps so neither can append into the other. nil-ness is
	// preserved so serialised reports stay byte-identical.
	var sources, cached []Source
	if n := len(raw); n > 0 {
		if t.params.DisableCache {
			sources = cloneSources(raw)
		} else {
			buf := make([]Source, 2*n)
			copy(buf, raw)
			copy(buf[n:], raw)
			sources = buf[:n:n]
			cached = buf[n:]
		}
	}
	report := Report{
		Seg:            seg,
		Granularity:    g,
		FingerprintLen: fp.Len(),
		Sources:        sources,
	}
	st.mu.Lock()
	if !t.params.DisableCache {
		st.cache[seg] = cacheEntry{digest: digest, report: Report{
			Seg:            report.Seg,
			Granularity:    report.Granularity,
			FingerprintLen: report.FingerprintLen,
			Sources:        cached,
		}}
	}
	if t.params.Incremental {
		st.prev[seg] = prevState{fp: fp, sources: cloneSources(raw)}
	}
	st.mu.Unlock()
	return report, nil
}

// QueryParagraph runs Algorithm 1 for text against the paragraph database
// without recording the text as a new observation.
func (t *Tracker) QueryParagraph(text string, exclude segment.ID) ([]Source, error) {
	return t.query(text, exclude, t.pars)
}

// QueryDocument is QueryParagraph at document granularity.
func (t *Tracker) QueryDocument(text string, exclude segment.ID) ([]Source, error) {
	return t.query(text, exclude, t.docs)
}

// query fingerprints text into the pooled scratch (queries never retain the
// fingerprint, so no detach is needed) and runs Algorithm 1.
func (t *Tracker) query(text string, exclude segment.ID, db *index.DB) ([]Source, error) {
	sc := t.scratchPool.Get().(*observeScratch)
	fp, err := sc.fps.ComputeShared(text, t.params.Fingerprint)
	if err != nil {
		t.scratchPool.Put(sc)
		return nil, err
	}
	out := cloneSources(t.sourcesScratch(fp, exclude, db, sc))
	t.scratchPool.Put(sc)
	return out, nil
}

// observeScratch holds the per-observation working set of Algorithm 1 so
// singular observes (via the Tracker's scratch pool) and batch flushes can
// reuse it across calls instead of reallocating.
type observeScratch struct {
	checked map[segment.ID]bool
	cands   []segment.ID
	holders []segment.ID
	out     []Source

	// fps holds the fingerprinting buffers (normalised text, hash
	// sequence, winnowing ring), so text-bearing observes compute their
	// fingerprint without per-call allocations. Fingerprints produced from
	// it alias the scratch and are cloned at the single point they are
	// retained (see observeFPScratch).
	fps fingerprint.Scratch
}

func newObserveScratch() *observeScratch {
	return &observeScratch{checked: make(map[segment.ID]bool)}
}

// reset clears the scratch for the next observation.
func (sc *observeScratch) reset() {
	clear(sc.checked)
	sc.cands = sc.cands[:0]
	sc.out = sc.out[:0]
}

// evaluateInto evaluates candidate p (once) and appends it to the scratch
// sources buffer when it meets its disclosure threshold. A method rather
// than a closure: the singular observe path must not allocate a closure
// environment per call.
func (t *Tracker) evaluateInto(fp *fingerprint.Fingerprint, p, self segment.ID, db *index.DB, sc *observeScratch) {
	if p == self || sc.checked[p] {
		return
	}
	sc.checked[p] = true
	if src, ok := t.evaluateCandidate(fp, p, db); ok {
		sc.out = append(sc.out, src)
	}
}

// sources implements Algorithm 1 of the paper: it returns the origin
// segments whose (authoritative) disclosure towards fp meets their
// threshold. Candidates are discovered through the oldest holder of each of
// fp's hashes, so the complexity is linear in the number of segments that
// share at least one hash with fp.
func (t *Tracker) sources(fp *fingerprint.Fingerprint, self segment.ID, db *index.DB) []Source {
	sc := t.scratchPool.Get().(*observeScratch)
	// The scratch-backed result must be copied out before the scratch is
	// recycled.
	out := cloneSources(t.sourcesScratch(fp, self, db, sc))
	t.scratchPool.Put(sc)
	return out
}

// sourcesScratch is sources with an optional reusable scratch space. The
// returned slice is backed by the scratch's sources buffer (nil when no
// source meets its threshold): callers must copy it out before the scratch
// is reset, recycled, or used for another observation.
// Candidate discovery batches the oldest-holder lookups (one index shard
// acquisition per contiguous hash run) and candidate evaluation happens
// after the lookups, outside any index lock.
func (t *Tracker) sourcesScratch(fp *fingerprint.Fingerprint, self segment.ID, db *index.DB, sc *observeScratch) []Source {
	if fp.Empty() {
		return nil
	}
	if sc == nil {
		sc = newObserveScratch()
	} else {
		sc.reset()
	}
	if t.params.DisableAuthoritative {
		// Ablation path: every holder of every hash is a candidate. The
		// holder lists reuse one scratch buffer across all hashes.
		for _, h := range fp.Hashes() {
			sc.holders = db.AppendHolders(h, sc.holders[:0])
			for _, p := range sc.holders {
				t.evaluateInto(fp, p, self, db, sc)
			}
		}
	} else {
		sc.cands = db.AppendOldestHolders(fp.Hashes(), sc.cands)
		// One segment is typically the oldest holder of a run of
		// consecutive hashes, so the candidate list is mostly adjacent
		// duplicates; skipping them here avoids a string-keyed map probe
		// per hash before the checked-set dedup.
		var last segment.ID
		for _, p := range sc.cands {
			if p == last {
				continue
			}
			last = p
			t.evaluateInto(fp, p, self, db, sc)
		}
	}
	sortSources(sc.out)
	if len(sc.out) == 0 {
		return nil
	}
	return sc.out
}

// Pairwise returns the unadjusted pairwise disclosure D(a, b) = |F(a) ∩
// F(b)| / |F(a)| between two texts, the §4.2 definition before the
// overlapping-documents fix. It is independent of tracker state.
func (t *Tracker) Pairwise(a, b string) (float64, error) {
	fa, err := fingerprint.Compute(a, t.params.Fingerprint)
	if err != nil {
		return 0, err
	}
	fb, err := fingerprint.Compute(b, t.params.Fingerprint)
	if err != nil {
		return 0, err
	}
	return fa.Containment(fb), nil
}

// Forget removes a segment from the given granularity's database and from
// the decision cache.
func (t *Tracker) Forget(seg segment.ID, g segment.Granularity) {
	db := t.pars
	if g == segment.GranularityDocument {
		db = t.docs
	}
	// RemoveSegment fires the eviction hook, which purges the decision
	// cache and incremental state; the explicit purge below also covers
	// segments the database never saw.
	db.RemoveSegment(seg)
	t.evictCached([]segment.ID{seg})
}

// CacheLen returns the number of cached decisions (for tests and metrics).
func (t *Tracker) CacheLen() int {
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		n += len(st.cache)
		st.mu.Unlock()
	}
	return n
}
