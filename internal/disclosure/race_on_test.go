//go:build race

package disclosure

const raceEnabled = true
