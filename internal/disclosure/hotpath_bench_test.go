package disclosure_test

// Hot-path benchmarks (`go test -bench=Observe -benchmem ./internal/disclosure`):
//
//   - BenchmarkObserveSingleThread: single-threaded text path, sharded
//     engine vs the seed reference — allocs/op must strictly decrease vs
//     seed;
//   - BenchmarkObserveConcurrent: goroutine-scaling series (1/2/4/8) over
//     the pre-fingerprinted path for the sharded engine, the DisableSharding
//     single-lock ablation, and the seed engine; ops/sec is reported via
//     b.ReportMetric;
//   - BenchmarkObserveBatch: a 64-item flush through ObserveBatch vs the
//     equivalent singular call sequence, reporting ns/item.
//
// cmd/bfbench runs the same comparison via expt.RunHotPath and records it
// as BENCH_2.json (`make bench`).

import (
	"fmt"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/expt"
	"github.com/lsds/browserflow/internal/segment"
)

func hotPathStreams(b *testing.B, workers int) [][]expt.HotPathObs {
	b.Helper()
	streams, err := expt.HotPathWorkload(
		expt.Scale{Seed: 1, ArticleParagraphs: 8},
		workers, 16, 4, disclosure.DefaultParams().Fingerprint)
	if err != nil {
		b.Fatal(err)
	}
	return streams
}

// newBenchObserver builds a fresh engine and returns its pre-fingerprinted
// observe function. name is "sharded", "single-lock" or "seed".
func newBenchObserver(b *testing.B, name string) func(o expt.HotPathObs) {
	b.Helper()
	params := disclosure.DefaultParams()
	switch name {
	case "sharded":
	case "single-lock":
		params.DisableSharding = true
	case "seed":
		tr := expt.NewSeedTracker(params)
		return func(o expt.HotPathObs) {
			tr.ObserveFP(o.Seg, o.FP, segment.GranularityParagraph)
		}
	default:
		b.Fatalf("unknown engine %q", name)
	}
	tr, err := disclosure.NewTracker(params)
	if err != nil {
		b.Fatal(err)
	}
	return func(o expt.HotPathObs) {
		if _, err := tr.ObserveParagraphFP(o.Seg, o.FP); err != nil {
			b.Error(err)
		}
	}
}

// BenchmarkObserveSingleThread measures the single-threaded text path
// (fingerprinting included). Run with -benchmem: the sharded sub-benchmark's
// allocs/op must be strictly below seed's.
func BenchmarkObserveSingleThread(b *testing.B) {
	streams := hotPathStreams(b, 1)
	stream := streams[0]
	for _, engine := range []string{"sharded", "seed"} {
		b.Run(engine, func(b *testing.B) {
			params := disclosure.DefaultParams()
			var observe func(seg segment.ID, text string) error
			if engine == "seed" {
				tr := expt.NewSeedTracker(params)
				observe = func(seg segment.ID, text string) error {
					_, err := tr.Observe(seg, text, segment.GranularityParagraph)
					return err
				}
			} else {
				tr, err := disclosure.NewTracker(params)
				if err != nil {
					b.Fatal(err)
				}
				observe = func(seg segment.ID, text string) error {
					_, err := tr.ObserveParagraph(seg, text)
					return err
				}
			}
			for _, o := range stream[:len(stream)/2] {
				if err := observe(o.Seg, o.Text); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := stream[i%len(stream)]
				if err := observe(o.Seg, o.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObserveConcurrent measures pre-fingerprinted observe throughput
// with G goroutines over disjoint segment sets and overlapping content.
func BenchmarkObserveConcurrent(b *testing.B) {
	streams := hotPathStreams(b, 8)
	for _, engine := range []string{"sharded", "single-lock", "seed"} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/g=%d", engine, g), func(b *testing.B) {
				observe := newBenchObserver(b, engine)
				for _, stream := range streams {
					for _, o := range stream[:len(stream)/2] {
						observe(o)
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					n := b.N / g
					if w < b.N%g {
						n++
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						stream := streams[w%len(streams)]
						for i := 0; i < n; i++ {
							observe(stream[i%len(stream)])
						}
					}(w, n)
				}
				wg.Wait()
				b.StopTimer()
				if d := b.Elapsed(); d > 0 {
					b.ReportMetric(float64(b.N)/d.Seconds(), "ops/sec")
				}
			})
		}
	}
}

// BenchmarkObserveBatch compares a 64-item flush through ObserveBatch with
// the equivalent singular sequence on identical pre-fingerprinted items.
func BenchmarkObserveBatch(b *testing.B) {
	const flushSize = 64
	const variants = 4
	streams := hotPathStreams(b, 8)
	flushes := make([][]disclosure.BatchObservation, variants)
	for v := 0; v < variants; v++ {
		items := make([]disclosure.BatchObservation, 0, flushSize)
		for k := 0; k < flushSize; k++ {
			stream := streams[k%len(streams)]
			o := stream[(v*16+k/len(streams))%len(stream)]
			items = append(items, disclosure.BatchObservation{Seg: o.Seg, FP: o.FP})
		}
		flushes[v] = items
	}
	for _, mode := range []string{"batch", "singular"} {
		b.Run(mode, func(b *testing.B) {
			tr, err := disclosure.NewTracker(disclosure.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			run := func(items []disclosure.BatchObservation) error {
				if mode == "batch" {
					_, err := tr.ObserveBatch(items)
					return err
				}
				for _, it := range items {
					if _, err := tr.ObserveParagraphFP(it.Seg, it.FP); err != nil {
						return err
					}
				}
				return nil
			}
			if err := run(flushes[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(flushes[i%variants]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if d := b.Elapsed(); d > 0 {
				b.ReportMetric(float64(d.Nanoseconds())/float64(b.N)/flushSize, "ns/item")
			}
		})
	}
}
