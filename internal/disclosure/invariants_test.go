package disclosure

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/lsds/browserflow/internal/segment"
)

// Property-based invariants of imprecise data flow tracking (§4).

func randomSentence(rng *rand.Rand, words int) string {
	vocab := []string{"ledger", "invoice", "payroll", "forecast", "audit",
		"budget", "reserve", "accrual", "margin", "liability"}
	var sb strings.Builder
	for i := 0; i < words; i++ {
		sb.WriteString(vocab[rng.Intn(len(vocab))])
		sb.WriteByte(' ')
	}
	return sb.String()
}

// Invariant: adding unrelated sources never hides a verbatim copy.
func TestQuickDetectionStableUnderMoreSources(t *testing.T) {
	f := func(seed int64, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := NewTracker(testParams())
		if err != nil {
			return false
		}
		secret := randomSentence(rng, 25)
		if _, err := tr.ObserveParagraph("src#p0", secret); err != nil {
			return false
		}
		// Unrelated noise sources.
		for i := 0; i < int(extraRaw)%20; i++ {
			noise := randomSentence(rng, 20)
			if _, err := tr.ObserveParagraph(segment.ID(fmt.Sprintf("noise#%d", i)), noise); err != nil {
				return false
			}
		}
		report, err := tr.ObserveParagraph("dst#p0", secret)
		if err != nil {
			return false
		}
		for _, s := range report.Sources {
			if s.Seg == "src#p0" {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Invariant: lowering a source's threshold never loses a detection.
func TestQuickDetectionMonotoneInThreshold(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		secret := randomSentence(rng, 30)
		fraction := 0.3 + float64(cut%60)/100 // 0.3..0.89
		partial := secret[:int(float64(len(secret))*fraction)]

		detectAt := func(threshold float64) (bool, error) {
			tr, err := NewTracker(testParams())
			if err != nil {
				return false, err
			}
			if _, err := tr.ObserveParagraph("src#p0", secret); err != nil {
				return false, err
			}
			tr.Paragraphs().SetThreshold("src#p0", threshold)
			report, err := tr.ObserveParagraph("dst#p0", partial)
			if err != nil {
				return false, err
			}
			return report.Disclosing(), nil
		}
		high, err := detectAt(0.7)
		if err != nil {
			return false
		}
		low, err := detectAt(0.2)
		if err != nil {
			return false
		}
		// Detection at the higher threshold implies detection at the lower.
		return !high || low
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Invariant: disclosure values are always within [0, 1] and sources sorted
// descending.
func TestQuickReportWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := NewTracker(testParams())
		if err != nil {
			return false
		}
		base := randomSentence(rng, 25)
		for i := 0; i < 5; i++ {
			variant := base
			if i%2 == 0 {
				variant = base + randomSentence(rng, 5)
			}
			if _, err := tr.ObserveParagraph(segment.ID(fmt.Sprintf("v#%d", i)), variant); err != nil {
				return false
			}
		}
		report, err := tr.ObserveParagraph("probe#p0", base)
		if err != nil {
			return false
		}
		prev := 2.0
		for _, s := range report.Sources {
			if s.Disclosure < 0 || s.Disclosure > 1 {
				return false
			}
			if s.Disclosure > prev {
				return false
			}
			prev = s.Disclosure
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
