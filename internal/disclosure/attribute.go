package disclosure

import (
	"sort"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/segment"
)

// Span is a half-open byte range [Start, End) of an observed text.
type Span struct {
	Start int
	End   int
}

// Len returns the span length in bytes.
func (s Span) Len() int { return s.End - s.Start }

// AttributeParagraph returns the passages of text that disclose src at
// paragraph granularity — §4.1: "Provided that the location of the
// corresponding source text for each hash in the fingerprint is also
// stored, it becomes possible to attribute accurately which text segment
// passages caused information disclosure." The spans are the n-gram ranges
// of text whose hashes belong to src's authoritative fingerprint, merged
// where they overlap or touch.
func (t *Tracker) AttributeParagraph(text string, src segment.ID) ([]Span, error) {
	return t.attribute(text, src, t.pars)
}

// AttributeDocument is AttributeParagraph at document granularity.
func (t *Tracker) AttributeDocument(text string, src segment.ID) ([]Span, error) {
	return t.attribute(text, src, t.docs)
}

func (t *Tracker) attribute(text string, src segment.ID, db *index.DB) ([]Span, error) {
	fp, err := fingerprint.Compute(text, t.params.Fingerprint)
	if err != nil {
		return nil, err
	}
	srcFP, ok := db.Fingerprint(src)
	if !ok {
		return nil, nil
	}
	var spans []Span
	for _, pos := range fp.Positions() {
		if !srcFP.Contains(pos.Hash) {
			continue
		}
		if !t.params.DisableAuthoritative {
			holder, ok := db.OldestHolder(pos.Hash)
			if !ok || holder != src {
				continue
			}
		}
		spans = append(spans, Span{Start: pos.Start, End: pos.End})
	}
	return mergeSpans(spans), nil
}

// mergeSpans sorts and coalesces overlapping or adjacent spans.
func mergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End < spans[j].End
	})
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End {
			if s.End > last.End {
				last.End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}
