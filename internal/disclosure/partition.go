package disclosure

import (
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/segment"
)

// Partition support: a partitioned cluster homes each segment (and its
// postings) on exactly one partition, so Algorithm 1's candidate discovery
// for a fingerprint spanning partitions becomes a scatter-gather. Each
// partition answers the pieces only it can compute — its local oldest
// holders with their first-observation sequence numbers, and per-candidate
// fingerprint facts (length, threshold, overlapping hash positions) — and
// the routing tier merges replies into exactly the evaluation
// evaluateCandidate performs against one shared database. The methods in
// this file are those local pieces plus the resolved-application path that
// installs a router-merged result without re-running Algorithm 1.

// RemoteCand carries the per-candidate facts a remote evaluator needs to
// run the candidate body of Algorithm 1 without this partition's database:
// |F(p)| and the threshold for the early-discard and ratio steps, and the
// query-hash positions covered by F(p) so authoritative overlap can be
// counted against a merged oldest-holder assignment.
type RemoteCand struct {
	Seg       segment.ID
	Len       int
	Threshold float64

	// Overlap lists the indices i of the query hash slice with
	// hashes[i] ∈ F(Seg). Query hashes are sorted and distinct (they come
	// from a fingerprint), so each index contributes at most one overlap
	// unit, exactly like AuthoritativeOverlap's linear merge.
	Overlap []int
}

// ResolveQuery computes this partition's contribution to a scatter-gather
// disclosure query: the local oldest holder of every query hash (with
// sequence numbers, so authority merges across partitions) and the
// candidate facts for each distinct local oldest holder. Candidates whose
// fingerprint is absent or empty are omitted — evaluateCandidate rejects
// them unconditionally, so the router treats a missing entry as a
// non-candidate.
func (t *Tracker) ResolveQuery(hashes []uint32, g segment.Granularity) ([]index.OldestRef, []RemoteCand) {
	db := t.dbFor(g)
	refs := db.AppendOldestRefs(hashes, nil)
	if len(refs) == 0 {
		return nil, nil
	}
	seen := make(map[segment.ID]bool, len(refs))
	var cands []RemoteCand
	for _, ref := range refs {
		if seen[ref.Seg] {
			continue
		}
		seen[ref.Seg] = true
		origin, threshold, ok := db.Origin(ref.Seg)
		if !ok || origin.Empty() {
			continue
		}
		cands = append(cands, RemoteCand{
			Seg:       ref.Seg,
			Len:       origin.Len(),
			Threshold: threshold,
			Overlap:   overlapIndices(origin, hashes),
		})
	}
	return refs, cands
}

// overlapIndices returns the indices of hashes covered by origin. Both
// sides are sorted ascending, so this is one linear merge.
func overlapIndices(origin *fingerprint.Fingerprint, hashes []uint32) []int {
	a := origin.Hashes()
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(hashes) {
		switch {
		case a[i] < hashes[j]:
			i++
		case a[i] > hashes[j]:
			j++
		default:
			out = append(out, j)
			i++
			j++
		}
	}
	return out
}

// ProbeFP consults the decision cache without touching the index — the
// phase-1 fast path of a routed observe. On a digest match it returns the
// same report a single-node cache hit produces; on a miss it returns
// ok=false and changes nothing, leaving the caller to scatter-gather and
// come back through ObserveResolvedFP.
func (t *Tracker) ProbeFP(seg segment.ID, fp *fingerprint.Fingerprint, g segment.Granularity) (Report, bool) {
	if t.params.DisableCache {
		return Report{}, false
	}
	digest := fp.Digest()
	st := t.stripeFor(seg)
	st.mu.Lock()
	defer st.mu.Unlock()
	entry, ok := st.cache[seg]
	if !ok || entry.digest != digest {
		return Report{}, false
	}
	report := entry.report
	report.Sources = cloneSources(entry.report.Sources)
	report.CacheHit = true
	return report, true
}

// ObserveResolvedFP applies an observation whose disclosure sources were
// already resolved elsewhere (by the routing tier's merge, or by WAL
// replay of such an observation): it installs the fingerprint in the
// index and the resolved sources in the decision cache, mirroring the
// state transitions of observeFPScratch with the evaluation replaced by
// the provided result. The caller owns fp and sources.
func (t *Tracker) ObserveResolvedFP(seg segment.ID, fp *fingerprint.Fingerprint, g segment.Granularity, sources []Source) Report {
	db := t.dbFor(g)
	digest := fp.Digest()
	db.Update(seg, fp)

	// Caller report and cache entry need independent Sources slices, same
	// dual-copy scheme (and nil preservation) as observeFPScratch.
	var own, cached []Source
	if n := len(sources); n > 0 {
		if t.params.DisableCache {
			own = cloneSources(sources)
		} else {
			buf := make([]Source, 2*n)
			copy(buf, sources)
			copy(buf[n:], sources)
			own = buf[:n:n]
			cached = buf[n:]
		}
	}
	report := Report{
		Seg:            seg,
		Granularity:    g,
		FingerprintLen: fp.Len(),
		Sources:        own,
	}
	st := t.stripeFor(seg)
	st.mu.Lock()
	if !t.params.DisableCache {
		st.cache[seg] = cacheEntry{digest: digest, report: Report{
			Seg:            report.Seg,
			Granularity:    report.Granularity,
			FingerprintLen: report.FingerprintLen,
			Sources:        cached,
		}}
	}
	if t.params.Incremental {
		st.prev[seg] = prevState{fp: fp, sources: cloneSources(sources)}
	}
	st.mu.Unlock()
	return report
}

// SetClockFloor raises the logical clock of the given granularity's
// database to at least floor (see index.DB.SetClockFloor).
func (t *Tracker) SetClockFloor(g segment.Granularity, floor uint64) {
	t.dbFor(g).SetClockFloor(floor)
}

// Clock returns the current logical time of the given granularity's
// database; partition replies carry it so routers fold partition clocks
// into their Lamport stamp.
func (t *Tracker) Clock(g segment.Granularity) uint64 {
	return t.dbFor(g).Now()
}

// ForgetRange removes every segment whose partition key falls in the
// inclusive range [lo, hi] from both databases (and, via the eviction
// hook, from the decision cache). It returns the number of segments
// removed. This is the source-side cleanup after a partition split hands
// a key range to a new partition; labels are deliberately untouched — the
// registry is global shadow state in a partitioned cluster.
func (t *Tracker) ForgetRange(lo, hi uint32) int {
	n := 0
	for _, db := range []*index.DB{t.pars, t.docs} {
		for _, seg := range db.Segments() {
			if k := segment.Key(seg); k >= lo && k <= hi {
				db.RemoveSegment(seg)
				n++
			}
		}
	}
	return n
}

// dbFor selects the database tracking the given granularity.
func (t *Tracker) dbFor(g segment.Granularity) *index.DB {
	if g == segment.GranularityDocument {
		return t.docs
	}
	return t.pars
}

// SortSources orders sources by descending disclosure, ties by ascending
// segment ID — the exported form of the total order every Report carries,
// so a router merging candidate evaluations from several partitions
// produces the same byte sequence as a single-node evaluation.
func SortSources(out []Source) { sortSources(out) }
