package disclosure

import (
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/segment"
)

// Incremental evaluation of Algorithm 1 (§4.3): "It can operate in an
// incremental fashion: if a user edits paragraph P by adding one hash h,
// the algorithm's main loop only needs to inspect h."
//
// When a segment is re-observed, only two candidate groups can change its
// source set:
//
//   - oldest holders of hashes *added* to the fingerprint — a segment that
//     was not a source can only become one if its authoritative overlap
//     grew, which requires a newly shared hash; and
//   - the *previous* sources — removals can push them below threshold.
//
// Everything else is untouched, so the per-edit cost is proportional to
// the edit, not to the paragraph. Like the paper's implementation this
// trades a sliver of precision for speed: if a *source's own* text changed
// since the last observation, its disclosure value is refreshed only when
// one of the two candidate groups surfaces it (BrowserFlow "only updates
// the label of the text segment being edited", §3.2).

// prevState remembers the last evaluation of a segment for delta
// computation.
type prevState struct {
	fp      *fingerprint.Fingerprint
	sources []Source
}

// incrementalSources runs the restricted candidate evaluation. prev is the
// previous state of seg; fp is the new fingerprint.
func (t *Tracker) incrementalSources(fp *fingerprint.Fingerprint, seg segment.ID, db *index.DB, prev prevState) []Source {
	if fp.Empty() {
		return nil
	}
	checked := make(map[segment.ID]bool)
	var out []Source

	evaluate := func(p segment.ID) {
		if p == seg || checked[p] {
			return
		}
		checked[p] = true
		if src, ok := t.evaluateCandidate(fp, p, db); ok {
			out = append(out, src)
		}
	}

	// Group 1: oldest holders of added hashes.
	for _, h := range fp.Hashes() {
		if prev.fp != nil && prev.fp.Contains(h) {
			continue
		}
		if holder, ok := db.OldestHolder(h); ok {
			evaluate(holder)
		}
	}
	// Group 2: previous sources (may have dropped below threshold).
	for _, src := range prev.sources {
		evaluate(src.Seg)
	}

	sortSources(out)
	return out
}

// evaluateCandidate runs the per-candidate body of Algorithm 1: threshold
// lookup, early discard, authoritative overlap, decision. Origin fetches
// the candidate's fingerprint and threshold in one stripe acquisition
// (the seed paid two locked calls here).
func (t *Tracker) evaluateCandidate(fp *fingerprint.Fingerprint, p segment.ID, db *index.DB) (Source, bool) {
	origin, threshold, ok := db.Origin(p)
	if !ok || origin.Empty() {
		return Source{}, false
	}
	if float64(origin.Len())*threshold > float64(fp.Len()) {
		return Source{}, false
	}
	var overlap, originLen int
	if t.params.DisableAuthoritative {
		overlap = origin.IntersectCount(fp)
		originLen = origin.Len()
	} else {
		overlap, originLen = db.AuthoritativeOverlap(p, fp)
	}
	if originLen == 0 || overlap == 0 {
		return Source{}, false
	}
	d := float64(overlap) / float64(originLen)
	if d < threshold {
		return Source{}, false
	}
	return Source{Seg: p, Disclosure: d, Threshold: threshold}, true
}

// sortSources orders sources by descending disclosure, breaking ties by
// ascending segment ID. Hand-rolled insertion sort: candidate sets are
// small, and sort.Slice's reflection-based swapper allocates on every call
// — this keeps the observe hot path allocation-free. The (Disclosure, Seg)
// key is a strict total order over distinct segments, so the result is
// identical to any comparison sort.
func sortSources(out []Source) {
	for i := 1; i < len(out); i++ {
		s := out[i]
		j := i - 1
		for j >= 0 && sourceLess(s, out[j]) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = s
	}
}

// sourceLess is the sortSources ordering predicate.
func sourceLess(a, b Source) bool {
	if a.Disclosure != b.Disclosure {
		return a.Disclosure > b.Disclosure
	}
	return a.Seg < b.Seg
}
