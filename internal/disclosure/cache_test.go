package disclosure

// Regression tests for the two decision-cache bugs fixed alongside the
// sharded hot path:
//
//  1. stale cache: ExpireBefore/RemoveSegment dropped segments from the
//     index but the Tracker kept their cache/prev entries forever, so a
//     re-observation with an unchanged fingerprint served a Report naming
//     sources that no longer exist;
//  2. cache aliasing: the cached Report shared its Sources slice with the
//     Report handed to the caller, so a caller mutating its result
//     corrupted every future cache hit.

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

const cacheTestText = "The quarterly staffing plan moves four engineers from the payments team " +
	"to the new disclosure tracking initiative starting in November this year."

func newCacheTestTracker(t *testing.T, mutate func(*Params)) *Tracker {
	t.Helper()
	params := DefaultParams()
	if mutate != nil {
		mutate(&params)
	}
	tr, err := NewTracker(params)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustObserve(t *testing.T, tr *Tracker, seg segment.ID, text string) Report {
	t.Helper()
	r, err := tr.ObserveParagraph(seg, text)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestExpireEvictsDecisionCache asserts that a segment dropped by
// ExpireBefore no longer serves a stale cached Report.
func TestExpireEvictsDecisionCache(t *testing.T) {
	tr := newCacheTestTracker(t, nil)
	mustObserve(t, tr, "doc#src", cacheTestText)
	got := mustObserve(t, tr, "doc#copy", cacheTestText)
	if len(got.Sources) != 1 || got.Sources[0].Seg != "doc#src" {
		t.Fatalf("setup: copy should disclose src, got %+v", got.Sources)
	}
	if tr.CacheLen() != 2 {
		t.Fatalf("CacheLen = %d, want 2", tr.CacheLen())
	}

	// Expire everything directly on the database, bypassing the Tracker —
	// the eviction hook must still purge the decision cache.
	tr.Paragraphs().ExpireBefore(tr.Paragraphs().Now() + 1)
	if tr.CacheLen() != 0 {
		t.Fatalf("CacheLen after expiry = %d, want 0 (stale entries kept)", tr.CacheLen())
	}

	// Same text, same fingerprint digest: without eviction this would be a
	// cache hit reporting the long-gone doc#src as a source.
	again := mustObserve(t, tr, "doc#copy", cacheTestText)
	if again.CacheHit {
		t.Error("expired segment served a cached report")
	}
	if len(again.Sources) != 0 {
		t.Errorf("expired source still reported: %+v", again.Sources)
	}
}

// TestForgetEvictsDecisionCache asserts the same for RemoveSegment via
// Tracker.Forget and for direct RemoveSegment calls.
func TestForgetEvictsDecisionCache(t *testing.T) {
	tr := newCacheTestTracker(t, nil)
	mustObserve(t, tr, "doc#src", cacheTestText)
	mustObserve(t, tr, "doc#copy", cacheTestText)

	// Direct database removal (not through Forget) must also evict.
	tr.Paragraphs().RemoveSegment("doc#src")
	tr.Paragraphs().RemoveSegment("doc#copy")
	if tr.CacheLen() != 0 {
		t.Fatalf("CacheLen after RemoveSegment = %d, want 0", tr.CacheLen())
	}
	again := mustObserve(t, tr, "doc#copy", cacheTestText)
	if again.CacheHit || len(again.Sources) != 0 {
		t.Errorf("removed source leaked: hit=%v sources=%+v", again.CacheHit, again.Sources)
	}
}

// TestExpireEvictsIncrementalPrevState asserts that the incremental
// previous-state map is evicted too: after expiry the re-observation must
// run the full (not delta) evaluation against the emptied database.
func TestExpireEvictsIncrementalPrevState(t *testing.T) {
	tr := newCacheTestTracker(t, func(p *Params) { p.Incremental = true })
	mustObserve(t, tr, "doc#src", cacheTestText)
	got := mustObserve(t, tr, "doc#copy", cacheTestText)
	if len(got.Sources) != 1 {
		t.Fatalf("setup: want 1 source, got %+v", got.Sources)
	}
	tr.Paragraphs().ExpireBefore(tr.Paragraphs().Now() + 1)
	again := mustObserve(t, tr, "doc#copy", cacheTestText)
	if again.CacheHit || len(again.Sources) != 0 {
		t.Errorf("stale incremental state survived expiry: hit=%v sources=%+v", again.CacheHit, again.Sources)
	}
}

// TestCacheHitSourcesNotAliased asserts that mutating a returned Report's
// Sources cannot corrupt later cache hits — for both the report that
// populated the cache (miss path) and subsequent hits.
func TestCacheHitSourcesNotAliased(t *testing.T) {
	tr := newCacheTestTracker(t, nil)
	mustObserve(t, tr, "doc#src", cacheTestText)

	// Miss path: the report that populates the cache.
	first := mustObserve(t, tr, "doc#copy", cacheTestText)
	if first.CacheHit || len(first.Sources) != 1 {
		t.Fatalf("setup: want miss with 1 source, got hit=%v sources=%+v", first.CacheHit, first.Sources)
	}
	first.Sources[0].Seg = "corrupted/by-caller"
	first.Sources[0].Disclosure = -1

	// Hit path: must see the original source, then be mutated in turn.
	second := mustObserve(t, tr, "doc#copy", cacheTestText)
	if !second.CacheHit {
		t.Fatal("expected cache hit")
	}
	if second.Sources[0].Seg != "doc#src" || second.Sources[0].Disclosure <= 0 {
		t.Fatalf("cache corrupted by miss-path caller: %+v", second.Sources[0])
	}
	second.Sources[0].Seg = "corrupted/again"

	third := mustObserve(t, tr, "doc#copy", cacheTestText)
	if !third.CacheHit || third.Sources[0].Seg != "doc#src" {
		t.Fatalf("cache corrupted by hit-path caller: %+v", third.Sources[0])
	}
}

// TestBatchReportsNotAliased asserts the same ownership guarantee for the
// batch path.
func TestBatchReportsNotAliased(t *testing.T) {
	tr := newCacheTestTracker(t, nil)
	mustObserve(t, tr, "doc#src", cacheTestText)
	items := []BatchObservation{
		{Seg: "doc#copy", Text: cacheTestText},
		{Seg: "doc#copy", Text: cacheTestText}, // second item is a cache hit
	}
	reports, err := tr.ObserveBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || len(reports[0].Sources) != 1 || len(reports[1].Sources) != 1 {
		t.Fatalf("unexpected batch reports: %+v", reports)
	}
	if !reports[1].CacheHit {
		t.Error("second identical batch item should hit the cache")
	}
	reports[0].Sources[0].Seg = "corrupted"
	if reports[1].Sources[0].Seg != "doc#src" {
		t.Error("batch reports share a Sources slice")
	}
	again := mustObserve(t, tr, "doc#copy", cacheTestText)
	if again.Sources[0].Seg != "doc#src" {
		t.Error("cache corrupted through batch report")
	}
}

// TestBatchMatchesSingularSequence pins ObserveBatch to the exact
// behaviour of the equivalent singular call sequence, including the
// sequential visibility of earlier items.
func TestBatchMatchesSingularSequence(t *testing.T) {
	texts := []string{
		cacheTestText,
		cacheTestText + " A trailing sentence extends the copy beyond the original paragraph.",
		strings.Repeat("Fresh unrelated content about winter migration patterns of seabirds. ", 3),
	}
	single := newCacheTestTracker(t, nil)
	batch := newCacheTestTracker(t, nil)

	var items []BatchObservation
	var want []Report
	for i, text := range texts {
		for j := 0; j < 2; j++ { // observe each text twice to exercise hits
			seg := segment.ID("doc#p" + string(rune('0'+i)))
			items = append(items, BatchObservation{Seg: seg, Text: text})
			want = append(want, mustObserve(t, single, seg, text))
		}
	}
	got, err := batch.ObserveBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Seg != got[i].Seg || want[i].CacheHit != got[i].CacheHit ||
			want[i].FingerprintLen != got[i].FingerprintLen || len(want[i].Sources) != len(got[i].Sources) {
			t.Fatalf("item %d: batch diverged from singular sequence:\nwant %+v\n got %+v", i, want[i], got[i])
		}
	}
}
