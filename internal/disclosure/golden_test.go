package disclosure_test

// Golden-equivalence harness: the sharded, allocation-lean Algorithm 1 hot
// path must produce byte-identical Reports to the original single-lock,
// map-based seed implementation. expt.SeedTracker is a faithful
// re-implementation of that seed (one mutex, map-backed DBhash/DBpar,
// linear posting scans, per-call candidate discovery); the tests replay the
// synthetic evaluation corpora through both engines and compare every
// Report via its JSON encoding.

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/expt"
	"github.com/lsds/browserflow/internal/segment"
)

// --- corpus replay --------------------------------------------------------

// goldenCorpus yields the observation stream the equivalence tests replay:
// every sampled revision of every synthetic article, paragraph by
// paragraph, plus a whole-document observation per revision.
type goldenObs struct {
	seg  segment.ID
	text string
	g    segment.Granularity
}

func goldenStream(t *testing.T) []goldenObs {
	t.Helper()
	articles := dataset.GenerateRevisionCorpus(dataset.RevisionCorpusConfig{
		Seed:               7,
		Revisions:          8,
		Paragraphs:         6,
		StableVolatility:   0.01,
		VolatileVolatility: 0.25,
	})
	var stream []goldenObs
	for _, a := range articles {
		doc := segment.DocumentID("wiki/" + a.Title)
		for r, rev := range a.Revisions {
			if r%2 == 1 && r != len(a.Revisions)-1 {
				continue // sample every other revision plus the latest
			}
			for i, par := range rev {
				stream = append(stream, goldenObs{
					seg:  segment.ParSegmentID(doc, fmt.Sprintf("p%d", i)),
					text: par,
					g:    segment.GranularityParagraph,
				})
			}
			var full string
			for i, par := range rev {
				if i > 0 {
					full += "\n\n"
				}
				full += par
			}
			stream = append(stream, goldenObs{
				seg:  segment.DocSegmentID(doc),
				text: full,
				g:    segment.GranularityDocument,
			})
		}
	}
	if len(stream) < 100 {
		t.Fatalf("corpus too small: %d observations", len(stream))
	}
	return stream
}

func reportJSON(t *testing.T, r disclosure.Report) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runGolden replays the corpus through the seed reference and the current
// engine under params and requires byte-identical reports.
func runGolden(t *testing.T, params disclosure.Params) {
	t.Helper()
	stream := goldenStream(t)
	ref := expt.NewSeedTracker(params)
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		t.Fatal(err)
	}
	var hits, disclosing int
	for i, obs := range stream {
		want, err := ref.Observe(obs.seg, obs.text, obs.g)
		if err != nil {
			t.Fatal(err)
		}
		var got disclosure.Report
		if obs.g == segment.GranularityDocument {
			got, err = tracker.ObserveDocument(obs.seg, obs.text)
		} else {
			got, err = tracker.ObserveParagraph(obs.seg, obs.text)
		}
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, gotJSON := reportJSON(t, want), reportJSON(t, got)
		if wantJSON != gotJSON {
			t.Fatalf("observation %d (%s): report diverged\nseed: %s\n new: %s", i, obs.seg, wantJSON, gotJSON)
		}
		if got.CacheHit {
			hits++
		}
		if got.Disclosing() {
			disclosing++
		}
	}
	// The corpus must actually exercise the interesting paths; a vacuously
	// green equivalence test would be worthless.
	if hits == 0 && !params.DisableCache {
		t.Error("corpus never hit the decision cache")
	}
	if disclosing == 0 {
		t.Error("corpus never produced a disclosing report")
	}
}

// TestGoldenEquivalenceDefault pins the default (authoritative, cached,
// non-incremental) engine to the seed behaviour.
func TestGoldenEquivalenceDefault(t *testing.T) {
	runGolden(t, disclosure.DefaultParams())
}

// TestGoldenEquivalenceNoCache pins the uncached ablation.
func TestGoldenEquivalenceNoCache(t *testing.T) {
	params := disclosure.DefaultParams()
	params.DisableCache = true
	runGolden(t, params)
}

// TestGoldenEquivalenceNoAuthoritative pins the raw-containment ablation
// (every holder is a candidate).
func TestGoldenEquivalenceNoAuthoritative(t *testing.T) {
	params := disclosure.DefaultParams()
	params.DisableAuthoritative = true
	runGolden(t, params)
}

// TestGoldenEquivalenceSingleShard pins the DisableSharding baseline used
// by the benchmarks to the same behaviour as the sharded layout.
func TestGoldenEquivalenceSingleShard(t *testing.T) {
	params := disclosure.DefaultParams()
	params.DisableSharding = true
	runGolden(t, params)
}

// TestGoldenEquivalencePeriodicCompact replays the corpus while merging
// the index heads into their compacted runs every few observations — the
// cadence a long-lived bftagd runs with -compact-every. Reports must stay
// byte-identical to the never-merging seed, pinning that mid-stream
// compaction is invisible to Algorithm 1.
func TestGoldenEquivalencePeriodicCompact(t *testing.T) {
	params := disclosure.DefaultParams()
	stream := goldenStream(t)
	ref := expt.NewSeedTracker(params)
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		t.Fatal(err)
	}
	for i, obs := range stream {
		want, err := ref.Observe(obs.seg, obs.text, obs.g)
		if err != nil {
			t.Fatal(err)
		}
		var got disclosure.Report
		if obs.g == segment.GranularityDocument {
			got, err = tracker.ObserveDocument(obs.seg, obs.text)
		} else {
			got, err = tracker.ObserveParagraph(obs.seg, obs.text)
		}
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, gotJSON := reportJSON(t, want), reportJSON(t, got)
		if wantJSON != gotJSON {
			t.Fatalf("observation %d (%s): report diverged after periodic compaction\nseed: %s\n new: %s", i, obs.seg, wantJSON, gotJSON)
		}
		if i%23 == 22 {
			tracker.Paragraphs().Compact()
			tracker.Documents().Compact()
		}
	}
}

// TestGoldenEquivalenceBatch replays the same corpus through ObserveBatch
// in flushes and requires the flushed reports to match the seed's
// one-by-one replay.
func TestGoldenEquivalenceBatch(t *testing.T) {
	params := disclosure.DefaultParams()
	stream := goldenStream(t)
	ref := expt.NewSeedTracker(params)
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		t.Fatal(err)
	}
	const flush = 17 // deliberately not aligned with paragraph counts
	for start := 0; start < len(stream); start += flush {
		end := start + flush
		if end > len(stream) {
			end = len(stream)
		}
		items := make([]disclosure.BatchObservation, 0, end-start)
		for _, obs := range stream[start:end] {
			items = append(items, disclosure.BatchObservation{
				Seg:         obs.seg,
				Text:        obs.text,
				Granularity: obs.g,
			})
		}
		reports, err := tracker.ObserveBatch(items)
		if err != nil {
			t.Fatal(err)
		}
		for i, obs := range stream[start:end] {
			want, err := ref.Observe(obs.seg, obs.text, obs.g)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, gotJSON := reportJSON(t, want), reportJSON(t, reports[i])
			if wantJSON != gotJSON {
				t.Fatalf("batch observation %d (%s): report diverged\nseed: %s\n new: %s", start+i, obs.seg, wantJSON, gotJSON)
			}
		}
	}
}
