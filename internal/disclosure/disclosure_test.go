package disclosure

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// testParams uses small winnowing parameters so short test texts produce
// meaningful fingerprints.
func testParams() Params {
	return Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	}
}

func newTracker(t *testing.T, p Params) *Tracker {
	t.Helper()
	tr, err := NewTracker(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const (
	wikiText  = "The interviewing guidelines require at least two independent interviewers for every candidate evaluation session."
	otherText = "Quarterly marketing budgets should be submitted through the finance portal before the end of the month."
)

func TestNewTrackerValidation(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{name: "default ok", mutate: func(p *Params) {}, wantErr: false},
		{name: "bad fingerprint", mutate: func(p *Params) { p.Fingerprint.NGram = 0 }, wantErr: true},
		{name: "Tpar negative", mutate: func(p *Params) { p.Tpar = -0.1 }, wantErr: true},
		{name: "Tpar above one", mutate: func(p *Params) { p.Tpar = 1.1 }, wantErr: true},
		{name: "Tdoc above one", mutate: func(p *Params) { p.Tdoc = 2 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if _, err := NewTracker(p); (err != nil) != tt.wantErr {
				t.Errorf("NewTracker: err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestCopyPasteDetected(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("docs#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Fatal("verbatim copy not detected as disclosure")
	}
	if got := report.Sources[0].Seg; got != "wiki#p0" {
		t.Errorf("source=%q, want wiki#p0", got)
	}
	if got := report.Sources[0].Disclosure; got != 1.0 {
		t.Errorf("disclosure=%v, want 1.0", got)
	}
}

func TestUnrelatedTextNotDetected(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("docs#p0", otherText)
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Errorf("unrelated text reported sources: %v", report.SourceSegs())
	}
}

func TestDisclosureAsymmetry(t *testing.T) {
	// The original is not reported as disclosing from its own copy.
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("docs#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	// Re-observe the original with one extra word appended to defeat the
	// decision cache.
	report, err := tr.ObserveParagraph("wiki#p0", wikiText+" addendum")
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Errorf("original reported as disclosing from its copy: %v", report.SourceSegs())
	}
}

func TestPartialCopyMeetsThreshold(t *testing.T) {
	tr := newTracker(t, testParams())
	source := wikiText + " " + strings.Repeat("Additional scheduling details are described in the onboarding handbook section four. ", 2)
	if _, err := tr.ObserveParagraph("wiki#p0", source); err != nil {
		t.Fatal(err)
	}
	// Copy most of the source.
	copyText := source[:len(source)*3/4]
	report, err := tr.ObserveParagraph("docs#p0", copyText)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Error("3/4 copy with Tpar=0.5 not detected")
	}
	// Copy a sliver: below the 0.5 requirement.
	report2, err := tr.ObserveParagraph("docs#p1", source[:len(source)/10])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range report2.Sources {
		if s.Seg == "wiki#p0" && s.Disclosure >= 0.5 {
			t.Errorf("sliver copy reported %v disclosure of wiki#p0", s.Disclosure)
		}
	}
}

func TestZeroThresholdDetectsSingleHash(t *testing.T) {
	p := testParams()
	tr := newTracker(t, p)
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	tr.Paragraphs().SetThreshold("wiki#p0", 0)
	// A short excerpt longer than the guarantee threshold shares >= 1 hash.
	excerpt := "two independent interviewers"
	report, err := tr.ObserveParagraph("docs#p0", excerpt)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Error("Tpar=0: single-hash leak not detected")
	}
}

func TestHighThresholdSuppressesPartial(t *testing.T) {
	p := testParams()
	tr := newTracker(t, p)
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	tr.Paragraphs().SetThreshold("wiki#p0", 0.95)
	report, err := tr.ObserveParagraph("docs#p0", wikiText[:len(wikiText)/2])
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Errorf("half copy reported despite Tpar=0.95: %+v", report.Sources)
	}
}

func TestOverlappingDocumentsFigure7(t *testing.T) {
	// B is a superset of A's paragraph; C copies the shared text. Pairwise
	// metrics would blame both A and B; authoritative fingerprints must
	// blame only A.
	shared := wikiText
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("A#p0", shared); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("B#p0", shared+" Some extra commentary specific to document B follows here."); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("C#p0", shared)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Fatal("C should disclose from A")
	}
	for _, s := range report.Sources {
		if s.Seg == "B#p0" {
			t.Errorf("authoritative metric blamed non-authoritative source B: %+v", s)
		}
	}
}

func TestAblationWithoutAuthoritativeBlamesBoth(t *testing.T) {
	shared := wikiText
	p := testParams()
	p.DisableAuthoritative = true
	tr := newTracker(t, p)
	if _, err := tr.ObserveParagraph("A#p0", shared); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("B#p0", shared+" tail."); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("C#p0", shared)
	if err != nil {
		t.Fatal(err)
	}
	var blamedB bool
	for _, s := range report.Sources {
		if s.Seg == "B#p0" {
			blamedB = true
		}
	}
	if !blamedB {
		t.Error("ablation: expected the false positive on B when authoritative fingerprints are disabled")
	}
}

func TestDecisionCache(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	first, err := tr.ObserveParagraph("docs#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first observation should not be a cache hit")
	}
	second, err := tr.ObserveParagraph("docs#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical re-observation should hit the cache")
	}
	if len(second.Sources) != len(first.Sources) {
		t.Error("cached report differs from original")
	}
	// Punctuation-only edits do not change the fingerprint either.
	third, err := tr.ObserveParagraph("docs#p0", strings.ToUpper(wikiText))
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Error("case-only edit should hit the cache (same normalised fingerprint)")
	}
}

func TestCacheDisabled(t *testing.T) {
	p := testParams()
	p.DisableCache = true
	tr := newTracker(t, p)
	if _, err := tr.ObserveParagraph("docs#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	r, err := tr.ObserveParagraph("docs#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Error("cache disabled but got a cache hit")
	}
	if tr.CacheLen() != 0 {
		t.Errorf("CacheLen=%d, want 0", tr.CacheLen())
	}
}

func TestQueryDoesNotMutate(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	before := tr.Paragraphs().Stats()
	sources, err := tr.QueryParagraph(wikiText, "ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) == 0 {
		t.Error("query missed the stored source")
	}
	after := tr.Paragraphs().Stats()
	if before != after {
		t.Errorf("QueryParagraph mutated the database: %+v -> %+v", before, after)
	}
}

func TestDocumentGranularityIndependent(t *testing.T) {
	tr := newTracker(t, testParams())
	doc := wikiText + "\n\n" + otherText
	if _, err := tr.ObserveDocument("wiki/guide", doc); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveDocument("docs/new", doc)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Error("document-level copy not detected")
	}
	if report.Granularity != segment.GranularityDocument {
		t.Errorf("granularity=%v", report.Granularity)
	}
	// The paragraph database must be untouched.
	if s := tr.Paragraphs().Stats(); s.Segments != 0 {
		t.Errorf("paragraph DB has %d segments after document observations", s.Segments)
	}
}

func TestEmptyTextNoSources(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("docs#p0", "")
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() || report.FingerprintLen != 0 {
		t.Errorf("empty text: %+v", report)
	}
}

func TestShortTextFalseNegative(t *testing.T) {
	// §6.1: paragraphs shorter than one fingerprinting window are a
	// systematic false-negative source. Verify the documented behaviour.
	tr := newTracker(t, testParams())
	short := "abc" // < NGram after normalisation
	if _, err := tr.ObserveParagraph("wiki#p0", short); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("docs#p0", short)
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Error("sub-n-gram text should not produce disclosure reports")
	}
}

func TestForget(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	tr.Forget("wiki#p0", segment.GranularityParagraph)
	report, err := tr.ObserveParagraph("docs#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Errorf("forgotten source still reported: %v", report.SourceSegs())
	}
}

func TestExpiryPromotesCopyToAuthoritative(t *testing.T) {
	// §4.4: periodic removal of old fingerprints. After the original's
	// postings expire, its surviving copy becomes the authoritative
	// source of the text, and new copies are attributed to it.
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("old#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("copy#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	// Expire everything before the copy's observation.
	db := tr.Paragraphs()
	db.ExpireBefore(db.Now())
	report, err := tr.ObserveParagraph("new#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Fatal("disclosure lost after expiry")
	}
	if got := report.Sources[0].Seg; got != "copy#p0" {
		t.Errorf("source=%q, want the promoted copy", got)
	}
}

func TestPairwise(t *testing.T) {
	tr := newTracker(t, testParams())
	d, err := tr.Pairwise(wikiText, wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.0 {
		t.Errorf("Pairwise(self)=%v, want 1.0", d)
	}
	d, err = tr.Pairwise(wikiText, otherText)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.0 {
		t.Errorf("Pairwise(unrelated)=%v, want 0.0", d)
	}
}

func TestRephrasedTextEscapesTracking(t *testing.T) {
	// §4.4 limitation: full rephrasing escapes imprecise tracking.
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	rephrased := "Every candidate assessment meeting needs a pair of separate staff members conducting it, per policy."
	report, err := tr.ObserveParagraph("docs#p0", rephrased)
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Errorf("fully rephrased text reported as disclosure: %v", report.SourceSegs())
	}
}

func TestUnicodeTextTracked(t *testing.T) {
	// Non-Latin scripts normalise to letters and fingerprint normally;
	// detection is script-independent.
	tr := newTracker(t, testParams())
	cjk := "机密文件：下一季度的收购目标包括三家存储初创公司和一家数据库供应商，请勿外传。"
	if _, err := tr.ObserveParagraph("wiki#cjk", cjk); err != nil {
		t.Fatal(err)
	}
	report, err := tr.ObserveParagraph("docs#cjk", cjk)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Error("CJK copy not detected")
	}
	mixed := "Résumé of the état-of-the-art: die Übernahme läuft — конфиденциально!"
	if _, err := tr.ObserveParagraph("wiki#mixed", mixed); err != nil {
		t.Fatal(err)
	}
	report, err = tr.ObserveParagraph("docs#mixed", mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Error("mixed-script copy not detected")
	}
}

// Property: a verbatim copy of any sufficiently long random text is always
// detected, whoever observed it first.
func TestQuickVerbatimCopyAlwaysDetected(t *testing.T) {
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliett", "kilo", "lima", "mike"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		tr := newTracker(t, testParams())
		var sb strings.Builder
		for i := 0; i < 30; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		text := sb.String()
		if _, err := tr.ObserveParagraph("src#p0", text); err != nil {
			t.Fatal(err)
		}
		report, err := tr.ObserveParagraph("dst#p0", text)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Disclosing() {
			t.Fatalf("trial %d: verbatim copy of %q not detected", trial, text[:40])
		}
		if report.Sources[0].Disclosure != 1.0 {
			t.Fatalf("trial %d: disclosure=%v, want 1.0", trial, report.Sources[0].Disclosure)
		}
	}
}

func BenchmarkObserveParagraph(b *testing.B) {
	tr, err := NewTracker(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	letters := "abcdefghijklmnopqrstuvwxyz    "
	texts := make([]string, 200)
	for i := range texts {
		buf := make([]byte, 500)
		for j := range buf {
			buf[j] = letters[rng.Intn(len(letters))]
		}
		texts[i] = string(buf)
		if _, err := tr.ObserveParagraph(segment.ID("seed#"+texts[i][:8]), texts[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ObserveParagraph("probe#p0", texts[i%len(texts)]); err != nil {
			b.Fatal(err)
		}
	}
}
