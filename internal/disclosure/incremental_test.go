package disclosure

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

func incParams() Params {
	p := testParams()
	p.Incremental = true
	return p
}

func TestIncrementalDetectsNewDisclosure(t *testing.T) {
	tr := newTracker(t, incParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	// First observation of the destination (full path).
	if _, err := tr.ObserveParagraph("docs#p0", "Starting with some harmless words about office plants and chairs."); err != nil {
		t.Fatal(err)
	}
	// Append the sensitive text: incremental path must find the source.
	report, err := tr.ObserveParagraph("docs#p0", "Starting with some harmless words about office plants and chairs. "+wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() || report.Sources[0].Seg != "wiki#p0" {
		t.Fatalf("incremental append missed disclosure: %+v", report)
	}
}

func TestIncrementalDropsStaleSource(t *testing.T) {
	tr := newTracker(t, incParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("docs#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	// Rewrite: previous source must be re-evaluated and dropped.
	report, err := tr.ObserveParagraph("docs#p0", "Entirely new content about botanical gardens, greenhouses and seasonal pruning schedules.")
	if err != nil {
		t.Fatal(err)
	}
	if report.Disclosing() {
		t.Errorf("stale source survived rewrite: %v", report.SourceSegs())
	}
}

// Incremental and full evaluation agree on single-writer edit sequences.
func TestIncrementalMatchesFullEvaluation(t *testing.T) {
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliett", "kilo", "lima"}
	rng := rand.New(rand.NewSource(2024))
	mkText := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		return sb.String()
	}

	full := newTracker(t, testParams())
	inc := newTracker(t, incParams())

	// Shared corpus of sources.
	for i := 0; i < 10; i++ {
		text := mkText(25)
		seg := segment.ID(fmt.Sprintf("src#%d", i))
		if _, err := full.ObserveParagraph(seg, text); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.ObserveParagraph(seg, text); err != nil {
			t.Fatal(err)
		}
	}

	// One destination paragraph evolving over 30 edits.
	cur := mkText(10)
	for step := 0; step < 30; step++ {
		switch rng.Intn(3) {
		case 0:
			cur += " " + mkText(5)
		case 1:
			f := strings.Fields(cur)
			if len(f) > 6 {
				cur = strings.Join(f[:len(f)-4], " ")
			}
		case 2:
			cur += " " + words[rng.Intn(len(words))]
		}
		rf, err := full.ObserveParagraph("dst#p0", cur)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := inc.ObserveParagraph("dst#p0", cur)
		if err != nil {
			t.Fatal(err)
		}
		fullSegs := fmt.Sprint(rf.SourceSegs())
		incSegs := fmt.Sprint(ri.SourceSegs())
		if fullSegs != incSegs {
			t.Fatalf("step %d: full=%v incremental=%v (text %q)", step, fullSegs, incSegs, cur)
		}
	}
}

func TestIncrementalForgetClearsState(t *testing.T) {
	tr := newTracker(t, incParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("docs#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	tr.Forget("docs#p0", segment.GranularityParagraph)
	// Re-observing after Forget takes the full path and still works.
	report, err := tr.ObserveParagraph("docs#p0", wikiText)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Disclosing() {
		t.Error("post-Forget observation missed disclosure")
	}
}

// The incremental path's cost is proportional to the edit, not the
// paragraph: benchmark appending words to a large paragraph.
func BenchmarkIncrementalAppend(b *testing.B) { benchAppend(b, true) }
func BenchmarkFullAppend(b *testing.B)        { benchAppend(b, false) }

func benchAppend(b *testing.B, incremental bool) {
	p := DefaultParams()
	p.Incremental = incremental
	p.DisableCache = true // isolate the Algorithm 1 cost
	tr, err := NewTracker(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	words := []string{"storage", "compute", "network", "billing", "support",
		"region", "cluster", "tenant", "replica", "quorum"}
	mk := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		return sb.String()
	}
	// 50 source paragraphs the destination overlaps.
	for i := 0; i < 50; i++ {
		if _, err := tr.ObserveParagraph(segment.ID(fmt.Sprintf("src#%d", i)), mk(40)); err != nil {
			b.Fatal(err)
		}
	}
	cur := mk(400)
	if _, err := tr.ObserveParagraph("dst#p0", cur); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur += words[i%len(words)] + " "
		if _, err := tr.ObserveParagraph("dst#p0", cur); err != nil {
			b.Fatal(err)
		}
	}
}
