package disclosure

import "github.com/lsds/browserflow/internal/index"

// TrackerDigest summarises both granularity databases for anti-entropy.
// Two trackers that applied the same logical record set — in any order,
// with any batching — report the same digest, so a primary can detect a
// replica whose in-memory state has silently diverged even though both
// stand at the same WAL position.
type TrackerDigest struct {
	Paragraphs index.Digest `json:"paragraphs"`
	Documents  index.Digest `json:"documents"`
	// Combined is the order-salted fold of both databases' Combined
	// digests — the single value replicas attach to stream rounds.
	Combined uint64 `json:"combined"`
}

// Digest snapshots the tracker's anti-entropy digest. Each database is
// read under its shard locks; a quiescent tracker always reports a
// stable value.
func (t *Tracker) Digest() TrackerDigest {
	p := t.pars.Digest()
	d := t.docs.Digest()
	return TrackerDigest{Paragraphs: p, Documents: d, Combined: index.Fold(p, d)}
}
