package disclosure

import (
	"fmt"
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

// TestObserveSteadyStateAllocs pins the corpus-scale hot-path property: a
// re-observation whose text is unchanged — the overwhelmingly common case
// for per-keystroke observes of a stable paragraph — performs zero heap
// allocations end to end. The fingerprint comes out of the pooled scratch,
// the decision cache answers without recomputing Algorithm 1, and a
// non-disclosing report carries no sources to copy.
func TestObserveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	tr, err := NewTracker(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Populate the databases so the observe is not trivially empty.
	for i := 0; i < 16; i++ {
		seg := segment.ID(fmt.Sprintf("wiki/seed#p%d", i))
		text := fmt.Sprintf("seed paragraph %d with enough repeated filler text to fingerprint properly and stand alone", i)
		if _, err := tr.ObserveParagraph(seg, text); err != nil {
			t.Fatal(err)
		}
	}
	seg := segment.ID("pad/steady#p0")
	text := "an entirely original paragraph that discloses nothing from the seeds but is long enough to carry a full fingerprint of its own"
	// Warm-up: create the cache entry and grow the pooled scratch.
	if _, err := tr.ObserveParagraph(seg, text); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph(seg, text); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		report, err := tr.ObserveParagraph(seg, text)
		if err != nil {
			t.Fatal(err)
		}
		if !report.CacheHit {
			t.Fatal("steady-state observe missed the decision cache")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ObserveParagraph allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkObserveSteadyState measures the cache-hit observe loop; the
// allocs/op column is the regression signal for the zero-alloc property.
func BenchmarkObserveSteadyState(b *testing.B) {
	tr, err := NewTracker(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	seg := segment.ID("pad/bench#p0")
	text := "a benchmark paragraph that is observed over and over again without changing so every iteration is a decision cache hit"
	if _, err := tr.ObserveParagraph(seg, text); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ObserveParagraph(seg, text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveChurn measures the cache-miss path: the text alternates,
// so every observe recomputes Algorithm 1 and clones the fingerprint for
// retention. This bounds the allocation cost of a real edit.
func BenchmarkObserveChurn(b *testing.B) {
	tr, err := NewTracker(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	seg := segment.ID("pad/churn#p0")
	texts := [2]string{
		"first version of the churning paragraph with plenty of text to fingerprint across several windows of hashes",
		"second version of the churning paragraph with plenty of text to fingerprint across several windows of hashes",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ObserveParagraph(seg, texts[i&1]); err != nil {
			b.Fatal(err)
		}
	}
}
