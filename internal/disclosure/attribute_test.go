package disclosure

import (
	"strings"
	"testing"
)

func TestAttributeFindsCopiedPassage(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	prefix := "Here are my own notes before the copied part: "
	suffix := " and some trailing thoughts after it."
	observed := prefix + wikiText + suffix

	spans, err := tr.AttributeParagraph(observed, "wiki#p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans attributed")
	}
	// Every span must land inside (or at least overlap) the copied region.
	copiedStart, copiedEnd := len(prefix), len(prefix)+len(wikiText)
	for _, s := range spans {
		if s.End <= copiedStart || s.Start >= copiedEnd {
			t.Errorf("span %+v (%q) outside the copied region", s, observed[s.Start:s.End])
		}
	}
	// The spans collectively cover a meaningful part of the copy.
	total := 0
	for _, s := range spans {
		total += s.Len()
	}
	if total < len(wikiText)/4 {
		t.Errorf("attributed %d bytes, want at least %d", total, len(wikiText)/4)
	}
}

func TestAttributeNothingForUnrelatedText(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	spans, err := tr.AttributeParagraph(otherText, "wiki#p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Errorf("unrelated text attributed spans: %v", spans)
	}
}

func TestAttributeUnknownSource(t *testing.T) {
	tr := newTracker(t, testParams())
	spans, err := tr.AttributeParagraph(wikiText, "ghost#p0")
	if err != nil || spans != nil {
		t.Errorf("unknown source: spans=%v err=%v", spans, err)
	}
}

func TestAttributeRespectsAuthority(t *testing.T) {
	// B holds the same text but observed later; attribution against B must
	// be empty because A is the authoritative source of every hash.
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("A#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ObserveParagraph("B#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	spans, err := tr.AttributeParagraph(wikiText, "B#p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Errorf("non-authoritative source attributed: %v", spans)
	}
	spansA, err := tr.AttributeParagraph(wikiText, "A#p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(spansA) == 0 {
		t.Error("authoritative source attributed nothing")
	}
}

func TestAttributeDocumentGranularity(t *testing.T) {
	tr := newTracker(t, testParams())
	doc := wikiText + "\n\n" + otherText
	if _, err := tr.ObserveDocument("wiki/doc", doc); err != nil {
		t.Fatal(err)
	}
	spans, err := tr.AttributeDocument(wikiText, "wiki/doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Error("document attribution empty")
	}
}

func TestMergeSpans(t *testing.T) {
	tests := []struct {
		name string
		give []Span
		want []Span
	}{
		{name: "empty", give: nil, want: nil},
		{name: "disjoint", give: []Span{{0, 2}, {5, 7}}, want: []Span{{0, 2}, {5, 7}}},
		{name: "overlapping", give: []Span{{0, 5}, {3, 8}}, want: []Span{{0, 8}}},
		{name: "touching", give: []Span{{0, 3}, {3, 6}}, want: []Span{{0, 6}}},
		{name: "unsorted nested", give: []Span{{4, 6}, {0, 10}}, want: []Span{{0, 10}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := mergeSpans(append([]Span(nil), tt.give...))
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Errorf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestSpanLen(t *testing.T) {
	if (Span{Start: 3, End: 10}).Len() != 7 {
		t.Error("Span.Len wrong")
	}
}

// Attribution output can be used to highlight: verify the spans select
// text resembling the source.
func TestAttributeSpansPointAtSourceWords(t *testing.T) {
	tr := newTracker(t, testParams())
	if _, err := tr.ObserveParagraph("wiki#p0", wikiText); err != nil {
		t.Fatal(err)
	}
	observed := "intro words " + wikiText
	spans, err := tr.AttributeParagraph(observed, "wiki#p0")
	if err != nil {
		t.Fatal(err)
	}
	var highlighted strings.Builder
	for _, s := range spans {
		highlighted.WriteString(observed[s.Start:s.End])
		highlighted.WriteByte(' ')
	}
	if !strings.Contains(highlighted.String(), "interview") {
		t.Errorf("highlighted text %q misses source content", highlighted.String())
	}
}
