package disclosure

import (
	"fmt"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// BatchObservation is one item of a batched observe flush. A real browser
// extension does not ship one HTTP request per keystroke: it coalesces DOM
// mutations and flushes a batch of paragraph edits. Batching amortises
// cache-stripe acquisition, Algorithm 1 scratch allocations and (for the
// tag-server endpoint) request decoding across the whole flush.
type BatchObservation struct {
	// Seg is the observed segment.
	Seg segment.ID

	// Text is the segment's current text. It is fingerprinted with the
	// tracker's parameters unless FP is set.
	Text string

	// FP is an optional caller-computed fingerprint (remote clients keep
	// text on-device and ship hashes only). When set, Text is ignored.
	FP *fingerprint.Fingerprint

	// Granularity selects the database; the zero value means paragraph.
	Granularity segment.Granularity
}

// ObserveBatch records every observation in items, in order, and returns
// one Report per item (reports[i] corresponds to items[i]). Each item is
// evaluated exactly as the singular Observe* entry points would evaluate
// it — same reports, same database state afterwards — but the per-item
// working set of Algorithm 1 is allocated once and reused across the
// flush.
//
// Items are applied sequentially: a later item observes the database state
// produced by earlier items, matching a client that replays its edit queue
// in order.
func (t *Tracker) ObserveBatch(items []BatchObservation) ([]Report, error) {
	if len(items) == 0 {
		return nil, nil
	}
	reports := make([]Report, len(items))
	sc := t.scratchPool.Get().(*observeScratch)
	defer t.scratchPool.Put(sc)
	for i, item := range items {
		if item.Seg == "" {
			return nil, fmt.Errorf("disclosure: batch item %d: empty segment ID", i)
		}
		db := t.pars
		g := item.Granularity
		switch g {
		case 0:
			g = segment.GranularityParagraph
		case segment.GranularityParagraph:
		case segment.GranularityDocument:
			db = t.docs
		default:
			return nil, fmt.Errorf("disclosure: batch item %d: unknown granularity %v", i, item.Granularity)
		}
		fp := item.FP
		borrowed := false
		if fp == nil {
			var err error
			fp, err = sc.fps.ComputeShared(item.Text, t.params.Fingerprint)
			if err != nil {
				return nil, fmt.Errorf("disclosure: batch item %d: %w", i, err)
			}
			borrowed = true
		}
		report, err := t.observeFPScratch(item.Seg, fp, borrowed, g, db, sc)
		if err != nil {
			return nil, fmt.Errorf("disclosure: batch item %d: %w", i, err)
		}
		reports[i] = report
	}
	return reports, nil
}
