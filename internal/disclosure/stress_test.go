package disclosure

// Tracker-level concurrency stress, run under -race by `make check`: many
// goroutines observe overlapping and disjoint segments (singular and
// batched) while expiry and Forget run concurrently. At quiescence:
//
//   - every hash still indexed has an oldest holder that is a live
//     segment whose first observation is no younger than any other
//     holder's (checked through the exported posting order);
//   - the decision cache contains no entry for a segment the databases no
//     longer track;
//   - a final observation round produces reports whose sources are all
//     live segments.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

func stressText(worker, variant int) string {
	base := fmt.Sprintf("Worker %d shares the quarterly disclosure corpus sentence pool number %d. ", worker%3, variant%4)
	private := fmt.Sprintf("Private clause %d-%d keeps some hashes unique to this worker alone. ", worker, variant)
	return strings.Repeat(base, 3) + strings.Repeat(private, 2)
}

func TestTrackerConcurrentObserveExpireForget(t *testing.T) {
	tracker, err := NewTracker(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 80
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				seg := segment.ID(fmt.Sprintf("w%d/doc#p%d", w, r%4))
				if r%3 == 0 {
					items := []BatchObservation{
						{Seg: seg, Text: stressText(w, r)},
						{Seg: segment.ID(fmt.Sprintf("w%d/doc#p%d", w, (r+1)%4)), Text: stressText(w, r+1)},
					}
					if _, err := tracker.ObserveBatch(items); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := tracker.ObserveParagraph(seg, stressText(w, r)); err != nil {
						t.Error(err)
						return
					}
				}
				if r%11 == 5 {
					tracker.Forget(segment.ID(fmt.Sprintf("w%d/doc#p%d", w, r%4)), segment.GranularityParagraph)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			db := tracker.Paragraphs()
			if now := db.Now(); now > 120 {
				db.ExpireBefore(now - 120)
			}
		}
	}()
	wg.Wait()

	db := tracker.Paragraphs()
	data := db.Export()

	// Live segment set.
	live := make(map[segment.ID]bool)
	for _, rec := range data.Segments {
		live[rec.Seg] = true
	}

	// Authoritative holder is always the oldest live poster: group the
	// exported postings by hash and compare the DB's OldestHolder answer
	// with the minimum-Seq posting.
	oldestByHash := make(map[uint32]struct {
		seg segment.ID
		seq uint64
	})
	for _, p := range data.Postings {
		cur, ok := oldestByHash[p.Hash]
		if !ok || p.Seq < cur.seq {
			oldestByHash[p.Hash] = struct {
				seg segment.ID
				seq uint64
			}{p.Seg, p.Seq}
		}
	}
	for h, want := range oldestByHash {
		got, ok := db.OldestHolder(h)
		if !ok {
			t.Fatalf("hash %#x: exported postings but no oldest holder", h)
		}
		if got != want.seg {
			t.Fatalf("hash %#x: OldestHolder = %q, want oldest poster %q (seq %d)", h, got, want.seg, want.seq)
		}
	}

	// Stats counters survived the churn.
	s := db.Stats()
	if s.Postings != len(data.Postings) || s.Segments != len(data.Segments) {
		t.Fatalf("counters drifted: Stats %+v vs export postings=%d segments=%d", s, len(data.Postings), len(data.Segments))
	}

	// No cache entry for a dead segment: purge everything dead and verify
	// via a fresh observation round that reported sources are live.
	for w := 0; w < workers; w++ {
		for r := 0; r < 4; r++ {
			report, err := tracker.ObserveParagraph(segment.ID(fmt.Sprintf("probe/w%d#p%d", w, r)), stressText(w, r))
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range report.Sources {
				if _, ok := db.Fingerprint(src.Seg); !ok {
					t.Fatalf("report names dead source %q", src.Seg)
				}
			}
		}
	}
}
