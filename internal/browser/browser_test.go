package browser

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/dom"
)

// testSite serves a small form page and records submissions and XHR bodies.
type testSite struct {
	srv     *httptest.Server
	lastGot url.Values
	lastXHR string
}

func newTestSite(t *testing.T) *testSite {
	t.Helper()
	site := &testSite{}
	mux := http.NewServeMux()
	mux.HandleFunc("/page", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
<p id="content">Visible page text, quite interesting.</p>
<form id="f" action="/submit" method="post">
  <input type="text" name="title" value="default title"/>
  <textarea name="body">default body</textarea>
  <input type="hidden" name="csrf" value="tok"/>
  <input type="submit" value="Go"/>
</form>
</body></html>`)
	})
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		site.lastGot = r.PostForm
		fmt.Fprint(w, `<html><body><p id="done">saved</p></body></html>`)
	})
	mux.HandleFunc("/xhr", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		site.lastXHR = string(b)
		fmt.Fprint(w, `{"ok":true}`)
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	})
	site.srv = httptest.NewServer(mux)
	t.Cleanup(site.srv.Close)
	return site
}

func TestOpenTabParsesDocument(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Document().Root().ByID("content"); got == nil {
		t.Fatal("page content missing from DOM")
	}
	if tab.URL().Path != "/page" {
		t.Errorf("URL=%v", tab.URL())
	}
	if len(b.Tabs()) != 1 {
		t.Errorf("Tabs=%d, want 1", len(b.Tabs()))
	}
}

func TestOpenTabError(t *testing.T) {
	site := newTestSite(t)
	b := New()
	if _, err := b.OpenTab(site.srv.URL + "/missing"); err == nil {
		t.Error("404 page opened without error")
	}
	if _, err := b.OpenTab("http://127.0.0.1:1/nothing-here"); err == nil {
		t.Error("unreachable host opened without error")
	}
}

func TestOnTabOpenHook(t *testing.T) {
	site := newTestSite(t)
	b := New()
	attached := 0
	b.OnTabOpen(func(tab *Tab) { attached++ })
	if _, err := b.OpenTab(site.srv.URL + "/page"); err != nil {
		t.Fatal(err)
	}
	if attached != 1 {
		t.Errorf("attached=%d, want 1", attached)
	}
}

func TestSubmitFormDeliversValues(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	form := tab.Document().Root().ByID("f")
	if err := tab.SubmitForm(form, map[string]string{"body": "user wrote this"}); err != nil {
		t.Fatal(err)
	}
	if got := site.lastGot.Get("body"); got != "user wrote this" {
		t.Errorf("body=%q", got)
	}
	if got := site.lastGot.Get("title"); got != "default title" {
		t.Errorf("title=%q", got)
	}
	if got := site.lastGot.Get("csrf"); got != "tok" {
		t.Errorf("hidden csrf=%q (hidden fields must still reach the wire)", got)
	}
	// Tab navigated to the response.
	if tab.Document().Root().ByID("done") == nil {
		t.Error("tab did not navigate after submit")
	}
}

func TestSubmitHookSeesOnlyVisibleFields(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	var seen url.Values
	tab.RegisterSubmitHook(func(_ *Tab, _ *dom.Node, visible url.Values) error {
		seen = visible
		return nil
	})
	form := tab.Document().Root().ByID("f")
	if err := tab.SubmitForm(form, nil); err != nil {
		t.Fatal(err)
	}
	if seen.Get("csrf") != "" {
		t.Error("hook saw hidden field")
	}
	if seen.Get("title") == "" || seen.Get("body") == "" {
		t.Errorf("hook missing visible fields: %v", seen)
	}
}

func TestSubmitHookBlocks(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	tab.RegisterSubmitHook(func(*Tab, *dom.Node, url.Values) error {
		return errors.New("policy violation")
	})
	form := tab.Document().Root().ByID("f")
	err = tab.SubmitForm(form, map[string]string{"body": "secret"})
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	if site.lastGot != nil {
		t.Error("blocked submission reached the server")
	}
}

func TestSubmitFormValidation(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.SubmitForm(nil, nil); err == nil {
		t.Error("nil form accepted")
	}
	notForm := tab.Document().Root().ByID("content")
	if err := tab.SubmitForm(notForm, nil); err == nil {
		t.Error("non-form element accepted")
	}
}

func TestXHRHookObservesAndMutates(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	tab.RegisterXHRHook(func(_ *Tab, req *XHRRequest) error {
		req.Body = []byte(strings.ToUpper(string(req.Body)))
		return nil
	})
	resp, err := tab.XHR("POST", "/xhr", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if site.lastXHR != "HELLO" {
		t.Errorf("server saw %q, want mutated body", site.lastXHR)
	}
}

func TestXHRHookBlocks(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	tab.RegisterXHRHook(func(*Tab, *XHRRequest) error {
		return errors.New("contains sensitive data")
	})
	if _, err := tab.XHR("POST", "/xhr", []byte("secret")); !errors.Is(err, ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	if site.lastXHR != "" {
		t.Error("blocked XHR reached the server")
	}
}

func TestXHRRelativeResolution(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tab.XHR("POST", "/xhr", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if site.lastXHR != "x" {
		t.Error("relative XHR did not reach the same origin")
	}
}

func TestClipboardSharedAcrossTabs(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab1, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	tab1.CopyText(tab1.Document().Root().ByID("content"))
	if got := tab2.Browser().Clipboard(); got != "Visible page text, quite interesting." {
		t.Errorf("clipboard=%q", got)
	}
}

func TestCopyTextRange(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	content := tab.Document().Root().ByID("content")
	full := content.InnerText() // "Visible page text, quite interesting."
	tab.CopyTextRange(content, 0, 7)
	if got := b.Clipboard(); got != full[:7] {
		t.Errorf("clipboard=%q", got)
	}
	// Clamping.
	tab.CopyTextRange(content, -5, 10_000)
	if got := b.Clipboard(); got != full {
		t.Errorf("clamped clipboard=%q", got)
	}
	// Empty selection.
	tab.CopyTextRange(content, 5, 2)
	if got := b.Clipboard(); got != "" {
		t.Errorf("empty selection clipboard=%q", got)
	}
}

func TestOnNavigateFires(t *testing.T) {
	site := newTestSite(t)
	b := New()
	tab, err := b.OpenTab(site.srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tab.OnNavigate(func() { count++ })
	if err := tab.Navigate("/page"); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("OnNavigate fired %d times, want 1", count)
	}
	form := tab.Document().Root().ByID("f")
	if err := tab.SubmitForm(form, nil); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("OnNavigate after submit: %d, want 2", count)
	}
}

func TestWithTransport(t *testing.T) {
	called := false
	rt := roundTripperFunc(func(req *http.Request) (*http.Response, error) {
		called = true
		return nil, errors.New("sentinel")
	})
	b := New(WithTransport(rt))
	if _, err := b.OpenTab("http://example.invalid/"); err == nil {
		t.Error("expected error from sentinel transport")
	}
	if !called {
		t.Error("custom transport not used")
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }
