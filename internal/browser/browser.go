// Package browser simulates the client environment BrowserFlow runs in: a
// multi-tab web browser with a DOM per tab, a shared clipboard, HTML form
// submission and asynchronous (XHR) requests.
//
// The two interception points of §5 are modelled directly:
//
//   - form submission hooks correspond to the plug-in's listener on the
//     submit event of <form> elements (§5.1); and
//   - XHR hooks correspond to redefining XMLHttpRequest.prototype.send
//     (§5.2) — every asynchronous request a page issues flows through the
//     registered hooks, which may inspect, modify or block it.
//
// Extensions attach to tabs via Browser.OnTabOpen, the analogue of a
// content-script injection point.
package browser

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"github.com/lsds/browserflow/internal/dom"
)

// ErrBlocked is returned when an extension hook prevents a network request.
var ErrBlocked = errors.New("browser: request blocked by extension")

// XHRRequest is an asynchronous request issued by page logic. Hooks may
// mutate Body (e.g. to encrypt it) before transmission.
type XHRRequest struct {
	Method string
	URL    *url.URL
	Body   []byte
	Header http.Header
}

// XHRHook observes an outgoing XHR. Returning an error blocks the request.
type XHRHook func(tab *Tab, req *XHRRequest) error

// SubmitHook observes a form submission with its visible (non-hidden) field
// values. Returning an error blocks the submission.
type SubmitHook func(tab *Tab, form *dom.Node, visible url.Values) error

// Browser owns tabs and the shared clipboard.
type Browser struct {
	client *http.Client

	mu        sync.Mutex
	clipboard string
	tabs      []*Tab
	onOpen    []func(*Tab)
}

// Option configures a Browser.
type Option interface {
	apply(*Browser)
}

type transportOption struct{ rt http.RoundTripper }

func (o transportOption) apply(b *Browser) {
	b.client = &http.Client{Transport: o.rt}
}

// WithTransport routes all page traffic through rt (e.g. an httptest
// server's transport or a recording proxy).
func WithTransport(rt http.RoundTripper) Option {
	return transportOption{rt: rt}
}

// New returns a Browser. By default it uses http.DefaultTransport.
func New(opts ...Option) *Browser {
	b := &Browser{client: &http.Client{}}
	for _, o := range opts {
		o.apply(b)
	}
	return b
}

// OnTabOpen registers fn to run for every subsequently opened tab — the
// extension attach point.
func (b *Browser) OnTabOpen(fn func(*Tab)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onOpen = append(b.onOpen, fn)
}

// OpenTab navigates a new tab to rawURL.
func (b *Browser) OpenTab(rawURL string) (*Tab, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("browser: parse url: %w", err)
	}
	tab := &Tab{browser: b, url: u, doc: dom.NewDocument()}

	b.mu.Lock()
	b.tabs = append(b.tabs, tab)
	hooks := append([]func(*Tab){}, b.onOpen...)
	b.mu.Unlock()

	for _, fn := range hooks {
		fn(tab)
	}
	if err := tab.Navigate(rawURL); err != nil {
		return nil, err
	}
	return tab, nil
}

// Tabs returns the open tabs.
func (b *Browser) Tabs() []*Tab {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*Tab{}, b.tabs...)
}

// SetClipboard stores text on the shared clipboard.
func (b *Browser) SetClipboard(text string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clipboard = text
}

// Clipboard returns the clipboard contents.
func (b *Browser) Clipboard() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.clipboard
}

// Tab is one browser tab: a URL, a live DOM and its extension hooks.
type Tab struct {
	browser *Browser

	mu          sync.Mutex
	url         *url.URL
	doc         *dom.Document
	xhrHooks    []XHRHook
	submitHooks []SubmitHook
	onNavigate  []func()
}

// Browser returns the owning browser.
func (t *Tab) Browser() *Browser { return t.browser }

// URL returns the tab's current URL.
func (t *Tab) URL() *url.URL {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.url
}

// Document returns the tab's live DOM document.
func (t *Tab) Document() *dom.Document {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.doc
}

// RegisterXHRHook adds a hook over every asynchronous request the page
// issues (the XMLHttpRequest.prototype.send interception of §5.2).
func (t *Tab) RegisterXHRHook(h XHRHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.xhrHooks = append(t.xhrHooks, h)
}

// RegisterSubmitHook adds a hook over form submissions (§5.1).
func (t *Tab) RegisterSubmitHook(h SubmitHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.submitHooks = append(t.submitHooks, h)
}

// OnNavigate registers fn to run after each page load in this tab.
func (t *Tab) OnNavigate(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onNavigate = append(t.onNavigate, fn)
}

// Navigate loads ref (absolute or relative to the current URL) and replaces
// the tab's document.
func (t *Tab) Navigate(ref string) error {
	target, err := t.resolve(ref)
	if err != nil {
		return err
	}
	resp, err := t.browser.client.Get(target.String())
	if err != nil {
		return fmt.Errorf("browser: navigate %s: %w", target, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("browser: read %s: %w", target, err)
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("browser: navigate %s: status %d", target, resp.StatusCode)
	}
	finalURL := target
	if resp.Request != nil && resp.Request.URL != nil {
		finalURL = resp.Request.URL
	}

	t.mu.Lock()
	t.url = finalURL
	t.doc = dom.Parse(string(body))
	hooks := append([]func(){}, t.onNavigate...)
	t.mu.Unlock()

	for _, fn := range hooks {
		fn()
	}
	return nil
}

// XHR issues an asynchronous JSON request from page logic, routing it
// through the registered hooks. Hooks run in registration order; any error
// blocks the request and is wrapped with ErrBlocked semantics preserved.
func (t *Tab) XHR(method, ref string, body []byte) (*http.Response, error) {
	return t.XHRWithType(method, ref, "application/json", body)
}

// XHRWithType is XHR with an explicit Content-Type, for services whose
// wire format is not JSON.
func (t *Tab) XHRWithType(method, ref, contentType string, body []byte) (*http.Response, error) {
	target, err := t.resolve(ref)
	if err != nil {
		return nil, err
	}
	req := &XHRRequest{
		Method: method,
		URL:    target,
		Body:   body,
		Header: make(http.Header),
	}
	req.Header.Set("Content-Type", contentType)

	t.mu.Lock()
	hooks := append([]XHRHook{}, t.xhrHooks...)
	t.mu.Unlock()
	for _, h := range hooks {
		if err := h(t, req); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBlocked, err)
		}
	}

	httpReq, err := http.NewRequest(req.Method, req.URL.String(), bytes.NewReader(req.Body))
	if err != nil {
		return nil, fmt.Errorf("browser: build xhr: %w", err)
	}
	httpReq.Header = req.Header
	resp, err := t.browser.client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("browser: xhr %s: %w", req.URL, err)
	}
	return resp, nil
}

// SubmitForm submits a <form> element. Field values are read from the
// form's <input> and <textarea> descendants; overrides supplies the values
// the user typed. Submit hooks see only non-hidden fields, mirroring the
// §5.1 plug-in, and may block the submission. On success the tab navigates
// to the response.
func (t *Tab) SubmitForm(form *dom.Node, overrides map[string]string) error {
	if form == nil || form.Tag != "form" {
		return fmt.Errorf("browser: SubmitForm needs a <form> element")
	}
	values, visible := collectFormValues(form, overrides)

	t.mu.Lock()
	hooks := append([]SubmitHook{}, t.submitHooks...)
	t.mu.Unlock()
	for _, h := range hooks {
		if err := h(t, form, visible); err != nil {
			return fmt.Errorf("%w: %v", ErrBlocked, err)
		}
	}

	action := form.Attr("action")
	if action == "" {
		action = t.URL().String()
	}
	target, err := t.resolve(action)
	if err != nil {
		return err
	}
	method := strings.ToUpper(form.Attr("method"))
	if method == "" {
		method = http.MethodGet
	}

	var resp *http.Response
	if method == http.MethodPost {
		resp, err = t.browser.client.PostForm(target.String(), values)
	} else {
		q := target.Query()
		for k, vs := range values {
			for _, v := range vs {
				q.Add(k, v)
			}
		}
		target.RawQuery = q.Encode()
		resp, err = t.browser.client.Get(target.String())
	}
	if err != nil {
		return fmt.Errorf("browser: submit %s: %w", target, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("browser: read submit response: %w", err)
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("browser: submit %s: status %d", target, resp.StatusCode)
	}
	finalURL := target
	if resp.Request != nil && resp.Request.URL != nil {
		finalURL = resp.Request.URL
	}

	t.mu.Lock()
	t.url = finalURL
	t.doc = dom.Parse(string(body))
	hooks2 := append([]func(){}, t.onNavigate...)
	t.mu.Unlock()
	for _, fn := range hooks2 {
		fn()
	}
	return nil
}

// CopyText places the rendered text of node on the shared clipboard.
func (t *Tab) CopyText(node *dom.Node) {
	t.browser.SetClipboard(node.InnerText())
}

// CopyTextRange places a selection — the byte range [start, end) of the
// node's rendered text — on the clipboard, like a user selecting part of a
// paragraph. Out-of-range bounds are clamped.
func (t *Tab) CopyTextRange(node *dom.Node, start, end int) {
	text := node.InnerText()
	if start < 0 {
		start = 0
	}
	if end > len(text) {
		end = len(text)
	}
	if start >= end {
		t.browser.SetClipboard("")
		return
	}
	t.browser.SetClipboard(text[start:end])
}

func (t *Tab) resolve(ref string) (*url.URL, error) {
	u, err := url.Parse(ref)
	if err != nil {
		return nil, fmt.Errorf("browser: parse %q: %w", ref, err)
	}
	base := t.URL()
	if base == nil {
		return u, nil
	}
	return base.ResolveReference(u), nil
}

// collectFormValues gathers all named field values (for the wire) and the
// visible subset (for hooks). Overrides replace field values by name.
func collectFormValues(form *dom.Node, overrides map[string]string) (all, visible url.Values) {
	all = make(url.Values)
	visible = make(url.Values)
	fields := form.FindAll(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && (n.Tag == "input" || n.Tag == "textarea") && n.Attr("name") != ""
	})
	for _, f := range fields {
		name := f.Attr("name")
		fieldType := strings.ToLower(f.Attr("type"))
		if f.Tag == "input" && (fieldType == "submit" || fieldType == "button") {
			continue
		}
		value := f.Attr("value")
		if f.Tag == "textarea" {
			value = f.InnerText()
		}
		if ov, ok := overrides[name]; ok {
			value = ov
		}
		all.Set(name, value)
		if fieldType != "hidden" {
			visible.Set(name, value)
		}
	}
	return all, visible
}
