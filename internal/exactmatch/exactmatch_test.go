package exactmatch

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	return NewStoreWithSalt([]byte("test-salt"))
}

func TestRegisterAndCheckValue(t *testing.T) {
	s := newStore(t)
	if err := s.Register("db-password", "hunter22"); err != nil {
		t.Fatal(err)
	}
	if m, ok := s.CheckValue("hunter22"); !ok || m.Name != "db-password" {
		t.Errorf("CheckValue=%+v,%v", m, ok)
	}
	if _, ok := s.CheckValue("hunter2222"); ok {
		t.Error("different value matched")
	}
	if _, ok := s.CheckValue("HUNTER22"); ok {
		t.Error("matching is case-sensitive for secrets; case variant matched")
	}
	if s.Len() != 1 {
		t.Errorf("Len=%d", s.Len())
	}
}

func TestRegisterRejectsShortSecrets(t *testing.T) {
	s := newStore(t)
	if err := s.Register("tiny", "abc"); err == nil {
		t.Error("3-rune secret accepted")
	}
}

func TestScanFindsEmbeddedSecret(t *testing.T) {
	s := newStore(t)
	if err := s.Register("api-key", "sk-XYZZY-42"); err != nil {
		t.Fatal(err)
	}
	text := "please use the key sk-XYZZY-42 when calling the staging API"
	matches := s.Scan(text)
	if len(matches) != 1 || matches[0].Name != "api-key" {
		t.Fatalf("matches=%+v", matches)
	}
	wantOffset := len([]rune("please use the key "))
	if matches[0].Offset != wantOffset {
		t.Errorf("offset=%d, want %d", matches[0].Offset, wantOffset)
	}
}

func TestScanMultipleSecretsAndLengths(t *testing.T) {
	s := newStore(t)
	if err := s.Register("short", "abcd"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("long", "correct horse battery staple"); err != nil {
		t.Fatal(err)
	}
	text := "abcd then correct horse battery staple then abcd again"
	matches := s.Scan(text)
	var names []string
	for _, m := range matches {
		names = append(names, m.Name)
	}
	got := strings.Join(names, ",")
	if got != "short,long,short" {
		t.Errorf("matches=%v", got)
	}
}

func TestScanNoSecrets(t *testing.T) {
	s := newStore(t)
	if got := s.Scan("nothing registered yet"); got != nil {
		t.Errorf("Scan=%v", got)
	}
	if err := s.Register("k", "secret-value"); err != nil {
		t.Fatal(err)
	}
	if got := s.Scan("completely unrelated words"); got != nil {
		t.Errorf("Scan=%v", got)
	}
	if got := s.Scan("srt"); got != nil {
		t.Errorf("Scan of short text=%v", got)
	}
}

func TestUnicodeSecrets(t *testing.T) {
	s := newStore(t)
	if err := s.Register("uni", "pässwörd"); err != nil {
		t.Fatal(err)
	}
	matches := s.Scan("the value pässwörd appears here")
	if len(matches) != 1 {
		t.Fatalf("matches=%+v", matches)
	}
}

func TestSaltsDiffer(t *testing.T) {
	a, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Register("x", "same-secret"); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("x", "same-secret"); err != nil {
		t.Fatal(err)
	}
	// Different salts: digests differ (cannot compare directly, but both
	// stores still match their own secret).
	if _, ok := a.CheckValue("same-secret"); !ok {
		t.Error("store a lost its secret")
	}
	if _, ok := b.CheckValue("same-secret"); !ok {
		t.Error("store b lost its secret")
	}
}

func TestConcurrentScan(t *testing.T) {
	s := newStore(t)
	if err := s.Register("k", "parallel-secret"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Scan("text with parallel-secret inside")
				s.Register("k2", "another-secret")
			}
		}()
	}
	wg.Wait()
}

// Property: any registered secret embedded at any position in random
// surrounding text is found at the right offset.
func TestQuickEmbeddedAlwaysFound(t *testing.T) {
	s := newStore(t)
	const secret = "qu1ck-s3cret"
	if err := s.Register("q", secret); err != nil {
		t.Fatal(err)
	}
	f := func(prefix, suffix string) bool {
		text := prefix + secret + suffix
		for _, m := range s.Scan(text) {
			if m.Name == "q" && m.Offset == len([]rune(prefix)) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScan(b *testing.B) {
	s := NewStoreWithSalt([]byte("bench"))
	for _, sec := range []string{"alpha-secret", "beta-secret-longer", "gamma-key"} {
		if err := s.Register(sec, sec); err != nil {
			b.Fatal(err)
		}
	}
	text := strings.Repeat("some ordinary prose with no secrets in it at all ", 40)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(text)
	}
}
