// Package exactmatch implements the specialised companion system that §4.4
// delegates short secrets to: "Imprecise data flow tracking is not
// effective at a finer granularity than paragraphs ... For such specific
// use cases, for example password reuse prevention, specialised systems
// which rely on data equality only are more effective."
//
// A Store keeps salted HMAC-SHA256 digests of registered secrets — never
// the secrets themselves — and detects exact occurrences of any secret
// inside outgoing text. Detection slides a window of each registered
// secret length over the text, so a password embedded in a sentence is
// still caught, at O(len(text) × distinct secret lengths) cost.
package exactmatch

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
)

// Match reports one detected secret.
type Match struct {
	// Name is the label the secret was registered under.
	Name string

	// Offset is the rune offset of the occurrence in the scanned text.
	Offset int
}

// Store holds secret digests. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	salt    []byte
	byLen   map[int]map[string]string // rune length -> digest -> name
	lengths []int
}

// NewStore returns a Store with a random salt.
func NewStore() (*Store, error) {
	salt := make([]byte, 32)
	if _, err := rand.Read(salt); err != nil {
		return nil, fmt.Errorf("exactmatch: salt: %w", err)
	}
	return NewStoreWithSalt(salt), nil
}

// NewStoreWithSalt returns a Store with a caller-provided salt, for
// deterministic tests and for sharing a store across restarts.
func NewStoreWithSalt(salt []byte) *Store {
	return &Store{
		salt:  append([]byte(nil), salt...),
		byLen: make(map[int]map[string]string),
	}
}

// digest computes the salted digest of s.
func (s *Store) digest(runes []rune) string {
	mac := hmac.New(sha256.New, s.salt)
	mac.Write([]byte(string(runes)))
	return string(mac.Sum(nil))
}

// Register stores a secret under name. Secrets shorter than 4 runes are
// rejected — they would match constantly.
func (s *Store) Register(name, secret string) error {
	runes := []rune(secret)
	if len(runes) < 4 {
		return fmt.Errorf("exactmatch: secret %q too short (min 4 runes)", name)
	}
	d := s.digest(runes)
	s.mu.Lock()
	defer s.mu.Unlock()
	bucket, ok := s.byLen[len(runes)]
	if !ok {
		bucket = make(map[string]string)
		s.byLen[len(runes)] = bucket
		s.lengths = append(s.lengths, len(runes))
		sort.Ints(s.lengths)
	}
	bucket[d] = name
	return nil
}

// Len returns the number of registered secrets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, bucket := range s.byLen {
		n += len(bucket)
	}
	return n
}

// CheckValue reports whether value is exactly a registered secret.
func (s *Store) CheckValue(value string) (Match, bool) {
	runes := []rune(value)
	s.mu.RLock()
	defer s.mu.RUnlock()
	bucket, ok := s.byLen[len(runes)]
	if !ok {
		return Match{}, false
	}
	if name, ok := bucket[s.digest(runes)]; ok {
		return Match{Name: name}, true
	}
	return Match{}, false
}

// Scan returns every occurrence of a registered secret inside text.
func (s *Store) Scan(text string) []Match {
	runes := []rune(text)
	s.mu.RLock()
	lengths := append([]int(nil), s.lengths...)
	s.mu.RUnlock()

	var out []Match
	for _, l := range lengths {
		if l > len(runes) {
			continue
		}
		for i := 0; i+l <= len(runes); i++ {
			window := runes[i : i+l]
			s.mu.RLock()
			name, ok := s.byLen[l][s.digest(window)]
			s.mu.RUnlock()
			if ok {
				out = append(out, Match{Name: name, Offset: i})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		return out[i].Name < out[j].Name
	})
	return out
}
