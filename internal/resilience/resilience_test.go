package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptRT replays a scripted sequence of outcomes.
type scriptRT struct {
	mu    sync.Mutex
	steps []func(*http.Request) (*http.Response, error)
	calls int
}

func (s *scriptRT) RoundTrip(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	idx := s.calls
	s.calls++
	s.mu.Unlock()
	if idx >= len(s.steps) {
		return nil, fmt.Errorf("script exhausted at call %d", idx)
	}
	return s.steps[idx](req)
}

func (s *scriptRT) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

type notSentErr struct{}

func (notSentErr) Error() string        { return "conn refused (not sent)" }
func (notSentErr) RequestNotSent() bool { return true }

func ok200() func(*http.Request) (*http.Response, error) {
	return status(200)
}

func status(code int) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: code,
			Body:       io.NopCloser(strings.NewReader("body")),
			Header:     http.Header{},
			Request:    req,
		}, nil
	}
}

func fail(err error) func(*http.Request) (*http.Response, error) {
	return func(*http.Request) (*http.Response, error) { return nil, err }
}

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(42)),
		Sleep:       func(time.Duration) {},
	}
}

func get(t *testing.T, rt http.RoundTripper) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://svc/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func post(t *testing.T, rt http.RoundTripper) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://svc/v1/observe", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestRetryIdempotentEventualSuccess(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(notSentErr{}), status(503), ok200(),
	}}
	rt := NewRetryTransport(script, fastPolicy())
	resp, err := get(t, rt)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || script.Calls() != 3 {
		t.Errorf("status=%d calls=%d", resp.StatusCode, script.Calls())
	}
	stats := rt.Stats()
	if stats.Attempts != 3 || stats.Retries != 2 || stats.GiveUps != 0 {
		t.Errorf("stats=%+v", stats)
	}
}

func TestRetryHookObservesEveryRetry(t *testing.T) {
	var reasons []string
	policy := fastPolicy()
	policy.OnRetry = func(_ *http.Request, attempt int, _ time.Duration, reason string) {
		reasons = append(reasons, fmt.Sprintf("%d:%s", attempt, reason))
	}
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		status(502), ok200(),
	}}
	resp, err := get(t, NewRetryTransport(script, policy))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(reasons) != 1 || !strings.Contains(reasons[0], "status 502") {
		t.Errorf("reasons=%v", reasons)
	}
}

// The cardinal safety property: a non-idempotent request whose body may
// have reached the server is never replayed.
func TestNoRetryForDeliveredPost(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(errors.New("connection reset mid-response")), // delivered-unknown
	}}
	rt := NewRetryTransport(script, fastPolicy())
	if _, err := post(t, rt); err == nil {
		t.Fatal("expected error")
	}
	if script.Calls() != 1 {
		t.Errorf("delivered POST was retried: calls=%d", script.Calls())
	}
	if rt.Stats().GiveUps != 1 {
		t.Errorf("stats=%+v", rt.Stats())
	}
}

// A delivered POST answered with a retryable 5xx status is surfaced, not
// retried: the server already consumed the body.
func TestNoRetryForPostWith503(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		status(503), ok200(),
	}}
	resp, err := post(t, NewRetryTransport(script, fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || script.Calls() != 1 {
		t.Errorf("status=%d calls=%d", resp.StatusCode, script.Calls())
	}
}

// A POST that provably never left the client is safe to retry.
func TestRetryPostWhenNotSent(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(notSentErr{}), ok200(),
	}}
	resp, err := post(t, NewRetryTransport(script, fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || script.Calls() != 2 {
		t.Errorf("status=%d calls=%d", resp.StatusCode, script.Calls())
	}
}

func TestRetriesExhausted(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(notSentErr{}), fail(notSentErr{}), fail(notSentErr{}),
	}}
	rt := NewRetryTransport(script, fastPolicy())
	if _, err := get(t, rt); err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if script.Calls() != 3 || rt.Stats().GiveUps != 1 {
		t.Errorf("calls=%d stats=%+v", script.Calls(), rt.Stats())
	}
}

func TestRetryStopsWhenBodyNotReplayable(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(notSentErr{}), ok200(),
	}}
	rt := NewRetryTransport(script, fastPolicy())
	req, err := http.NewRequest(http.MethodPost, "http://svc/v1/observe", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Body = io.NopCloser(strings.NewReader("opaque"))
	req.GetBody = nil // body cannot be rewound
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("expected error when body cannot be replayed")
	}
	if script.Calls() != 1 {
		t.Errorf("calls=%d", script.Calls())
	}
}

func TestPerAttemptDeadline(t *testing.T) {
	hang := func(req *http.Request) (*http.Response, error) {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		hang, ok200(),
	}}
	policy := fastPolicy()
	policy.PerAttemptTimeout = 5 * time.Millisecond
	resp, err := get(t, NewRetryTransport(script, policy))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || script.Calls() != 2 {
		t.Errorf("status=%d calls=%d", resp.StatusCode, script.Calls())
	}
}

func TestCallerContextCancelAborts(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(notSentErr{}), ok200(),
	}}
	ctx, cancel := context.WithCancel(context.Background())
	policy := fastPolicy()
	policy.Sleep = func(time.Duration) { cancel() } // cancelled mid-backoff
	rt := NewRetryTransport(script, policy)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://svc/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RoundTrip(req); !errors.Is(err, context.Canceled) {
		t.Errorf("err=%v, want context.Canceled", err)
	}
	if script.Calls() != 1 {
		t.Errorf("calls=%d", script.Calls())
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	policy := fastPolicy()
	policy.BaseDelay = 10 * time.Millisecond
	policy.MaxDelay = 40 * time.Millisecond
	rt := NewRetryTransport(&scriptRT{}, policy)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := policy.BaseDelay << uint(attempt)
		if ceil > policy.MaxDelay || ceil <= 0 {
			ceil = policy.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := rt.backoff(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	mk := func() []time.Duration {
		policy := fastPolicy()
		policy.Rand = rand.New(rand.NewSource(7))
		rt := NewRetryTransport(&scriptRT{}, policy)
		var out []time.Duration
		for i := 0; i < 10; i++ {
			out = append(out, rt.backoff(i%3))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestNotDelivered(t *testing.T) {
	if !NotDelivered(notSentErr{}) {
		t.Error("marker error not recognised")
	}
	if !NotDelivered(fmt.Errorf("wrap: %w", notSentErr{})) {
		t.Error("wrapped marker error not recognised")
	}
	if NotDelivered(errors.New("connection reset by peer")) {
		t.Error("generic error treated as not delivered")
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next http.RoundTripper) http.RoundTripper {
			return roundTripFunc(func(req *http.Request) (*http.Response, error) {
				order = append(order, name)
				return next.RoundTrip(req)
			})
		}
	}
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		order = append(order, "base")
		return ok200()(req)
	})
	rt := Chain(base, mw("outer"), mw("inner"))
	resp, err := get(t, rt)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if strings.Join(order, ",") != "outer,inner,base" {
		t.Errorf("order=%v", order)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// statusWithRetryAfter scripts a response carrying a Retry-After header.
func statusWithRetryAfter(code int, retryAfter string) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: code,
			Body:       io.NopCloser(strings.NewReader("body")),
			Header:     http.Header{"Retry-After": []string{retryAfter}},
			Request:    req,
		}, nil
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 1, 2, 15, 0, 0, 0, time.UTC)
	tests := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"7", 7 * time.Second, true},
		{" 12 ", 12 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"soon", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true}, // past date: retry now
	}
	for _, tt := range tests {
		got, ok := ParseRetryAfter(tt.in, now)
		if got != tt.want || ok != tt.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}

// A 429 is retryable by default, and its Retry-After hint stretches the
// inter-attempt delay past the computed backoff.
func Test429RetryHonorsRetryAfterHint(t *testing.T) {
	var slept []time.Duration
	policy := fastPolicy() // backoff capped at 4ms
	policy.Sleep = func(d time.Duration) { slept = append(slept, d) }
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		statusWithRetryAfter(http.StatusTooManyRequests, "3"),
		ok200(),
	}}
	resp, err := get(t, NewRetryTransport(script, policy))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || script.Calls() != 2 {
		t.Fatalf("status=%d calls=%d", resp.StatusCode, script.Calls())
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("slept=%v, want one 3s wait from the Retry-After hint", slept)
	}
}

// An abusive Retry-After is clamped to MaxRetryAfter.
func TestRetryAfterClampedToMax(t *testing.T) {
	var slept []time.Duration
	policy := fastPolicy()
	policy.MaxRetryAfter = 5 * time.Second
	policy.Sleep = func(d time.Duration) { slept = append(slept, d) }
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		statusWithRetryAfter(http.StatusServiceUnavailable, "3600"),
		ok200(),
	}}
	resp, err := get(t, NewRetryTransport(script, policy))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slept) != 1 || slept[0] != 5*time.Second {
		t.Errorf("slept=%v, want the 5s MaxRetryAfter clamp", slept)
	}
}

// A hint below the computed backoff never shortens the wait.
func TestRetryAfterNeverShortensBackoff(t *testing.T) {
	var slept []time.Duration
	policy := fastPolicy()
	policy.BaseDelay = 2 * time.Second
	policy.MaxDelay = 2 * time.Second
	policy.Rand = nil // deterministic enough: delay in [0, 2s]
	policy.Sleep = func(d time.Duration) { slept = append(slept, d) }
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		statusWithRetryAfter(http.StatusTooManyRequests, "0"),
		ok200(),
	}}
	resp, err := get(t, NewRetryTransport(script, policy))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slept) != 1 || slept[0] < 0 || slept[0] > 2*time.Second {
		t.Errorf("slept=%v, want the jittered backoff, not the 0s hint", slept)
	}
}

// A non-idempotent POST is still never replayed on 429: the shed response
// was delivered.
func TestNoRetryForPostWith429(t *testing.T) {
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		statusWithRetryAfter(http.StatusTooManyRequests, "2"),
	}}
	resp, err := post(t, NewRetryTransport(script, fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || script.Calls() != 1 {
		t.Errorf("status=%d calls=%d, want the 429 surfaced without replay", resp.StatusCode, script.Calls())
	}
}
