package resilience

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock, onChange func(from, to State)) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         10 * time.Second,
		Now:              clk.Now,
		OnStateChange:    onChange,
	})
}

func mustAllow(t *testing.T, b *Breaker) func(bool) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v (state=%v)", err, b.State())
	}
	return done
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	var transitions []string
	b := testBreaker(clk, func(from, to State) {
		transitions = append(transitions, fmt.Sprintf("%v->%v", from, to))
	})

	// Interleaved success resets the failure count.
	mustAllow(t, b)(false)
	mustAllow(t, b)(false)
	mustAllow(t, b)(true)
	if b.State() != StateClosed {
		t.Fatalf("state=%v after reset, want closed", b.State())
	}

	for i := 0; i < 3; i++ {
		mustAllow(t, b)(false)
	}
	if b.State() != StateOpen {
		t.Fatalf("state=%v after 3 failures, want open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
	if got := b.Stats(); got.Opens != 1 || got.Rejections != 1 {
		t.Errorf("stats=%+v", got)
	}
	if len(transitions) != 1 || transitions[0] != "closed->open" {
		t.Errorf("transitions=%v", transitions)
	}
}

func TestBreakerHalfOpenTrialRecovers(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, nil)
	for i := 0; i < 3; i++ {
		mustAllow(t, b)(false)
	}

	// Cooldown not elapsed: still rejecting.
	clk.Advance(9 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("breaker admitted a call before cooldown")
	}

	// Cooldown elapsed: one trial admitted, concurrent trials rejected.
	clk.Advance(2 * time.Second)
	done := mustAllow(t, b)
	if b.State() != StateHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent trial admitted in half-open")
	}
	done(true)
	if b.State() != StateClosed {
		t.Fatalf("state=%v after successful trial, want closed", b.State())
	}
	if got := b.Stats(); got.Trials != 1 {
		t.Errorf("stats=%+v", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, nil)
	for i := 0; i < 3; i++ {
		mustAllow(t, b)(false)
	}
	clk.Advance(11 * time.Second)
	mustAllow(t, b)(false) // failed trial
	if b.State() != StateOpen {
		t.Fatalf("state=%v after failed trial, want open", b.State())
	}
	// A fresh cooldown applies.
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("reopened breaker admitted a call immediately")
	}
	clk.Advance(11 * time.Second)
	mustAllow(t, b)(true)
	if b.State() != StateClosed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

func TestBreakerSuccessThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		SuccessThreshold: 2,
		HalfOpenMax:      2,
		Now:              clk.Now,
	})
	mustAllow(t, b)(false)
	clk.Advance(2 * time.Second)
	mustAllow(t, b)(true)
	if b.State() != StateHalfOpen {
		t.Fatalf("state=%v after 1/2 successes, want half-open", b.State())
	}
	mustAllow(t, b)(true)
	if b.State() != StateClosed {
		t.Fatalf("state=%v after 2/2 successes, want closed", b.State())
	}
}

func TestBreakerDoneIdempotent(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	done := mustAllow(t, b)
	done(false)
	done(false) // ignored: outcome already recorded
	if got := b.Stats().ConsecutiveFailures; got != 1 {
		t.Errorf("failures=%d, want 1", got)
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 5, Cooldown: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				done, err := b.Allow()
				if err != nil {
					continue
				}
				done(i%3 != 0)
			}
		}(g)
	}
	wg.Wait()
	// No deadlock, no race; state is one of the three valid states.
	if s := b.State(); s != StateClosed && s != StateOpen && s != StateHalfOpen {
		t.Errorf("invalid state %v", s)
	}
}

func TestBreakerTransport(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, Now: clk.Now})
	script := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		status(500), fail(errors.New("boom")), ok200(),
	}}
	rt := NewBreakerTransport(script, b)

	if resp, err := get(t, rt); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close() // 500 counts as failure
	}
	if _, err := get(t, rt); err == nil {
		t.Fatal("expected transport error")
	}
	if b.State() != StateOpen {
		t.Fatalf("state=%v, want open", b.State())
	}
	if _, err := get(t, rt); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err=%v, want ErrCircuitOpen", err)
	}
	if script.Calls() != 2 {
		t.Errorf("open breaker let a call through: calls=%d", script.Calls())
	}
	clk.Advance(2 * time.Minute)
	resp, err := get(t, rt)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if b.State() != StateClosed {
		t.Errorf("state=%v after successful trial, want closed", b.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateClosed: "closed", StateOpen: "open", StateHalfOpen: "half-open", State(9): "state(9)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String()=%q, want %q", int(s), s.String(), want)
		}
	}
}
