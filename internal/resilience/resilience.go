// Package resilience hardens the remote tag-service path (§6's enterprise
// deployment) against partial failure. Every disclosure verdict in a
// shared-service deployment rides on a network round-trip, so the package
// provides composable http.RoundTripper middleware:
//
//   - RetryTransport: per-attempt deadlines and capped exponential backoff
//     with full jitter. Only idempotent requests (GET/HEAD/OPTIONS/TRACE,
//     or mutations explicitly marked replay-safe with an Idempotency-Key
//     header) and requests that provably never reached the server are
//     retried — a delivered non-idempotent POST is never replayed.
//   - Breaker / BreakerTransport: a three-state circuit breaker
//     (closed → open → half-open) that sheds load while the service is
//     down and probes it with bounded trial requests on recovery.
//
// Middleware composes with Chain; metrics hooks (OnRetry, OnStateChange)
// expose every decision to the caller's instrumentation.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/lsds/browserflow/internal/obs"
)

// Middleware wraps an http.RoundTripper with additional behaviour.
type Middleware func(http.RoundTripper) http.RoundTripper

// Chain composes middleware around base; the first middleware is the
// outermost layer. Chain(base, A, B) dispatches A -> B -> base.
func Chain(base http.RoundTripper, mws ...Middleware) http.RoundTripper {
	rt := base
	for i := len(mws) - 1; i >= 0; i-- {
		rt = mws[i](rt)
	}
	return rt
}

// notSentMarker is implemented by errors (e.g. from internal/faultinject)
// guaranteeing the request body never reached the server, which makes a
// retry safe even for non-idempotent methods.
type notSentMarker interface{ RequestNotSent() bool }

// NotDelivered reports whether err proves the request was never delivered
// upstream: dial-level failures, connection-refused, or transports marking
// the error with a RequestNotSent() method. Anything else must be assumed
// delivered.
func NotDelivered(err error) bool {
	var m notSentMarker
	if errors.As(err, &m) {
		return m.RequestNotSent()
	}
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// IdempotencyKeyHeader marks a mutating request as safe to replay: the
// sender guarantees that applying the request twice converges to the
// same state (BrowserFlow's tag-service mutations have this property
// because every one becomes an idempotent WAL record — see
// internal/store's replay semantics). RetryTransport treats requests
// carrying the header like idempotent methods.
const IdempotencyKeyHeader = "Idempotency-Key"

// Idempotent reports whether the request may be retried unconditionally:
// either its method is idempotent by definition, or the sender opted in
// by attaching an Idempotency-Key header.
func Idempotent(req *http.Request) bool {
	switch req.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions, http.MethodTrace:
		return true
	}
	return req.Header.Get(IdempotencyKeyHeader) != ""
}

// RetryPolicy configures a RetryTransport.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3).
	MaxAttempts int

	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration

	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration

	// PerAttemptTimeout bounds each individual attempt; 0 disables. The
	// caller's request context still bounds the whole call.
	PerAttemptTimeout time.Duration

	// RetryStatuses are response codes treated as transient server
	// failures (default 429, 502, 503, 504). They are retried for
	// idempotent requests only — the body was delivered. 429 is
	// retryable-with-hint: the admission layer shed the request and its
	// Retry-After header says when capacity should exist again.
	RetryStatuses []int

	// MaxRetryAfter caps how far a server's Retry-After hint can stretch
	// a single inter-attempt delay (default 30s). The hint only ever
	// lengthens the computed backoff, never shortens it — a server asking
	// for patience gets at least the jittered exponential wait.
	MaxRetryAfter time.Duration

	// Rand supplies the jitter; nil uses a locked global source. Seeding
	// it makes backoff sequences deterministic for tests.
	Rand *rand.Rand

	// Sleep replaces the inter-attempt wait, letting tests skip real
	// delays. Nil uses a context-aware timer.
	Sleep func(time.Duration)

	// OnRetry, if set, observes every scheduled retry (metrics hook).
	// attempt is the attempt that just failed (1-based).
	OnRetry func(req *http.Request, attempt int, delay time.Duration, reason string)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.RetryStatuses == nil {
		p.RetryStatuses = []int{http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout}
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = 30 * time.Second
	}
	return p
}

// ParseRetryAfter parses an HTTP Retry-After header value: either a
// non-negative decimal number of seconds or an HTTP-date. now anchors
// date-form values (pass time.Now() outside tests). ok is false for empty
// or malformed values; a date already in the past parses as (0, true).
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	when, err := http.ParseTime(v)
	if err != nil {
		return 0, false
	}
	d := when.Sub(now)
	if d < 0 {
		d = 0
	}
	return d, true
}

// RetryTransport retries transient failures with capped exponential
// backoff and full jitter. It is safe for concurrent use.
type RetryTransport struct {
	next        http.RoundTripper
	policy      RetryPolicy
	retryStatus map[int]bool

	randMu sync.Mutex // guards policy.Rand

	attempts atomic.Int64
	retries  atomic.Int64
	giveUps  atomic.Int64
}

// NewRetryTransport wraps next with policy. A nil next uses
// http.DefaultTransport.
func NewRetryTransport(next http.RoundTripper, policy RetryPolicy) *RetryTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	policy = policy.withDefaults()
	t := &RetryTransport{next: next, policy: policy, retryStatus: make(map[int]bool)}
	for _, code := range policy.RetryStatuses {
		t.retryStatus[code] = true
	}
	return t
}

// WithRetry is the Middleware form of NewRetryTransport.
func WithRetry(policy RetryPolicy) Middleware {
	return func(next http.RoundTripper) http.RoundTripper {
		return NewRetryTransport(next, policy)
	}
}

// RetryStats snapshots the transport's counters.
type RetryStats struct {
	// Attempts counts every dispatched attempt (first tries included).
	Attempts int64

	// Retries counts re-dispatched attempts.
	Retries int64

	// GiveUps counts logical requests that exhausted every attempt.
	GiveUps int64
}

// Stats returns a snapshot of the counters.
func (t *RetryTransport) Stats() RetryStats {
	return RetryStats{
		Attempts: t.attempts.Load(),
		Retries:  t.retries.Load(),
		GiveUps:  t.giveUps.Load(),
	}
}

// RoundTrip implements http.RoundTripper.
func (t *RetryTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	var lastErr error
	for attempt := 0; attempt < t.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !rewindBody(req) {
				// Body cannot be replayed; surface the previous failure.
				t.giveUps.Add(1)
				return nil, lastErr
			}
		}
		t.attempts.Add(1)

		attemptReq := req
		cancel := context.CancelFunc(nil)
		if t.policy.PerAttemptTimeout > 0 {
			var actx context.Context
			actx, cancel = context.WithTimeout(ctx, t.policy.PerAttemptTimeout)
			attemptReq = req.Clone(actx)
		}

		resp, err := t.next.RoundTrip(attemptReq)

		var reason string
		var hint time.Duration
		switch {
		case err == nil && !t.retryStatus[resp.StatusCode]:
			// Success (or a non-transient failure status the caller
			// handles).
			return holdCancel(resp, cancel), nil
		case err == nil:
			// Transient server status. The body was delivered, so only
			// idempotent requests may retry; a delivered POST is final.
			if !Idempotent(req) || attempt == t.policy.MaxAttempts-1 {
				return holdCancel(resp, cancel), nil
			}
			reason = fmt.Sprintf("status %d", resp.StatusCode)
			// Read the Retry-After hint before the body (and with it the
			// header view) is released.
			if h, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				hint = h
				reason += fmt.Sprintf(" (retry-after %s)", h)
			}
			drainClose(resp)
			release(cancel)
			lastErr = fmt.Errorf("resilience: upstream status %d", resp.StatusCode)
		default:
			release(cancel)
			lastErr = err
			if ctx.Err() != nil {
				// The caller's context is gone; no point retrying.
				t.giveUps.Add(1)
				return nil, err
			}
			if !Idempotent(req) && !NotDelivered(err) {
				// The body may have reached the server: never replay it.
				t.giveUps.Add(1)
				return nil, err
			}
			reason = "error: " + err.Error()
		}

		if attempt == t.policy.MaxAttempts-1 {
			break
		}
		delay := t.backoff(attempt)
		// Honor the server's Retry-After: it never shortens the jittered
		// backoff, only stretches it (bounded by MaxRetryAfter).
		if hint > t.policy.MaxRetryAfter {
			hint = t.policy.MaxRetryAfter
		}
		if hint > delay {
			delay = hint
		}
		t.retries.Add(1)
		if t.policy.OnRetry != nil {
			t.policy.OnRetry(req, attempt+1, delay, reason)
		}
		// When the request rides a trace, the scheduled retry becomes a
		// span on it, so an end-to-end trace shows every extra attempt a
		// flaky transport cost the caller. No-op on untraced requests.
		obs.RecordSpan(ctx, "resilience.retry", time.Now(), delay, lastErr, map[string]string{
			"attempt": fmt.Sprintf("%d", attempt+1),
			"reason":  reason,
		})
		if !t.sleep(ctx, delay) {
			t.giveUps.Add(1)
			return nil, ctx.Err()
		}
	}
	t.giveUps.Add(1)
	return nil, lastErr
}

// backoff returns the full-jitter delay for the given 0-based attempt:
// uniform in [0, min(MaxDelay, BaseDelay·2^attempt)].
func (t *RetryTransport) backoff(attempt int) time.Duration {
	ceil := t.policy.BaseDelay << uint(attempt)
	if ceil <= 0 || ceil > t.policy.MaxDelay {
		ceil = t.policy.MaxDelay
	}
	t.randMu.Lock()
	defer t.randMu.Unlock()
	if t.policy.Rand != nil {
		return time.Duration(t.policy.Rand.Int63n(int64(ceil) + 1))
	}
	return time.Duration(rand.Int63n(int64(ceil) + 1))
}

// sleep waits for d, aborting early when ctx is cancelled. It reports
// whether the caller should proceed with the next attempt.
func (t *RetryTransport) sleep(ctx context.Context, d time.Duration) bool {
	if t.policy.Sleep != nil {
		t.policy.Sleep(d)
		return ctx.Err() == nil
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// rewindBody restores req.Body for a retry. It reports false when the body
// cannot be replayed.
func rewindBody(req *http.Request) bool {
	if req.Body == nil || req.Body == http.NoBody {
		return true
	}
	if req.GetBody == nil {
		return false
	}
	body, err := req.GetBody()
	if err != nil {
		return false
	}
	req.Body = body
	return true
}

// drainClose discards a bounded prefix of the body and closes it so the
// underlying connection can be reused.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
	resp.Body.Close()
}

// holdCancel defers a per-attempt context cancel until the response body
// is closed, so the caller can still read it.
func holdCancel(resp *http.Response, cancel context.CancelFunc) *http.Response {
	if cancel == nil {
		return resp
	}
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp
}

func release(cancel context.CancelFunc) {
	if cancel != nil {
		cancel()
	}
}

type cancelOnClose struct {
	io.ReadCloser
	cancel  context.CancelFunc
	closed  sync.Once
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.closed.Do(c.cancel)
	return err
}
