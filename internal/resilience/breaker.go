package resilience

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (possibly wrapped) when the breaker rejects a
// call without dispatching it.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// State is a circuit breaker state.
type State int

const (
	// StateClosed passes every call through, counting consecutive
	// failures.
	StateClosed State = iota

	// StateOpen rejects every call until the cooldown elapses.
	StateOpen

	// StateHalfOpen admits a bounded number of trial calls; success
	// closes the breaker, failure reopens it.
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig configures a Breaker. The zero value gets sane defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker open (default 5).
	FailureThreshold int

	// Cooldown is how long an open breaker rejects calls before
	// admitting half-open trials (default 10s).
	Cooldown time.Duration

	// HalfOpenMax bounds concurrent trial calls in half-open (default 1).
	HalfOpenMax int

	// SuccessThreshold is the number of successful trials that closes a
	// half-open breaker (default 1).
	SuccessThreshold int

	// Now is the clock (default time.Now); injectable for deterministic
	// tests.
	Now func() time.Time

	// OnStateChange, if set, observes every transition (metrics hook).
	// It is called without the breaker's lock held.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.HalfOpenMax <= 0 {
		c.HalfOpenMax = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerStats snapshots a breaker's counters.
type BreakerStats struct {
	State               State
	ConsecutiveFailures int
	Opens               int64 // closed/half-open -> open transitions
	Rejections          int64 // calls rejected with ErrCircuitOpen
	Trials              int64 // half-open trial calls admitted
}

// Breaker is a three-state circuit breaker. Guard a call with Allow; the
// returned done function must be invoked exactly once with the call's
// outcome. It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu                sync.Mutex
	state             State
	failures          int
	openedAt          time.Time
	halfOpenInFlight  int
	halfOpenSuccesses int

	opens      int64
	rejections int64
	trials     int64
}

// NewBreaker returns a closed Breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state, transitioning open -> half-open when
// the cooldown has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	s, notify := b.refreshLocked()
	b.mu.Unlock()
	b.notify(notify)
	return s
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state,
		ConsecutiveFailures: b.failures,
		Opens:               b.opens,
		Rejections:          b.rejections,
		Trials:              b.trials,
	}
}

// Allow asks to dispatch one call. On success it returns a done function
// that must be called exactly once with the call's outcome; otherwise it
// returns ErrCircuitOpen.
func (b *Breaker) Allow() (done func(success bool), err error) {
	b.mu.Lock()
	_, notify := b.refreshLocked()
	switch b.state {
	case StateOpen:
		b.rejections++
		b.mu.Unlock()
		b.notify(notify)
		return nil, ErrCircuitOpen
	case StateHalfOpen:
		if b.halfOpenInFlight >= b.cfg.HalfOpenMax {
			b.rejections++
			b.mu.Unlock()
			b.notify(notify)
			return nil, ErrCircuitOpen
		}
		b.halfOpenInFlight++
		b.trials++
	}
	b.mu.Unlock()
	b.notify(notify)

	var once sync.Once
	return func(success bool) {
		once.Do(func() { b.record(success) })
	}, nil
}

// record applies one call outcome.
func (b *Breaker) record(success bool) {
	b.mu.Lock()
	var notify [][2]State
	switch b.state {
	case StateHalfOpen:
		b.halfOpenInFlight--
		if success {
			b.halfOpenSuccesses++
			if b.halfOpenSuccesses >= b.cfg.SuccessThreshold {
				notify = append(notify, b.setStateLocked(StateClosed))
				b.failures = 0
			}
		} else {
			notify = append(notify, b.setStateLocked(StateOpen))
		}
	case StateClosed:
		if success {
			b.failures = 0
		} else {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				notify = append(notify, b.setStateLocked(StateOpen))
			}
		}
	case StateOpen:
		// A call admitted before the trip finished late; only successes
		// matter here, and they cannot close an open breaker early.
	}
	b.mu.Unlock()
	b.notify(notify)
}

// refreshLocked transitions open -> half-open once the cooldown elapses.
// It returns the state and any transition to notify after unlocking.
func (b *Breaker) refreshLocked() (State, [][2]State) {
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return StateHalfOpen, [][2]State{b.setStateLocked(StateHalfOpen)}
	}
	return b.state, nil
}

// setStateLocked performs a transition and returns it for deferred
// notification (OnStateChange must run without the lock).
func (b *Breaker) setStateLocked(to State) [2]State {
	from := b.state
	b.state = to
	switch to {
	case StateOpen:
		b.openedAt = b.cfg.Now()
		b.opens++
		b.halfOpenSuccesses = 0
		b.halfOpenInFlight = 0
	case StateHalfOpen:
		b.halfOpenSuccesses = 0
		b.halfOpenInFlight = 0
	case StateClosed:
		b.failures = 0
	}
	return [2]State{from, to}
}

func (b *Breaker) notify(transitions [][2]State) {
	if b.cfg.OnStateChange == nil {
		return
	}
	for _, tr := range transitions {
		if tr[0] != tr[1] {
			b.cfg.OnStateChange(tr[0], tr[1])
		}
	}
}

// BreakerTransport guards an http.RoundTripper with a Breaker: transport
// errors and 5xx responses count as failures.
type BreakerTransport struct {
	next    http.RoundTripper
	breaker *Breaker
}

// NewBreakerTransport wraps next with breaker. A nil next uses
// http.DefaultTransport.
func NewBreakerTransport(next http.RoundTripper, breaker *Breaker) *BreakerTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &BreakerTransport{next: next, breaker: breaker}
}

// WithBreaker is the Middleware form of NewBreakerTransport.
func WithBreaker(breaker *Breaker) Middleware {
	return func(next http.RoundTripper) http.RoundTripper {
		return NewBreakerTransport(next, breaker)
	}
}

// Breaker returns the underlying breaker (for stats and state queries).
func (t *BreakerTransport) Breaker() *Breaker { return t.breaker }

// RoundTrip implements http.RoundTripper.
func (t *BreakerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	done, err := t.breaker.Allow()
	if err != nil {
		return nil, fmt.Errorf("resilience: %s %s: %w", req.Method, req.URL.Path, err)
	}
	resp, err := t.next.RoundTrip(req)
	done(err == nil && resp.StatusCode < http.StatusInternalServerError)
	return resp, err
}
