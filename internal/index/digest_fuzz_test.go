package index

import (
	"bytes"
	"testing"
)

// FuzzDecodeDigest feeds arbitrary bytes to the digest frame decoder: it
// must either return a CodecError or a digest that re-encodes to exactly
// the input bytes — never panic, never accept a mangled frame.
func FuzzDecodeDigest(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(digestMagic))
	valid := Digest{Clock: 3, Postings: 5, Pars: 7, Combined: 9}.AppendEncode(nil)
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[12] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDigest(data)
		if err != nil {
			return
		}
		if got := d.AppendEncode(nil); !bytes.Equal(got, data) {
			t.Fatalf("accepted frame does not re-encode to itself:\n in %x\nout %x", data, got)
		}
	})
}
