package index

// Concurrency stress for the lock-striped DB, designed to run under `go
// test -race` (the Makefile's check target). Many goroutines update
// overlapping and disjoint segments while expiry and removal run; at
// quiescence the structural invariants must hold:
//
//   - per bucket, postings are in strictly ascending Seq order with at
//     most one posting per segment — so the authoritative holder
//     (postings[0]) is always the oldest live poster;
//   - the O(1) Stats counters equal a full recount;
//   - every surviving DBpar entry's latest fingerprint has a posting (or
//     an older holder) for each of its hashes.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// stressFP builds a deterministic fingerprint whose hash set overlaps with
// neighbouring generations: generation g of worker w shares hashes with
// other workers (shared pool) and keeps worker-private hashes too.
func stressFP(worker, generation int) *fingerprint.Fingerprint {
	hs := make([]uint32, 0, 24)
	for j := 0; j < 12; j++ {
		// Shared pool: same values across workers → contended buckets.
		hs = append(hs, uint32((generation%5)*16+j)*0x9e3779b1)
	}
	for j := 0; j < 12; j++ {
		// Private: unique per worker → disjoint buckets.
		hs = append(hs, uint32(worker*100000+generation*16+j)*0x85ebca6b+1)
	}
	return fingerprint.FromHashes(hs)
}

func TestConcurrentUpdateExpireInvariants(t *testing.T) {
	const (
		workers     = 8
		generations = 150
	)
	db := New(0.5)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := 0; g < generations; g++ {
				// Two segments per worker: one long-lived (overlapping
				// hash pool) and one churning (removed every few rounds).
				stable := segment.ID(fmt.Sprintf("w%d/stable#p0", w))
				churn := segment.ID(fmt.Sprintf("w%d/churn#p%d", w, g%3))
				db.Update(stable, stressFP(w, g))
				db.Update(churn, stressFP(w+workers, g))
				if g%7 == 3 {
					db.RemoveSegment(churn)
				}
				// Queries race with the writers.
				db.OldestHolder(uint32((g % 5) * 16 * 0x9e3779b1))
				db.AuthoritativeOverlap(stable, stressFP(w, g))
				db.Stats()
			}
		}(w)
	}
	// Expiry runs concurrently with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			now := db.Now()
			if now > 200 {
				db.ExpireBefore(now - 200)
			}
		}
	}()
	wg.Wait()

	checkInvariants(t, db)

	// Final expiry of everything must leave a coherent empty DBhash.
	db.ExpireBefore(db.Now() + 1)
	checkInvariants(t, db)
	if s := db.Stats(); s.Postings != 0 || s.DistinctHashes != 0 || s.Segments != 0 {
		t.Fatalf("full expiry left non-empty stats: %+v", s)
	}
}

// checkInvariants asserts the quiescent structural invariants listed in
// the file comment, over the merged view of each shard's mutable head and
// compacted run.
func checkInvariants(t *testing.T, db *DB) {
	t.Helper()
	var distinct, postings, headN, dead int
	view := idsView{tab: &db.segtab}
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		shardHead := 0
		for h, b := range sh.head {
			if len(b.postings) == 0 {
				t.Errorf("hash %#x: empty head bucket not deleted", h)
			}
			shardHead += len(b.postings)
			if b.members != nil {
				if len(b.members) != len(b.postings) {
					t.Errorf("hash %#x: member set size %d != postings %d", h, len(b.members), len(b.postings))
				}
				for _, p := range b.postings {
					if _, ok := b.members[p.Seg]; !ok {
						t.Errorf("hash %#x: posting %s missing from member set", h, p.Seg)
					}
				}
			}
		}
		if shardHead != sh.headPostings {
			t.Errorf("shard %d: headPostings counter %d != recount %d", si, sh.headPostings, shardHead)
		}
		headN += shardHead
		shardDead := 0
		for _, r := range sh.run.segs {
			if r == tombstoneRef {
				shardDead++
			}
		}
		if shardDead != sh.dead {
			t.Errorf("shard %d: dead counter %d != recount %d", si, sh.dead, shardDead)
		}
		dead += shardDead
		for g := 1; g < len(sh.run.hashes); g++ {
			if sh.run.hashes[g-1] >= sh.run.hashes[g] {
				t.Errorf("shard %d: run hashes out of order at group %d", si, g)
			}
		}
		for _, h := range shardHashesLocked(sh) {
			ps := db.appendMergedLocked(sh, h, &view, nil)
			if len(ps) == 0 {
				continue // fully tombstoned group awaiting merge
			}
			distinct++
			postings += len(ps)
			seen := make(map[segment.ID]bool, len(ps))
			for i, p := range ps {
				if seen[p.Seg] {
					t.Errorf("hash %#x: duplicate posting for %s", h, p.Seg)
				}
				seen[p.Seg] = true
				if i > 0 && ps[i-1].Seq > p.Seq {
					t.Errorf("hash %#x: postings out of Seq order at %d", h, i)
				}
			}
			oldest, ok := db.oldestLocked(sh, h, &view)
			if !ok || oldest != ps[0].Seg {
				t.Errorf("hash %#x: oldest = %q, want %q", h, oldest, ps[0].Seg)
			}
		}
		sh.mu.RUnlock()
	}
	var segs int
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		segs += len(ss.par)
		ss.mu.RUnlock()
	}
	s := db.Stats()
	if s.DistinctHashes != distinct || s.Postings != postings || s.Segments != segs ||
		s.HeadPostings != headN || s.Tombstones != dead {
		t.Errorf("counters drifted: Stats %+v, recount distinct=%d postings=%d segments=%d head=%d dead=%d",
			s, distinct, postings, segs, headN, dead)
	}
}

// TestConcurrentExportImport races Export against writers and then
// verifies the exported snapshot is internally consistent and importable.
func TestConcurrentExportImport(t *testing.T) {
	db := New(0.5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := 0; g < 60; g++ {
				db.Update(segment.ID(fmt.Sprintf("w%d#p%d", w, g%4)), stressFP(w, g))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			db.Export()
		}
	}()
	wg.Wait()

	data := db.Export()
	restored := New(0.5)
	if err := restored.Import(data); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, restored)
	got, want := restored.Stats(), db.Stats()
	if got.Postings != want.Postings || got.DistinctHashes != want.DistinctHashes || got.Segments != want.Segments {
		t.Fatalf("import drifted: got %+v want %+v", got, want)
	}
}
