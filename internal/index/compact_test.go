package index

// Compaction equivalence: a DB that merges aggressively (tiny threshold,
// explicit Compact calls interleaved) must be observably identical to a DB
// that never merges (negative threshold pins the head-only map layout),
// when both replay the same operation sequence. "Observably identical"
// means byte-identical Export output plus equal answers from every query
// API — the property the tentpole must preserve for the golden suites.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// opSeq replays a deterministic mixed workload (updates with overlapping
// hash sets, re-updates, removals, threshold changes, expiry) against db.
// Every k ops, tick(db) runs (e.g. Compact) — the compacted DB merges
// mid-stream while the baseline never does.
func opSeq(db *DB, rng *rand.Rand, ops int, tick func(*DB), k int) {
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			seg := segment.ID(fmt.Sprintf("doc%d#p%d", rng.Intn(8), rng.Intn(12)))
			hs := make([]uint32, 0, 20)
			base := rng.Intn(40)
			for j := 0; j < 20; j++ {
				hs = append(hs, uint32(base*10+j)*0x9e3779b1)
			}
			db.Update(seg, fingerprint.FromHashes(hs))
		case 6:
			db.RemoveSegment(segment.ID(fmt.Sprintf("doc%d#p%d", rng.Intn(8), rng.Intn(12))))
		case 7:
			db.SetThreshold(segment.ID(fmt.Sprintf("doc%d#p%d", rng.Intn(8), rng.Intn(12))), 0.25)
		case 8:
			if now := db.Now(); now > 50 {
				db.ExpireBefore(now - 50)
			}
		case 9:
			seg := segment.ID(fmt.Sprintf("doc%d#p%d", rng.Intn(8), rng.Intn(12)))
			db.AuthoritativeCount(seg)
		}
		if k > 0 && i%k == k-1 {
			tick(db)
		}
	}
}

// assertSameObservable checks every query API agrees between a and b over
// the hash/segment universe of the workload.
func assertSameObservable(t *testing.T, a, b *DB) {
	t.Helper()
	ea, eb := a.Export(), b.Export()
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("Export diverged:\ncompacted: %d segs %d postings\nbaseline:  %d segs %d postings",
			len(ea.Segments), len(ea.Postings), len(eb.Segments), len(eb.Postings))
	}
	for base := 0; base < 40; base++ {
		for j := 0; j < 20; j++ {
			h := uint32(base*10+j) * 0x9e3779b1
			sa, oka := a.OldestHolder(h)
			sb, okb := b.OldestHolder(h)
			if sa != sb || oka != okb {
				t.Fatalf("OldestHolder(%#x): compacted (%q,%v) baseline (%q,%v)", h, sa, oka, sb, okb)
			}
			if ha, hb := a.Holders(h), b.Holders(h); !reflect.DeepEqual(ha, hb) {
				t.Fatalf("Holders(%#x): compacted %v baseline %v", h, ha, hb)
			}
		}
	}
	for d := 0; d < 8; d++ {
		for p := 0; p < 12; p++ {
			seg := segment.ID(fmt.Sprintf("doc%d#p%d", d, p))
			if ca, cb := a.AuthoritativeCount(seg), b.AuthoritativeCount(seg); ca != cb {
				t.Fatalf("AuthoritativeCount(%s): compacted %d baseline %d", seg, ca, cb)
			}
			if fp, _, ok := b.Origin(seg); ok {
				oa, la := a.AuthoritativeOverlap(seg, fp)
				ob, lb := b.AuthoritativeOverlap(seg, fp)
				if oa != ob || la != lb {
					t.Fatalf("AuthoritativeOverlap(%s): compacted (%d,%d) baseline (%d,%d)", seg, oa, la, ob, lb)
				}
			}
			if ta, tb := a.Threshold(seg), b.Threshold(seg); ta != tb {
				t.Fatalf("Threshold(%s): compacted %v baseline %v", seg, ta, tb)
			}
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Segments != sb.Segments || sa.DistinctHashes != sb.DistinctHashes || sa.Postings != sb.Postings {
		t.Fatalf("Stats diverged: compacted %+v baseline %+v", sa, sb)
	}
}

func TestCompactionObservableEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, DefaultShards} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				compacted := NewWithShards(0.5, shards)
				compacted.SetCompactThreshold(1) // merge at every opportunity
				baseline := NewWithShards(0.5, shards)
				baseline.SetCompactThreshold(-1) // never merge: head-only layout

				opSeq(compacted, rand.New(rand.NewSource(seed)), 600, (*DB).Compact, 7)
				opSeq(baseline, rand.New(rand.NewSource(seed)), 600, func(*DB) {}, 7)

				assertSameObservable(t, compacted, baseline)
				checkInvariants(t, compacted)
				checkInvariants(t, baseline)

				// One more merge of everything must change nothing.
				compacted.Compact()
				assertSameObservable(t, compacted, baseline)
			})
		}
	}
}

// TestCompactionStatsBaseline pins that a merged index reports a smaller
// modelled footprint than the head-only layout for the same contents.
func TestCompactionStatsBaseline(t *testing.T) {
	build := func(threshold int) *DB {
		db := New(0.5)
		db.SetCompactThreshold(threshold)
		for i := 0; i < 500; i++ {
			hs := make([]uint32, 32)
			for j := range hs {
				hs[j] = uint32(i*16+j) * 0x9e3779b1
			}
			db.Update(segment.ID(fmt.Sprintf("s#%d", i)), fingerprint.FromHashes(hs))
		}
		return db
	}
	merged := build(1)
	merged.Compact()
	headOnly := build(-1)
	ms, hsz := merged.Stats(), headOnly.Stats()
	if ms.Postings != hsz.Postings || ms.DistinctHashes != hsz.DistinctHashes {
		t.Fatalf("contents diverged: %+v vs %+v", ms, hsz)
	}
	if ms.HeadPostings != 0 {
		t.Fatalf("Compact left %d head postings", ms.HeadPostings)
	}
	if hsz.HeadPostings != hsz.Postings {
		t.Fatalf("baseline compacted anyway: %+v", hsz)
	}
	if ms.ApproxBytes >= hsz.ApproxBytes {
		t.Fatalf("merged ApproxBytes %d not below head-only %d", ms.ApproxBytes, hsz.ApproxBytes)
	}
}
