package index

// Compacted posting runs. Each hash shard pairs a small mutable head (the
// map-of-buckets layout that served the index up to 1M-hash corpora) with
// one immutable compacted run: four parallel columnar arrays holding every
// merged posting of the shard, ordered by (hash, seq).
//
//	hashes[i]            i-th distinct hash, strictly ascending
//	starts[i]..starts[i+1]  the posting group of hashes[i]
//	segs[k]              interned segment ref of posting k (tombstoneRef if dead)
//	seqs[k]              first-seen logical time of posting k, ascending per group
//
// Segment IDs are interned once per DB into a ref table at merge time, so a
// posting costs 4+8 bytes instead of a string header + map overhead — this
// is the roaring-style compaction of ROADMAP item 2: dense per-hash holder
// sets become flat sorted ref arrays that share one string table.
//
// Lookup cost is one small-map probe (head) plus a radix-skip bounded
// binary search (run): a 256-entry table per run keyed by the first byte
// below the shard bits narrows the search to ~1/256th of the run before
// the binary search starts, so at 10M+ hashes a probe touches a handful
// of contiguous cache lines instead of a giant hash map.
//
// Deletions tombstone run entries in place (segs[k] = tombstoneRef); merge
// drops tombstones. Merging happens inline under the shard write lock when
// the head outgrows the merge policy (see maybeCompactLocked), from
// DB.Compact, and after every ExpireBefore pass.

import (
	"sort"
	"sync"

	"github.com/lsds/browserflow/internal/segment"
)

// tombstoneRef marks a dead posting inside a compacted run.
const tombstoneRef = ^uint32(0)

// bigGroupMin is the live-posting count past which a run group gets a
// shard-level membership set (big), so inserting yet another holder of a
// hot hash (a popular passage held by thousands of paragraphs) is O(1)
// instead of a linear group scan.
const bigGroupMin = 64

// defaultCompactMin is the default minimum head size (postings) before an
// inline merge is considered; see SetCompactThreshold.
const defaultCompactMin = 4096

// segTable interns segment IDs to dense uint32 refs. It is append-only:
// refs are never reassigned, so a slice snapshot taken after a ref was
// published resolves that ref forever. It is a leaf lock: no other DB lock
// is ever acquired while holding it.
type segTable struct {
	mu   sync.RWMutex
	ids  []segment.ID
	refs map[segment.ID]uint32
}

// ref interns seg, returning its stable ref.
func (t *segTable) ref(seg segment.ID) uint32 {
	t.mu.RLock()
	r, ok := t.refs[seg]
	t.mu.RUnlock()
	if ok {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.refs[seg]; ok {
		return r
	}
	if t.refs == nil {
		t.refs = make(map[segment.ID]uint32)
	}
	r = uint32(len(t.ids))
	t.ids = append(t.ids, seg)
	t.refs[seg] = r
	return r
}

// refOf looks seg up without interning it.
func (t *segTable) refOf(seg segment.ID) (uint32, bool) {
	t.mu.RLock()
	r, ok := t.refs[seg]
	t.mu.RUnlock()
	return r, ok
}

// snapshot returns the current id slice. Entries are immutable once
// appended, so the snapshot resolves every ref published before the call.
func (t *segTable) snapshot() []segment.ID {
	t.mu.RLock()
	ids := t.ids[:len(t.ids):len(t.ids)]
	t.mu.RUnlock()
	return ids
}

// reset empties the table (Import / LoadSnapshot only; must not run
// concurrently with DB operations).
func (t *segTable) reset() {
	t.mu.Lock()
	t.ids = nil
	t.refs = nil
	t.mu.Unlock()
}

// idsView lazily resolves refs to segment IDs. The snapshot is refreshed
// only when a ref beyond it appears, which can only be a ref published
// after the view was created (snapshots cover all earlier refs).
type idsView struct {
	tab *segTable
	ids []segment.ID
}

func (v *idsView) id(ref uint32) segment.ID {
	if int(ref) >= len(v.ids) {
		v.ids = v.tab.snapshot()
	}
	return v.ids[ref]
}

// run is one shard's compacted posting arrays. Zero value = empty run.
type run struct {
	hashes []uint32
	starts []uint32 // len(hashes)+1 prefix offsets into segs/seqs; nil when empty
	segs   []uint32
	seqs   []uint64
	skip   []uint32 // 257-entry radix index over hashes, keyed by radixByte
}

// radixByte extracts the first 8 hash bits below the shard-selecting bits,
// the key of the per-run skip table.
func radixByte(h uint32, shardBits uint) uint32 {
	return (h << shardBits) >> 24
}

// find returns the group index of h, or -1.
func (r *run) find(h uint32, shardBits uint) int {
	if len(r.hashes) == 0 {
		return -1
	}
	b := radixByte(h, shardBits)
	lo, hi := int(r.skip[b]), int(r.skip[b+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.hashes) && r.hashes[lo] == h {
		return lo
	}
	return -1
}

// bounds returns the posting range of group g.
func (r *run) bounds(g int) (int, int) {
	return int(r.starts[g]), int(r.starts[g+1])
}

// firstLive returns the oldest live posting of group g.
func (r *run) firstLive(g int) (ref uint32, seq uint64, ok bool) {
	s, e := r.bounds(g)
	for i := s; i < e; i++ {
		if r.segs[i] != tombstoneRef {
			return r.segs[i], r.seqs[i], true
		}
	}
	return 0, 0, false
}

// buildSkip recomputes the radix skip table from hashes.
func (r *run) buildSkip(shardBits uint) {
	if len(r.hashes) == 0 {
		r.skip = nil
		return
	}
	if r.skip == nil {
		r.skip = make([]uint32, 257)
	}
	next := 0
	for b := 0; b < 256; b++ {
		r.skip[b] = uint32(next)
		for next < len(r.hashes) && radixByte(r.hashes[next], shardBits) == uint32(b) {
			next++
		}
	}
	r.skip[256] = uint32(len(r.hashes))
}

// shardBitsOf converts the DB's hash shift back into the shard-selecting
// bit count used by the radix tables.
func (db *DB) shardBitsOf() uint { return 32 - db.hashShift }

// runHasSeg reports whether the run group g holds a live posting for ref
// (hasRef=false short-circuits: an un-interned segment cannot be in a run),
// and whether the group has any live posting at all. The shard's big set
// for h, when present, answers both in O(1).
func (sh *hashShard) runHasSeg(h uint32, g int, ref uint32, hasRef bool) (inRun, anyLive bool) {
	if set, ok := sh.big[h]; ok {
		if len(set) == 0 {
			return false, false
		}
		if !hasRef {
			return false, true
		}
		_, in := set[ref]
		return in, true
	}
	s, e := sh.run.bounds(g)
	for i := s; i < e; i++ {
		r := sh.run.segs[i]
		if r == tombstoneRef {
			continue
		}
		anyLive = true
		if hasRef && r == ref {
			return true, true
		}
	}
	return false, anyLive
}

// tombstone marks (h, ref) dead in group g, returning the killed
// posting's seq (for digest maintenance), whether a live posting was
// killed and whether any live posting remains in the group.
func (sh *hashShard) tombstone(h uint32, g int, ref uint32) (seq uint64, killed, anyLive bool) {
	s, e := sh.run.bounds(g)
	for i := s; i < e; i++ {
		if sh.run.segs[i] == ref {
			seq = sh.run.seqs[i]
			sh.run.segs[i] = tombstoneRef
			killed = true
			break
		}
	}
	if killed {
		sh.dead++
		if set, ok := sh.big[h]; ok {
			delete(set, ref)
		}
	}
	for i := s; i < e; i++ {
		if sh.run.segs[i] != tombstoneRef {
			return seq, killed, true
		}
	}
	return seq, killed, false
}

// liveHashCountLocked counts hashes with at least one live posting (head
// buckets are never empty, so every head key is live; run groups count only
// when live and not shadowed by a head bucket for the same hash).
func (sh *hashShard) liveHashCountLocked() int {
	n := len(sh.head)
	for g := range sh.run.hashes {
		h := sh.run.hashes[g]
		if _, ok := sh.head[h]; ok {
			continue
		}
		if _, _, ok := sh.run.firstLive(g); ok {
			n++
		}
	}
	return n
}

// shouldCompactLocked is the inline merge policy: merge when the head holds
// at least min postings AND at least a quarter of the run's live size (so
// each posting is rewritten O(1) amortised times), or when tombstones
// dominate the run.
func (db *DB) shouldCompactLocked(sh *hashShard) bool {
	min := db.compactMin.Load()
	if min < 0 {
		return false
	}
	if min == 0 {
		min = defaultCompactMin
	}
	runLive := len(sh.run.segs) - sh.dead
	if sh.headPostings >= int(min) && sh.headPostings*4 >= runLive {
		return true
	}
	return sh.dead >= int(min) && sh.dead*2 >= len(sh.run.segs)
}

func (db *DB) maybeCompactLocked(sh *hashShard) {
	if db.shouldCompactLocked(sh) {
		db.compactShardLocked(sh)
	}
}

// Compact merges every shard's mutable head into its compacted run and
// drops tombstones. It is safe to call concurrently with reads and writes
// (each shard is merged under its write lock) and is idempotent. bftagd
// runs this periodically; benchmarks call it before measuring steady-state
// footprint.
func (db *DB) Compact() {
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.Lock()
		if sh.headPostings > 0 || sh.dead > 0 {
			db.compactShardLocked(sh)
		}
		sh.mu.Unlock()
	}
}

// SetCompactThreshold tunes the inline merge policy: the head must reach n
// postings (and a quarter of the run's live size) before a merge. n == 0
// restores the default; n < 0 disables automatic merging entirely, pinning
// the DB to the head-only map layout — the pre-compaction baseline used by
// the corpus benchmark and ablation tests. Explicit Compact calls still
// merge.
func (db *DB) SetCompactThreshold(n int) {
	db.compactMin.Store(int64(n))
}

// compactShardLocked rebuilds sh.run as the merge of the current run
// (minus tombstones) and every head bucket, interning head segment IDs
// into the DB's ref table. Caller holds sh.mu for writing.
//
// The merge preserves every live (hash, seg, seq) triple exactly and keeps
// groups seq-ascending, so verdict and oldest-holder semantics are
// byte-identical before and after — the golden-equivalence property the
// compaction tests pin.
func (db *DB) compactShardLocked(sh *hashShard) {
	old := &sh.run
	headKeys := make([]uint32, 0, len(sh.head))
	for h := range sh.head {
		headKeys = append(headKeys, h)
	}
	sort.Slice(headKeys, func(i, j int) bool { return headKeys[i] < headKeys[j] })

	livePostings := len(old.segs) - sh.dead + sh.headPostings
	nw := run{
		hashes: make([]uint32, 0, len(old.hashes)+len(headKeys)),
		starts: make([]uint32, 1, len(old.hashes)+len(headKeys)+1),
		segs:   make([]uint32, 0, livePostings),
		seqs:   make([]uint64, 0, livePostings),
	}
	var big map[uint32]map[uint32]struct{}

	emitGroup := func(h uint32, g int, b *bucket) {
		before := len(nw.segs)
		var s, e int
		if g >= 0 {
			s, e = old.bounds(g)
		}
		bi := 0
		for i := s; i < e || (b != nil && bi < len(b.postings)); {
			takeRun := false
			if i < e {
				if old.segs[i] == tombstoneRef {
					i++
					continue
				}
				// Stable on equal seqs: run entries precede head entries,
				// matching the order an uncompacted bucket would hold.
				takeRun = b == nil || bi >= len(b.postings) || old.seqs[i] <= b.postings[bi].Seq
			}
			if takeRun {
				nw.segs = append(nw.segs, old.segs[i])
				nw.seqs = append(nw.seqs, old.seqs[i])
				i++
			} else {
				p := b.postings[bi]
				nw.segs = append(nw.segs, db.segtab.ref(p.Seg))
				nw.seqs = append(nw.seqs, p.Seq)
				bi++
			}
		}
		n := len(nw.segs) - before
		if n == 0 {
			return // fully tombstoned group: drop the hash
		}
		nw.hashes = append(nw.hashes, h)
		nw.starts = append(nw.starts, uint32(len(nw.segs)))
		if n >= bigGroupMin {
			set := make(map[uint32]struct{}, n)
			for i := before; i < len(nw.segs); i++ {
				set[nw.segs[i]] = struct{}{}
			}
			if big == nil {
				big = make(map[uint32]map[uint32]struct{})
			}
			big[h] = set
		}
	}

	gi, hi := 0, 0
	for gi < len(old.hashes) || hi < len(headKeys) {
		switch {
		case hi >= len(headKeys) || (gi < len(old.hashes) && old.hashes[gi] < headKeys[hi]):
			emitGroup(old.hashes[gi], gi, nil)
			gi++
		case gi >= len(old.hashes) || headKeys[hi] < old.hashes[gi]:
			emitGroup(headKeys[hi], -1, sh.head[headKeys[hi]])
			hi++
		default:
			emitGroup(old.hashes[gi], gi, sh.head[headKeys[hi]])
			gi++
			hi++
		}
	}

	nw.buildSkip(db.shardBitsOf())
	sh.run = nw
	sh.big = big
	sh.head = make(map[uint32]*bucket)
	db.headN.Add(int64(-sh.headPostings))
	db.deadN.Add(int64(-sh.dead))
	sh.headPostings = 0
	sh.dead = 0
}

// appendMergedLocked appends h's live postings in seq order (run group and
// head bucket merged) to out. Caller holds sh.mu at least for reading.
func (db *DB) appendMergedLocked(sh *hashShard, h uint32, view *idsView, out []Posting) []Posting {
	b := sh.head[h]
	g := sh.run.find(h, db.shardBitsOf())
	var s, e int
	if g >= 0 {
		s, e = sh.run.bounds(g)
	}
	bi := 0
	for i := s; i < e || (b != nil && bi < len(b.postings)); {
		takeRun := false
		if i < e {
			if sh.run.segs[i] == tombstoneRef {
				i++
				continue
			}
			takeRun = b == nil || bi >= len(b.postings) || sh.run.seqs[i] <= b.postings[bi].Seq
		}
		if takeRun {
			out = append(out, Posting{Seg: view.id(sh.run.segs[i]), Seq: sh.run.seqs[i]})
			i++
		} else {
			out = append(out, b.postings[bi])
			bi++
		}
	}
	return out
}

// oldestLocked resolves the authoritative (oldest live) holder of h,
// comparing the head bucket's front posting with the run group's first
// live entry. Caller holds sh.mu at least for reading.
func (db *DB) oldestLocked(sh *hashShard, h uint32, view *idsView) (segment.ID, bool) {
	var (
		headSeg segment.ID
		headSeq uint64
		haveH   bool
	)
	if b := sh.head[h]; b != nil && len(b.postings) > 0 {
		headSeg, headSeq, haveH = b.postings[0].Seg, b.postings[0].Seq, true
	}
	if g := sh.run.find(h, db.shardBitsOf()); g >= 0 {
		if ref, seq, ok := sh.run.firstLive(g); ok {
			if !haveH || seq <= headSeq {
				return view.id(ref), true
			}
		}
	}
	return headSeg, haveH
}

// oldestRefLocked is oldestLocked extended with the winning posting's
// sequence number, for callers that compare authority across databases
// (the cross-partition merge of the routing tier).
func (db *DB) oldestRefLocked(sh *hashShard, h uint32, view *idsView) (segment.ID, uint64, bool) {
	var (
		headSeg segment.ID
		headSeq uint64
		haveH   bool
	)
	if b := sh.head[h]; b != nil && len(b.postings) > 0 {
		headSeg, headSeq, haveH = b.postings[0].Seg, b.postings[0].Seq, true
	}
	if g := sh.run.find(h, db.shardBitsOf()); g >= 0 {
		if ref, seq, ok := sh.run.firstLive(g); ok {
			if !haveH || seq <= headSeq {
				return view.id(ref), seq, true
			}
		}
	}
	return headSeg, headSeq, haveH
}

// oldestIsLocked reports whether seg (with interned ref, if any) is the
// authoritative holder of h — the allocation-free comparison used by
// AuthoritativeCount/Overlap, which never needs the ID string of the
// actual oldest holder.
func (db *DB) oldestIsLocked(sh *hashShard, h uint32, seg segment.ID, ref uint32, hasRef bool) bool {
	var (
		headIs  bool
		headSeq uint64
		haveH   bool
	)
	if b := sh.head[h]; b != nil && len(b.postings) > 0 {
		headSeq, haveH = b.postings[0].Seq, true
		headIs = b.postings[0].Seg == seg
	}
	if g := sh.run.find(h, db.shardBitsOf()); g >= 0 {
		if rref, seq, ok := sh.run.firstLive(g); ok {
			if !haveH || seq <= headSeq {
				return hasRef && rref == ref
			}
		}
	}
	return haveH && headIs
}
