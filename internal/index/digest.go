package index

// Incremental anti-entropy digests. Every hash shard maintains a 64-bit
// set-digest of its live postings and every segment stripe a set-digest of
// its DBpar entries, updated in O(1) at each mutation: a posting or entry
// contributes a mixed code to the shard digest by XOR, so insert and
// delete are the same operation and the digest of a set is independent of
// the order its elements arrived in. Two DBs holding the same logical
// contents — regardless of batching, coalescing, compaction state or
// shard count — produce the same combined digest, which is what lets a
// primary detect a replica whose index has silently diverged even though
// both report the same WAL position.
//
// Codes deliberately exclude physical state: head-vs-run placement,
// tombstones, interned refs, the posted-hash union cache and membership
// sets never enter a code. Compaction is digest-neutral by construction
// (it preserves every live (hash, seg, seq) triple exactly).

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// mix64 is the splitmix64 finalizer: a cheap bijective mixer with full
// avalanche, so XOR-combining codes of distinct items does not cancel
// structurally related entries.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// segDigestKey hashes a segment ID (FNV-1a 64) for digest codes. Codes
// are keyed by the ID string itself, never the interned ref, so head and
// run placements of the same posting produce the same code.
func segDigestKey(seg string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(seg); i++ {
		h ^= uint64(seg[i])
		h *= prime64
	}
	return h
}

// postingCode is the digest contribution of one live (hash, seg, seq)
// posting.
func postingCode(h uint32, segKey, seq uint64) uint64 {
	x := mix64(uint64(h) ^ 0x9e3779b97f4a7c15)
	x = mix64(x ^ segKey)
	return mix64(x ^ seq)
}

// parCode is the digest contribution of one DBpar entry: segment,
// threshold, recency stamp and the canonical sorted hash set of its
// fingerprint. The posted-hash union is a cache and is excluded.
func parCode(segKey uint64, entry *parEntry) uint64 {
	x := mix64(segKey ^ 0xd1b54a32d192ed03)
	x = mix64(x ^ math.Float64bits(entry.threshold))
	x = mix64(x ^ entry.updated)
	if entry.fp != nil {
		for _, h := range entry.fp.Hashes() {
			x = mix64(x ^ uint64(h))
		}
	}
	return x
}

// Digest summarises a DB's logical contents. Postings and Pars are
// XOR-folds over the per-shard digests (shard-count invariant); Combined
// additionally binds the logical clock, so two DBs agree on Combined iff
// they agree on contents and clock.
type Digest struct {
	Clock    uint64 `json:"clock"`
	Postings uint64 `json:"postings"`
	Pars     uint64 `json:"pars"`
	Combined uint64 `json:"combined"`
}

// Digest folds the per-shard digests into the DB-level summary. Each
// shard is read under its lock; concurrent mutations land either before
// or after the shard they touch is visited, so a quiescent DB always
// reports a stable value.
func (db *DB) Digest() Digest {
	var d Digest
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		d.Postings ^= sh.digest
		sh.mu.RUnlock()
	}
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		d.Pars ^= ss.digest
		ss.mu.RUnlock()
	}
	d.Clock = db.clock.Load()
	d.Combined = mix64(d.Clock^0xa0761d6478bd642f) ^ mix64(d.Postings) ^ mix64(d.Pars^0xe7037ed1a0b428db)
	return d
}

// Fold binds an ordered sequence of DB digests into one 64-bit summary.
// Position is salted in, so two trackers agree on the fold iff they agree
// on every database's Combined digest in order — swapping the paragraph
// and document databases changes the fold.
func Fold(ds ...Digest) uint64 {
	x := uint64(0x2545f4914f6cdd1d)
	for i, d := range ds {
		x = mix64(x ^ d.Combined ^ uint64(i+1)*0x9e3779b97f4a7c15)
	}
	return x
}

// ShardDigests returns the per-shard posting and DBpar digests (index =
// shard), the breakdown served by /v1/repl/digest so a diverged replica
// can be localised to a stripe.
func (db *DB) ShardDigests() (postings, pars []uint64) {
	postings = make([]uint64, len(db.hashShards))
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		postings[si] = sh.digest
		sh.mu.RUnlock()
	}
	pars = make([]uint64, len(db.segShards))
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		pars[si] = ss.digest
		ss.mu.RUnlock()
	}
	return postings, pars
}

// RecomputeDigests rebuilds every shard digest from the shard's contents.
// Bulk-load paths (Import, CommitSnapshot) call it instead of threading
// codes through their insert loops; tests use it to pin the incremental
// maintenance against the ground truth. It must not run concurrently
// with mutations (reads are fine).
func (db *DB) RecomputeDigests() {
	view := idsView{tab: &db.segtab}
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.Lock()
		var d uint64
		for h, b := range sh.head {
			for _, p := range b.postings {
				d ^= postingCode(h, segDigestKey(string(p.Seg)), p.Seq)
			}
		}
		for g := range sh.run.hashes {
			s, e := sh.run.bounds(g)
			for i := s; i < e; i++ {
				if sh.run.segs[i] == tombstoneRef {
					continue
				}
				d ^= postingCode(sh.run.hashes[g], segDigestKey(string(view.id(sh.run.segs[i]))), sh.run.seqs[i])
			}
		}
		sh.digest = d
		sh.mu.Unlock()
	}
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.Lock()
		var d uint64
		for seg, entry := range ss.par {
			entry.code = parCode(segDigestKey(string(seg)), entry)
			d ^= entry.code
		}
		ss.digest = d
		ss.mu.Unlock()
	}
}

// Digest wire codec: the compact form replicas attach to stream rounds
// and /v1/repl/digest serves. Fixed-width little-endian framing behind a
// magic, a version byte and a trailing CRC32C, so a corrupt or truncated
// frame decodes to an error, never to a plausible digest.

// digestMagic opens an encoded digest frame.
const digestMagic = "BFDIGST1"

// digestCodecVersion is the current frame layout version.
const digestCodecVersion = 1

var digestCRCTable = crc32.MakeTable(crc32.Castagnoli)

// AppendEncode appends the digest's wire frame to buf.
func (d Digest) AppendEncode(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, digestMagic...)
	buf = append(buf, digestCodecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, d.Clock)
	buf = binary.LittleEndian.AppendUint64(buf, d.Postings)
	buf = binary.LittleEndian.AppendUint64(buf, d.Pars)
	buf = binary.LittleEndian.AppendUint64(buf, d.Combined)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], digestCRCTable))
}

// EncodedDigestLen is the exact wire size of one digest frame.
const EncodedDigestLen = len(digestMagic) + 1 + 4*8 + 4

// DecodeDigest parses one digest frame, rejecting bad magic, unknown
// versions, length mismatches and CRC failures.
func DecodeDigest(data []byte) (Digest, error) {
	var d Digest
	if len(data) != EncodedDigestLen {
		return d, &CodecError{Offset: len(data), Reason: "digest frame length mismatch"}
	}
	if string(data[:len(digestMagic)]) != digestMagic {
		return d, &CodecError{Offset: 0, Reason: "bad digest magic"}
	}
	if data[len(digestMagic)] != digestCodecVersion {
		return d, &CodecError{Offset: len(digestMagic), Reason: "unsupported digest codec version"}
	}
	body := data[: len(data)-4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, digestCRCTable); got != want {
		return d, &CodecError{Offset: len(data) - 4, Reason: "digest CRC mismatch"}
	}
	off := len(digestMagic) + 1
	d.Clock = binary.LittleEndian.Uint64(data[off:])
	d.Postings = binary.LittleEndian.Uint64(data[off+8:])
	d.Pars = binary.LittleEndian.Uint64(data[off+16:])
	d.Combined = binary.LittleEndian.Uint64(data[off+24:])
	return d, nil
}
