package index

import (
	"fmt"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// recount recomputes the Stats counters the slow way, straight from the
// shard contents, to pin the incrementally maintained values.
func recount(db *DB) (segments, distinct, postings int) {
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		segments += len(ss.par)
		ss.mu.RUnlock()
	}
	view := idsView{tab: &db.segtab}
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		for _, h := range shardHashesLocked(sh) {
			if n := len(db.appendMergedLocked(sh, h, &view, nil)); n > 0 {
				distinct++
				postings += n
			}
		}
		sh.mu.RUnlock()
	}
	return
}

// shardHashesLocked returns every hash present in the shard's head or run
// (live or tombstoned); caller holds the shard lock.
func shardHashesLocked(sh *hashShard) []uint32 {
	seen := make(map[uint32]bool, len(sh.head)+len(sh.run.hashes))
	out := make([]uint32, 0, len(seen))
	for h := range sh.head {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, h := range sh.run.hashes {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

func checkCounters(t *testing.T, db *DB, when string) {
	t.Helper()
	segs, distinct, postings := recount(db)
	s := db.Stats()
	if s.Segments != segs || s.DistinctHashes != distinct || s.Postings != postings {
		t.Fatalf("%s: Stats{Segments:%d DistinctHashes:%d Postings:%d} != recount{%d %d %d}",
			when, s.Segments, s.DistinctHashes, s.Postings, segs, distinct, postings)
	}
}

// TestStatsCountersMaintained drives Update, overlapping re-Update,
// RemoveSegment and ExpireBefore, and checks after every step that the
// O(1) counters match a full recount.
func TestStatsCountersMaintained(t *testing.T) {
	for _, shards := range []int{1, 4, DefaultShards} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := NewWithShards(0.5, shards)
			var mids []uint64
			for i := 0; i < 20; i++ {
				// Overlapping hash sets: consecutive segments share half
				// their hashes, so postings ≠ segments × hashes.
				hs := make([]uint32, 0, 16)
				for j := 0; j < 16; j++ {
					hs = append(hs, uint32(i*8+j)*0x9e3779b1)
				}
				seq := db.Update(segment.ID(fmt.Sprintf("doc#p%d", i)), fingerprint.FromHashes(hs))
				mids = append(mids, seq)
				checkCounters(t, db, fmt.Sprintf("after update %d", i))
			}
			// Re-update an existing segment with a changed fingerprint: only
			// the new hashes add postings.
			db.Update("doc#p3", fingerprint.FromHashes([]uint32{1, 2, 3}))
			checkCounters(t, db, "after re-update")

			db.SetThreshold("thresholds-only", 0.9)
			checkCounters(t, db, "after SetThreshold")

			db.RemoveSegment("doc#p5")
			db.RemoveSegment("doc#p5") // idempotent
			db.RemoveSegment("never-existed")
			checkCounters(t, db, "after RemoveSegment")

			db.ExpireBefore(mids[10])
			checkCounters(t, db, "after ExpireBefore")

			db.ExpireBefore(db.Now() + 1) // drop everything
			checkCounters(t, db, "after full expiry")
			if s := db.Stats(); s.Postings != 0 || s.DistinctHashes != 0 {
				t.Fatalf("full expiry left Stats %+v", s)
			}
		})
	}
}

// TestStatsLargeExact pins the counters on an overlapping corpus where the
// closed-form values are known: each segment shares half its hashes with
// its predecessor, so postings record every (hash, segment) pair once
// while distinct hashes grow by only half a fingerprint per segment.
func TestStatsLargeExact(t *testing.T) {
	db := New(0.5)
	perSeg := 64
	segs := 200
	for i := 0; i < segs; i++ {
		hs := make([]uint32, perSeg)
		for j := range hs {
			hs[j] = uint32(i*perSeg/2 + j) // 50% overlap with the previous segment
		}
		db.Update(segment.ID(fmt.Sprintf("s#%d", i)), fingerprint.FromHashes(hs))
	}
	s := db.Stats()
	wantPostings := segs * perSeg
	wantDistinct := perSeg + (segs-1)*perSeg/2
	if s.Segments != segs || s.Postings != wantPostings || s.DistinctHashes != wantDistinct {
		t.Fatalf("Stats = %+v, want Segments=%d Postings=%d DistinctHashes=%d", s, segs, wantPostings, wantDistinct)
	}
}
