package index

import (
	"fmt"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// holderFixture builds a DB with nSegs segments of nHashes hashes each,
// overlapping enough that every hash has several holders, and returns the
// DB plus one resident fingerprint's hash set.
func holderFixture(tb testing.TB, nSegs, nHashes int) (*DB, []uint32) {
	tb.Helper()
	db := New(0.5)
	var probe []uint32
	for s := 0; s < nSegs; s++ {
		hs := make([]uint32, 0, nHashes)
		for i := 0; i < nHashes; i++ {
			// Stride layout: consecutive segments share most hashes.
			hs = append(hs, uint32((s*7+i*131)%(nHashes*2))*0x01000193)
		}
		fp := fingerprint.FromHashes(hs)
		db.Update(segment.ID(fmt.Sprintf("wiki/fixture#p%d", s)), fp)
		if s == 0 {
			probe = append(probe, fp.Hashes()...)
		}
	}
	return db, probe
}

// TestAppendOldestHoldersReusesCapacity pins the capacity-reuse contract:
// with a warm output buffer the candidate-discovery call of Algorithm 1
// performs zero allocations, in both the head-resident and compacted
// layouts.
func TestAppendOldestHoldersReusesCapacity(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	db, probe := holderFixture(t, 32, 64)
	for _, compacted := range []bool{false, true} {
		name := "head"
		if compacted {
			db.Compact()
			name = "compacted"
		}
		t.Run(name, func(t *testing.T) {
			out := db.AppendOldestHolders(probe, nil)
			if len(out) == 0 {
				t.Fatal("fixture produced no holders")
			}
			buf := make([]segment.ID, 0, len(out))
			allocs := testing.AllocsPerRun(100, func() {
				buf = db.AppendOldestHolders(probe, buf[:0])
			})
			if allocs != 0 {
				t.Errorf("AppendOldestHolders allocates %.1f objects/op with warm buffer, want 0", allocs)
			}
		})
	}
}

// TestAppendHoldersReusesCapacity is the same contract for the
// all-holders form used by the DisableAuthoritative ablation path.
func TestAppendHoldersReusesCapacity(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	db, probe := holderFixture(t, 32, 64)
	db.Compact()
	h := probe[0]
	holders := db.Holders(h)
	if len(holders) == 0 {
		t.Fatal("fixture hash has no holders")
	}
	buf := make([]segment.ID, 0, len(holders)*2)
	allocs := testing.AllocsPerRun(100, func() {
		buf = db.AppendHolders(h, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendHolders allocates %.1f objects/op with warm buffer, want 0", allocs)
	}
	// The append form must agree with Holders.
	buf = db.AppendHolders(h, buf[:0])
	if len(buf) != len(holders) {
		t.Fatalf("AppendHolders returned %d holders, Holders returned %d", len(buf), len(holders))
	}
	for i := range buf {
		if buf[i] != holders[i] {
			t.Fatalf("holder order diverged at %d: %q != %q", i, buf[i], holders[i])
		}
	}
}

func BenchmarkAppendOldestHolders(b *testing.B) {
	db, probe := holderFixture(b, 64, 128)
	db.Compact()
	var buf []segment.ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = db.AppendOldestHolders(probe, buf[:0])
	}
}

func BenchmarkAppendHolders(b *testing.B) {
	db, probe := holderFixture(b, 64, 128)
	db.Compact()
	var buf []segment.ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = db.AppendHolders(probe[i%len(probe)], buf[:0])
	}
}
