package index

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// digestMutation is one scripted DB mutation for the invariance suites.
type digestMutation struct {
	kind      int // 0 update, 1 setThreshold, 2 removeSegment, 3 expire
	seg       segment.ID
	hashes    []uint32
	threshold float64
	expireAt  uint64
}

// genMutations scripts a deterministic mutation stream with overlapping
// hash sets, re-observations, threshold changes, removals and an expiry.
func genMutations(seed int64, n int) []digestMutation {
	rng := rand.New(rand.NewSource(seed))
	muts := make([]digestMutation, 0, n)
	for i := 0; i < n; i++ {
		seg := segment.ID(fmt.Sprintf("doc-%d/par-%d", rng.Intn(8), rng.Intn(32)))
		switch r := rng.Intn(10); {
		case r < 6:
			hs := make([]uint32, 0, 12)
			for j := rng.Intn(12) + 1; j > 0; j-- {
				hs = append(hs, rng.Uint32()%5000)
			}
			muts = append(muts, digestMutation{kind: 0, seg: seg, hashes: hs})
		case r < 8:
			muts = append(muts, digestMutation{kind: 1, seg: seg, threshold: float64(rng.Intn(10)) / 10})
		case r < 9:
			muts = append(muts, digestMutation{kind: 2, seg: seg})
		default:
			muts = append(muts, digestMutation{kind: 3, expireAt: uint64(i / 4)})
		}
	}
	return muts
}

func applyMutation(db *DB, m digestMutation) {
	switch m.kind {
	case 0:
		db.Update(m.seg, fingerprint.FromHashes(m.hashes))
	case 1:
		db.SetThreshold(m.seg, m.threshold)
	case 2:
		db.RemoveSegment(m.seg)
	case 3:
		db.ExpireBefore(m.expireAt)
	}
}

// recomputedDigest returns the ground-truth digest of db by rebuilding
// every shard digest from contents.
func recomputedDigest(db *DB) Digest {
	db.RecomputeDigests()
	return db.Digest()
}

// TestDigestMaintainedMatchesRecomputed pins the O(1) incremental
// maintenance against a full recompute after every style of mutation.
func TestDigestMaintainedMatchesRecomputed(t *testing.T) {
	db := New(0.5)
	for i, m := range genMutations(1, 400) {
		applyMutation(db, m)
		if i%97 == 0 {
			maintained := db.Digest()
			if recomputed := recomputedDigest(db); maintained != recomputed {
				t.Fatalf("after mutation %d (%+v): maintained %+v != recomputed %+v", i, m, maintained, recomputed)
			}
		}
	}
	maintained := db.Digest()
	if recomputed := recomputedDigest(db); maintained != recomputed {
		t.Fatalf("final: maintained %+v != recomputed %+v", maintained, recomputed)
	}
}

// TestDigestReplayOrderInvariant applies the same mutation stream with
// different batching/coalescing boundaries (interleaved compaction, which
// is how replica applyBatch chunking differs from the primary's live
// path) and demands identical digests — the anti-entropy soundness
// property: same logical history, any physical grouping, same digest.
func TestDigestReplayOrderInvariant(t *testing.T) {
	muts := genMutations(2, 600)

	run := func(chunk int, compactEvery int, shards int) Digest {
		db := NewWithShards(0.5, shards)
		for i := 0; i < len(muts); i += chunk {
			end := i + chunk
			if end > len(muts) {
				end = len(muts)
			}
			for _, m := range muts[i:end] {
				applyMutation(db, m)
			}
			if compactEvery > 0 && (i/chunk)%compactEvery == 0 {
				db.Compact()
			}
		}
		return db.Digest()
	}

	want := run(1, 0, DefaultShards)
	for _, tc := range []struct {
		chunk, compactEvery, shards int
	}{
		{7, 0, DefaultShards},
		{64, 1, DefaultShards},
		{1, 3, DefaultShards},
		{13, 2, 4},  // different shard count: digests must still agree
		{600, 0, 1}, // single-lock layout, one giant batch
	} {
		if got := run(tc.chunk, tc.compactEvery, tc.shards); got != want {
			t.Fatalf("chunk=%d compactEvery=%d shards=%d: digest %+v != baseline %+v",
				tc.chunk, tc.compactEvery, tc.shards, got, want)
		}
	}
}

// TestDigestDetectsDivergence flips single aspects of an otherwise
// identical DB and checks the combined digest moves.
func TestDigestDetectsDivergence(t *testing.T) {
	build := func() *DB {
		db := New(0.5)
		for _, m := range genMutations(3, 200) {
			applyMutation(db, m)
		}
		return db
	}
	base := build().Digest()

	diverged := build()
	diverged.SetThreshold("doc-0/par-0", 0.99)
	if diverged.Digest() == base {
		t.Fatal("threshold change did not move the digest")
	}

	diverged = build()
	if segs := diverged.Segments(); len(segs) == 0 {
		t.Fatal("scripted DB tracks no segments")
	} else {
		diverged.RemoveSegment(segs[0])
	}
	if diverged.Digest() == base {
		t.Fatal("segment removal did not move the digest")
	}

	diverged = build()
	diverged.Update("doc-9/par-9", fingerprint.FromHashes([]uint32{1, 2, 3}))
	if diverged.Digest() == base {
		t.Fatal("extra update did not move the digest")
	}
}

// TestDigestSnapshotRoundTrip checks the binary snapshot and Export
// round-trips preserve the digest (restore rebuilds it from contents).
func TestDigestSnapshotRoundTrip(t *testing.T) {
	db := New(0.5)
	for _, m := range genMutations(4, 300) {
		applyMutation(db, m)
	}
	want := db.Digest()

	blob, err := db.AppendSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5)
	if err := restored.LoadSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	if got := restored.Digest(); got != want {
		t.Fatalf("binary round-trip digest %+v != %+v", got, want)
	}

	imported := New(0.5)
	if err := imported.Import(db.Export()); err != nil {
		t.Fatal(err)
	}
	if got := imported.Digest(); got != want {
		t.Fatalf("export round-trip digest %+v != %+v", got, want)
	}
}

// TestDigestCodecGolden pins the wire frame bytes: a digest frame is part
// of the replication protocol, so its encoding must never drift silently.
func TestDigestCodecGolden(t *testing.T) {
	d := Digest{Clock: 0x0102030405060708, Postings: 0x1122334455667788,
		Pars: 0x99aabbccddeeff00, Combined: 0xdeadbeefcafef00d}
	got := hex.EncodeToString(d.AppendEncode(nil))
	const want = "42464449475354310108070605040302018877665544332211" +
		"00ffeeddccbbaa990df0fecaefbeadde17e79c59"
	if got != want {
		t.Fatalf("digest frame drifted:\n got %s\nwant %s", got, want)
	}
	back, err := DecodeDigest(d.AppendEncode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip %+v != %+v", back, d)
	}
}

// TestDigestCodecRejectsCorruption flips every byte of a valid frame and
// demands a decode error each time (plus length checks).
func TestDigestCodecRejectsCorruption(t *testing.T) {
	d := Digest{Clock: 42, Postings: 7, Pars: 9, Combined: 11}
	frame := d.AppendEncode(nil)
	if len(frame) != EncodedDigestLen {
		t.Fatalf("frame length %d != EncodedDigestLen %d", len(frame), EncodedDigestLen)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := DecodeDigest(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
	if _, err := DecodeDigest(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame not detected")
	}
	if _, err := DecodeDigest(append(frame, 0)); err == nil {
		t.Fatal("oversized frame not detected")
	}
	if _, err := DecodeDigest(nil); err == nil {
		t.Fatal("empty frame not detected")
	}
}
