package index

import (
	"fmt"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

func fp(hashes ...uint32) *fingerprint.Fingerprint {
	return fingerprint.FromHashes(hashes)
}

func TestUpdateAndLookup(t *testing.T) {
	db := New(0.5)
	seqA := db.Update("doc#p0", fp(1, 2, 3))
	seqB := db.Update("doc#p1", fp(3, 4))
	if seqA >= seqB {
		t.Errorf("clock not monotone: %d >= %d", seqA, seqB)
	}
	got, ok := db.Fingerprint("doc#p0")
	if !ok || got.Len() != 3 {
		t.Fatalf("Fingerprint(doc#p0): ok=%v len=%d", ok, got.Len())
	}
	if _, ok := db.Fingerprint("missing"); ok {
		t.Error("Fingerprint(missing) should not be found")
	}
}

func TestOldestHolder(t *testing.T) {
	db := New(0.5)
	db.Update("a", fp(10, 11))
	db.Update("b", fp(10, 12))
	holder, ok := db.OldestHolder(10)
	if !ok || holder != "a" {
		t.Errorf("OldestHolder(10)=%q,%v, want a,true", holder, ok)
	}
	holder, ok = db.OldestHolder(12)
	if !ok || holder != "b" {
		t.Errorf("OldestHolder(12)=%q,%v, want b,true", holder, ok)
	}
	if _, ok := db.OldestHolder(999); ok {
		t.Error("OldestHolder(999) should not be found")
	}
}

func TestFirstSeenSurvivesReupdate(t *testing.T) {
	db := New(0.5)
	db.Update("a", fp(10))
	db.Update("b", fp(10))
	// Re-updating a does not lose or refresh its first-seen ordering.
	db.Update("a", fp(10, 20))
	if holder, _ := db.OldestHolder(10); holder != "a" {
		t.Errorf("OldestHolder(10)=%q after re-update, want a", holder)
	}
	if got := len(db.Holders(10)); got != 2 {
		t.Errorf("Holders(10)=%d postings, want 2 (no duplicates)", got)
	}
}

func TestHoldersOrder(t *testing.T) {
	db := New(0.5)
	db.Update("x", fp(7))
	db.Update("y", fp(7))
	db.Update("z", fp(7))
	got := db.Holders(7)
	want := []segment.ID{"x", "y", "z"}
	if len(got) != len(want) {
		t.Fatalf("Holders=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Holders[%d]=%q, want %q", i, got[i], want[i])
		}
	}
}

func TestThresholds(t *testing.T) {
	db := New(0.5)
	if got := db.Threshold("unknown"); got != 0.5 {
		t.Errorf("default threshold=%v, want 0.5", got)
	}
	db.Update("a", fp(1))
	db.SetThreshold("a", 0.8)
	if got := db.Threshold("a"); got != 0.8 {
		t.Errorf("threshold(a)=%v, want 0.8", got)
	}
	// SetThreshold on an unseen segment creates it.
	db.SetThreshold("new", 0.1)
	if got := db.Threshold("new"); got != 0.1 {
		t.Errorf("threshold(new)=%v, want 0.1", got)
	}
}

func TestAuthoritativeCount(t *testing.T) {
	db := New(0.5)
	db.Update("a", fp(1, 2, 3))
	db.Update("b", fp(2, 3, 4)) // b is authoritative only for 4
	if got := db.AuthoritativeCount("a"); got != 3 {
		t.Errorf("AuthoritativeCount(a)=%d, want 3", got)
	}
	if got := db.AuthoritativeCount("b"); got != 1 {
		t.Errorf("AuthoritativeCount(b)=%d, want 1", got)
	}
	if got := db.AuthoritativeCount("missing"); got != 0 {
		t.Errorf("AuthoritativeCount(missing)=%d, want 0", got)
	}
}

func TestAuthoritativeOverlap(t *testing.T) {
	// Figure 7 scenario: B is a superset of A; C copies the shared text.
	// A's authoritative hashes {1,2}; B's authoritative {3} (1,2 first seen
	// in A). C = {1,2} overlaps A fully but B only via non-authoritative
	// hashes.
	db := New(0.5)
	db.Update("A", fp(1, 2))
	db.Update("B", fp(1, 2, 3))
	c := fp(1, 2)
	overlapA, lenA := db.AuthoritativeOverlap("A", c)
	if overlapA != 2 || lenA != 2 {
		t.Errorf("AuthoritativeOverlap(A)=(%d,%d), want (2,2)", overlapA, lenA)
	}
	overlapB, lenB := db.AuthoritativeOverlap("B", c)
	if overlapB != 0 || lenB != 3 {
		t.Errorf("AuthoritativeOverlap(B)=(%d,%d), want (0,3)", overlapB, lenB)
	}
}

func TestRemoveSegmentPromotesYounger(t *testing.T) {
	db := New(0.5)
	db.Update("old", fp(5))
	db.Update("young", fp(5))
	db.RemoveSegment("old")
	if holder, ok := db.OldestHolder(5); !ok || holder != "young" {
		t.Errorf("after removal OldestHolder(5)=%q,%v, want young,true", holder, ok)
	}
	if _, ok := db.Fingerprint("old"); ok {
		t.Error("removed segment still has a fingerprint")
	}
	// Removing an unknown segment is a no-op.
	db.RemoveSegment("ghost")
}

func TestRemoveSegmentDropsEmptyHashEntries(t *testing.T) {
	db := New(0.5)
	db.Update("only", fp(42))
	db.RemoveSegment("only")
	if _, ok := db.OldestHolder(42); ok {
		t.Error("hash entry should be gone after last holder removed")
	}
	if s := db.Stats(); s.DistinctHashes != 0 || s.Postings != 0 || s.Segments != 0 {
		t.Errorf("Stats after removal: %+v, want zeros", s)
	}
}

func TestExpireBefore(t *testing.T) {
	db := New(0.5)
	db.Update("a", fp(1))            // seq 1
	seqB := db.Update("b", fp(1, 2)) // seq 2
	removed := db.ExpireBefore(seqB)
	if removed != 1 {
		t.Errorf("removed=%d, want 1 (a's posting for hash 1)", removed)
	}
	if holder, ok := db.OldestHolder(1); !ok || holder != "b" {
		t.Errorf("OldestHolder(1)=%q,%v after expiry, want b,true", holder, ok)
	}
	if _, ok := db.Fingerprint("a"); ok {
		t.Error("stale segment a should have been dropped")
	}
	if _, ok := db.Fingerprint("b"); !ok {
		t.Error("fresh segment b should remain")
	}
}

func TestStats(t *testing.T) {
	db := New(0.5)
	db.Update("a", fp(1, 2))
	db.Update("b", fp(2, 3))
	s := db.Stats()
	if s.Segments != 2 {
		t.Errorf("Segments=%d, want 2", s.Segments)
	}
	if s.DistinctHashes != 3 {
		t.Errorf("DistinctHashes=%d, want 3", s.DistinctHashes)
	}
	if s.Postings != 4 {
		t.Errorf("Postings=%d, want 4", s.Postings)
	}
}

func TestSegmentsSorted(t *testing.T) {
	db := New(0.5)
	db.Update("zz", fp(1))
	db.Update("aa", fp(2))
	db.Update("mm", fp(3))
	got := db.Segments()
	want := []segment.ID{"aa", "mm", "zz"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Segments()=%v, want %v", got, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New(0.5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				seg := segment.ID(fmt.Sprintf("w%d/p%d", worker, j%10))
				db.Update(seg, fp(uint32(j), uint32(j+1), uint32(worker*1000+j)))
				db.OldestHolder(uint32(j))
				db.AuthoritativeOverlap(seg, fp(uint32(j)))
				db.Stats()
			}
		}(i)
	}
	wg.Wait()
	if s := db.Stats(); s.Segments != 80 {
		t.Errorf("Segments=%d, want 80", s.Segments)
	}
}

func BenchmarkUpdate(b *testing.B) {
	db := New(0.5)
	hashes := make([]uint32, 50)
	for i := range hashes {
		hashes[i] = uint32(i * 2654435761)
	}
	f := fingerprint.FromHashes(hashes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Update(segment.ID(fmt.Sprintf("s%d", i%1000)), f)
	}
}

func BenchmarkAuthoritativeOverlap(b *testing.B) {
	db := New(0.5)
	for s := 0; s < 100; s++ {
		hashes := make([]uint32, 100)
		for i := range hashes {
			hashes[i] = uint32((s*37 + i) * 2654435761)
		}
		db.Update(segment.ID(fmt.Sprintf("s%d", s)), fingerprint.FromHashes(hashes))
	}
	target := fingerprint.FromHashes([]uint32{2654435761, 1013904223})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.AuthoritativeOverlap("s0", target)
	}
}
