// Package index implements the two data structures behind BrowserFlow's
// text disclosure algorithm (§4.3, Algorithm 1):
//
//   - DBhash: associations of fingerprint hashes to the segments that were
//     observed to contain them, with first-seen timestamps, and
//   - DBpar: the last fingerprint calculated for each segment, plus its
//     disclosure threshold.
//
// First-seen timestamps are logical sequence numbers from an internal
// monotonic clock so that behaviour is deterministic; ordering semantics are
// identical to the paper's wall-clock timestamps. The oldest holder of a
// hash is the *authoritative* source for it, which is how the paper avoids
// misreporting disclosure when documents overlap (Figure 7).
package index

import (
	"sort"
	"sync"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// Posting records that a segment was observed containing a hash, at logical
// time Seq.
type Posting struct {
	Seg segment.ID
	Seq uint64
}

// Stats summarises the size of a DB, used by the scalability experiments
// (Figure 13).
type Stats struct {
	// Segments is the number of tracked segments.
	Segments int

	// DistinctHashes is the number of distinct fingerprint hashes in DBhash.
	DistinctHashes int

	// Postings is the total number of (hash, segment) associations.
	Postings int

	// ApproxBytes is a rough in-memory footprint estimate derived from the
	// counts (map buckets, posting structs, fingerprint sets). It tracks
	// growth trends, not exact heap use.
	ApproxBytes int64
}

// DB is one fingerprint database (the paper instantiates one per tracking
// granularity). It is safe for concurrent use.
type DB struct {
	mu sync.RWMutex

	defaultThreshold float64

	// hash is DBhash: postings per hash ordered by ascending Seq, at most
	// one posting per (hash, segment) recording the first observation.
	hash map[uint32][]Posting

	// par is DBpar: the latest fingerprint and threshold per segment.
	par map[segment.ID]*parEntry

	// clock is the logical time source; increments on every observation.
	clock uint64
}

type parEntry struct {
	fp        *fingerprint.Fingerprint
	threshold float64
	updated   uint64
}

// New returns an empty DB whose segments default to the given disclosure
// threshold (the paper's default is Tpar = 0.5, §6.1).
func New(defaultThreshold float64) *DB {
	return &DB{
		defaultThreshold: defaultThreshold,
		hash:             make(map[uint32][]Posting),
		par:              make(map[segment.ID]*parEntry),
	}
}

// DefaultThreshold returns the threshold assigned to segments that have not
// set their own.
func (db *DB) DefaultThreshold() float64 { return db.defaultThreshold }

// Update stores fp as the latest fingerprint for seg and records first-seen
// postings for any hash not previously associated with seg. It returns the
// logical time of the update.
func (db *DB) Update(seg segment.ID, fp *fingerprint.Fingerprint) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()

	db.clock++
	now := db.clock

	entry, ok := db.par[seg]
	if !ok {
		entry = &parEntry{threshold: db.defaultThreshold}
		db.par[seg] = entry
	}
	entry.fp = fp
	entry.updated = now

	for _, h := range fp.Hashes() {
		if !db.hasPostingLocked(h, seg) {
			db.hash[h] = append(db.hash[h], Posting{Seg: seg, Seq: now})
		}
	}
	return now
}

// hasPostingLocked reports whether (h, seg) is already recorded. Caller
// holds at least a read lock.
func (db *DB) hasPostingLocked(h uint32, seg segment.ID) bool {
	for _, p := range db.hash[h] {
		if p.Seg == seg {
			return true
		}
	}
	return false
}

// SetThreshold overrides the disclosure threshold of seg (creating the
// entry if needed), modelling per-paragraph thresholds set by authors
// (§4.2).
func (db *DB) SetThreshold(seg segment.ID, t float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	entry, ok := db.par[seg]
	if !ok {
		entry = &parEntry{fp: fingerprint.FromHashes(nil)}
		db.par[seg] = entry
	}
	entry.threshold = t
}

// Threshold returns seg's disclosure threshold, or the default if seg is
// unknown.
func (db *DB) Threshold(seg segment.ID) float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if entry, ok := db.par[seg]; ok {
		return entry.threshold
	}
	return db.defaultThreshold
}

// Fingerprint returns the latest fingerprint stored for seg.
func (db *DB) Fingerprint(seg segment.ID) (*fingerprint.Fingerprint, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.par[seg]
	if !ok || entry.fp == nil {
		return nil, false
	}
	return entry.fp, true
}

// OldestHolder returns the segment first observed with hash h — the
// authoritative source for h.
func (db *DB) OldestHolder(h uint32) (segment.ID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.oldestHolderLocked(h)
}

func (db *DB) oldestHolderLocked(h uint32) (segment.ID, bool) {
	postings := db.hash[h]
	if len(postings) == 0 {
		return "", false
	}
	// Postings are appended in clock order, so the first is the oldest.
	return postings[0].Seg, true
}

// Holders returns every segment associated with h, oldest first.
func (db *DB) Holders(h uint32) []segment.ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	postings := db.hash[h]
	out := make([]segment.ID, len(postings))
	for i, p := range postings {
		out[i] = p.Seg
	}
	return out
}

// AuthoritativeCount returns |Fauthoritative(seg)|: how many of seg's
// fingerprint hashes have seg as their oldest holder.
func (db *DB) AuthoritativeCount(seg segment.ID) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.par[seg]
	if !ok || entry.fp == nil {
		return 0
	}
	n := 0
	for _, h := range entry.fp.Hashes() {
		if holder, ok := db.oldestHolderLocked(h); ok && holder == seg {
			n++
		}
	}
	return n
}

// AuthoritativeOverlap returns |Fauthoritative(src) ∩ target| — the core
// quantity of the adjusted disclosure metrics of §4.3 — together with
// |F(src)|. It returns (0, 0) if src has no stored fingerprint.
func (db *DB) AuthoritativeOverlap(src segment.ID, target *fingerprint.Fingerprint) (overlap, srcLen int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.par[src]
	if !ok || entry.fp == nil {
		return 0, 0
	}
	srcLen = entry.fp.Len()
	for _, h := range entry.fp.Hashes() {
		holder, ok := db.oldestHolderLocked(h)
		if !ok || holder != src {
			continue
		}
		if target.Contains(h) {
			overlap++
		}
	}
	return overlap, srcLen
}

// RemoveSegment deletes seg's fingerprint and all its postings. Subsequent
// oldest-holder queries may promote younger segments to authoritative.
func (db *DB) RemoveSegment(seg segment.ID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	entry, ok := db.par[seg]
	if !ok {
		return
	}
	delete(db.par, seg)
	if entry.fp == nil {
		return
	}
	for _, h := range entry.fp.Hashes() {
		db.hash[h] = removePosting(db.hash[h], seg)
		if len(db.hash[h]) == 0 {
			delete(db.hash, h)
		}
	}
}

// ExpireBefore removes postings whose first observation is older than the
// given logical time, and drops segments whose last update is older. This
// implements the periodic removal of old fingerprints recommended in §4.4.
// It returns the number of postings removed.
func (db *DB) ExpireBefore(seq uint64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for h, postings := range db.hash {
		kept := postings[:0]
		for _, p := range postings {
			if p.Seq >= seq {
				kept = append(kept, p)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(db.hash, h)
		} else {
			db.hash[h] = kept
		}
	}
	for seg, entry := range db.par {
		if entry.updated < seq {
			delete(db.par, seg)
		}
	}
	return removed
}

// Now returns the current logical time.
func (db *DB) Now() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.clock
}

// Segments returns the IDs of all tracked segments, sorted.
func (db *DB) Segments() []segment.ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]segment.ID, 0, len(db.par))
	for seg := range db.par {
		out = append(out, seg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns current size statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Segments: len(db.par), DistinctHashes: len(db.hash)}
	for _, postings := range db.hash {
		s.Postings += len(postings)
	}
	// Rough per-item costs: a DBhash map entry (bucket share + slice
	// header) ≈ 56 B, a posting (segment.ID string header + seq) ≈ 40 B
	// with the shared string bytes amortised, a fingerprint hash in a
	// DBpar set ≈ 48 B, a segment entry ≈ 160 B.
	s.ApproxBytes = int64(s.DistinctHashes)*56 + int64(s.Postings)*(40+48) + int64(s.Segments)*160
	return s
}

func removePosting(postings []Posting, seg segment.ID) []Posting {
	for i, p := range postings {
		if p.Seg == seg {
			return append(postings[:i], postings[i+1:]...)
		}
	}
	return postings
}
