// Package index implements the two data structures behind BrowserFlow's
// text disclosure algorithm (§4.3, Algorithm 1):
//
//   - DBhash: associations of fingerprint hashes to the segments that were
//     observed to contain them, with first-seen timestamps, and
//   - DBpar: the last fingerprint calculated for each segment, plus its
//     disclosure threshold.
//
// First-seen timestamps are logical sequence numbers from an internal
// monotonic clock so that behaviour is deterministic; ordering semantics are
// identical to the paper's wall-clock timestamps. The oldest holder of a
// hash is the *authoritative* source for it, which is how the paper avoids
// misreporting disclosure when documents overlap (Figure 7).
//
// # Concurrency layout
//
// To serve per-keystroke observations from many concurrent devices, the DB
// is lock-striped instead of guarded by one RWMutex:
//
//   - DBhash is split into N hash shards keyed by the *top* bits of the
//     hash. Fingerprint hash slices are sorted, so a whole fingerprint's
//     hashes fall into consecutive runs per shard and each update/query
//     acquires every shard lock at most once.
//   - DBpar is split into N segment stripes keyed by an FNV-1a hash of the
//     segment ID, so observations of different segments never contend.
//   - The logical clock and the Stats counters (segments, distinct hashes,
//     postings) are atomics maintained incrementally by every mutation, so
//     Stats() never scans DBhash.
//
// # Storage layout
//
// Each hash shard is a small LSM tree: recent postings live in a mutable
// head (map of hash → bucket, exactly the pre-compaction layout), and the
// bulk lives in one immutable compacted run of columnar arrays with
// interned segment refs (see run.go). Inline merges migrate the head into
// the run once it outgrows the merge policy, keeping steady-state memory
// near the compacted figure while the hot insert path still writes to a
// plain map. Verdict and oldest-holder semantics are identical in every
// merge state; only the physical layout changes.
//
// Lock ordering: a segment-stripe lock may be held while hash-shard locks
// are acquired (one at a time), never the reverse, and never two locks of
// the same kind at once. The segment-ref table is a leaf lock acquirable
// under any shard lock. Per-segment mutations (Update, RemoveSegment) hold
// the segment stripe for their whole critical section so that a segment's
// DBpar entry and its DBhash postings cannot interleave with a concurrent
// removal of the same segment.
package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// Posting records that a segment was observed containing a hash, at logical
// time Seq.
type Posting struct {
	Seg segment.ID
	Seq uint64
}

// Stats summarises the size of a DB, used by the scalability experiments
// (Figure 13). All fields are maintained incrementally, so reading them
// never scans the index.
type Stats struct {
	// Segments is the number of tracked segments.
	Segments int

	// DistinctHashes is the number of distinct fingerprint hashes in DBhash.
	DistinctHashes int

	// Postings is the total number of live (hash, segment) associations.
	Postings int

	// HeadPostings is how many postings still live in the mutable heads
	// (the rest are compacted); Tombstones counts dead run entries not yet
	// dropped by a merge.
	HeadPostings int
	Tombstones   int

	// ApproxBytes is a rough in-memory footprint estimate derived from the
	// counts (map buckets, posting structs, run arrays, fingerprint sets).
	// It tracks growth trends, not exact heap use.
	ApproxBytes int64
}

// DefaultShards is the lock-stripe count used by New. 64 stripes keep
// shard collision probability low for typical device concurrency while the
// fixed overhead (a mutex, a map header and run headers per stripe) stays
// negligible.
const DefaultShards = 64

// maxShards bounds the configurable stripe count.
const maxShards = 256

// memberMapThreshold is the posting count past which a head bucket switches
// from a linear membership scan to a map. Most hashes have a handful of
// holders, where a scan over a small slice beats a map allocation; hot
// hashes shared by many segments get the O(1) set the moment the scan
// would start to hurt.
const memberMapThreshold = 8

// bucket is the mutable-head state of one hash: its postings ordered by
// ascending Seq (so postings[0] is always the oldest, i.e. authoritative,
// holder — an O(1) read maintained on insert and remove instead of
// scanned), plus an optional membership set for large buckets.
type bucket struct {
	postings []Posting
	members  map[segment.ID]struct{} // nil until memberMapThreshold exceeded
}

// has reports whether seg already holds this hash.
func (b *bucket) has(seg segment.ID) bool {
	if b.members != nil {
		_, ok := b.members[seg]
		return ok
	}
	for _, p := range b.postings {
		if p.Seg == seg {
			return true
		}
	}
	return false
}

// insert records (seg, seq) unless seg is already present. It keeps
// postings sorted by Seq: seqs are assigned before stripe locks are
// acquired, so a slightly older observation can arrive after a newer one;
// insertion from the back restores first-seen order (almost always a pure
// append). It reports whether a posting was added.
func (b *bucket) insert(seg segment.ID, seq uint64) bool {
	if b.has(seg) {
		return false
	}
	i := len(b.postings)
	b.postings = append(b.postings, Posting{})
	for i > 0 && b.postings[i-1].Seq > seq {
		b.postings[i] = b.postings[i-1]
		i--
	}
	b.postings[i] = Posting{Seg: seg, Seq: seq}
	if b.members != nil {
		b.members[seg] = struct{}{}
	} else if len(b.postings) > memberMapThreshold {
		b.members = make(map[segment.ID]struct{}, len(b.postings))
		for _, p := range b.postings {
			b.members[p.Seg] = struct{}{}
		}
	}
	return true
}

// remove deletes seg's posting, preserving Seq order. It returns the
// removed posting's Seq (the digest maintenance needs it) and whether one
// was removed.
func (b *bucket) remove(seg segment.ID) (uint64, bool) {
	for i, p := range b.postings {
		if p.Seg == seg {
			b.postings = append(b.postings[:i], b.postings[i+1:]...)
			if b.members != nil {
				delete(b.members, seg)
			}
			return p.Seq, true
		}
	}
	return 0, false
}

// oldest returns the bucket's oldest holder in O(1).
func (b *bucket) oldest() (segment.ID, bool) {
	if len(b.postings) == 0 {
		return "", false
	}
	return b.postings[0].Seg, true
}

// hashShard is one DBhash stripe: a mutable head plus one compacted run.
type hashShard struct {
	mu   sync.RWMutex
	head map[uint32]*bucket
	run  run

	// big holds shard-level membership sets for run groups with many live
	// postings (see bigGroupMin), keyed by hash → set of live segment refs.
	big map[uint32]map[uint32]struct{}

	headPostings int // live postings in head
	dead         int // tombstoned postings in run

	// digest is the XOR-fold of postingCode over the shard's live
	// postings, maintained incrementally (see digest.go).
	digest uint64
}

// segShard is one DBpar stripe.
type segShard struct {
	mu  sync.RWMutex
	par map[segment.ID]*parEntry

	// digest is the XOR-fold of parCode over the stripe's entries,
	// maintained incrementally (see digest.go).
	digest uint64
}

type parEntry struct {
	fp        *fingerprint.Fingerprint
	threshold float64
	updated   uint64

	// posted is the ascending union of every hash this segment has posted
	// to DBhash, maintained under the segment stripe lock. Invariant:
	// h ∈ posted ⟹ the (h, seg) posting exists. Update diffs the new
	// fingerprint against it, so re-observations pay bucket probes only
	// for hashes the segment has never posted — zero for edits that
	// oscillate within previously seen content. nil means unknown (fresh
	// entry, restored snapshot, or reset by ExpireBefore), which makes
	// the next Update take the full insert path and rebuild it.
	posted []uint32

	// code is this entry's current parCode contribution to the stripe
	// digest, cached so replacing the entry can XOR the old value out
	// without refolding the previous fingerprint.
	code uint64
}

// EvictFunc observes segments dropped by RemoveSegment or ExpireBefore. It
// is invoked synchronously after all DB locks are released, so the callback
// may call back into the DB (e.g. to purge dependent caches).
type EvictFunc func(segs []segment.ID)

// DB is one fingerprint database (the paper instantiates one per tracking
// granularity). It is safe for concurrent use.
type DB struct {
	defaultThreshold float64

	// hashShift maps a hash to its shard: h >> hashShift. Using the top
	// bits means a sorted fingerprint addresses shards in contiguous runs.
	hashShift uint
	segMask   uint32

	hashShards []hashShard
	segShards  []segShard

	// segtab interns segment IDs for the compacted runs.
	segtab segTable

	// clock is the logical time source; increments on every observation.
	clock atomic.Uint64

	// Incremental Stats counters.
	segments  atomic.Int64
	distinct  atomic.Int64
	postings  atomic.Int64
	headN     atomic.Int64 // live postings still in mutable heads
	deadN     atomic.Int64 // tombstones awaiting merge
	parHashes atomic.Int64 // total fingerprint hashes across DBpar

	// compactMin tunes the inline merge policy; see SetCompactThreshold.
	compactMin atomic.Int64

	hookMu  sync.RWMutex
	onEvict EvictFunc
}

// New returns an empty DB whose segments default to the given disclosure
// threshold (the paper's default is Tpar = 0.5, §6.1), striped across
// DefaultShards locks.
func New(defaultThreshold float64) *DB {
	return NewWithShards(defaultThreshold, DefaultShards)
}

// NewWithShards is New with an explicit stripe count. n is clamped to
// [1, 256] and rounded up to a power of two; n = 1 yields the single-lock
// layout of the original implementation (the DisableSharding ablation
// baseline).
func NewWithShards(defaultThreshold float64, n int) *DB {
	n = normalizeShards(n)
	db := &DB{
		defaultThreshold: defaultThreshold,
		hashShards:       make([]hashShard, n),
		segShards:        make([]segShard, n),
		segMask:          uint32(n - 1),
	}
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	db.hashShift = 32 - bits
	for i := range db.hashShards {
		db.hashShards[i].head = make(map[uint32]*bucket)
	}
	for i := range db.segShards {
		db.segShards[i].par = make(map[segment.ID]*parEntry)
	}
	return db
}

func normalizeShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NumShards returns the lock-stripe count.
func (db *DB) NumShards() int { return len(db.hashShards) }

// SetEvictHook installs fn to be notified of segments dropped by
// RemoveSegment and ExpireBefore. Passing nil clears the hook.
func (db *DB) SetEvictHook(fn EvictFunc) {
	db.hookMu.Lock()
	db.onEvict = fn
	db.hookMu.Unlock()
}

func (db *DB) notifyEvict(segs []segment.ID) {
	if len(segs) == 0 {
		return
	}
	db.hookMu.RLock()
	fn := db.onEvict
	db.hookMu.RUnlock()
	if fn != nil {
		fn(segs)
	}
}

func (db *DB) hashShardIdx(h uint32) int {
	return int(h >> db.hashShift) // shift of 32 (one shard) yields 0
}

func (db *DB) segShardFor(seg segment.ID) *segShard {
	// FNV-1a over the segment ID bytes.
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(seg); i++ {
		h ^= uint32(seg[i])
		h *= prime32
	}
	return &db.segShards[h&db.segMask]
}

// DefaultThreshold returns the threshold assigned to segments that have not
// set their own.
func (db *DB) DefaultThreshold() float64 { return db.defaultThreshold }

// Update stores fp as the latest fingerprint for seg and records first-seen
// postings for any hash not previously associated with seg. It returns the
// logical time of the update.
//
// Re-observations are diffed against the segment's posted-hash union
// (parEntry.posted): a hash the segment has posted before already has a
// first-seen posting that is never refreshed, so only hashes the segment
// has *never* posted pay a bucket probe and a shard lock. Per-edit index
// cost is therefore proportional to the novel content of the edit — an
// edit that oscillates within previously seen text touches no hash shard
// at all — mirroring the incremental evaluation of Algorithm 1.
//
// An Update whose hash set is identical to the segment's current
// fingerprint is a no-op: it neither ticks the logical clock nor
// refreshes the recency stamp. This matches the decision-cache fast path
// (a cache hit never reaches Update at all), so the index's evolution is
// a deterministic function of the observation stream — WAL replay after
// a crash reconstructs it byte-for-byte even though the in-memory cache
// restarts cold.
func (db *DB) Update(seg segment.ID, fp *fingerprint.Fingerprint) uint64 {
	ss := db.segShardFor(seg)
	ss.mu.Lock()
	entry, ok := ss.par[seg]
	if ok && entry.fp != nil && entry.fp.Equal(fp) {
		now := entry.updated
		ss.mu.Unlock()
		return now
	}
	now := db.clock.Add(1)
	if !ok {
		entry = &parEntry{threshold: db.defaultThreshold}
		ss.par[seg] = entry
		db.segments.Add(1)
	}
	if entry.fp != nil {
		db.parHashes.Add(int64(-entry.fp.Len()))
	}
	db.parHashes.Add(int64(fp.Len()))
	entry.fp = fp
	entry.updated = now
	hs := fp.Hashes()
	// Insert postings while still holding the segment stripe so that a
	// concurrent RemoveSegment(seg) cannot interleave between the DBpar
	// write and the DBhash writes (which would leak postings).
	switch {
	case entry.posted == nil:
		db.insertPostings(seg, hs, now)
		entry.posted = append([]uint32(nil), hs...)
	case countMissing(hs, entry.posted) > 0:
		entry.posted = db.insertNewPostings(seg, hs, entry.posted, now)
	}
	ss.digest ^= entry.code
	entry.code = parCode(segDigestKey(string(seg)), entry)
	ss.digest ^= entry.code
	ss.mu.Unlock()
	return now
}

// countMissing returns |hs \ posted| for two ascending slices — a pure
// merge walk with no locks, the O(n) fast path that lets an Update whose
// hashes were all posted before skip DBhash entirely.
func countMissing(hs, posted []uint32) int {
	k, j := 0, 0
	for _, h := range hs {
		for j < len(posted) && posted[j] < h {
			j++
		}
		if j >= len(posted) || posted[j] != h {
			k++
		}
	}
	return k
}

// shardInsertLocked records the (h, seg, seq) posting unless it already
// exists in the shard's head or run. ref/hasRef is seg's interned ref
// resolved after the shard lock was acquired (run entries can only mention
// refs interned before that point). Caller holds sh.mu for writing.
func (db *DB) shardInsertLocked(sh *hashShard, h uint32, seg segment.ID, ref uint32, hasRef bool, seq uint64) {
	b := sh.head[h]
	if b != nil && b.has(seg) {
		return
	}
	runLive := false
	if g := sh.run.find(h, db.shardBitsOf()); g >= 0 {
		var inRun bool
		inRun, runLive = sh.runHasSeg(h, g, ref, hasRef)
		if inRun {
			return
		}
	}
	if b == nil {
		b = &bucket{}
		sh.head[h] = b
		if !runLive {
			db.distinct.Add(1)
		}
	}
	if b.insert(seg, seq) {
		db.postings.Add(1)
		db.headN.Add(1)
		sh.headPostings++
		sh.digest ^= postingCode(h, segDigestKey(string(seg)), seq)
	}
}

// insertPostings records first-seen postings for hs (ascending) at time
// now, locking each hash shard exactly once per contiguous run.
func (db *DB) insertPostings(seg segment.ID, hs []uint32, now uint64) {
	for i := 0; i < len(hs); {
		si := db.hashShardIdx(hs[i])
		sh := &db.hashShards[si]
		j := i
		sh.mu.Lock()
		ref, hasRef := db.segtab.refOf(seg)
		for ; j < len(hs) && db.hashShardIdx(hs[j]) == si; j++ {
			db.shardInsertLocked(sh, hs[j], seg, ref, hasRef, now)
		}
		db.maybeCompactLocked(sh)
		sh.mu.Unlock()
		i = j
	}
}

// insertNewPostings records postings for the hashes of hs (ascending) that
// are absent from posted (ascending) and returns the merged union. Hashes
// present in posted already have first-seen postings, which are never
// refreshed, so skipping them is behaviour-identical while avoiding their
// bucket probes and shard locks. New hashes arrive in ascending order, so
// each hash shard is still locked at most once per contiguous run.
func (db *DB) insertNewPostings(seg segment.ID, hs, posted []uint32, now uint64) []uint32 {
	union := make([]uint32, 0, len(posted)+len(hs))
	var (
		sh     *hashShard
		cur    = -1
		j      = 0
		ref    uint32
		hasRef bool
	)
	for _, h := range hs {
		for j < len(posted) && posted[j] < h {
			union = append(union, posted[j])
			j++
		}
		if j < len(posted) && posted[j] == h {
			union = append(union, h)
			j++
			continue // already posted by an earlier update
		}
		union = append(union, h)
		if si := db.hashShardIdx(h); si != cur {
			if sh != nil {
				db.maybeCompactLocked(sh)
				sh.mu.Unlock()
			}
			sh = &db.hashShards[si]
			sh.mu.Lock()
			ref, hasRef = db.segtab.refOf(seg)
			cur = si
		}
		db.shardInsertLocked(sh, h, seg, ref, hasRef, now)
	}
	if sh != nil {
		db.maybeCompactLocked(sh)
		sh.mu.Unlock()
	}
	return append(union, posted[j:]...)
}

// removePostings drops seg's postings for hs (ascending): head postings are
// deleted in place, run postings are tombstoned for the next merge.
func (db *DB) removePostings(seg segment.ID, hs []uint32) {
	for i := 0; i < len(hs); {
		si := db.hashShardIdx(hs[i])
		sh := &db.hashShards[si]
		j := i
		sh.mu.Lock()
		ref, hasRef := db.segtab.refOf(seg)
		segKey := segDigestKey(string(seg))
		for ; j < len(hs) && db.hashShardIdx(hs[j]) == si; j++ {
			h := hs[j]
			g := sh.run.find(h, db.shardBitsOf())
			if b := sh.head[h]; b != nil {
				if seq, ok := b.remove(seg); ok {
					db.postings.Add(-1)
					db.headN.Add(-1)
					sh.headPostings--
					sh.digest ^= postingCode(h, segKey, seq)
					if len(b.postings) == 0 {
						delete(sh.head, h)
						runLive := false
						if g >= 0 {
							_, _, runLive = sh.run.firstLive(g)
						}
						if !runLive {
							db.distinct.Add(-1)
						}
					}
					continue
				}
			}
			if g < 0 || !hasRef {
				continue
			}
			seq, killed, anyLive := sh.tombstone(h, g, ref)
			if killed {
				db.postings.Add(-1)
				db.deadN.Add(1)
				sh.digest ^= postingCode(h, segKey, seq)
				if !anyLive {
					if _, ok := sh.head[h]; !ok {
						db.distinct.Add(-1)
					}
				}
			}
		}
		db.maybeCompactLocked(sh)
		sh.mu.Unlock()
		i = j
	}
}

// SetThreshold overrides the disclosure threshold of seg (creating the
// entry if needed), modelling per-paragraph thresholds set by authors
// (§4.2).
func (db *DB) SetThreshold(seg segment.ID, t float64) {
	ss := db.segShardFor(seg)
	ss.mu.Lock()
	entry, ok := ss.par[seg]
	if !ok {
		entry = &parEntry{fp: fingerprint.FromHashes(nil)}
		ss.par[seg] = entry
		db.segments.Add(1)
	}
	entry.threshold = t
	ss.digest ^= entry.code
	entry.code = parCode(segDigestKey(string(seg)), entry)
	ss.digest ^= entry.code
	ss.mu.Unlock()
}

// Threshold returns seg's disclosure threshold, or the default if seg is
// unknown.
func (db *DB) Threshold(seg segment.ID) float64 {
	ss := db.segShardFor(seg)
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if entry, ok := ss.par[seg]; ok {
		return entry.threshold
	}
	return db.defaultThreshold
}

// Fingerprint returns the latest fingerprint stored for seg.
func (db *DB) Fingerprint(seg segment.ID) (*fingerprint.Fingerprint, bool) {
	ss := db.segShardFor(seg)
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	entry, ok := ss.par[seg]
	if !ok || entry.fp == nil {
		return nil, false
	}
	return entry.fp, true
}

// Origin returns seg's latest fingerprint and threshold in one stripe
// acquisition — the candidate-evaluation read path of Algorithm 1.
func (db *DB) Origin(seg segment.ID) (fp *fingerprint.Fingerprint, threshold float64, ok bool) {
	ss := db.segShardFor(seg)
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	entry, ok := ss.par[seg]
	if !ok {
		return nil, db.defaultThreshold, false
	}
	return entry.fp, entry.threshold, entry.fp != nil
}

// OldestHolder returns the segment first observed with hash h — the
// authoritative source for h.
func (db *DB) OldestHolder(h uint32) (segment.ID, bool) {
	sh := &db.hashShards[db.hashShardIdx(h)]
	view := idsView{tab: &db.segtab}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return db.oldestLocked(sh, h, &view)
}

// SetClockFloor raises the logical clock to at least floor (it never moves
// the clock backwards). Partition nodes call this with the router's
// Lamport stamp before applying a routed write, so first-observation
// sequence numbers across independent partitions order the same way the
// single shared clock of one node would.
func (db *DB) SetClockFloor(floor uint64) {
	for {
		cur := db.clock.Load()
		if cur >= floor {
			return
		}
		if db.clock.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// OldestRef names the authoritative (oldest) holder of the Idx'th query
// hash together with the logical time of its first observation. The Seq
// is what lets a router compare authority claims across partitions: each
// partition resolves its local oldest holder, and the partition-spanning
// oldest is simply the reply with the smallest Seq.
type OldestRef struct {
	Idx int
	Seg segment.ID
	Seq uint64
}

// AppendOldestRefs appends an OldestRef for every hash in hs (ascending,
// as returned by Fingerprint.Hashes) that has at least one holder, and
// returns the extended slice. Like AppendOldestHolders it locks each hash
// shard at most once and reuses caller capacity; unlike it, each entry
// carries the hash's index and the holder's first-observation sequence so
// cross-partition authority can be merged without a second round trip.
func (db *DB) AppendOldestRefs(hs []uint32, out []OldestRef) []OldestRef {
	view := idsView{tab: &db.segtab}
	for i := 0; i < len(hs); {
		si := db.hashShardIdx(hs[i])
		sh := &db.hashShards[si]
		j := i
		sh.mu.RLock()
		for ; j < len(hs) && db.hashShardIdx(hs[j]) == si; j++ {
			if seg, seq, ok := db.oldestRefLocked(sh, hs[j], &view); ok {
				out = append(out, OldestRef{Idx: j, Seg: seg, Seq: seq})
			}
		}
		sh.mu.RUnlock()
		i = j
	}
	return out
}

// AppendOldestHolders appends the oldest holder of every hash in hs
// (ascending, as returned by Fingerprint.Hashes) to out and returns the
// extended slice. Hashes with no holder contribute nothing; duplicates are
// not removed. Each hash shard is locked at most once, which is what makes
// the candidate-discovery loop of Algorithm 1 cheap under sharding, and
// caller-provided capacity in out is reused without reallocation.
func (db *DB) AppendOldestHolders(hs []uint32, out []segment.ID) []segment.ID {
	view := idsView{tab: &db.segtab}
	for i := 0; i < len(hs); {
		si := db.hashShardIdx(hs[i])
		sh := &db.hashShards[si]
		j := i
		sh.mu.RLock()
		for ; j < len(hs) && db.hashShardIdx(hs[j]) == si; j++ {
			if seg, ok := db.oldestLocked(sh, hs[j], &view); ok {
				out = append(out, seg)
			}
		}
		sh.mu.RUnlock()
		i = j
	}
	return out
}

// AppendHolders appends every segment associated with h, oldest first, to
// out and returns the extended slice — the capacity-reusing form of
// Holders for batch callers.
func (db *DB) AppendHolders(h uint32, out []segment.ID) []segment.ID {
	sh := &db.hashShards[db.hashShardIdx(h)]
	view := idsView{tab: &db.segtab}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	b := sh.head[h]
	g := sh.run.find(h, db.shardBitsOf())
	var s, e int
	if g >= 0 {
		s, e = sh.run.bounds(g)
	}
	bi := 0
	for i := s; i < e || (b != nil && bi < len(b.postings)); {
		takeRun := false
		if i < e {
			if sh.run.segs[i] == tombstoneRef {
				i++
				continue
			}
			takeRun = b == nil || bi >= len(b.postings) || sh.run.seqs[i] <= b.postings[bi].Seq
		}
		if takeRun {
			out = append(out, view.id(sh.run.segs[i]))
			i++
		} else {
			out = append(out, b.postings[bi].Seg)
			bi++
		}
	}
	return out
}

// Holders returns every segment associated with h, oldest first.
func (db *DB) Holders(h uint32) []segment.ID {
	return db.AppendHolders(h, nil)
}

// AuthoritativeCount returns |Fauthoritative(seg)|: how many of seg's
// fingerprint hashes have seg as their oldest holder.
func (db *DB) AuthoritativeCount(seg segment.ID) int {
	fp, _, ok := db.Origin(seg)
	if !ok || fp.Empty() {
		return 0
	}
	hs := fp.Hashes()
	n := 0
	for i := 0; i < len(hs); {
		si := db.hashShardIdx(hs[i])
		sh := &db.hashShards[si]
		j := i
		sh.mu.RLock()
		ref, hasRef := db.segtab.refOf(seg)
		for ; j < len(hs) && db.hashShardIdx(hs[j]) == si; j++ {
			if db.oldestIsLocked(sh, hs[j], seg, ref, hasRef) {
				n++
			}
		}
		sh.mu.RUnlock()
		i = j
	}
	return n
}

// AuthoritativeOverlap returns |Fauthoritative(src) ∩ target| — the core
// quantity of the adjusted disclosure metrics of §4.3 — together with
// |F(src)|. It returns (0, 0) if src has no stored fingerprint.
//
// Both hash sets are sorted, so the intersection is a single linear merge;
// oldest-holder checks for the common hashes acquire each hash shard at
// most once and the whole call allocates nothing.
func (db *DB) AuthoritativeOverlap(src segment.ID, target *fingerprint.Fingerprint) (overlap, srcLen int) {
	fp, _, ok := db.Origin(src)
	if !ok {
		return 0, 0
	}
	srcLen = fp.Len()
	a, b := fp.Hashes(), target.Hashes()
	var (
		sh       *hashShard
		curShard = -1
		ref      uint32
		hasRef   bool
	)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			h := a[i]
			if si := db.hashShardIdx(h); si != curShard {
				if sh != nil {
					sh.mu.RUnlock()
				}
				sh = &db.hashShards[si]
				sh.mu.RLock()
				ref, hasRef = db.segtab.refOf(src)
				curShard = si
			}
			if db.oldestIsLocked(sh, h, src, ref, hasRef) {
				overlap++
			}
			i++
			j++
		}
	}
	if sh != nil {
		sh.mu.RUnlock()
	}
	return overlap, srcLen
}

// RemoveSegment deletes seg's fingerprint and all its postings. Subsequent
// oldest-holder queries may promote younger segments to authoritative.
func (db *DB) RemoveSegment(seg segment.ID) {
	ss := db.segShardFor(seg)
	ss.mu.Lock()
	entry, ok := ss.par[seg]
	if !ok {
		ss.mu.Unlock()
		return
	}
	delete(ss.par, seg)
	db.segments.Add(-1)
	ss.digest ^= entry.code
	if entry.fp != nil {
		db.parHashes.Add(int64(-entry.fp.Len()))
		db.removePostings(seg, entry.fp.Hashes())
	}
	ss.mu.Unlock()
	db.notifyEvict([]segment.ID{seg})
}

// ExpireBefore removes postings whose first observation is older than the
// given logical time, and drops segments whose last update is older. This
// implements the periodic removal of old fingerprints recommended in §4.4.
// It returns the number of postings removed.
//
// Shards that lose postings are compacted on the way out, so expiry both
// frees the postings and reclaims the tombstone space in one pass.
func (db *DB) ExpireBefore(seq uint64) int {
	removed := 0
	view := idsView{tab: &db.segtab}
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.Lock()
		liveBefore := sh.liveHashCountLocked()
		shardRemoved := 0
		// Run pass: tombstone expired entries group by group.
		for g := range sh.run.hashes {
			s, e := sh.run.bounds(g)
			for i := s; i < e; i++ {
				if sh.run.segs[i] == tombstoneRef || sh.run.seqs[i] >= seq {
					continue
				}
				if set, ok := sh.big[sh.run.hashes[g]]; ok {
					delete(set, sh.run.segs[i])
				}
				sh.digest ^= postingCode(sh.run.hashes[g],
					segDigestKey(string(view.id(sh.run.segs[i]))), sh.run.seqs[i])
				sh.run.segs[i] = tombstoneRef
				sh.dead++
				db.deadN.Add(1)
				shardRemoved++
			}
		}
		// Head pass: filter each bucket in place.
		for h, b := range sh.head {
			kept := b.postings[:0]
			for _, p := range b.postings {
				if p.Seq >= seq {
					kept = append(kept, p)
				} else {
					shardRemoved++
					sh.headPostings--
					db.headN.Add(-1)
					sh.digest ^= postingCode(h, segDigestKey(string(p.Seg)), p.Seq)
					if b.members != nil {
						delete(b.members, p.Seg)
					}
				}
			}
			if len(kept) == 0 {
				delete(sh.head, h)
			} else {
				b.postings = kept
			}
		}
		if shardRemoved > 0 || sh.dead > 0 {
			db.compactShardLocked(sh)
			// After a merge the live hashes are exactly the run's groups.
			db.distinct.Add(int64(len(sh.run.hashes) - liveBefore))
		}
		removed += shardRemoved
		sh.mu.Unlock()
	}
	db.postings.Add(int64(-removed))

	var evicted []segment.ID
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.Lock()
		for seg, entry := range ss.par {
			if entry.updated < seq {
				delete(ss.par, seg)
				ss.digest ^= entry.code
				if entry.fp != nil {
					db.parHashes.Add(int64(-entry.fp.Len()))
				}
				evicted = append(evicted, seg)
			} else if removed > 0 {
				// Expired postings may belong to surviving segments, so
				// their posted-hash unions can no longer be trusted; reset
				// them and let the next Update rebuild via the full insert
				// path (which re-creates any purged posting, exactly as
				// the probe-per-hash path would).
				entry.posted = nil
			}
		}
		ss.mu.Unlock()
	}
	db.segments.Add(int64(-len(evicted)))
	db.notifyEvict(evicted)
	return removed
}

// Now returns the current logical time.
func (db *DB) Now() uint64 { return db.clock.Load() }

// Segments returns the IDs of all tracked segments, sorted.
func (db *DB) Segments() []segment.ID {
	out := make([]segment.ID, 0, db.segments.Load())
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		for seg := range ss.par {
			out = append(out, seg)
		}
		ss.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns current size statistics from the incrementally maintained
// counters; no shard is locked and no structure is scanned.
func (db *DB) Stats() Stats {
	s := Stats{
		Segments:       int(db.segments.Load()),
		DistinctHashes: int(db.distinct.Load()),
		Postings:       int(db.postings.Load()),
		HeadPostings:   int(db.headN.Load()),
		Tombstones:     int(db.deadN.Load()),
	}
	// Rough per-item costs. Head postings still pay the map-of-buckets
	// price (map entry share + slice header + posting struct ≈ 88 B);
	// compacted postings pay the columnar price (4 B interned ref + 8 B
	// seq + hash/offset array share ≈ 14 B). DBpar fingerprints store each
	// hash twice (sorted set + posted union ≈ 16 B), segments ≈ 200 B of
	// entry, table and ID overhead.
	compacted := s.Postings - s.HeadPostings
	s.ApproxBytes = int64(s.HeadPostings)*88 +
		int64(compacted+s.Tombstones)*14 +
		int64(db.parHashes.Load())*16 +
		int64(s.Segments)*200
	return s
}
