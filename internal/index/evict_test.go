package index

// Eviction-hook contract across the compacted-run layout: RemoveSegment
// and ExpireBefore must notify the hook exactly once per dropped segment —
// no duplicates when a segment's postings span the mutable head and the
// compacted run, and no phantom notifications for survivors or for
// already-gone segments. The WAL relies on this to journal each eviction
// exactly once.

import (
	"fmt"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// evictRecorder counts hook notifications per segment.
type evictRecorder map[segment.ID]int

func (r evictRecorder) hook(segs []segment.ID) {
	for _, s := range segs {
		r[s]++
	}
}

func evictSeg(i int) segment.ID { return segment.ID(fmt.Sprintf("wiki/evict#p%d", i)) }

func evictFP(i int) *fingerprint.Fingerprint {
	hs := make([]uint32, 0, 24)
	for j := 0; j < 24; j++ {
		// Overlapping stride so hashes are shared across segments and every
		// shard sees both run-resident and head-resident postings.
		hs = append(hs, uint32((i*5+j*17)%96)*0x9e3779b1)
	}
	return fingerprint.FromHashes(hs)
}

func TestExpireBeforeEvictsExactlyOnceAcrossLayouts(t *testing.T) {
	for _, layout := range []string{"head", "compacted", "split"} {
		t.Run(layout, func(t *testing.T) {
			db := New(0.5)
			const old, young = 8, 8
			for i := 0; i < old; i++ {
				db.Update(evictSeg(i), evictFP(i))
			}
			if layout != "head" {
				db.Compact() // old segments' postings now live in the runs
			}
			cutoff := db.Now() + 1
			for i := old; i < old+young; i++ {
				db.Update(evictSeg(i), evictFP(i))
			}
			if layout == "compacted" {
				db.Compact() // everything merged; "split" keeps young in heads
			}

			rec := evictRecorder{}
			db.SetEvictHook(rec.hook)
			db.ExpireBefore(cutoff)

			for i := 0; i < old; i++ {
				if n := rec[evictSeg(i)]; n != 1 {
					t.Errorf("expired segment %d notified %d times, want exactly 1", i, n)
				}
			}
			for i := old; i < old+young; i++ {
				if n := rec[evictSeg(i)]; n != 0 {
					t.Errorf("surviving segment %d notified %d times, want 0", i, n)
				}
			}

			// A second expiry at the same cutoff has nothing left to evict:
			// the hook must stay silent.
			before := len(rec)
			db.ExpireBefore(cutoff)
			if len(rec) != before {
				t.Errorf("idempotent re-expiry fired the hook: %v", rec)
			}
			checkInvariants(t, db)
		})
	}
}

func TestRemoveSegmentEvictsExactlyOnceAcrossLayouts(t *testing.T) {
	for _, compacted := range []bool{false, true} {
		name := "head"
		if compacted {
			name = "compacted"
		}
		t.Run(name, func(t *testing.T) {
			db := New(0.5)
			for i := 0; i < 6; i++ {
				db.Update(evictSeg(i), evictFP(i))
			}
			if compacted {
				db.Compact()
			}
			rec := evictRecorder{}
			db.SetEvictHook(rec.hook)

			db.RemoveSegment(evictSeg(2))
			if n := rec[evictSeg(2)]; n != 1 {
				t.Fatalf("removed segment notified %d times, want exactly 1", n)
			}
			// Removing a segment that is already gone, or never existed,
			// must not notify.
			db.RemoveSegment(evictSeg(2))
			db.RemoveSegment(segment.ID("wiki/never#p0"))
			if n := rec[evictSeg(2)]; n != 1 {
				t.Fatalf("re-removal re-notified: %d times", n)
			}
			if len(rec) != 1 {
				t.Fatalf("unexpected notifications: %v", rec)
			}

			// Re-adding and removing again is a fresh eviction event.
			db.Update(evictSeg(2), evictFP(2))
			if compacted {
				db.Compact()
			}
			db.RemoveSegment(evictSeg(2))
			if n := rec[evictSeg(2)]; n != 2 {
				t.Fatalf("re-added segment's removal notified %d times total, want 2", n)
			}
			checkInvariants(t, db)
		})
	}
}
