//go:build !race

package index

// raceEnabled reports whether the race detector is active. Allocation
// regression tests skip under -race: instrumentation changes allocation
// behaviour (and sync.Pool deliberately drops items) in ways that are not
// regressions.
const raceEnabled = false
