package index

import (
	"fmt"
	"sort"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// SegmentRecord is the serialisable form of one DBpar entry.
type SegmentRecord struct {
	Seg       segment.ID `json:"seg"`
	Hashes    []uint32   `json:"hashes"`
	Threshold float64    `json:"threshold"`
	Updated   uint64     `json:"updated"`
}

// PostingRecord is the serialisable form of one DBhash association.
type PostingRecord struct {
	Hash uint32     `json:"hash"`
	Seg  segment.ID `json:"seg"`
	Seq  uint64     `json:"seq"`
}

// ExportData is a complete serialisable snapshot of a DB, preserving the
// first-seen ordering that the authoritative-fingerprint logic depends on.
type ExportData struct {
	DefaultThreshold float64         `json:"defaultThreshold"`
	Clock            uint64          `json:"clock"`
	Segments         []SegmentRecord `json:"segments"`
	Postings         []PostingRecord `json:"postings"`
}

// Export snapshots the DB. Segments are sorted by ID and postings by
// (seq, hash) so exports are deterministic. The snapshot is taken stripe
// by stripe; concurrent mutations land either before or after the shard
// they touch is visited.
func (db *DB) Export() ExportData {
	data := ExportData{
		DefaultThreshold: db.defaultThreshold,
		Clock:            db.clock.Load(),
	}
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		for seg, entry := range ss.par {
			rec := SegmentRecord{
				Seg:       seg,
				Threshold: entry.threshold,
				Updated:   entry.updated,
			}
			if entry.fp != nil {
				// Copy: Hashes() exposes the fingerprint's internal
				// storage and ExportData is handed to callers.
				rec.Hashes = append([]uint32(nil), entry.fp.Hashes()...)
			}
			data.Segments = append(data.Segments, rec)
		}
		ss.mu.RUnlock()
	}
	sort.Slice(data.Segments, func(i, j int) bool { return data.Segments[i].Seg < data.Segments[j].Seg })
	view := idsView{tab: &db.segtab}
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		for h, b := range sh.head {
			for _, p := range b.postings {
				data.Postings = append(data.Postings, PostingRecord{Hash: h, Seg: p.Seg, Seq: p.Seq})
			}
		}
		for g := range sh.run.hashes {
			s, e := sh.run.bounds(g)
			for i := s; i < e; i++ {
				if sh.run.segs[i] == tombstoneRef {
					continue
				}
				data.Postings = append(data.Postings, PostingRecord{
					Hash: sh.run.hashes[g],
					Seg:  view.id(sh.run.segs[i]),
					Seq:  sh.run.seqs[i],
				})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(data.Postings, func(i, j int) bool {
		if data.Postings[i].Seq != data.Postings[j].Seq {
			return data.Postings[i].Seq < data.Postings[j].Seq
		}
		return data.Postings[i].Hash < data.Postings[j].Hash
	})
	return data
}

// Import replaces the DB's contents with a previously exported snapshot.
// It must not run concurrently with other operations on the same DB.
func (db *DB) Import(data ExportData) error {
	// Validate before mutating anything.
	for _, p := range data.Postings {
		if p.Seq > data.Clock {
			return fmt.Errorf("index: posting seq %d exceeds clock %d", p.Seq, data.Clock)
		}
	}
	for _, rec := range data.Segments {
		if rec.Updated > data.Clock {
			return fmt.Errorf("index: segment %s updated %d exceeds clock %d", rec.Seg, rec.Updated, data.Clock)
		}
	}

	db.reset()
	db.defaultThreshold = data.DefaultThreshold
	db.clock.Store(data.Clock)

	// Postings must be replayed in seq order to restore first-seen
	// semantics; Export writes them sorted, but do not trust external data.
	// Runs are empty after reset, so plain head-bucket inserts suffice;
	// compaction happens lazily once mutation resumes (or via Compact).
	postings := make([]PostingRecord, len(data.Postings))
	copy(postings, data.Postings)
	sort.Slice(postings, func(i, j int) bool { return postings[i].Seq < postings[j].Seq })
	for _, p := range postings {
		sh := &db.hashShards[db.hashShardIdx(p.Hash)]
		sh.mu.Lock()
		b := sh.head[p.Hash]
		if b == nil {
			b = &bucket{}
			sh.head[p.Hash] = b
			db.distinct.Add(1)
		}
		if b.insert(p.Seg, p.Seq) {
			db.postings.Add(1)
			db.headN.Add(1)
			sh.headPostings++
		}
		sh.mu.Unlock()
	}
	for _, rec := range data.Segments {
		ss := db.segShardFor(rec.Seg)
		ss.mu.Lock()
		prev, ok := ss.par[rec.Seg]
		if !ok {
			db.segments.Add(1)
		} else if prev.fp != nil {
			db.parHashes.Add(int64(-prev.fp.Len()))
		}
		db.parHashes.Add(int64(len(rec.Hashes)))
		ss.par[rec.Seg] = &parEntry{
			fp:        fingerprint.FromHashes(rec.Hashes),
			threshold: rec.Threshold,
			updated:   rec.Updated,
		}
		ss.mu.Unlock()
	}
	db.RecomputeDigests()
	return nil
}

// reset empties every stripe, the ref table and all counters (the clock is
// left for the caller to set). It must not run concurrently with other
// operations on the same DB.
func (db *DB) reset() {
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.Lock()
		sh.head = make(map[uint32]*bucket)
		sh.run = run{}
		sh.big = nil
		sh.headPostings = 0
		sh.dead = 0
		sh.digest = 0
		sh.mu.Unlock()
	}
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.Lock()
		ss.par = make(map[segment.ID]*parEntry)
		ss.digest = 0
		ss.mu.Unlock()
	}
	db.segtab.reset()
	db.segments.Store(0)
	db.distinct.Store(0)
	db.postings.Store(0)
	db.headN.Store(0)
	db.deadN.Store(0)
	db.parHashes.Store(0)
}
