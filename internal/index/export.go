package index

import (
	"fmt"
	"sort"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// SegmentRecord is the serialisable form of one DBpar entry.
type SegmentRecord struct {
	Seg       segment.ID `json:"seg"`
	Hashes    []uint32   `json:"hashes"`
	Threshold float64    `json:"threshold"`
	Updated   uint64     `json:"updated"`
}

// PostingRecord is the serialisable form of one DBhash association.
type PostingRecord struct {
	Hash uint32     `json:"hash"`
	Seg  segment.ID `json:"seg"`
	Seq  uint64     `json:"seq"`
}

// ExportData is a complete serialisable snapshot of a DB, preserving the
// first-seen ordering that the authoritative-fingerprint logic depends on.
type ExportData struct {
	DefaultThreshold float64         `json:"defaultThreshold"`
	Clock            uint64          `json:"clock"`
	Segments         []SegmentRecord `json:"segments"`
	Postings         []PostingRecord `json:"postings"`
}

// Export snapshots the DB. Segments are sorted by ID and postings by
// (seq, hash) so exports are deterministic.
func (db *DB) Export() ExportData {
	db.mu.RLock()
	defer db.mu.RUnlock()
	data := ExportData{
		DefaultThreshold: db.defaultThreshold,
		Clock:            db.clock,
	}
	for seg, entry := range db.par {
		rec := SegmentRecord{
			Seg:       seg,
			Threshold: entry.threshold,
			Updated:   entry.updated,
		}
		if entry.fp != nil {
			rec.Hashes = entry.fp.Hashes()
		}
		data.Segments = append(data.Segments, rec)
	}
	sort.Slice(data.Segments, func(i, j int) bool { return data.Segments[i].Seg < data.Segments[j].Seg })
	for h, postings := range db.hash {
		for _, p := range postings {
			data.Postings = append(data.Postings, PostingRecord{Hash: h, Seg: p.Seg, Seq: p.Seq})
		}
	}
	sort.Slice(data.Postings, func(i, j int) bool {
		if data.Postings[i].Seq != data.Postings[j].Seq {
			return data.Postings[i].Seq < data.Postings[j].Seq
		}
		return data.Postings[i].Hash < data.Postings[j].Hash
	})
	return data
}

// Import replaces the DB's contents with a previously exported snapshot.
func (db *DB) Import(data ExportData) error {
	hash := make(map[uint32][]Posting, len(data.Postings))
	// Postings must be replayed in seq order to restore first-seen
	// semantics; Export writes them sorted, but do not trust external data.
	postings := make([]PostingRecord, len(data.Postings))
	copy(postings, data.Postings)
	sort.Slice(postings, func(i, j int) bool { return postings[i].Seq < postings[j].Seq })
	for _, p := range postings {
		if p.Seq > data.Clock {
			return fmt.Errorf("index: posting seq %d exceeds clock %d", p.Seq, data.Clock)
		}
		hash[p.Hash] = append(hash[p.Hash], Posting{Seg: p.Seg, Seq: p.Seq})
	}
	par := make(map[segment.ID]*parEntry, len(data.Segments))
	for _, rec := range data.Segments {
		if rec.Updated > data.Clock {
			return fmt.Errorf("index: segment %s updated %d exceeds clock %d", rec.Seg, rec.Updated, data.Clock)
		}
		par[rec.Seg] = &parEntry{
			fp:        fingerprint.FromHashes(rec.Hashes),
			threshold: rec.Threshold,
			updated:   rec.Updated,
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	db.defaultThreshold = data.DefaultThreshold
	db.clock = data.Clock
	db.hash = hash
	db.par = par
	return nil
}
