package index

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// buildWorkloadDB replays a deterministic workload; threshold controls the
// compaction policy so the same state can be built in different physical
// layouts.
func buildWorkloadDB(seed int64, shards, threshold int) *DB {
	db := NewWithShards(0.5, shards)
	db.SetCompactThreshold(threshold)
	opSeq(db, rand.New(rand.NewSource(seed)), 500, (*DB).Compact, 11)
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		db := buildWorkloadDB(seed, DefaultShards, 1)
		blob, err := db.AppendSnapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		restored := NewWithShards(0, 16) // different shard count on purpose
		if err := restored.LoadSnapshot(blob); err != nil {
			t.Fatal(err)
		}
		assertSameObservable(t, restored, db)
		checkInvariants(t, restored)
		if restored.Now() != db.Now() {
			t.Fatalf("clock drifted: %d != %d", restored.Now(), db.Now())
		}
		if restored.DefaultThreshold() != db.DefaultThreshold() {
			t.Fatalf("default threshold drifted")
		}
	}
}

// TestSnapshotDeterministic pins that encoding is a pure function of the
// logical state: different shard counts, merge histories and a full
// encode→load→encode cycle must produce identical bytes.
func TestSnapshotDeterministic(t *testing.T) {
	a := buildWorkloadDB(7, DefaultShards, 1)
	b := buildWorkloadDB(7, 4, -1) // head-only layout, different stripes
	ab, err := a.AppendSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.AppendSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, bb) {
		t.Fatalf("snapshot bytes depend on physical layout: %d vs %d bytes", len(ab), len(bb))
	}
	c := New(0)
	if err := c.LoadSnapshot(ab); err != nil {
		t.Fatal(err)
	}
	cb, err := c.AppendSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, cb) {
		t.Fatalf("encode→load→encode not a fixed point: %d vs %d bytes", len(ab), len(cb))
	}
}

// TestExportBinaryCompat pins that the ExportData compatibility codec and
// the live-DB codec produce identical bytes for the same state, and that
// decode inverts encode.
func TestExportBinaryCompat(t *testing.T) {
	db := buildWorkloadDB(11, DefaultShards, 1)
	live, err := db.AppendSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	viaExport, err := EncodeExportBinary(db.Export())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, viaExport) {
		t.Fatalf("live and ExportData encodings differ: %d vs %d bytes", len(live), len(viaExport))
	}
	decoded, err := DecodeExportBinary(live)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, db.Export()) {
		t.Fatalf("DecodeExportBinary round trip diverged")
	}
}

// TestLoadSnapshotRejectsCorruption flips or truncates bytes across the
// payload and requires a typed CodecError (never a panic) and an untouched
// (fully reset, not partially loaded) DB.
func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	db := buildWorkloadDB(13, DefaultShards, 1)
	blob, err := db.AppendSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: pristine blob loads.
	if err := New(0).LoadSnapshot(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), blob...)
		switch trial % 3 {
		case 0: // truncate
			mut = mut[:rng.Intn(len(mut))]
		case 1: // bit flip
			i := rng.Intn(len(mut))
			mut[i] ^= 1 << uint(rng.Intn(8))
		case 2: // garbage tail
			mut = append(mut, byte(rng.Intn(256)))
		}
		restored := New(0)
		err := restored.LoadSnapshot(mut)
		if err == nil {
			// A flip can produce a different but well-formed snapshot
			// (e.g. a threshold bit); that is fine — CRC framing above
			// this layer catches it. What is not fine is partial state
			// with invariants broken.
			checkInvariants(t, restored)
			continue
		}
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Fatalf("trial %d: error is not a CodecError: %v", trial, err)
		}
		if s := restored.Stats(); s.Postings != 0 || s.Segments != 0 || s.DistinctHashes != 0 {
			t.Fatalf("trial %d: rejected load left partial state: %+v", trial, s)
		}
	}
}

func BenchmarkLoadSnapshot(b *testing.B) {
	db := New(0.5)
	for i := 0; i < 2000; i++ {
		hs := make([]uint32, 40)
		for j := range hs {
			hs[j] = uint32(i*20+j) * 0x9e3779b1
		}
		db.Update(segment.ID(fmt.Sprintf("doc%d#p%d", i/10, i%10)), fingerprint.FromHashes(hs))
	}
	blob, err := db.AppendSnapshot(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored := New(0)
		if err := restored.LoadSnapshot(blob); err != nil {
			b.Fatal(err)
		}
	}
}
