package index

import (
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
)

func TestExportImportRoundTrip(t *testing.T) {
	db := New(0.5)
	db.Update("a", fingerprint.FromHashes([]uint32{1, 2, 3}))
	db.Update("b", fingerprint.FromHashes([]uint32{2, 4}))
	db.SetThreshold("b", 0.8)

	data := db.Export()
	db2 := New(0.9)
	if err := db2.Import(data); err != nil {
		t.Fatal(err)
	}
	if db2.DefaultThreshold() != 0.5 {
		t.Errorf("default threshold=%v, want 0.5", db2.DefaultThreshold())
	}
	if got := db2.Threshold("b"); got != 0.8 {
		t.Errorf("threshold(b)=%v, want 0.8", got)
	}
	// First-seen order preserved: a is still authoritative for hash 2.
	if holder, ok := db2.OldestHolder(2); !ok || holder != "a" {
		t.Errorf("OldestHolder(2)=%q,%v, want a,true", holder, ok)
	}
	if got, want := db2.Stats(), db.Stats(); got != want {
		t.Errorf("stats=%+v, want %+v", got, want)
	}
	// Clock continues past imported value.
	seq := db2.Update("c", fingerprint.FromHashes([]uint32{9}))
	if seq <= data.Clock {
		t.Errorf("clock did not resume: %d <= %d", seq, data.Clock)
	}
}

func TestExportDeterministic(t *testing.T) {
	db := New(0.5)
	db.Update("z", fingerprint.FromHashes([]uint32{5, 6}))
	db.Update("a", fingerprint.FromHashes([]uint32{5, 7}))
	x, y := db.Export(), db.Export()
	if len(x.Segments) != len(y.Segments) || len(x.Postings) != len(y.Postings) {
		t.Fatal("non-deterministic export sizes")
	}
	for i := range x.Segments {
		if x.Segments[i].Seg != y.Segments[i].Seg {
			t.Fatal("non-deterministic segment order")
		}
	}
	for i := range x.Postings {
		if x.Postings[i] != y.Postings[i] {
			t.Fatal("non-deterministic posting order")
		}
	}
}

func TestImportRejectsInconsistentClock(t *testing.T) {
	bad := ExportData{
		Clock:    1,
		Postings: []PostingRecord{{Hash: 1, Seg: "a", Seq: 5}},
	}
	if err := New(0.5).Import(bad); err == nil {
		t.Error("posting seq beyond clock accepted")
	}
	bad2 := ExportData{
		Clock:    1,
		Segments: []SegmentRecord{{Seg: "a", Updated: 9}},
	}
	if err := New(0.5).Import(bad2); err == nil {
		t.Error("segment updated beyond clock accepted")
	}
}
