package index

// Binary snapshot codec for one DB: the payload of the docs/pars sections
// of the BFLOWSNB checkpoint format (see internal/store). The encoding is
// columnar and delta-varint compressed:
//
//	u8      codec version (1)
//	u64     clock (little endian)
//	u64     defaultThreshold (IEEE 754 bits, little endian)
//	uvarint segment-table length
//	  per entry: uvarint byte length + ID bytes, sorted ascending by ID
//	uvarint DBpar entry count
//	  per entry (ascending by segment ref):
//	    uvarint ref, u64 threshold bits, uvarint updated,
//	    uvarint hash count, delta-uvarint ascending hashes
//	uvarint distinct hash count
//	uvarint total posting count
//	  per hash (ascending): uvarint delta from previous hash,
//	    uvarint group length,
//	    per posting (ascending seq): uvarint ref, uvarint seq delta
//
// The encoding is a pure function of the DB's logical contents — segment
// table sorted by ID, hashes ascending, postings seq-ascending — so the
// same state encodes to the same bytes regardless of shard count or merge
// history, and a replica can persist a primary's snapshot verbatim.
//
// Decoding rebuilds the compacted runs directly from the arrays (no
// per-posting map inserts), which is what makes binary recovery a linear
// varint scan instead of the JSON path's reflective parse + replay.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

const snapshotCodecVersion = 1

// CodecError reports a malformed binary index snapshot, with the byte
// offset (relative to the index payload) where decoding failed.
type CodecError struct {
	Offset int
	Reason string
}

func (e *CodecError) Error() string {
	return fmt.Sprintf("index: corrupt snapshot payload at offset %d: %s", e.Offset, e.Reason)
}

// AppendSnapshot appends the DB's binary snapshot to buf and returns the
// extended slice. The DB must be quiescent (no concurrent mutations):
// checkpoint callers hold the store's epoch barrier, which guarantees it.
func (db *DB) AppendSnapshot(buf []byte) ([]byte, error) {
	// Pass A: collect the referenced segment universe — DBpar entries,
	// head postings (string IDs) and run postings (interned refs).
	ids := db.segtab.snapshot()
	refUsed := make([]bool, len(ids))
	universe := make(map[segment.ID]struct{})

	type parRec struct {
		seg       segment.ID
		threshold float64
		updated   uint64
		hashes    []uint32 // immutable fingerprint storage
	}
	var pars []parRec
	for si := range db.segShards {
		ss := &db.segShards[si]
		ss.mu.RLock()
		for seg, entry := range ss.par {
			rec := parRec{seg: seg, threshold: entry.threshold, updated: entry.updated}
			if entry.fp != nil {
				rec.hashes = entry.fp.Hashes()
			}
			pars = append(pars, rec)
			universe[seg] = struct{}{}
		}
		ss.mu.RUnlock()
	}
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		for _, b := range sh.head {
			for _, p := range b.postings {
				universe[p.Seg] = struct{}{}
			}
		}
		for _, r := range sh.run.segs {
			if r != tombstoneRef {
				refUsed[r] = true
			}
		}
		sh.mu.RUnlock()
	}
	for r, used := range refUsed {
		if used {
			universe[ids[r]] = struct{}{}
		}
	}

	table := make([]segment.ID, 0, len(universe))
	for seg := range universe {
		table = append(table, seg)
	}
	sort.Slice(table, func(i, j int) bool { return table[i] < table[j] })
	newRef := make(map[segment.ID]uint32, len(table))
	for i, seg := range table {
		newRef[seg] = uint32(i)
	}

	// Header.
	buf = append(buf, snapshotCodecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, db.clock.Load())
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(db.defaultThreshold))
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, seg := range table {
		buf = binary.AppendUvarint(buf, uint64(len(seg)))
		buf = append(buf, seg...)
	}

	// DBpar entries, ascending by (new) ref.
	sort.Slice(pars, func(i, j int) bool { return pars[i].seg < pars[j].seg })
	buf = binary.AppendUvarint(buf, uint64(len(pars)))
	for _, rec := range pars {
		buf = binary.AppendUvarint(buf, uint64(newRef[rec.seg]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.threshold))
		buf = binary.AppendUvarint(buf, rec.updated)
		buf = binary.AppendUvarint(buf, uint64(len(rec.hashes)))
		prev := uint32(0)
		for i, h := range rec.hashes {
			if i == 0 {
				buf = binary.AppendUvarint(buf, uint64(h))
			} else {
				buf = binary.AppendUvarint(buf, uint64(h-prev))
			}
			prev = h
		}
	}

	// Postings, globally ascending by hash: shard index is the hash's top
	// bits, so visiting shards in order yields global hash order; within a
	// shard, merge the sorted head keys with the run groups.
	countAt := len(buf)
	buf = binary.AppendUvarint(buf, uint64(db.distinct.Load()))
	buf = binary.AppendUvarint(buf, uint64(db.postings.Load()))
	var (
		distinct, total int
		prevHash        uint32
		first           = true
		scratch         []Posting
		view            = idsView{tab: &db.segtab}
		encodeErr       error
	)
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.RLock()
		headKeys := make([]uint32, 0, len(sh.head))
		for h := range sh.head {
			headKeys = append(headKeys, h)
		}
		sort.Slice(headKeys, func(i, j int) bool { return headKeys[i] < headKeys[j] })
		gi, hi := 0, 0
		for gi < len(sh.run.hashes) || hi < len(headKeys) {
			var h uint32
			switch {
			case hi >= len(headKeys) || (gi < len(sh.run.hashes) && sh.run.hashes[gi] < headKeys[hi]):
				h = sh.run.hashes[gi]
				gi++
			case gi >= len(sh.run.hashes) || headKeys[hi] < sh.run.hashes[gi]:
				h = headKeys[hi]
				hi++
			default:
				h = sh.run.hashes[gi]
				gi++
				hi++
			}
			scratch = db.appendMergedLocked(sh, h, &view, scratch[:0])
			if len(scratch) == 0 {
				continue // fully tombstoned group
			}
			if first {
				buf = binary.AppendUvarint(buf, uint64(h))
				first = false
			} else {
				buf = binary.AppendUvarint(buf, uint64(h-prevHash))
			}
			prevHash = h
			buf = binary.AppendUvarint(buf, uint64(len(scratch)))
			prevSeq := uint64(0)
			for i, p := range scratch {
				ref, ok := newRef[p.Seg]
				if !ok {
					encodeErr = fmt.Errorf("index: snapshot encode raced a mutation: unknown segment %q", p.Seg)
					break
				}
				buf = binary.AppendUvarint(buf, uint64(ref))
				if i == 0 {
					buf = binary.AppendUvarint(buf, p.Seq)
				} else {
					buf = binary.AppendUvarint(buf, p.Seq-prevSeq)
				}
				prevSeq = p.Seq
			}
			distinct++
			total += len(scratch)
			if encodeErr != nil {
				break
			}
		}
		sh.mu.RUnlock()
		if encodeErr != nil {
			return nil, encodeErr
		}
	}
	if distinct != int(db.distinct.Load()) || total != int(db.postings.Load()) {
		// Re-encode the counts in place (counters can drift from the walk
		// only if the caller violated quiescence; still, emit the truth).
		var fixed []byte
		fixed = binary.AppendUvarint(fixed, uint64(distinct))
		fixed = binary.AppendUvarint(fixed, uint64(total))
		var orig []byte
		orig = binary.AppendUvarint(orig, uint64(db.distinct.Load()))
		orig = binary.AppendUvarint(orig, uint64(db.postings.Load()))
		if len(fixed) == len(orig) {
			copy(buf[countAt:], fixed)
		} else {
			rest := append([]byte(nil), buf[countAt+len(orig):]...)
			buf = append(buf[:countAt], fixed...)
			buf = append(buf, rest...)
		}
	}
	return buf, nil
}

// snapDecoder is a bounds-checked varint reader over the snapshot payload.
type snapDecoder struct {
	data []byte
	off  int
}

func (d *snapDecoder) fail(reason string) error {
	return &CodecError{Offset: d.off, Reason: reason}
}

func (d *snapDecoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.fail("truncated or overlong varint: " + what)
	}
	d.off += n
	return v, nil
}

func (d *snapDecoder) u64(what string) (uint64, error) {
	if d.off+8 > len(d.data) {
		return 0, d.fail("truncated u64: " + what)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v, nil
}

// snapParRec is one decoded DBpar entry awaiting commit.
type snapParRec struct {
	ref       uint32
	threshold float64
	updated   uint64
	hashes    []uint32
}

// PreparedSnapshot is a fully decoded and validated snapshot, sharded for
// the DB that prepared it and ready to commit. It lets a caller restoring
// several DBs validate every payload before committing any of them, so a
// corrupt second payload cannot leave the first DB already replaced.
type PreparedSnapshot struct {
	db      *DB
	clock   uint64
	thrBits uint64
	table   []segment.ID
	pars    []snapParRec
	runs    []run
	total   uint64
}

// LoadSnapshot replaces the DB's contents with the decoded snapshot,
// building the compacted runs directly from the posting arrays. It must
// not run concurrently with other operations on the same DB. The payload
// is fully validated before the DB is touched, so on error the DB is left
// unchanged — never partially loaded.
func (db *DB) LoadSnapshot(data []byte) error {
	p, err := db.PrepareSnapshot(data)
	if err != nil {
		return err
	}
	db.CommitSnapshot(p)
	return nil
}

// PrepareSnapshot decodes and validates a snapshot payload against this
// DB's shard layout without touching its state. The result must be passed
// to CommitSnapshot on the same DB (and is invalidated by it). Nothing in
// the prepared state aliases data, which may be a memory mapping.
func (db *DB) PrepareSnapshot(data []byte) (*PreparedSnapshot, error) {
	p := &PreparedSnapshot{db: db}
	if err := db.decodeSnapshot(data, p); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeSnapshot does PrepareSnapshot's decoding work, filling p.
func (db *DB) decodeSnapshot(data []byte, p *PreparedSnapshot) error {
	d := &snapDecoder{data: data}
	if len(data) < 1 {
		return d.fail("empty payload")
	}
	if data[0] != snapshotCodecVersion {
		return &CodecError{Offset: 0, Reason: fmt.Sprintf("unsupported codec version %d", data[0])}
	}
	d.off = 1
	clock, err := d.u64("clock")
	if err != nil {
		return err
	}
	thrBits, err := d.u64("default threshold")
	if err != nil {
		return err
	}

	nSegs, err := d.uvarint("segment table length")
	if err != nil {
		return err
	}
	if nSegs > uint64(len(data)) { // each entry needs ≥1 byte
		return d.fail("segment table length exceeds payload")
	}
	table := make([]segment.ID, nSegs)
	for i := range table {
		n, err := d.uvarint("segment ID length")
		if err != nil {
			return err
		}
		if n > uint64(len(data)-d.off) {
			return d.fail("segment ID exceeds payload")
		}
		table[i] = segment.ID(data[d.off : d.off+int(n)])
		d.off += int(n)
		if i > 0 && table[i] <= table[i-1] {
			return d.fail("segment table not strictly ascending")
		}
	}

	nPar, err := d.uvarint("DBpar entry count")
	if err != nil {
		return err
	}
	if nPar > nSegs {
		return d.fail("more DBpar entries than table segments")
	}
	pars := make([]snapParRec, nPar)
	for i := range pars {
		ref, err := d.uvarint("DBpar segment ref")
		if err != nil {
			return err
		}
		if ref >= nSegs {
			return d.fail("DBpar segment ref out of range")
		}
		if i > 0 && uint32(ref) <= pars[i-1].ref {
			return d.fail("DBpar entries not ascending by ref")
		}
		tb, err := d.u64("DBpar threshold")
		if err != nil {
			return err
		}
		updated, err := d.uvarint("DBpar updated")
		if err != nil {
			return err
		}
		if updated > clock {
			return d.fail("DBpar updated exceeds clock")
		}
		nh, err := d.uvarint("DBpar hash count")
		if err != nil {
			return err
		}
		if nh > uint64(len(data)-d.off) {
			return d.fail("DBpar hash count exceeds payload")
		}
		hashes := make([]uint32, nh)
		prev := uint64(0)
		for j := range hashes {
			dv, err := d.uvarint("DBpar hash delta")
			if err != nil {
				return err
			}
			var h uint64
			if j == 0 {
				h = dv
			} else {
				if dv == 0 {
					return d.fail("DBpar hashes not strictly ascending")
				}
				h = prev + dv
			}
			if h > math.MaxUint32 {
				return d.fail("DBpar hash overflows 32 bits")
			}
			hashes[j] = uint32(h)
			prev = h
		}
		pars[i] = snapParRec{ref: uint32(ref), threshold: math.Float64frombits(tb), updated: updated, hashes: hashes}
	}

	distinct, err := d.uvarint("distinct hash count")
	if err != nil {
		return err
	}
	total, err := d.uvarint("total posting count")
	if err != nil {
		return err
	}
	if distinct > uint64(len(data)) || total > uint64(len(data)) {
		return d.fail("posting counts exceed payload")
	}

	// Decode postings straight into per-shard run arrays. A fresh DB is
	// built shard by shard and only swapped in at the end, so a decode
	// error can never leave a partial load behind.
	shards := len(db.hashShards)
	runs := make([]run, shards)
	perShard := int(total)/shards + 1
	prevHash := uint64(0)
	seenHashes := uint64(0)
	seenPostings := uint64(0)
	for seenHashes < distinct {
		dv, err := d.uvarint("posting hash delta")
		if err != nil {
			return err
		}
		var h uint64
		if seenHashes == 0 {
			h = dv
		} else {
			if dv == 0 {
				return d.fail("posting hashes not strictly ascending")
			}
			h = prevHash + dv
		}
		if h > math.MaxUint32 {
			return d.fail("posting hash overflows 32 bits")
		}
		prevHash = h
		seenHashes++
		groupLen, err := d.uvarint("posting group length")
		if err != nil {
			return err
		}
		if groupLen == 0 {
			return d.fail("empty posting group")
		}
		if seenPostings+groupLen > total {
			return d.fail("posting groups exceed declared total")
		}
		r := &runs[db.hashShardIdx(uint32(h))]
		if r.starts == nil {
			r.hashes = make([]uint32, 0, int(distinct)/shards+1)
			r.starts = append(make([]uint32, 0, int(distinct)/shards+2), 0)
			r.segs = make([]uint32, 0, perShard)
			r.seqs = make([]uint64, 0, perShard)
		}
		r.hashes = append(r.hashes, uint32(h))
		prevSeq := uint64(0)
		for j := uint64(0); j < groupLen; j++ {
			ref, err := d.uvarint("posting segment ref")
			if err != nil {
				return err
			}
			if ref >= nSegs {
				return d.fail("posting segment ref out of range")
			}
			sd, err := d.uvarint("posting seq delta")
			if err != nil {
				return err
			}
			var seq uint64
			if j == 0 {
				seq = sd
			} else {
				seq = prevSeq + sd
			}
			if seq > clock {
				return d.fail("posting seq exceeds clock")
			}
			prevSeq = seq
			r.segs = append(r.segs, uint32(ref))
			r.seqs = append(r.seqs, seq)
		}
		r.starts = append(r.starts, uint32(len(r.segs)))
		seenPostings += groupLen
	}
	if seenPostings != total {
		return d.fail("posting total mismatch")
	}
	if d.off != len(data) {
		return d.fail("trailing bytes after snapshot payload")
	}

	p.clock = clock
	p.thrBits = thrBits
	p.table = table
	p.pars = pars
	p.runs = runs
	p.total = total
	return nil
}

// CommitSnapshot swaps a prepared snapshot's state into the DB that
// prepared it, replacing all previous contents. It must not run
// concurrently with other operations on the same DB, and p must not be
// reused afterwards (the DB takes ownership of its arrays).
func (db *DB) CommitSnapshot(p *PreparedSnapshot) {
	if p.db != db {
		panic("index: CommitSnapshot on a DB other than the one that prepared it")
	}
	db.reset()
	db.defaultThreshold = math.Float64frombits(p.thrBits)
	db.clock.Store(p.clock)
	db.segtab.mu.Lock()
	db.segtab.ids = p.table
	db.segtab.refs = make(map[segment.ID]uint32, len(p.table))
	for i, seg := range p.table {
		db.segtab.refs[seg] = uint32(i)
	}
	db.segtab.mu.Unlock()
	var distinct int64
	for si := range db.hashShards {
		sh := &db.hashShards[si]
		sh.mu.Lock()
		sh.run = p.runs[si]
		sh.run.buildSkip(db.shardBitsOf())
		distinct += int64(len(sh.run.hashes))
		for g := range sh.run.hashes {
			s, e := sh.run.bounds(g)
			if e-s >= bigGroupMin {
				set := make(map[uint32]struct{}, e-s)
				for i := s; i < e; i++ {
					set[sh.run.segs[i]] = struct{}{}
				}
				if sh.big == nil {
					sh.big = make(map[uint32]map[uint32]struct{})
				}
				sh.big[sh.run.hashes[g]] = set
			}
		}
		sh.mu.Unlock()
	}
	var parHashes int64
	for _, rec := range p.pars {
		seg := p.table[rec.ref]
		ss := db.segShardFor(seg)
		ss.mu.Lock()
		ss.par[seg] = &parEntry{
			fp:        fingerprint.FromSortedHashes(rec.hashes),
			threshold: rec.threshold,
			updated:   rec.updated,
		}
		ss.mu.Unlock()
		parHashes += int64(len(rec.hashes))
	}
	db.segments.Store(int64(len(p.pars)))
	db.distinct.Store(distinct)
	db.postings.Store(int64(p.total))
	db.parHashes.Store(parHashes)
	db.RecomputeDigests()
}

// EncodeExportBinary encodes an ExportData snapshot into the binary codec,
// producing the same bytes the live DB path (AppendSnapshot) would for the
// same logical state. It is the compatibility path for struct-level
// snapshot saves; speed-critical callers encode from the live DB instead.
func EncodeExportBinary(data ExportData) ([]byte, error) {
	db := New(data.DefaultThreshold)
	if err := db.Import(data); err != nil {
		return nil, err
	}
	return db.AppendSnapshot(nil)
}

// DecodeExportBinary decodes a binary index payload into ExportData — the
// compatibility path for struct-level snapshot loads.
func DecodeExportBinary(payload []byte) (ExportData, error) {
	db := New(0)
	if err := db.LoadSnapshot(payload); err != nil {
		return ExportData{}, err
	}
	return db.Export(), nil
}
