// Package normalize implements step S1 of BrowserFlow's fingerprinting
// pipeline (§4.1): text segments are normalised by removing punctuation and
// whitespace and by folding character case, so that cosmetic edits do not
// perturb fingerprints. "Hello World!" becomes "helloworld".
//
// The package also keeps a byte-offset map back into the original text so
// that fingerprint hashes can be attributed to the exact source passage that
// caused an information disclosure (§4.1: "Provided that the location of the
// corresponding source text for each hash in the fingerprint is also stored,
// it becomes possible to attribute accurately which text segment passages
// caused information disclosure").
package normalize

import (
	"unicode"
	"unicode/utf8"
)

// Result is a normalised text together with a mapping from each normalised
// byte back to the byte offset of the originating rune in the source text.
type Result struct {
	// Orig is the original input string.
	Orig string

	// Text is the normalised text: lower-case letters and digits only.
	Text string

	// Offsets has one entry per byte of Text; Offsets[i] is the byte offset
	// in the original string of the rune that produced Text[i]. int32
	// keeps the map compact on the fingerprinting hot path; segments are
	// paragraphs and pages, far below 2 GiB.
	Offsets []int32
}

// Normalize lower-cases s and drops every rune that is not a letter or a
// digit, recording the origin of each surviving byte.
func Normalize(s string) Result {
	buf := make([]byte, 0, len(s))
	offsets := make([]int32, 0, len(s))
	var enc [utf8.UTFMax]byte
	for i, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			continue
		}
		lr := unicode.ToLower(r)
		n := utf8.EncodeRune(enc[:], lr)
		buf = append(buf, enc[:n]...)
		for j := 0; j < n; j++ {
			offsets = append(offsets, int32(i))
		}
	}
	return Result{Orig: s, Text: string(buf), Offsets: offsets}
}

// AppendText appends the normalised form of s (lower-case letters and
// digits only) to buf and returns the extended slice, without recording
// origin offsets. It is the capacity-reusing path for callers that need
// hashes but not attribution: with sufficient capacity in buf the call
// performs no allocations.
func AppendText(buf []byte, s string) []byte {
	var enc [utf8.UTFMax]byte
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			continue
		}
		n := utf8.EncodeRune(enc[:], unicode.ToLower(r))
		buf = append(buf, enc[:n]...)
	}
	return buf
}

// OrigRange maps a half-open byte range [start, end) of the normalised text
// to the corresponding half-open byte range in the original text, covering
// every originating rune. It returns (0, 0) for an empty or out-of-bounds
// range.
func (r Result) OrigRange(start, end int) (int, int) {
	if start < 0 || end > len(r.Offsets) || start >= end {
		return 0, 0
	}
	origStart := int(r.Offsets[start])
	last := int(r.Offsets[end-1])
	_, size := utf8.DecodeRuneInString(r.Orig[last:])
	if size == 0 {
		size = 1
	}
	return origStart, last + size
}

// Equivalent reports whether two strings normalise to the same text, i.e.
// they differ only in case, whitespace and punctuation.
func Equivalent(a, b string) bool {
	return Normalize(a).Text == Normalize(b).Text
}
