package normalize

import (
	"testing"
	"unicode"
)

// FuzzNormalize checks the core invariants for arbitrary input: no panics,
// idempotence, offsets in range and monotone.
func FuzzNormalize(f *testing.F) {
	for _, s := range []string{
		"",
		"Hello World!",
		"MySQL 5.1",
		"père Noël",
		"机密文件",
		"\xff\xfe invalid utf8 \x80",
		"á combining",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r := Normalize(input)
		if len(r.Offsets) != len(r.Text) {
			t.Fatalf("offsets/text length mismatch: %d vs %d", len(r.Offsets), len(r.Text))
		}
		prev := int32(-1)
		for i, off := range r.Offsets {
			if int(off) >= len(input) || off < 0 {
				t.Fatalf("offset %d out of range at %d", off, i)
			}
			if off < prev {
				t.Fatalf("offsets not monotone at %d", i)
			}
			prev = off
		}
		// Idempotence.
		if twice := Normalize(r.Text).Text; twice != r.Text {
			t.Errorf("not idempotent: %q -> %q", r.Text, twice)
		}
		// Output alphabet: letters and digits only.
		for _, c := range r.Text {
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) {
				t.Fatalf("non-letter %q survived", c)
			}
		}
	})
}
