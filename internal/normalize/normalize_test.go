package normalize

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestNormalizePaperExample(t *testing.T) {
	got := Normalize("Hello World!")
	if got.Text != "helloworld" {
		t.Errorf("Text=%q, want %q", got.Text, "helloworld")
	}
}

func TestNormalizeTable(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{name: "empty", give: "", want: ""},
		{name: "only punctuation", give: "!?.,;: \t\n", want: ""},
		{name: "digits kept", give: "MySQL 5.1!", want: "mysql51"},
		{name: "case folded", give: "ABCdef", want: "abcdef"},
		{name: "unicode letters kept", give: "Città è bella", want: "cittàèbella"},
		{name: "newlines stripped", give: "a\nb\r\nc", want: "abc"},
		{name: "interior spaces", give: "the  quick   fox", want: "thequickfox"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Normalize(tt.give); got.Text != tt.want {
				t.Errorf("Normalize(%q).Text=%q, want %q", tt.give, got.Text, tt.want)
			}
		})
	}
}

func TestOffsetsPointAtOriginRunes(t *testing.T) {
	orig := "He said: «Bonjour, Monde»!"
	r := Normalize(orig)
	if len(r.Offsets) != len(r.Text) {
		t.Fatalf("len(Offsets)=%d, want %d", len(r.Offsets), len(r.Text))
	}
	// Every offset must point at a letter or digit in the original.
	for i, off := range r.Offsets {
		c := []rune(orig[off:])[0]
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) {
			t.Errorf("Offsets[%d]=%d points at %q, not a letter/digit", i, off, c)
		}
	}
	// Offsets must be non-decreasing.
	for i := 1; i < len(r.Offsets); i++ {
		if r.Offsets[i] < r.Offsets[i-1] {
			t.Errorf("Offsets not monotone at %d: %d < %d", i, r.Offsets[i], r.Offsets[i-1])
		}
	}
}

func TestOrigRange(t *testing.T) {
	orig := "Hello, World!"
	r := Normalize(orig) // "helloworld"
	start, end := r.OrigRange(5, 10)
	if got := orig[start:end]; got != "World" {
		t.Errorf("OrigRange(5,10) -> %q, want %q", got, "World")
	}
	start, end = r.OrigRange(0, 5)
	if got := orig[start:end]; got != "Hello" {
		t.Errorf("OrigRange(0,5) -> %q, want %q", got, "Hello")
	}
}

func TestOrigRangeMultibyte(t *testing.T) {
	orig := "père Noël"
	r := Normalize(orig) // "pèrenoël"
	start, end := r.OrigRange(0, len(r.Text))
	if start != 0 {
		t.Errorf("start=%d, want 0", start)
	}
	if got := orig[start:end]; !strings.HasSuffix(got, "Noël") {
		t.Errorf("OrigRange full -> %q, want suffix %q", got, "Noël")
	}
}

func TestOrigRangeInvalid(t *testing.T) {
	r := Normalize("abc")
	for _, tt := range []struct{ start, end int }{
		{-1, 2}, {0, 4}, {2, 2}, {3, 1},
	} {
		if s, e := r.OrigRange(tt.start, tt.end); s != 0 || e != 0 {
			t.Errorf("OrigRange(%d,%d)=(%d,%d), want (0,0)", tt.start, tt.end, s, e)
		}
	}
}

func TestEquivalent(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"Hello World!", "helloworld", true},
		{"the quick fox", "THE QUICK FOX.", true},
		{"abc", "abd", false},
		{"", "  ...  ", true},
	}
	for _, tt := range tests {
		if got := Equivalent(tt.a, tt.b); got != tt.want {
			t.Errorf("Equivalent(%q,%q)=%v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: normalisation is idempotent — normalising the normalised text is
// a no-op.
func TestQuickIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s).Text
		twice := Normalize(once).Text
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: case and whitespace perturbations never change the normalised
// text.
func TestQuickCaseWhitespaceInvariant(t *testing.T) {
	f := func(s string) bool {
		perturbed := strings.ToUpper(strings.ReplaceAll(s, "a", " a "))
		base := strings.ToUpper(s)
		return Normalize(perturbed).Text == Normalize(base).Text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNormalize(b *testing.B) {
	s := strings.Repeat("The Quick Brown Fox, jumps over the lazy dog! ", 100)
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Normalize(s)
	}
}
