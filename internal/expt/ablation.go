package expt

import (
	"fmt"
	"strings"
	"time"

	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/metrics"
	"github.com/lsds/browserflow/internal/segment"
)

// The ablation experiments quantify the design choices DESIGN.md calls
// out; they have no direct counterpart figure in the paper but back its
// §4.2–4.3 arguments with measurements.

// --- decision cache ---------------------------------------------------------

// AblationCacheResult compares typing latency with the fingerprint-keyed
// decision cache on and off.
type AblationCacheResult struct {
	WithCache    metrics.Summary
	WithoutCache metrics.Summary

	// HitRate is the cache hit fraction during the cached run.
	HitRate float64

	// HitMedian and MissMedian break the cached run down per request:
	// hits skip the disclosure calculation entirely (the <30 ms mass of
	// Figure 12), misses pay for Algorithm 1. Medians are reported
	// because GC pauses skew means at these latencies.
	HitMedian  time.Duration
	MissMedian time.Duration
}

// RunAblationCache types a page of an existing book into a new paragraph
// word by word, with and without the decision cache.
func RunAblationCache(scale Scale, params disclosure.Params) (AblationCacheResult, error) {
	var result AblationCacheResult
	books := dataset.GenerateEbooks(scale.ebookConfig())

	page := books[0].Page(0)

	run := func(disable bool) (metrics.Summary, float64, time.Duration, time.Duration, error) {
		p := params
		p.DisableCache = disable
		tracker, err := disclosure.NewTracker(p)
		if err != nil {
			return metrics.Summary{}, 0, 0, 0, err
		}
		// Seed small "popular passage" paragraphs covering the page
		// *before* the books load, so the typed text overlaps many
		// distinct authoritative sources — the case the paper identifies
		// as the performance driver ("how many popular text passages
		// appear in multiple different paragraphs").
		words := strings.Fields(page)
		const chunkWords = 12
		for c := 0; c*chunkWords < len(words); c++ {
			end := (c + 1) * chunkWords
			if end > len(words) {
				end = len(words)
			}
			seg := segment.ID(fmt.Sprintf("popular#p%d", c))
			if _, err := tracker.ObserveParagraph(seg, strings.Join(words[c*chunkWords:end], " ")); err != nil {
				return metrics.Summary{}, 0, 0, 0, err
			}
		}
		if err := loadBooks(tracker, books); err != nil {
			return metrics.Summary{}, 0, 0, 0, err
		}

		rec := metrics.NewRecorder()
		hitRec, missRec := metrics.NewRecorder(), metrics.NewRecorder()
		hits, total := 0, 0
		cur := ""
		for _, w := range words {
			if cur != "" {
				cur += " "
			}
			cur += w
			start := time.Now()
			report, err := tracker.ObserveParagraph("cache-probe#p0", cur)
			elapsed := time.Since(start)
			if err != nil {
				return metrics.Summary{}, 0, 0, 0, err
			}
			rec.Add(elapsed)
			total++
			if report.CacheHit {
				hits++
				hitRec.Add(elapsed)
			} else {
				missRec.Add(elapsed)
			}
		}
		var rate float64
		if total > 0 {
			rate = float64(hits) / float64(total)
		}
		return rec.Summarize(), rate, hitRec.Percentile(50), missRec.Percentile(50), nil
	}

	var err error
	if result.WithCache, result.HitRate, result.HitMedian, result.MissMedian, err = run(false); err != nil {
		return AblationCacheResult{}, err
	}
	if result.WithoutCache, _, _, _, err = run(true); err != nil {
		return AblationCacheResult{}, err
	}
	return result, nil
}

// Format renders the comparison.
func (r AblationCacheResult) Format() string {
	return fmt.Sprintf("Ablation: decision cache\nwith cache:    %s\n  hit rate %.2f, median hit %v, median miss %v\nwithout cache: %s\n",
		r.WithCache, r.HitRate, r.HitMedian, r.MissMedian, r.WithoutCache)
}

// --- authoritative fingerprints ---------------------------------------------

// AblationAuthoritativeResult counts Figure 7-style misattributions with
// the authoritative adjustment on and off.
type AblationAuthoritativeResult struct {
	// Scenarios is the number of A/B/C overlap chains evaluated.
	Scenarios int

	// FalsePositivesWith is the misattribution count with authoritative
	// fingerprints (should be 0).
	FalsePositivesWith int

	// FalsePositivesWithout is the count with plain pairwise containment.
	FalsePositivesWithout int
}

// RunAblationAuthoritative replays N independent overlap chains: A holds a
// paragraph, B holds a superset, C copies the shared text. Blaming B is a
// false positive because all sensitive content in C originates from A.
func RunAblationAuthoritative(scale Scale, params disclosure.Params, scenarios int) (AblationAuthoritativeResult, error) {
	if scenarios < 1 {
		scenarios = 10
	}
	result := AblationAuthoritativeResult{Scenarios: scenarios}

	run := func(disable bool) (int, error) {
		p := params
		p.DisableAuthoritative = disable
		tracker, err := disclosure.NewTracker(p)
		if err != nil {
			return 0, err
		}
		gen := dataset.NewTextGen(scale.Seed+555, 3000)
		falsePositives := 0
		for i := 0; i < scenarios; i++ {
			shared := gen.Paragraph(6, 9)
			segA := segment.ID(fmt.Sprintf("A%d#p0", i))
			segB := segment.ID(fmt.Sprintf("B%d#p0", i))
			segC := segment.ID(fmt.Sprintf("C%d#p0", i))
			if _, err := tracker.ObserveParagraph(segA, shared); err != nil {
				return 0, err
			}
			if _, err := tracker.ObserveParagraph(segB, shared+" "+gen.Sentence(10, 14)); err != nil {
				return 0, err
			}
			report, err := tracker.ObserveParagraph(segC, shared)
			if err != nil {
				return 0, err
			}
			for _, src := range report.Sources {
				if src.Seg == segB {
					falsePositives++
				}
			}
		}
		return falsePositives, nil
	}

	var err error
	if result.FalsePositivesWith, err = run(false); err != nil {
		return AblationAuthoritativeResult{}, err
	}
	if result.FalsePositivesWithout, err = run(true); err != nil {
		return AblationAuthoritativeResult{}, err
	}
	return result, nil
}

// Format renders the comparison.
func (r AblationAuthoritativeResult) Format() string {
	return fmt.Sprintf("Ablation: authoritative fingerprints (%d overlap chains)\nfalse positives with authoritative:    %d\nfalse positives without (pairwise):    %d\n",
		r.Scenarios, r.FalsePositivesWith, r.FalsePositivesWithout)
}

// --- winnowing parameters ----------------------------------------------------

// WinnowParamPoint is one (n-gram, window) grid cell.
type WinnowParamPoint struct {
	NGram  int
	Window int

	// HashesPerKB is the fingerprint density.
	HashesPerKB float64

	// EditContainment is the containment retained after a 10% word edit —
	// higher means more robust tracking.
	EditContainment float64
}

// AblationWinnowResult is the parameter grid.
type AblationWinnowResult struct {
	Points []WinnowParamPoint
}

// RunAblationWinnowParams sweeps n-gram and window sizes, measuring the
// density/robustness trade-off that motivates the paper's 15/30 choice.
func RunAblationWinnowParams(scale Scale) (AblationWinnowResult, error) {
	gen := dataset.NewTextGen(scale.Seed+999, 2000)
	paragraph := gen.Paragraph(30, 30)
	edited := gen.LightEdit(paragraph, 0.1)

	var result AblationWinnowResult
	for _, ngram := range []int{8, 15, 25} {
		for _, window := range []int{10, 30, 60} {
			cfg := fingerprint.Config{NGram: ngram, Window: window}
			fa, err := fingerprint.Compute(paragraph, cfg)
			if err != nil {
				return AblationWinnowResult{}, err
			}
			fb, err := fingerprint.Compute(edited, cfg)
			if err != nil {
				return AblationWinnowResult{}, err
			}
			result.Points = append(result.Points, WinnowParamPoint{
				NGram:           ngram,
				Window:          window,
				HashesPerKB:     float64(fa.Len()) / (float64(len(paragraph)) / 1024),
				EditContainment: fa.Containment(fb),
			})
		}
	}
	return result, nil
}

// Format renders the grid.
func (r AblationWinnowResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Ablation: winnowing parameters (density vs robustness)\n")
	sb.WriteString("ngram window  hashes/KB  containment-after-10%-edit\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%5d %6d %10.1f  %10.3f\n", p.NGram, p.Window, p.HashesPerKB, p.EditContainment)
	}
	return sb.String()
}
