// Package expt implements one runner per table and figure of the paper's
// evaluation (§6). Each runner returns structured results plus a formatted
// text report with the same rows/series the paper plots; cmd/bfbench and
// the root bench harness call into it.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// corpora); the shapes — who wins, decay curves, crossover thresholds —
// are the reproduction target. EXPERIMENTS.md records paper-vs-measured.
package expt

import (
	"github.com/lsds/browserflow/internal/dataset"
)

// Scale selects corpus sizes: laptop-scale defaults for tests and quick
// runs, larger values to approach the paper's Table 1.
type Scale struct {
	// Seed drives every generator.
	Seed int64

	// Revisions per Wikipedia-style article (paper: 1000).
	Revisions int

	// ArticleParagraphs per article (paper: ~60).
	ArticleParagraphs int

	// ExtraArticles beyond the eight named ones (paper: 100 articles).
	ExtraArticles int

	// Books in the e-book corpus (paper: 180).
	Books int

	// BookMinBytes/BookMaxBytes bound book sizes (paper: 300 KB–5.5 MB).
	BookMinBytes int
	BookMaxBytes int

	// PopularPassages injects shared passages across books (§6.2's
	// performance driver); see dataset.EbookConfig.
	PopularPassages int
}

// DefaultScale is the laptop-scale configuration used by `go test` and the
// default bfbench run.
func DefaultScale() Scale {
	return Scale{
		Seed:              1,
		Revisions:         120,
		ArticleParagraphs: 24,
		Books:             8,
		BookMinBytes:      100 << 10,
		BookMaxBytes:      400 << 10,
		PopularPassages:   8,
	}
}

// PaperScale approximates the paper's corpus sizes. Running the full
// performance experiments at this scale takes minutes and gigabytes.
func PaperScale() Scale {
	return Scale{
		Seed:              1,
		Revisions:         1000,
		ArticleParagraphs: 60,
		ExtraArticles:     92,
		Books:             180,
		BookMinBytes:      300 << 10,
		BookMaxBytes:      5500 << 10,
		PopularPassages:   50,
	}
}

func (s Scale) revisionConfig() dataset.RevisionCorpusConfig {
	cfg := dataset.DefaultRevisionCorpusConfig()
	cfg.Seed = s.Seed
	cfg.Revisions = s.Revisions
	cfg.Paragraphs = s.ArticleParagraphs
	cfg.ExtraArticles = s.ExtraArticles
	return cfg
}

func (s Scale) ebookConfig() dataset.EbookConfig {
	return dataset.EbookConfig{
		Seed:            s.Seed + 41,
		Books:           s.Books,
		MinBytes:        s.BookMinBytes,
		MaxBytes:        s.BookMaxBytes,
		PopularPassages: s.PopularPassages,
	}
}

// Table1Result is the dataset summary (Table 1).
type Table1Result struct {
	Rows []dataset.Stats
}

// RunTable1 generates every dataset at the given scale and summarises it.
func RunTable1(scale Scale) Table1Result {
	articles := dataset.GenerateRevisionCorpus(scale.revisionConfig())
	chapters := dataset.GenerateManuals(scale.Seed)
	books := dataset.GenerateEbooks(scale.ebookConfig())

	rows := []dataset.Stats{dataset.RevisionCorpusStats(articles)}
	rows = append(rows, dataset.ManualStats(chapters)...)
	rows = append(rows, dataset.EbookStats(books))
	return Table1Result{Rows: rows}
}

// Format renders the table.
func (r Table1Result) Format() string {
	return "Table 1: Datasets used for information disclosure evaluation\n" +
		dataset.FormatTable(r.Rows)
}
