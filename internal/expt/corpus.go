package expt

// Corpus-scale index benchmark backing BENCH_7.json (§6.2: the paper loads
// 180 e-books, ~10M distinct hashes, into the fingerprint database). The
// run streams synthetic e-books into one tracker and pauses at each target
// hash count (1M/5M/10M by default) to measure:
//
//   - memory bytes per distinct hash (GC'd heap delta over the empty
//     tracker, plus the index's own ApproxBytes model),
//   - steady-state observe latency at that database size,
//   - binary checkpoint capture / mmap recovery wall time, against the
//     legacy JSON parse when enabled, and
//   - replica bootstrap time (apply a received snapshot blob and persist
//     it verbatim).
//
// An optional hard RSS budget turns the run into a regression gate:
// `make check` replays the 1M step and fails if the process exceeds the
// budget.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// CorpusConfig controls the corpus-scale benchmark.
type CorpusConfig struct {
	// Seed drives the e-book generator.
	Seed int64

	// StepHashes lists the distinct-hash targets, ascending. The corpus
	// grows through them in one pass; each step is measured when its
	// target is first reached.
	StepHashes []int

	// Probes is how many distinct ~2KB pages rotate through the observe
	// benchmark at each step.
	Probes int

	// CompareJSON also times the legacy JSON snapshot parse at each step.
	// Disable for budget-gated runs: materialising the JSON image inflates
	// peak memory far beyond the index itself.
	CompareJSON bool

	// RSSBudgetMB, when positive, fails the run if the process RSS
	// (after returning freed memory to the OS) exceeds the budget at the
	// end of any step.
	RSSBudgetMB int

	// Dir is the scratch directory for checkpoint files; empty uses a
	// temp directory that is removed afterwards.
	Dir string

	// Logf, when set, receives progress lines (books ingested, steps
	// reached) during the long load phase.
	Logf func(format string, args ...interface{})
}

// DefaultCorpusConfig returns the 1M/5M/10M ladder of the scalability
// acceptance runs.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Seed:        42,
		StepHashes:  []int{1_000_000, 5_000_000, 10_000_000},
		Probes:      8,
		CompareJSON: true,
	}
}

// CorpusStep is one measured database size.
type CorpusStep struct {
	TargetHashes   int `json:"targetHashes"`
	DistinctHashes int `json:"distinctHashes"`
	Postings       int `json:"postings"`
	Segments       int `json:"segments"`
	CorpusBytes    int `json:"corpusBytes"`

	LoadSeconds float64 `json:"loadSeconds"`

	HeapBytesPerHash   float64 `json:"heapBytesPerHash"`
	ApproxBytesPerHash float64 `json:"approxBytesPerHash"`

	ObserveNsPerOp     float64 `json:"observeNsPerOp"`
	ObserveAllocsPerOp int64   `json:"observeAllocsPerOp"`

	SnapshotBytes  int     `json:"snapshotBytes"`
	CaptureSeconds float64 `json:"captureSeconds"`
	// RecoverSeconds is a cold recovery from disk through the mmap path;
	// BootstrapSeconds applies an in-memory snapshot blob and persists it
	// verbatim, the replica bootstrap sequence.
	RecoverSeconds    float64 `json:"recoverSeconds"`
	BootstrapSeconds  float64 `json:"bootstrapSeconds"`
	LegacyJSONSeconds float64 `json:"legacyJsonSeconds,omitempty"`
	RecoverySpeedup   float64 `json:"recoverySpeedup,omitempty"`

	RSSMB float64 `json:"rssMb,omitempty"`
}

// CorpusResult is the full BENCH_7.json payload.
type CorpusResult struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	RSSBudgetMB int          `json:"rssBudgetMb,omitempty"`
	Steps       []CorpusStep `json:"steps"`
}

// errCorpusDone stops e-book generation once the last step is measured.
var errCorpusDone = errors.New("corpus: all steps measured")

// RunCorpus executes the corpus-scale benchmark.
func RunCorpus(cfg CorpusConfig, params disclosure.Params) (CorpusResult, error) {
	if len(cfg.StepHashes) == 0 {
		return CorpusResult{}, fmt.Errorf("corpus: no step targets")
	}
	for i := 1; i < len(cfg.StepHashes); i++ {
		if cfg.StepHashes[i] <= cfg.StepHashes[i-1] {
			return CorpusResult{}, fmt.Errorf("corpus: step targets must ascend")
		}
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 8
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "bfcorpus")
		if err != nil {
			return CorpusResult{}, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return CorpusResult{}, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	baseHeap := heapAlloc()

	result := CorpusResult{GOMAXPROCS: runtime.GOMAXPROCS(0), RSSBudgetMB: cfg.RSSBudgetMB}

	maxTarget := cfg.StepHashes[len(cfg.StepHashes)-1]
	ebooks := dataset.EbookConfig{
		Seed:  cfg.Seed,
		Books: maxTarget/15_000 + 8, // generous: generation stops at the last target
		// Book sizes around the paper's median, sharing popular passages.
		MinBytes:        400 << 10,
		MaxBytes:        800 << 10,
		PopularPassages: 8,
	}

	var (
		sc          fingerprint.Scratch
		hashBuf     []uint32
		probePages  []string
		corpusBytes int
		books       int
		step        int
		loadStart   = time.Now()
	)
	pars := tracker.Paragraphs()
	genErr := dataset.GenerateEbooksFunc(ebooks, func(book dataset.Ebook) error {
		for i, p := range book.Paragraphs {
			var err error
			hashBuf, err = sc.AppendHashes(hashBuf[:0], p, params.Fingerprint)
			if err != nil {
				return err
			}
			fp := fingerprint.FromSortedHashes(append(make([]uint32, 0, len(hashBuf)), hashBuf...))
			pars.Update(segment.ID(fmt.Sprintf("%s#p%d", book.Title, i)), fp)
		}
		corpusBytes += book.SizeBytes()
		books++
		if len(probePages) < cfg.Probes {
			probePages = append(probePages, book.Page(books*3))
		}
		if books%32 == 0 {
			logf("corpus: %d books, %d distinct hashes", books, pars.Stats().DistinctHashes)
		}
		for step < len(cfg.StepHashes) && pars.Stats().DistinctHashes >= cfg.StepHashes[step] {
			s, err := measureCorpusStep(cfg, params, tracker, registry, dir, cfg.StepHashes[step], corpusBytes, time.Since(loadStart), baseHeap, probePages)
			if err != nil {
				return err
			}
			logf("corpus: step %d hashes done (%.1f B/hash heap, observe %.0f ns/op)", s.TargetHashes, s.HeapBytesPerHash, s.ObserveNsPerOp)
			result.Steps = append(result.Steps, s)
			step++
			loadStart = time.Now() // next step times only its incremental load
		}
		if step == len(cfg.StepHashes) {
			return errCorpusDone
		}
		return nil
	})
	if genErr != nil && !errors.Is(genErr, errCorpusDone) {
		return CorpusResult{}, genErr
	}
	if step < len(cfg.StepHashes) {
		return CorpusResult{}, fmt.Errorf("corpus: exhausted %d books at %d distinct hashes, before the %d target",
			books, pars.Stats().DistinctHashes, cfg.StepHashes[step])
	}
	return result, nil
}

// measureCorpusStep runs the per-step measurements against the live
// tracker.
func measureCorpusStep(cfg CorpusConfig, params disclosure.Params, tracker *disclosure.Tracker, registry *tdm.Registry, dir string, target, corpusBytes int, load time.Duration, baseHeap uint64, probePages []string) (CorpusStep, error) {
	stats := tracker.Paragraphs().Stats()
	s := CorpusStep{
		TargetHashes:   target,
		DistinctHashes: stats.DistinctHashes,
		Postings:       stats.Postings,
		Segments:       stats.Segments,
		CorpusBytes:    corpusBytes,
		LoadSeconds:    load.Seconds(),
	}
	if heap := heapAlloc(); heap > baseHeap && stats.DistinctHashes > 0 {
		s.HeapBytesPerHash = float64(heap-baseHeap) / float64(stats.DistinctHashes)
	}
	if stats.DistinctHashes > 0 {
		s.ApproxBytesPerHash = float64(stats.ApproxBytes) / float64(stats.DistinctHashes)
	}

	// Observe latency at this database size: rotating probe pages under
	// one segment, so every iteration is a decision-cache miss running
	// Algorithm 1 plus a (mostly no-op) index update against the full
	// corpus.
	if len(probePages) > 0 {
		var obsErr error
		res := testing.Benchmark(func(b *testing.B) {
			seg := segment.ID("corpus/probe#p0")
			for _, p := range probePages {
				if _, err := tracker.ObserveParagraph(seg, p); err != nil {
					obsErr = err
					b.FailNow()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tracker.ObserveParagraph(seg, probePages[i%len(probePages)]); err != nil {
					obsErr = err
					b.FailNow()
				}
			}
		})
		if obsErr != nil {
			return CorpusStep{}, fmt.Errorf("corpus observe at %d: %w", target, obsErr)
		}
		s.ObserveNsPerOp = float64(res.NsPerOp())
		s.ObserveAllocsPerOp = res.AllocsPerOp()
	}

	// Checkpoint capture + mmap recovery from disk. The observe benchmark
	// above added the probe segment, so re-count for the recovery check.
	wantDistinct := tracker.Paragraphs().Stats().DistinctHashes
	start := time.Now()
	blob, err := store.CaptureBytes(tracker, registry, 1)
	if err != nil {
		return CorpusStep{}, fmt.Errorf("corpus capture at %d: %w", target, err)
	}
	s.CaptureSeconds = time.Since(start).Seconds()
	s.SnapshotBytes = len(blob)

	ckptDir := filepath.Join(dir, fmt.Sprintf("step-%d", target))
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		return CorpusStep{}, err
	}
	fs := wal.OSFS{}
	if err := store.SaveCheckpointBytes(fs, filepath.Join(ckptDir, store.CheckpointName(1)), blob, nil); err != nil {
		return CorpusStep{}, err
	}
	cold, err := disclosure.NewTracker(params)
	if err != nil {
		return CorpusStep{}, err
	}
	coldReg := tdm.NewRegistry(audit.NewLog())
	start = time.Now()
	if _, _, _, err := store.RecoverNewestCheckpoint(fs, ckptDir, nil, cold, coldReg, nil); err != nil {
		return CorpusStep{}, fmt.Errorf("corpus recover at %d: %w", target, err)
	}
	s.RecoverSeconds = time.Since(start).Seconds()
	if got := cold.Paragraphs().Stats().DistinctHashes; got != wantDistinct {
		return CorpusStep{}, fmt.Errorf("corpus recover at %d: %d distinct hashes, want %d", target, got, wantDistinct)
	}

	// Replica bootstrap: apply the received blob and persist it verbatim.
	boot, err := disclosure.NewTracker(params)
	if err != nil {
		return CorpusStep{}, err
	}
	bootReg := tdm.NewRegistry(audit.NewLog())
	start = time.Now()
	if _, err := store.RestoreBytes("primary snapshot", blob, boot, bootReg); err != nil {
		return CorpusStep{}, fmt.Errorf("corpus bootstrap at %d: %w", target, err)
	}
	if err := store.SaveCheckpointBytes(fs, filepath.Join(ckptDir, store.CheckpointName(2)), blob, nil); err != nil {
		return CorpusStep{}, err
	}
	s.BootstrapSeconds = time.Since(start).Seconds()
	boot, bootReg = nil, nil

	// Legacy JSON parse comparison (the pre-binary recovery path).
	if cfg.CompareJSON {
		snap := store.Capture(tracker, registry)
		snap.WALSeg = 1
		data, err := json.Marshal(snap)
		if err != nil {
			return CorpusStep{}, err
		}
		snap = store.Snapshot{}
		legacy, err := disclosure.NewTracker(params)
		if err != nil {
			return CorpusStep{}, err
		}
		legacyReg := tdm.NewRegistry(audit.NewLog())
		start = time.Now()
		var decoded store.Snapshot
		if err := json.Unmarshal(data, &decoded); err != nil {
			return CorpusStep{}, err
		}
		if err := decoded.Restore(legacy, legacyReg); err != nil {
			return CorpusStep{}, err
		}
		s.LegacyJSONSeconds = time.Since(start).Seconds()
		if s.RecoverSeconds > 0 {
			s.RecoverySpeedup = s.LegacyJSONSeconds / s.RecoverSeconds
		}
	}

	// Drop the step's scratch state and return freed spans to the OS
	// before the budget check, so RSS reflects the resident index, not
	// transient measurement garbage.
	cold, coldReg = nil, nil
	debug.FreeOSMemory()
	if rss, ok := processRSSMB(); ok {
		s.RSSMB = rss
		if cfg.RSSBudgetMB > 0 && rss > float64(cfg.RSSBudgetMB) {
			return CorpusStep{}, fmt.Errorf("corpus: RSS %.0f MB exceeds budget %d MB at %d hashes", rss, cfg.RSSBudgetMB, target)
		}
	} else if cfg.RSSBudgetMB > 0 {
		return CorpusStep{}, fmt.Errorf("corpus: RSS budget set but /proc/self/status is unavailable")
	}
	return s, nil
}

// heapAlloc returns the live heap after a full GC.
func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// processRSSMB reads VmRSS from /proc/self/status; ok is false on
// platforms without procfs.
func processRSSMB() (float64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, false
		}
		return kb / 1024, true
	}
	return 0, false
}

// Format renders the result as the table bfbench prints.
func (r CorpusResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Corpus scale (GOMAXPROCS=%d", r.GOMAXPROCS)
	if r.RSSBudgetMB > 0 {
		fmt.Fprintf(&b, ", RSS budget %d MB", r.RSSBudgetMB)
	}
	b.WriteString(")\n\n")
	fmt.Fprintf(&b, "  %10s %10s %9s %8s %9s %9s %9s %9s %9s %9s %8s\n",
		"hashes", "postings", "B/hash", "approx", "obs ns", "load s", "capt s", "recov s", "boot s", "json s", "RSS MB")
	for _, s := range r.Steps {
		json := "-"
		if s.LegacyJSONSeconds > 0 {
			json = fmt.Sprintf("%.2f", s.LegacyJSONSeconds)
		}
		rss := "-"
		if s.RSSMB > 0 {
			rss = fmt.Sprintf("%.0f", s.RSSMB)
		}
		fmt.Fprintf(&b, "  %10d %10d %9.1f %8.1f %9.0f %9.1f %9.2f %9.2f %9.2f %9s %8s\n",
			s.DistinctHashes, s.Postings, s.HeapBytesPerHash, s.ApproxBytesPerHash,
			s.ObserveNsPerOp, s.LoadSeconds, s.CaptureSeconds, s.RecoverSeconds,
			s.BootstrapSeconds, json, rss)
	}
	if n := len(r.Steps); n > 0 {
		last := r.Steps[n-1]
		if last.RecoverySpeedup > 0 {
			fmt.Fprintf(&b, "\n  recovery at %d hashes: %.1fx faster than JSON parse\n",
				last.DistinctHashes, last.RecoverySpeedup)
		}
	}
	return b.String()
}

// FormatCorpusDelta renders a benchstat-style comparison of two corpus
// runs, matching steps by target hash count. Negative deltas are
// improvements for every metric shown.
func FormatCorpusDelta(prev, cur CorpusResult) string {
	prevBy := make(map[int]CorpusStep, len(prev.Steps))
	for _, s := range prev.Steps {
		prevBy[s.TargetHashes] = s
	}
	var b strings.Builder
	b.WriteString("Delta vs previous BENCH_7.json (negative = improvement):\n")
	fmt.Fprintf(&b, "  %10s %-14s %12s %12s %9s\n", "hashes", "metric", "old", "new", "delta")
	wrote := false
	for _, s := range cur.Steps {
		p, ok := prevBy[s.TargetHashes]
		if !ok {
			continue
		}
		wrote = true
		row := func(metric string, old, new float64, format string) {
			if old == 0 {
				return
			}
			fmt.Fprintf(&b, "  %10d %-14s %12s %12s %+8.1f%%\n",
				s.TargetHashes, metric,
				fmt.Sprintf(format, old), fmt.Sprintf(format, new),
				(new-old)/old*100)
		}
		row("B/hash", p.HeapBytesPerHash, s.HeapBytesPerHash, "%.1f")
		row("observe ns/op", p.ObserveNsPerOp, s.ObserveNsPerOp, "%.0f")
		row("recover s", p.RecoverSeconds, s.RecoverSeconds, "%.3f")
		row("bootstrap s", p.BootstrapSeconds, s.BootstrapSeconds, "%.3f")
	}
	if !wrote {
		b.WriteString("  (no matching steps)\n")
	}
	return b.String()
}
