package expt

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/disclosure"
)

// TestRunCorpusSmall exercises the full corpus pipeline — streamed load,
// per-step measurement, binary capture/recover, bootstrap, and the legacy
// JSON comparison — at a CI-friendly scale.
func TestRunCorpusSmall(t *testing.T) {
	cfg := CorpusConfig{
		Seed:        7,
		StepHashes:  []int{20_000, 40_000},
		Probes:      2,
		CompareJSON: true,
		Dir:         t.TempDir(),
	}
	r, err := RunCorpus(cfg, disclosure.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(r.Steps))
	}
	prev := 0
	for _, s := range r.Steps {
		if s.DistinctHashes < s.TargetHashes {
			t.Errorf("step %d: distinct %d below target", s.TargetHashes, s.DistinctHashes)
		}
		if s.DistinctHashes <= prev {
			t.Errorf("step %d: distinct hashes did not grow (%d after %d)", s.TargetHashes, s.DistinctHashes, prev)
		}
		prev = s.DistinctHashes
		if s.HeapBytesPerHash <= 0 || s.ApproxBytesPerHash <= 0 {
			t.Errorf("step %d: missing bytes/hash (heap %.1f approx %.1f)", s.TargetHashes, s.HeapBytesPerHash, s.ApproxBytesPerHash)
		}
		if s.ObserveNsPerOp <= 0 {
			t.Errorf("step %d: missing observe latency", s.TargetHashes)
		}
		if s.SnapshotBytes <= 0 || s.RecoverSeconds <= 0 || s.BootstrapSeconds <= 0 {
			t.Errorf("step %d: missing checkpoint timings: %+v", s.TargetHashes, s)
		}
		if s.LegacyJSONSeconds <= 0 || s.RecoverySpeedup <= 0 {
			t.Errorf("step %d: missing JSON comparison: %+v", s.TargetHashes, s)
		}
	}
	if out := r.Format(); !strings.Contains(out, "Corpus scale") {
		t.Errorf("Format missing header:\n%s", out)
	}
}

// TestRunCorpusRSSBudget proves the budget is a hard failure.
func TestRunCorpusRSSBudget(t *testing.T) {
	if _, ok := processRSSMB(); !ok {
		t.Skip("no /proc/self/status on this platform")
	}
	cfg := CorpusConfig{
		Seed:        7,
		StepHashes:  []int{20_000},
		Probes:      1,
		RSSBudgetMB: 1, // any real process exceeds 1 MB
		Dir:         t.TempDir(),
	}
	if _, err := RunCorpus(cfg, disclosure.DefaultParams()); err == nil {
		t.Fatal("expected RSS budget violation, got nil error")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFormatCorpusDelta(t *testing.T) {
	prev := CorpusResult{Steps: []CorpusStep{{TargetHashes: 1000, HeapBytesPerHash: 100, ObserveNsPerOp: 2000, RecoverSeconds: 1.0, BootstrapSeconds: 0.5}}}
	cur := CorpusResult{Steps: []CorpusStep{{TargetHashes: 1000, HeapBytesPerHash: 50, ObserveNsPerOp: 2200, RecoverSeconds: 0.2, BootstrapSeconds: 0.4}}}
	out := FormatCorpusDelta(prev, cur)
	for _, want := range []string{"B/hash", "-50.0%", "+10.0%", "-80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta output missing %q:\n%s", want, out)
		}
	}
	if out := FormatCorpusDelta(CorpusResult{}, cur); !strings.Contains(out, "no matching steps") {
		t.Errorf("empty prev should say no matching steps:\n%s", out)
	}
}
