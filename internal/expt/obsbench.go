package expt

// Observability-overhead benchmark backing BENCH_5.json. The obs layer
// rides on the Algorithm 1 hot path in three tiers: disabled (no
// registry, untraced context — what BENCH_2 measures), metrics-only
// (RED counters + latency histogram per operation, the default
// production path for requests without an X-BF-Trace header), and fully
// traced (spans recorded into the ring on every operation, the opt-in
// debug path). A fourth tier re-runs the metrics path while a
// background goroutine scrapes the Prometheus exposition on a 50ms
// cadence, proving reads don't stall writers.
//
// The < 5% acceptance bar from the observability PR applies to the
// server's actual write hot path: the batched observe endpoint, where
// the RED wrapper runs once per flush (64 items), not once per item.
// The per-item tiers are reported too as the worst case — a deployment
// that turns off batching pays the whole wrapper per observation.
//
// Tier rounds are interleaved (off, metrics, ... then again) and the
// minimum ns/op per tier is kept, so a noisy-neighbour slowdown hits
// every tier with equal probability instead of biasing one.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
)

// ObsOverheadMode is one instrumentation tier's measured cost.
type ObsOverheadMode struct {
	Mode      string  `json:"mode"`
	NsPerOp   float64 `json:"nsPerOp"`
	OpsPerSec float64 `json:"opsPerSec"`

	// OverheadPct is the slowdown relative to the tier family's "off"
	// baseline, in percent (negative means within noise).
	OverheadPct float64 `json:"overheadPct"`
}

// ObsOverheadResult is the full BENCH_5.json payload.
type ObsOverheadResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	// Goroutines is the concurrency the tiers were measured at.
	Goroutines int `json:"goroutines"`

	// PerOp are the singular-observe tiers: the whole RED wrapper (or
	// span recording) charged to every engine call.
	PerOp []ObsOverheadMode `json:"perOp"`

	// Batch are the batched-flush tiers (ns/item over 64-item flushes):
	// the RED wrapper charged once per flush, as the server's
	// /v1/observe_batch hot path does.
	Batch []ObsOverheadMode `json:"batch"`

	// PerOpMetricsOverheadPct is the singular-path RED overhead — the
	// worst case (informational).
	PerOpMetricsOverheadPct float64 `json:"perOpMetricsOverheadPct"`

	// PerOpTracedOverheadPct is the full-span tier's overhead
	// (informational; tracing is per-request opt-in).
	PerOpTracedOverheadPct float64 `json:"perOpTracedOverheadPct"`

	// BatchMetricsOverheadPct is the batched hot path's RED overhead —
	// the number the < 5% acceptance bar applies to.
	BatchMetricsOverheadPct float64 `json:"batchMetricsOverheadPct"`

	// ScrapeBytes counts exposition bytes served by the background
	// scraper during the metrics+scrape tier (proves it actually ran).
	ScrapeBytes int64 `json:"scrapeBytes"`

	// PassUnder5Pct reports whether BatchMetricsOverheadPct < 5.
	PassUnder5Pct bool `json:"passUnder5Pct"`
}

// obsOverheadEngine builds one fresh engine stack for a tier.
func obsOverheadEngine(params disclosure.Params) (*policy.Engine, error) {
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return nil, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		return nil, err
	}
	return policy.NewEngine(tracker, registry, policy.ModeAdvisory)
}

// obsOverheadObserve is one tier's per-op closure over a fresh engine.
type obsOverheadObserve func(worker int, o HotPathObs) error

// benchObsTier measures one tier at g goroutines over the shared
// pre-fingerprinted streams, mirroring benchConcurrent's shape.
func benchObsTier(mk func() (obsOverheadObserve, error), streams [][]HotPathObs, g int) (testing.BenchmarkResult, error) {
	var setupErr error
	res := testing.Benchmark(func(b *testing.B) {
		observe, err := mk()
		if err != nil {
			setupErr = err
			b.FailNow()
		}
		for w, stream := range streams {
			for _, o := range stream[:len(stream)/2] {
				if err := observe(w, o); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		for w := 0; w < g; w++ {
			n := b.N / g
			if w < b.N%g {
				n++
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				stream := streams[w%len(streams)]
				for i := 0; i < n; i++ {
					if err := observe(w, stream[i%len(stream)]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(w, n)
		}
		wg.Wait()
		if firstErr != nil {
			setupErr = firstErr
			b.FailNow()
		}
	})
	return res, setupErr
}

// obsTier pairs a tier name with its engine+instrumentation factory.
type obsTier struct {
	name string
	mk   func() (obsOverheadObserve, error)
}

// RunObsOverhead produces the BENCH_5.json payload.
func RunObsOverhead(scale Scale, params disclosure.Params) (ObsOverheadResult, error) {
	const (
		workers       = 8
		segsPerWorker = 16
		variants      = 4
		goroutines    = 8
		traceRing     = 4096
		flushSize     = 64
		rounds        = 4
	)
	streams, err := HotPathWorkload(scale, workers, segsPerWorker, variants, params.Fingerprint)
	if err != nil {
		return ObsOverheadResult{}, err
	}
	result := ObsOverheadResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Goroutines: goroutines}

	// testing.Benchmark re-invokes the body with growing b.N, so the
	// scrape tier's setup runs more than once; each new setup stops the
	// previous round's scraper so only one scrapes the live registry.
	var scrapeBytes atomic.Int64
	var scrapeStop chan struct{}
	var scrapeWG sync.WaitGroup
	stopScraper := func() {
		if scrapeStop != nil {
			close(scrapeStop)
			scrapeStop = nil
			scrapeWG.Wait()
		}
	}

	redTier := func(withScraper bool) func() (obsOverheadObserve, error) {
		return func() (obsOverheadObserve, error) {
			engine, err := obsOverheadEngine(params)
			if err != nil {
				return nil, err
			}
			o := obs.New(nil, traceRing)
			reg := o.Registry()
			requests := reg.Counter(`bf_http_requests_total{endpoint="observe",code="200"}`, "Requests by endpoint and status code.")
			latency := reg.Histogram(`bf_http_request_seconds{endpoint="observe"}`, "Request latency by endpoint.", nil)
			rate := reg.RateWindow(`bf_http_request_rate{endpoint="observe"}`, "Requests per second by endpoint.", 10)
			if withScraper {
				stopScraper()
				scrapeStop = make(chan struct{})
				stop := scrapeStop
				scrapeWG.Add(1)
				go func() {
					defer scrapeWG.Done()
					var counting countingWriter
					// 50ms cadence: ~20 scrapes/sec, already two orders of
					// magnitude denser than a real Prometheus interval,
					// without busy-looping a core away from the workload.
					tick := time.NewTicker(50 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							scrapeBytes.Add(counting.n)
							return
						case <-tick.C:
							reg.WritePrometheus(&counting)
						}
					}
				}()
			}
			ctx := context.Background() // obs enabled, no X-BF-Trace header
			return func(_ int, hp HotPathObs) error {
				start := reg.Now()
				_, err := engine.ObserveEditFPCtx(ctx, hp.Seg, "wiki", hp.FP)
				elapsed := reg.Since(start)
				requests.Inc()
				latency.Observe(elapsed)
				rate.MarkAt(start.Add(elapsed))
				return err
			}, nil
		}
	}

	perOpTiers := []obsTier{
		{"off", func() (obsOverheadObserve, error) {
			engine, err := obsOverheadEngine(params)
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			return func(_ int, o HotPathObs) error {
				_, err := engine.ObserveEditFPCtx(ctx, o.Seg, "wiki", o.FP)
				return err
			}, nil
		}},
		{"metrics", redTier(false)},
		{"traced", func() (obsOverheadObserve, error) {
			engine, err := obsOverheadEngine(params)
			if err != nil {
				return nil, err
			}
			o := obs.New(nil, traceRing)
			// One traced context per worker, as if every request carried
			// its own X-BF-Trace header.
			ctxs := make([]context.Context, workers)
			for w := range ctxs {
				ctxs[w] = obs.WithTrace(context.Background(), o.NewTraceID(), o.Traces())
			}
			return func(w int, hp HotPathObs) error {
				ctx := ctxs[w%len(ctxs)]
				start := time.Now()
				_, err := engine.ObserveEditFPCtx(ctx, hp.Seg, "wiki", hp.FP)
				obs.RecordSpan(ctx, "http.observe", start, time.Since(start), err, nil)
				return err
			}, nil
		}},
		{"metrics+scrape", redTier(true)},
	}

	// Batched hot path: flushes of 64 pre-fingerprinted observations, as
	// the server's /v1/observe_batch endpoint sees them; the metrics tier
	// pays the RED wrapper once per flush.
	flushes := make([][]disclosure.BatchObservation, variants)
	for v := 0; v < variants; v++ {
		items := make([]disclosure.BatchObservation, 0, flushSize)
		for k := 0; k < flushSize; k++ {
			o := streams[k%workers][(v*segsPerWorker+k/workers)%len(streams[k%workers])]
			items = append(items, disclosure.BatchObservation{Seg: o.Seg, FP: o.FP})
		}
		flushes[v] = items
	}
	mkBatch := func(withRED bool) func() (obsOverheadObserve, error) {
		return func() (obsOverheadObserve, error) {
			engine, err := obsOverheadEngine(params)
			if err != nil {
				return nil, err
			}
			o := obs.New(nil, traceRing)
			reg := o.Registry()
			requests := reg.Counter(`bf_http_requests_total{endpoint="observe_batch",code="200"}`, "Requests by endpoint and status code.")
			latency := reg.Histogram(`bf_http_request_seconds{endpoint="observe_batch"}`, "Request latency by endpoint.", nil)
			rate := reg.RateWindow(`bf_http_request_rate{endpoint="observe_batch"}`, "Requests per second by endpoint.", 10)
			ctx := context.Background()
			var flushCount atomic.Uint64
			return func(_ int, _ HotPathObs) error {
				items := flushes[int(flushCount.Add(1))%variants]
				if !withRED {
					_, err := engine.ObserveBatchFPCtx(ctx, "wiki", items)
					return err
				}
				start := reg.Now()
				_, err := engine.ObserveBatchFPCtx(ctx, "wiki", items)
				elapsed := reg.Since(start)
				requests.Inc()
				latency.Observe(elapsed)
				rate.MarkAt(start.Add(elapsed))
				return err
			}, nil
		}
	}
	batchTiers := []obsTier{
		{"batch-off", mkBatch(false)},
		{"batch-metrics", mkBatch(true)},
	}

	measure := func(tiers []obsTier, g int) (map[string]float64, error) {
		mins := make(map[string]float64)
		for round := 0; round < rounds; round++ {
			for _, tier := range tiers {
				res, err := benchObsTier(tier.mk, streams, g)
				if tier.name == "metrics+scrape" {
					stopScraper()
				}
				if err != nil {
					return nil, fmt.Errorf("obs-overhead %s: %w", tier.name, err)
				}
				ns := float64(res.NsPerOp())
				if cur, ok := mins[tier.name]; !ok || ns < cur {
					mins[tier.name] = ns
				}
			}
		}
		return mins, nil
	}
	modes := func(tiers []obsTier, mins map[string]float64, base string, perNs float64) []ObsOverheadMode {
		out := make([]ObsOverheadMode, 0, len(tiers))
		for _, tier := range tiers {
			ns := mins[tier.name] / perNs
			ops := 0.0
			if ns > 0 {
				ops = 1e9 / ns
			}
			m := ObsOverheadMode{Mode: tier.name, NsPerOp: ns, OpsPerSec: ops}
			if b := mins[base] / perNs; b > 0 && tier.name != base {
				m.OverheadPct = (ns - b) / b * 100
			}
			out = append(out, m)
		}
		return out
	}

	perOpMins, err := measure(perOpTiers, goroutines)
	if err != nil {
		return ObsOverheadResult{}, err
	}
	result.PerOp = modes(perOpTiers, perOpMins, "off", 1)

	batchMins, err := measure(batchTiers, goroutines)
	if err != nil {
		return ObsOverheadResult{}, err
	}
	result.Batch = modes(batchTiers, batchMins, "batch-off", flushSize)

	for _, m := range result.PerOp {
		switch m.Mode {
		case "metrics":
			result.PerOpMetricsOverheadPct = m.OverheadPct
		case "traced":
			result.PerOpTracedOverheadPct = m.OverheadPct
		}
	}
	for _, m := range result.Batch {
		if m.Mode == "batch-metrics" {
			result.BatchMetricsOverheadPct = m.OverheadPct
		}
	}
	result.ScrapeBytes = scrapeBytes.Load()
	result.PassUnder5Pct = result.BatchMetricsOverheadPct < 5
	return result, nil
}

// countingWriter tallies bytes and discards them; a sync-free io.Writer
// for the single scraper goroutine.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)

// Format renders the result as the table bfbench prints.
func (r ObsOverheadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead (GOMAXPROCS=%d, g=%d, best of interleaved rounds)\n", r.GOMAXPROCS, r.Goroutines)
	b.WriteString("\nSingular observe (RED wrapper per engine call — worst case):\n")
	fmt.Fprintf(&b, "  %-16s %12s %12s %10s\n", "tier", "ns/op", "ops/sec", "overhead")
	for _, m := range r.PerOp {
		fmt.Fprintf(&b, "  %-16s %12.0f %12.0f %9.1f%%\n", m.Mode, m.NsPerOp, m.OpsPerSec, m.OverheadPct)
	}
	b.WriteString("\nBatched observe (RED wrapper per 64-item flush — server hot path, ns/item):\n")
	fmt.Fprintf(&b, "  %-16s %12s %12s %10s\n", "tier", "ns/item", "items/sec", "overhead")
	for _, m := range r.Batch {
		fmt.Fprintf(&b, "  %-16s %12.0f %12.0f %9.1f%%\n", m.Mode, m.NsPerOp, m.OpsPerSec, m.OverheadPct)
	}
	fmt.Fprintf(&b, "\n  scrape served %d exposition bytes during metrics+scrape\n", r.ScrapeBytes)
	verdict := "PASS"
	if !r.PassUnder5Pct {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "  batched hot-path overhead %.1f%% (< 5%% bar: %s)\n", r.BatchMetricsOverheadPct, verdict)
	return b.String()
}
