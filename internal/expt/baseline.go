package expt

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strings"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/dlpmon"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

// The baseline comparison backs §2.2's qualitative argument with
// measurements: a network-level DLP monitor inspects the *wire bytes* of
// each exfiltration scenario, while BrowserFlow inspects the *plaintext
// the user sees* (DOM mutations / pre-encoding request text). Both get the
// same fingerprint parameters and the same sensitive corpus.

// BaselineScenario is one exfiltration path.
type BaselineScenario struct {
	// Name describes the scenario.
	Name string

	// BrowserFlow reports whether BrowserFlow detected the disclosure.
	BrowserFlow bool

	// NetworkDLP reports whether the network monitor detected it.
	NetworkDLP bool
}

// BaselineResult is the comparison table.
type BaselineResult struct {
	Scenarios []BaselineScenario
}

// RunBaselineComparison replays three exfiltration scenarios:
//
//	S1 plaintext HTML form post (wiki)     — visible to both;
//	S2 JSON AJAX mutation (docs)           — network DLP needs a JSON
//	                                          decoder (ours has one);
//	S3 obfuscated envelope (notes)         — network DLP is blind without
//	                                          per-service reverse
//	                                          engineering; BrowserFlow sees
//	                                          the DOM plaintext.
func RunBaselineComparison(scale Scale, params disclosure.Params) (BaselineResult, error) {
	gen := dataset.NewTextGen(scale.Seed+2222, 2000)
	secret := gen.Paragraph(8, 10)

	// BrowserFlow: tracker + engine with the secret observed in the wiki.
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return BaselineResult{}, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: webapp.ServiceDocs, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
		{name: webapp.ServiceNotes, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			return BaselineResult{}, err
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		return BaselineResult{}, err
	}
	if _, err := engine.ObserveEdit("wiki/secret#p0", webapp.ServiceWiki, secret); err != nil {
		return BaselineResult{}, err
	}

	// Network DLP: same corpus, default decoders (form + JSON).
	monitor, err := dlpmon.New(dlpmon.Config{
		Fingerprint: params.Fingerprint,
		Threshold:   params.Tpar,
	})
	if err != nil {
		return BaselineResult{}, err
	}
	if err := monitor.AddSensitive("wiki-secret", secret); err != nil {
		return BaselineResult{}, err
	}

	// BrowserFlow's view is the plaintext in every scenario (DOM text or
	// pre-encoding request text).
	bfDetects := func(dest string) (bool, error) {
		v, err := engine.CheckText(secret, dest)
		if err != nil {
			return false, err
		}
		return v.Violation(), nil
	}

	var result BaselineResult

	// S1: plaintext form post.
	bf, err := bfDetects(webapp.ServiceDocs)
	if err != nil {
		return BaselineResult{}, err
	}
	formBody := url.Values{"content": {secret}, "csrf": {"tok"}}.Encode()
	v1, err := monitor.InspectBody("application/x-www-form-urlencoded", []byte(formBody))
	if err != nil {
		return BaselineResult{}, err
	}
	result.Scenarios = append(result.Scenarios, BaselineScenario{
		Name: "S1 plaintext form post", BrowserFlow: bf, NetworkDLP: v1.Blocked(),
	})

	// S2: JSON AJAX mutation (docs wire format).
	jsonBody, err := json.Marshal(webapp.MutateRequest{Op: "insert", Par: 0, Text: secret})
	if err != nil {
		return BaselineResult{}, err
	}
	v2, err := monitor.InspectBody("application/json", jsonBody)
	if err != nil {
		return BaselineResult{}, err
	}
	result.Scenarios = append(result.Scenarios, BaselineScenario{
		Name: "S2 JSON AJAX mutation", BrowserFlow: bf, NetworkDLP: v2.Blocked(),
	})

	// S3: obfuscated envelope (notes wire format).
	payload, err := webapp.EncodeNotesPayload(webapp.NotesPayload{Paragraphs: []string{secret}})
	if err != nil {
		return BaselineResult{}, err
	}
	envBody := url.Values{"payload": {payload}}.Encode()
	v3, err := monitor.InspectBody("application/x-www-form-urlencoded", []byte(envBody))
	if err != nil {
		return BaselineResult{}, err
	}
	bf3, err := bfDetects(webapp.ServiceNotes)
	if err != nil {
		return BaselineResult{}, err
	}
	result.Scenarios = append(result.Scenarios, BaselineScenario{
		Name: "S3 obfuscated envelope", BrowserFlow: bf3, NetworkDLP: v3.Blocked(),
	})

	return result, nil
}

// Format renders the comparison table.
func (r BaselineResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Baseline comparison: BrowserFlow vs network-level DLP (§2.2)\n")
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", "scenario", "BrowserFlow", "NetworkDLP")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "%-26s %12s %12s\n", s.Name, detected(s.BrowserFlow), detected(s.NetworkDLP))
	}
	return sb.String()
}

func detected(b bool) string {
	if b {
		return "detected"
	}
	return "missed"
}
