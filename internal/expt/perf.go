package expt

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/metrics"
	"github.com/lsds/browserflow/internal/segment"
)

// --- Figure 12: response-time distribution --------------------------------

// Fig12Result holds the three workflow distributions of Figure 12:
// creation-with-overlap (W1), creation-without-overlap (W2) and
// modification (W3).
type Fig12Result struct {
	W1, W2, W3 metrics.Summary

	W1CDF, W2CDF, W3CDF []metrics.CDFPoint

	// Hashes is the fingerprint-database size the workflows ran against.
	Hashes int
}

// RunFigure12 loads the e-book corpus into a tracker and measures the
// disclosure-decision response time for the paper's three editing
// workflows. Each edit step is one tracker observation, timed end to end
// (including the decision cache, which serves the keystrokes that do not
// change the fingerprint).
func RunFigure12(scale Scale, params disclosure.Params) (Fig12Result, error) {
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return Fig12Result{}, err
	}
	books := dataset.GenerateEbooks(scale.ebookConfig())
	if err := loadBooks(tracker, books); err != nil {
		return Fig12Result{}, err
	}

	var result Fig12Result
	result.Hashes = tracker.Paragraphs().Stats().DistinctHashes

	// W1: create a new document and enter a page from an existing e-book.
	page := books[0].Page(0)
	w1 := metrics.NewRecorder()
	if err := typeText(tracker, "w1doc#p0", page, 4, w1); err != nil {
		return Fig12Result{}, err
	}

	// W2: enter an article that shares no text with the corpus, matched
	// in length to the W1 page so the workflows are comparable.
	gen := dataset.NewTextGen(scale.Seed+7777, 2500)
	var freshB strings.Builder
	for len(strings.Fields(freshB.String())) < len(strings.Fields(page)) {
		freshB.WriteString(gen.Sentence(10, 14))
		freshB.WriteByte(' ')
	}
	fresh := strings.Join(strings.Fields(freshB.String())[:len(strings.Fields(page))], " ")
	w2 := metrics.NewRecorder()
	if err := typeText(tracker, "w2doc#p0", fresh, 4, w2); err != nil {
		return Fig12Result{}, err
	}

	// W3: edit a previously-modified version of an e-book page to make it
	// match the original: start from a perturbed copy and restore it word
	// by word.
	original := books[0].Page(4)
	modified := gen.LightEdit(original, 0.3)
	w3 := metrics.NewRecorder()
	if err := restoreText(tracker, "w3doc#p0", modified, original, w3); err != nil {
		return Fig12Result{}, err
	}

	result.W1, result.W2, result.W3 = w1.Summarize(), w2.Summarize(), w3.Summarize()
	result.W1CDF, result.W2CDF, result.W3CDF = w1.CDF(20), w2.CDF(20), w3.CDF(20)
	return result, nil
}

// loadBooks observes every paragraph of every book, populating the
// fingerprint database.
func loadBooks(tracker *disclosure.Tracker, books []dataset.Ebook) error {
	for b, book := range books {
		doc := segment.DocumentID(fmt.Sprintf("ebook/%03d", b))
		for i, p := range book.Paragraphs {
			seg := segment.ParSegmentID(doc, fmt.Sprintf("p%d", i))
			if _, err := tracker.ObserveParagraph(seg, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// typeText simulates typing text into one paragraph in chunks of chunk
// words, timing each disclosure decision.
func typeText(tracker *disclosure.Tracker, seg segment.ID, text string, chunk int, rec *metrics.Recorder) error {
	words := strings.Fields(text)
	if chunk < 1 {
		chunk = 1
	}
	for end := chunk; end <= len(words); end += chunk {
		cur := strings.Join(words[:end], " ")
		start := time.Now()
		if _, err := tracker.ObserveParagraph(seg, cur); err != nil {
			return err
		}
		rec.Add(time.Since(start))
	}
	return nil
}

// restoreText starts from a modified paragraph and restores it towards the
// original word by word, timing each decision (workflow W3).
func restoreText(tracker *disclosure.Tracker, seg segment.ID, modified, original string, rec *metrics.Recorder) error {
	cur := strings.Fields(modified)
	orig := strings.Fields(original)
	n := len(cur)
	if len(orig) < n {
		n = len(orig)
	}
	start := time.Now()
	if _, err := tracker.ObserveParagraph(seg, strings.Join(cur, " ")); err != nil {
		return err
	}
	rec.Add(time.Since(start))
	for i := 0; i < n; i++ {
		if cur[i] == orig[i] {
			continue
		}
		cur[i] = orig[i]
		start := time.Now()
		if _, err := tracker.ObserveParagraph(seg, strings.Join(cur, " ")); err != nil {
			return err
		}
		rec.Add(time.Since(start))
	}
	return nil
}

// Format renders the three distributions.
func (r Fig12Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 12: Distribution of response times for disclosure decisions\n")
	fmt.Fprintf(&sb, "fingerprint database: %d distinct hashes\n", r.Hashes)
	fmt.Fprintf(&sb, "W1 creation-with-overlap:    %s\n", r.W1)
	fmt.Fprintf(&sb, "W2 creation-without-overlap: %s\n", r.W2)
	fmt.Fprintf(&sb, "W3 modification:             %s\n", r.W3)
	sb.WriteString("W1 CDF:\n" + metrics.FormatCDF(r.W1CDF))
	sb.WriteString("W2 CDF:\n" + metrics.FormatCDF(r.W2CDF))
	sb.WriteString("W3 CDF:\n" + metrics.FormatCDF(r.W3CDF))
	return sb.String()
}

// --- Figure 13: scalability with database size -----------------------------

// Fig13Point is one (hashes, P95) sample.
type Fig13Point struct {
	// Hashes is the distinct-hash count in the database.
	Hashes int

	// ApproxMB is the database's rough memory footprint.
	ApproxMB float64

	// P95 is the 95th-percentile response time for pasting a 500-character
	// paragraph from a loaded book into an empty document.
	P95 time.Duration
}

// Fig13Result is the scalability curve.
type Fig13Result struct {
	Points []Fig13Point
}

// RunFigure13 loads the e-book corpus incrementally in steps and, after
// each step, measures the paste-paragraph response time (the paper's
// 500-character paste probe), reporting the 95th percentile.
func RunFigure13(scale Scale, params disclosure.Params, steps, probes int) (Fig13Result, error) {
	if steps < 1 {
		steps = 1
	}
	if probes < 1 {
		probes = 10
	}
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return Fig13Result{}, err
	}
	books := dataset.GenerateEbooks(scale.ebookConfig())

	var result Fig13Result
	perStep := (len(books) + steps - 1) / steps
	loaded := 0
	for step := 0; step < steps && loaded < len(books); step++ {
		end := loaded + perStep
		if end > len(books) {
			end = len(books)
		}
		if err := loadBooks(tracker, books[loaded:end]); err != nil {
			return Fig13Result{}, err
		}
		loaded = end

		// Settle the heap after bulk loading so step boundaries do not
		// charge GC debt to the first probes, then warm up the caches.
		runtime.GC()
		rec := metrics.NewRecorder()
		for warm := 0; warm < 8; warm++ {
			seg := segment.ID(fmt.Sprintf("warm%d-%d#p0", step, warm))
			if _, err := tracker.ObserveParagraph(seg, books[0].Page(warm)); err != nil {
				return Fig13Result{}, err
			}
			tracker.Forget(seg, segment.GranularityParagraph)
		}
		for probe := 0; probe < probes; probe++ {
			// Probe pages always come from the first book so every step
			// measures the same workload against a larger database.
			book := books[0]
			offset := (probe * 13) % maxInt(1, len(book.Paragraphs)-2)
			text := book.Page(offset)
			if len(text) > 500 {
				text = text[:500]
			}
			seg := segment.ID(fmt.Sprintf("probe%d-%d#p0", step, probe))
			start := time.Now()
			if _, err := tracker.ObserveParagraph(seg, text); err != nil {
				return Fig13Result{}, err
			}
			rec.Add(time.Since(start))
			tracker.Forget(seg, segment.GranularityParagraph)
		}
		stats := tracker.Paragraphs().Stats()
		result.Points = append(result.Points, Fig13Point{
			Hashes:   stats.DistinctHashes,
			ApproxMB: float64(stats.ApproxBytes) / (1 << 20),
			P95:      rec.Percentile(95),
		})
	}
	return result, nil
}

// Format renders the scalability curve.
func (r Fig13Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 13: Response time vs size of the hashes database\n")
	sb.WriteString("   hashes   approx-MB        P95\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%9d  %9.1f  %9v\n", p.Hashes, p.ApproxMB, p.P95)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
