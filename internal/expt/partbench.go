package expt

// Scatter-gather scaling benchmark for the partitioned cluster
// (BENCH_9.json). P in-process partition nodes — each with a fixed
// per-node service capacity — sit behind the same Router the bfproxy
// routing tier serves. The workload models a deployed tag service:
// most observes are re-observations that hit the home partition's
// decision cache in one round trip, a few percent are novel segments
// that pay the full two-phase cross-partition resolve. It measures
// aggregate observe throughput at 1, 2 and 3 partitions; the paper's
// claim is that the single-partition round trip keeps the common case
// flat, so capacity scales with the partition count.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/partition"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
)

// PartBenchConfig sizes the partition benchmark.
type PartBenchConfig struct {
	// Observes per measured point.
	Observes int

	// Workers is the number of concurrent clients driving the router.
	Workers int

	// HotSegs is the size of the re-observed working set.
	HotSegs int

	// NovelPermille is the per-mille share of observes that are novel
	// segments (full cross-partition resolve); the rest re-observe the
	// hot set and hit the decision cache.
	NovelPermille int

	// NodeInflight caps concurrent requests per node and ServiceTime is
	// the simulated per-request service cost, together modelling a node
	// of fixed capacity so the scaling measured is the routing tier's,
	// not the test host's.
	NodeInflight int
	ServiceTime  time.Duration

	// Partitions lists the cluster sizes measured.
	Partitions []int

	// Seed feeds the deterministic workload generator.
	Seed int64
}

// DefaultPartBenchConfig returns the sizing used by `make part-bench`.
func DefaultPartBenchConfig() PartBenchConfig {
	return PartBenchConfig{
		Observes:      2400,
		Workers:       48,
		HotSegs:       240,
		NovelPermille: 30,
		NodeInflight:  2,
		ServiceTime:   5 * time.Millisecond,
		Partitions:    []int{1, 2, 3},
		Seed:          1,
	}
}

// PartBenchPoint is one cluster-size measurement.
type PartBenchPoint struct {
	Partitions   int     `json:"partitions"`
	Observes     int     `json:"observes"`
	ObserveQPS   float64 `json:"observeQPS"`
	SpeedupVsOne float64 `json:"speedupVsOne"`
}

// PartBenchResult is the serialisable outcome of the partition
// benchmark.
type PartBenchResult struct {
	HotSegs       int              `json:"hotSegs"`
	NovelPermille int              `json:"novelPermille"`
	NodeInflight  int              `json:"nodeInflight"`
	ServiceMicros float64          `json:"serviceMicros"`
	Points        []PartBenchPoint `json:"points"`
}

// Format renders the result as a text table.
func (r PartBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partitioned observe throughput (%d-segment hot set, %d‰ novel, %d inflight × %.0fµs per node)\n",
		r.HotSegs, r.NovelPermille, r.NodeInflight, r.ServiceMicros)
	fmt.Fprintf(&b, "  %-12s %-10s %-12s %s\n", "partitions", "observes", "observe QPS", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12d %-10d %-12.0f %.2fx\n", p.Partitions, p.Observes, p.ObserveQPS, p.SpeedupVsOne)
	}
	return b.String()
}

// partBenchState is a fixed-ring PartitionState for in-process nodes.
type partBenchState struct {
	id   string
	ring *partition.Ring
	enc  []byte
}

func (ps *partBenchState) ID() string          { return ps.id }
func (ps *partBenchState) RingVersion() uint64 { return ps.ring.Version }
func (ps *partBenchState) Owns(seg segment.ID) bool {
	p, ok := ps.ring.ByID(ps.id)
	return ok && p.Contains(segment.Key(seg))
}
func (ps *partBenchState) KeyRange() (uint32, uint32) {
	p, _ := ps.ring.ByID(ps.id)
	return p.Lo, p.Hi
}
func (ps *partBenchState) Sole() bool        { return len(ps.ring.Partitions) == 1 }
func (ps *partBenchState) Resharding() bool  { return false }
func (ps *partBenchState) RingBytes() []byte { return ps.enc }
func (ps *partBenchState) SetRing([]byte) (uint64, error) {
	return 0, fmt.Errorf("partbench: ring is fixed")
}

// cappedHandler models a node of fixed capacity: at most inflight
// requests in service, each costing cost of simulated work. Without
// this, in-process nodes share the host's cores and the partition count
// would not change aggregate capacity.
type cappedHandler struct {
	h        http.Handler
	inflight chan struct{}
	cost     time.Duration
}

func (c *cappedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.inflight <- struct{}{}
	defer func() { <-c.inflight }()
	time.Sleep(c.cost)
	c.h.ServeHTTP(w, r)
}

// startPartBenchCluster brings up p capped partition nodes and a router
// over them.
func startPartBenchCluster(p int, cfg PartBenchConfig) (*partition.Router, func(), error) {
	var (
		servers []*httptest.Server
		states  []*partBenchState
		urls    []string
	)
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < p; i++ {
		_, _, engine, err := newReplBenchEngine(disclosure.DefaultParams())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		ps := &partBenchState{id: fmt.Sprintf("p%d", i)}
		server, err := tagserver.NewServer(engine, tagserver.WithPartition(ps))
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		srv := httptest.NewServer(&cappedHandler{
			h:        server,
			inflight: make(chan struct{}, cfg.NodeInflight),
			cost:     cfg.ServiceTime,
		})
		servers = append(servers, srv)
		states = append(states, ps)
		urls = append(urls, srv.URL)
	}
	ring, err := evenPartBenchRing(urls)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	enc, err := partition.EncodeRing(ring)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	for _, ps := range states {
		ps.ring, ps.enc = ring, enc
	}
	rt, err := partition.NewRouter(ring, partition.RouterOptions{FP: fingerprint.DefaultConfig()})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	rt.Prime(context.Background())
	return rt, cleanup, nil
}

// evenPartBenchRing splits the keyspace into equal inclusive ranges.
func evenPartBenchRing(urls []string) (*partition.Ring, error) {
	p := len(urls)
	width := (uint64(1) << 32) / uint64(p)
	ring := &partition.Ring{Version: 1}
	for i := 0; i < p; i++ {
		lo := uint32(uint64(i) * width)
		hi := uint32((uint64(1) << 32) - 1)
		if i < p-1 {
			hi = uint32(uint64(i+1)*width - 1)
		}
		ring.Partitions = append(ring.Partitions, partition.Partition{
			ID: fmt.Sprintf("p%d", i), Lo: lo, Hi: hi, Nodes: []string{urls[i]},
		})
	}
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	return ring, nil
}

// partBenchOp is one pre-generated observation.
type partBenchOp struct {
	seg    segment.ID
	hashes []uint32
}

// stratifiedSeg mints a segment name whose placement key falls in
// keyspace sextile i%6, advancing the shared name counter until one
// lands there. Six strata divide evenly into both the 2- and
// 3-partition rings.
func stratifiedSeg(prefix string, i int, seq *int) segment.ID {
	width := (uint64(1) << 32) / 6
	j := uint64(i % 6)
	lo := uint32(j * width)
	hi := uint32((uint64(1) << 32) - 1)
	if j < 5 {
		hi = uint32((j+1)*width - 1)
	}
	for {
		*seq++
		seg := segment.ID(fmt.Sprintf("%s%d#p0", prefix, *seq))
		if k := segment.Key(seg); k >= lo && k <= hi {
			return seg
		}
	}
}

// RunPartition measures aggregate observe throughput as the keyspace
// spreads over 1..N partitions of fixed per-node capacity.
func RunPartition(cfg PartBenchConfig) (PartBenchResult, error) {
	res := PartBenchResult{
		HotSegs:       cfg.HotSegs,
		NovelPermille: cfg.NovelPermille,
		NodeInflight:  cfg.NodeInflight,
		ServiceMicros: float64(cfg.ServiceTime.Microseconds()),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	randHashes := func() []uint32 {
		hs := make([]uint32, 40)
		for i := range hs {
			hs[i] = rng.Uint32()
		}
		return hs
	}
	// A production working set is large enough that hash placement
	// balances; a few hundred benchmark segments are not, and sampling
	// noise would skew per-partition load. Stratify generated segments
	// across keyspace sextiles so the set splits evenly at both two and
	// three partitions.
	nameSeq := 0
	hot := make([]partBenchOp, cfg.HotSegs)
	for i := range hot {
		hot[i] = partBenchOp{
			seg:    stratifiedSeg("pad/hot", i, &nameSeq),
			hashes: randHashes(),
		}
	}

	for _, p := range cfg.Partitions {
		rt, cleanup, err := startPartBenchCluster(p, cfg)
		if err != nil {
			return res, err
		}
		// Warm the working set so the measured 90% are cache hits, the
		// way a long-lived deployment re-observes stable pages.
		ctx := context.Background()
		for _, op := range hot {
			if _, err := rt.ObserveHashes(ctx, "pad", op.seg, op.hashes, ""); err != nil {
				cleanup()
				return res, fmt.Errorf("partbench: warmup p=%d: %w", p, err)
			}
		}
		// Pre-generate each worker's op stream: mostly hot re-observes,
		// NovelPermille novel segments paying the cross-partition resolve.
		per := cfg.Observes / cfg.Workers
		streams := make([][]partBenchOp, cfg.Workers)
		for w := range streams {
			ops := make([]partBenchOp, per)
			for i := range ops {
				if rng.Intn(1000) < cfg.NovelPermille {
					ops[i] = partBenchOp{
						seg:    stratifiedSeg(fmt.Sprintf("pad/novel-p%d-", p), w*per+i, &nameSeq),
						hashes: randHashes(),
					}
				} else {
					ops[i] = hot[rng.Intn(len(hot))]
				}
			}
			streams[w] = ops
		}

		var wg sync.WaitGroup
		errCh := make(chan error, cfg.Workers)
		start := time.Now()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(ops []partBenchOp) {
				defer wg.Done()
				for _, op := range ops {
					if _, err := rt.ObserveHashes(ctx, "pad", op.seg, op.hashes, ""); err != nil {
						errCh <- err
						return
					}
				}
			}(streams[w])
		}
		wg.Wait()
		elapsed := time.Since(start)
		cleanup()
		select {
		case err := <-errCh:
			return res, fmt.Errorf("partbench: p=%d: %w", p, err)
		default:
		}
		point := PartBenchPoint{
			Partitions: p,
			Observes:   per * cfg.Workers,
			ObserveQPS: float64(per*cfg.Workers) / elapsed.Seconds(),
		}
		if len(res.Points) > 0 && res.Points[0].Partitions == 1 && res.Points[0].ObserveQPS > 0 {
			point.SpeedupVsOne = point.ObserveQPS / res.Points[0].ObserveQPS
		} else if p == 1 {
			point.SpeedupVsOne = 1
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}
