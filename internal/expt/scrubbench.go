package expt

// Scrub-overhead benchmark backing BENCH_8.json. The at-rest scrubber
// re-reads every sealed WAL segment and checkpoint on a cadence,
// competing with the foreground journalled observe path for the
// filesystem. This experiment measures that contention directly: the
// same journalled hot-path workload with the scrubber disabled and with
// it running on an aggressively short cadence (1s instead of the 1h
// production default) against a small segment size, so every benchmark
// round seals segments for the scrubber to chew through. The cadence/
// checkpoint ratio (1s vs 250ms) is still several times denser than a
// deployed node's (1h vs minutes), where most WAL bytes are pruned by a
// checkpoint before a scrub pass ever reads them — so the measured
// number is an upper bound on the production duty cycle. The < 3%
// acceptance bar applies to the scrub-on tier's slowdown versus
// scrub-off.
//
// Both tiers run over the in-memory fault-injection filesystem, which
// keeps the run hermetic (no host-disk noise) while still exercising
// the real read/verify path — the scrubber does the same frame-by-frame
// CRC work it would on disk. Tier rounds are interleaved and the
// minimum ns/op kept, mirroring the obs-overhead methodology.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// ScrubOverheadResult is the full BENCH_8.json payload.
type ScrubOverheadResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	// Goroutines is the concurrency the tiers were measured at.
	Goroutines int `json:"goroutines"`

	// Tiers are the journalled-observe costs with the scrubber off and
	// on (1s cadence, 8 MiB/s budget).
	Tiers []ObsOverheadMode `json:"tiers"`

	// OverheadPct is the scrub-on tier's slowdown versus scrub-off, in
	// percent — the number the < 3% acceptance bar applies to.
	OverheadPct float64 `json:"overheadPct"`

	// ScrubPasses / FramesVerified prove the scrubber actually ran
	// during the scrub-on tier (summed across benchmark invocations).
	ScrubPasses    int64 `json:"scrubPasses"`
	FramesVerified int64 `json:"framesVerified"`

	// PassUnder3Pct reports whether OverheadPct < 3.
	PassUnder3Pct bool `json:"passUnder3Pct"`
}

// scrubBenchStack is one tier's engine over a journalled durable store.
type scrubBenchStack struct {
	engine  *policy.Engine
	durable *store.Durable
}

func (s *scrubBenchStack) close() {
	if s.durable != nil {
		s.durable.Close() //nolint:errcheck — benchmark teardown
	}
}

// newScrubBenchStack builds a fresh engine journalled into a durable
// store on its own in-memory filesystem.
func newScrubBenchStack(params disclosure.Params, scrubEvery time.Duration) (*scrubBenchStack, error) {
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return nil, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		return nil, err
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		return nil, err
	}
	durable, err := store.OpenDurable(store.DurableOptions{
		Dir:   "/bench",
		FS:    faultinject.NewMemFS(1),
		Fsync: wal.SyncAlways,
		// Small segments so rotation — and therefore sealed files for
		// the scrubber — happens continuously during the run. The
		// background checkpointer runs in both tiers (equal cost) and
		// prunes covered segments, bounding the per-pass scrub working
		// set the way any production durable's does; without it the
		// directory grows monotonically and the scrubber degenerates
		// into a full-time re-reader of an unbounded backlog, which no
		// deployed configuration resembles.
		SegmentBytes:    256 << 10,
		CheckpointEvery: 250 * time.Millisecond,
		ScrubEvery:      scrubEvery,
		ScrubRateMB:     8,
	}, tracker, registry)
	if err != nil {
		return nil, err
	}
	engine.SetJournal(durable)
	return &scrubBenchStack{engine: engine, durable: durable}, nil
}

// benchScrubTier measures one tier at g goroutines, closing the durable
// (and its scrub loop) after each benchmark invocation.
func benchScrubTier(params disclosure.Params, scrubEvery time.Duration, streams [][]HotPathObs, g int) (testing.BenchmarkResult, store.ScrubStats, error) {
	var setupErr error
	var scrub store.ScrubStats
	res := testing.Benchmark(func(b *testing.B) {
		stack, err := newScrubBenchStack(params, scrubEvery)
		if err != nil {
			setupErr = err
			b.FailNow()
		}
		defer func() {
			s := stack.durable.Stats().Scrub
			scrub.Passes += s.Passes
			scrub.FramesVerified += s.FramesVerified
			stack.close()
		}()
		for _, stream := range streams {
			for _, o := range stream[:len(stream)/2] {
				if _, err := stack.engine.ObserveEditFP(o.Seg, "wiki", o.FP); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		for w := 0; w < g; w++ {
			n := b.N / g
			if w < b.N%g {
				n++
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				stream := streams[w%len(streams)]
				for i := 0; i < n; i++ {
					if _, err := stack.engine.ObserveEditFP(stream[i%len(stream)].Seg, "wiki", stream[i%len(stream)].FP); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(w, n)
		}
		wg.Wait()
		if firstErr != nil {
			setupErr = firstErr
			b.FailNow()
		}
	})
	return res, scrub, setupErr
}

// RunScrubOverhead produces the BENCH_8.json payload.
func RunScrubOverhead(scale Scale, params disclosure.Params) (ScrubOverheadResult, error) {
	const (
		workers       = 8
		segsPerWorker = 16
		variants      = 4
		goroutines    = 8
		rounds        = 4
		scrubCadence  = time.Second
	)
	streams, err := HotPathWorkload(scale, workers, segsPerWorker, variants, params.Fingerprint)
	if err != nil {
		return ScrubOverheadResult{}, err
	}
	result := ScrubOverheadResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Goroutines: goroutines}

	tiers := []struct {
		name       string
		scrubEvery time.Duration
	}{
		{"scrub-off", 0},
		{"scrub-on", scrubCadence},
	}
	mins := make(map[string]float64)
	for round := 0; round < rounds; round++ {
		for _, tier := range tiers {
			res, scrub, err := benchScrubTier(params, tier.scrubEvery, streams, goroutines)
			if err != nil {
				return ScrubOverheadResult{}, fmt.Errorf("scrub-overhead %s: %w", tier.name, err)
			}
			if tier.name == "scrub-on" {
				result.ScrubPasses += scrub.Passes
				result.FramesVerified += scrub.FramesVerified
			}
			ns := float64(res.NsPerOp())
			if cur, ok := mins[tier.name]; !ok || ns < cur {
				mins[tier.name] = ns
			}
		}
	}
	for _, tier := range tiers {
		ns := mins[tier.name]
		ops := 0.0
		if ns > 0 {
			ops = 1e9 / ns
		}
		m := ObsOverheadMode{Mode: tier.name, NsPerOp: ns, OpsPerSec: ops}
		if base := mins["scrub-off"]; base > 0 && tier.name != "scrub-off" {
			m.OverheadPct = (ns - base) / base * 100
		}
		result.Tiers = append(result.Tiers, m)
	}
	for _, m := range result.Tiers {
		if m.Mode == "scrub-on" {
			result.OverheadPct = m.OverheadPct
		}
	}
	if result.ScrubPasses == 0 {
		return result, fmt.Errorf("scrub-overhead: scrubber never completed a pass during the scrub-on tier")
	}
	result.PassUnder3Pct = result.OverheadPct < 3
	return result, nil
}

// Format renders the result as the table bfbench prints.
func (r ScrubOverheadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scrub overhead (GOMAXPROCS=%d, g=%d, best of interleaved rounds)\n", r.GOMAXPROCS, r.Goroutines)
	b.WriteString("\nJournalled observe with the at-rest scrubber off vs on (1s cadence):\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s %10s\n", "tier", "ns/op", "ops/sec", "overhead")
	for _, m := range r.Tiers {
		fmt.Fprintf(&b, "  %-12s %12.0f %12.0f %9.1f%%\n", m.Mode, m.NsPerOp, m.OpsPerSec, m.OverheadPct)
	}
	fmt.Fprintf(&b, "\n  scrubber completed %d passes, re-verified %d frames during scrub-on\n", r.ScrubPasses, r.FramesVerified)
	verdict := "PASS"
	if !r.PassUnder3Pct {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "  scrub-on overhead %.1f%% (< 3%% bar: %s)\n", r.OverheadPct, verdict)
	return b.String()
}
