package expt

import (
	"fmt"
	"strings"

	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/fingerprint"
)

// --- Figure 10: manuals, BrowserFlow vs ground truth ----------------------

// Fig10Row is one version's bar pair.
type Fig10Row struct {
	Version string

	// BrowserFlowPct is the percentage of base paragraphs BrowserFlow
	// reports as disclosed by this version.
	BrowserFlowPct float64

	// GroundTruthPct is the human-expert (generator edit log) percentage.
	GroundTruthPct float64
}

// Fig10Chapter is one chapter's chart.
type Fig10Chapter struct {
	Chapter string
	Rows    []Fig10Row
}

// Fig10Result holds the four sub-figures 10a–10d.
type Fig10Result struct {
	Chapters []Fig10Chapter
}

// RunFigure10 replays each chapter's versions and compares BrowserFlow's
// paragraph-disclosure decisions against the generator's ground truth.
func RunFigure10(scale Scale, params fingerprint.Config, tpar float64) (Fig10Result, error) {
	chapters := dataset.GenerateManuals(scale.Seed)
	var result Fig10Result
	for _, c := range chapters {
		fc, err := chapterFigure(c, params, tpar)
		if err != nil {
			return Fig10Result{}, err
		}
		result.Chapters = append(result.Chapters, fc)
	}
	return result, nil
}

// chapterFigure measures disclosure of the base version's paragraphs by
// each later version. Paragraphs whose fingerprint is empty are still part
// of the percentages (they are the systematic false negatives the paper
// reports); Figure 11 filters them out separately.
func chapterFigure(c dataset.Chapter, params fingerprint.Config, tpar float64) (Fig10Chapter, error) {
	base := c.Base()
	baseFPs := make([]*fingerprint.Fingerprint, len(base.Paragraphs))
	for i, p := range base.Paragraphs {
		fp, err := fingerprint.Compute(p, params)
		if err != nil {
			return Fig10Chapter{}, err
		}
		baseFPs[i] = fp
	}
	fc := Fig10Chapter{Chapter: c.Name}
	for _, v := range c.Versions {
		verText := strings.Join(v.Paragraphs, "\n\n")
		verFP, err := fingerprint.Compute(verText, params)
		if err != nil {
			return Fig10Chapter{}, err
		}
		detected := 0
		for _, fp := range baseFPs {
			if !fp.Empty() && fp.Containment(verFP) >= tpar {
				detected++
			}
		}
		total := float64(len(base.Paragraphs))
		fc.Rows = append(fc.Rows, Fig10Row{
			Version:        v.Label,
			BrowserFlowPct: 100 * float64(detected) / total,
			GroundTruthPct: 100 * float64(v.GroundTruthDisclosed()) / total,
		})
	}
	return fc, nil
}

// Format renders the four sub-figures.
func (r Fig10Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: Paragraph disclosure (Manuals dataset)\n")
	for _, c := range r.Chapters {
		fmt.Fprintf(&sb, "%s:\n", c.Chapter)
		fmt.Fprintf(&sb, "  %-8s %12s %12s\n", "version", "BrowserFlow", "GroundTruth")
		for _, row := range c.Rows {
			fmt.Fprintf(&sb, "  %-8s %11.1f%% %11.1f%%\n", row.Version, row.BrowserFlowPct, row.GroundTruthPct)
		}
	}
	return sb.String()
}

// --- Figure 11: paragraph disclosure threshold sweep -----------------------

// Fig11Point is one (Tpar, ratio) sample.
type Fig11Point struct {
	Tpar float64

	// Ratio is total BrowserFlow-detected disclosures over total
	// ground-truth disclosures, across all chapters and versions; 1 means
	// agreement, >1 false positives, <1 false negatives.
	Ratio float64
}

// Fig11Result is the threshold-sweep curve.
type Fig11Result struct {
	Points []Fig11Point
}

// RunFigure11 sweeps Tpar over [0, 1] in the given step. Following §6.1,
// base paragraphs with empty fingerprints are excluded to remove the
// systematic short-paragraph error.
func RunFigure11(scale Scale, params fingerprint.Config, step float64) (Fig11Result, error) {
	if step <= 0 {
		step = 0.1
	}
	chapters := dataset.GenerateManuals(scale.Seed)

	// Precompute base fingerprints and version fingerprints once.
	type chapterData struct {
		baseFPs  []*fingerprint.Fingerprint
		baseEdit [][]dataset.EditKind // per version
		verFPs   []*fingerprint.Fingerprint
	}
	var data []chapterData
	for _, c := range chapters {
		var cd chapterData
		for _, p := range c.Base().Paragraphs {
			fp, err := fingerprint.Compute(p, params)
			if err != nil {
				return Fig11Result{}, err
			}
			cd.baseFPs = append(cd.baseFPs, fp)
		}
		for _, v := range c.Versions[1:] {
			fp, err := fingerprint.Compute(strings.Join(v.Paragraphs, "\n\n"), params)
			if err != nil {
				return Fig11Result{}, err
			}
			cd.verFPs = append(cd.verFPs, fp)
			cd.baseEdit = append(cd.baseEdit, v.BaseEdits)
		}
		data = append(data, cd)
	}

	var result Fig11Result
	for tpar := 0.0; tpar <= 1.0+1e-9; tpar += step {
		detected, truth := 0, 0
		for _, cd := range data {
			for v, verFP := range cd.verFPs {
				for i, fp := range cd.baseFPs {
					if fp.Empty() {
						continue // systematic error excluded (§6.1)
					}
					if cd.baseEdit[v][i].Discloses() {
						truth++
					}
					if fp.Containment(verFP) >= tpar {
						detected++
					}
				}
			}
		}
		ratio := 0.0
		if truth > 0 {
			ratio = float64(detected) / float64(truth)
		}
		result.Points = append(result.Points, Fig11Point{Tpar: tpar, Ratio: ratio})
	}
	return result, nil
}

// Format renders the sweep.
func (r Fig11Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: Impact of paragraph disclosure threshold\n")
	sb.WriteString("Tpar   detected/ground-truth\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%4.1f   %6.3f\n", p.Tpar, p.Ratio)
	}
	return sb.String()
}

// RatioAt returns the ratio nearest a given Tpar.
func (r Fig11Result) RatioAt(tpar float64) float64 {
	best, bestDist := 0.0, 1e9
	for _, p := range r.Points {
		d := p.Tpar - tpar
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = p.Ratio, d
		}
	}
	return best
}
