package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// The organisation simulation is an end-to-end effectiveness experiment
// with exact ground truth: simulated employees create and copy text
// between the three services of §2, and every copy event is labelled a
// priori as a policy violation or not. BrowserFlow's warnings are then
// scored as precision/recall against that label — the overall-system
// complement to the per-figure experiments.

// OrgSimConfig controls the simulation.
type OrgSimConfig struct {
	// Seed drives all randomness.
	Seed int64

	// Events is the number of user actions to simulate.
	Events int

	// CopyFraction is the probability that an event is a copy (vs fresh
	// text creation).
	CopyFraction float64

	// RephraseFraction is the probability that a copy is fully rephrased
	// (escaping fingerprint tracking — the known false-negative class).
	RephraseFraction float64

	// SuppressFraction is the probability that a user who gets a warning
	// deliberately declassifies (suppresses the violating tags) — the
	// accountable-override workflow of §3.1.
	SuppressFraction float64
}

// DefaultOrgSimConfig returns a laptop-scale simulation.
func DefaultOrgSimConfig() OrgSimConfig {
	return OrgSimConfig{
		Seed:             1,
		Events:           400,
		CopyFraction:     0.4,
		RephraseFraction: 0.15,
		SuppressFraction: 0.2,
	}
}

// OrgSimResult scores BrowserFlow against the simulation's ground truth.
type OrgSimResult struct {
	// Events is the number of actions simulated.
	Events int

	// Copies is the number of copy events.
	Copies int

	// TruthViolations is the number of copies that violated policy
	// (tagged source, under-privileged destination, content preserved).
	TruthViolations int

	// RephrasedViolations is the subset whose content was fully rephrased
	// (undetectable by design — §4.4).
	RephrasedViolations int

	// TruePositives / FalsePositives / FalseNegatives score the verdicts.
	TruePositives  int
	FalsePositives int
	FalseNegatives int

	// Suppressions counts deliberate user declassifications after a
	// warning; AuditEntries is the resulting audit-trail size (every
	// suppression must be accounted for).
	Suppressions int
	AuditEntries int
}

// Precision returns TP / (TP + FP).
func (r OrgSimResult) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall returns TP / (TP + FN) over all ground-truth violations,
// including the rephrased ones fingerprints cannot see.
func (r OrgSimResult) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// DetectableRecall excludes the rephrased copies — the recall over
// violations fingerprint tracking can in principle detect.
func (r OrgSimResult) DetectableRecall() float64 {
	detectable := r.TruePositives + r.FalseNegatives - r.RephrasedViolations
	if detectable <= 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(detectable)
}

// simParagraph is one live paragraph in the simulated organisation.
type simParagraph struct {
	seg     segment.ID
	service string
	text    string

	// sensitiveFrom is the originating tagged service if the content (or
	// its lineage) is confidential, "" otherwise.
	sensitiveFrom string
}

// RunOrgSim runs the simulation.
func RunOrgSim(cfg OrgSimConfig, params disclosure.Params) (OrgSimResult, error) {
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return OrgSimResult{}, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	services := []struct {
		name   string
		tag    tdm.Tag
		public bool
	}{
		{name: "itool", tag: "ti"},
		{name: "wiki", tag: "tw"},
		{name: "docs", public: true},
	}
	privileged := map[string]map[string]bool{ // dest -> source tags allowed
		"itool": {"ti": true},
		"wiki":  {"tw": true},
		"docs":  {},
	}
	for _, svc := range services {
		lp, lc := tdm.NewTagSet(), tdm.NewTagSet()
		if !svc.public {
			lp.Add(svc.tag)
			lc.Add(svc.tag)
		}
		if err := registry.RegisterService(svc.name, lp, lc); err != nil {
			return OrgSimResult{}, err
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		return OrgSimResult{}, err
	}

	gen := dataset.NewTextGen(cfg.Seed+31, 2500)
	rng := rand.New(rand.NewSource(cfg.Seed * 61))
	var (
		result OrgSimResult
		pars   []simParagraph
	)

	observe := func(p simParagraph) (policy.Verdict, error) {
		return engine.ObserveEdit(p.seg, p.service, p.text)
	}

	for ev := 0; ev < cfg.Events; ev++ {
		result.Events++
		svc := services[rng.Intn(len(services))]

		if len(pars) == 0 || rng.Float64() >= cfg.CopyFraction {
			// Fresh text created in svc.
			p := simParagraph{
				seg:     segment.ID(fmt.Sprintf("%s/doc%d#p0", svc.name, ev)),
				service: svc.name,
				text:    gen.Paragraph(4, 7),
			}
			if !svc.public {
				p.sensitiveFrom = svc.name
			}
			if _, err := observe(p); err != nil {
				return OrgSimResult{}, err
			}
			pars = append(pars, p)
			continue
		}

		// Copy an existing paragraph into svc.
		src := pars[rng.Intn(len(pars))]
		result.Copies++
		text := src.text
		rephrased := false
		switch r := rng.Float64(); {
		case r < cfg.RephraseFraction:
			text = gen.Rephrase(text)
			rephrased = true
		case r < cfg.RephraseFraction+0.3:
			text = gen.LightEdit(text, 0.05)
		}
		dst := simParagraph{
			seg:     segment.ID(fmt.Sprintf("%s/doc%d#p0", svc.name, ev)),
			service: svc.name,
			text:    text,
		}
		// Lineage: a faithful copy keeps the *original* source's
		// sensitivity — public text pasted into a tagged service stays
		// public, because its authoritative origin is the public service
		// (Figure 3, step 3). A rephrased copy is new text: if it is born
		// in a tagged service it becomes that service's data (default
		// confidentiality assignment, §3.1).
		if !rephrased {
			dst.sensitiveFrom = src.sensitiveFrom
		} else if !svc.public {
			dst.sensitiveFrom = svc.name
		}

		// Ground truth: the copy violates policy when confidential content
		// lands in a service not privileged for its source tag. Rephrased
		// copies still count (the expert sees the concept) — they are the
		// built-in false negatives.
		truthViolation := false
		if src.sensitiveFrom != "" {
			srcTag := string(services[indexOfService(services, src.sensitiveFrom)].tag)
			if !privileged[svc.name][srcTag] {
				truthViolation = true
			}
		}
		if truthViolation {
			result.TruthViolations++
			if rephrased {
				result.RephrasedViolations++
			}
		}

		verdict, err := observe(dst)
		if err != nil {
			return OrgSimResult{}, err
		}
		detected := verdict.Violation()
		switch {
		case detected && truthViolation:
			result.TruePositives++
		case detected && !truthViolation:
			result.FalsePositives++
		case !detected && truthViolation:
			result.FalseNegatives++
		}

		// §3.1 declassification workflow: some warned users deliberately
		// suppress the violating tags (audited) so the copy may stay.
		if detected && rng.Float64() < cfg.SuppressFraction {
			user := fmt.Sprintf("user%d", rng.Intn(20))
			for _, tag := range verdict.Violating {
				if err := registry.SuppressTag(user, dst.seg, tag, "orgsim declassification"); err != nil {
					return OrgSimResult{}, err
				}
			}
			result.Suppressions++
			// After suppression the segment must be releasable to its own
			// service again.
			after, err := engine.CheckUpload(dst.seg, svc.name)
			if err != nil {
				return OrgSimResult{}, err
			}
			if after.Violation() {
				return OrgSimResult{}, fmt.Errorf("suppression did not clear violation for %s", dst.seg)
			}
		}
		pars = append(pars, dst)
	}
	result.AuditEntries = registry.Audit().Len()
	return result, nil
}

func indexOfService(services []struct {
	name   string
	tag    tdm.Tag
	public bool
}, name string) int {
	for i, s := range services {
		if s.name == name {
			return i
		}
	}
	return 0
}

// OrgSimSweep aggregates the simulation across seeds, showing the headline
// precision/recall numbers are not a single-seed artefact.
type OrgSimSweep struct {
	Runs []OrgSimResult
}

// RunOrgSimSweep runs the simulation for seeds base..base+n-1.
func RunOrgSimSweep(cfg OrgSimConfig, params disclosure.Params, n int) (OrgSimSweep, error) {
	if n < 1 {
		n = 1
	}
	var sweep OrgSimSweep
	base := cfg.Seed
	for i := 0; i < n; i++ {
		cfg.Seed = base + int64(i)
		r, err := RunOrgSim(cfg, params)
		if err != nil {
			return OrgSimSweep{}, err
		}
		sweep.Runs = append(sweep.Runs, r)
	}
	return sweep, nil
}

// MinPrecision returns the lowest precision across runs.
func (s OrgSimSweep) MinPrecision() float64 {
	min := 1.0
	for _, r := range s.Runs {
		if p := r.Precision(); p < min {
			min = p
		}
	}
	return min
}

// MinDetectableRecall returns the lowest detectable recall across runs.
func (s OrgSimSweep) MinDetectableRecall() float64 {
	min := 1.0
	for _, r := range s.Runs {
		if dr := r.DetectableRecall(); dr < min {
			min = dr
		}
	}
	return min
}

// Format renders the sweep.
func (s OrgSimSweep) Format() string {
	var sb strings.Builder
	sb.WriteString("Organisation simulation sweep\n")
	fmt.Fprintf(&sb, "%4s %8s %8s %10s %18s\n", "run", "copies", "truth", "precision", "detectable-recall")
	for i, r := range s.Runs {
		fmt.Fprintf(&sb, "%4d %8d %8d %10.3f %18.3f\n", i, r.Copies, r.TruthViolations, r.Precision(), r.DetectableRecall())
	}
	fmt.Fprintf(&sb, "min precision=%.3f min detectable-recall=%.3f over %d seeds\n",
		s.MinPrecision(), s.MinDetectableRecall(), len(s.Runs))
	return sb.String()
}

// Format renders the scorecard.
func (r OrgSimResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Organisation simulation: end-to-end detection vs ground truth\n")
	fmt.Fprintf(&sb, "events=%d copies=%d ground-truth violations=%d (rephrased %d)\n",
		r.Events, r.Copies, r.TruthViolations, r.RephrasedViolations)
	fmt.Fprintf(&sb, "TP=%d FP=%d FN=%d\n", r.TruePositives, r.FalsePositives, r.FalseNegatives)
	fmt.Fprintf(&sb, "precision=%.3f recall=%.3f detectable-recall=%.3f\n",
		r.Precision(), r.Recall(), r.DetectableRecall())
	fmt.Fprintf(&sb, "user declassifications=%d (audit entries=%d)\n", r.Suppressions, r.AuditEntries)
	return sb.String()
}
