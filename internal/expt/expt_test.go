package expt

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
)

// testScale keeps experiment tests fast while preserving shapes.
func testScale() Scale {
	return Scale{
		Seed:              1,
		Revisions:         60,
		ArticleParagraphs: 12,
		Books:             2,
		BookMinBytes:      20 << 10,
		BookMaxBytes:      30 << 10,
	}
}

func testDisclosureParams() disclosure.Params {
	p := disclosure.DefaultParams()
	return p
}

func TestRunTable1(t *testing.T) {
	r := RunTable1(testScale())
	if len(r.Rows) != 6 {
		t.Fatalf("rows=%d, want 6 (wikipedia + 4 manuals + ebooks)", len(r.Rows))
	}
	out := r.Format()
	for _, want := range []string{"Wikipedia", "Manuals", "Ebooks", "IPhone Camera"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestRunFigure8(t *testing.T) {
	r := RunFigure8(testScale())
	if len(r.Points) != 8 {
		t.Fatalf("points=%d, want 8 articles", len(r.Points))
	}
	last := r.Points[len(r.Points)-1]
	if last.Fraction != 1.0 {
		t.Errorf("CDF must end at 1.0, got %v", last.Fraction)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].RelChange < r.Points[i-1].RelChange {
			t.Error("CDF values not sorted")
		}
	}
	if !strings.Contains(r.Format(), "Figure 8") {
		t.Error("format header missing")
	}
}

func TestRunFigure9Shapes(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	stable, err := RunFigure9(testScale(), true, 6, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	volatile, err := RunFigure9(testScale(), false, 6, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(stable.Series) != 4 || len(volatile.Series) != 4 {
		t.Fatalf("series=%d/%d, want 4/4", len(stable.Series), len(volatile.Series))
	}
	// Paper shape: stable articles stay highly disclosing; volatile
	// articles decay. Compare aggregate final percentages.
	var stableFinal, volatileFinal float64
	for _, s := range stable.Series {
		stableFinal += s.FinalPct()
	}
	for _, s := range volatile.Series {
		volatileFinal += s.FinalPct()
	}
	stableFinal /= 4
	volatileFinal /= 4
	if stableFinal < 70 {
		t.Errorf("stable articles final disclosure %v%%, want >= 70%%", stableFinal)
	}
	if volatileFinal >= stableFinal {
		t.Errorf("volatile (%v%%) should decay below stable (%v%%)", volatileFinal, stableFinal)
	}
	if !strings.Contains(stable.Format(), "Figure 9a") || !strings.Contains(volatile.Format(), "Figure 9b") {
		t.Error("format headers wrong")
	}
}

func TestRunFigure9DocGranularitySimilarShape(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	stable, err := RunFigure9Doc(testScale(), true, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	volatile, err := RunFigure9Doc(testScale(), false, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stableFinal, volatileFinal float64
	for _, s := range stable.Series {
		stableFinal += s.FinalDdoc()
	}
	for _, s := range volatile.Series {
		volatileFinal += s.FinalDdoc()
	}
	stableFinal /= float64(len(stable.Series))
	volatileFinal /= float64(len(volatile.Series))
	// §6.1: document-granularity results are similar — stable articles
	// keep high Ddoc, volatile ones decay.
	if stableFinal < 0.7 {
		t.Errorf("stable final Ddoc=%v, want >= 0.7", stableFinal)
	}
	if volatileFinal >= stableFinal {
		t.Errorf("volatile (%v) should decay below stable (%v)", volatileFinal, stableFinal)
	}
	if !strings.Contains(stable.Format(), "document granularity") {
		t.Error("format header missing")
	}
}

func TestRunFigure10TracksGroundTruth(t *testing.T) {
	r, err := RunFigure10(testScale(), fingerprint.DefaultConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Chapters) != 4 {
		t.Fatalf("chapters=%d, want 4", len(r.Chapters))
	}
	byName := make(map[string][]Fig10Row)
	for _, c := range r.Chapters {
		byName[c.Chapter] = c.Rows
		if len(c.Rows) != 4 {
			t.Errorf("%s: rows=%d, want 4", c.Chapter, len(c.Rows))
		}
		// Base version always fully self-disclosing (modulo empty
		// fingerprints, which the generator's paragraphs avoid).
		if c.Rows[0].BrowserFlowPct < 95 {
			t.Errorf("%s: base BrowserFlow=%v%%, want ~100%%", c.Chapter, c.Rows[0].BrowserFlowPct)
		}
		// BrowserFlow must track ground truth within 20 points everywhere
		// (the paper: "Overall BrowserFlow's disclosure decisions match
		// the human expert").
		for _, row := range c.Rows {
			diff := row.BrowserFlowPct - row.GroundTruthPct
			if diff < 0 {
				diff = -diff
			}
			if diff > 20 {
				t.Errorf("%s %s: BF=%v%% GT=%v%% diff > 20", c.Chapter, row.Version, row.BrowserFlowPct, row.GroundTruthPct)
			}
		}
	}
	// Shape: iPhone chapters decay to near zero; What's MySQL stays high.
	camera := byName["IPhone Camera"]
	if camera[3].BrowserFlowPct > 25 {
		t.Errorf("iPhone Camera iOS7 BF=%v%%, want near 0", camera[3].BrowserFlowPct)
	}
	whats := byName["MySQL What's MySQL"]
	if whats[3].BrowserFlowPct < 70 {
		t.Errorf("What's MySQL 5.1 BF=%v%%, want high", whats[3].BrowserFlowPct)
	}
	if !strings.Contains(r.Format(), "Figure 10") {
		t.Error("format header missing")
	}
}

func TestRunFigure11ThresholdSweep(t *testing.T) {
	r, err := RunFigure11(testScale(), fingerprint.DefaultConfig(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 11 {
		t.Fatalf("points=%d, want 11", len(r.Points))
	}
	// Ratio decreases monotonically with Tpar.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Ratio > r.Points[i-1].Ratio+1e-9 {
			t.Errorf("ratio not monotone at Tpar=%v", r.Points[i].Tpar)
		}
	}
	// Paper shape: agreement within ~10% for Tpar in [0.2, 0.8].
	for _, tpar := range []float64{0.2, 0.5, 0.8} {
		ratio := r.RatioAt(tpar)
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("ratio at Tpar=%v is %v, want within [0.75, 1.25]", tpar, ratio)
		}
	}
	if !strings.Contains(r.Format(), "Figure 11") {
		t.Error("format header missing")
	}
}

func TestRunFigure12Workflows(t *testing.T) {
	r, err := RunFigure12(testScale(), testDisclosureParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Hashes == 0 {
		t.Error("no hashes loaded")
	}
	for name, s := range map[string]struct {
		count int
	}{
		"W1": {count: r.W1.Count},
		"W2": {count: r.W2.Count},
		"W3": {count: r.W3.Count},
	} {
		if s.count == 0 {
			t.Errorf("%s recorded no samples", name)
		}
	}
	if len(r.W1CDF) == 0 || len(r.W2CDF) == 0 || len(r.W3CDF) == 0 {
		t.Error("missing CDFs")
	}
	if !strings.Contains(r.Format(), "Figure 12") {
		t.Error("format header missing")
	}
}

func TestRunFigure13SubLinear(t *testing.T) {
	r, err := RunFigure13(testScale(), testDisclosureParams(), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points=%d, want 2", len(r.Points))
	}
	if r.Points[1].Hashes <= r.Points[0].Hashes {
		t.Error("hash count must grow across steps")
	}
	for _, p := range r.Points {
		if p.P95 <= 0 {
			t.Errorf("P95=%v, want > 0", p.P95)
		}
	}
	if !strings.Contains(r.Format(), "Figure 13") {
		t.Error("format header missing")
	}
}

func TestRunAblationCache(t *testing.T) {
	r, err := RunAblationCache(testScale(), testDisclosureParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.HitRate <= 0.2 {
		t.Errorf("hit rate=%v, want substantial (word-level typing rarely changes the fingerprint)", r.HitRate)
	}
	if r.WithCache.Count == 0 || r.WithoutCache.Count == 0 {
		t.Error("missing samples")
	}
	if !strings.Contains(r.Format(), "decision cache") {
		t.Error("format header missing")
	}
}

func TestRunAblationAuthoritative(t *testing.T) {
	r, err := RunAblationAuthoritative(testScale(), testDisclosureParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.FalsePositivesWith != 0 {
		t.Errorf("authoritative fingerprints produced %d false positives, want 0", r.FalsePositivesWith)
	}
	if r.FalsePositivesWithout == 0 {
		t.Error("pairwise containment produced no false positives — scenario broken")
	}
	if !strings.Contains(r.Format(), "authoritative") {
		t.Error("format header missing")
	}
}

func TestRunAblationWinnowParams(t *testing.T) {
	r, err := RunAblationWinnowParams(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points=%d, want 9", len(r.Points))
	}
	// Larger windows select fewer hashes (lower density).
	var small, large float64
	for _, p := range r.Points {
		if p.NGram == 15 && p.Window == 10 {
			small = p.HashesPerKB
		}
		if p.NGram == 15 && p.Window == 60 {
			large = p.HashesPerKB
		}
	}
	if large >= small {
		t.Errorf("window 60 density %v >= window 10 density %v", large, small)
	}
	if !strings.Contains(r.Format(), "winnowing") {
		t.Error("format header missing")
	}
}

func TestRunUsabilityComparison(t *testing.T) {
	r, err := RunUsabilityComparison(testScale(), testDisclosureParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	byName := map[string]UsabilityRow{}
	for _, row := range r.Rows {
		byName[row.System] = row
	}
	// No protection: leaky but fully functional.
	if byName["none"].SensitiveProtected || !byName["none"].PublicSearchable {
		t.Errorf("none=%+v", byName["none"])
	}
	// Encrypt-all: confidential but breaks search.
	if !byName["encrypt-all"].SensitiveProtected || byName["encrypt-all"].PublicSearchable {
		t.Errorf("encrypt-all=%+v", byName["encrypt-all"])
	}
	// BrowserFlow: confidential AND search keeps working — the paper's
	// selling point.
	if !byName["browserflow"].SensitiveProtected || !byName["browserflow"].PublicSearchable {
		t.Errorf("browserflow=%+v", byName["browserflow"])
	}
	if !strings.Contains(r.Format(), "Usability") {
		t.Error("format header missing")
	}
}

func TestRunOrgSim(t *testing.T) {
	cfg := DefaultOrgSimConfig()
	cfg.Events = 250
	r, err := RunOrgSim(cfg, testDisclosureParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Copies == 0 || r.TruthViolations == 0 {
		t.Fatalf("degenerate simulation: %+v", r)
	}
	// Precision must be high: warnings only fire on genuinely sensitive
	// lineage.
	if p := r.Precision(); p < 0.9 {
		t.Errorf("precision=%v, want >= 0.9", p)
	}
	// Detectable recall (excluding rephrased copies) must be high.
	if dr := r.DetectableRecall(); dr < 0.85 {
		t.Errorf("detectable recall=%v, want >= 0.85", dr)
	}
	// Total recall is strictly lower when rephrased violations exist —
	// the §4.4 limitation, quantified.
	if r.RephrasedViolations > 0 && r.Recall() >= r.DetectableRecall() {
		t.Errorf("recall=%v should be below detectable recall=%v", r.Recall(), r.DetectableRecall())
	}
	out := r.Format()
	if !strings.Contains(out, "precision") {
		t.Errorf("format: %q", out)
	}
}

func TestRunOrgSimSweep(t *testing.T) {
	cfg := DefaultOrgSimConfig()
	cfg.Events = 150
	sweep, err := RunOrgSimSweep(cfg, testDisclosureParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Runs) != 3 {
		t.Fatalf("runs=%d", len(sweep.Runs))
	}
	if p := sweep.MinPrecision(); p < 0.9 {
		t.Errorf("min precision=%v across seeds, want >= 0.9", p)
	}
	if dr := sweep.MinDetectableRecall(); dr < 0.8 {
		t.Errorf("min detectable recall=%v across seeds, want >= 0.8", dr)
	}
	if !strings.Contains(sweep.Format(), "sweep") {
		t.Error("format header missing")
	}
}

func TestRunBaselineComparison(t *testing.T) {
	r, err := RunBaselineComparison(testScale(), testDisclosureParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 3 {
		t.Fatalf("scenarios=%d, want 3", len(r.Scenarios))
	}
	byName := map[string]BaselineScenario{}
	for _, s := range r.Scenarios {
		byName[s.Name] = s
		if !s.BrowserFlow {
			t.Errorf("%s: BrowserFlow missed the disclosure", s.Name)
		}
	}
	if !byName["S1 plaintext form post"].NetworkDLP {
		t.Error("S1: network DLP should detect plaintext form posts")
	}
	if !byName["S2 JSON AJAX mutation"].NetworkDLP {
		t.Error("S2: network DLP with a JSON decoder should detect")
	}
	if byName["S3 obfuscated envelope"].NetworkDLP {
		t.Error("S3: network DLP should be blind to the obfuscated envelope")
	}
	out := r.Format()
	if !strings.Contains(out, "missed") || !strings.Contains(out, "detected") {
		t.Errorf("format: %q", out)
	}
}

func TestPaperScaleIsLarger(t *testing.T) {
	d, p := DefaultScale(), PaperScale()
	if p.Revisions <= d.Revisions || p.Books <= d.Books {
		t.Error("PaperScale must exceed DefaultScale")
	}
}
