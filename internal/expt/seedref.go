package expt

// Seed reference engine: a faithful re-implementation of the repository's
// original Algorithm 1 hot path, kept as the perf and correctness baseline.
// The disclosure package's golden-equivalence tests replay corpora through
// this engine and require byte-identical Reports from the sharded engine;
// RunHotPath benchmarks it as the "seed" series in BENCH_2.json.
//
// The structure mirrors the seed exactly, including its cost model:
//
//   - one RWMutex per database acquired per *call* — the candidate loop
//     takes a fresh read lock for every hash's oldest-holder lookup and
//     three more per candidate evaluation (threshold, fingerprint,
//     authoritative overlap), where the sharded engine pins one stripe
//     for the whole observation;
//   - map-backed DBhash/DBpar with postings appended in clock order and a
//     linear membership scan per (hash, segment) insertion;
//   - the original map[uint32]struct{} fingerprint representation's
//     per-call Hashes() cost (fresh slice + reflection sort.Slice), see
//     seedHashes;
//   - a heap-allocated candidate slice per hash (candidatesFor);
//   - sort.Slice over the final source list; and
//   - a single tracker mutex guarding the decision cache.

import (
	"sort"
	"sync"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// seedHashes reproduces the seed fingerprint's Hashes() cost model. The
// original representation was a map[uint32]struct{}, so every Hashes()
// call materialised a fresh slice and ran sort.Slice (reflection-based
// swapper, one closure and one buffer allocation per call). The current
// fingerprint package returns its internal sorted slice for free; paying
// the copy+sort here keeps the seed baseline honest about what each
// observation used to allocate.
func seedHashes(fp *fingerprint.Fingerprint) []uint32 {
	shared := fp.Hashes()
	out := make([]uint32, 0, len(shared))
	out = append(out, shared...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type seedPosting struct {
	seg segment.ID
	seq uint64
}

type seedPar struct {
	fp        *fingerprint.Fingerprint
	threshold float64
	updated   uint64
}

// seedDB replicates the seed index.DB: one RWMutex for the whole database,
// locked and released on every call, with map-backed structures and linear
// membership scans.
type seedDB struct {
	mu               sync.RWMutex
	defaultThreshold float64
	hash             map[uint32][]seedPosting
	par              map[segment.ID]*seedPar
	clock            uint64
}

func newSeedDB(threshold float64) *seedDB {
	return &seedDB{
		defaultThreshold: threshold,
		hash:             make(map[uint32][]seedPosting),
		par:              make(map[segment.ID]*seedPar),
	}
}

func (db *seedDB) update(seg segment.ID, fp *fingerprint.Fingerprint) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.clock++
	now := db.clock
	entry, ok := db.par[seg]
	if !ok {
		entry = &seedPar{threshold: db.defaultThreshold}
		db.par[seg] = entry
	}
	entry.fp = fp
	entry.updated = now
	for _, h := range seedHashes(fp) {
		has := false
		for _, p := range db.hash[h] {
			if p.seg == seg {
				has = true
				break
			}
		}
		if !has {
			db.hash[h] = append(db.hash[h], seedPosting{seg: seg, seq: now})
		}
	}
}

// oldestHolder takes a read lock per call, exactly as the seed's
// DB.OldestHolder did — the candidate loop pays one acquisition per hash.
func (db *seedDB) oldestHolder(h uint32) (segment.ID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.oldestHolderLocked(h)
}

func (db *seedDB) oldestHolderLocked(h uint32) (segment.ID, bool) {
	postings := db.hash[h]
	if len(postings) == 0 {
		return "", false
	}
	return postings[0].seg, true
}

// holders returns every segment associated with h, oldest first (fresh
// slice, like the seed's DB.Holders).
func (db *seedDB) holders(h uint32) []segment.ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	postings := db.hash[h]
	out := make([]segment.ID, len(postings))
	for i, p := range postings {
		out[i] = p.seg
	}
	return out
}

func (db *seedDB) threshold(seg segment.ID) float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if entry, ok := db.par[seg]; ok {
		return entry.threshold
	}
	return db.defaultThreshold
}

func (db *seedDB) fingerprintOf(seg segment.ID) (*fingerprint.Fingerprint, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.par[seg]
	if !ok || entry.fp == nil {
		return nil, false
	}
	return entry.fp, true
}

func (db *seedDB) authoritativeOverlap(src segment.ID, target *fingerprint.Fingerprint) (overlap, srcLen int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.par[src]
	if !ok || entry.fp == nil {
		return 0, 0
	}
	srcLen = entry.fp.Len()
	for _, h := range seedHashes(entry.fp) {
		holder, ok := db.oldestHolderLocked(h)
		if !ok || holder != src {
			continue
		}
		if target.Contains(h) {
			overlap++
		}
	}
	return overlap, srcLen
}

// SeedTracker is the exported seed reference engine. The databases carry
// their own per-call RWMutex locking; the tracker mutex guards only the
// decision cache — exactly the contention profile the sharded engine
// replaces.
type SeedTracker struct {
	mu     sync.Mutex
	params disclosure.Params
	pars   *seedDB
	docs   *seedDB
	cache  map[segment.ID]seedCacheEntry
}

type seedCacheEntry struct {
	digest uint64
	report disclosure.Report
}

// NewSeedTracker builds a seed reference engine with the given parameters.
func NewSeedTracker(params disclosure.Params) *SeedTracker {
	return &SeedTracker{
		params: params,
		pars:   newSeedDB(params.Tpar),
		docs:   newSeedDB(params.Tdoc),
		cache:  make(map[segment.ID]seedCacheEntry),
	}
}

// Observe fingerprints text and records it, returning the seed-form
// disclosure report.
func (t *SeedTracker) Observe(seg segment.ID, text string, g segment.Granularity) (disclosure.Report, error) {
	fp, err := fingerprint.Compute(text, t.params.Fingerprint)
	if err != nil {
		return disclosure.Report{}, err
	}
	return t.ObserveFP(seg, fp, g), nil
}

// ObserveFP records a pre-computed fingerprint, reproducing the seed
// observe path: cache check under the tracker mutex, Algorithm 1 over
// per-call database locks, update, cache store.
func (t *SeedTracker) ObserveFP(seg segment.ID, fp *fingerprint.Fingerprint, g segment.Granularity) disclosure.Report {
	db := t.pars
	if g == segment.GranularityDocument {
		db = t.docs
	}
	digest := fp.Digest()
	if !t.params.DisableCache {
		t.mu.Lock()
		if entry, ok := t.cache[seg]; ok && entry.digest == digest {
			report := entry.report
			report.CacheHit = true
			t.mu.Unlock()
			return report
		}
		t.mu.Unlock()
	}
	sources := t.sources(fp, seg, db)
	db.update(seg, fp)
	report := disclosure.Report{
		Seg:            seg,
		Granularity:    g,
		FingerprintLen: fp.Len(),
		Sources:        sources,
	}
	if !t.params.DisableCache {
		t.mu.Lock()
		t.cache[seg] = seedCacheEntry{digest: digest, report: report}
		t.mu.Unlock()
	}
	return report
}

// candidatesFor returns the candidate origin segments for hash h as a
// fresh slice — the seed allocated this per hash.
func (t *SeedTracker) candidatesFor(h uint32, db *seedDB) []segment.ID {
	if t.params.DisableAuthoritative {
		return db.holders(h)
	}
	if holder, ok := db.oldestHolder(h); ok {
		return []segment.ID{holder}
	}
	return nil
}

func (t *SeedTracker) sources(fp *fingerprint.Fingerprint, self segment.ID, db *seedDB) []disclosure.Source {
	if fp.Empty() {
		return nil
	}
	checked := make(map[segment.ID]bool)
	var out []disclosure.Source
	for _, h := range seedHashes(fp) {
		for _, p := range t.candidatesFor(h, db) {
			if p == self || checked[p] {
				continue
			}
			checked[p] = true
			if src, ok := t.evaluate(fp, p, db); ok {
				out = append(out, src)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Disclosure != out[j].Disclosure {
			return out[i].Disclosure > out[j].Disclosure
		}
		return out[i].Seg < out[j].Seg
	})
	return out
}

// evaluate runs the per-candidate body of Algorithm 1 with the seed's
// call-per-lookup locking: threshold, fingerprint and authoritative
// overlap each take and release the database lock.
func (t *SeedTracker) evaluate(fp *fingerprint.Fingerprint, p segment.ID, db *seedDB) (disclosure.Source, bool) {
	threshold := db.threshold(p)
	origin, ok := db.fingerprintOf(p)
	if !ok || origin.Empty() {
		return disclosure.Source{}, false
	}
	if float64(origin.Len())*threshold > float64(fp.Len()) {
		return disclosure.Source{}, false
	}
	var overlap, originLen int
	if t.params.DisableAuthoritative {
		overlap = origin.IntersectCount(fp)
		originLen = origin.Len()
	} else {
		overlap, originLen = db.authoritativeOverlap(p, fp)
	}
	if originLen == 0 || overlap == 0 {
		return disclosure.Source{}, false
	}
	d := float64(overlap) / float64(originLen)
	if d < threshold {
		return disclosure.Source{}, false
	}
	return disclosure.Source{Seg: p, Disclosure: d, Threshold: threshold}, true
}
