package expt

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/fingerprint"
)

// --- Figure 8: CDF of relative article-length changes ---------------------

// Fig8Point is one point of the length-change CDF.
type Fig8Point struct {
	// RelChange is |len(latest)-len(base)|/len(base).
	RelChange float64

	// Fraction is the cumulative fraction of articles with change <=
	// RelChange.
	Fraction float64
}

// Fig8Result is the Figure 8 series.
type Fig8Result struct {
	Points []Fig8Point
}

// RunFigure8 computes the cumulative distribution of article length
// changes between the oldest and most recent revisions.
func RunFigure8(scale Scale) Fig8Result {
	articles := dataset.GenerateRevisionCorpus(scale.revisionConfig())
	changes := make([]float64, 0, len(articles))
	for _, a := range articles {
		changes = append(changes, dataset.RelativeLengthChange(a))
	}
	sort.Float64s(changes)
	points := make([]Fig8Point, len(changes))
	for i, c := range changes {
		points[i] = Fig8Point{
			RelChange: c,
			Fraction:  float64(i+1) / float64(len(changes)),
		}
	}
	return Fig8Result{Points: points}
}

// Format renders the CDF series.
func (r Fig8Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: Changes in article length (CDF)\n")
	sb.WriteString("rel-change  fraction\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%10.4f  %8.4f\n", p.RelChange, p.Fraction)
	}
	return sb.String()
}

// --- Figure 9: paragraph disclosure across revisions ----------------------

// Fig9Point is one (revision distance, %) sample.
type Fig9Point struct {
	// Revision is the distance from the base version.
	Revision int

	// DisclosingPct is the percentage of base paragraphs the revision
	// still discloses.
	DisclosingPct float64
}

// Fig9Series is one article's curve.
type Fig9Series struct {
	Article string
	Points  []Fig9Point
}

// Fig9Result holds the per-article series of Figure 9a or 9b.
type Fig9Result struct {
	// Stable is true for Figure 9a (low length variation) and false for
	// Figure 9b.
	Stable bool

	Series []Fig9Series
}

// RunFigure9 measures, for each named article, the percentage of base-
// revision paragraphs whose paragraph disclosure towards each sampled
// newer revision meets Tpar. samples controls how many revision points are
// measured per article.
func RunFigure9(scale Scale, stable bool, samples int, params fingerprint.Config, tpar float64) (Fig9Result, error) {
	articles := dataset.GenerateRevisionCorpus(scale.revisionConfig())
	titles := dataset.StableTitles
	if !stable {
		titles = dataset.VolatileTitles
	}
	result := Fig9Result{Stable: stable}
	for _, a := range articles {
		if !containsTitle(titles, a.Title) {
			continue
		}
		series, err := articleDisclosureSeries(a, samples, params, tpar)
		if err != nil {
			return Fig9Result{}, err
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// articleDisclosureSeries fingerprints the base paragraphs once and then
// measures their containment in each sampled revision's full text —
// exactly the paper's "disclosing paragraphs (%)" metric.
func articleDisclosureSeries(a dataset.Article, samples int, params fingerprint.Config, tpar float64) (Fig9Series, error) {
	baseFPs := make([]*fingerprint.Fingerprint, 0, len(a.Base()))
	for _, p := range a.Base() {
		fp, err := fingerprint.Compute(p, params)
		if err != nil {
			return Fig9Series{}, err
		}
		if !fp.Empty() {
			baseFPs = append(baseFPs, fp)
		}
	}
	series := Fig9Series{Article: a.Title}
	if samples < 1 {
		samples = 1
	}
	step := (len(a.Revisions) - 1) / samples
	if step < 1 {
		step = 1
	}
	for r := step; r < len(a.Revisions); r += step {
		revText := strings.Join(a.Revisions[r], "\n\n")
		revFP, err := fingerprint.Compute(revText, params)
		if err != nil {
			return Fig9Series{}, err
		}
		disclosed := 0
		for _, fp := range baseFPs {
			if fp.Containment(revFP) >= tpar {
				disclosed++
			}
		}
		pct := 0.0
		if len(baseFPs) > 0 {
			pct = 100 * float64(disclosed) / float64(len(baseFPs))
		}
		series.Points = append(series.Points, Fig9Point{Revision: r, DisclosingPct: pct})
	}
	return series, nil
}

// --- Figure 9 at document granularity --------------------------------------

// Fig9DocPoint is one (revision distance, Ddoc) sample.
type Fig9DocPoint struct {
	Revision int

	// Ddoc is the document disclosure of the base revision towards this
	// revision.
	Ddoc float64
}

// Fig9DocSeries is one article's document-level curve.
type Fig9DocSeries struct {
	Article string
	Points  []Fig9DocPoint
}

// Fig9DocResult is the document-granularity variant of Figure 9; §6.1
// reports that "the results for the document granularity are similar".
type Fig9DocResult struct {
	Stable bool
	Series []Fig9DocSeries
}

// RunFigure9Doc measures Ddoc(base, revision) for each sampled revision of
// the named articles.
func RunFigure9Doc(scale Scale, stable bool, samples int, params fingerprint.Config) (Fig9DocResult, error) {
	articles := dataset.GenerateRevisionCorpus(scale.revisionConfig())
	titles := dataset.StableTitles
	if !stable {
		titles = dataset.VolatileTitles
	}
	result := Fig9DocResult{Stable: stable}
	for _, a := range articles {
		if !containsTitle(titles, a.Title) {
			continue
		}
		baseFP, err := fingerprint.Compute(strings.Join(a.Base(), "\n\n"), params)
		if err != nil {
			return Fig9DocResult{}, err
		}
		series := Fig9DocSeries{Article: a.Title}
		if samples < 1 {
			samples = 1
		}
		step := (len(a.Revisions) - 1) / samples
		if step < 1 {
			step = 1
		}
		for r := step; r < len(a.Revisions); r += step {
			revFP, err := fingerprint.Compute(strings.Join(a.Revisions[r], "\n\n"), params)
			if err != nil {
				return Fig9DocResult{}, err
			}
			series.Points = append(series.Points, Fig9DocPoint{
				Revision: r,
				Ddoc:     baseFP.Containment(revFP),
			})
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// Format renders the document-granularity series.
func (r Fig9DocResult) Format() string {
	var sb strings.Builder
	name := "Figure 9a (document granularity): stable articles"
	if !r.Stable {
		name = "Figure 9b (document granularity): volatile articles"
	}
	sb.WriteString(name + " — Ddoc(base, revision)\n")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%s:\n", s.Article)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "  rev %5d  %6.3f\n", p.Revision, p.Ddoc)
		}
	}
	return sb.String()
}

// FinalDdoc returns the last point of a series.
func (s Fig9DocSeries) FinalDdoc() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Ddoc
}

// Format renders the per-article series.
func (r Fig9Result) Format() string {
	var sb strings.Builder
	name := "Figure 9a: Articles with low length variations"
	if !r.Stable {
		name = "Figure 9b: Articles with high length variations"
	}
	sb.WriteString(name + " (paragraph disclosure %)\n")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%s:\n", s.Article)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "  rev %5d  %6.1f%%\n", p.Revision, p.DisclosingPct)
		}
	}
	return sb.String()
}

// FinalPct returns the last point of an article's curve (used in tests and
// EXPERIMENTS.md summaries).
func (s Fig9Series) FinalPct() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].DisclosingPct
}

func containsTitle(titles []string, t string) bool {
	for _, x := range titles {
		if x == t {
			return true
		}
	}
	return false
}
