package expt

// Read-scaling benchmark for the replicated tag service (BENCH_4.json).
// One in-process primary ships its WAL to N streaming replicas; the
// benchmark measures write throughput on the primary, how long the
// replicas take to fully catch up after the write burst, and how
// /v1/check read throughput scales as the ClusterClient spreads the read
// pool over 0, 1, ... N replicas. cmd/bfbench runs RunReplication and
// `make repl-bench` records the result as BENCH_4.json.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/replication"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// ReplBenchConfig sizes the replication benchmark.
type ReplBenchConfig struct {
	// Writes is the number of paragraph observations pushed through the
	// primary (batched).
	Writes int

	// BatchSize groups writes into ObserveBatch flushes.
	BatchSize int

	// Checks is the number of /v1/check probes issued per read-scaling
	// point.
	Checks int

	// Readers is the number of concurrent read workers.
	Readers int

	// MaxReplicas is the largest replica count measured.
	MaxReplicas int

	// Dir is scratch space for WAL directories (one subdir per node).
	Dir string
}

// DefaultReplBenchConfig returns the sizing used by `make repl-bench`.
func DefaultReplBenchConfig(dir string) ReplBenchConfig {
	return ReplBenchConfig{
		Writes:      1500,
		BatchSize:   25,
		Checks:      1200,
		Readers:     8,
		MaxReplicas: 2,
		Dir:         dir,
	}
}

// ReplBenchPoint is one read-scaling measurement.
type ReplBenchPoint struct {
	Replicas int     `json:"replicas"`
	Checks   int     `json:"checks"`
	ReadQPS  float64 `json:"readQPS"`
}

// ReplBenchResult is the serialisable outcome of the replication
// benchmark.
type ReplBenchResult struct {
	Writes          int              `json:"writes"`
	WriteQPS        float64          `json:"writeQPS"`
	WALBytes        int64            `json:"walBytes"`
	Replicas        int              `json:"replicas"`
	CatchupMillis   float64          `json:"catchupMillis"`
	ReplicaPosition string           `json:"replicaPosition"`
	Points          []ReplBenchPoint `json:"points"`
}

// Format renders the result as a text table.
func (r ReplBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replication read-scaling benchmark (1 primary + %d replicas)\n", r.Replicas)
	fmt.Fprintf(&b, "  writes: %d acked at %.0f writes/s (%d WAL bytes shipped per replica)\n",
		r.Writes, r.WriteQPS, r.WALBytes)
	fmt.Fprintf(&b, "  catch-up after burst: %.1f ms to position %s on every replica\n",
		r.CatchupMillis, r.ReplicaPosition)
	fmt.Fprintf(&b, "  %-10s %-10s %s\n", "replicas", "checks", "read QPS")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-10d %-10d %.0f\n", p.Replicas, p.Checks, p.ReadQPS)
	}
	return b.String()
}

// replBenchNode is one in-process cluster member: an engine stack, its
// replication components and a full HTTP frontend (tag API guarded by
// role, /v1/repl/* mounted beside it) — the same wiring cmd/bftagd does.
type replBenchNode struct {
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	engine   *policy.Engine
	node     *replication.Node
	svc      *replication.Service
	server   *httptest.Server
	replica  *replication.Replica
	durable  *store.Durable
}

func (n *replBenchNode) close() {
	if n.replica != nil {
		n.replica.Stop()
	}
	if n.server != nil {
		n.server.Close()
	}
	if n.durable != nil {
		n.durable.Close() //nolint:errcheck
	}
}

// newReplBenchEngine builds a fresh engine stack with the benchmark's
// service topology.
func newReplBenchEngine(params disclosure.Params) (*disclosure.Tracker, *tdm.Registry, *policy.Engine, error) {
	tracker, err := disclosure.NewTracker(params)
	if err != nil {
		return nil, nil, nil, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		return nil, nil, nil, err
	}
	if err := registry.RegisterService("pad", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		return nil, nil, nil, err
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		return nil, nil, nil, err
	}
	return tracker, registry, engine, nil
}

// mountNode wires a node's HTTP frontend exactly like cmd/bftagd: the
// tag API behind the replication write guard, /v1/repl/* beside it.
func mountNode(n *replBenchNode) error {
	server, err := tagserver.NewServer(n.engine)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/repl/", n.svc.Handler())
	mux.Handle("/", replication.Guard(n.node, server, nil))
	n.server = httptest.NewServer(mux)
	return nil
}

// newReplBenchPrimary starts the primary over dir.
func newReplBenchPrimary(params disclosure.Params, dir string) (*replBenchNode, error) {
	tracker, registry, engine, err := newReplBenchEngine(params)
	if err != nil {
		return nil, err
	}
	durable, err := store.OpenDurable(store.DurableOptions{Dir: dir, Fsync: wal.SyncNone}, tracker, registry)
	if err != nil {
		return nil, err
	}
	engine.SetJournal(durable)
	node, err := replication.NewNode(replication.NodeOptions{Role: replication.RolePrimary})
	if err != nil {
		durable.Close() //nolint:errcheck
		return nil, err
	}
	popts := replication.PrimaryOptions{MaxWait: 2 * time.Second}
	svc := replication.NewService(node, popts, nil)
	svc.SetPrimary(replication.NewPrimary(node, durable, popts))
	n := &replBenchNode{tracker: tracker, registry: registry, engine: engine,
		node: node, svc: svc, durable: durable}
	if err := mountNode(n); err != nil {
		n.close()
		return nil, err
	}
	return n, nil
}

// newReplBenchReplica starts a streaming replica of primaryURL over dir.
func newReplBenchReplica(params disclosure.Params, primaryURL, dir string) (*replBenchNode, error) {
	tracker, registry, engine, err := newReplBenchEngine(params)
	if err != nil {
		return nil, err
	}
	node, err := replication.NewNode(replication.NodeOptions{
		Role:    replication.RoleReplica,
		Primary: primaryURL,
	})
	if err != nil {
		return nil, err
	}
	rep, err := replication.OpenReplica(node, engine, replication.ReplicaOptions{
		Dir:          dir,
		NoSync:       true,
		PollWait:     500 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	svc := replication.NewService(node, replication.PrimaryOptions{MaxWait: 2 * time.Second}, nil)
	svc.SetReplica(rep)
	n := &replBenchNode{tracker: tracker, registry: registry, engine: engine,
		node: node, svc: svc, replica: rep}
	if err := mountNode(n); err != nil {
		n.close()
		return nil, err
	}
	rep.Start()
	return n, nil
}

// RunReplication measures the replicated deployment: primary write
// throughput, replica catch-up latency after the burst, and check-QPS as
// reads spread across 0..MaxReplicas replicas.
func RunReplication(params disclosure.Params, cfg ReplBenchConfig) (ReplBenchResult, error) {
	var res ReplBenchResult
	if cfg.Dir == "" {
		return res, fmt.Errorf("replbench: scratch Dir is required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 25
	}

	primary, err := newReplBenchPrimary(params, cfg.Dir+"/primary")
	if err != nil {
		return res, err
	}
	defer primary.close()

	replicas := make([]*replBenchNode, 0, cfg.MaxReplicas)
	defer func() {
		for _, r := range replicas {
			r.close()
		}
	}()
	for i := 0; i < cfg.MaxReplicas; i++ {
		r, err := newReplBenchReplica(params, primary.server.URL, fmt.Sprintf("%s/replica%d", cfg.Dir, i))
		if err != nil {
			return res, err
		}
		replicas = append(replicas, r)
	}
	// Let every replica finish its snapshot bootstrap before the write
	// burst, so the burst measures streaming, not bootstrapping.
	if err := waitReplicas(replicas, 10*time.Second, func(st replication.ReplicaStatus) bool {
		return st.Bootstraps >= 1 && st.Connected
	}); err != nil {
		return res, err
	}

	// Write burst through the real wire API.
	client, err := tagserver.NewClient(primary.server.URL, "bench", fingerprint.DefaultConfig())
	if err != nil {
		return res, err
	}
	texts := make([]string, 97)
	for i := range texts {
		texts[i] = fmt.Sprintf("replicated paragraph %d covering the capacity forecast and rollout schedule for cohort %d", i, i%11)
	}
	start := time.Now()
	written := 0
	for written < cfg.Writes {
		n := cfg.BatchSize
		if rem := cfg.Writes - written; rem < n {
			n = rem
		}
		items := make([]tagserver.BatchItem, n)
		for i := range items {
			k := written + i
			items[i] = tagserver.BatchItem{
				Seg:  segment.ID(fmt.Sprintf("pad/doc%d#p%d", k%31, k)),
				Text: texts[k%len(texts)],
			}
		}
		if _, err := client.ObserveBatch("pad", items); err != nil {
			return res, fmt.Errorf("replbench: write burst: %w", err)
		}
		written += n
	}
	writeElapsed := time.Since(start)
	res.Writes = written
	res.WriteQPS = float64(written) / writeElapsed.Seconds()
	res.Replicas = len(replicas)

	// Catch-up: every replica reaches the primary's exact end position.
	end := primary.durable.WAL().End()
	res.WALBytes = primary.durable.WAL().Stats().BytesAppended
	catchStart := time.Now()
	if err := waitReplicas(replicas, 30*time.Second, func(st replication.ReplicaStatus) bool {
		return st.LagRecords == 0 && st.Position == end.String()
	}); err != nil {
		return res, err
	}
	res.CatchupMillis = float64(time.Since(catchStart).Microseconds()) / 1000
	res.ReplicaPosition = end.String()

	// Read scaling: the same probe workload against read pools of
	// growing size. Replica counts beyond those started are skipped.
	probeText := texts[0]
	for n := 0; n <= len(replicas); n++ {
		pool := make([]string, 0, n)
		for _, r := range replicas[:n] {
			pool = append(pool, r.server.URL)
		}
		cc, err := tagserver.NewClusterClient(primary.server.URL, pool, "bench", fingerprint.DefaultConfig())
		if err != nil {
			return res, err
		}
		qps, err := measureReadQPS(cc, probeText, cfg.Checks, cfg.Readers)
		if err != nil {
			return res, fmt.Errorf("replbench: read pool of %d replicas: %w", n, err)
		}
		res.Points = append(res.Points, ReplBenchPoint{Replicas: n, Checks: cfg.Checks, ReadQPS: qps})
	}
	return res, nil
}

// waitReplicas polls every replica's status until cond holds for all.
func waitReplicas(replicas []*replBenchNode, timeout time.Duration, cond func(replication.ReplicaStatus) bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, r := range replicas {
			if !cond(r.replica.Status()) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, r := range replicas {
		st := r.replica.Status()
		if !cond(st) {
			return fmt.Errorf("replbench: replica stuck at %s (lag %d, err %q)", st.Position, st.LagRecords, st.LastError)
		}
	}
	return nil
}

// measureReadQPS issues checks /v1/check probes from readers workers
// through the cluster client and returns the aggregate rate.
func measureReadQPS(cc *tagserver.ClusterClient, text string, checks, readers int) (float64, error) {
	if readers <= 0 {
		readers = 4
	}
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	per := checks / readers
	start := time.Now()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := cc.Check(context.Background(), text, "pad"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(per*readers) / elapsed.Seconds(), nil
}
