package expt

// Hot-path microbenchmarks backing BENCH_2.json: single-threaded observe
// cost (ns/op, allocs/op), a goroutine-scaling series for the sharded
// engine against the single-lock ablation (DisableSharding) and the seed
// reference implementation, and the batched-vs-singular flush comparison.
// cmd/bfbench runs RunHotPath and serialises the result; `make bench`
// records it as BENCH_2.json so future PRs have a perf trajectory.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
)

// HotPathObs is one pre-fingerprinted observation in a worker's stream.
type HotPathObs struct {
	Seg  segment.ID
	Text string
	FP   *fingerprint.Fingerprint
}

// HotPathWorkload builds per-worker observation streams over the synthetic
// revision corpus. Worker w rotates through segsPerWorker segments, each
// cycling over variants distinct texts, so consecutive re-observations of a
// segment change its fingerprint (decision-cache misses — the full
// Algorithm 1 path). Texts are drawn from a shared pool, so workers overlap
// on content (contended hash buckets, cross-worker disclosure sources)
// while owning disjoint segments.
func HotPathWorkload(scale Scale, workers, segsPerWorker, variants int, cfg fingerprint.Config) ([][]HotPathObs, error) {
	articles := dataset.GenerateRevisionCorpus(dataset.RevisionCorpusConfig{
		Seed:               scale.Seed,
		Revisions:          4,
		Paragraphs:         max(scale.ArticleParagraphs, 8),
		StableVolatility:   0.05,
		VolatileVolatility: 0.3,
	})
	var pool []string
	for _, a := range articles {
		for _, rev := range a.Revisions {
			pool = append(pool, rev...)
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("hotpath: empty corpus")
	}
	fps := make(map[string]*fingerprint.Fingerprint, len(pool))
	streams := make([][]HotPathObs, workers)
	for w := 0; w < workers; w++ {
		stream := make([]HotPathObs, 0, segsPerWorker*variants)
		for v := 0; v < variants; v++ {
			for k := 0; k < segsPerWorker; k++ {
				text := pool[(w*31+k*variants+v*7)%len(pool)]
				fp, ok := fps[text]
				if !ok {
					var err error
					fp, err = fingerprint.Compute(text, cfg)
					if err != nil {
						return nil, err
					}
					fps[text] = fp
				}
				stream = append(stream, HotPathObs{
					Seg:  segment.ID(fmt.Sprintf("w%d/doc#p%d", w, k)),
					Text: text,
					FP:   fp,
				})
			}
		}
		streams[w] = stream
	}
	return streams, nil
}

// HotPathPoint is one goroutine-count sample of an engine's throughput.
type HotPathPoint struct {
	Goroutines int     `json:"goroutines"`
	NsPerOp    float64 `json:"nsPerOp"`
	OpsPerSec  float64 `json:"opsPerSec"`
}

// HotPathSeries is an engine's goroutine-scaling series.
type HotPathSeries struct {
	Engine string         `json:"engine"`
	Points []HotPathPoint `json:"points"`
}

// HotPathSingle is an engine's single-threaded text-observe cost.
type HotPathSingle struct {
	Engine      string  `json:"engine"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// HotPathBatch compares the batched flush against the equivalent singular
// call sequence, per item.
type HotPathBatch struct {
	Mode      string  `json:"mode"`
	NsPerItem float64 `json:"nsPerItem"`
}

// HotPathResult is the full BENCH_2.json payload.
type HotPathResult struct {
	GOMAXPROCS   int             `json:"gomaxprocs"`
	SingleThread []HotPathSingle `json:"singleThread"`
	Concurrent   []HotPathSeries `json:"concurrent"`

	// SpeedupAt8VsSingleLock and SpeedupAt8VsSeed are the sharded engine's
	// throughput at 8 goroutines over the DisableSharding ablation and the
	// seed reference respectively.
	SpeedupAt8VsSingleLock float64 `json:"speedupAt8VsSingleLock"`
	SpeedupAt8VsSeed       float64 `json:"speedupAt8VsSeed"`

	Batch        []HotPathBatch `json:"batch"`
	BatchSpeedup float64        `json:"batchSpeedup"`
}

// hotPathGoroutines is the goroutine-scaling series recorded in
// BENCH_2.json.
var hotPathGoroutines = []int{1, 2, 4, 8}

// observeFn records one pre-fingerprinted paragraph observation; it must
// be safe for concurrent use.
type observeFn func(o HotPathObs) error

// hotPathEngines returns the engines under comparison: the sharded engine,
// the single-lock ablation, and the seed reference.
func hotPathEngines(params disclosure.Params) []struct {
	name string
	mk   func() (observeFn, error)
} {
	singleLock := params
	singleLock.DisableSharding = true
	mkTracker := func(p disclosure.Params) func() (observeFn, error) {
		return func() (observeFn, error) {
			tr, err := disclosure.NewTracker(p)
			if err != nil {
				return nil, err
			}
			return func(o HotPathObs) error {
				_, err := tr.ObserveParagraphFP(o.Seg, o.FP)
				return err
			}, nil
		}
	}
	return []struct {
		name string
		mk   func() (observeFn, error)
	}{
		{"sharded", mkTracker(params)},
		{"single-lock", mkTracker(singleLock)},
		{"seed", func() (observeFn, error) {
			tr := NewSeedTracker(params)
			return func(o HotPathObs) error {
				tr.ObserveFP(o.Seg, o.FP, segment.GranularityParagraph)
				return nil
			}, nil
		}},
	}
}

// benchConcurrent measures one engine at g goroutines: b.N observations
// split across the goroutines, each replaying its own pre-fingerprinted
// stream after an untimed prepopulation round.
func benchConcurrent(mk func() (observeFn, error), streams [][]HotPathObs, g int) (testing.BenchmarkResult, error) {
	var setupErr error
	res := testing.Benchmark(func(b *testing.B) {
		observe, err := mk()
		if err != nil {
			setupErr = err
			b.FailNow()
		}
		for _, stream := range streams {
			for _, o := range stream[:len(stream)/2] {
				if err := observe(o); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		for w := 0; w < g; w++ {
			n := b.N / g
			if w < b.N%g {
				n++
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				stream := streams[w%len(streams)]
				for i := 0; i < n; i++ {
					if err := observe(stream[i%len(stream)]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(w, n)
		}
		wg.Wait()
		if firstErr != nil {
			setupErr = firstErr
			b.FailNow()
		}
	})
	return res, setupErr
}

// RunHotPath produces the BENCH_2.json payload.
func RunHotPath(scale Scale, params disclosure.Params) (HotPathResult, error) {
	const (
		workers       = 8
		segsPerWorker = 16
		variants      = 4
		flushSize     = 64
	)
	streams, err := HotPathWorkload(scale, workers, segsPerWorker, variants, params.Fingerprint)
	if err != nil {
		return HotPathResult{}, err
	}
	result := HotPathResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Single-threaded text path (includes fingerprinting): ns/op and
	// allocs/op per engine.
	singleEngines := []struct {
		name string
		mk   func() (func(seg segment.ID, text string) error, error)
	}{
		{"sharded", func() (func(segment.ID, string) error, error) {
			tr, err := disclosure.NewTracker(params)
			if err != nil {
				return nil, err
			}
			return func(seg segment.ID, text string) error {
				_, err := tr.ObserveParagraph(seg, text)
				return err
			}, nil
		}},
		{"seed", func() (func(segment.ID, string) error, error) {
			tr := NewSeedTracker(params)
			return func(seg segment.ID, text string) error {
				_, err := tr.Observe(seg, text, segment.GranularityParagraph)
				return err
			}, nil
		}},
	}
	for _, eng := range singleEngines {
		var setupErr error
		mk := eng.mk
		res := testing.Benchmark(func(b *testing.B) {
			observe, err := mk()
			if err != nil {
				setupErr = err
				b.FailNow()
			}
			stream := streams[0]
			for _, o := range stream[:len(stream)/2] {
				if err := observe(o.Seg, o.Text); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := observe(stream[i%len(stream)].Seg, stream[i%len(stream)].Text); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
		})
		if setupErr != nil {
			return HotPathResult{}, fmt.Errorf("hotpath single %s: %w", eng.name, setupErr)
		}
		result.SingleThread = append(result.SingleThread, HotPathSingle{
			Engine:      eng.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}

	// Goroutine-scaling series on the pre-fingerprinted path, so lock and
	// index behaviour — not winnowing — dominates.
	throughput := make(map[string]map[int]float64)
	for _, eng := range hotPathEngines(params) {
		series := HotPathSeries{Engine: eng.name}
		throughput[eng.name] = make(map[int]float64)
		for _, g := range hotPathGoroutines {
			res, err := benchConcurrent(eng.mk, streams, g)
			if err != nil {
				return HotPathResult{}, fmt.Errorf("hotpath %s g=%d: %w", eng.name, g, err)
			}
			ns := float64(res.NsPerOp())
			ops := 0.0
			if ns > 0 {
				ops = 1e9 / ns
			}
			series.Points = append(series.Points, HotPathPoint{Goroutines: g, NsPerOp: ns, OpsPerSec: ops})
			throughput[eng.name][g] = ops
		}
		result.Concurrent = append(result.Concurrent, series)
	}
	if base := throughput["single-lock"][8]; base > 0 {
		result.SpeedupAt8VsSingleLock = throughput["sharded"][8] / base
	}
	if base := throughput["seed"][8]; base > 0 {
		result.SpeedupAt8VsSeed = throughput["sharded"][8] / base
	}

	// Batched flush vs the equivalent singular sequence, per item, on the
	// sharded engine. Flushes rotate through the variant pool so every
	// iteration re-observes changed fingerprints.
	flushes := make([][]disclosure.BatchObservation, variants)
	for v := 0; v < variants; v++ {
		items := make([]disclosure.BatchObservation, 0, flushSize)
		for k := 0; k < flushSize; k++ {
			o := streams[k%workers][(v*segsPerWorker+k/workers)%len(streams[k%workers])]
			items = append(items, disclosure.BatchObservation{Seg: o.Seg, FP: o.FP})
		}
		flushes[v] = items
	}
	batchModes := []struct {
		name string
		run  func(tr *disclosure.Tracker, items []disclosure.BatchObservation) error
	}{
		{"batch", func(tr *disclosure.Tracker, items []disclosure.BatchObservation) error {
			_, err := tr.ObserveBatch(items)
			return err
		}},
		{"singular", func(tr *disclosure.Tracker, items []disclosure.BatchObservation) error {
			for _, it := range items {
				if _, err := tr.ObserveParagraphFP(it.Seg, it.FP); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	perItem := make(map[string]float64)
	for _, mode := range batchModes {
		var setupErr error
		run := mode.run
		res := testing.Benchmark(func(b *testing.B) {
			tr, err := disclosure.NewTracker(params)
			if err != nil {
				setupErr = err
				b.FailNow()
			}
			if err := run(tr, flushes[0]); err != nil {
				setupErr = err
				b.FailNow()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(tr, flushes[i%variants]); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
		})
		if setupErr != nil {
			return HotPathResult{}, fmt.Errorf("hotpath batch %s: %w", mode.name, setupErr)
		}
		per := float64(res.NsPerOp()) / flushSize
		perItem[mode.name] = per
		result.Batch = append(result.Batch, HotPathBatch{Mode: mode.name, NsPerItem: per})
	}
	if perItem["batch"] > 0 {
		result.BatchSpeedup = perItem["singular"] / perItem["batch"]
	}
	return result, nil
}

// Format renders the result as the table bfbench prints.
func (r HotPathResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot path (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	b.WriteString("\nSingle-threaded ObserveParagraph (text path):\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s %12s\n", "engine", "ns/op", "allocs/op", "B/op")
	for _, s := range r.SingleThread {
		fmt.Fprintf(&b, "  %-12s %12.0f %12d %12d\n", s.Engine, s.NsPerOp, s.AllocsPerOp, s.BytesPerOp)
	}
	b.WriteString("\nConcurrent ObserveParagraphFP (pre-fingerprinted, ops/sec):\n")
	fmt.Fprintf(&b, "  %-12s", "engine")
	for _, g := range hotPathGoroutines {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("g=%d", g))
	}
	b.WriteString("\n")
	for _, s := range r.Concurrent {
		fmt.Fprintf(&b, "  %-12s", s.Engine)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " %10.0f", p.OpsPerSec)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\nSpeedup at 8 goroutines: %.2fx vs single-lock, %.2fx vs seed\n",
		r.SpeedupAt8VsSingleLock, r.SpeedupAt8VsSeed)
	b.WriteString("\nBatched flush (64 items, ns/item):\n")
	for _, m := range r.Batch {
		fmt.Fprintf(&b, "  %-12s %12.0f\n", m.Mode, m.NsPerItem)
	}
	fmt.Fprintf(&b, "  batch speedup: %.2fx\n", r.BatchSpeedup)
	return b.String()
}
