package expt

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/disclosure"
)

// A miniature replication benchmark run completes, reports every
// read-pool point, and sees the replicas converge to the primary's WAL
// position.
func TestRunReplicationSmoke(t *testing.T) {
	cfg := ReplBenchConfig{
		Writes:      120,
		BatchSize:   20,
		Checks:      60,
		Readers:     3,
		MaxReplicas: 1,
		Dir:         t.TempDir(),
	}
	res, err := RunReplication(disclosure.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != cfg.Writes {
		t.Errorf("writes = %d, want %d", res.Writes, cfg.Writes)
	}
	if res.WriteQPS <= 0 {
		t.Errorf("writeQPS = %v, want > 0", res.WriteQPS)
	}
	if res.WALBytes <= 0 {
		t.Errorf("walBytes = %d, want > 0", res.WALBytes)
	}
	if res.ReplicaPosition == "" {
		t.Error("replicas never reported a position")
	}
	if len(res.Points) != cfg.MaxReplicas+1 {
		t.Fatalf("got %d read-scaling points, want %d", len(res.Points), cfg.MaxReplicas+1)
	}
	for _, p := range res.Points {
		if p.ReadQPS <= 0 {
			t.Errorf("pool of %d replicas: readQPS = %v, want > 0", p.Replicas, p.ReadQPS)
		}
	}
	out := res.Format()
	for _, want := range []string{"read QPS", "catch-up"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
