package expt

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/cryptoall"
	"github.com/lsds/browserflow/internal/dataset"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/intercept"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

// The usability comparison operationalises §2.2's critique of browser-side
// encrypt-everything enforcement ("often infeasible ... because services
// may need to index, search, and inspect the original data"): three
// protection systems run the same workflow — type fresh public text and
// paste confidential wiki text into an external doc — and are scored on
// confidentiality *and* preserved service functionality.

// UsabilityRow is one protection system's scorecard.
type UsabilityRow struct {
	// System names the protection approach.
	System string

	// SensitiveProtected reports whether the pasted confidential text was
	// kept off the service in plaintext.
	SensitiveProtected bool

	// PublicSearchable reports whether server-side search still finds the
	// user's own public text.
	PublicSearchable bool
}

// UsabilityResult is the comparison table.
type UsabilityResult struct {
	Rows []UsabilityRow
}

// RunUsabilityComparison drives the full browser stack once per system.
func RunUsabilityComparison(scale Scale, params disclosure.Params) (UsabilityResult, error) {
	gen := dataset.NewTextGen(scale.Seed+3333, 2000)
	secret := gen.Paragraph(6, 8)
	public := "completely public project status update " + gen.Sentence(10, 12)

	var result UsabilityResult
	for _, system := range []string{"none", "encrypt-all", "browserflow"} {
		row, err := runUsabilitySystem(system, secret, public, params)
		if err != nil {
			return UsabilityResult{}, fmt.Errorf("%s: %w", system, err)
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func runUsabilitySystem(system, secret, public string, params disclosure.Params) (UsabilityRow, error) {
	row := UsabilityRow{System: system}

	server := webapp.NewServer()
	server.SeedWikiPage("secret", secret)
	server.SeedDoc("notes", "starter paragraph")
	srv := httptest.NewServer(server)
	defer srv.Close()

	b := browser.New()

	switch system {
	case "none":
		// No protection installed.

	case "encrypt-all":
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(i)
		}
		enc, err := cryptoall.New(key, webapp.ServiceDocs)
		if err != nil {
			return row, err
		}
		b.OnTabOpen(func(tab *browser.Tab) { tab.RegisterXHRHook(enc.Hook) })

	case "browserflow":
		tracker, err := disclosure.NewTracker(params)
		if err != nil {
			return row, err
		}
		registry := tdm.NewRegistry(audit.NewLog())
		for _, svc := range []struct {
			name   string
			lp, lc tdm.TagSet
		}{
			{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
			{name: webapp.ServiceITool, lp: tdm.NewTagSet("ti"), lc: tdm.NewTagSet("ti")},
			{name: webapp.ServiceDocs, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
			{name: webapp.ServiceNotes, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
		} {
			if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
				return row, err
			}
		}
		engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
		if err != nil {
			return row, err
		}
		plugin, err := intercept.New(intercept.Config{Engine: engine, User: "expt"})
		if err != nil {
			return row, err
		}
		defer plugin.Shutdown()
		plugin.AttachToBrowser(b)
	}

	// Workflow: read the wiki page, then edit the external doc.
	wikiTab, err := b.OpenTab(srv.URL + "/wiki/secret")
	if err != nil {
		return row, err
	}
	docsTab, err := b.OpenTab(srv.URL + "/docs/notes")
	if err != nil {
		return row, err
	}
	ed, err := webapp.AttachDocsEditor(docsTab)
	if err != nil {
		return row, err
	}

	// 1. Type fresh public text.
	if err := ed.AppendParagraph(public); err != nil {
		return row, fmt.Errorf("public append: %w", err)
	}
	// 2. Paste the confidential wiki paragraph; a blocked upload counts as
	// protection.
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	_ = ed.PasteAppend() // error (blocked) is a valid protection outcome

	// Score confidentiality: is the secret stored in plaintext?
	plaintextLeak := false
	for _, p := range server.Doc("notes") {
		if strings.Contains(p, secret[:40]) {
			plaintextLeak = true
		}
	}
	row.SensitiveProtected = !plaintextLeak

	// Score functionality: server-side search over the user's public text.
	word := strings.ToLower(strings.Fields(public)[3])
	resp, err := http.Get(srv.URL + "/docs/notes/search?q=" + word)
	if err != nil {
		return row, err
	}
	defer resp.Body.Close()
	var hits []int
	if err := json.NewDecoder(resp.Body).Decode(&hits); err != nil {
		return row, err
	}
	row.PublicSearchable = len(hits) > 0
	return row, nil
}

// Format renders the scorecard.
func (r UsabilityResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Usability comparison: confidentiality vs preserved service functionality (§2.2)\n")
	fmt.Fprintf(&sb, "%-14s %20s %18s\n", "system", "sensitive-protected", "public-searchable")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %20s %18s\n", row.System, yesNo(row.SensitiveProtected), yesNo(row.PublicSearchable))
	}
	return sb.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
