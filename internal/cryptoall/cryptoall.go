// Package cryptoall implements the second comparison baseline of §2.2:
// browser-side enforcement that encrypts *all* data before upload to
// untrusted services (in the style of ShadowCrypt or Mylar). "This is
// often infeasible, however, because services may need to index, search,
// and inspect the original data."
//
// The baseline is an XHR hook that seals every docs-style payload to
// untrusted services with AES-GCM. It keeps data confidential
// unconditionally — and unconditionally breaks server-side functionality
// like search, which the comparison experiment quantifies against
// BrowserFlow's selective approach.
package cryptoall

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/webapp"
)

// prefix marks sealed payload text.
const prefix = "caenc:"

// Encryptor seals all user text bound for untrusted services.
type Encryptor struct {
	key       []byte
	untrusted map[string]bool
	sealedN   atomic.Int64
}

// New returns an Encryptor for the given 32-byte key; untrusted lists the
// service names whose uploads are sealed.
func New(key []byte, untrusted ...string) (*Encryptor, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("cryptoall: key must be 32 bytes, got %d", len(key))
	}
	set := make(map[string]bool, len(untrusted))
	for _, s := range untrusted {
		set[s] = true
	}
	return &Encryptor{key: append([]byte(nil), key...), untrusted: set}, nil
}

// SealedCount returns how many payloads were sealed.
func (e *Encryptor) SealedCount() int64 { return e.sealedN.Load() }

// Hook is the XMLHttpRequest interception: docs mutation payloads to
// untrusted services get their text sealed; everything else passes.
func (e *Encryptor) Hook(tab *browser.Tab, req *browser.XHRRequest) error {
	service, ok := webapp.ServiceForPath(req.URL.Path)
	if !ok || !e.untrusted[service] {
		return nil
	}
	var m webapp.MutateRequest
	if err := json.Unmarshal(req.Body, &m); err != nil || m.Op == "" {
		return nil
	}
	if m.Text == "" || strings.HasPrefix(m.Text, prefix) {
		return nil
	}
	sealed, err := e.Seal(m.Text)
	if err != nil {
		return fmt.Errorf("cryptoall: %w", err)
	}
	m.Text = sealed
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("cryptoall: %w", err)
	}
	req.Body = body
	e.sealedN.Add(1)
	return nil
}

// Seal encrypts text.
func (e *Encryptor) Seal(text string) (string, error) {
	gcm, err := e.gcm()
	if err != nil {
		return "", err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return "", err
	}
	return prefix + base64.StdEncoding.EncodeToString(gcm.Seal(nonce, nonce, []byte(text), nil)), nil
}

// Open decrypts text sealed by Seal.
func (e *Encryptor) Open(sealed string) (string, error) {
	if !strings.HasPrefix(sealed, prefix) {
		return "", fmt.Errorf("cryptoall: not a sealed payload")
	}
	raw, err := base64.StdEncoding.DecodeString(sealed[len(prefix):])
	if err != nil {
		return "", err
	}
	gcm, err := e.gcm()
	if err != nil {
		return "", err
	}
	if len(raw) < gcm.NonceSize() {
		return "", fmt.Errorf("cryptoall: ciphertext too short")
	}
	plain, err := gcm.Open(nil, raw[:gcm.NonceSize()], raw[gcm.NonceSize():], nil)
	if err != nil {
		return "", fmt.Errorf("cryptoall: %w", err)
	}
	return string(plain), nil
}

// IsSealed reports whether text was produced by Seal.
func IsSealed(text string) bool { return strings.HasPrefix(text, prefix) }

func (e *Encryptor) gcm() (cipher.AEAD, error) {
	block, err := aes.NewCipher(e.key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
