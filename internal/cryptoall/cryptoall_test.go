package cryptoall

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/webapp"
)

func testKey() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 3)
	}
	return key
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(testKey(), "docs"); err != nil {
		t.Fatal(err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	e, err := New(testKey(), "docs")
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := e.Seal("the secret text")
	if err != nil {
		t.Fatal(err)
	}
	if !IsSealed(sealed) || strings.Contains(sealed, "secret") {
		t.Errorf("sealed=%q", sealed)
	}
	plain, err := e.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if plain != "the secret text" {
		t.Errorf("plain=%q", plain)
	}
	if _, err := e.Open("not-sealed"); err == nil {
		t.Error("bad prefix accepted")
	}
	if _, err := e.Open(prefix + "!!!"); err == nil {
		t.Error("bad base64 accepted")
	}
	if _, err := e.Open(prefix + "AAAA"); err == nil {
		t.Error("short ciphertext accepted")
	}
}

// End to end: with the encrypt-everything hook installed, the docs backend
// only ever stores ciphertext — and its search feature stops working, the
// §2.2 infeasibility argument.
func TestEncryptAllBreaksServerSearch(t *testing.T) {
	server := webapp.NewServer()
	server.SeedDoc("notes", "starter")
	srv := httptest.NewServer(server)
	defer srv.Close()

	e, err := New(testKey(), webapp.ServiceDocs)
	if err != nil {
		t.Fatal(err)
	}
	b := browser.New()
	b.OnTabOpen(func(tab *browser.Tab) { tab.RegisterXHRHook(e.Hook) })
	tab, err := b.OpenTab(srv.URL + "/docs/notes")
	if err != nil {
		t.Fatal(err)
	}
	ed, err := webapp.AttachDocsEditor(tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.AppendParagraph("quarterly earnings report draft"); err != nil {
		t.Fatal(err)
	}
	if e.SealedCount() != 1 {
		t.Errorf("sealed=%d", e.SealedCount())
	}
	// The backend holds ciphertext only.
	stored := server.Doc("notes")
	if len(stored) != 2 || !IsSealed(stored[1]) {
		t.Fatalf("backend=%v", stored)
	}
	plain, err := e.Open(stored[1])
	if err != nil || plain != "quarterly earnings report draft" {
		t.Errorf("open=%q err=%v", plain, err)
	}

	// Server-side search cannot find the content.
	resp, err := http.Get(srv.URL + "/docs/notes/search?q=earnings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hits []int
	if err := json.NewDecoder(resp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("search found encrypted content: %v", hits)
	}
}

// Control: without the hook, the same search works — and that is what
// BrowserFlow preserves for non-sensitive text.
func TestSearchWorksWithoutEncryptAll(t *testing.T) {
	server := webapp.NewServer()
	server.SeedDoc("notes", "quarterly earnings report draft")
	srv := httptest.NewServer(server)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/docs/notes/search?q=earnings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hits []int
	if err := json.NewDecoder(resp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != 0 {
		t.Errorf("hits=%v", hits)
	}
}

func TestHookIgnoresTrustedAndNonMutation(t *testing.T) {
	e, err := New(testKey(), webapp.ServiceDocs)
	if err != nil {
		t.Fatal(err)
	}
	server := webapp.NewServer()
	server.SeedWikiPage("w", "wiki text")
	srv := httptest.NewServer(server)
	defer srv.Close()
	b := browser.New()
	b.OnTabOpen(func(tab *browser.Tab) { tab.RegisterXHRHook(e.Hook) })
	tab, err := b.OpenTab(srv.URL + "/wiki/w")
	if err != nil {
		t.Fatal(err)
	}
	// An XHR to a trusted (non-listed) service passes unsealed.
	resp, err := tab.XHR("POST", "/wiki/w", []byte(`not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.SealedCount() != 0 {
		t.Errorf("sealed=%d, want 0", e.SealedCount())
	}
}
