package dom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics and always yields a document whose text is
// recoverable, for arbitrary byte soup.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		doc := Parse(input)
		_ = doc.Root().InnerText()
		_ = doc.Root().OuterHTML()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: serialise-then-reparse is text-content stable.
func TestQuickSerialiseReparseStable(t *testing.T) {
	tags := []string{"div", "p", "span", "b", "ul", "li"}
	f := func(seed int64, depth uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		buildRandomHTML(&sb, rng, int(depth)%4+1)
		first := Parse(sb.String())
		second := Parse(first.Root().OuterHTML())
		return first.Root().InnerText() == second.Root().InnerText()
	}
	_ = tags
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// buildRandomHTML emits a random but well-formed HTML fragment.
func buildRandomHTML(sb *strings.Builder, rng *rand.Rand, depth int) {
	tags := []string{"div", "p", "span", "b", "ul", "li"}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	n := rng.Intn(4) + 1
	for i := 0; i < n; i++ {
		if depth == 0 || rng.Intn(3) == 0 {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		sb.WriteByte('<')
		sb.WriteString(tag)
		if rng.Intn(2) == 0 {
			sb.WriteString(` class="c` + words[rng.Intn(len(words))] + `"`)
		}
		sb.WriteByte('>')
		buildRandomHTML(sb, rng, depth-1)
		sb.WriteString("</")
		sb.WriteString(tag)
		sb.WriteByte('>')
	}
}

// Property: extraction never panics and returns text free of tags for
// arbitrary input.
func TestQuickExtractMainTextSafe(t *testing.T) {
	f := func(input string) bool {
		text := ExtractMainText(Parse(input))
		return !strings.Contains(text, "</")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
