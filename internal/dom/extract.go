package dom

import (
	"regexp"
	"strings"
)

// The §5.1 extraction heuristics: reward elements whose id/class look like
// article content, penalise boilerplate containers and link farms.
var (
	positiveHint = regexp.MustCompile(`(?i)article|body|content|entry|main|page|post|text|story`)
	negativeHint = regexp.MustCompile(`(?i)footer|meta|nav|sidebar|comment|menu|banner|ad-|advert|promo|share|social|header`)
)

// candidateTags are the block containers considered as "interesting text"
// roots.
var candidateTags = map[string]bool{
	"div": true, "article": true, "section": true, "main": true,
	"td": true, "body": true, "p": true,
}

// ExtractMain returns the element with the most "interesting" text in the
// document and its score, following the Readability-style heuristics of
// §5.1: the existence of <p> tags, text that contains commas and
// representative id attributes raise an element's score; bad class names
// and a high number of links over text length lower it. It returns nil if
// the document has no scoring candidates.
func ExtractMain(doc *Document) (*Node, float64) {
	var (
		best      *Node
		bestScore float64
	)
	doc.Root().Walk(func(n *Node) bool {
		if n.Type != ElementNode || !candidateTags[n.Tag] {
			return true
		}
		if score := scoreElement(n); best == nil || score > bestScore {
			best, bestScore = n, score
		}
		return true
	})
	return best, bestScore
}

// ExtractMainText returns the interesting text of the document with all
// HTML tags removed, or "" when nothing scores.
func ExtractMainText(doc *Document) string {
	best, _ := ExtractMain(doc)
	if best == nil {
		return ""
	}
	return best.InnerText()
}

// ExtractParagraphs returns the text of each <p> descendant of root (or of
// root itself if it is a <p>), skipping empty ones. It is how the plug-in
// derives trackable paragraph segments from a page.
func ExtractParagraphs(root *Node) []string {
	var out []string
	for _, p := range root.ElementsByTag("p") {
		if text := p.InnerText(); text != "" {
			out = append(out, text)
		}
	}
	return out
}

// scoreElement implements the ranking heuristics.
func scoreElement(n *Node) float64 {
	text := n.InnerText()
	if len(text) == 0 {
		return 0
	}
	score := 1.0

	// Reward commas: prose has them, navigation chrome does not.
	score += float64(strings.Count(text, ","))

	// Reward length, capped so one huge blob does not dominate hints.
	score += minFloat(float64(len(text))/100, 20)

	// Reward <p> structure beneath the candidate.
	pDescendants := len(n.ElementsByTag("p"))
	if n.Tag == "p" {
		pDescendants-- // ElementsByTag includes the node itself
		score += 3
	}
	score += float64(pDescendants) * 5

	// id/class hints.
	hints := n.ID() + " " + n.Class()
	if positiveHint.MatchString(hints) {
		score += 25
	}
	if negativeHint.MatchString(hints) {
		score -= 25
	}

	// Penalise high link density.
	linkLen := 0
	for _, a := range n.ElementsByTag("a") {
		linkLen += len(a.InnerText())
	}
	density := float64(linkLen) / float64(len(text))
	score *= 1 - density

	return score
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
