package dom

import (
	"testing"
)

func TestMutationObserverChildList(t *testing.T) {
	doc := Parse(`<body><div id="editor"></div></body>`)
	editor := doc.Root().ByID("editor")
	var records []MutationRecord
	obs := doc.Observe(editor, func(r MutationRecord) { records = append(records, r) })
	defer obs.Disconnect()

	p := NewElement("p", nil)
	if err := doc.AppendChild(editor, p); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Type != MutationChildList || len(records[0].Added) != 1 {
		t.Fatalf("records=%+v", records)
	}
	if err := doc.RemoveChild(editor, p); err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || len(records[1].Removed) != 1 {
		t.Fatalf("records=%+v", records)
	}
}

func TestMutationObserverCharacterData(t *testing.T) {
	doc := Parse(`<body><p id="p0">old text</p></body>`)
	p0 := doc.Root().ByID("p0")
	var got []MutationRecord
	doc.Observe(p0, func(r MutationRecord) { got = append(got, r) })

	if err := doc.SetElementText(p0, "new text"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != MutationCharacterData || got[0].OldText != "old text" {
		t.Fatalf("got=%+v", got)
	}
	if p0.InnerText() != "new text" {
		t.Errorf("InnerText=%q", p0.InnerText())
	}
}

func TestObserverScoping(t *testing.T) {
	doc := Parse(`<body><div id="watched"></div><div id="other"></div></body>`)
	watched, other := doc.Root().ByID("watched"), doc.Root().ByID("other")
	count := 0
	doc.Observe(watched, func(MutationRecord) { count++ })

	if err := doc.AppendChild(other, NewElement("p", nil)); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("observer fired for mutation outside its subtree: %d", count)
	}
	if err := doc.AppendChild(watched, NewElement("p", nil)); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("count=%d, want 1", count)
	}
}

func TestObserverDisconnect(t *testing.T) {
	doc := NewDocument()
	count := 0
	obs := doc.Observe(doc.Root(), func(MutationRecord) { count++ })
	obs.Disconnect()
	if err := doc.AppendChild(doc.Root(), NewText("x")); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("disconnected observer fired %d times", count)
	}
}

func TestNestedObserversBothFire(t *testing.T) {
	// The paper's Google Docs interception uses a document observer plus
	// per-paragraph observers; both must fire for a paragraph edit.
	doc := Parse(`<body><div id="doc"><p id="p0">x</p></div></body>`)
	docEl, p0 := doc.Root().ByID("doc"), doc.Root().ByID("p0")
	var docSaw, parSaw int
	doc.Observe(docEl, func(MutationRecord) { docSaw++ })
	doc.Observe(p0, func(MutationRecord) { parSaw++ })

	if err := doc.SetElementText(p0, "edited"); err != nil {
		t.Fatal(err)
	}
	if docSaw != 1 || parSaw != 1 {
		t.Errorf("docSaw=%d parSaw=%d, want 1,1", docSaw, parSaw)
	}
}

func TestSetAttrMutation(t *testing.T) {
	doc := Parse(`<body><p id="p0">x</p></body>`)
	p0 := doc.Root().ByID("p0")
	var rec MutationRecord
	doc.Observe(p0, func(r MutationRecord) { rec = r })
	if err := doc.SetAttr(p0, "style", "background: red"); err != nil {
		t.Fatal(err)
	}
	if rec.Type != MutationAttributes || rec.AttrName != "style" {
		t.Errorf("rec=%+v", rec)
	}
	if p0.Attr("style") != "background: red" {
		t.Error("attribute not set")
	}
}

func TestInsertChildOrdering(t *testing.T) {
	doc := NewDocument()
	body := doc.Root()
	a, b, c := NewText("a"), NewText("b"), NewText("c")
	if err := doc.AppendChild(body, a); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(body, c); err != nil {
		t.Fatal(err)
	}
	if err := doc.InsertChild(body, b, 1); err != nil {
		t.Fatal(err)
	}
	if got := body.InnerText(); got != "a b c" {
		t.Errorf("order=%q, want %q", got, "a b c")
	}
}

func TestMutationErrors(t *testing.T) {
	doc := NewDocument()
	other := NewDocument()
	child := NewText("x")
	if err := doc.AppendChild(other.Root(), child); err == nil {
		t.Error("cross-document append accepted")
	}
	if err := doc.InsertChild(doc.Root(), NewText("y"), 5); err == nil {
		t.Error("out-of-range insert accepted")
	}
	attached := NewText("z")
	if err := doc.AppendChild(doc.Root(), attached); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(doc.Root(), attached); err == nil {
		t.Error("double attach accepted")
	}
	if err := doc.RemoveChild(doc.Root(), NewText("ghost")); err == nil {
		t.Error("removing non-child accepted")
	}
	if err := doc.SetText(doc.Root(), "x"); err == nil {
		t.Error("SetText on element accepted")
	}
	if err := doc.SetAttr(NewText("t"), "a", "b"); err == nil {
		t.Error("SetAttr on text accepted")
	}
}

func TestBodyFallback(t *testing.T) {
	withBody := Parse(`<html><body><p>x</p></body></html>`)
	if withBody.Body().Tag != "body" {
		t.Errorf("Body tag=%q", withBody.Body().Tag)
	}
	noBody := Parse(`<p>x</p>`)
	if noBody.Body() == nil {
		t.Error("Body() nil without <body>")
	}
}

func TestMutationTypeString(t *testing.T) {
	if MutationChildList.String() != "childList" ||
		MutationCharacterData.String() != "characterData" ||
		MutationAttributes.String() != "attributes" {
		t.Error("MutationType strings wrong")
	}
	if MutationType(9).String() != "mutation(9)" {
		t.Error("unknown mutation type string")
	}
}
