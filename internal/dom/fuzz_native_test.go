package dom

import (
	"strings"
	"testing"
)

// FuzzParse drives the HTML parser with arbitrary input; it must never
// panic, and serialise-reparse must preserve text content. Run with
//
//	go test -fuzz FuzzParse ./internal/dom
//
// for continuous fuzzing; under plain `go test` the seed corpus runs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<p>hello</p>",
		"<div class='x'><p>a<b>b</b></p></div>",
		"<p>unclosed",
		"</stray>",
		"<script>var x = '<p>';</script>after",
		"<!DOCTYPE html><!-- c --><p>z</p>",
		"<input type=\"hidden\" value='v'/>",
		"a < b > c &amp; d",
		"<p id=フィンガープリント>ユニコード</p>",
		strings.Repeat("<div>", 50) + "deep" + strings.Repeat("</div>", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc := Parse(input)
		text := doc.Root().InnerText()
		re := Parse(doc.Root().OuterHTML())
		if got := re.Root().InnerText(); got != text {
			t.Errorf("reparse text changed: %q -> %q", text, got)
		}
	})
}
