package dom

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	doc := Parse(`<html><body><p id="intro">Hello, <b>World</b>!</p></body></html>`)
	p := doc.Root().ByID("intro")
	if p == nil {
		t.Fatal("no #intro element")
	}
	if p.Tag != "p" {
		t.Errorf("tag=%q, want p", p.Tag)
	}
	if got := p.InnerText(); got != "Hello, World !" {
		t.Errorf("InnerText=%q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<div id="a" class='two words' data-x=plain disabled></div>`)
	div := doc.Root().ByID("a")
	if div == nil {
		t.Fatal("no #a")
	}
	if div.Class() != "two words" {
		t.Errorf("class=%q", div.Class())
	}
	if div.Attr("data-x") != "plain" {
		t.Errorf("data-x=%q", div.Attr("data-x"))
	}
	if _, ok := div.Attrs["disabled"]; !ok {
		t.Error("boolean attribute missing")
	}
}

func TestParseVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<body><p>one<br>two</p><img src="x.png"/><p>three</p></body>`)
	ps := doc.Root().ElementsByTag("p")
	if len(ps) != 2 {
		t.Fatalf("p count=%d, want 2 (void tags must not swallow siblings)", len(ps))
	}
	if got := ps[0].InnerText(); got != "one two" {
		t.Errorf("first p=%q", got)
	}
}

func TestParseUnclosedTags(t *testing.T) {
	doc := Parse(`<body><p>first<p>second</body>`)
	ps := doc.Root().ElementsByTag("p")
	// Tolerant parsing: the second <p> may nest under the first, but both
	// paragraphs' text must be reachable.
	all := doc.Root().InnerText()
	if !strings.Contains(all, "first") || !strings.Contains(all, "second") {
		t.Errorf("text lost: %q", all)
	}
	if len(ps) != 2 {
		t.Errorf("p count=%d, want 2", len(ps))
	}
}

func TestParseStrayCloseTag(t *testing.T) {
	doc := Parse(`<body></div><p>ok</p></body>`)
	if doc.Root().ElementsByTag("p") == nil {
		t.Error("stray close tag broke parsing")
	}
}

func TestParseCommentsAndDoctype(t *testing.T) {
	doc := Parse("<!DOCTYPE html><!-- a comment --><body><p>text</p></body>")
	if got := doc.Root().InnerText(); got != "text" {
		t.Errorf("InnerText=%q", got)
	}
}

func TestParseScriptStyleExcludedFromText(t *testing.T) {
	doc := Parse(`<body><script>var x = "<p>not text</p>";</script><style>p{}</style><p>real</p></body>`)
	if got := doc.Root().InnerText(); got != "real" {
		t.Errorf("InnerText=%q, want %q", got, "real")
	}
	scripts := doc.Root().ElementsByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("script count=%d", len(scripts))
	}
	// Raw content preserved on the node itself.
	if !strings.Contains(scripts[0].children[0].Text, "not text") {
		t.Error("script raw content lost")
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(`<p>Fish &amp; Chips &lt;3 &quot;yum&quot;</p>`)
	if got := doc.Root().InnerText(); got != `Fish & Chips <3 "yum"` {
		t.Errorf("InnerText=%q", got)
	}
}

func TestParseMalformedAngle(t *testing.T) {
	doc := Parse(`<p>a < b and c > d</p>`)
	text := doc.Root().InnerText()
	if !strings.Contains(text, "a <") {
		t.Errorf("lone < lost: %q", text)
	}
}

func TestOuterHTMLRoundTrip(t *testing.T) {
	src := `<div class="x" id="y"><p>Hello &amp; goodbye</p><br/></div>`
	doc := Parse(src)
	out := doc.Body().OuterHTML()
	// Reparse the serialisation: same text content and structure.
	doc2 := Parse(out)
	if doc.Root().InnerText() != doc2.Root().InnerText() {
		t.Errorf("round trip text mismatch: %q vs %q", doc.Root().InnerText(), doc2.Root().InnerText())
	}
	if len(doc2.Root().ElementsByTag("p")) != 1 {
		t.Error("structure lost in round trip")
	}
}

func TestFindHelpers(t *testing.T) {
	doc := Parse(`<body><div><p class="a">one</p><p class="b">two</p></div></body>`)
	if n := doc.Root().Find(func(n *Node) bool { return n.Class() == "b" }); n == nil || n.InnerText() != "two" {
		t.Error("Find failed")
	}
	all := doc.Root().FindAll(func(n *Node) bool { return n.Type == ElementNode && n.Tag == "p" })
	if len(all) != 2 {
		t.Errorf("FindAll=%d, want 2", len(all))
	}
	if doc.Root().ByID("nope") != nil {
		t.Error("ByID should return nil for missing id")
	}
}

func TestHasAncestor(t *testing.T) {
	doc := Parse(`<body><div id="outer"><p id="inner">x</p></div></body>`)
	outer, inner := doc.Root().ByID("outer"), doc.Root().ByID("inner")
	if !inner.HasAncestor(outer) {
		t.Error("inner should have outer as ancestor")
	}
	if outer.HasAncestor(inner) {
		t.Error("outer should not have inner as ancestor")
	}
	if !inner.HasAncestor(inner) {
		t.Error("node is its own ancestor for subtree checks")
	}
}
