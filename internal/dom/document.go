package dom

import (
	"fmt"
	"sync"
)

// MutationType classifies a mutation record, mirroring the W3C DOM4
// MutationObserver categories the paper's plug-in relies on (§5.2).
type MutationType int

const (
	// MutationChildList reports added or removed children.
	MutationChildList MutationType = iota + 1

	// MutationCharacterData reports text node edits.
	MutationCharacterData

	// MutationAttributes reports attribute changes.
	MutationAttributes
)

// String implements fmt.Stringer.
func (m MutationType) String() string {
	switch m {
	case MutationChildList:
		return "childList"
	case MutationCharacterData:
		return "characterData"
	case MutationAttributes:
		return "attributes"
	default:
		return fmt.Sprintf("mutation(%d)", int(m))
	}
}

// MutationRecord describes one observed change.
type MutationRecord struct {
	Type     MutationType
	Target   *Node
	Added    []*Node
	Removed  []*Node
	OldText  string
	AttrName string
}

// Observer receives mutation records for a subtree. Callbacks run
// synchronously on the mutating goroutine, like microtask delivery in a
// real browser event loop.
type Observer struct {
	root *Node
	fn   func(MutationRecord)
	doc  *Document
}

// Disconnect stops delivery to the observer.
func (o *Observer) Disconnect() {
	if o.doc != nil {
		o.doc.removeObserver(o)
	}
}

// Document owns a DOM tree and its observers. All mutations go through its
// methods. It is safe for concurrent use.
type Document struct {
	mu        sync.Mutex
	root      *Node
	observers []*Observer
}

// NewDocument returns a Document with an empty <html> root.
func NewDocument() *Document {
	d := &Document{}
	d.root = NewElement("html", nil)
	d.adopt(d.root)
	return d
}

// Root returns the document root element.
func (d *Document) Root() *Node { return d.root }

// adopt links a detached subtree to this document.
func (d *Document) adopt(n *Node) {
	n.Walk(func(node *Node) bool {
		node.doc = d
		return true
	})
}

// Observe registers fn for all mutations within the subtree rooted at root.
func (d *Document) Observe(root *Node, fn func(MutationRecord)) *Observer {
	o := &Observer{root: root, fn: fn, doc: d}
	d.mu.Lock()
	d.observers = append(d.observers, o)
	d.mu.Unlock()
	return o
}

func (d *Document) removeObserver(o *Observer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, cur := range d.observers {
		if cur == o {
			d.observers = append(d.observers[:i], d.observers[i+1:]...)
			return
		}
	}
}

// notify delivers rec to every observer whose root is an ancestor of the
// target. Called with d.mu held; callbacks run outside the lock.
func (d *Document) notifyLocked(rec MutationRecord) []*Observer {
	var hit []*Observer
	for _, o := range d.observers {
		if rec.Target.HasAncestor(o.root) {
			hit = append(hit, o)
		}
	}
	return hit
}

func (d *Document) dispatch(rec MutationRecord) {
	d.mu.Lock()
	hit := d.notifyLocked(rec)
	d.mu.Unlock()
	for _, o := range hit {
		o.fn(rec)
	}
}

// AppendChild attaches child as the last child of parent.
func (d *Document) AppendChild(parent, child *Node) error {
	return d.InsertChild(parent, child, parent.ChildCount())
}

// InsertChild attaches child at position idx of parent's child list.
func (d *Document) InsertChild(parent, child *Node, idx int) error {
	if parent.doc != d {
		return fmt.Errorf("dom: parent not owned by this document")
	}
	if child.parent != nil {
		return fmt.Errorf("dom: child already attached")
	}
	if idx < 0 || idx > len(parent.children) {
		return fmt.Errorf("dom: insert index %d out of range", idx)
	}
	d.adopt(child)
	child.parent = parent
	parent.children = append(parent.children, nil)
	copy(parent.children[idx+1:], parent.children[idx:])
	parent.children[idx] = child
	d.dispatch(MutationRecord{
		Type:   MutationChildList,
		Target: parent,
		Added:  []*Node{child},
	})
	return nil
}

// RemoveChild detaches child from parent.
func (d *Document) RemoveChild(parent, child *Node) error {
	if child.parent != parent {
		return fmt.Errorf("dom: node is not a child of parent")
	}
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			child.parent = nil
			d.dispatch(MutationRecord{
				Type:    MutationChildList,
				Target:  parent,
				Removed: []*Node{child},
			})
			return nil
		}
	}
	return fmt.Errorf("dom: child not found")
}

// SetText replaces the character data of a text node.
func (d *Document) SetText(n *Node, text string) error {
	if n.Type != TextNode {
		return fmt.Errorf("dom: SetText on %v node", n.Type)
	}
	if n.doc != d {
		return fmt.Errorf("dom: node not owned by this document")
	}
	old := n.Text
	n.Text = text
	d.dispatch(MutationRecord{
		Type:    MutationCharacterData,
		Target:  n,
		OldText: old,
	})
	return nil
}

// SetElementText replaces the children of an element with a single text
// node — the common "paragraph content changed" mutation.
func (d *Document) SetElementText(n *Node, text string) error {
	if n.Type != ElementNode {
		return fmt.Errorf("dom: SetElementText on %v node", n.Type)
	}
	if len(n.children) == 1 && n.children[0].Type == TextNode {
		return d.SetText(n.children[0], text)
	}
	for len(n.children) > 0 {
		if err := d.RemoveChild(n, n.children[len(n.children)-1]); err != nil {
			return err
		}
	}
	return d.AppendChild(n, NewText(text))
}

// SetAttr sets an attribute on an element.
func (d *Document) SetAttr(n *Node, name, value string) error {
	if n.Type != ElementNode {
		return fmt.Errorf("dom: SetAttr on %v node", n.Type)
	}
	if n.doc != d {
		return fmt.Errorf("dom: node not owned by this document")
	}
	n.Attrs[name] = value
	d.dispatch(MutationRecord{
		Type:     MutationAttributes,
		Target:   n,
		AttrName: name,
	})
	return nil
}

// Body returns the <body> element, or the root if the document has none.
func (d *Document) Body() *Node {
	if body := d.root.Find(func(n *Node) bool {
		return n.Type == ElementNode && n.Tag == "body"
	}); body != nil {
		return body
	}
	return d.root
}
