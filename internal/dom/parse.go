package dom

import (
	"strings"
)

// Parse builds a Document from HTML source. The parser is deliberately
// tolerant — unknown tags are kept, unclosed tags are closed when an
// ancestor closes, and stray close tags are ignored — which is enough for
// the simulated cloud services and for Readability-style extraction over
// CMS-generated pages.
func Parse(html string) *Document {
	doc := NewDocument()
	p := &parser{src: html}
	p.parseInto(doc, doc.Root())
	return doc
}

type parser struct {
	src string
	pos int
}

// parseInto appends parsed nodes under parent. Mutation observers are not
// registered during initial parse, so direct tree construction is safe.
func (p *parser) parseInto(doc *Document, parent *Node) {
	stack := []*Node{parent}
	top := func() *Node { return stack[len(stack)-1] }
	attach := func(n *Node) {
		cur := top()
		n.parent = cur
		n.doc = doc
		cur.children = append(cur.children, n)
	}

	for p.pos < len(p.src) {
		if p.src[p.pos] != '<' {
			text := p.readText()
			if strings.TrimSpace(text) != "" || len(top().children) > 0 {
				attach(NewText(decodeEntities(text)))
			}
			continue
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			p.skipComment()
		case strings.HasPrefix(p.src[p.pos:], "<!"):
			p.skipUntil('>') // doctype etc.
		case strings.HasPrefix(p.src[p.pos:], "</"):
			tag := p.readCloseTag()
			// Pop to the matching open tag; ignore unmatched closers.
			for i := len(stack) - 1; i > 0; i-- {
				if stack[i].Tag == tag {
					stack = stack[:i]
					break
				}
			}
		default:
			node, selfClosing := p.readOpenTag()
			if node == nil {
				// Malformed "<" — treat as text.
				attach(NewText("<"))
				p.pos++
				continue
			}
			attach(node)
			if node.Tag == "script" || node.Tag == "style" {
				raw := p.readRawUntilClose(node.Tag)
				if raw != "" {
					text := NewText(raw)
					text.parent = node
					text.doc = doc
					node.children = append(node.children, text)
				}
				continue
			}
			if !selfClosing && !isVoidTag(node.Tag) {
				stack = append(stack, node)
			}
		}
	}
}

func (p *parser) readText() string {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) skipComment() {
	end := strings.Index(p.src[p.pos:], "-->")
	if end < 0 {
		p.pos = len(p.src)
		return
	}
	p.pos += end + len("-->")
}

func (p *parser) skipUntil(ch byte) {
	for p.pos < len(p.src) && p.src[p.pos] != ch {
		p.pos++
	}
	if p.pos < len(p.src) {
		p.pos++
	}
}

func (p *parser) readCloseTag() string {
	p.pos += 2 // "</"
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '>' {
		p.pos++
	}
	tag := strings.ToLower(strings.TrimSpace(p.src[start:p.pos]))
	if p.pos < len(p.src) {
		p.pos++
	}
	return tag
}

// readOpenTag parses "<tag attr=... >"; returns nil if the "<" does not
// start a well-formed tag name.
func (p *parser) readOpenTag() (*Node, bool) {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isTagNameChar(p.src[i]) {
		i++
	}
	if i == start {
		return nil, false
	}
	tag := strings.ToLower(p.src[start:i])
	attrs := make(map[string]string)
	selfClosing := false
	for i < len(p.src) && p.src[i] != '>' {
		// Skip whitespace.
		if isSpace(p.src[i]) {
			i++
			continue
		}
		if p.src[i] == '/' {
			selfClosing = true
			i++
			continue
		}
		// Attribute name.
		nameStart := i
		for i < len(p.src) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' && !isSpace(p.src[i]) {
			i++
		}
		name := strings.ToLower(p.src[nameStart:i])
		if name == "" {
			i++
			continue
		}
		// Optional value.
		value := ""
		if i < len(p.src) && p.src[i] == '=' {
			i++
			if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
				quote := p.src[i]
				i++
				valStart := i
				for i < len(p.src) && p.src[i] != quote {
					i++
				}
				value = p.src[valStart:i]
				if i < len(p.src) {
					i++
				}
			} else {
				valStart := i
				for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
					i++
				}
				value = p.src[valStart:i]
			}
		}
		attrs[name] = decodeEntities(value)
	}
	if i < len(p.src) {
		i++ // '>'
	}
	p.pos = i
	return NewElement(tag, attrs), selfClosing
}

// readRawUntilClose consumes raw text up to the matching close tag for
// script/style content.
func (p *parser) readRawUntilClose(tag string) string {
	lower := strings.ToLower(p.src[p.pos:])
	closeTag := "</" + tag
	end := strings.Index(lower, closeTag)
	if end < 0 {
		raw := p.src[p.pos:]
		p.pos = len(p.src)
		return raw
	}
	raw := p.src[p.pos : p.pos+end]
	p.pos += end
	p.skipUntil('>')
	return raw
}

func isTagNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}
