// Package dom provides the miniature Document Object Model that the
// simulated browser is built on: an HTML parser, a mutable tree, W3C-style
// mutation observers (§5.2) and the Readability-like interesting-text
// extraction heuristics of §5.1.
//
// BrowserFlow's plug-in consumes exactly two DOM capabilities — observing
// mutations and reading text out of subtrees — so the model implements
// those faithfully and keeps the rest minimal.
package dom

import (
	"sort"
	"strings"
)

// NodeType distinguishes elements from text nodes.
type NodeType int

const (
	// ElementNode is a tag with attributes and children.
	ElementNode NodeType = iota + 1

	// TextNode is a leaf holding character data.
	TextNode
)

// Node is one node of the DOM tree. Mutations must go through the owning
// Document's methods so that observers fire.
type Node struct {
	// Type is the node kind.
	Type NodeType

	// Tag is the lower-case element name (empty for text nodes).
	Tag string

	// Attrs holds the element attributes (nil for text nodes).
	Attrs map[string]string

	// Text is the character data of a text node.
	Text string

	parent   *Node
	children []*Node
	doc      *Document
}

// NewElement returns a detached element node.
func NewElement(tag string, attrs map[string]string) *Node {
	if attrs == nil {
		attrs = make(map[string]string)
	}
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag), Attrs: attrs}
}

// NewText returns a detached text node.
func NewText(text string) *Node {
	return &Node{Type: TextNode, Text: text}
}

// Parent returns the node's parent, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns a copy of the node's child list.
func (n *Node) Children() []*Node {
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// ChildCount returns the number of children without copying.
func (n *Node) ChildCount() int { return len(n.children) }

// Attr returns the value of an attribute.
func (n *Node) Attr(name string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[strings.ToLower(name)]
}

// ID returns the element's id attribute.
func (n *Node) ID() string { return n.Attr("id") }

// Class returns the element's class attribute.
func (n *Node) Class() string { return n.Attr("class") }

// InnerText returns the concatenated text of the subtree, with element
// boundaries collapsed to single spaces and whitespace normalised.
func (n *Node) InnerText() string {
	var sb strings.Builder
	n.collectText(&sb)
	return strings.Join(strings.Fields(sb.String()), " ")
}

func (n *Node) collectText(sb *strings.Builder) {
	if n.Type == TextNode {
		sb.WriteString(n.Text)
		sb.WriteByte(' ')
		return
	}
	if n.Tag == "script" || n.Tag == "style" {
		return
	}
	for _, c := range n.children {
		c.collectText(sb)
	}
}

// Walk visits the subtree rooted at n in document order. Returning false
// from fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Find returns the first node in document order satisfying pred.
func (n *Node) Find(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(node *Node) bool {
		if pred(node) {
			found = node
			return false
		}
		return true
	})
	return found
}

// FindAll returns every node in document order satisfying pred.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(node *Node) bool {
		if pred(node) {
			out = append(out, node)
		}
		return true
	})
	return out
}

// ElementsByTag returns the descendants (including n) with the given tag.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	return n.FindAll(func(node *Node) bool {
		return node.Type == ElementNode && node.Tag == tag
	})
}

// ByID returns the descendant element with the given id.
func (n *Node) ByID(id string) *Node {
	return n.Find(func(node *Node) bool {
		return node.Type == ElementNode && node.ID() == id
	})
}

// HasAncestor reports whether a is n itself or one of its ancestors.
func (n *Node) HasAncestor(a *Node) bool {
	for cur := n; cur != nil; cur = cur.parent {
		if cur == a {
			return true
		}
	}
	return false
}

// OuterHTML serialises the subtree back to HTML (attributes sorted for
// determinism).
func (n *Node) OuterHTML() string {
	var sb strings.Builder
	n.writeHTML(&sb)
	return sb.String()
}

func (n *Node) writeHTML(sb *strings.Builder) {
	if n.Type == TextNode {
		sb.WriteString(escapeText(n.Text))
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Tag)
	names := make([]string, 0, len(n.Attrs))
	for name := range n.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sb.WriteByte(' ')
		sb.WriteString(name)
		sb.WriteString(`="`)
		sb.WriteString(escapeAttr(n.Attrs[name]))
		sb.WriteByte('"')
	}
	if isVoidTag(n.Tag) && len(n.children) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, c := range n.children {
		c.writeHTML(sb)
	}
	sb.WriteString("</")
	sb.WriteString(n.Tag)
	sb.WriteByte('>')
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

func escapeAttr(s string) string {
	return strings.ReplaceAll(escapeText(s), `"`, "&quot;")
}

func isVoidTag(tag string) bool {
	switch tag {
	case "area", "base", "br", "col", "embed", "hr", "img", "input",
		"link", "meta", "param", "source", "track", "wbr":
		return true
	}
	return false
}
