package dom

import (
	"strings"
	"testing"
)

// cmsPage mimics a Drupal/WordPress-style page: header/nav/footer chrome
// around an article body (§5.1's target workload).
const cmsPage = `
<html><body>
  <div class="header"><a href="/">Home</a> <a href="/about">About</a> <a href="/contact">Contact</a></div>
  <div class="sidebar"><a href="/1">Link one</a><a href="/2">Link two</a><a href="/3">Link three</a></div>
  <div id="article">
    <p>The quarterly report shows, among other things, that revenue grew by twelve percent, costs fell, and hiring accelerated.</p>
    <p>Management attributes the growth to the new enterprise product line, which, according to the CFO, exceeded projections.</p>
    <p>The board will review the findings next month, and a follow-up statement is expected shortly afterwards.</p>
  </div>
  <div class="footer"><a href="/privacy">Privacy</a> <a href="/terms">Terms</a></div>
</body></html>`

func TestExtractMainPrefersArticle(t *testing.T) {
	doc := Parse(cmsPage)
	best, score := ExtractMain(doc)
	if best == nil {
		t.Fatal("no candidate")
	}
	if score <= 0 {
		t.Errorf("score=%v, want > 0", score)
	}
	// The winner must be the article (or a container of it), never the
	// footer/sidebar chrome.
	hints := best.ID() + best.Class()
	if strings.Contains(hints, "footer") || strings.Contains(hints, "sidebar") || strings.Contains(hints, "header") {
		t.Errorf("extraction picked chrome element: id=%q class=%q", best.ID(), best.Class())
	}
	text := best.InnerText()
	if !strings.Contains(text, "quarterly report") {
		t.Errorf("article text missing from extraction: %q", text)
	}
}

func TestExtractMainTextStripsTags(t *testing.T) {
	doc := Parse(cmsPage)
	text := ExtractMainText(doc)
	if strings.ContainsAny(text, "<>") {
		t.Errorf("tags leaked into extracted text: %q", text)
	}
	if !strings.Contains(text, "enterprise product line") {
		t.Errorf("content missing: %q", text)
	}
}

func TestExtractMainTextEmptyDocument(t *testing.T) {
	doc := NewDocument()
	if got := ExtractMainText(doc); got != "" {
		t.Errorf("empty document extracted %q", got)
	}
}

func TestLinkDensityPenalty(t *testing.T) {
	page := `
<body>
  <div id="nav-like"><a href="/a">One two three four five six seven eight nine ten, eleven,</a></div>
  <div id="prose-like">One two three four five six seven eight nine ten, eleven, twelve thirteen fourteen.</div>
</body>`
	doc := Parse(page)
	nav := doc.Root().ByID("nav-like")
	prose := doc.Root().ByID("prose-like")
	if scoreElement(nav) >= scoreElement(prose) {
		t.Errorf("link-heavy element outscored prose: %v vs %v", scoreElement(nav), scoreElement(prose))
	}
}

func TestNegativeHintPenalty(t *testing.T) {
	page := `
<body>
  <div class="footer">Contact us by mail, phone, or fax, at any of our regional offices, any time.</div>
  <div class="entry">Contact us by mail, phone, or fax, at any of our regional offices, any time.</div>
</body>`
	doc := Parse(page)
	divs := doc.Root().ElementsByTag("div")
	if len(divs) != 2 {
		t.Fatal("setup broken")
	}
	if scoreElement(divs[0]) >= scoreElement(divs[1]) {
		t.Error("footer not penalised relative to entry")
	}
}

func TestExtractParagraphs(t *testing.T) {
	doc := Parse(cmsPage)
	pars := ExtractParagraphs(doc.Root().ByID("article"))
	if len(pars) != 3 {
		t.Fatalf("paragraphs=%d, want 3", len(pars))
	}
	if !strings.HasPrefix(pars[0], "The quarterly report") {
		t.Errorf("pars[0]=%q", pars[0])
	}
	// Empty paragraphs skipped.
	doc2 := Parse(`<div><p></p><p>  </p><p>real</p></div>`)
	pars2 := ExtractParagraphs(doc2.Root())
	if len(pars2) != 1 || pars2[0] != "real" {
		t.Errorf("pars2=%v", pars2)
	}
}
